// Package flashsim is a reproduction of "The Performance Impact of
// Flexibility in the Stanford FLASH Multiprocessor" (Heinrich et al.,
// ASPLOS-VI, 1994): a cycle-level simulator of FLASH nodes built around the
// programmable MAGIC controller — whose cache-coherence protocol actually
// executes as dual-issue handler code on an emulated protocol processor —
// together with the paper's idealized hardwired comparison machine, its
// seven workloads, and a harness that regenerates every table and figure of
// the evaluation.
//
// Start with cmd/flashsim (run one workload), cmd/flashexp (regenerate the
// paper's tables and figures), examples/quickstart, and DESIGN.md.
package flashsim
