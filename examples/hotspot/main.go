// Hotspot reproduces the Section 4.3 insight interactively: protocol-
// processor occupancy hurts FLASH only when the hot node's MEMORY occupancy
// is simultaneously low. It runs the same FFT twice — once with partitioned
// data (every node serves its own band) and once with every page allocated
// from node 0 — and prints the per-node occupancy profile.
package main

import (
	"fmt"
	"log"

	"flashsim/internal/apps"
	"flashsim/internal/arch"
	"flashsim/internal/core"
	"flashsim/internal/workload"
)

func run(pl arch.Placement) *core.Machine {
	cfg := arch.DefaultConfig()
	cfg.Nodes = 16
	cfg.CacheSize = 4 << 10 // small caches: lots of memory traffic
	cfg.MemBytesPerNode = 8 << 20
	cfg.Placement = pl

	m, err := core.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	w := workload.NewWorld(m)
	app, err := apps.Build("fft", w, apps.Params{Procs: 16, Scale: 16})
	if err != nil {
		log.Fatal(err)
	}
	if err := w.Run(app.Run, 0); err != nil {
		log.Fatal(err)
	}
	if err := app.Verify(); err != nil {
		log.Fatal(err)
	}
	return m
}

func main() {
	for _, pl := range []arch.Placement{arch.PlaceFirstTouch, arch.PlaceNodeZero} {
		m := run(pl)
		fmt.Printf("FFT, 4 KB caches, %v placement (%d cycles):\n", pl, m.Elapsed)
		fmt.Println("  node   PP occupancy   memory occupancy")
		for i, n := range m.Nodes {
			pp := n.Magic.PPOcc.Fraction(m.Elapsed)
			mem := n.Mem.Occupancy(m.Elapsed)
			marker := ""
			if pp > 0.5 {
				marker = "  <- hot"
			}
			fmt.Printf("  %4d   %6.1f%%        %6.1f%%%s\n", i, 100*pp, 100*mem, marker)
		}
		fmt.Println()
	}
	fmt.Println("The paper's point: the node-0 hot spot drives PP occupancy up, but")
	fmt.Println("because node 0's memory is equally busy, the protocol processing")
	fmt.Println("hides behind the DRAM access and the flexible machine loses little.")
}
