// Quickstart: build a small FLASH machine, run a hand-written parallel
// workload on it, and compare against the idealized hardwired machine —
// the paper's central experiment in thirty lines of user code.
package main

import (
	"fmt"
	"log"

	"flashsim/internal/arch"
	"flashsim/internal/core"
	"flashsim/internal/stats"
	"flashsim/internal/workload"
)

// run simulates a toy stencil workload on the given machine kind and
// returns its statistics.
func run(kind arch.MachineKind) stats.Report {
	cfg := arch.DefaultConfig()
	cfg.Kind = kind
	cfg.Nodes = 8
	cfg.MemBytesPerNode = 4 << 20

	m, err := core.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	w := workload.NewWorld(m)

	const n = 64 * 1024
	grid := w.NewArrayBlocked(n, cfg.Nodes) // each node owns a band
	next := w.NewArrayBlocked(n, cfg.Nodes)
	bar := w.NewBarrier(cfg.Nodes, 0)
	per := n / cfg.Nodes

	err = w.Run(func(c *workload.Ctx) {
		lo := c.ID * per
		hi := lo + per
		// Initialize our band, then relax it twice; the band edges touch
		// neighbours' memory — that's the coherence traffic.
		for i := lo; i < hi; i++ {
			c.WriteF(grid.Addr(i), float64(i%97))
		}
		bar.Wait(c)
		for iter := 0; iter < 2; iter++ {
			for i := lo; i < hi; i++ {
				l, r := i-1, i+1
				if l < 0 {
					l = n - 1
				}
				if r == n {
					r = 0
				}
				v := (c.ReadF(grid.Addr(l)) + c.ReadF(grid.Addr(r))) / 2
				c.WriteF(next.Addr(i), v)
				c.Busy(8)
			}
			bar.Wait(c)
			grid, next = next, grid
			bar.Wait(c)
		}
	}, 0)
	if err != nil {
		log.Fatal(err)
	}
	if err := m.CheckCoherence(); err != nil {
		log.Fatal(err)
	}
	return stats.Collect(m)
}

func main() {
	flash := run(arch.KindFLASH)
	ideal := run(arch.KindIdeal)
	fmt.Println("FLASH (programmable MAGIC controller):")
	fmt.Print(flash)
	fmt.Println("\nIdealized hardwired machine (zero-time controller):")
	fmt.Print(ideal)
	fmt.Printf("\ncost of flexibility: +%.1f%% execution time\n",
		100*(float64(flash.Elapsed)/float64(ideal.Elapsed)-1))
}
