// Ppmonitor demonstrates the flexibility dividend the paper's conclusion
// emphasizes: because every transaction runs protocol code on MAGIC, the
// machine can observe itself. It runs one workload and prints the
// handler-level profile a hardwired controller could never produce — which
// handlers ran, how often, and at what occupancy — plus the PP's dynamic
// instruction statistics and an ablation of the PP's ISA extensions.
package main

import (
	"fmt"
	"log"
	"sort"

	"flashsim/internal/apps"
	"flashsim/internal/arch"
	"flashsim/internal/core"
	"flashsim/internal/sim"
	"flashsim/internal/workload"
)

func run(mode arch.PPMode) *core.Machine {
	cfg := arch.DefaultConfig()
	cfg.Nodes = 8
	cfg.MemBytesPerNode = 4 << 20
	cfg.PPMode = mode

	m, err := core.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	w := workload.NewWorld(m)
	app, err := apps.Build("radix", w, apps.Params{Procs: 8, Scale: 16})
	if err != nil {
		log.Fatal(err)
	}
	if err := w.Run(app.Run, 0); err != nil {
		log.Fatal(err)
	}
	if err := app.Verify(); err != nil {
		log.Fatal(err)
	}
	return m
}

func main() {
	m := run(arch.PPDualIssue)

	// Handler profile across all nodes.
	type prof struct {
		count  uint64
		cycles sim.Cycle
	}
	agg := map[string]*prof{}
	var pairs, instrs uint64
	for _, n := range m.Nodes {
		counts := n.Magic.HandlerCounts()
		for h, c := range n.Magic.HandlerCycles() {
			p := agg[h]
			if p == nil {
				p = &prof{}
				agg[h] = p
			}
			p.cycles += c
			p.count += counts[h]
		}
		pairs += n.Magic.PP.Stats.Pairs
		instrs += n.Magic.PP.Stats.Instrs
	}
	names := make([]string, 0, len(agg))
	for h := range agg {
		names = append(names, h)
	}
	sort.Slice(names, func(i, j int) bool { return agg[names[i]].cycles > agg[names[j]].cycles })

	fmt.Printf("radix sort on 8 nodes: %d cycles\n\n", m.Elapsed)
	fmt.Println("protocol handler profile (all nodes):")
	fmt.Printf("  %-16s %10s %12s %8s\n", "handler", "runs", "PP cycles", "mean")
	for _, h := range names {
		p := agg[h]
		fmt.Printf("  %-16s %10d %12d %8.1f\n", h, p.count, p.cycles, float64(p.cycles)/float64(p.count))
	}
	fmt.Printf("\ndynamic dual-issue efficiency: %.2f instructions/pair\n", float64(instrs)/float64(pairs))

	// Ablation: the same machine with the PP's ISA extensions turned off
	// (single-issue, DLX substitution sequences) — Section 5.3.
	slow := run(arch.PPNoSpecial)
	fmt.Printf("\nwith PP extensions disabled (single-issue + DLX substitution):\n")
	fmt.Printf("  %d cycles -> %d cycles (+%.0f%%)\n", m.Elapsed, slow.Elapsed,
		100*(float64(slow.Elapsed)/float64(m.Elapsed)-1))
}
