GO ?= go

.PHONY: all build verify test bench exp clean

all: build

build:
	$(GO) build ./...

# Tier-1 verify line (keep in sync with ROADMAP.md), plus a race-detector
# pass over the concurrent experiment driver, plus the exp golden digests
# under the interpreter PP backend (the default test run covers the compiled
# backend), so neither dispatch path can rot.
verify:
	$(GO) build ./... && $(GO) vet ./... && $(GO) test ./... && $(GO) test -race ./internal/exp -run Parallel
	FLASHSIM_PP_DISPATCH=interp $(GO) test -count=1 ./internal/exp -run TestGolden
	FLASHSIM_ENGINE=sharded $(GO) test -count=1 ./internal/exp -run TestGolden
	GOMAXPROCS=1 FLASHSIM_ENGINE=sharded $(GO) test -count=1 ./internal/exp -run TestGolden
	$(GO) test -race ./internal/sim -run Sharded

test:
	$(GO) test ./...

# Microbenchmarks 5x -> BENCH_sim.json (ns/op, B/op, allocs/op per run).
bench:
	scripts/bench.sh

# Full experiment suite in benchmark form, one iteration each.
exp:
	$(GO) test -run '^$$' -bench . -benchtime 1x .

clean:
	$(GO) clean ./...
