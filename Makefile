GO ?= go

.PHONY: all build verify test bench exp profile clean

all: build

build:
	$(GO) build ./...

# Tier-1 verify line (keep in sync with ROADMAP.md), plus a race-detector
# pass over the concurrent experiment driver, plus the exp golden digests
# under the interpreter PP backend (the default test run covers the compiled
# backend), so neither dispatch path can rot. The sharded-engine goldens run
# under both synchronization schemes (window barrier and per-pair
# watermarks) — simulated cycles must be bit-identical across all of them.
# The metrics passes pin the observability layer: registry instruments exact
# under the race detector, and metrics-enabled runs cycle-identical to the
# golden digests. The sampled passes smoke-test the FLASHSIM_SAMPLE process
# default end-to-end and run the sampling determinism suite (off-switch
# bit-identity, repeatability, env resolution) under the race detector.
# The fork-determinism passes pin snapshot/restore round trips: warm-started
# (checkpoint + copy-on-write fork) runs must match cold runs bit-for-bit on
# every Fig 4.1 app across {seq,sharded} x {interp,compiled}, and the machine
# pool and fork suite run once more under the race detector.
verify:
	$(GO) build ./... && $(GO) vet ./... && $(GO) test ./... && $(GO) test -race ./internal/exp -run Parallel
	FLASHSIM_PP_DISPATCH=interp $(GO) test -count=1 ./internal/exp -run TestGolden
	FLASHSIM_ENGINE=sharded $(GO) test -count=1 ./internal/exp -run TestGolden
	GOMAXPROCS=1 FLASHSIM_ENGINE=sharded $(GO) test -count=1 ./internal/exp -run TestGolden
	FLASHSIM_ENGINE=sharded FLASHSIM_ENGINE_SYNC=watermark $(GO) test -count=1 ./internal/exp -run TestGolden
	$(GO) test -race ./internal/sim -run 'Sharded|Watermark'
	$(GO) test -race ./internal/metrics
	$(GO) test -count=1 ./internal/exp -run TestMetrics
	FLASHSIM_SAMPLE=default $(GO) test -count=1 ./internal/exp -run TestSampledSmoke
	$(GO) test -race -count=1 ./internal/exp -run TestSampled
	FLASHSIM_PP_DISPATCH=interp $(GO) test -count=1 ./internal/exp -run TestForkDeterminism
	FLASHSIM_PP_DISPATCH=compiled $(GO) test -count=1 ./internal/exp -run TestForkDeterminism
	FLASHSIM_ENGINE=sharded FLASHSIM_PP_DISPATCH=interp $(GO) test -count=1 ./internal/exp -run TestForkDeterminism
	FLASHSIM_ENGINE=sharded FLASHSIM_PP_DISPATCH=compiled $(GO) test -count=1 ./internal/exp -run TestForkDeterminism
	$(GO) test -race -count=1 ./internal/exp -run 'Pool|Fork'

test:
	$(GO) test ./...

# Microbenchmarks 5x -> BENCH_sim.json (ns/op, B/op, allocs/op per run),
# including BenchmarkWindowSync (barrier vs watermark sync-op counts) and
# the per-app engine profile summary in the "engine" section.
bench:
	scripts/bench.sh

# Full experiment suite in benchmark form, one iteration each.
exp:
	$(GO) test -run '^$$' -bench . -benchtime 1x .

# Host-performance report: where does the simulator's own wall time go?
# Per-shard window-exec/barrier shares, outbox drain, merge, GC accounting.
profile:
	$(GO) run ./cmd/flashexp profile -scale 4

clean:
	$(GO) clean ./...
