// Benchmarks regenerating each table and figure of the paper, plus
// microbenchmarks of the simulator's hot paths. The experiment benchmarks
// run one full (scaled-down) experiment per iteration and report the
// paper's headline quantity as a custom metric; `go test -bench . -benchtime
// 1x` regenerates everything once.
package flashsim_test

import (
	"testing"

	"flashsim/internal/apps"
	"flashsim/internal/arch"
	"flashsim/internal/core"
	"flashsim/internal/cpu"
	"flashsim/internal/exp"
	"flashsim/internal/ppisa"
	"flashsim/internal/ppsim"
	"flashsim/internal/protocol"
	"flashsim/internal/sim"
	"flashsim/internal/workload"
)

// benchOptions keeps per-iteration cost moderate.
func benchOptions() exp.Options { return exp.Options{Scale: 8, Verify: false} }

// --- Table 3.3: no-contention miss latencies -------------------------------

func BenchmarkTable33(b *testing.B) {
	cfg := arch.DefaultConfig()
	cfg.MemBytesPerNode = 1 << 20
	scs := core.MissScenarios(&cfg)
	for i := 0; i < b.N; i++ {
		for _, sc := range scs {
			cf := cfg
			cf.Kind = arch.KindFLASH
			lat, _, err := core.ProbeMiss(cf, sc)
			if err != nil {
				b.Fatal(err)
			}
			if sc.Class == arch.MissRemoteClean {
				b.ReportMetric(float64(lat), "remote-clean-cycles")
			}
		}
	}
}

// --- Figures 4.1-4.3: FLASH vs ideal per application -----------------------

func benchPair(b *testing.B, app string, cacheBytes int) {
	o := benchOptions()
	procs := 16
	if app == "os" {
		procs = 8
	}
	for i := 0; i < b.N; i++ {
		cfg := arch.DefaultConfig()
		cfg.Nodes = procs
		cfg.MemBytesPerNode = 8 << 20
		cfg.CacheSize = cacheBytes
		if app == "ocean" && cacheBytes == 4<<10 {
			cfg.CacheSize = 16 << 10
		}
		if app == "os" {
			cfg.Placement = arch.PlaceRoundRobin
		}
		f, id, err := exp.Pair(app, cfg, apps.Params{Procs: procs, Scale: o.Scale}, false)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(exp.Slowdown(f, id), "slowdown_%")
		b.ReportMetric(float64(f.Report.Elapsed), "flash_cycles")
		// Recycle the FLASH machine across iterations (Pair already
		// recycles the ideal one); reset-determinism keeps flash_cycles
		// bit-identical either way.
		f.Release()
	}
}

func BenchmarkFig41Barnes(b *testing.B) { benchPair(b, "barnes", 1<<20) }
func BenchmarkFig41FFT(b *testing.B)    { benchPair(b, "fft", 1<<20) }
func BenchmarkFig41LU(b *testing.B)     { benchPair(b, "lu", 1<<20) }
func BenchmarkFig41MP3D(b *testing.B)   { benchPair(b, "mp3d", 1<<20) }
func BenchmarkFig41Ocean(b *testing.B)  { benchPair(b, "ocean", 1<<20) }
func BenchmarkFig41OS(b *testing.B)     { benchPair(b, "os", 1<<20) }
func BenchmarkFig41Radix(b *testing.B)  { benchPair(b, "radix", 1<<20) }

func BenchmarkFig42FFT(b *testing.B)   { benchPair(b, "fft", 64<<10) }
func BenchmarkFig42Ocean(b *testing.B) { benchPair(b, "ocean", 64<<10) }
func BenchmarkFig42Radix(b *testing.B) { benchPair(b, "radix", 64<<10) }

func BenchmarkFig43FFT(b *testing.B)   { benchPair(b, "fft", 4<<10) }
func BenchmarkFig43MP3D(b *testing.B)  { benchPair(b, "mp3d", 4<<10) }
func BenchmarkFig43Ocean(b *testing.B) { benchPair(b, "ocean", 4<<10) }
func BenchmarkFig43Radix(b *testing.B) { benchPair(b, "radix", 4<<10) }

// --- Section 4.3: hot-spot occupancy ----------------------------------------

func BenchmarkSec43Hotspot(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		cfg := arch.DefaultConfig()
		cfg.Nodes = 16
		cfg.MemBytesPerNode = 8 << 20
		cfg.CacheSize = 4 << 10
		cfg.Placement = arch.PlaceNodeZero
		f, id, err := exp.Pair("fft", cfg, apps.Params{Procs: 16, Scale: o.Scale}, false)
		if err != nil {
			b.Fatal(err)
		}
		hot := f.Machine.Nodes[0]
		b.ReportMetric(100*hot.Magic.PPOcc.Fraction(f.Machine.Elapsed), "hot_pp_occ_%")
		b.ReportMetric(100*hot.Mem.Occupancy(f.Machine.Elapsed), "hot_mem_occ_%")
		b.ReportMetric(exp.Slowdown(f, id), "slowdown_%")
	}
}

// --- Section 4.5: 64-processor scaling --------------------------------------

func BenchmarkSec45FFT64(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		cfg := arch.DefaultConfig()
		cfg.Nodes = 64
		cfg.MemBytesPerNode = 4 << 20
		f, id, err := exp.Pair("fft", cfg, apps.Params{Procs: 64, Scale: o.Scale}, false)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(exp.Slowdown(f, id), "slowdown_%")
	}
}

// --- Table 5.1: speculative memory initiation --------------------------------

func BenchmarkTable51FFT(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		cfg := arch.DefaultConfig()
		cfg.Nodes = 16
		cfg.MemBytesPerNode = 8 << 20
		p := apps.Params{Procs: 16, Scale: o.Scale}
		on, err := exp.RunApp("fft", cfg, p, false)
		if err != nil {
			b.Fatal(err)
		}
		cfg.Speculation = false
		off, err := exp.RunApp("fft", cfg, p, false)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*on.Report.SpecUseless, "useless_spec_%")
		b.ReportMetric(100*(float64(off.Report.Elapsed)/float64(on.Report.Elapsed)-1), "no_spec_slowdown_%")
	}
}

// --- Section 5.2: MDC stress --------------------------------------------------

func BenchmarkSec52MDCRadix(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := arch.DefaultConfig()
		cfg.Nodes = 1
		cfg.MemBytesPerNode = 32 << 20
		p := apps.Params{Procs: 1, Scale: 2}
		r, err := exp.RunApp("radix", cfg, p, false)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*r.Report.MDCReadMissRate, "mdc_read_miss_%")
	}
}

// --- Table 5.2 / Section 5.3: PP architecture ---------------------------------

func BenchmarkTable52PPStats(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		cfg := arch.DefaultConfig()
		cfg.Nodes = 16
		cfg.MemBytesPerNode = 8 << 20
		r, err := exp.RunApp("fft", cfg, apps.Params{Procs: 16, Scale: o.Scale}, false)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Report.DualIssueEff, "dual_issue_eff")
		b.ReportMetric(100*r.Report.SpecialUse, "special_use_%")
		b.ReportMetric(r.Report.HandlersPerMiss, "handlers_per_miss")
	}
}

func BenchmarkSec53Ablation(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		cfg := arch.DefaultConfig()
		cfg.Nodes = 16
		cfg.MemBytesPerNode = 8 << 20
		p := apps.Params{Procs: 16, Scale: o.Scale}
		opt, err := exp.RunApp("mp3d", cfg, p, false)
		if err != nil {
			b.Fatal(err)
		}
		cfg.PPMode = arch.PPNoSpecial
		slow, err := exp.RunApp("mp3d", cfg, p, false)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*(float64(slow.Report.Elapsed)/float64(opt.Report.Elapsed)-1), "ablation_slowdown_%")
	}
}

// --- microbenchmarks of simulator hot paths -----------------------------------

func BenchmarkEngineEvents(b *testing.B) {
	e := sim.NewEngine()
	n := 0
	var tick func()
	tick = func() {
		n++
		if n < b.N {
			e.After(1, tick)
		}
	}
	e.At(0, tick)
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkPPHandler measures raw handler emulation speed on the protocol's
// local-read handler.
func BenchmarkPPHandler(b *testing.B) {
	cfg := arch.DefaultConfig()
	prog, err := protocol.Build(&cfg)
	if err != nil {
		b.Fatal(err)
	}
	env := nopEnv{}
	pp := ppsim.New(prog.Code, int(prog.Layout.MemBytes), ppsim.NewMDC(cfg.MDCSize, cfg.MDCWays), env)
	prog.Layout.InitMemory(pp.Mem, 0, 0, 16)
	pp.Start("pp_init")
	pp.InHeader(ppisa.HdrAddr, 0x8000)
	pp.InHeader(ppisa.HdrDirOff, prog.Layout.DirOffset(0x8000>>7))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if st, _ := pp.Start("pi_get_local"); st != ppsim.StatusDone {
			b.Fatal("handler blocked")
		}
	}
}

type nopEnv struct{}

func (nopEnv) TrySend(ppsim.OutHeader, uint64) bool { return true }
func (nopEnv) MemRead(uint64, uint64)               {}
func (nopEnv) MemWrite(uint64, uint64)              {}
func (nopEnv) MDCFill(uint64, bool, uint64) uint64  { return 29 }

// BenchmarkLockHandoff measures simulated lock throughput end to end.
func BenchmarkLockHandoff(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := arch.DefaultConfig()
		cfg.Nodes = 8
		cfg.MemBytesPerNode = 1 << 20
		m, err := core.New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		w := workload.NewWorld(m)
		lock := w.NewLock(0)
		cell := w.AllocOnNode(arch.LineSize, 1)
		err = w.Run(func(c *workload.Ctx) {
			for k := 0; k < 10; k++ {
				lock.Acquire(c)
				c.WriteU(cell, c.ReadU(cell)+1)
				lock.Release(c)
				c.Busy(100)
			}
		}, 100_000_000)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(m.Elapsed)/80, "cycles/section")
	}
}

// BenchmarkSimThroughput measures end-to-end simulation speed in simulated
// references per wall second.
func BenchmarkSimThroughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := arch.DefaultConfig()
		cfg.Nodes = 8
		cfg.MemBytesPerNode = 4 << 20
		r, err := exp.RunApp("ocean", cfg, apps.Params{Procs: 8, Scale: 4}, false)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(r.Report.Refs), "refs")
	}
}

// Keep cpu referenced for the microbenchmark imports.
var _ = cpu.RMWAdd

// BenchmarkProtoCompare measures the bit-vector protocol against dynamic
// pointer allocation on one workload.
func BenchmarkProtoCompare(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		cfg := arch.DefaultConfig()
		cfg.Nodes = 16
		cfg.MemBytesPerNode = 8 << 20
		p := apps.Params{Procs: 16, Scale: o.Scale}
		dyn, err := exp.RunApp("fft", cfg, p, false)
		if err != nil {
			b.Fatal(err)
		}
		cfg.Protocol = arch.ProtoBitVector
		bv, err := exp.RunApp("fft", cfg, p, false)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*(float64(bv.Report.Elapsed)/float64(dyn.Report.Elapsed)-1), "bitvec_delta_%")
	}
}
