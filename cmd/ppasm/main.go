// Ppasm assembles, schedules and inspects PP protocol code: it prints the
// scheduled dual-issue image of the built-in coherence protocol (or a user
// handler file), its static statistics, and the DLX-substitution expansion
// (Table 5.3's raw material).
//
// Usage:
//
//	ppasm [-mode dual|single|dlx] [-stats] [file.s]
//
// Without a file the built-in cache-coherence protocol is used.
package main

import (
	"flag"
	"fmt"
	"os"

	"flashsim/internal/arch"
	"flashsim/internal/ppisa"
	"flashsim/internal/protocol"
)

func main() {
	mode := flag.String("mode", "dual", "schedule mode: dual, single, dlx")
	statsOnly := flag.Bool("stats", false, "print statistics only, not the listing")
	proto := flag.String("protocol", "dynptr", "built-in protocol: dynptr, bitvec")
	flag.Parse()

	cfg := arch.DefaultConfig()
	if *proto == "bitvec" {
		cfg.Protocol = arch.ProtoBitVector
	}
	layout := protocol.NewLayout(&cfg)

	var src *ppisa.Source
	var err error
	if flag.NArg() > 0 {
		text, rerr := os.ReadFile(flag.Arg(0))
		if rerr != nil {
			fatal("%v", rerr)
		}
		src, err = ppisa.Assemble(string(text), layout.Symbols())
	} else {
		prog, perr := protocol.Build(&cfg)
		if perr != nil {
			fatal("%v", perr)
		}
		src = prog.Source
	}
	if err != nil {
		fatal("%v", err)
	}

	smode := ppisa.DualIssue
	switch *mode {
	case "dual":
	case "single":
		smode = ppisa.SingleIssue
	case "dlx":
		src = ppisa.SubstituteDLX(src)
		smode = ppisa.SingleIssue
	default:
		fatal("unknown mode %q", *mode)
	}
	prog := ppisa.Schedule(src, smode)

	fmt.Printf("source instructions: %d\n", prog.SrcInstrs)
	fmt.Printf("scheduled:           %d pairs, %d non-NOP slots\n", len(prog.Pairs), prog.StaticNonNops())
	fmt.Printf("static code size:    %d bytes (%.1f KB)\n", prog.CodeBytes(), float64(prog.CodeBytes())/1024)
	fmt.Printf("static fill:         %.2f instructions/pair\n",
		float64(prog.StaticNonNops())/float64(len(prog.Pairs)))
	fmt.Printf("entry points:        %d\n", len(prog.Entries))
	if *statsOnly {
		return
	}

	// Invert the entry map for labeling.
	labels := map[int][]string{}
	for name, pc := range prog.Entries {
		labels[pc] = append(labels[pc], name)
	}
	fmt.Println()
	for i, pr := range prog.Pairs {
		for _, l := range labels[i] {
			fmt.Printf("%s:\n", l)
		}
		fmt.Printf("  %4d: %-34s | %s\n", i, pr.A.String(), pr.B.String())
	}
}

func fatal(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "ppasm: "+format+"\n", args...)
	os.Exit(1)
}
