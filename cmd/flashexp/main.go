// Flashexp regenerates the tables and figures of "The Performance Impact of
// Flexibility in the Stanford FLASH Multiprocessor" (ASPLOS 1994).
//
// Usage:
//
//	flashexp [-scale N] [-procs N] [-noverify] [-parallel N]
//	         [-pp-dispatch compiled|interp] <experiment>...
//	flashexp all
//
// Experiments: table3.3 table3.4 fig4.1 fig4.2 fig4.3 sec4.3 sec4.5
// table5.1 table5.1small sec5.2 table5.2 table5.3 sec5.3
//
// -scale multiplies every application's problem-size divisor; -scale 1 runs
// the paper's sizes (slow), the default 4 finishes the full suite in
// minutes.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"flashsim/internal/exp"
)

func main() {
	scale := flag.Int("scale", 4, "problem size divisor (1 = paper sizes)")
	procs := flag.Int("procs", 0, "override processor count (0 = paper defaults)")
	noverify := flag.Bool("noverify", false, "skip result verification after runs")
	parallel := flag.Int("parallel", 0, "concurrent simulations per experiment (0 = adaptive from GOMAXPROCS)")
	jsonOut := flag.Bool("json", false, "emit experiment results as a JSON array on stdout")
	ppDispatch := flag.String("pp-dispatch", "", "PP emulator engine: compiled or interp (host speed only; simulated results are identical)")
	engine := flag.String("engine", "", "event engine: seq or sharded (host speed only; simulated results are identical)")
	flag.Parse()

	switch *ppDispatch {
	case "":
		// Process default (FLASHSIM_PP_DISPATCH if already set, else compiled).
	case "compiled", "interp":
		// Experiments build their own machine configs deep inside exp, so the
		// override travels via the environment knob ppsim consults.
		os.Setenv("FLASHSIM_PP_DISPATCH", *ppDispatch)
	default:
		fmt.Fprintf(os.Stderr, "flashexp: unknown pp-dispatch %q\n", *ppDispatch)
		os.Exit(2)
	}
	switch *engine {
	case "":
		// Process default (FLASHSIM_ENGINE if already set, else sequential).
	case "seq", "sharded":
		// Same environment route as -pp-dispatch: experiments build their
		// own machine configs deep inside exp.
		os.Setenv("FLASHSIM_ENGINE", *engine)
	default:
		fmt.Fprintf(os.Stderr, "flashexp: unknown engine %q\n", *engine)
		os.Exit(2)
	}

	o := exp.Options{Scale: *scale, Verify: !*noverify, Parallelism: *parallel}
	if *procs > 0 {
		o.Procs = *procs
	}

	type experiment struct {
		name string
		run  func() (string, error)
	}
	all := []experiment{
		{"table3.3", exp.Table33},
		{"table3.4", exp.Table34},
		{"fig4.1", func() (string, error) { return exp.Fig41(o) }},
		{"fig4.2", func() (string, error) { return exp.Fig42(o) }},
		{"fig4.3", func() (string, error) { return exp.Fig43(o) }},
		{"sec4.3", func() (string, error) { return exp.Sec43(o) }},
		{"sec4.5", func() (string, error) { return exp.Sec45(o) }},
		{"table5.1", func() (string, error) { return exp.Table51(o, 1<<20) }},
		{"table5.1small", func() (string, error) { return exp.Table51(o, 4<<10) }},
		{"sec5.2", func() (string, error) { return exp.Sec52(o) }},
		{"table5.2", func() (string, error) { return exp.Table52(o, 1<<20) }},
		{"table5.3", func() (string, error) { return exp.Table53() }},
		{"sec5.3", func() (string, error) { return exp.Sec53(o) }},
		{"protocompare", func() (string, error) { return exp.ProtoCompare(o) }},
		{"ablations", func() (string, error) { return exp.Ablations(o) }},
	}
	byName := map[string]experiment{}
	for _, e := range all {
		byName[e.name] = e
	}

	args := flag.Args()
	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, "usage: flashexp [-scale N] <experiment>|all ...")
		for _, e := range all {
			fmt.Fprintln(os.Stderr, "  ", e.name)
		}
		os.Exit(2)
	}
	var selected []experiment
	if len(args) == 1 && args[0] == "all" {
		selected = all
	} else {
		for _, a := range args {
			e, ok := byName[a]
			if !ok {
				fmt.Fprintf(os.Stderr, "flashexp: unknown experiment %q\n", a)
				os.Exit(2)
			}
			selected = append(selected, e)
		}
	}

	type result struct {
		Name        string  `json:"name"`
		WallSeconds float64 `json:"wall_seconds"`
		Output      string  `json:"output"`
	}
	var results []result
	for _, e := range selected {
		start := time.Now()
		out, err := e.run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "flashexp: %s: %v\n", e.name, err)
			os.Exit(1)
		}
		wall := time.Since(start).Seconds()
		if *jsonOut {
			results = append(results, result{Name: e.name, WallSeconds: wall, Output: out})
			fmt.Fprintf(os.Stderr, "flashexp: %s done (%.1fs)\n", e.name, wall)
			continue
		}
		fmt.Printf("==== %s (%.1fs) ====\n%s\n", e.name, wall, out)
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(results); err != nil {
			fmt.Fprintf(os.Stderr, "flashexp: json: %v\n", err)
			os.Exit(1)
		}
	}
}
