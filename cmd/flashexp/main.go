// Flashexp regenerates the tables and figures of "The Performance Impact of
// Flexibility in the Stanford FLASH Multiprocessor" (ASPLOS 1994).
//
// Usage:
//
//	flashexp [-scale N] [-procs N] [-noverify] [-parallel N]
//	         [-pp-dispatch compiled|interp] [-engine seq|sharded]
//	         [-engine-sync barrier|watermark] [-metrics] [-metrics-out f]
//	         [-pprof dir] <experiment>...
//	flashexp all
//	flashexp profile [-scale N] [-procs N] [-noverify]
//	         [-engine seq|sharded] [-engine-sync barrier|watermark]
//	         [-workers N] [-metrics-out f] [-pprof dir]
//	flashexp explore [-app name] [-scale N] [-procs N] [-prefix-refs N]
//	         [-cold] [-cache-dir dir] [-out f] [-table-out f] [-verify]
//
// Experiments: table3.3 table3.4 fig4.1 fig4.2 fig4.3 sec4.3 sec4.5
// table5.1 table5.1small sec5.2 table5.2 table5.3 sec5.3
//
// -scale multiplies every application's problem-size divisor; -scale 1 runs
// the paper's sizes (slow), the default 4 finishes the full suite in
// minutes.
//
// The profile subcommand runs the Figure 4.1 applications with host-side
// self-profiling and prints where the simulator's own wall time goes:
// per-shard window-execution and barrier/horizon-wait shares, outbox drain,
// merge and frontier-solve cost, synchronization-operation counts, and
// per-app allocation/GC accounting. -engine, -engine-sync, and -workers
// select the backend under profile, so barrier vs watermark runs of the
// same suite can be compared from one command:
//
//	flashexp profile -engine-sync=barrier
//	flashexp profile -engine-sync=watermark -workers 4
//
// The explore subcommand sweeps the design space of Chapter 5's flexibility
// knobs (protocol data structure, MAGIC data cache size, PP clock ratio,
// network queue depth, network transit/lookahead window) crossed with the
// host execution axes (engine, sync scheme) and prints a Pareto table of
// slowdown-vs-ideal against a hardware-cost proxy. By default the sweep is
// warm-started: the common workload prefix is simulated once per simulated
// configuration, snapshotted, and forked copy-on-write into pooled machines;
// -cache-dir adds a content-addressed result cache so repeated sweeps skip
// simulation entirely. -cold runs every point from scratch instead — the
// result files are byte-identical either way:
//
//	flashexp explore -app fft -cache-dir /tmp/fc -out pareto.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"flashsim/internal/apps"
	"flashsim/internal/arch"
	"flashsim/internal/cliutil"
	"flashsim/internal/exp"
	"flashsim/internal/metrics"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "profile" {
		profileMain(os.Args[2:])
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "explore" {
		exploreMain(os.Args[2:])
		return
	}
	scale := flag.Int("scale", 4, "problem size divisor (1 = paper sizes)")
	procs := flag.Int("procs", 0, "override processor count (0 = paper defaults)")
	noverify := flag.Bool("noverify", false, "skip result verification after runs")
	parallel := flag.Int("parallel", 0, "concurrent simulations per experiment (0 = adaptive from GOMAXPROCS)")
	jsonOut := flag.Bool("json", false, "emit experiment results as a JSON array on stdout")
	ppDispatch := flag.String("pp-dispatch", "", "PP emulator engine: compiled or interp (host speed only; simulated results are identical)")
	engine := flag.String("engine", "", "event engine: seq or sharded (host speed only; simulated results are identical)")
	engineSync := flag.String("engine-sync", "", "sharded engine synchronization: barrier or watermark (host speed only; simulated results are identical)")
	netModel := flag.String("net", "", "network latency model: uniform (paper average) or mesh (changes simulated timing)")
	sample := flag.String("sample", "", "sampled-execution schedule for the sampled experiment: default or detail/stride[/warmup] cycles")
	sampleApps := flag.String("sample-apps", "", "comma-separated app subset for the sampled experiment (empty = full Fig 4.1 suite)")
	cacheBytes := flag.Int("cache", 0, "processor cache size in bytes (0 = paper default 1 MB)")
	metricsOn := flag.Bool("metrics", false, "collect host-side metrics; prints per-experiment host totals to stderr")
	metricsOut := flag.String("metrics-out", "", "write the metrics registry snapshot as JSON to this file (implies -metrics)")
	pprofDir := flag.String("pprof", "", "capture cpu.pprof and heap.pprof into this directory")
	flag.Parse()

	stdoutUser := ""
	if *jsonOut {
		stdoutUser = "-json"
	}
	if err := cliutil.DistinctOutputs(stdoutUser,
		cliutil.OutputFlag{Flag: "-metrics-out", Path: *metricsOut},
	); err != nil {
		fmt.Fprintf(os.Stderr, "flashexp: %v\n", err)
		os.Exit(2)
	}

	switch *ppDispatch {
	case "":
		// Process default (FLASHSIM_PP_DISPATCH if already set, else compiled).
	case "compiled", "interp":
		// Experiments build their own machine configs deep inside exp, so the
		// override travels via the environment knob ppsim consults.
		os.Setenv("FLASHSIM_PP_DISPATCH", *ppDispatch)
	default:
		fmt.Fprintf(os.Stderr, "flashexp: unknown pp-dispatch %q\n", *ppDispatch)
		os.Exit(2)
	}
	switch *engine {
	case "":
		// Process default (FLASHSIM_ENGINE if already set, else sequential).
	case "seq", "sharded":
		// Same environment route as -pp-dispatch: experiments build their
		// own machine configs deep inside exp.
		os.Setenv("FLASHSIM_ENGINE", *engine)
	default:
		fmt.Fprintf(os.Stderr, "flashexp: unknown engine %q\n", *engine)
		os.Exit(2)
	}
	switch *engineSync {
	case "":
		// Process default (FLASHSIM_ENGINE_SYNC if already set, else barrier).
	case "barrier", "watermark":
		os.Setenv("FLASHSIM_ENGINE_SYNC", *engineSync)
	default:
		fmt.Fprintf(os.Stderr, "flashexp: unknown engine-sync %q\n", *engineSync)
		os.Exit(2)
	}

	o := exp.Options{Scale: *scale, Verify: !*noverify, Parallelism: *parallel}
	if *procs > 0 {
		o.Procs = *procs
	}
	o.CacheBytes = *cacheBytes
	switch *netModel {
	case "":
		// Paper default: uniform average transit.
	case "uniform":
		o.NetModel = arch.NetUniform
	case "mesh":
		o.NetModel = arch.NetMesh
	default:
		fmt.Fprintf(os.Stderr, "flashexp: unknown net model %q\n", *netModel)
		os.Exit(2)
	}
	if *sample != "" {
		spec, err := arch.ParseSampleSpec(*sample)
		if err != nil {
			fmt.Fprintf(os.Stderr, "flashexp: %v\n", err)
			os.Exit(2)
		}
		o.Sample = spec
	}
	if *sampleApps != "" {
		o.SampleApps = strings.Split(*sampleApps, ",")
		// Fail before any simulation starts: a typo'd app name in a long
		// sampled sweep should not surface an hour in.
		if err := apps.ValidateNames(o.SampleApps); err != nil {
			fmt.Fprintf(os.Stderr, "flashexp: -sample-apps: %v\n", err)
			os.Exit(2)
		}
	}

	type experiment struct {
		name string
		run  func() (string, error)
	}
	all := []experiment{
		{"table3.3", exp.Table33},
		{"table3.4", exp.Table34},
		{"fig4.1", func() (string, error) { return exp.Fig41(o) }},
		{"fig4.2", func() (string, error) { return exp.Fig42(o) }},
		{"fig4.3", func() (string, error) { return exp.Fig43(o) }},
		{"sec4.3", func() (string, error) { return exp.Sec43(o) }},
		{"sec4.5", func() (string, error) { return exp.Sec45(o) }},
		{"table5.1", func() (string, error) { return exp.Table51(o, 1<<20) }},
		{"table5.1small", func() (string, error) { return exp.Table51(o, 4<<10) }},
		{"sec5.2", func() (string, error) { return exp.Sec52(o) }},
		{"table5.2", func() (string, error) { return exp.Table52(o, 1<<20) }},
		{"table5.3", func() (string, error) { return exp.Table53() }},
		{"sec5.3", func() (string, error) { return exp.Sec53(o) }},
		{"protocompare", func() (string, error) { return exp.ProtoCompare(o) }},
		{"ablations", func() (string, error) { return exp.Ablations(o) }},
		{"sampled", func() (string, error) { return exp.Sampled(o) }},
	}
	byName := map[string]experiment{}
	for _, e := range all {
		byName[e.name] = e
	}

	args := flag.Args()
	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, "usage: flashexp [-scale N] <experiment>|all ...")
		for _, e := range all {
			fmt.Fprintln(os.Stderr, "  ", e.name)
		}
		os.Exit(2)
	}
	var selected []experiment
	if len(args) == 1 && args[0] == "all" {
		selected = all
	} else {
		for _, a := range args {
			e, ok := byName[a]
			if !ok {
				fmt.Fprintf(os.Stderr, "flashexp: unknown experiment %q\n", a)
				os.Exit(2)
			}
			selected = append(selected, e)
		}
	}

	prof, err := cliutil.StartPprof(*pprofDir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "flashexp: pprof: %v\n", err)
		os.Exit(1)
	}
	var reg *metrics.Registry
	if *metricsOn || *metricsOut != "" {
		reg = metrics.NewRegistry()
	}
	hostBefore := metrics.ReadHost()

	type result struct {
		Name        string  `json:"name"`
		WallSeconds float64 `json:"wall_seconds"`
		Output      string  `json:"output"`
	}
	var results []result
	for _, e := range selected {
		start := time.Now()
		out, err := e.run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "flashexp: %s: %v\n", e.name, err)
			os.Exit(1)
		}
		wall := time.Since(start).Seconds()
		reg.Gauge("flashexp_experiment_wall_ns", "exp", e.name).Set(wall1e9(wall))
		if *jsonOut {
			results = append(results, result{Name: e.name, WallSeconds: wall, Output: out})
			fmt.Fprintf(os.Stderr, "flashexp: %s done (%.1fs)\n", e.name, wall)
			continue
		}
		fmt.Printf("==== %s (%.1fs) ====\n%s\n", e.name, wall, out)
	}
	if reg != nil {
		host := metrics.ReadHost().Sub(hostBefore)
		host.Publish(reg, "flashexp_host")
		fmt.Fprintf(os.Stderr, "flashexp: host totals: wall %.1fs, %d MB allocated, %d GC cycles, %.1fms GC pause\n",
			float64(host.WallNS)/1e9, host.AllocBytes>>20, host.GCCycles, float64(host.GCPauseNS)/1e6)
		if *metricsOut != "" {
			if err := writeSnapshot(reg, *metricsOut); err != nil {
				fmt.Fprintf(os.Stderr, "flashexp: metrics: %v\n", err)
				os.Exit(1)
			}
		}
	}
	if err := prof.Stop(); err != nil {
		fmt.Fprintf(os.Stderr, "flashexp: pprof: %v\n", err)
		os.Exit(1)
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(results); err != nil {
			fmt.Fprintf(os.Stderr, "flashexp: json: %v\n", err)
			os.Exit(1)
		}
	}
}

func wall1e9(s float64) int64 { return int64(s * 1e9) }

// writeSnapshot dumps the registry as indented JSON into path.
func writeSnapshot(reg *metrics.Registry, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := reg.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// exploreMain is the `flashexp explore` subcommand: the design-space sweep
// over flexibility knobs with warm-started (snapshot-forked, pooled, cached)
// or cold execution.
func exploreMain(args []string) {
	fs := flag.NewFlagSet("flashexp explore", flag.ExitOnError)
	app := fs.String("app", "fft", "application to sweep (one of: "+apps.ValidNames()+")")
	scale := fs.Int("scale", 0, "problem size divisor (0 = per-app sweep default)")
	procs := fs.Int("procs", 4, "processor count")
	prefixRefs := fs.Uint64("prefix-refs", 20000, "per-CPU reference count of the shared warm-start prefix")
	cold := fs.Bool("cold", false, "run every point from scratch (no snapshot fork, pool, or cache)")
	cacheDir := fs.String("cache-dir", "", "content-addressed result cache directory (warm mode only)")
	out := fs.String("out", "", "write the deterministic sweep result JSON to this file (- = stdout)")
	tableOut := fs.String("table-out", "", "write the Pareto table to this file instead of stdout")
	verify := fs.Bool("verify", false, "verify application results at every simulated point")
	fs.Parse(args)
	if fs.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "flashexp explore: unexpected argument %q\n", fs.Arg(0))
		os.Exit(2)
	}
	if err := apps.ValidateNames([]string{*app}); err != nil {
		fmt.Fprintf(os.Stderr, "flashexp explore: -app: %v\n", err)
		os.Exit(2)
	}
	// A "-" value claims stdout inside DistinctOutputs, so a second stdout
	// writer (e.g. -table-out -) is rejected with both flags named.
	if err := cliutil.DistinctOutputs("",
		cliutil.OutputFlag{Flag: "-out", Path: *out},
		cliutil.OutputFlag{Flag: "-table-out", Path: *tableOut},
	); err != nil {
		fmt.Fprintf(os.Stderr, "flashexp explore: %v\n", err)
		os.Exit(2)
	}

	o := exp.ExploreOptions{
		App:        *app,
		Scale:      *scale,
		Procs:      *procs,
		PrefixRefs: *prefixRefs,
		Warm:       !*cold,
		CacheDir:   *cacheDir,
		Verify:     *verify,
	}
	if *cold && *cacheDir != "" {
		fmt.Fprintln(os.Stderr, "flashexp explore: -cache-dir is ignored with -cold")
		o.CacheDir = ""
	}
	start := time.Now()
	res, err := exp.Explore(o)
	if err != nil {
		fmt.Fprintf(os.Stderr, "flashexp explore: %v\n", err)
		os.Exit(1)
	}
	wall := time.Since(start).Seconds()

	// When -out is stdout, the human-readable table moves to stderr so the
	// JSON stream stays machine-parseable.
	tableDst := os.Stdout
	if *out == "-" {
		tableDst = os.Stderr
	}
	if *tableOut != "" {
		f, err := os.Create(*tableOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "flashexp explore: %v\n", err)
			os.Exit(1)
		}
		tableDst = f
		defer f.Close()
	}
	pareto := 0
	for _, p := range res.Points {
		if p.Pareto {
			pareto++
		}
	}
	fmt.Fprint(tableDst, res.Table())
	fmt.Fprintf(os.Stderr,
		"flashexp explore: %s scale=%d procs=%d: %d points (%d Pareto), cache %d hits / %d misses, pool %d reuses / %d builds, %.1fs\n",
		res.App, res.Scale, res.Procs, len(res.Points), pareto,
		res.CacheHits, res.CacheMisses, res.PoolHits, res.PoolBuilds, wall)

	if *out != "" {
		buf, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "flashexp explore: json: %v\n", err)
			os.Exit(1)
		}
		buf = append(buf, '\n')
		if *out == "-" {
			os.Stdout.Write(buf)
		} else if err := os.WriteFile(*out, buf, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "flashexp explore: %v\n", err)
			os.Exit(1)
		}
	}
}

// profileMain is the `flashexp profile` subcommand: the Figure 4.1 suite on
// the sharded engine with host-side self-profiling.
func profileMain(args []string) {
	fs := flag.NewFlagSet("flashexp profile", flag.ExitOnError)
	scale := fs.Int("scale", 4, "problem size divisor (1 = paper sizes)")
	procs := fs.Int("procs", 0, "override processor count (0 = paper defaults)")
	noverify := fs.Bool("noverify", false, "skip result verification after runs")
	engine := fs.String("engine", "", "event engine to profile: seq or sharded (default sharded)")
	engineSync := fs.String("engine-sync", "", "sharded engine synchronization to profile: barrier or watermark (default barrier)")
	workers := fs.Int("workers", 0, "sharded engine worker-pool size (0 = GOMAXPROCS)")
	netModel := fs.String("net", "", "network latency model: uniform (paper average) or mesh (changes simulated timing)")
	sample := fs.String("sample", "", "profile under a sampled-execution schedule: default or detail/stride[/warmup] cycles")
	metricsOut := fs.String("metrics-out", "", "write the merged metrics snapshots as JSON to this file")
	pprofDir := fs.String("pprof", "", "capture cpu.pprof and heap.pprof into this directory")
	fs.Parse(args)
	if fs.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "flashexp profile: unexpected argument %q\n", fs.Arg(0))
		os.Exit(2)
	}

	prof, err := cliutil.StartPprof(*pprofDir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "flashexp profile: pprof: %v\n", err)
		os.Exit(1)
	}
	o := exp.Options{Scale: *scale, Verify: !*noverify, Procs: *procs, EngineWorkers: *workers}
	switch *netModel {
	case "":
		// Paper default: uniform average transit.
	case "uniform":
		o.NetModel = arch.NetUniform
	case "mesh":
		o.NetModel = arch.NetMesh
	default:
		fmt.Fprintf(os.Stderr, "flashexp profile: unknown net model %q\n", *netModel)
		os.Exit(2)
	}
	if *sample != "" {
		spec, err := arch.ParseSampleSpec(*sample)
		if err != nil {
			fmt.Fprintf(os.Stderr, "flashexp profile: %v\n", err)
			os.Exit(2)
		}
		o.Sample = spec
	}
	switch *engine {
	case "":
		// Profile harness default: the sharded engine.
	case "seq":
		o.Engine = arch.EngineSeq
	case "sharded":
		o.Engine = arch.EngineSharded
	default:
		fmt.Fprintf(os.Stderr, "flashexp profile: unknown engine %q\n", *engine)
		os.Exit(2)
	}
	switch *engineSync {
	case "":
		// Process default (FLASHSIM_ENGINE_SYNC if set, else barrier).
	case "barrier":
		o.EngineSync = arch.EngineSyncBarrier
	case "watermark":
		o.EngineSync = arch.EngineSyncWatermark
	default:
		fmt.Fprintf(os.Stderr, "flashexp profile: unknown engine-sync %q\n", *engineSync)
		os.Exit(2)
	}
	profs, err := exp.ProfileApps(o, exp.Fig41Apps())
	if err != nil {
		fmt.Fprintf(os.Stderr, "flashexp profile: %v\n", err)
		os.Exit(1)
	}
	fmt.Print(exp.RenderProfiles(profs))
	if *metricsOut != "" {
		snaps := map[string]metrics.Snapshot{}
		for _, p := range profs {
			snaps[p.App] = p.Registry.Snapshot()
		}
		f, err := os.Create(*metricsOut)
		if err == nil {
			enc := json.NewEncoder(f)
			enc.SetIndent("", "  ")
			err = enc.Encode(snaps)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "flashexp profile: metrics: %v\n", err)
			os.Exit(1)
		}
	}
	if err := prof.Stop(); err != nil {
		fmt.Fprintf(os.Stderr, "flashexp profile: pprof: %v\n", err)
		os.Exit(1)
	}
}
