// Flashsim runs one workload on a simulated FLASH or idealized machine and
// prints the full statistics report.
//
// Usage:
//
//	flashsim [-machine flash|ideal] [-app fft] [-procs 16] [-cache 1048576]
//	         [-scale 4] [-placement rr|ft|node0] [-nospec] [-ppmode dual|single|dlx]
//	         [-pp-dispatch compiled|interp] [-engine seq|sharded]
//	         [-engine-sync barrier|watermark] [-net uniform|mesh]
//	         [-mdc bytes] [-pp-clock-div N] [-net-queue-cap N] [-data-bufs N]
//	         [-sample default|detail/stride[/warmup]]
//	         [-json] [-trace out.jsonl]
//	         [-trace-format jsonl|chrome] [-occ-window N]
//	         [-metrics] [-metrics-out metrics.json] [-pprof dir]
//
// -json prints the statistics report as JSON on stdout (progress goes to
// stderr). -trace streams every simulation event to the named file, either as
// JSON Lines (one event per line) or, with -trace-format chrome, as a Chrome
// trace-event file loadable in Perfetto (ui.perfetto.dev) or chrome://tracing.
//
// -metrics prints the engine's host-cost attribution (window execution,
// barrier wait, outbox drain, merge) to stderr after the run; -metrics-out
// additionally writes the full metrics registry snapshot as JSON. Both are
// purely observational: simulated cycles are bit-identical with metrics on
// or off. -pprof captures cpu.pprof and heap.pprof into the given directory.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"flashsim/internal/apps"
	"flashsim/internal/arch"
	"flashsim/internal/cliutil"
	"flashsim/internal/core"
	"flashsim/internal/metrics"
	"flashsim/internal/sim"
	"flashsim/internal/stats"
	"flashsim/internal/trace"
	"flashsim/internal/workload"
)

func main() {
	machine := flag.String("machine", "flash", "machine kind: flash or ideal")
	app := flag.String("app", "fft", "workload: barnes fft lu mp3d ocean os radix")
	procs := flag.Int("procs", 16, "number of processors")
	cache := flag.Int("cache", 1<<20, "processor cache bytes")
	scale := flag.Int("scale", 4, "problem size divisor (1 = paper size)")
	placement := flag.String("placement", "ft", "page placement: rr, ft, node0")
	nospec := flag.Bool("nospec", false, "disable speculative memory reads")
	ppmode := flag.String("ppmode", "dual", "PP mode: dual, single, dlx")
	ppDispatch := flag.String("pp-dispatch", "", "PP emulator engine: compiled or interp (host speed only; simulated results are identical)")
	engine := flag.String("engine", "", "event engine: seq or sharded (host speed only; simulated results are identical)")
	engineSync := flag.String("engine-sync", "", "sharded engine synchronization: barrier or watermark (host speed only; simulated results are identical)")
	netModel := flag.String("net", "uniform", "network latency model: uniform (paper average) or mesh (per-pair 2-D mesh transit; changes simulated timing)")
	sample := flag.String("sample", "", "sampled execution schedule: off, default, or detail/stride[/warmup] cycles (changes simulated timing; report gains an extrapolated estimate)")
	proto := flag.String("protocol", "dynptr", "coherence protocol: dynptr, bitvec")
	membytes := flag.Int("membytes", 8<<20, "memory bytes per node")
	mdc := flag.Int("mdc", 0, "MAGIC data cache bytes (0 = paper default)")
	ppClockDiv := flag.Int("pp-clock-div", 0, "PP clock divisor vs the 100 MHz system clock (0 = 1, full speed)")
	netQueueCap := flag.Int("net-queue-cap", 0, "MAGIC outgoing network queue entries (0 = paper default 16)")
	dataBufs := flag.Int("data-bufs", 0, "MAGIC data buffer pool size (0 = paper default)")
	jsonOut := flag.Bool("json", false, "emit the statistics report as JSON on stdout")
	traceFile := flag.String("trace", "", "write a simulation event trace to this file")
	traceFormat := flag.String("trace-format", "jsonl", "trace file format: jsonl or chrome")
	occWindow := flag.Uint64("occ-window", 0, "sample memory/PP occupancy per window of N cycles (0 = off)")
	limit := flag.Uint64("limit", 0, "abort if the simulation passes this many cycles (0 = no limit)")
	metricsOn := flag.Bool("metrics", false, "collect host-side metrics and print the engine profile to stderr")
	metricsOut := flag.String("metrics-out", "", "write the metrics registry snapshot as JSON to this file (implies -metrics)")
	pprofDir := flag.String("pprof", "", "capture cpu.pprof and heap.pprof into this directory")
	flag.Parse()

	stdoutUser := ""
	if *jsonOut {
		stdoutUser = "-json"
	}
	if err := cliutil.DistinctOutputs(stdoutUser,
		cliutil.OutputFlag{Flag: "-trace", Path: *traceFile},
		cliutil.OutputFlag{Flag: "-metrics-out", Path: *metricsOut},
	); err != nil {
		fatal("%v", err)
	}

	cfg := arch.DefaultConfig()
	cfg.Nodes = *procs
	cfg.CacheSize = *cache
	cfg.MemBytesPerNode = *membytes
	cfg.Speculation = !*nospec
	switch *machine {
	case "flash":
		cfg.Kind = arch.KindFLASH
	case "ideal":
		cfg.Kind = arch.KindIdeal
	default:
		fatal("unknown machine %q", *machine)
	}
	switch *placement {
	case "rr":
		cfg.Placement = arch.PlaceRoundRobin
	case "ft":
		cfg.Placement = arch.PlaceFirstTouch
	case "node0":
		cfg.Placement = arch.PlaceNodeZero
	default:
		fatal("unknown placement %q", *placement)
	}
	switch *proto {
	case "dynptr":
		cfg.Protocol = arch.ProtoDynPtr
	case "bitvec":
		cfg.Protocol = arch.ProtoBitVector
	default:
		fatal("unknown protocol %q", *proto)
	}
	switch *ppmode {
	case "dual":
		cfg.PPMode = arch.PPDualIssue
	case "single":
		cfg.PPMode = arch.PPSingleIssue
	case "dlx":
		cfg.PPMode = arch.PPNoSpecial
	default:
		fatal("unknown ppmode %q", *ppmode)
	}
	switch *ppDispatch {
	case "":
		// Leave PPDispatchAuto: FLASHSIM_PP_DISPATCH if set, else compiled.
	case "compiled":
		cfg.PPDispatch = arch.PPDispatchCompiled
	case "interp":
		cfg.PPDispatch = arch.PPDispatchInterp
	default:
		fatal("unknown pp-dispatch %q", *ppDispatch)
	}
	switch *engine {
	case "":
		// Leave EngineAuto: FLASHSIM_ENGINE if set, else sequential.
	case "seq":
		cfg.Engine = arch.EngineSeq
	case "sharded":
		cfg.Engine = arch.EngineSharded
	default:
		fatal("unknown engine %q", *engine)
	}
	switch *engineSync {
	case "":
		// Leave EngineSyncAuto: FLASHSIM_ENGINE_SYNC if set, else barrier.
	case "barrier":
		cfg.EngineSync = arch.EngineSyncBarrier
	case "watermark":
		cfg.EngineSync = arch.EngineSyncWatermark
	default:
		fatal("unknown engine-sync %q", *engineSync)
	}
	switch *netModel {
	case "uniform":
		cfg.NetModel = arch.NetUniform
	case "mesh":
		cfg.NetModel = arch.NetMesh
	default:
		fatal("unknown net model %q", *netModel)
	}
	if *sample != "" {
		spec, err := arch.ParseSampleSpec(*sample)
		if err != nil {
			fatal("%v", err)
		}
		cfg.Sample = spec
	}
	if *mdc > 0 {
		cfg.MDCSize = *mdc
	}
	cfg.PPClockDiv = *ppClockDiv
	cfg.NetQueueCap = *netQueueCap
	cfg.DataBufs = *dataBufs

	prof, err := cliutil.StartPprof(*pprofDir)
	if err != nil {
		fatal("pprof: %v", err)
	}
	hostBefore := metrics.ReadHost()
	m, err := core.New(cfg)
	if err != nil {
		fatal("%v", err)
	}
	var reg *metrics.Registry
	if *metricsOn || *metricsOut != "" {
		reg = metrics.NewRegistry()
		m.EnableMetrics(reg)
	}
	if *traceFile != "" {
		f, err := os.Create(*traceFile)
		if err != nil {
			fatal("%v", err)
		}
		var sink trace.Sink
		switch *traceFormat {
		case "jsonl":
			sink = trace.NewJSONLSink(f)
		case "chrome":
			sink = trace.NewChromeSink(f)
		default:
			fatal("unknown trace format %q", *traceFormat)
		}
		tr := trace.New(sink)
		defer func() {
			if err := tr.Close(); err != nil {
				fatal("trace: %v", err)
			}
		}()
		m.SetTracer(tr)
	}
	m.EnableOccSampling(sim.Cycle(*occWindow))
	w := workload.NewWorld(m)
	a, err := apps.Build(*app, w, apps.Params{Procs: *procs, Scale: *scale})
	if err != nil {
		fatal("%v", err)
	}
	start := time.Now()
	if err := w.Run(a.Run, *limit); err != nil {
		if os.Getenv("FLASHSIM_DEBUG_DUMP") != "" {
			for i, n := range m.Nodes {
				fmt.Fprintf(os.Stderr, "cpu%d: %s\n", i, n.CPU.DebugState())
				if n.Magic != nil {
					fmt.Fprintf(os.Stderr, "magic%d: %s\n", i, n.Magic.DebugState())
				}
			}
		}
		fatal("%v", err)
	}
	if err := a.Verify(); err != nil {
		fatal("verify: %v", err)
	}
	if err := m.CheckCoherence(); err != nil {
		fatal("coherence: %v", err)
	}
	r := stats.Collect(m)
	if reg != nil {
		host := metrics.ReadHost().Sub(hostBefore)
		r.Host = &host
		host.Publish(reg, "flashsim_host")
		if p := m.Eng.Profile(); p != nil {
			fmt.Fprint(os.Stderr, p.String())
		}
		if *metricsOut != "" {
			f, err := os.Create(*metricsOut)
			if err != nil {
				fatal("metrics: %v", err)
			}
			if err := reg.WriteJSON(f); err != nil {
				fatal("metrics: %v", err)
			}
			if err := f.Close(); err != nil {
				fatal("metrics: %v", err)
			}
		}
	}
	if err := prof.Stop(); err != nil {
		fatal("pprof: %v", err)
	}
	if *jsonOut {
		fmt.Fprintf(os.Stderr, "%s on %s (scale 1/%d): verified OK, wall %.1fs\n",
			*app, *machine, *scale, time.Since(start).Seconds())
		out, err := r.JSON()
		if err != nil {
			fatal("json: %v", err)
		}
		os.Stdout.Write(append(out, '\n'))
		return
	}
	fmt.Printf("%s on %s (scale 1/%d): verified OK, wall %.1fs\n\n",
		*app, *machine, *scale, time.Since(start).Seconds())
	fmt.Print(r)
}

func fatal(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "flashsim: "+format+"\n", args...)
	os.Exit(1)
}
