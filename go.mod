module flashsim

go 1.22
