module flashsim

go 1.23
