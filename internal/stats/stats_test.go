package stats

import (
	"strings"
	"testing"

	"flashsim/internal/arch"
	"flashsim/internal/core"
	"flashsim/internal/cpu"
	"flashsim/internal/sim"
)

func runTiny(t *testing.T, kind arch.MachineKind) Report {
	t.Helper()
	cfg := arch.DefaultConfig()
	cfg.Kind = kind
	cfg.Nodes = 2
	cfg.MemBytesPerNode = 1 << 20
	m, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srcs := []cpu.RefSource{
		&core.ScriptSource{Refs: []cpu.Ref{
			{Kind: arch.RefRead, Addr: 0x1000, Busy: 400},
			{Kind: arch.RefWrite, Addr: 0x1000, Busy: 400},
		}},
		&core.ScriptSource{Refs: []cpu.Ref{
			{Kind: arch.RefRead, Addr: 0x1000, Busy: 8000},
		}},
	}
	if err := m.Run(srcs, 1_000_000); err != nil {
		t.Fatal(err)
	}
	return Collect(m)
}

func TestCollectFLASH(t *testing.T) {
	r := runTiny(t, arch.KindFLASH)
	if r.Refs != 3 || r.ReadMisses != 2 {
		t.Fatalf("refs=%d readMisses=%d", r.Refs, r.ReadMisses)
	}
	if r.Elapsed == 0 {
		t.Fatal("no elapsed time")
	}
	if r.Breakdown.Busy <= 0 || r.Breakdown.Read <= 0 {
		t.Fatalf("breakdown: %+v", r.Breakdown)
	}
	if r.HandlerInvocations == 0 || r.DualIssueEff <= 1.0 {
		t.Fatalf("PP stats: %+v", r)
	}
	if r.MissRate <= 0 || r.MissRate > 1 {
		t.Fatalf("miss rate %v", r.MissRate)
	}
	// The remote read (node 1) must be classified.
	total := 0.0
	for c := 0; c < int(arch.NumMissClasses); c++ {
		total += r.ReadClass[c]
	}
	if total < 0.99 || total > 1.01 {
		t.Fatalf("class fractions sum to %v", total)
	}
	s := r.String()
	for _, want := range []string{"FLASH machine", "miss rate", "dual-issue", "MDC"} {
		if !strings.Contains(s, want) {
			t.Fatalf("report missing %q:\n%s", want, s)
		}
	}
}

func TestCollectIdeal(t *testing.T) {
	r := runTiny(t, arch.KindIdeal)
	if r.Machine != arch.KindIdeal {
		t.Fatal("kind wrong")
	}
	if r.HandlerInvocations != 0 || r.AvgPPOcc != 0 {
		t.Fatal("ideal machine must report no PP activity")
	}
}

func TestCRMT(t *testing.T) {
	var r Report
	r.ReadClass[arch.MissLocalClean] = 0.5
	r.ReadClass[arch.MissRemoteClean] = 0.5
	lat := [arch.NumMissClasses]sim.Cycle{24, 100, 92, 100, 136}
	if got := r.CRMT(lat); got != 58 {
		t.Fatalf("CRMT = %v, want 58", got)
	}
}
