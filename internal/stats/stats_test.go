package stats

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"flashsim/internal/arch"
	"flashsim/internal/core"
	"flashsim/internal/cpu"
	"flashsim/internal/sim"
	"flashsim/internal/trace"
)

func runTiny(t *testing.T, kind arch.MachineKind) Report {
	t.Helper()
	cfg := arch.DefaultConfig()
	cfg.Kind = kind
	cfg.Nodes = 2
	cfg.MemBytesPerNode = 1 << 20
	m, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srcs := []cpu.RefSource{
		&core.ScriptSource{Refs: []cpu.Ref{
			{Kind: arch.RefRead, Addr: 0x1000, Busy: 400},
			{Kind: arch.RefWrite, Addr: 0x1000, Busy: 400},
		}},
		&core.ScriptSource{Refs: []cpu.Ref{
			{Kind: arch.RefRead, Addr: 0x1000, Busy: 8000},
		}},
	}
	if err := m.Run(srcs, 1_000_000); err != nil {
		t.Fatal(err)
	}
	return Collect(m)
}

func TestCollectFLASH(t *testing.T) {
	r := runTiny(t, arch.KindFLASH)
	if r.Refs != 3 || r.ReadMisses != 2 {
		t.Fatalf("refs=%d readMisses=%d", r.Refs, r.ReadMisses)
	}
	if r.Elapsed == 0 {
		t.Fatal("no elapsed time")
	}
	if r.Breakdown.Busy <= 0 || r.Breakdown.Read <= 0 {
		t.Fatalf("breakdown: %+v", r.Breakdown)
	}
	if r.HandlerInvocations == 0 || r.DualIssueEff <= 1.0 {
		t.Fatalf("PP stats: %+v", r)
	}
	if r.MissRate <= 0 || r.MissRate > 1 {
		t.Fatalf("miss rate %v", r.MissRate)
	}
	// The remote read (node 1) must be classified.
	total := 0.0
	for c := 0; c < int(arch.NumMissClasses); c++ {
		total += r.ReadClass[c]
	}
	if total < 0.99 || total > 1.01 {
		t.Fatalf("class fractions sum to %v", total)
	}
	s := r.String()
	for _, want := range []string{"FLASH machine", "miss rate", "dual-issue", "MDC"} {
		if !strings.Contains(s, want) {
			t.Fatalf("report missing %q:\n%s", want, s)
		}
	}
}

func TestCollectIdeal(t *testing.T) {
	r := runTiny(t, arch.KindIdeal)
	if r.Machine != arch.KindIdeal {
		t.Fatal("kind wrong")
	}
	if r.HandlerInvocations != 0 || r.AvgPPOcc != 0 {
		t.Fatal("ideal machine must report no PP activity")
	}
}

func TestCRMT(t *testing.T) {
	var r Report
	r.ReadClass[arch.MissLocalClean] = 0.5
	r.ReadClass[arch.MissRemoteClean] = 0.5
	lat := [arch.NumMissClasses]sim.Cycle{24, 100, 92, 100, 136}
	if got := r.CRMT(lat); got != 58 {
		t.Fatalf("CRMT = %v, want 58", got)
	}
}

// TestCRMTWeighting checks that every class contributes with its own weight:
// a distribution concentrated in the most expensive class must dominate one
// concentrated in the cheapest.
func TestCRMTWeighting(t *testing.T) {
	lat := [arch.NumMissClasses]sim.Cycle{24, 100, 92, 100, 136}

	var all Report
	frac := 1.0 / float64(arch.NumMissClasses)
	for c := 0; c < int(arch.NumMissClasses); c++ {
		all.ReadClass[c] = frac
	}
	want := (24.0 + 100 + 92 + 100 + 136) / float64(arch.NumMissClasses)
	if got := all.CRMT(lat); got < want-1e-9 || got > want+1e-9 {
		t.Fatalf("uniform CRMT = %v, want %v", got, want)
	}

	var cheap, dear Report
	cheap.ReadClass[arch.MissLocalClean] = 1
	dear.ReadClass[arch.MissRemoteDirty3rd] = 1
	if cheap.CRMT(lat) != 24 || dear.CRMT(lat) != 136 {
		t.Fatalf("pure-class CRMT = %v / %v, want 24 / 136",
			cheap.CRMT(lat), dear.CRMT(lat))
	}

	var zero Report
	if got := zero.CRMT(lat); got != 0 {
		t.Fatalf("empty CRMT = %v, want 0", got)
	}
}

// goldenFLASHReport is a fully populated FLASH report with fixed values, for
// pinning the String layout.
func goldenFLASHReport() Report {
	r := Report{
		Machine: arch.KindFLASH,
		Nodes:   2,
		Elapsed: 10000,
		Breakdown: Breakdown{
			Busy: 0.5, Read: 0.25, Write: 0.05, Sync: 0.15, Cont: 0.05,
		},
		Refs:       1000,
		Misses:     20,
		ReadMisses: 15,
		MissRate:   0.02,
		Naks:       1,
		AvgMemOcc:  0.1, MaxMemOcc: 0.2,
		AvgPPOcc: 0.15, MaxPPOcc: 0.3,
		DualIssueEff: 1.25, SpecialUse: 0.4,
		PairsPerHandler: 12, HandlersPerMiss: 2.5,
		MDCMissRate: 0.01, MDCReadMissRate: 0.02, SpecUseless: 0.3,
		OccWindow:    5000,
		MemOccSeries: []float64{0.5, 0.25},
		PPOccSeries:  []float64{0.4, 0.1},
	}
	r.ReadClass[arch.MissLocalClean] = 0.2
	r.ReadClass[arch.MissRemoteClean] = 0.4
	r.ReadClass[arch.MissRemoteDirty3rd] = 0.4
	for _, v := range []uint64{30, 40, 50} {
		r.ReadLatency[arch.MissLocalClean].Observe(v)
	}
	h := &trace.Histogram{}
	for _, v := range []uint64{10, 12, 14} {
		h.Observe(v)
	}
	r.HandlerLatency = map[string]*trace.Histogram{"NILocalGet": h}
	return r
}

func TestReportStringGoldenFLASH(t *testing.T) {
	want := "FLASH machine, 2 nodes, 10000 cycles\n" +
		"  breakdown: busy 50.0%  read 25.0%  write 5.0%  sync 15.0%  cont 5.0%\n" +
		"  refs 1000  miss rate 2.000%  read misses 15  naks 1\n" +
		"  read miss classes:  Local Clean 20.0%  Local Dirty Remote 0.0%  Remote Clean 40.0%  Remote Dirty at Home 0.0%  Remote Dirty Remote 40.0%\n" +
		"  mem occ avg 10.0% max 20.0%  PP occ avg 15.0% max 30.0%\n" +
		"  PP: dual-issue 1.25  special 40%  pairs/handler 12.0  handlers/miss 2.50\n" +
		"  MDC: miss 1.00% read-miss 2.00%  spec useless 30.0%\n" +
		"  read latency Local Clean:   n=3 mean=40.0 min=30 p50~40 p90~50 p99~50 max=50\n" +
		"  handler service times:\n" +
		"    NILocalGet               n=3 mean=12.0 min=10 p50~12 p90~14 p99~14 max=14\n" +
		"  mem occ per 5000 cycles: 50% 25%\n" +
		"  PP occ per 5000 cycles: 40% 10%\n"
	if got := goldenFLASHReport().String(); got != want {
		t.Errorf("FLASH report rendering changed:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func TestReportStringGoldenIdeal(t *testing.T) {
	r := Report{
		Machine: arch.KindIdeal,
		Nodes:   2,
		Elapsed: 8000,
		Breakdown: Breakdown{
			Busy: 0.6, Read: 0.2, Write: 0.05, Sync: 0.1, Cont: 0.05,
		},
		Refs:       1000,
		Misses:     20,
		ReadMisses: 15,
		MissRate:   0.02,
		AvgMemOcc:  0.08, MaxMemOcc: 0.15,
	}
	r.ReadClass[arch.MissLocalClean] = 1
	for _, v := range []uint64{24, 26} {
		r.ReadLatency[arch.MissLocalClean].Observe(v)
	}
	want := "ideal machine, 2 nodes, 8000 cycles\n" +
		"  breakdown: busy 60.0%  read 20.0%  write 5.0%  sync 10.0%  cont 5.0%\n" +
		"  refs 1000  miss rate 2.000%  read misses 15  naks 0\n" +
		"  read miss classes:  Local Clean 100.0%  Local Dirty Remote 0.0%  Remote Clean 0.0%  Remote Dirty at Home 0.0%  Remote Dirty Remote 0.0%\n" +
		"  mem occ avg 8.0% max 15.0%\n" +
		"  read latency Local Clean:   n=2 mean=25.0 min=24 p50~24 p90~26 p99~26 max=26\n"
	if got := r.String(); got != want {
		t.Errorf("ideal report rendering changed:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestReportJSONRoundTrip checks that the machine-readable export decodes
// back into an identical Report, including the histogram and series fields.
func TestReportJSONRoundTrip(t *testing.T) {
	r := goldenFLASHReport()
	buf, err := r.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(buf, &back); err != nil {
		t.Fatalf("decoding report JSON: %v", err)
	}
	if !reflect.DeepEqual(r, back) {
		t.Errorf("round trip mismatch:\ngot  %+v\nwant %+v", back, r)
	}
	if !strings.Contains(string(buf), `"Machine": "FLASH"`) {
		t.Errorf("machine kind not exported by name:\n%s", buf)
	}
}
