// Package stats aggregates per-run statistics into the quantities the
// paper reports: execution-time breakdowns (Figures 4.1-4.3), miss rates
// and read-miss distributions, contentionless read miss times (CRMT),
// memory and protocol-processor occupancies (Tables 4.1-4.2), speculation
// effectiveness (Table 5.1), MDC behaviour (Section 5.2), and PP
// architecture statistics (Table 5.2).
package stats

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strings"

	"flashsim/internal/arch"
	"flashsim/internal/core"
	"flashsim/internal/metrics"
	"flashsim/internal/sim"
	"flashsim/internal/trace"
)

// Breakdown is the execution-time split of Figure 4.1, as fractions of
// elapsed time averaged over processors.
type Breakdown struct {
	Busy, Read, Write, Sync, Cont float64
}

// Report is the full statistics bundle for one run.
type Report struct {
	Machine arch.MachineKind
	Nodes   int
	Elapsed sim.Cycle

	Breakdown Breakdown

	Refs       uint64
	Misses     uint64
	ReadMisses uint64
	MissRate   float64
	ReadClass  [arch.NumMissClasses]float64 // fractions of read misses
	Naks       uint64
	Writebacks uint64
	Hints      uint64

	AvgMemOcc, MaxMemOcc float64
	MemAccesses          uint64

	// FLASH-only.
	AvgPPOcc, MaxPPOcc float64
	HandlerInvocations uint64
	HandlersPerMiss    float64
	DualIssueEff       float64
	SpecialUse         float64
	PairsPerHandler    float64
	SpecReads          uint64
	SpecUseless        float64
	MDCMissRate        float64
	MDCReadMissRate    float64
	MDCAccesses        uint64
	MDCFillsOfMemOps   float64 // MDC fills as a share of memory operations

	NetMsgs uint64

	// ReadLatency histograms read-miss latency per miss class (issue to
	// first data word), machine-wide. The measured, contention-inclusive
	// counterpart of Table 3.3's analytic latencies.
	ReadLatency [arch.NumMissClasses]trace.Histogram

	// HandlerLatency histograms PP service time per handler entry point
	// (FLASH only): the distribution behind Table 3.4's averages.
	HandlerLatency map[string]*trace.Histogram `json:",omitempty"`

	// OccWindow is the occupancy sampling window in cycles; when nonzero,
	// MemOccSeries (and PPOccSeries on FLASH) hold the machine-average
	// occupancy per window instead of only the whole-run scalars above.
	OccWindow    uint64    `json:",omitempty"`
	MemOccSeries []float64 `json:",omitempty"`
	PPOccSeries  []float64 `json:",omitempty"`

	// Sampled, when the run used SMARTS-style sampled execution, carries the
	// extrapolated execution-time estimate with its confidence interval. The
	// raw Elapsed above counts fast-forward cycles at their fixed charge
	// latencies and must not be compared against full-simulation numbers;
	// ElapsedEst is the comparable figure.
	Sampled *Sampled `json:",omitempty"`

	// Host, when metrics collection is on, carries the Go-runtime cost of
	// producing this report: wall clock, allocation, and GC totals for the
	// run. Host-side only — it never appears in the paper-facing text
	// rendering.
	Host *metrics.HostDelta `json:",omitempty"`
}

// Sampled is the extrapolation section of a sampled run's report. The
// estimator follows the SMARTS recipe: each complete measurement window w
// retires R_w work references (non-synchronization references machine-wide;
// spin-loop references are excluded because their count is itself a timing
// artifact) in Detail cycles. The fast-forwarded work is priced at the
// work-weighted cost rate — the ratio estimator
//
//	c̄ = (windows * Detail) / ΣR_w        cycles per work reference
//	ElapsedEst = detailed cycles + FFWorkRefs * c̄
//
// rather than the unweighted mean of the per-window rates Detail/R_w, which
// over-weights slow windows (Jensen's inequality) and biases the estimate
// high. The confidence interval comes from the ratio estimator's Taylor
// linearization: the residual of window w is Detail - c̄*R_w, and the 95%
// half-width on c̄ is 1.96 * sqrt(Σresid² * n/(n-1)) / ΣR_w.
type Sampled struct {
	Spec arch.SampleSpec

	// DetailedCycles and FFCycles partition the raw elapsed time.
	DetailedCycles uint64
	FFCycles       uint64

	// FFWorkRefs counts non-synchronization references retired during
	// fast-forward phases, machine-wide; FFDispatches counts MAGIC handlers
	// run functionally.
	FFWorkRefs   uint64
	FFDispatches uint64

	// Windows is the number of complete measurement windows with nonzero
	// work, i.e. the sample size behind the confidence interval.
	Windows int

	// CyclesPerRef is the mean detailed cost rate mean(c_w);
	// CyclesPerRefCI is its 95% confidence half-width.
	CyclesPerRef   float64
	CyclesPerRefCI float64

	// ElapsedEst estimates what a full detailed simulation would have
	// reported as Elapsed; ElapsedCI is the 95% confidence half-width.
	ElapsedEst uint64
	ElapsedCI  uint64
}

// Collect gathers a Report from a finished machine.
func Collect(m *core.Machine) Report {
	r := Report{Machine: m.Cfg.Kind, Nodes: m.Cfg.Nodes, Elapsed: m.Elapsed}
	el := float64(m.Elapsed)
	if el == 0 {
		el = 1
	}
	// Occupancy denominators use the quiesce time: controllers keep
	// draining writebacks briefly after the last processor retires. Under
	// sampling, occupancy only accumulates in detailed phases, so the
	// denominator shrinks to the detailed share of that span.
	total := m.Eng.Now()
	if total < m.Elapsed {
		total = m.Elapsed
	}
	occTotal := total
	if m.Cfg.Sample.Enabled() {
		occTotal = sim.Cycle(m.Cfg.Sample.DetailedCyclesThrough(uint64(total)))
		if occTotal == 0 {
			occTotal = 1
		}
	}
	var classTot [arch.NumMissClasses]uint64
	var memBusy, memMax float64
	var specReads, specUseless uint64
	var memAcc uint64
	for _, n := range m.Nodes {
		s := &n.CPU.Stats
		r.Refs += s.Refs
		r.Misses += s.Misses
		r.ReadMisses += s.ReadMisses
		r.Naks += s.Naks
		r.Writebacks += s.Writebacks
		r.Hints += s.Hints
		for c := 0; c < int(arch.NumMissClasses); c++ {
			classTot[c] += s.MissClass[c]
		}
		r.Breakdown.Busy += float64(s.Busy) / el
		r.Breakdown.Read += float64(s.ReadStall) / el
		r.Breakdown.Write += float64(s.WriteStall) / el
		r.Breakdown.Sync += float64(s.SyncStall) / el
		r.Breakdown.Cont += float64(s.ContStall) / el

		occ := n.Mem.Occupancy(occTotal)
		memBusy += occ
		if occ > memMax {
			memMax = occ
		}
		memAcc += n.Mem.Accesses()
		specReads += n.Mem.SpecReads
		specUseless += n.Mem.SpecUseless
		for c := 0; c < int(arch.NumMissClasses); c++ {
			r.ReadLatency[c].Merge(&s.ReadLat[c])
		}
	}
	if w := uint64(m.OccWindow); w != 0 {
		mem := trace.NewTimeSeries(w)
		for _, n := range m.Nodes {
			mem.Merge(n.Mem.Series())
		}
		r.OccWindow = w
		r.MemOccSeries = mem.Fractions(len(m.Nodes))
	}
	np := float64(len(m.Nodes))
	r.Breakdown.Busy /= np
	r.Breakdown.Read /= np
	r.Breakdown.Write /= np
	r.Breakdown.Sync /= np
	r.Breakdown.Cont /= np
	r.AvgMemOcc = memBusy / np
	r.MaxMemOcc = memMax
	r.MemAccesses = memAcc
	if r.Refs > 0 {
		r.MissRate = float64(r.Misses) / float64(r.Refs)
	}
	if r.ReadMisses > 0 {
		for c := 0; c < int(arch.NumMissClasses); c++ {
			r.ReadClass[c] = float64(classTot[c]) / float64(r.ReadMisses)
		}
	}
	r.SpecReads = specReads
	if specReads > 0 {
		r.SpecUseless = float64(specUseless) / float64(specReads)
	}

	if m.Cfg.Kind == arch.KindFLASH {
		var ppBusy, ppMax float64
		var pairs, instrs, aluBr, special, invocations, mdcR, mdcW, mdcRM, mdcM uint64
		r.HandlerLatency = make(map[string]*trace.Histogram)
		var ppSeries *trace.TimeSeries
		if r.OccWindow != 0 {
			ppSeries = trace.NewTimeSeries(r.OccWindow)
		}
		for _, n := range m.Nodes {
			mg := n.Magic
			occ := mg.PPOcc.Fraction(occTotal)
			ppBusy += occ
			if occ > ppMax {
				ppMax = occ
			}
			for entry, h := range mg.HandlerLatencies() {
				agg := r.HandlerLatency[entry]
				if agg == nil {
					agg = &trace.Histogram{}
					r.HandlerLatency[entry] = agg
				}
				agg.Merge(h)
			}
			ppSeries.Merge(mg.PPSeries)
			ps := mg.PP.Stats
			pairs += ps.Pairs
			instrs += ps.Instrs
			aluBr += ps.ALUOrBranch
			special += ps.Special
			invocations += mg.Stats.Dispatches
			md := mg.MDC().Stats
			mdcR += md.Reads
			mdcW += md.Writes
			mdcRM += md.ReadMisses
			mdcM += md.ReadMisses + md.WriteMisses
		}
		r.AvgPPOcc = ppBusy / np
		r.MaxPPOcc = ppMax
		r.HandlerInvocations = invocations
		if r.Misses > 0 {
			r.HandlersPerMiss = float64(invocations) / float64(r.Misses)
		}
		if pairs > 0 {
			r.DualIssueEff = float64(instrs) / float64(pairs)
		}
		if aluBr > 0 {
			r.SpecialUse = float64(special) / float64(aluBr)
		}
		if invocations > 0 {
			r.PairsPerHandler = float64(pairs) / float64(invocations)
		}
		if ppSeries != nil {
			r.PPOccSeries = ppSeries.Fractions(len(m.Nodes))
		}
		r.MDCAccesses = mdcR + mdcW
		if r.MDCAccesses > 0 {
			r.MDCMissRate = float64(mdcM) / float64(r.MDCAccesses)
		}
		if mdcR > 0 {
			r.MDCReadMissRate = float64(mdcRM) / float64(mdcR)
		}
		if r.MemAccesses > 0 {
			r.MDCFillsOfMemOps = float64(mdcM) / float64(r.MemAccesses)
		}
	}
	if m.Cfg.Sample.Enabled() {
		r.Sampled = collectSampled(m)
	}
	r.NetMsgs = m.Net.TotalMsgs()
	if m.Cfg.Sample.Enabled() {
		// Fast-forward chains hand messages node-to-node directly, bypassing
		// the modeled network; fold them in so the census stays exact.
		for _, n := range m.Nodes {
			if n.Magic != nil {
				r.NetMsgs += n.Magic.Stats.FFNetSends
			}
		}
	}
	return r
}

// collectSampled builds the extrapolation section from the per-CPU window
// work counters (see the Sampled doc comment for the estimator).
func collectSampled(m *core.Machine) *Sampled {
	spec := m.Cfg.Sample
	s := &Sampled{Spec: spec}
	s.DetailedCycles = spec.DetailedCyclesThrough(uint64(m.Elapsed))
	s.FFCycles = uint64(m.Elapsed) - s.DetailedCycles
	var win []uint64
	for _, n := range m.Nodes {
		cs := &n.CPU.Stats
		s.FFWorkRefs += cs.FFWork
		for w, refs := range cs.WinWork {
			for len(win) <= w {
				win = append(win, 0)
			}
			win[w] += refs
		}
		if n.Magic != nil {
			s.FFDispatches += n.Magic.Stats.FFDispatches
		}
	}
	// Only complete windows enter the estimator: a window cut short by the
	// end of the run would overstate the cost rate, and a zero-work window
	// has no rate at all.
	var work []uint64
	for w, refs := range win {
		if refs == 0 || spec.WindowEnd(w) > uint64(m.Elapsed) {
			continue
		}
		work = append(work, refs)
	}
	s.Windows = len(work)
	if len(work) == 0 {
		// No usable windows (the run ended inside warm-up or the first
		// window): report the raw elapsed time with no extrapolation.
		s.ElapsedEst = uint64(m.Elapsed)
		return s
	}
	// Work-weighted ratio estimator (see the Sampled doc comment).
	var totalRefs uint64
	for _, refs := range work {
		totalRefs += refs
	}
	mean := float64(len(work)) * float64(spec.Detail) / float64(totalRefs)
	s.CyclesPerRef = mean
	if n := len(work); n > 1 {
		residsum := 0.0
		for _, refs := range work {
			d := float64(spec.Detail) - mean*float64(refs)
			residsum += d * d
		}
		se := math.Sqrt(residsum*float64(n)/float64(n-1)) / float64(totalRefs)
		s.CyclesPerRefCI = 1.96 * se
	}
	s.ElapsedEst = s.DetailedCycles + uint64(mean*float64(s.FFWorkRefs)+0.5)
	s.ElapsedCI = uint64(s.CyclesPerRefCI*float64(s.FFWorkRefs) + 0.5)
	return s
}

// CRMT computes the contentionless read miss time: the read-miss class
// distribution weighted by the no-contention latencies (Table 3.3 style).
func (r *Report) CRMT(lat [arch.NumMissClasses]sim.Cycle) float64 {
	t := 0.0
	for c := 0; c < int(arch.NumMissClasses); c++ {
		t += r.ReadClass[c] * float64(lat[c])
	}
	return t
}

// JSON renders the full report as indented JSON for machine consumption.
func (r Report) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// String renders the report in the layout of the paper's tables.
func (r Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%v machine, %d nodes, %d cycles\n", r.Machine, r.Nodes, r.Elapsed)
	if s := r.Sampled; s != nil {
		fmt.Fprintf(&b, "  sampled (%v): est %d cycles ±%d (95%% CI), %d windows, %.2f±%.2f cyc/ref, ff refs %d\n",
			s.Spec, s.ElapsedEst, s.ElapsedCI, s.Windows, s.CyclesPerRef, s.CyclesPerRefCI, s.FFWorkRefs)
	}
	fmt.Fprintf(&b, "  breakdown: busy %.1f%%  read %.1f%%  write %.1f%%  sync %.1f%%  cont %.1f%%\n",
		100*r.Breakdown.Busy, 100*r.Breakdown.Read, 100*r.Breakdown.Write, 100*r.Breakdown.Sync, 100*r.Breakdown.Cont)
	fmt.Fprintf(&b, "  refs %d  miss rate %.3f%%  read misses %d  naks %d\n", r.Refs, 100*r.MissRate, r.ReadMisses, r.Naks)
	fmt.Fprintf(&b, "  read miss classes:")
	for c := 0; c < int(arch.NumMissClasses); c++ {
		fmt.Fprintf(&b, "  %s %.1f%%", arch.MissClass(c), 100*r.ReadClass[c])
	}
	fmt.Fprintf(&b, "\n  mem occ avg %.1f%% max %.1f%%", 100*r.AvgMemOcc, 100*r.MaxMemOcc)
	if r.Machine == arch.KindFLASH {
		fmt.Fprintf(&b, "  PP occ avg %.1f%% max %.1f%%", 100*r.AvgPPOcc, 100*r.MaxPPOcc)
		fmt.Fprintf(&b, "\n  PP: dual-issue %.2f  special %.0f%%  pairs/handler %.1f  handlers/miss %.2f",
			r.DualIssueEff, 100*r.SpecialUse, r.PairsPerHandler, r.HandlersPerMiss)
		fmt.Fprintf(&b, "\n  MDC: miss %.2f%% read-miss %.2f%%  spec useless %.1f%%",
			100*r.MDCMissRate, 100*r.MDCReadMissRate, 100*r.SpecUseless)
	}
	fmt.Fprintf(&b, "\n")
	for c := 0; c < int(arch.NumMissClasses); c++ {
		h := &r.ReadLatency[c]
		if h.Count == 0 {
			continue
		}
		fmt.Fprintf(&b, "  read latency %-14s %s\n", arch.MissClass(c).String()+":", h)
	}
	if len(r.HandlerLatency) > 0 {
		entries := make([]string, 0, len(r.HandlerLatency))
		for e := range r.HandlerLatency {
			entries = append(entries, e)
		}
		sort.Slice(entries, func(i, j int) bool {
			hi, hj := r.HandlerLatency[entries[i]], r.HandlerLatency[entries[j]]
			if hi.Count != hj.Count {
				return hi.Count > hj.Count
			}
			return entries[i] < entries[j]
		})
		fmt.Fprintf(&b, "  handler service times:\n")
		for _, e := range entries {
			fmt.Fprintf(&b, "    %-24s %s\n", e, r.HandlerLatency[e])
		}
	}
	if r.OccWindow != 0 {
		writeSeries(&b, "mem occ", r.OccWindow, r.MemOccSeries)
		if r.Machine == arch.KindFLASH {
			writeSeries(&b, "PP occ", r.OccWindow, r.PPOccSeries)
		}
	}
	return b.String()
}

// writeSeries renders one occupancy-over-time curve as a compact sparkline
// of percentages, one value per sampling window.
func writeSeries(b *strings.Builder, label string, window uint64, vals []float64) {
	if len(vals) == 0 {
		return
	}
	fmt.Fprintf(b, "  %s per %d cycles:", label, window)
	for _, v := range vals {
		fmt.Fprintf(b, " %.0f%%", 100*v)
	}
	fmt.Fprintf(b, "\n")
}
