// Package cpu models the compute processor and its secondary cache: an
// aggressive 400-MIPS processor with blocking reads, non-blocking merging
// writes and up to four outstanding misses, attached to a two-way
// set-associative write-back cache with 128-byte lines and critical-word-
// first fills (Section 3.2 of the paper).
package cpu

import (
	"flashsim/internal/arch"
)

// LineState is a processor-cache line state. Coherence is maintained by the
// directory protocol; the cache itself holds Invalid/Shared/Modified.
type LineState uint8

const (
	Invalid LineState = iota
	Shared
	Modified
)

func (s LineState) String() string {
	switch s {
	case Invalid:
		return "I"
	case Shared:
		return "S"
	default:
		return "M"
	}
}

// Cache is the processor's secondary cache. It tracks tags and states only;
// data values live in the workload's backing store (timing-directed
// simulation).
type Cache struct {
	ways     int
	sets     int
	tags     []uint64 // (line | 1<<63) per way; 0 = empty
	state    []LineState
	lastUsed []uint64 // LRU stamps
	clock    uint64
}

// NewCache builds a cache of size bytes with the given associativity.
func NewCache(size, ways int) *Cache {
	sets := size / (arch.LineSize * ways)
	if sets <= 0 {
		panic("cpu: cache too small")
	}
	return &Cache{
		ways:     ways,
		sets:     sets,
		tags:     make([]uint64, sets*ways),
		state:    make([]LineState, sets*ways),
		lastUsed: make([]uint64, sets*ways),
	}
}

// Sets returns the number of cache sets.
func (c *Cache) Sets() int { return c.sets }

func (c *Cache) set(line uint64) int { return int(line % uint64(c.sets)) }

// Lookup returns the state of line, touching LRU on a hit.
func (c *Cache) Lookup(line uint64) LineState {
	base := c.set(line) * c.ways
	tag := line | 1<<63
	for w := 0; w < c.ways; w++ {
		if c.tags[base+w] == tag {
			if c.state[base+w] == Invalid {
				return Invalid
			}
			c.clock++
			c.lastUsed[base+w] = c.clock
			return c.state[base+w]
		}
	}
	return Invalid
}

// SetState transitions an existing line (no-op if not resident). Used by
// interventions: invalidate or downgrade.
func (c *Cache) SetState(line uint64, s LineState) (had LineState) {
	base := c.set(line) * c.ways
	tag := line | 1<<63
	for w := 0; w < c.ways; w++ {
		if c.tags[base+w] == tag {
			had = c.state[base+w]
			if s == Invalid {
				c.tags[base+w] = 0
			}
			c.state[base+w] = s
			return had
		}
	}
	return Invalid
}

// Fill inserts line in state s, returning an evicted victim if any. If the
// line is already resident (e.g. an upgrade fill) only its state changes.
func (c *Cache) Fill(line uint64, s LineState) (victim uint64, victimState LineState, evicted bool) {
	base := c.set(line) * c.ways
	tag := line | 1<<63
	c.clock++
	// Already resident?
	for w := 0; w < c.ways; w++ {
		if c.tags[base+w] == tag {
			c.state[base+w] = s
			c.lastUsed[base+w] = c.clock
			return 0, Invalid, false
		}
	}
	// Free way?
	for w := 0; w < c.ways; w++ {
		if c.tags[base+w] == 0 {
			c.tags[base+w] = tag
			c.state[base+w] = s
			c.lastUsed[base+w] = c.clock
			return 0, Invalid, false
		}
	}
	// Evict LRU.
	lru := 0
	for w := 1; w < c.ways; w++ {
		if c.lastUsed[base+w] < c.lastUsed[base+lru] {
			lru = w
		}
	}
	victim = c.tags[base+lru] &^ (1 << 63)
	victimState = c.state[base+lru]
	c.tags[base+lru] = tag
	c.state[base+lru] = s
	c.lastUsed[base+lru] = c.clock
	return victim, victimState, true
}

// CacheState is a deep copy of a cache's tag/state/LRU arrays, captured by
// CaptureState for machine snapshots.
type CacheState struct {
	Tags     []uint64
	State    []LineState
	LastUsed []uint64
	Clock    uint64
}

// CaptureState deep-copies the cache contents.
func (c *Cache) CaptureState() CacheState {
	return CacheState{
		Tags:     append([]uint64(nil), c.tags...),
		State:    append([]LineState(nil), c.state...),
		LastUsed: append([]uint64(nil), c.lastUsed...),
		Clock:    c.clock,
	}
}

// RestoreState installs a captured state into a same-geometry cache.
func (c *Cache) RestoreState(st CacheState) {
	if len(st.Tags) != len(c.tags) {
		panic("cpu: cache geometry mismatch in RestoreState")
	}
	copy(c.tags, st.Tags)
	copy(c.state, st.State)
	copy(c.lastUsed, st.LastUsed)
	c.clock = st.Clock
}

// Reset empties the cache.
func (c *Cache) Reset() {
	for i := range c.tags {
		c.tags[i] = 0
		c.state[i] = Invalid
		c.lastUsed[i] = 0
	}
	c.clock = 0
}

// SameSet reports whether two lines map to the same cache set.
func (c *Cache) SameSet(a, b uint64) bool { return c.set(a) == c.set(b) }

// Lines returns the resident lines and their states (for invariant checks).
func (c *Cache) Lines() map[uint64]LineState {
	out := make(map[uint64]LineState)
	for i, tag := range c.tags {
		if tag != 0 && c.state[i] != Invalid {
			out[tag&^(1<<63)] = c.state[i]
		}
	}
	return out
}
