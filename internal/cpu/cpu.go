package cpu

import (
	"fmt"

	"flashsim/internal/arch"
	"flashsim/internal/memsys"
	"flashsim/internal/sim"
	"flashsim/internal/trace"
)

// RMWOp selects the atomic operation of a RefRMW reference.
type RMWOp uint8

const (
	RMWSwap RMWOp = iota // out = old; mem = operand
	RMWAdd               // out = old; mem = old + operand
)

// Ref is one memory reference from the workload. Busy is the number of
// processor instructions executed since the previous reference (charged at
// 4 instructions per system cycle: a 400-MIPS processor on a 100 MHz
// clock). Sync attributes the reference's busy and stall time to the
// synchronization category.
//
// Data values flow through the machine's backing store at simulated
// completion order: reads deposit into *Out, writes carry WVal.
type Ref struct {
	Kind arch.RefKind
	Addr arch.Addr
	Busy uint32
	Sync bool
	RMW  RMWOp
	WVal uint64
	Out  *uint64
}

// RefSource produces a processor's reference stream in batches: each call
// returns the next run of references in program order, so a burst of
// non-blocking references costs one handshake instead of one per reference.
// NextBatch is called from the simulation goroutine and may block until the
// workload thread produces its next flush; it must never depend on another
// simulated processor making progress except through simulated memory. The
// returned slice is owned by the CPU until every element has been consumed
// and the final blocking reference's ReadDone has fired.
type RefSource interface {
	NextBatch() ([]Ref, bool)
	// ReadDone is invoked after a read or RMW completes and its Out value
	// is filled, releasing the workload thread.
	ReadDone()
}

// Ctl is the node controller as seen from the processor: MAGIC's PI or the
// idealized controller. FromProc is invoked when the message has crossed
// the processor bus, at simulated time `at`.
type Ctl interface {
	FromProc(m arch.Msg, at sim.Cycle)
	// FromProcFF is the functional fast-forward entry: the request is
	// processed synchronously (possibly completing — Deliver — before the
	// call returns) with at as its nominal arrival time. Only called on
	// machines with sampling enabled.
	FromProcFF(m arch.Msg, at sim.Cycle)
}

// Stats is the per-processor execution-time breakdown and miss census.
type Stats struct {
	Busy       sim.Cycle // compute cycles
	ReadStall  sim.Cycle
	WriteStall sim.Cycle
	SyncStall  sim.Cycle
	ContStall  sim.Cycle // bus-contention cycles folded into issue latency

	Refs, Reads, Writes, RMWs uint64
	Misses, ReadMisses        uint64
	UpgradeMisses             uint64
	MissClass                 [arch.NumMissClasses]uint64
	Naks                      uint64
	Writebacks, Hints         uint64

	// ReadLat histograms read-miss latency per miss class, from the cycle
	// the reference reached the cache to the first data word on the bus —
	// the measured counterpart of the paper's contentionless Table 3.3
	// latencies. Always on: recording is a few integer ops per miss.
	ReadLat [arch.NumMissClasses]trace.Histogram

	// Sampled-execution counters (zero unless arch.Config.Sample is
	// enabled). FFWork counts non-synchronization references retired in
	// fast-forward phases; WinWork[w] counts them per detailed measurement
	// window w. Synchronization references are excluded from both: spin
	// loops retire at a timing-dependent rate, so they would bias the
	// work-per-cycle extrapolation that stats.Collect builds from these.
	FFWork  uint64
	WinWork []uint64

	FinishedAt sim.Cycle
	Finished   bool
}

// MissRate returns overall misses per reference.
func (s *Stats) MissRate() float64 {
	if s.Refs == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Refs)
}

type blockReason uint8

const (
	blockNone       blockReason = iota
	blockMiss                   // waiting for a specific MSHR to complete
	blockStructural             // waiting for any MSHR to free / conflict to clear
)

type mshrEntry struct {
	valid   bool
	line    uint64
	kind    arch.MsgType // MsgGET or MsgGETX
	ref     Ref          // the triggering reference (for Out/WVal/classify)
	hasRef  bool         // whether ref needs completion actions
	waiting bool         // the processor is blocked on this entry
	upgrade bool         // line was Shared when the miss was issued

	// invalOnFill is set when an invalidation arrives for a line with a
	// read miss outstanding: the read was serialized before the writer at
	// the home, so it completes with the returned data, but the copy must
	// not remain cached.
	invalOnFill bool

	// retries counts NAK bounces for this miss; the retry backoff grows
	// exponentially with a node-dependent jitter so that deterministic
	// retry convoys on contended lines dissolve instead of livelocking.
	retries int

	// ffIssued marks a miss issued during a fast-forward phase: its fill
	// skips bus reservations and is excluded from the read-latency
	// histograms (its issue time carries fast-forward charges, not
	// detailed timing).
	ffIssued bool

	issuedAt sim.Cycle // virtual time the triggering reference missed
	tid      uint64    // trace id of the miss-issue event (0 = untraced)

	// stores holds the values of the triggering write and any writes
	// merged into this exclusive miss, in program order. They apply to the
	// backing view at fill — when the coherence protocol actually grants
	// ownership — so that conflicting writes from different nodes reach
	// the view in coherence order, which the window-quantized store
	// visibility (memsys.View) relies on.
	stores []pendingStore
}

type pendingStore struct {
	addr arch.Addr
	val  uint64
}

// CPU is one node's compute processor.
type CPU struct {
	ID    arch.NodeID
	Cache *Cache
	Bus   sim.Server
	Stats Stats

	// Tr, when non-nil, receives structured cache/miss events. Injected per
	// machine (core.Machine.SetTracer); nil costs one branch per site.
	Tr *trace.Tracer

	eng   sim.Scheduler
	t     arch.Timing
	cfg   *arch.Config
	ctl   Ctl
	src   RefSource
	mem   *memsys.View // this node's window-quantized view of the backing store
	chunk sim.Cycle

	// Sampled execution: phase is a pure function of the cycle (spec is
	// immutable after construction), so every decision below is
	// deterministic across engine backends and worker counts.
	sampling bool
	spec     arch.SampleSpec
	ffChunk  sim.Cycle // longer run slices between yields while fast-forwarding
	// phaseDet/phaseEnd cache the schedule phase for the run loop's
	// monotonic virtual clock: one compare per reference instead of a
	// modulo (see SampleSpec.PhaseAt).
	phaseDet bool
	phaseEnd uint64
	// srcNow is the virtual time current whenever the workload coroutine
	// runs (stamped before every NextBatch/ReadDone): the thread only
	// executes inside those calls, so FFLocalRead can phase-gate against
	// the run loop's otherwise-local clock.
	srcNow sim.Cycle

	mshrs []mshrEntry
	inUse int

	batch    []Ref // current batch from the source
	batchPos int   // next unconsumed batch element

	pending    Ref  // reference being retried/blocked
	hasPending bool // pending holds an unretired reference
	pendingAt  sim.Cycle
	blocked    blockReason
	blockEntry int

	// issuing marks the MSHR entry whose request is mid-flight through a
	// synchronous fast-forward chain (-1 otherwise): if Deliver completes
	// it before issue() returns, the run loop continues without blocking.
	issuing int

	instFrac uint32 // leftover instructions (< 4) not yet charged as a cycle
	running  bool
	done     bool
	onFinish func(at sim.Cycle)

	// Snapshot pause support: when pauseAfter is nonzero, the run loop
	// parks itself at the first batch-refill boundary at or after retiring
	// pauseAfter references, instead of pulling the next batch. Pausing
	// only at batch boundaries means the workload coroutine is parked
	// inside a flush-yield and the CPU holds no partially consumed batch;
	// outstanding non-blocking write misses then drain through deliver()
	// without resuming the loop, so the machine quiesces.
	pauseAfter uint64
	paused     bool
	pausedAt   sim.Cycle
}

// New creates a CPU. mem is this node's view of the machine-wide backing
// store (8-byte words indexed by physical address / 8).
func New(id arch.NodeID, eng sim.Scheduler, cfg *arch.Config, ctl Ctl, mem *memsys.View) *CPU {
	if cfg.Sample.Enabled() {
		// Synchronous fast-forward chains complete cross-node transfers in
		// zero engine time, so the window-quantized store visibility would
		// expose stale data mid-chain. Sampled execution is serialized
		// (single engine worker), so publishing stores immediately is
		// race-free and preserves coherence order.
		mem.SetWriteThrough(true)
	}
	return &CPU{
		ID:       id,
		Cache:    NewCache(cfg.CacheSize, cfg.CacheWays),
		eng:      eng,
		t:        cfg.Timing,
		cfg:      cfg,
		ctl:      ctl,
		mem:      mem,
		chunk:    16,
		sampling: cfg.Sample.Enabled(),
		spec:     cfg.Sample,
		ffChunk:  256,
		issuing:  -1,
		mshrs:    make([]mshrEntry, cfg.MSHRs),
	}
}

// detailed reports whether cycle t falls in a detailed phase (always true
// when sampling is off; one branch on the hot path).
func (c *CPU) detailed(t sim.Cycle) bool {
	return !c.sampling || c.spec.Detailed(uint64(t))
}

// phaseDetailed is the cached variant of detailed for the run loop's own
// virtual clock, which only moves forward: a compare per call, refreshed
// when the clock crosses a phase boundary. Only valid under sampling.
func (c *CPU) phaseDetailed(t uint64) bool {
	if t >= c.phaseEnd {
		c.phaseDet, c.phaseEnd = c.spec.PhaseAt(t)
	}
	return c.phaseDet
}

// SetSource attaches the reference stream; onFinish fires when it ends.
func (c *CPU) SetSource(src RefSource, onFinish func(at sim.Cycle)) {
	c.src = src
	c.onFinish = onFinish
}

// Start schedules the processor's first fetch.
func (c *CPU) Start() {
	c.eng.At(c.eng.Now(), func() { c.run(c.eng.Now()) })
}

// run consumes references starting at virtual time vt, processing cache
// hits inline and yielding an event every `chunk` cycles so that the rest
// of the machine interleaves.
func (c *CPU) run(vt sim.Cycle) {
	if c.done {
		return
	}
	// Fast-forward phases yield far less often: the processor's compute
	// progress is functional there, so fine-grained interleaving with the
	// (idle) detailed machinery buys nothing but event dispatches.
	limit := vt + c.chunk
	if c.sampling && !c.phaseDetailed(uint64(vt)) {
		limit = vt + c.ffChunk
	}
	for {
		if !c.hasPending {
			if c.pauseAfter != 0 && !c.paused && c.batchPos >= len(c.batch) &&
				c.Stats.Refs >= c.pauseAfter {
				c.paused = true
				c.pausedAt = vt
				return
			}
			c.srcNow = vt
			ref, ok := c.nextRef()
			if !ok {
				c.done = true
				c.Stats.Finished = true
				c.Stats.FinishedAt = vt
				if c.onFinish != nil {
					c.onFinish(vt)
				}
				return
			}
			vt += c.charge(&ref)
			if c.sampling {
				c.noteRef(vt, ref.Sync)
			}
			c.pending = ref
			c.hasPending = true
			c.pendingAt = vt
		}
		if !c.tryRef(vt) {
			return // blocked; resume() restarts us
		}
		c.hasPending = false
		if c.sampling && c.pendingAt > vt {
			// A synchronous fast-forward chain completed the reference's
			// miss inside tryRef and charged the stall; catch the virtual
			// clock up to the fill.
			vt = c.pendingAt
		}
		if vt >= limit {
			c.eng.At(vt, func() { c.run(vt) })
			return
		}
	}
}

// noteRef records one retired reference for the sampling estimator: work
// (non-sync) references count against the fast-forward total or their
// detailed measurement window, by the virtual time they were charged at.
func (c *CPU) noteRef(vt sim.Cycle, sync bool) {
	if sync {
		return
	}
	t := uint64(vt)
	if !c.phaseDetailed(t) {
		c.Stats.FFWork++
		return
	}
	if t < c.spec.Warmup {
		return // warm-up prefix: detailed but unmeasured
	}
	w := c.spec.Window(t)
	for len(c.Stats.WinWork) <= w {
		c.Stats.WinWork = append(c.Stats.WinWork, 0)
	}
	c.Stats.WinWork[w]++
}

// nextRef takes the next reference from the current batch, refilling from
// the source when it runs dry. The steady-state path is a slice index — no
// handshake, no allocation.
func (c *CPU) nextRef() (Ref, bool) {
	for c.batchPos >= len(c.batch) {
		b, ok := c.src.NextBatch()
		if !ok {
			c.batch = nil
			return Ref{}, false
		}
		c.batch, c.batchPos = b, 0
	}
	r := c.batch[c.batchPos]
	c.batchPos++
	return r, true
}

// charge converts the reference's busy instruction count to cycles and
// accounts them.
func (c *CPU) charge(ref *Ref) sim.Cycle {
	inst := ref.Busy + c.instFrac
	cyc := sim.Cycle(inst / 4)
	c.instFrac = inst % 4
	if ref.Sync {
		c.Stats.SyncStall += cyc
	} else {
		c.Stats.Busy += cyc
	}
	c.Stats.Refs++
	switch ref.Kind {
	case arch.RefRead:
		c.Stats.Reads++
	case arch.RefWrite:
		c.Stats.Writes++
	default:
		c.Stats.RMWs++
	}
	return cyc
}

// tryRef attempts the pending reference at time vt. It returns false if the
// processor blocked.
func (c *CPU) tryRef(vt sim.Cycle) bool {
	ref := &c.pending
	line := ref.Addr.Line()

	// An outstanding miss to the same line?
	if e := c.findMSHR(line); e >= 0 {
		ent := &c.mshrs[e]
		if ref.Kind == arch.RefWrite && ent.kind == arch.MsgGETX {
			// Merge the write into the outstanding exclusive miss: the value
			// queues behind the miss and applies at fill, in program order.
			ent.stores = append(ent.stores, pendingStore{addr: ref.Addr, val: ref.WVal})
			return true
		}
		// Reads (and RMWs, and writes behind a read miss) wait for the line.
		c.block(blockMiss, e, vt)
		ent.waiting = true
		return false
	}

	st := c.Cache.Lookup(line)
	switch ref.Kind {
	case arch.RefRead:
		if st != Invalid {
			c.load(ref)
			c.srcNow = vt
			c.src.ReadDone()
			return true
		}
	case arch.RefWrite:
		if st == Modified {
			c.store(ref)
			return true
		}
	case arch.RefRMW:
		if st == Modified {
			c.rmw(ref)
			c.srcNow = vt
			c.src.ReadDone()
			return true
		}
	}

	// Miss. Structural checks: one outstanding miss per cache set, and a
	// free MSHR.
	if c.inUse == len(c.mshrs) || c.setConflict(line) {
		c.block(blockStructural, -1, vt)
		return false
	}

	// Allocate and issue.
	e := c.allocMSHR()
	ent := &c.mshrs[e]
	stores := ent.stores[:0] // reuse the deferred-store buffer
	*ent = mshrEntry{valid: true, line: line, ref: *ref, hasRef: true, issuedAt: vt}
	ent.stores = stores
	ent.kind = arch.MsgGETX
	if ref.Kind == arch.RefRead {
		ent.kind = arch.MsgGET
	}
	ent.upgrade = st == Shared
	c.Stats.Misses++
	if ref.Kind == arch.RefRead {
		c.Stats.ReadMisses++
	}
	if ent.upgrade {
		c.Stats.UpgradeMisses++
	}
	// Non-blocking write: the store value queues on the MSHR and enters
	// the backing view at fill, in program order with any later writes
	// that merge into it. Applying at fill (ownership grant) rather than
	// issue keeps cross-node same-word writes in coherence order, which
	// the window-quantized store visibility requires. Queued before issue:
	// a fast-forward chain can complete the miss inside issue() itself.
	if ref.Kind == arch.RefWrite {
		ent.stores = append(ent.stores, pendingStore{addr: ref.Addr, val: ref.WVal})
	}
	c.issue(e, vt)

	if ref.Kind == arch.RefRead || ref.Kind == arch.RefRMW {
		if !ent.valid {
			// The fast-forward chain filled the line synchronously; Deliver
			// already applied the reference and charged the stall.
			return true
		}
		c.block(blockMiss, e, vt)
		ent.waiting = true
		return false
	}
	return true
}

// issue sends the miss request across the processor bus to the controller.
// Fast-forward issues charge the uncontended constants without reserving
// the bus: no contention serialization, no occupancy accounting.
func (c *CPU) issue(e int, vt sim.Cycle) {
	ent := &c.mshrs[e]
	req := vt + sim.Cycle(c.t.MissDetect)
	if !c.detailed(req) {
		ent.ffIssued = true
		m := arch.Msg{
			Type: ent.kind,
			Addr: arch.Addr(ent.line << arch.LineShift),
			Src:  c.ID,
			Req:  c.ID,
			Dst:  c.ID,
			DB:   -1,
		}
		// The controller runs the whole chain — including remote handlers —
		// before this call returns; issuing tells Deliver the run loop is
		// live inside issue() so a completion needs no resume event.
		prev := c.issuing
		c.issuing = e
		c.ctl.FromProcFF(m, req+sim.Cycle(c.t.BusTransit))
		c.issuing = prev
		return
	}
	ent.ffIssued = false
	start, end := c.Bus.Reserve(req, sim.Cycle(c.t.BusTransit))
	c.Stats.ContStall += start - req
	if c.Tr.Active() {
		if ent.tid == 0 {
			ent.tid = c.Tr.NewID()
		}
		c.Tr.Emit(trace.Event{
			Cycle: uint64(req), Node: int32(c.ID), Kind: trace.KindMissIssue,
			Addr: ent.line << arch.LineShift, ID: ent.tid,
			Arg: uint64(ent.retries), Name: ent.kind.String(),
		})
	}
	m := arch.Msg{
		Type: ent.kind,
		Addr: arch.Addr(ent.line << arch.LineShift),
		Src:  c.ID,
		Req:  c.ID,
		Dst:  c.ID,
		DB:   -1,
		TID:  ent.tid,
	}
	c.ctl.FromProc(m, end)
}

// Deliver completes an outstanding miss (PIData) or bounces it (NAK). The
// controller calls it when the message's first data word crosses the
// processor bus at time `at`. Aux bit 0 of a data reply marks data that was
// retrieved from a processor cache (dirty somewhere), bit 1 marks a remote
// source node that is not the home — together they classify the miss.
func (c *CPU) Deliver(m arch.Msg, at sim.Cycle) { c.deliver(m, at, false) }

// DeliverFF is the functional-chain delivery entry: the caller is a
// fast-forward handler running synchronously, so the completion must use
// fast-forward charging even when its nominal time lands inside a detailed
// window (the detailed machinery was never engaged for this miss leg).
func (c *CPU) DeliverFF(m arch.Msg, at sim.Cycle) { c.deliver(m, at, true) }

func (c *CPU) deliver(m arch.Msg, at sim.Cycle, ff bool) {
	line := m.Addr.Line()
	e := c.findMSHR(line)
	if e < 0 {
		panic(fmt.Sprintf("cpu%d: delivery for line %#x with no MSHR", c.ID, line))
	}
	ent := &c.mshrs[e]

	if m.Type == arch.MsgNAK {
		c.Stats.Naks++
		if c.Tr.Active() {
			c.Tr.Emit(trace.Event{
				Cycle: uint64(at), Node: int32(c.ID), Kind: trace.KindNak,
				Addr: line << arch.LineShift, ID: ent.tid, Parent: m.TID,
			})
		}
		// Retry after an exponential, node-jittered backoff; the entry
		// stays allocated.
		sh := ent.retries
		if sh > 5 {
			sh = 5
		}
		ent.retries++
		jitter := (uint64(c.ID)*13 + uint64(ent.retries)*7) % 23
		delay := sim.Cycle(c.t.NakBackoff)<<uint(sh) + sim.Cycle(jitter)
		c.eng.At(c.ffAt(at+delay), func() { c.issue(e, c.eng.Now()) })
		return
	}

	// Fill the cache; stream the line across the bus. A fill marked
	// invalidate-on-fill satisfies its reference but leaves no residency.
	// Fast-forward fills (either end of the miss handled functionally)
	// skip the bus reservation and the latency histograms; the cache-state
	// transition and the miss census stay exact.
	ffFill := ff || ent.ffIssued || !c.detailed(at)
	fillAt := at
	if !ffFill {
		fillAt, _ = c.Bus.Reserve(at, sim.Cycle(c.t.BusLineBusy))
	}
	if !ent.invalOnFill {
		newState := Shared
		if ent.kind == arch.MsgGETX {
			newState = Modified
		}
		victim, vstate, evicted := c.Cache.Fill(line, newState)
		if evicted {
			c.evict(victim, vstate, fillAt, ffFill)
		}
		if c.Tr.Active() {
			c.Tr.Emit(trace.Event{
				Cycle: uint64(fillAt), Node: int32(c.ID), Kind: trace.KindFill,
				Addr: line << arch.LineShift, ID: ent.tid, Parent: m.TID,
				Arg: uint64(newState), Name: newState.String(),
			})
		}
	} else if c.Tr.Active() {
		c.Tr.Emit(trace.Event{
			Cycle: uint64(fillAt), Node: int32(c.ID), Kind: trace.KindFill,
			Addr: line << arch.LineShift, ID: ent.tid, Parent: m.TID,
			Name: "inval-on-fill",
		})
	}

	// Classify read misses per Table 4.1 and histogram the latency. The
	// class census is exact under sampling (classification depends on
	// protocol state, not timing); the latency histogram only sees misses
	// whose issue AND fill both ran detailed.
	if ent.hasRef && ent.ref.Kind == arch.RefRead {
		class := c.classify(m)
		c.Stats.MissClass[class]++
		if !ffFill {
			lat := fillAt - ent.issuedAt
			if fillAt < ent.issuedAt {
				lat = 0
			}
			c.Stats.ReadLat[class].Observe(uint64(lat))
		}
	}
	if c.Tr.Active() {
		c.Tr.Emit(trace.Event{
			Cycle: uint64(fillAt), Node: int32(c.ID), Kind: trace.KindMissDone,
			Addr: line << arch.LineShift, ID: ent.tid, Parent: m.TID,
			Name: m.Type.String(),
		})
	}

	// Apply the triggering reference's data action and release its thread.
	// If the entry's own reference was a read or RMW, the processor was
	// blocked on exactly this reference, so completing it also consumes the
	// pending slot; a processor blocked on someone else's entry (a read
	// arriving behind an outstanding write miss) retries its reference.
	consumed := false
	if ent.hasRef {
		switch ent.ref.Kind {
		case arch.RefRead:
			c.load(&ent.ref)
		case arch.RefWrite:
			// Value is ent.stores[0]; applied below.
		case arch.RefRMW:
			c.rmw(&ent.ref)
		}
		if ent.ref.Kind != arch.RefWrite {
			c.srcNow = fillAt
			c.src.ReadDone()
			consumed = true
		}
	}
	// Apply the deferred stores (the triggering write plus merged writes),
	// in program order, after any triggering RMW read its old value.
	for _, ps := range ent.stores {
		c.mem.Store(uint64(ps.addr)/8, ps.val)
	}
	ent.stores = ent.stores[:0]

	waiting := ent.waiting
	ent.valid = false
	ent.hasRef = false
	ent.waiting = false
	c.inUse--
	if e == c.issuing && !waiting && c.blocked == blockNone {
		// Synchronous fast-forward completion: the run loop is live inside
		// issue(), so charge the miss stall against the pending reference
		// here and return — tryRef sees the freed entry and continues. The
		// blocked check matters: issue() also runs from NAK-retry events,
		// where a structurally blocked processor still needs the resume
		// below (the run loop is not live there).
		if consumed && fillAt > c.pendingAt {
			stall := fillAt - c.pendingAt
			switch {
			case c.pending.Sync:
				c.Stats.SyncStall += stall
			case c.pending.Kind == arch.RefRead:
				c.Stats.ReadStall += stall
			default:
				c.Stats.WriteStall += stall
			}
			c.pendingAt = fillAt
		}
		return
	}
	if waiting {
		c.resume(fillAt, consumed)
	} else if c.blocked == blockStructural {
		c.resume(fillAt, false)
	}
}

// classify maps a completed read miss to the five classes of Table 4.1.
func (c *CPU) classify(m arch.Msg) arch.MissClass {
	local := c.cfg.HomeOf(m.Addr) == c.ID
	dirty := m.Aux&1 != 0
	third := m.Aux&2 != 0
	switch {
	case local && !dirty:
		return arch.MissLocalClean
	case local:
		return arch.MissLocalDirty
	case !dirty:
		return arch.MissRemoteClean
	case third:
		return arch.MissRemoteDirty3rd
	default:
		return arch.MissRemoteDirtyHome
	}
}

// resume restarts the processor after a miss completion if it was blocked.
// consumed reports that the pending reference itself was the completed miss.
func (c *CPU) resume(at sim.Cycle, consumed bool) {
	if c.blocked == blockNone || c.done {
		return
	}
	c.blocked = blockNone
	// A synchronous fast-forward chain can complete a miss with a nominal
	// fill time behind this shard's clock (the chain ran on another node's
	// clock); events must not be scheduled in the past.
	at = c.ffAt(at)
	// Charge the stall to the pending reference's category. A completion
	// can land before the blocked reference's virtual issue time (the
	// processor runs ahead of the clock within a chunk); that is a zero
	// stall, not an underflow.
	if at < c.pendingAt {
		at = c.pendingAt
	}
	ref := &c.pending
	stall := at - c.pendingAt
	switch {
	case ref.Sync:
		c.Stats.SyncStall += stall
	case ref.Kind == arch.RefRead:
		c.Stats.ReadStall += stall
	default:
		c.Stats.WriteStall += stall
	}
	c.pendingAt = at
	if consumed {
		c.hasPending = false
	}
	c.eng.At(at, func() { c.run(at) })
}

// ffAt clamps an event time to the engine clock. Only meaningful under
// sampling (and the identity otherwise): synchronous fast-forward chains
// compute nominal times on the initiating node's clock, which can lie
// behind this node's shard clock on the sharded engine.
func (c *CPU) ffAt(at sim.Cycle) sim.Cycle {
	if c.sampling {
		if n := c.eng.Now(); at < n {
			return n
		}
	}
	return at
}

func (c *CPU) block(r blockReason, entry int, vt sim.Cycle) {
	c.blocked = r
	c.blockEntry = entry
	c.pendingAt = vt
}

// evict disposes of a victim line: Modified lines are written back, Shared
// lines produce a replacement hint. ff selects functional charging — set
// when the fill that triggered the eviction was itself functional, so the
// chain never re-enters the detailed machinery mid-flight.
func (c *CPU) evict(line uint64, st LineState, at sim.Cycle, ff bool) {
	addr := arch.Addr(line << arch.LineShift)
	if c.Tr.Active() {
		c.Tr.Emit(trace.Event{
			Cycle: uint64(at), Node: int32(c.ID), Kind: trace.KindEvict,
			Addr: uint64(addr), Name: st.String(),
		})
	}
	if st == Modified {
		c.Stats.Writebacks++
		msg := arch.Msg{Type: arch.MsgWB, Addr: addr, Src: c.ID, Req: c.ID, Dst: c.ID, DB: -1}
		if ff {
			c.ctl.FromProcFF(msg, at+sim.Cycle(c.t.BusLineBusy))
			return
		}
		_, end := c.Bus.Reserve(at, sim.Cycle(c.t.BusLineBusy))
		c.ctl.FromProc(msg, end)
		return
	}
	c.Stats.Hints++
	msg := arch.Msg{Type: arch.MsgRPL, Addr: addr, Src: c.ID, Req: c.ID, Dst: c.ID, DB: -1}
	if ff {
		c.ctl.FromProcFF(msg, at+sim.Cycle(c.t.BusTransit))
		return
	}
	_, end := c.Bus.Reserve(at, sim.Cycle(c.t.BusTransit))
	c.ctl.FromProc(msg, end)
}

// InterveneFF is the fast-forward counterpart of Intervene: the cache-state
// transition applies immediately and the response kind returns
// synchronously, with no bus reservation and no charge. MAGIC's functional
// handler path calls it mid-handler, so the protocol sees exactly the same
// state transitions as the detailed path in zero time.
func (c *CPU) InterveneFF(kind arch.MsgType, addr arch.Addr) arch.MsgType {
	line := addr.Line()
	if kind == arch.MsgPIInval {
		if e := c.findMSHR(line); e >= 0 && c.mshrs[e].kind == arch.MsgGET {
			c.mshrs[e].invalOnFill = true
		}
	}
	st := c.Cache.Lookup(line)
	if kind == arch.MsgPIInval || st != Modified {
		if kind != arch.MsgPIDowngr {
			c.Cache.SetState(line, Invalid)
		}
		return arch.MsgPCClean
	}
	if kind == arch.MsgPIFlush {
		c.Cache.SetState(line, Invalid)
	} else {
		c.Cache.SetState(line, Shared)
	}
	return arch.MsgPCData
}

// Intervene performs a controller-initiated cache transaction: an
// invalidation (PIInval), a downgrade retrieving dirty data (PIDowngr), or
// a flush retrieving data and invalidating (PIFlush). done is called with
// the response type and, for data responses, the time the first double
// word is available.
func (c *CPU) Intervene(kind arch.MsgType, addr arch.Addr, at sim.Cycle, done func(resp arch.MsgType, firstData sim.Cycle)) {
	line := addr.Line()
	if kind == arch.MsgPIInval {
		if e := c.findMSHR(line); e >= 0 && c.mshrs[e].kind == arch.MsgGET {
			c.mshrs[e].invalOnFill = true
		}
	}
	st := c.Cache.Lookup(line)
	if c.Tr.Active() {
		c.Tr.Emit(trace.Event{
			Cycle: uint64(c.eng.Now()), Node: int32(c.ID), Kind: trace.KindIntervene,
			Addr: uint64(addr), Arg: uint64(st), Name: kind.String(),
		})
	}
	if kind == arch.MsgPIInval || st != Modified {
		// State-only transaction: 15 cycles to probe/invalidate.
		_, end := c.Bus.Reserve(at, sim.Cycle(c.t.PCacheState))
		if kind != arch.MsgPIDowngr {
			c.Cache.SetState(line, Invalid)
		}
		resp := arch.MsgPCClean
		c.eng.At(end, func() { done(resp, end) })
		return
	}
	// Retrieve dirty data: 20 cycles to the first double word, then the
	// line streams over the bus. The requester proceeds critical-word-first
	// while the rest of the line streams.
	dur := sim.Cycle(c.t.PCacheData) + sim.Cycle(c.t.BusLineBusy)
	start, _ := c.Bus.Reserve(at, dur)
	first := start + sim.Cycle(c.t.PCacheData)
	if kind == arch.MsgPIFlush {
		c.Cache.SetState(line, Invalid)
	} else {
		c.Cache.SetState(line, Shared)
	}
	c.eng.At(first, func() { done(arch.MsgPCData, first) })
}

// FFLocalRead satisfies a cache-hit read functionally during a fast-forward
// phase, without a coroutine crossing: the workload calls it from ReadU (the
// hot blocking-read path) and, on success, keeps running with the value while
// the read's instruction rides to the processor as deferred busy time on the
// next reference that does cross. pendingBusy is the caller's accumulated
// uncharged instruction count including this read, so the phase gate sees
// the read's effective virtual time, not the stale batch-start time — a read
// stream that runs into a detailed window falls back to the simulated path
// exactly at the boundary. Cycle-exact: a detailed read hit costs only its
// instruction slot (the cache access is absorbed by the 4-per-cycle issue
// model), and charge()'s instruction-remainder carry makes deferred and
// per-reference conversion produce identical cycle totals. Requires no
// outstanding misses so MSHR merge/ordering semantics never apply.
func (c *CPU) FFLocalRead(a arch.Addr, pendingBusy uint32) (uint64, bool) {
	if !c.sampling || c.inUse != 0 {
		return 0, false
	}
	if c.phaseDetailed(uint64(c.srcNow) + uint64(pendingBusy/4)) {
		return 0, false
	}
	if c.Cache.Lookup(a.Line()) == Invalid {
		return 0, false
	}
	c.Stats.Refs++
	c.Stats.Reads++
	c.Stats.FFWork++
	return c.mem.Load(uint64(a)/8), true
}

// --- backing-store access (sim goroutine only) ---

func (c *CPU) load(ref *Ref) {
	if ref.Out != nil {
		*ref.Out = c.mem.Load(uint64(ref.Addr) / 8)
	}
}

func (c *CPU) store(ref *Ref) {
	c.mem.Store(uint64(ref.Addr)/8, ref.WVal)
}

func (c *CPU) rmw(ref *Ref) {
	i := uint64(ref.Addr) / 8
	old := c.mem.Load(i)
	if ref.Out != nil {
		*ref.Out = old
	}
	switch ref.RMW {
	case RMWSwap:
		c.mem.Store(i, ref.WVal)
	case RMWAdd:
		c.mem.Store(i, old+ref.WVal)
	}
}

// --- MSHR helpers ---

func (c *CPU) findMSHR(line uint64) int {
	if c.inUse == 0 {
		return -1 // the common case: no miss outstanding, skip the scan
	}
	for i := range c.mshrs {
		if c.mshrs[i].valid && c.mshrs[i].line == line {
			return i
		}
	}
	return -1
}

func (c *CPU) setConflict(line uint64) bool {
	if c.inUse == 0 {
		return false
	}
	for i := range c.mshrs {
		if c.mshrs[i].valid && c.Cache.SameSet(c.mshrs[i].line, line) {
			return true
		}
	}
	return false
}

func (c *CPU) allocMSHR() int {
	for i := range c.mshrs {
		if !c.mshrs[i].valid {
			c.inUse++
			return i
		}
	}
	panic("cpu: allocMSHR with none free")
}

// --- snapshot pause / capture / restore / reset ---

// PauseAfter arms (nonzero) or disarms (zero) the snapshot pause: the run
// loop parks at the first batch-refill boundary at or after retiring k
// references. Threads that finish before k finish normally.
func (c *CPU) PauseAfter(k uint64) { c.pauseAfter = k }

// Paused reports whether the run loop is parked at a pause point.
func (c *CPU) Paused() bool { return c.paused }

// PausedAt returns the virtual cycle at which the run loop parked.
func (c *CPU) PausedAt() sim.Cycle { return c.pausedAt }

// Finished reports whether the reference stream ran out.
func (c *CPU) Finished() bool { return c.done }

// ResumeAt clears the pause and restarts the run loop at absolute cycle at
// (>= both the engine clock and PausedAt). Callers disarm or re-arm
// PauseAfter first. No-op for a finished processor.
func (c *CPU) ResumeAt(at sim.Cycle) {
	if c.done {
		return
	}
	c.paused = false
	c.eng.At(at, func() { c.run(at) })
}

// CPUState is the deterministic simulation state of one quiesced processor,
// captured by CaptureState.
type CPUState struct {
	Cache    CacheState
	Bus      sim.Server
	Stats    Stats
	InstFrac uint32
	Done     bool
	PausedAt sim.Cycle
}

// CaptureState snapshots a quiesced processor: parked at a pause point (or
// finished) with no outstanding misses, no partially consumed batch, and no
// pending reference. Machine.Snapshot establishes those conditions by
// draining the engine after every pause fires; anything else is a bug, so
// it panics rather than capturing an unreproducible state.
func (c *CPU) CaptureState() CPUState {
	if !c.paused && !c.done {
		panic(fmt.Sprintf("cpu%d: CaptureState while running", c.ID))
	}
	if c.inUse != 0 || c.hasPending || c.blocked != blockNone || c.batchPos < len(c.batch) {
		panic(fmt.Sprintf("cpu%d: CaptureState before quiescence: %s", c.ID, c.DebugState()))
	}
	st := CPUState{
		Cache:    c.Cache.CaptureState(),
		Bus:      c.Bus,
		Stats:    c.Stats,
		InstFrac: c.instFrac,
		Done:     c.done,
		PausedAt: c.pausedAt,
	}
	st.Stats.WinWork = append([]uint64(nil), c.Stats.WinWork...)
	return st
}

// RestoreState installs a captured processor state into a freshly
// constructed or Reset CPU of the same configuration, leaving it parked
// exactly as the donor was. The reference source is reattached separately
// (workload replay); ResumeAt restarts execution.
func (c *CPU) RestoreState(st CPUState) {
	c.Cache.RestoreState(st.Cache)
	c.Bus = st.Bus
	c.Stats = st.Stats
	c.Stats.WinWork = append([]uint64(nil), st.Stats.WinWork...)
	c.instFrac = st.InstFrac
	c.done = st.Done
	c.paused = !st.Done
	c.pausedAt = st.PausedAt
	c.pauseAfter = 0
	c.batch, c.batchPos = nil, 0
	c.pending, c.hasPending, c.pendingAt = Ref{}, false, 0
	c.blocked, c.blockEntry = blockNone, 0
	c.issuing = -1
	for i := range c.mshrs {
		c.mshrs[i] = mshrEntry{}
	}
	c.inUse = 0
}

// Reset returns the processor to its freshly constructed state, keeping
// configuration, engine wiring, and the store view attachment.
func (c *CPU) Reset() {
	c.Cache.Reset()
	c.Bus = sim.Server{Strict: c.Bus.Strict}
	c.Stats = Stats{}
	for i := range c.mshrs {
		c.mshrs[i] = mshrEntry{}
	}
	c.inUse = 0
	c.batch, c.batchPos = nil, 0
	c.pending, c.hasPending, c.pendingAt = Ref{}, false, 0
	c.blocked, c.blockEntry = blockNone, 0
	c.issuing = -1
	c.instFrac = 0
	c.done = false
	c.src, c.onFinish = nil, nil
	c.paused, c.pausedAt, c.pauseAfter = false, 0, 0
	c.srcNow = 0
	c.phaseDet, c.phaseEnd = false, 0
}

// DebugState renders the processor's blocking state for hang diagnosis.
func (c *CPU) DebugState() string {
	s := fmt.Sprintf("done=%v blocked=%d hasPending=%v pendingAt=%d pending={%v %#x sync=%v} inUse=%d",
		c.done, c.blocked, c.hasPending, c.pendingAt, c.pending.Kind, c.pending.Addr, c.pending.Sync, c.inUse)
	for i := range c.mshrs {
		e := &c.mshrs[i]
		if e.valid {
			s += fmt.Sprintf(" mshr%d={line=%#x kind=%v waiting=%v retries=%d ffIssued=%v}", i, e.line, e.kind, e.waiting, e.retries, e.ffIssued)
		}
	}
	return s
}
