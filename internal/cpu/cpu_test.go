package cpu

import (
	"testing"

	"flashsim/internal/arch"
	"flashsim/internal/memsys"
	"flashsim/internal/sim"
)

// echoCtl replies to every GET/GETX after a fixed latency, optionally
// NAKing the first k requests.
type echoCtl struct {
	eng     *sim.Engine
	cpu     *CPU
	latency sim.Cycle
	nakRem  int
	reqs    []arch.Msg
	aux     uint32
}

func (c *echoCtl) FromProc(m arch.Msg, at sim.Cycle) {
	c.reqs = append(c.reqs, m)
	switch m.Type {
	case arch.MsgGET, arch.MsgGETX:
		reply := arch.Msg{Type: arch.MsgPUT, Addr: m.Addr, Aux: c.aux, DB: 0}
		if m.Type == arch.MsgGETX {
			reply.Type = arch.MsgPUTX
		}
		if c.nakRem > 0 {
			c.nakRem--
			reply = arch.Msg{Type: arch.MsgNAK, Addr: m.Addr, DB: -1}
		}
		c.eng.At(at+c.latency, func() { c.cpu.Deliver(reply, c.eng.Now()) })
	}
}

func (c *echoCtl) FromProcFF(m arch.Msg, at sim.Cycle) { c.FromProc(m, at) }

type scripted struct {
	refs []Ref
	i    int
}

// NextBatch delivers one reference per batch, exercising the CPU's refill
// loop on every reference.
func (s *scripted) NextBatch() ([]Ref, bool) {
	if s.i >= len(s.refs) {
		return nil, false
	}
	b := s.refs[s.i : s.i+1]
	s.i++
	return b, true
}
func (s *scripted) ReadDone() {}

func testCPU(t *testing.T, refs []Ref, nak int) (*CPU, *echoCtl, *sim.Engine) {
	t.Helper()
	cfg := arch.DefaultConfig()
	cfg.Nodes = 2
	cfg.MemBytesPerNode = 1 << 20
	eng := sim.NewEngine()
	ctl := &echoCtl{eng: eng, latency: 50, nakRem: nak}
	mem := memsys.NewStore(cfg.MemBytesPerNode / 4)
	c := New(0, eng, &cfg, ctl, memsys.NewView(mem))
	ctl.cpu = c
	c.SetSource(&scripted{refs: refs}, nil)
	c.Start()
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	return c, ctl, eng
}

func TestBlockingRead(t *testing.T) {
	var out uint64
	c, ctl, _ := testCPU(t, []Ref{
		{Kind: arch.RefRead, Addr: 0x1000, Out: &out},
		{Kind: arch.RefRead, Addr: 0x1000, Busy: 4}, // second read hits
	}, 0)
	if len(ctl.reqs) != 1 {
		t.Fatalf("requests = %d, want 1 (second read must hit)", len(ctl.reqs))
	}
	if c.Stats.ReadMisses != 1 || c.Stats.Reads != 2 {
		t.Fatalf("stats: %+v", c.Stats)
	}
	if c.Stats.ReadStall < 50 {
		t.Fatalf("read stall %d, want >= reply latency", c.Stats.ReadStall)
	}
}

func TestNonblockingWriteAndMerge(t *testing.T) {
	c, ctl, _ := testCPU(t, []Ref{
		{Kind: arch.RefWrite, Addr: 0x2000, WVal: 1},
		{Kind: arch.RefWrite, Addr: 0x2008, WVal: 2, Busy: 4}, // merges into same line
		{Kind: arch.RefWrite, Addr: 0x2010, WVal: 3, Busy: 4}, // merges too
	}, 0)
	if len(ctl.reqs) != 1 {
		t.Fatalf("requests = %d, want 1 (writes merge)", len(ctl.reqs))
	}
	if ctl.reqs[0].Type != arch.MsgGETX {
		t.Fatalf("request = %v, want GETX", ctl.reqs[0].Type)
	}
	if c.Stats.WriteStall != 0 {
		t.Fatalf("write stall = %d, want 0 (non-blocking)", c.Stats.WriteStall)
	}
	// Values applied in order.
	if c.mem.Load(0x2008/8) != 2 || c.mem.Load(0x2010/8) != 3 {
		t.Fatal("merged stores lost")
	}
}

func TestWriteIndexConflictStalls(t *testing.T) {
	// Two writes to the same cache set, different tags: the second stalls
	// until the first completes (the paper's rule).
	cfg := arch.DefaultConfig()
	setSpan := uint64(cfg.CacheSize / cfg.CacheWays) // bytes per way
	c, ctl, _ := testCPU(t, []Ref{
		{Kind: arch.RefWrite, Addr: 0x3000, WVal: 1},
		{Kind: arch.RefWrite, Addr: arch.Addr(0x3000 + setSpan), WVal: 2, Busy: 4},
	}, 0)
	if len(ctl.reqs) != 2 {
		t.Fatalf("requests = %d, want 2", len(ctl.reqs))
	}
	if c.Stats.WriteStall == 0 {
		t.Fatal("conflicting write did not stall")
	}
}

func TestNakRetry(t *testing.T) {
	var out uint64
	c, ctl, _ := testCPU(t, []Ref{
		{Kind: arch.RefRead, Addr: 0x4000, Out: &out},
	}, 2)
	if len(ctl.reqs) != 3 {
		t.Fatalf("requests = %d, want 3 (two NAK retries)", len(ctl.reqs))
	}
	if c.Stats.Naks != 2 {
		t.Fatalf("naks = %d, want 2", c.Stats.Naks)
	}
}

func TestMissClassification(t *testing.T) {
	cases := []struct {
		addr  arch.Addr
		aux   uint32
		class arch.MissClass
	}{
		{0x1000, 0, arch.MissLocalClean}, // home 0 (= self)
		{0x1080, 1, arch.MissLocalDirty},
		{1<<20 + 0x1000, 0, arch.MissRemoteClean}, // home 1
		{1<<20 + 0x1080, 1, arch.MissRemoteDirtyHome},
		{1<<20 + 0x1100, 3, arch.MissRemoteDirty3rd},
	}
	for _, cse := range cases {
		cfg := arch.DefaultConfig()
		cfg.Nodes = 2
		cfg.MemBytesPerNode = 1 << 20
		eng := sim.NewEngine()
		ctl := &echoCtl{eng: eng, latency: 30, aux: cse.aux}
		c := New(0, eng, &cfg, ctl, memsys.NewView(memsys.NewStore(1<<18)))
		ctl.cpu = c
		var out uint64
		c.SetSource(&scripted{refs: []Ref{{Kind: arch.RefRead, Addr: cse.addr, Out: &out}}}, nil)
		c.Start()
		if err := eng.Run(); err != nil {
			t.Fatal(err)
		}
		if c.Stats.MissClass[cse.class] != 1 {
			t.Fatalf("aux=%d addr=%#x: census %v, want class %v", cse.aux, cse.addr, c.Stats.MissClass, cse.class)
		}
	}
}

func TestInterventionRetrievesDirty(t *testing.T) {
	c, _, eng := testCPU(t, []Ref{
		{Kind: arch.RefWrite, Addr: 0x5000, WVal: 7},
	}, 0)
	// The line is now Modified; a downgrade intervention retrieves it.
	var resp arch.MsgType
	var first sim.Cycle
	c.Intervene(arch.MsgPIDowngr, 0x5000, eng.Now(), func(r arch.MsgType, f sim.Cycle) {
		resp, first = r, f
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if resp != arch.MsgPCData {
		t.Fatalf("resp = %v, want PCData", resp)
	}
	if first == 0 {
		t.Fatal("no firstData time")
	}
	if c.Cache.Lookup(arch.Addr(0x5000).Line()) != Shared {
		t.Fatal("downgrade did not leave line Shared")
	}
	// A clean intervention now responds PCClean.
	c.Intervene(arch.MsgPIFlush, 0x5000, eng.Now(), func(r arch.MsgType, f sim.Cycle) { resp = r })
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if resp != arch.MsgPCClean {
		t.Fatalf("resp = %v, want PCClean", resp)
	}
	if c.Cache.Lookup(arch.Addr(0x5000).Line()) != Invalid {
		t.Fatal("flush did not invalidate")
	}
}

func TestBusyAccounting(t *testing.T) {
	c, _, _ := testCPU(t, []Ref{
		{Kind: arch.RefWrite, Addr: 0x6000, Busy: 400},
		{Kind: arch.RefWrite, Addr: 0x6000, Busy: 401, Sync: true},
	}, 0)
	// 400 instructions at 4/cycle = 100 cycles busy (+1 per ref issue).
	if c.Stats.Busy < 100 || c.Stats.Busy > 102 {
		t.Fatalf("busy = %d, want ~100", c.Stats.Busy)
	}
	if c.Stats.SyncStall < 100 {
		t.Fatalf("sync busy = %d, want ~100", c.Stats.SyncStall)
	}
}
