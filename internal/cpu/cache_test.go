package cpu

import (
	"testing"
	"testing/quick"
)

func TestCacheFillLookup(t *testing.T) {
	c := NewCache(4096, 2) // 16 sets
	if st := c.Lookup(5); st != Invalid {
		t.Fatalf("empty cache hit: %v", st)
	}
	c.Fill(5, Shared)
	if st := c.Lookup(5); st != Shared {
		t.Fatalf("state = %v, want S", st)
	}
	c.Fill(5, Modified) // upgrade in place
	if st := c.Lookup(5); st != Modified {
		t.Fatalf("state = %v, want M", st)
	}
	if len(c.Lines()) != 1 {
		t.Fatalf("lines = %v", c.Lines())
	}
}

func TestCacheEvictsLRU(t *testing.T) {
	c := NewCache(4096, 2) // 16 sets: lines 1, 17, 33 share set 1
	c.Fill(1, Shared)
	c.Fill(17, Modified)
	c.Lookup(1) // touch 1: now 17 is LRU
	victim, vstate, evicted := c.Fill(33, Shared)
	if !evicted || victim != 17 || vstate != Modified {
		t.Fatalf("evicted %v %d %v, want 17 M", evicted, victim, vstate)
	}
	if c.Lookup(1) == Invalid || c.Lookup(33) == Invalid {
		t.Fatal("resident lines lost")
	}
	if c.Lookup(17) != Invalid {
		t.Fatal("victim still resident")
	}
}

func TestCacheSetStateInvalidate(t *testing.T) {
	c := NewCache(4096, 2)
	c.Fill(9, Modified)
	if had := c.SetState(9, Shared); had != Modified {
		t.Fatalf("had = %v, want M", had)
	}
	if had := c.SetState(9, Invalid); had != Shared {
		t.Fatalf("had = %v, want S", had)
	}
	if c.Lookup(9) != Invalid {
		t.Fatal("line still resident after invalidate")
	}
	if had := c.SetState(9, Invalid); had != Invalid {
		t.Fatalf("non-resident SetState = %v, want I", had)
	}
}

func TestSameSet(t *testing.T) {
	c := NewCache(4096, 2)
	if !c.SameSet(1, 17) || c.SameSet(1, 2) {
		t.Fatal("set mapping wrong")
	}
}

// Property: the cache never holds more lines per set than its
// associativity, and a filled line is always immediately visible.
func TestCacheCapacityProperty(t *testing.T) {
	f := func(lines []uint16) bool {
		c := NewCache(2048, 2) // 8 sets
		for _, l := range lines {
			line := uint64(l)
			c.Fill(line, Shared)
			if c.Lookup(line) == Invalid {
				return false
			}
		}
		perSet := map[int]int{}
		for l := range c.Lines() {
			perSet[int(l%8)]++
		}
		for _, n := range perSet {
			if n > 2 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
