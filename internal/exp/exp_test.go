package exp

import (
	"strings"
	"testing"
)

// tinyOptions keeps experiment smoke tests fast.
func tinyOptions() Options { return Options{Scale: 16, Verify: true} }

func TestTable33(t *testing.T) {
	s, err := Table33()
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + s)
	if !strings.Contains(s, "Remote read miss") {
		t.Fatal("missing rows")
	}
}

func TestTable34(t *testing.T) {
	s, err := Table34()
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + s)
	for _, h := range []string{"pi_get_local", "ni_get", "ni_fwd_get", "ni_put"} {
		if !strings.Contains(s, h) {
			t.Fatalf("missing handler %s", h)
		}
	}
}

func TestFig41(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	s, err := Fig41(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + s)
}

func TestFig42(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	s, err := Fig42(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + s)
}

func TestFig43(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	s, err := Fig43(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + s)
}

func TestSec43(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	s, err := Sec43(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + s)
}

func TestTable51(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	s, err := Table51(tinyOptions(), 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + s)
}

func TestSec52(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	s, err := Sec52(Options{Scale: 64, Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + s)
}

func TestTable52(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	s, err := Table52(tinyOptions(), 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + s)
}

func TestTable53(t *testing.T) {
	s, err := Table53()
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + s)
	if !strings.Contains(s, "branch on bit") {
		t.Fatal("missing instruction class")
	}
}

func TestSec53(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	s, err := Sec53(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + s)
}
