package exp

import (
	"fmt"
	"math"

	"flashsim/internal/apps"
	"flashsim/internal/arch"
)

// SampledRow is one application's full-vs-sampled comparison.
type SampledRow struct {
	App string
	// FullElapsed is the detailed simulation's elapsed cycles — ground
	// truth. EstElapsed and EstCI are the sampled run's extrapolation and
	// its 95% confidence half-width.
	FullElapsed uint64
	EstElapsed  uint64
	EstCI       uint64
	// ErrPct is the signed estimation error in percent.
	ErrPct float64
	// FullSimSec and SampledSimSec are event-loop wall times (machine
	// construction, verification, and the coherence audit excluded — those
	// costs are identical in both legs and independent of the schedule).
	FullSimSec    float64
	SampledSimSec float64
	Speedup       float64
	// Covered reports whether the truth lies inside the confidence interval.
	Covered bool
}

// sampledLegRepeats is how many times each leg of the comparison runs: the
// reported wall is the minimum (the standard noise estimator for wall-clock
// benchmarking — host scheduling and GC spikes only ever add time), while
// the simulated outputs are asserted bit-identical across repeats.
const sampledLegRepeats = 3

// SampledCompare runs each application on the Section 3 FLASH machine fully
// detailed and under the sampled schedule — each leg sampledLegRepeats times,
// keeping the minimum event-loop wall — and returns the error/speedup table.
// The legs run sequentially so wall-clock comparisons are not polluted by
// host contention.
func SampledCompare(o Options, appNames []string, spec arch.SampleSpec) ([]SampledRow, error) {
	if !spec.Enabled() {
		return nil, fmt.Errorf("exp: sampled comparison needs an enabled SampleSpec")
	}
	procs := 16
	if o.Procs > 0 {
		procs = o.Procs
	}
	rows := make([]SampledRow, 0, len(appNames))
	for _, name := range appNames {
		cfg := o.baseConfig(procs)
		cfg.Kind = arch.KindFLASH
		p := o.paramsFor(name, procs)

		full, err := minWallRun(name, cfg, p, o.Verify)
		if err != nil {
			return nil, fmt.Errorf("full: %w", err)
		}
		cfg.Sample = spec
		sampled, err := minWallRun(name, cfg, p, o.Verify)
		if err != nil {
			return nil, fmt.Errorf("sampled: %w", err)
		}
		s := sampled.Report.Sampled
		if s == nil {
			return nil, fmt.Errorf("exp: %s: sampled run produced no extrapolation section", name)
		}

		row := SampledRow{
			App:           name,
			FullElapsed:   uint64(full.Report.Elapsed),
			EstElapsed:    s.ElapsedEst,
			EstCI:         s.ElapsedCI,
			FullSimSec:    full.SimWall.Seconds(),
			SampledSimSec: sampled.SimWall.Seconds(),
		}
		row.ErrPct = 100 * (float64(row.EstElapsed) - float64(row.FullElapsed)) / float64(row.FullElapsed)
		if row.SampledSimSec > 0 {
			row.Speedup = row.FullSimSec / row.SampledSimSec
		}
		diff := math.Abs(float64(row.EstElapsed) - float64(row.FullElapsed))
		row.Covered = diff <= float64(row.EstCI)
		rows = append(rows, row)
	}
	return rows, nil
}

// Sampled renders the full-vs-sampled comparison for the Figure 4.1
// applications: estimation error with 95% confidence intervals alongside the
// event-loop wall-clock speedup. The spec comes from o.Sample (default
// schedule when unset).
func Sampled(o Options) (string, error) {
	spec := o.Sample
	if !spec.Enabled() {
		spec = arch.DefaultSampleSpec()
	}
	appList := Fig41Apps()
	if len(o.SampleApps) > 0 {
		appList = o.SampleApps
	}
	rows, err := SampledCompare(o, appList, spec)
	if err != nil {
		return "", err
	}
	header := []string{"app", "full(cyc)", "est(cyc)", "±95%", "err", "covered", "full(s)", "sampled(s)", "speedup"}
	var body [][]string
	for _, r := range rows {
		body = append(body, []string{
			r.App,
			fmt.Sprintf("%d", r.FullElapsed),
			fmt.Sprintf("%d", r.EstElapsed),
			fmt.Sprintf("%d", r.EstCI),
			fmt.Sprintf("%+.1f%%", r.ErrPct),
			fmt.Sprintf("%v", r.Covered),
			fmt.Sprintf("%.3f", r.FullSimSec),
			fmt.Sprintf("%.3f", r.SampledSimSec),
			fmt.Sprintf("%.2fx", r.Speedup),
		})
	}
	out := fmt.Sprintf("Sampled fast-forward vs full simulation (%s, %d procs, scale 1/%d)\n",
		spec, pickProcs(o), o.Scale) + table(header, body) +
		"\nerr compares the sampled run's extrapolated Elapsed against the full\n" +
		"run's; wall times cover the event loop only. Work-dominated applications\n" +
		"(mp3d, radix) extrapolate well; barrier-heavy codes under-estimate\n" +
		"because fast-forwarded synchronization time is repriced at the detailed\n" +
		"windows' work rate (see DESIGN.md §14).\n"
	return out, nil
}

// minWallRun runs the app sampledLegRepeats times and returns the run with
// the smallest event-loop wall, after checking that simulated behavior was
// bit-identical across the repeats (cycles, events, and the extrapolation
// are all deterministic; only host wall time may vary).
func minWallRun(name string, cfg arch.Config, p apps.Params, verify bool) (*Run, error) {
	var best *Run
	for i := 0; i < sampledLegRepeats; i++ {
		r, err := RunApp(name, cfg, p, verify)
		if err != nil {
			return nil, err
		}
		if best == nil {
			best = r
			continue
		}
		if r.Report.Elapsed != best.Report.Elapsed ||
			r.Machine.Eng.ExecutedEvents() != best.Machine.Eng.ExecutedEvents() {
			return nil, fmt.Errorf("exp: %s: repeat run diverged (elapsed %d/%d, events %d/%d)",
				name, best.Report.Elapsed, r.Report.Elapsed,
				best.Machine.Eng.ExecutedEvents(), r.Machine.Eng.ExecutedEvents())
		}
		if r.SimWall < best.SimWall {
			best, r = r, best
		}
		// Recycle the losing leg's machine; repeats of the same config are
		// the pool's best customer, and the divergence check above doubles
		// as a recycled-vs-fresh bit-identity assertion.
		r.Release()
	}
	return best, nil
}

func pickProcs(o Options) int {
	if o.Procs > 0 {
		return o.Procs
	}
	return 16
}
