package exp

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"flashsim/internal/apps"
	"flashsim/internal/core"
	"flashsim/internal/trace"
)

// TestTracingDoesNotPerturbSimulation runs the same workload bare and with
// the full observability stack attached — JSONL event tracer plus occupancy
// sampling — and requires bit-identical execution time and event counts. The
// trace layer must be strictly observational.
func TestTracingDoesNotPerturbSimulation(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	const name = "fft"
	run := func(observe func(*core.Machine)) *Run {
		cfg := goldenConfig()
		r, err := RunAppObserved(name, cfg, apps.Params{Scale: goldenScales[name]}, true, observe)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		return r
	}

	bare := run(nil)

	var buf bytes.Buffer
	var tr *trace.Tracer
	traced := run(func(m *core.Machine) {
		tr = trace.New(trace.NewJSONLSink(&buf))
		m.SetTracer(tr)
		m.EnableOccSampling(10000)
	})
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}

	if bare.Report.Elapsed != traced.Report.Elapsed {
		t.Errorf("elapsed changed under tracing: %d vs %d", bare.Report.Elapsed, traced.Report.Elapsed)
	}
	if bare.Machine.Eng.ExecutedEvents() != traced.Machine.Eng.ExecutedEvents() {
		t.Errorf("events executed changed under tracing: %d vs %d",
			bare.Machine.Eng.ExecutedEvents(), traced.Machine.Eng.ExecutedEvents())
	}

	// The traced run must still match the recorded golden digest.
	buf2, err := os.ReadFile(filepath.Join("testdata", "golden_digest.json"))
	if err != nil {
		t.Fatalf("missing golden digests: %v", err)
	}
	want := map[string]goldenDigest{}
	if err := json.Unmarshal(buf2, &want); err != nil {
		t.Fatal(err)
	}
	w, ok := want[name]
	if !ok {
		t.Fatalf("%s: no golden digest recorded", name)
	}
	got := goldenDigest{
		Elapsed:  uint64(traced.Report.Elapsed),
		Executed: traced.Machine.Eng.ExecutedEvents(),
	}
	if got != w {
		t.Errorf("%s traced digest %+v, want %+v", name, got, w)
	}

	// And the trace itself must be substantial and well-formed.
	evs, err := trace.ReadJSONL(&buf)
	if err != nil {
		t.Fatalf("decoding trace: %v", err)
	}
	if len(evs) == 0 {
		t.Fatal("traced run produced no events")
	}
	kinds := map[trace.Kind]int{}
	for _, ev := range evs {
		kinds[ev.Kind]++
	}
	for _, k := range []trace.Kind{
		trace.KindMsgSend, trace.KindMsgRecv, trace.KindHandler,
		trace.KindMissIssue, trace.KindMissDone, trace.KindFill, trace.KindMemRead,
	} {
		if kinds[k] == 0 {
			t.Errorf("trace has no %v events", k)
		}
	}
	if kinds[trace.KindMsgSend] != kinds[trace.KindMsgRecv] {
		t.Errorf("unbalanced message events: %d sends, %d recvs",
			kinds[trace.KindMsgSend], kinds[trace.KindMsgRecv])
	}

	// Occupancy sampling must have produced curves consistent with the run.
	if n := len(traced.Report.MemOccSeries); n == 0 {
		t.Error("no memory occupancy series")
	}
	if n := len(traced.Report.PPOccSeries); n == 0 {
		t.Error("no PP occupancy series")
	}
	if traced.Report.OccWindow != 10000 {
		t.Errorf("OccWindow = %d, want 10000", traced.Report.OccWindow)
	}
	for i, v := range traced.Report.MemOccSeries {
		if v < 0 || v > 1 {
			t.Errorf("mem occupancy window %d out of range: %g", i, v)
		}
	}

	// A Chrome-format trace of the same run must be valid and carry the same
	// number of events (same simulation, different encoding).
	var cbuf bytes.Buffer
	var ctr *trace.Tracer
	chromed := run(func(m *core.Machine) {
		ctr = trace.New(trace.NewChromeSink(&cbuf))
		m.SetTracer(ctr)
	})
	if err := ctr.Close(); err != nil {
		t.Fatal(err)
	}
	if chromed.Report.Elapsed != bare.Report.Elapsed {
		t.Errorf("elapsed changed under chrome tracing: %d vs %d",
			chromed.Report.Elapsed, bare.Report.Elapsed)
	}
	ct, err := trace.ReadChrome(&cbuf)
	if err != nil {
		t.Fatalf("decoding chrome trace: %v", err)
	}
	if len(ct.TraceEvents) != len(evs) {
		t.Errorf("chrome trace has %d events, jsonl had %d", len(ct.TraceEvents), len(evs))
	}
}
