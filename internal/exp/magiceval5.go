package exp

import (
	"fmt"
	"strings"

	"flashsim/internal/apps"
	"flashsim/internal/arch"
	"flashsim/internal/ppisa"
	"flashsim/internal/protocol"
)

// Table51 measures the impact of speculative memory operations: the
// fraction of useless speculative reads with speculation on, and the
// execution-time increase with it disabled (Section 5.1).
func Table51(o Options, cacheBytes int) (string, error) {
	names := apps.Names
	if cacheBytes <= 16<<10 {
		// The paper omits Barnes, LU, and OS at the small cache size.
		names = []string{"fft", "mp3d", "ocean", "radix"}
	}
	type row struct {
		app               string
		useless, slowdown float64
	}
	rows, err := parallelMap(o.workers(16), names, func(name string) (row, error) {
		np := 16
		if name == "os" {
			np = 8
		}
		cfg := o.baseConfig(np)
		cfg.CacheSize = cacheBytes
		if name == "ocean" && cacheBytes == 4<<10 {
			cfg.CacheSize = 16 << 10
		}
		if name == "os" {
			cfg.Placement = arch.PlaceRoundRobin
		}
		p := o.paramsFor(name, np)
		on, err := RunApp(name, cfg, p, o.Verify)
		if err != nil {
			return row{}, err
		}
		cfg.Speculation = false
		off, err := RunApp(name, cfg, p, o.Verify)
		if err != nil {
			return row{}, err
		}
		return row{
			app:      name,
			useless:  on.Report.SpecUseless,
			slowdown: 100 * (float64(off.Report.Elapsed)/float64(on.Report.Elapsed) - 1),
		}, nil
	})
	if err != nil {
		return "", err
	}
	out := [][]string{}
	for _, r := range rows {
		out = append(out, []string{r.app, fmt.Sprintf("%.1f%%", 100*r.useless), fmt.Sprintf("%+.1f%%", r.slowdown)})
	}
	title := fmt.Sprintf("Table 5.1: speculative memory operations, %d KB caches", cacheBytes>>10)
	return title + "\n" + table([]string{"App", "Useless spec reads", "Exec time w/o speculation"}, out), nil
}

// Sec52 stresses the MAGIC data cache: a uniprocessor radix sort over a
// data set whose directory footprint exceeds the MDC, plus the OS
// workload's MDC rates (Section 5.2).
func Sec52(o Options) (string, error) {
	var b strings.Builder
	b.WriteString("Section 5.2: MAGIC data cache behaviour\n\n")

	// Uniprocessor radix with a large data set: the paper used 16 MB and a
	// radix of 2048 on one processor (MDC read miss rate 30%, 14% slower
	// than a no-MDC-penalty machine).
	keys := (4 << 20) / 8 / o.Scale // 4 MB of keys per unit scale
	scale := (256 * 1024) / keys
	if scale < 1 {
		scale = 1
	}
	cfg := o.baseConfig(1)
	cfg.Nodes = 1
	cfg.MemBytesPerNode = 32 << 20
	p := apps.Params{Procs: 1, Scale: scale}
	run, err := RunApp("radix", cfg, p, o.Verify)
	if err != nil {
		return "", err
	}
	b.WriteString(fmt.Sprintf("Uniprocessor radix sort (%d KB of keys):\n", keys*8>>10))
	b.WriteString(fmt.Sprintf("  processor cache miss rate %.2f%%  (paper: 1.4%%)\n", 100*run.Report.MissRate))
	b.WriteString(fmt.Sprintf("  MDC miss rate             %.1f%%  (paper: 14.9%%)\n", 100*run.Report.MDCMissRate))
	b.WriteString(fmt.Sprintf("  MDC read miss rate        %.1f%%  (paper: 30%%)\n", 100*run.Report.MDCReadMissRate))

	// Compare against a FLASH machine with a huge MDC (the paper's "no MDC
	// miss penalty" uniprocessor).
	big := cfg
	big.MDCSize = 8 << 20
	ideal, err := RunApp("radix", big, p, o.Verify)
	if err != nil {
		return "", err
	}
	b.WriteString(fmt.Sprintf("  slowdown vs no-MDC-miss machine: +%.1f%%  (paper: +14%%)\n\n",
		100*(float64(run.Report.Elapsed)/float64(ideal.Report.Elapsed)-1)))

	// OS workload MDC rates.
	oc := o.baseConfig(8)
	oc.Placement = arch.PlaceRoundRobin
	osr, err := RunApp("os", oc, o.paramsFor("os", 8), o.Verify)
	if err != nil {
		return "", err
	}
	b.WriteString("OS workload:\n")
	b.WriteString(fmt.Sprintf("  MDC miss rate      %.1f%%  (paper: 4.1%%)\n", 100*osr.Report.MDCMissRate))
	b.WriteString(fmt.Sprintf("  MDC read miss rate %.1f%%  (paper: 8.7%%)\n", 100*osr.Report.MDCReadMissRate))
	b.WriteString(fmt.Sprintf("  MDC fills / memory operations %.1f%%  (paper: 34%%)\n", 100*osr.Report.MDCFillsOfMemOps))
	return b.String(), nil
}

// Table52 reports the PP architecture statistics of Table 5.2: static code
// size and the dynamic dual-issue/special-instruction figures from the
// parallel application suite.
func Table52(o Options, cacheBytes int) (string, error) {
	cfg := arch.DefaultConfig()
	prog, err := protocol.Build(&cfg)
	if err != nil {
		return "", err
	}
	names := []string{"barnes", "fft", "lu", "mp3d", "ocean", "radix"}
	if cacheBytes <= 64<<10 {
		names = []string{"barnes", "fft", "mp3d", "ocean", "radix"}
	}
	rows, err := runSuite(o, names, cacheBytes, 0)
	if err != nil {
		return "", err
	}
	// Aggregate dynamic stats across the suite.
	var sInstr, sPairs, sALU, sSpec, sInv, sMiss uint64
	for _, r := range rows {
		for _, n := range r.Flash.Machine.Nodes {
			ps := n.Magic.PP.Stats
			sInstr += ps.Instrs
			sPairs += ps.Pairs
			sALU += ps.ALUOrBranch
			sSpec += ps.Special
			sInv += n.Magic.Stats.Dispatches
		}
		sMiss += r.Flash.Report.Misses
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Table 5.2: PP architecture evaluation (%d KB caches)\n", cacheBytes>>10)
	fmt.Fprintf(&b, "  static code size (with NOPs)        %.1f KB   (paper: 14.8 KB)\n", float64(prog.Code.CodeBytes())/1024)
	fmt.Fprintf(&b, "  dynamic dual-issue efficiency       %.2f     (paper: 1.43-1.54)\n", float64(sInstr)/float64(sPairs))
	fmt.Fprintf(&b, "  special instruction use             %.0f%%     (paper: 37-43%%)\n", 100*float64(sSpec)/float64(sALU))
	fmt.Fprintf(&b, "  instruction pairs per handler       %.1f     (paper: 10.8-13.5)\n", float64(sPairs)/float64(sInv))
	fmt.Fprintf(&b, "  handler invocations per cache miss  %.2f     (paper: 3.51-3.87)\n", float64(sInv)/float64(sMiss))
	return b.String(), nil
}

// Table53 performs the static special-instruction analysis of Table 5.3:
// for each special instruction in the protocol, the size of its DLX
// substitution sequence.
func Table53() (string, error) {
	cfg := arch.DefaultConfig()
	prog, err := protocol.Build(&cfg)
	if err != nil {
		return "", err
	}
	type acc struct{ count, expanded int }
	byKind := map[string]*acc{}
	for _, in := range prog.Source.Instrs {
		var kind string
		switch in.Op {
		case ppisa.FFS:
			kind = "find first set bit"
		case ppisa.BBS, ppisa.BBC:
			kind = "branch on bit"
		case ppisa.ORFI, ppisa.ANDFI:
			kind = "ALU field immediate"
		case ppisa.INS:
			kind = "insert field"
		case ppisa.EXT:
			kind = "extract field"
		default:
			continue
		}
		isolated := in
		isolated.Target, isolated.Sym = 0, "" // size analysis only
		one := &ppisa.Source{Instrs: []ppisa.Instr{isolated}, Labels: map[string]int{}}
		sub := ppisa.SubstituteDLX(one)
		a := byKind[kind]
		if a == nil {
			a = &acc{}
			byKind[kind] = a
		}
		a.count++
		a.expanded += len(sub.Instrs)
	}
	rows := [][]string{}
	for _, k := range sortedKeys(byKind) {
		a := byKind[k]
		rows = append(rows, []string{
			k, fmt.Sprint(a.count),
			fmt.Sprintf("%.1f", float64(a.expanded)/float64(a.count)),
		})
	}
	title := "Table 5.3: special instructions vs DLX substitution (static)\n" +
		"(paper: ffs 6 or 27 instrs; branch-on-bit 2-4; field immediate 1-5;\n" +
		" insert = two field immediates + or)\n"
	return title + table([]string{"Instruction type", "Static uses", "Mean DLX instrs"}, rows), nil
}

// Sec53 measures the Section 5.3 ablation: protocol handlers compiled
// without special instructions and scheduled single-issue.
func Sec53(o Options) (string, error) {
	names := []string{"fft", "lu", "mp3d", "ocean", "radix", "barnes"}
	type row struct {
		app      string
		slowdown float64
	}
	rows, err := parallelMap(o.workers(16), names, func(name string) (row, error) {
		cfg := o.baseConfig(16)
		p := o.paramsFor(name, 16)
		opt, err := RunApp(name, cfg, p, o.Verify)
		if err != nil {
			return row{}, err
		}
		cfg.PPMode = arch.PPNoSpecial
		slow, err := RunApp(name, cfg, p, o.Verify)
		if err != nil {
			return row{}, err
		}
		return row{name, 100 * (float64(slow.Report.Elapsed)/float64(opt.Report.Elapsed) - 1)}, nil
	})
	if err != nil {
		return "", err
	}
	out := [][]string{}
	sum, max := 0.0, 0.0
	for _, r := range rows {
		out = append(out, []string{r.app, fmt.Sprintf("+%.1f%%", r.slowdown)})
		sum += r.slowdown
		if r.slowdown > max {
			max = r.slowdown
		}
	}
	var b strings.Builder
	b.WriteString("Section 5.3: non-optimized PP (single-issue, DLX substitution)\n")
	b.WriteString(table([]string{"App", "Execution time increase"}, out))
	fmt.Fprintf(&b, "average +%.1f%%, maximum +%.1f%%  (paper: average +40%%, max +137%% on MP3D)\n", sum/float64(len(rows)), max)
	return b.String(), nil
}

// ProtoCompare runs the application suite under both coherence protocol
// programs — dynamic pointer allocation and the DASH-style bit-vector
// directory — demonstrating the flexibility the paper's conclusion argues
// for: the same machine, a different handler program.
func ProtoCompare(o Options) (string, error) {
	names := []string{"fft", "ocean", "radix", "mp3d"}
	type row struct {
		app               string
		dyn, bv           uint64
		dynOcc, bvOcc     float64
		dynPairs, bvPairs float64
	}
	rows, err := parallelMap(o.workers(16), names, func(name string) (row, error) {
		cfg := o.baseConfig(16)
		p := o.paramsFor(name, 16)
		dyn, err := RunApp(name, cfg, p, o.Verify)
		if err != nil {
			return row{}, err
		}
		cfg.Protocol = arch.ProtoBitVector
		bv, err := RunApp(name, cfg, p, o.Verify)
		if err != nil {
			return row{}, err
		}
		return row{
			app: name,
			dyn: uint64(dyn.Report.Elapsed), bv: uint64(bv.Report.Elapsed),
			dynOcc: dyn.Report.AvgPPOcc, bvOcc: bv.Report.AvgPPOcc,
			dynPairs: dyn.Report.PairsPerHandler, bvPairs: bv.Report.PairsPerHandler,
		}, nil
	})
	if err != nil {
		return "", err
	}
	out := [][]string{}
	for _, r := range rows {
		out = append(out, []string{
			r.app,
			fmt.Sprint(r.dyn), fmt.Sprint(r.bv),
			fmt.Sprintf("%+.1f%%", 100*(float64(r.bv)/float64(r.dyn)-1)),
			pct(r.dynOcc), pct(r.bvOcc),
			fmt.Sprintf("%.1f", r.dynPairs), fmt.Sprintf("%.1f", r.bvPairs),
		})
	}
	title := "Protocol flexibility: dynamic pointer allocation vs bit-vector directory\n" +
		"(same machine, same jump table — a different handler program)\n"
	return title + table([]string{"App", "dynptr cycles", "bitvec cycles", "delta",
		"dynptr PP occ", "bitvec PP occ", "dynptr pairs/h", "bitvec pairs/h"}, out), nil
}
