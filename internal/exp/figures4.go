package exp

import (
	"fmt"
	"strings"

	"flashsim/internal/apps"
	"flashsim/internal/arch"
)

// appRow is one application's FLASH/ideal pair.
type appRow struct {
	App          string
	Flash, Ideal *Run
}

// runSuite runs the listed applications on both machines at the given cache
// size. procs 0 means the paper's default (16, or 8 for the OS workload).
func runSuite(o Options, names []string, cacheBytes, procs int) ([]appRow, error) {
	sizing := procs
	if sizing == 0 {
		sizing = 16
	}
	if o.Procs > 0 {
		sizing = o.Procs
	}
	return parallelMap(o.workers(sizing), names, func(name string) (appRow, error) {
		np := procs
		if np == 0 {
			np = 16
			if name == "os" {
				np = 8
			}
		}
		if o.Procs > 0 {
			np = o.Procs
		}
		cfg := o.baseConfig(np)
		if cacheBytes > 0 {
			cfg.CacheSize = cacheBytes
			// The paper uses 16 KB instead of 4 KB for Ocean (cache
			// conflicts with 128-byte lines).
			if name == "ocean" && cacheBytes == 4<<10 {
				cfg.CacheSize = 16 << 10
			}
		}
		if name == "os" {
			cfg.Placement = arch.PlaceRoundRobin
		}
		f, i, err := Pair(name, cfg, o.paramsFor(name, np), o.Verify)
		if err != nil {
			return appRow{}, err
		}
		return appRow{App: name, Flash: f, Ideal: i}, nil
	})
}

// renderFig renders a Figure 4.x execution-time comparison: normalized
// execution times with Busy/Read/Write/Sync breakdowns.
func renderFig(title string, rows []appRow) string {
	var b strings.Builder
	b.WriteString(title + "\n")
	b.WriteString("(execution time normalized to FLASH = 100; components in points)\n")
	hdr := []string{"App", "Machine", "Total", "Busy", "Read", "Write", "Sync", "Slowdown"}
	out := [][]string{}
	for _, r := range rows {
		fl, id := r.Flash.Report, r.Ideal.Report
		norm := 100.0 / float64(fl.Elapsed)
		out = append(out, []string{
			r.App, "FLASH", "100.0",
			fmt.Sprintf("%.1f", float64(fl.Elapsed)*norm*fl.Breakdown.Busy),
			fmt.Sprintf("%.1f", float64(fl.Elapsed)*norm*fl.Breakdown.Read),
			fmt.Sprintf("%.1f", float64(fl.Elapsed)*norm*fl.Breakdown.Write),
			fmt.Sprintf("%.1f", float64(fl.Elapsed)*norm*fl.Breakdown.Sync),
			"",
		})
		out = append(out, []string{
			"", "ideal", fmt.Sprintf("%.1f", float64(id.Elapsed)*norm),
			fmt.Sprintf("%.1f", float64(id.Elapsed)*norm*id.Breakdown.Busy),
			fmt.Sprintf("%.1f", float64(id.Elapsed)*norm*id.Breakdown.Read),
			fmt.Sprintf("%.1f", float64(id.Elapsed)*norm*id.Breakdown.Write),
			fmt.Sprintf("%.1f", float64(id.Elapsed)*norm*id.Breakdown.Sync),
			fmt.Sprintf("+%.1f%%", Slowdown(r.Flash, r.Ideal)),
		})
	}
	b.WriteString(table(hdr, out))
	return b.String()
}

// renderTable41 renders the Table 4.1/4.2 statistics block.
func renderTable41(title string, rows []appRow) (string, error) {
	latF, err := MeasuredLatencies(arch.KindFLASH)
	if err != nil {
		return "", err
	}
	latI, err := MeasuredLatencies(arch.KindIdeal)
	if err != nil {
		return "", err
	}
	hdr := []string{"Metric"}
	for _, r := range rows {
		hdr = append(hdr, r.App)
	}
	get := func(f func(r appRow) string) []string {
		out := []string{}
		for _, r := range rows {
			out = append(out, f(r))
		}
		return out
	}
	out := [][]string{
		append([]string{"Miss rate"}, get(func(r appRow) string { return pct2(r.Flash.Report.MissRate) })...),
		append([]string{"Local Clean"}, get(func(r appRow) string { return pct(r.Flash.Report.ReadClass[arch.MissLocalClean]) })...),
		append([]string{"Local Dirty Remote"}, get(func(r appRow) string { return pct(r.Flash.Report.ReadClass[arch.MissLocalDirty]) })...),
		append([]string{"Remote Clean"}, get(func(r appRow) string { return pct(r.Flash.Report.ReadClass[arch.MissRemoteClean]) })...),
		append([]string{"Remote Dirty at Home"}, get(func(r appRow) string { return pct(r.Flash.Report.ReadClass[arch.MissRemoteDirtyHome]) })...),
		append([]string{"Remote Dirty Remote"}, get(func(r appRow) string { return pct(r.Flash.Report.ReadClass[arch.MissRemoteDirty3rd]) })...),
		append([]string{"FLASH CRMT"}, get(func(r appRow) string { return fmt.Sprintf("%.0f", r.Flash.Report.CRMT(latF)) })...),
		append([]string{"Ideal CRMT"}, get(func(r appRow) string { return fmt.Sprintf("%.0f", r.Ideal.Report.CRMT(latI)) })...),
		append([]string{"Avg Mem Occupancy"}, get(func(r appRow) string { return pct(r.Flash.Report.AvgMemOcc) })...),
		append([]string{"Avg PP Occupancy"}, get(func(r appRow) string { return pct(r.Flash.Report.AvgPPOcc) })...),
		append([]string{"Max PP Occupancy"}, get(func(r appRow) string { return pct(r.Flash.Report.MaxPPOcc) })...),
	}
	return title + "\n" + table(hdr, out), nil
}

// Fig41 regenerates Figure 4.1 and Table 4.1 (1 MB caches).
func Fig41(o Options) (string, error) {
	rows, err := runSuite(o, apps.Names, 1<<20, 0)
	if err != nil {
		return "", err
	}
	s := renderFig("Figure 4.1: execution times, FLASH vs ideal, 1 MB caches", rows)
	t, err := renderTable41("Table 4.1: read miss distributions and CRMT, 1 MB caches", rows)
	if err != nil {
		return "", err
	}
	return s + "\n" + t, nil
}

// Fig42 regenerates Figure 4.2 and the 64 KB half of Table 4.2.
func Fig42(o Options) (string, error) {
	names := []string{"barnes", "fft", "mp3d", "ocean", "radix"}
	rows, err := runSuite(o, names, 64<<10, 0)
	if err != nil {
		return "", err
	}
	s := renderFig("Figure 4.2: execution times, FLASH vs ideal, 64 KB caches", rows)
	t, err := renderTable41("Table 4.2 (64 KB columns)", rows)
	if err != nil {
		return "", err
	}
	return s + "\n" + t, nil
}

// Fig43 regenerates Figure 4.3 and the 4 KB half of Table 4.2 (16 KB for
// Ocean, per the paper's footnote; Barnes is omitted as in the paper).
func Fig43(o Options) (string, error) {
	names := []string{"fft", "mp3d", "ocean", "radix"}
	rows, err := runSuite(o, names, 4<<10, 0)
	if err != nil {
		return "", err
	}
	s := renderFig("Figure 4.3: execution times, FLASH vs ideal, 4 KB caches", rows)
	t, err := renderTable41("Table 4.2 (4 KB columns)", rows)
	if err != nil {
		return "", err
	}
	return s + "\n" + t, nil
}

// Sec43 reproduces the Section 4.3 occupancy experiments: FFT with all
// memory on node 0 (high PP occupancy AND high memory occupancy at the hot
// node -> small slowdown), and the OS workload without round-robin paging
// (the original IRIX port: high PP occupancy, low memory occupancy -> large
// slowdown).
func Sec43(o Options) (string, error) {
	var b strings.Builder
	b.WriteString("Section 4.3: PP occupancy effects (hot-spotting)\n\n")

	// FFT, 4 KB caches, all pages from node 0.
	cfg := o.baseConfig(16)
	cfg.CacheSize = 4 << 10
	cfg.Placement = arch.PlaceNodeZero
	f, i, err := Pair("fft", cfg, o.paramsFor("fft", 16), o.Verify)
	if err != nil {
		return "", err
	}
	hot := f.Machine.Nodes[0]
	b.WriteString(fmt.Sprintf("FFT (4 KB caches, all memory on node 0):\n"))
	b.WriteString(fmt.Sprintf("  node-0 PP occupancy  %.1f%%   (paper: 81.6%%)\n",
		100*hot.Magic.PPOcc.Fraction(f.Machine.Elapsed)))
	b.WriteString(fmt.Sprintf("  node-0 mem occupancy %.1f%%   (paper: 67.7%%)\n",
		100*hot.Mem.Occupancy(f.Machine.Elapsed)))
	b.WriteString(fmt.Sprintf("  FLASH vs ideal       +%.1f%%  (paper: +2.6%%)\n\n", Slowdown(f, i)))

	// OS workload: round-robin (tuned) vs node-zero (original IRIX port).
	for _, pl := range []arch.Placement{arch.PlaceRoundRobin, arch.PlaceNodeZero} {
		cfg := o.baseConfig(8)
		cfg.Placement = pl
		f, i, err := Pair("os", cfg, o.paramsFor("os", 8), o.Verify)
		if err != nil {
			return "", err
		}
		maxPP, maxMem := 0.0, 0.0
		for _, n := range f.Machine.Nodes {
			if v := n.Magic.PPOcc.Fraction(f.Machine.Elapsed); v > maxPP {
				maxPP = v
			}
			if v := n.Mem.Occupancy(f.Machine.Elapsed); v > maxMem {
				maxMem = v
			}
		}
		b.WriteString(fmt.Sprintf("OS workload, %v pages:\n", pl))
		b.WriteString(fmt.Sprintf("  max PP occupancy  %.1f%%\n", 100*maxPP))
		b.WriteString(fmt.Sprintf("  max mem occupancy %.1f%%\n", 100*maxMem))
		b.WriteString(fmt.Sprintf("  FLASH vs ideal    +%.1f%%\n", Slowdown(f, i)))
	}
	b.WriteString("(paper: original port had 81% max PP occupancy vs 33% memory and a 29% slowdown)\n")
	return b.String(), nil
}

// Sec45 reproduces the Section 4.5 scaling experiment: 64 processors with
// the 16-processor problem sizes.
func Sec45(o Options) (string, error) {
	names := []string{"fft", "lu", "ocean"}
	paper := map[string]string{"fft": "17%", "lu": "0.7%", "ocean": "12%"}
	var b strings.Builder
	b.WriteString("Section 4.5: 64-processor runs at 16-processor problem sizes\n")
	rows := [][]string{}
	res, err := parallelMap(o.workers(64), names, func(name string) (appRow, error) {
		cfg := o.baseConfig(64)
		cfg.MemBytesPerNode = 2 << 20 // keep the 64-node footprint sane
		f, i, err := Pair(name, cfg, o.paramsFor(name, 64), o.Verify)
		if err != nil {
			return appRow{}, err
		}
		return appRow{App: name, Flash: f, Ideal: i}, nil
	})
	if err != nil {
		return "", err
	}
	for _, r := range res {
		rows = append(rows, []string{r.App,
			fmt.Sprintf("+%.1f%%", Slowdown(r.Flash, r.Ideal)),
			"(" + paper[r.App] + ")"})
	}
	b.WriteString(table([]string{"App", "FLASH vs ideal", "paper"}, rows))
	return b.String(), nil
}
