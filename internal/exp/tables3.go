package exp

import (
	"fmt"
	"sort"
	"strings"

	"flashsim/internal/arch"
	"flashsim/internal/core"
	"flashsim/internal/cpu"
	"flashsim/internal/sim"
)

// paperLat33 holds the paper's Table 3.3 for reference columns.
var paperLat33 = map[string][3]int{
	"Local read miss, clean in local memory": {24, 27, 11},
	"Local read miss, dirty in remote cache": {100, 143, 53},
	"Remote read miss, clean in home memory": {92, 111, 16},
	"Remote read miss, dirty in home cache":  {100, 145, 53},
	"Remote read miss, dirty in 3rd node":    {136, 191, 61},
}

// Table33 measures the no-contention read miss latencies and FLASH PP
// occupancies of Table 3.3 on both machines.
func Table33() (string, error) {
	cfg := arch.DefaultConfig()
	cfg.MemBytesPerNode = 1 << 20
	rows := [][]string{}
	var flashLat, idealLat [arch.NumMissClasses]sim.Cycle
	for _, sc := range core.MissScenarios(&cfg) {
		ci := cfg
		ci.Kind = arch.KindIdeal
		li, _, err := core.ProbeMiss(ci, sc)
		if err != nil {
			return "", fmt.Errorf("ideal %s: %w", sc.Name, err)
		}
		cf := cfg
		cf.Kind = arch.KindFLASH
		lf, occ, err := core.ProbeMiss(cf, sc)
		if err != nil {
			return "", fmt.Errorf("flash %s: %w", sc.Name, err)
		}
		idealLat[sc.Class] = li
		flashLat[sc.Class] = lf
		p := paperLat33[sc.Name]
		rows = append(rows, []string{
			sc.Name,
			fmt.Sprint(li), fmt.Sprintf("(%d)", p[0]),
			fmt.Sprint(lf), fmt.Sprintf("(%d)", p[1]),
			fmt.Sprint(occ), fmt.Sprintf("(%d)", p[2]),
		})
	}
	s := "Table 3.3: memory latencies and PP occupancies, no contention, in cycles\n" +
		"(parenthesized values are the paper's)\n" +
		table([]string{"Operation", "Ideal", "", "FLASH", "", "PP occ", ""}, rows)
	return s, nil
}

// MeasuredLatencies probes the five no-contention miss latencies for CRMT
// computation (memoized).
func MeasuredLatencies(kind arch.MachineKind) ([arch.NumMissClasses]sim.Cycle, error) {
	latMu.Lock()
	defer latMu.Unlock()
	if v, ok := latCache[kind]; ok {
		return v, nil
	}
	cfg := arch.DefaultConfig()
	cfg.MemBytesPerNode = 1 << 20
	cfg.Kind = kind
	var out [arch.NumMissClasses]sim.Cycle
	for _, sc := range core.MissScenarios(&cfg) {
		l, _, err := core.ProbeMiss(cfg, sc)
		if err != nil {
			return out, err
		}
		out[sc.Class] = l
	}
	latCache[kind] = out
	return out, nil
}

var (
	latMu    chanMutex
	latCache = map[arch.MachineKind][arch.NumMissClasses]sim.Cycle{}
)

// chanMutex is a tiny mutex (avoids importing sync just for this).
type chanMutex struct{ ch chan struct{} }

func (m *chanMutex) Lock() {
	if m.ch == nil {
		m.ch = make(chan struct{}, 1)
	}
	m.ch <- struct{}{}
}
func (m *chanMutex) Unlock() { <-m.ch }

// Table34 reports mean per-handler PP occupancies, gathered from a mixed
// protocol workout (Table 3.4's decomposition).
func Table34() (string, error) {
	cfg := arch.DefaultConfig()
	cfg.MemBytesPerNode = 1 << 20
	m, err := core.New(cfg)
	if err != nil {
		return "", err
	}
	a := cfg.NodeBase(0) + 4*arch.PageSize
	b := cfg.NodeBase(1) + 4*arch.PageSize
	srcs := make([]cpu.RefSource, cfg.Nodes)
	for i := range srcs {
		srcs[i] = &core.ScriptSource{}
	}
	// A scripted medley: local and remote reads and writes, upgrades with
	// invalidations, 3-hop transfers, writebacks via small-cache... use
	// spaced busy periods so each transaction runs contention-free.
	mk := func(refs ...cpu.Ref) *core.ScriptSource { return &core.ScriptSource{Refs: refs} }
	srcs[2] = mk(
		cpu.Ref{Kind: arch.RefWrite, Addr: a, Busy: 4},
		cpu.Ref{Kind: arch.RefRead, Addr: b, Busy: 60000},
	)
	srcs[1] = mk(
		cpu.Ref{Kind: arch.RefRead, Addr: a, Busy: 8000},
		cpu.Ref{Kind: arch.RefWrite, Addr: a, Busy: 8000},
		cpu.Ref{Kind: arch.RefWrite, Addr: b, Busy: 8000},
	)
	srcs[0] = mk(
		cpu.Ref{Kind: arch.RefRead, Addr: a, Busy: 40000},
		cpu.Ref{Kind: arch.RefRead, Addr: b, Busy: 40000},
	)
	if err := m.Run(srcs, 10_000_000); err != nil {
		return "", err
	}
	agg := map[string][2]uint64{}
	for _, n := range m.Nodes {
		counts := n.Magic.HandlerCounts()
		for h, c := range n.Magic.HandlerCycles() {
			v := agg[h]
			v[0] += uint64(c)
			v[1] += counts[h]
			agg[h] = v
		}
	}
	names := make([]string, 0, len(agg))
	for h := range agg {
		names = append(names, h)
	}
	sort.Strings(names)
	rows := [][]string{}
	for _, h := range names {
		v := agg[h]
		rows = append(rows, []string{h, fmt.Sprint(v[1]), fmt.Sprintf("%.1f", float64(v[0])/float64(v[1]))})
	}
	var bld strings.Builder
	bld.WriteString("Table 3.4: PP occupancies per handler (mean cycles per invocation)\n")
	bld.WriteString("(paper's composites: read miss 11, write miss 14+10..15/inval, fwd 3/18,\n")
	bld.WriteString(" cache retrieve 38, reply 2, local WB 10, remote WB 8, hints 7/17+)\n")
	bld.WriteString(table([]string{"Handler", "Count", "Mean cycles"}, rows))
	return bld.String(), nil
}
