package exp

import (
	"encoding/json"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"flashsim/internal/apps"
	"flashsim/internal/arch"
	"flashsim/internal/workload"
)

// trimmedGrid shrinks the sweep axes for test speed and restores them.
func trimmedGrid(t *testing.T) {
	t.Helper()
	mdc, div, qcap, proto, transit := exploreMDC, explorePPDiv, exploreQCap, exploreProto, exploreTransit
	exploreMDC = []int{16 << 10}
	explorePPDiv = []int{1, 2}
	exploreQCap = []int{16}
	exploreProto = []arch.Protocol{arch.ProtoDynPtr}
	exploreTransit = []int{22}
	t.Cleanup(func() {
		exploreMDC, explorePPDiv, exploreQCap, exploreProto, exploreTransit = mdc, div, qcap, proto, transit
	})
}

// TestExploreWarmMatchesCold requires the warm (pooled + snapshot-forked +
// cached) sweep to emit byte-identical results to the naive cold sweep,
// and a second warm sweep (all cache hits) to reproduce them again.
func TestExploreWarmMatchesCold(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	trimmedGrid(t)
	o := ExploreOptions{App: "fft", Verify: true}

	cold, err := Explore(o)
	if err != nil {
		t.Fatalf("cold: %v", err)
	}
	o.Warm = true
	o.CacheDir = t.TempDir()
	warm1, err := Explore(o)
	if err != nil {
		t.Fatalf("warm: %v", err)
	}
	warm2, err := Explore(o)
	if err != nil {
		t.Fatalf("warm rerun: %v", err)
	}

	enc := func(r *ExploreResult) string {
		buf, err := json.Marshal(r)
		if err != nil {
			t.Fatal(err)
		}
		return string(buf)
	}
	if enc(cold) != enc(warm1) {
		t.Errorf("warm sweep differs from cold sweep:\ncold: %s\nwarm: %s", enc(cold), enc(warm1))
	}
	if enc(warm1) != enc(warm2) {
		t.Errorf("cached sweep differs from populating sweep:\nfirst: %s\nsecond: %s", enc(warm1), enc(warm2))
	}

	// Host-axis duplicates must be cache hits: with 2 points per host
	// variant (3 variants), the populating sweep simulates 2 points and
	// the rerun simulates none.
	if warm1.CacheMisses != 3 { // 2 FLASH points + 1 ideal baseline
		t.Errorf("populating sweep missed %d times, want 3", warm1.CacheMisses)
	}
	if warm2.CacheMisses != 0 {
		t.Errorf("cached rerun missed %d times, want 0", warm2.CacheMisses)
	}
	if len(warm1.Points) != 6 {
		t.Errorf("trimmed grid produced %d points, want 6", len(warm1.Points))
	}
	for _, p := range warm1.Points {
		if p.IdealElapsed == 0 || p.Elapsed == 0 {
			t.Errorf("point %+v has zero cycles", p)
		}
	}
}

// TestExploreRejectsUnknownApp pins the fail-fast app validation.
func TestExploreRejectsUnknownApp(t *testing.T) {
	if _, err := Explore(ExploreOptions{App: "nosuch"}); err == nil {
		t.Fatal("unknown app accepted")
	}
	if err := apps.ValidateNames([]string{"fft", "bogus"}); err == nil {
		t.Fatal("ValidateNames accepted bogus")
	}
}

// TestResultCacheRoundTrip pins the content-addressed cache: a stored
// report comes back bit-identical, a wrong key misses, and a corrupt
// entry is treated as a miss.
func TestResultCacheRoundTrip(t *testing.T) {
	dir := t.TempDir()
	c, err := NewResultCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	cfg := goldenConfig()
	key := exploreCacheKey(cfg, "fft", 256, 4, 20000)
	if _, ok := c.Get(key); ok {
		t.Fatal("empty cache hit")
	}
	r, err := RunApp("fft", cfg, apps.Params{Scale: 256}, false)
	if err != nil {
		t.Fatal(err)
	}
	rep := r.Report
	if err := c.Put(key, rep); err != nil {
		t.Fatal(err)
	}
	got, ok := c.Get(key)
	if !ok {
		t.Fatal("stored entry missed")
	}
	rep.Host = nil
	a, _ := json.Marshal(rep)
	b, _ := json.Marshal(got)
	if string(a) != string(b) {
		t.Errorf("cache round trip changed the report:\nput: %s\ngot: %s", a, b)
	}
	if _, ok := c.Get(key + "|other"); ok {
		t.Error("distinct key hit the same entry")
	}
	// Corrupt entries (e.g. a truncated write) must read as misses.
	files, _ := filepath.Glob(filepath.Join(dir, "*.json"))
	if len(files) != 1 {
		t.Fatalf("%d cache files, want 1", len(files))
	}
	if err := os.WriteFile(files[0], []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get(key); ok {
		t.Error("corrupt entry hit")
	}
}

// TestMachinePoolConcurrent exercises the pool from parallel goroutines
// running real simulations (the -race target in make verify).
func TestMachinePoolConcurrent(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	pool := NewMachinePool()
	cfg := goldenConfig()
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < 2; k++ {
				m, err := pool.Get(cfg)
				if err != nil {
					errs <- err
					return
				}
				w := workload.NewWorld(m)
				app, err := apps.Build("fft", w, apps.Params{Scale: 256})
				if err != nil {
					errs <- err
					return
				}
				if err := w.Run(app.Run, 0); err != nil {
					errs <- err
					return
				}
				if err := app.Verify(); err != nil {
					errs <- err
					return
				}
				pool.Put(m)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if pool.Hits+pool.Misses != 8 {
		t.Errorf("pool served %d gets, want 8", pool.Hits+pool.Misses)
	}
	if pool.Misses > 4 {
		t.Errorf("pool built %d machines for 4 goroutines", pool.Misses)
	}
}
