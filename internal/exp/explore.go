package exp

// The explore experiment sweeps the MAGIC design space the paper holds
// fixed — protocol processor clock, MAGIC data cache size, network queue
// depth, directory protocol, fabric latency — and maps each design point's
// flexibility cost (slowdown versus the ideal hardwired machine, Figure
// 4.1's metric) against a hardware cost proxy, marking the Pareto
// frontier. Host-side execution choices (event engine, sync scheme) ride
// along as sweep axes to exercise the full backend matrix; they change no
// simulated behavior, which is exactly what the warm path exploits.
//
// Both modes run each point as a phased simulation (prefix to a pause
// point, checkpoint-compatible quiescence, resume), so a point's Report is
// identical however it is produced:
//
//   - cold: every point builds a fresh machine, simulates prefix + resume
//     in place, and discards the machine. The naive sweep.
//   - warm: machines come from a MachinePool; each simulated point runs
//     its prefix on a pooled donor, checkpoints, snapshot-forks into a
//     second pooled machine (copy-on-write store), and resumes there; the
//     Report lands in a content-addressed ResultCache keyed by the
//     normalized simulated-behavior digest. Points that differ only in
//     host-side axes are cache hits and never simulate.
//
// Fork continuations are bit-identical to cold continuations
// (TestForkDeterminism), so cold and warm sweeps emit byte-identical
// result files — scripts/bench.sh asserts this, along with the warm
// speedup floor.

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"flashsim/internal/apps"
	"flashsim/internal/arch"
	"flashsim/internal/core"
	"flashsim/internal/stats"
	"flashsim/internal/workload"
)

// ExploreOptions configures the design-space sweep.
type ExploreOptions struct {
	// App is the application swept (any Figure 4.1 name; default fft).
	App string
	// Scale is the problem-size divisor (default: the golden-digest scale
	// for the app, keeping a full sweep to seconds).
	Scale int
	// Procs is the node count (default 4).
	Procs int
	// PrefixRefs is the per-processor reference count of the common prefix
	// (default 20000, the fork-golden pause point).
	PrefixRefs uint64
	// Warm selects the pooled, snapshot-forked, cached path; false runs
	// the naive cold sweep.
	Warm bool
	// CacheDir is the content-addressed result cache directory (warm mode
	// only; empty disables caching).
	CacheDir string
	// Verify re-checks application results on every simulated point.
	Verify bool
}

// ExplorePoint is one design point's outcome. All fields are deterministic
// functions of the configuration and the application, so result files
// compare byte-for-byte across cold/warm modes and cache hits/misses.
type ExplorePoint struct {
	Engine      string `json:"engine"`
	Sync        string `json:"sync"`
	Protocol    string `json:"protocol"`
	MDCSize     int    `json:"mdc_bytes"`
	PPClockDiv  int    `json:"pp_clock_div"`
	NetQueueCap int    `json:"net_queue_cap"`
	NetTransit  int    `json:"net_transit"`

	Elapsed      uint64  `json:"elapsed_cycles"`
	IdealElapsed uint64  `json:"ideal_cycles"`
	SlowdownPct  float64 `json:"slowdown_pct"`
	// Cost is the hardware cost proxy (see DESIGN.md §15): PP clock term
	// 2/div + MDC KiB/64 + queue cap/16 + directory term (bit-vector 1.0,
	// dynamic pointer 0.5) + fabric term 22/transit.
	Cost float64 `json:"cost"`
	// Pareto marks nondominated points: no other point has both lower-or-
	// equal slowdown and lower-or-equal cost with one strictly lower.
	Pareto bool `json:"pareto"`
	// ReportDigest fingerprints the point's full statistics report, so
	// byte-comparing result files also proves the cache returned
	// bit-identical Reports.
	ReportDigest string `json:"report_digest"`

	// CacheHit is set on points served from the result cache; excluded
	// from the result file (it differs between a populating and a
	// re-reading sweep) and reported in the run summary instead.
	CacheHit bool `json:"-"`
}

// ExploreResult is the full sweep outcome. Marshaling it produces the
// deterministic result file; the summary counters live outside it.
type ExploreResult struct {
	App        string         `json:"app"`
	Scale      int            `json:"scale"`
	Procs      int            `json:"procs"`
	PrefixRefs uint64         `json:"prefix_refs"`
	Points     []ExplorePoint `json:"points"`

	// Summary counters, not part of the deterministic result payload.
	CacheHits   int `json:"-"`
	CacheMisses int `json:"-"`
	PoolHits    int `json:"-"`
	PoolBuilds  int `json:"-"`
}

// exploreAxes defines the sweep grid. The NetTransit axis doubles as the
// engine-lookahead axis: the uniform-model transit latency is the
// conservative window both engines synchronize and flush stores on, so
// sweeping it sweeps the lookahead window (DESIGN.md §8, §15).
var (
	exploreMDC     = []int{16 << 10, 64 << 10, 256 << 10}
	explorePPDiv   = []int{1, 2}
	exploreQCap    = []int{8, 16}
	exploreProto   = []arch.Protocol{arch.ProtoDynPtr, arch.ProtoBitVector}
	exploreTransit = []int{22, 14}
	exploreHost    = []struct {
		engine arch.EngineKind
		sync   arch.EngineSync
		name   string
		sync_  string
	}{
		{arch.EngineSeq, arch.EngineSyncAuto, "seq", "-"},
		{arch.EngineSharded, arch.EngineSyncBarrier, "sharded", "barrier"},
		{arch.EngineSharded, arch.EngineSyncWatermark, "sharded", "watermark"},
	}
)

func exploreCost(p ExplorePoint) float64 {
	dir := 0.5
	if p.Protocol == arch.ProtoBitVector.String() {
		dir = 1.0
	}
	return 2.0/float64(p.PPClockDiv) +
		float64(p.MDCSize)/float64(64<<10) +
		float64(p.NetQueueCap)/16.0 +
		dir +
		22.0/float64(p.NetTransit)
}

// ResultCache is a content-addressed store of simulation reports: one JSON
// file per entry under dir, named by the SHA-256 of the normalized
// simulated-behavior key. Entries are reports with host-cost accounting
// stripped, so a hit is byte-identical to the report a fresh simulation of
// the same key produces.
type ResultCache struct{ dir string }

// NewResultCache opens (creating if needed) a cache rooted at dir; empty
// dir disables caching (every Get misses, every Put is dropped).
func NewResultCache(dir string) (*ResultCache, error) {
	if dir == "" {
		return &ResultCache{}, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &ResultCache{dir: dir}, nil
}

type cacheEntry struct {
	Key    string       `json:"key"`
	Report stats.Report `json:"report"`
}

func (c *ResultCache) path(key string) string {
	sum := sha256.Sum256([]byte(key))
	return filepath.Join(c.dir, hex.EncodeToString(sum[:])+".json")
}

// Get returns the cached report for key, if present.
func (c *ResultCache) Get(key string) (stats.Report, bool) {
	if c == nil || c.dir == "" {
		return stats.Report{}, false
	}
	buf, err := os.ReadFile(c.path(key))
	if err != nil {
		return stats.Report{}, false
	}
	var e cacheEntry
	if err := json.Unmarshal(buf, &e); err != nil || e.Key != key {
		return stats.Report{}, false
	}
	return e.Report, true
}

// Put stores a report under key. Host accounting is stripped first: the
// cache holds simulated results only, which are machine- and
// run-independent.
func (c *ResultCache) Put(key string, rep stats.Report) error {
	if c == nil || c.dir == "" {
		return nil
	}
	rep.Host = nil
	buf, err := json.MarshalIndent(cacheEntry{Key: key, Report: rep}, "", " ")
	if err != nil {
		return err
	}
	return os.WriteFile(c.path(key), append(buf, '\n'), 0o644)
}

// exploreCacheKey is the content address of one simulated point: the
// normalized simulated-behavior key (engine/sync/dispatch excluded — they
// cannot change the result) plus the workload identity and the phase
// schedule.
func exploreCacheKey(cfg arch.Config, app string, scale, procs int, prefixRefs uint64) string {
	return fmt.Sprintf("explore-v1|%s|app=%s|scale=%d|procs=%d|prefix=%d",
		core.SimKeyFor(cfg), app, scale, procs, prefixRefs)
}

func reportDigest(rep stats.Report) string {
	rep.Host = nil
	buf, err := json.Marshal(rep)
	if err != nil {
		return "unmarshalable"
	}
	sum := sha256.Sum256(buf)
	return hex.EncodeToString(sum[:8])
}

// runPhased runs app on m as a phased simulation — prefix to pauseRefs,
// then resume in place — and returns the world (for verification).
func runPhased(m *core.Machine, app string, p apps.Params, pauseRefs uint64) (*workload.World, *apps.App, error) {
	w := workload.NewWorld(m)
	a, err := apps.Build(app, w, p)
	if err != nil {
		return nil, nil, err
	}
	pre, err := w.RunPrefix(a.Run, pauseRefs, 0)
	if err != nil {
		return nil, nil, err
	}
	if err := pre.Resume(); err != nil {
		return nil, nil, err
	}
	return w, a, nil
}

// explorePointCold simulates one point the naive way: fresh machine,
// phased run, discard.
func explorePointCold(cfg arch.Config, o ExploreOptions, p apps.Params) (stats.Report, error) {
	m, err := core.New(cfg)
	if err != nil {
		return stats.Report{}, err
	}
	_, a, err := runPhased(m, o.App, p, o.PrefixRefs)
	if err != nil {
		return stats.Report{}, err
	}
	if o.Verify {
		if err := a.Verify(); err != nil {
			return stats.Report{}, err
		}
		if err := m.CheckCoherence(); err != nil {
			return stats.Report{}, err
		}
	}
	rep := stats.Collect(m)
	rep.Host = nil
	return rep, nil
}

// explorePointWarm simulates one point the warm way: prefix on a pooled
// donor, checkpoint, snapshot-fork into a second pooled machine, resume
// there, return both machines to the pool.
func explorePointWarm(cfg arch.Config, o ExploreOptions, p apps.Params, pool *MachinePool) (stats.Report, error) {
	donor, err := pool.Get(cfg)
	if err != nil {
		return stats.Report{}, err
	}
	w := workload.NewWorld(donor)
	a, err := apps.Build(o.App, w, p)
	if err != nil {
		return stats.Report{}, err
	}
	pre, err := w.RunPrefix(a.Run, o.PrefixRefs, 0)
	if err != nil {
		return stats.Report{}, err
	}
	ck, err := pre.Checkpoint()
	if err != nil {
		return stats.Report{}, err
	}
	fork, err := pool.Get(cfg)
	if err != nil {
		return stats.Report{}, err
	}
	w2, err := w.Fork(ck, fork, a.Run, 0)
	if err != nil {
		return stats.Report{}, err
	}
	if o.Verify {
		w.M = fork // Verify closures read through the build-time world
		if err := a.Verify(); err != nil {
			return stats.Report{}, err
		}
		w.M = donor
		if err := fork.CheckCoherence(); err != nil {
			return stats.Report{}, err
		}
	}
	rep := stats.Collect(w2.M)
	rep.Host = nil
	pool.Put(donor)
	pool.Put(fork)
	return rep, nil
}

// Explore runs the design-space sweep and returns Pareto-annotated points
// in deterministic grid order.
func Explore(o ExploreOptions) (*ExploreResult, error) {
	if o.App == "" {
		o.App = "fft"
	}
	if _, ok := apps.Builders[o.App]; !ok {
		return nil, fmt.Errorf("explore: unknown application %q (valid: %s)", o.App, apps.ValidNames())
	}
	if o.Procs <= 0 {
		o.Procs = 4
	}
	if o.Scale <= 0 {
		o.Scale = goldenScaleFor(o.App)
	}
	if o.PrefixRefs == 0 {
		o.PrefixRefs = 20000
	}
	p := apps.Params{Procs: o.Procs, Scale: o.Scale}

	var pool *MachinePool
	var cache *ResultCache
	var err error
	if o.Warm {
		pool = NewMachinePool()
		cache, err = NewResultCache(o.CacheDir)
		if err != nil {
			return nil, err
		}
	}

	res := &ExploreResult{App: o.App, Scale: o.Scale, Procs: o.Procs, PrefixRefs: o.PrefixRefs}

	// The ideal baseline: the hardwired machine's timing ignores every
	// swept MAGIC knob, so one (unphased) run serves the whole sweep.
	idealCfg := arch.DefaultConfig()
	idealCfg.Kind = arch.KindIdeal
	idealCfg.Nodes = o.Procs
	idealCfg.MemBytesPerNode = 4 << 20
	var idealRep stats.Report
	idealKey := exploreCacheKey(idealCfg, o.App, o.Scale, o.Procs, 0)
	if rep, ok := cache.Get(idealKey); ok {
		idealRep = rep
		res.CacheHits++
	} else {
		var im *core.Machine
		if pool != nil {
			im, err = pool.Get(idealCfg)
		} else {
			im, err = core.New(idealCfg)
		}
		if err != nil {
			return nil, err
		}
		iw := workload.NewWorld(im)
		ia, err := apps.Build(o.App, iw, p)
		if err != nil {
			return nil, err
		}
		if err := iw.Run(ia.Run, 0); err != nil {
			return nil, err
		}
		if o.Verify {
			if err := ia.Verify(); err != nil {
				return nil, err
			}
		}
		idealRep = stats.Collect(im)
		idealRep.Host = nil
		if pool != nil {
			pool.Put(im)
		}
		if cache != nil {
			res.CacheMisses++
			if err := cache.Put(idealKey, idealRep); err != nil {
				return nil, err
			}
		}
	}

	for _, proto := range exploreProto {
		for _, mdc := range exploreMDC {
			for _, div := range explorePPDiv {
				for _, qcap := range exploreQCap {
					for _, transit := range exploreTransit {
						for _, host := range exploreHost {
							cfg := arch.DefaultConfig()
							cfg.Kind = arch.KindFLASH
							cfg.Nodes = o.Procs
							cfg.MemBytesPerNode = 4 << 20
							cfg.Protocol = proto
							cfg.MDCSize = mdc
							cfg.PPClockDiv = div
							cfg.NetQueueCap = qcap
							cfg.Timing.NetTransit = uint32(transit)
							cfg.Engine = host.engine
							cfg.EngineSync = host.sync

							pt := ExplorePoint{
								Engine:      host.name,
								Sync:        host.sync_,
								Protocol:    proto.String(),
								MDCSize:     mdc,
								PPClockDiv:  div,
								NetQueueCap: qcap,
								NetTransit:  transit,
							}
							key := exploreCacheKey(cfg, o.App, o.Scale, o.Procs, o.PrefixRefs)
							var rep stats.Report
							if cached, ok := cache.Get(key); ok {
								rep = cached
								pt.CacheHit = true
								res.CacheHits++
							} else {
								if o.Warm {
									rep, err = explorePointWarm(cfg, o, p, pool)
								} else {
									rep, err = explorePointCold(cfg, o, p)
								}
								if err != nil {
									return nil, fmt.Errorf("point %s/%s proto=%s mdc=%d div=%d qcap=%d net=%d: %w",
										pt.Engine, pt.Sync, pt.Protocol, mdc, div, qcap, transit, err)
								}
								if cache != nil {
									res.CacheMisses++
									if err := cache.Put(key, rep); err != nil {
										return nil, err
									}
								}
							}
							pt.Elapsed = uint64(rep.Elapsed)
							pt.IdealElapsed = uint64(idealRep.Elapsed)
							pt.SlowdownPct = 100 * (float64(pt.Elapsed)/float64(pt.IdealElapsed) - 1)
							pt.Cost = exploreCost(pt)
							pt.ReportDigest = reportDigest(rep)
							res.Points = append(res.Points, pt)
						}
					}
				}
			}
		}
	}
	markPareto(res.Points)
	if pool != nil {
		res.PoolHits, res.PoolBuilds = pool.Hits, pool.Misses
	}
	return res, nil
}

// markPareto flags the nondominated points under (SlowdownPct, Cost)
// minimization. Points with identical coordinates do not dominate each
// other, so host-axis duplicates of a frontier point all carry the flag.
func markPareto(pts []ExplorePoint) {
	for i := range pts {
		dominated := false
		for j := range pts {
			if i == j {
				continue
			}
			if pts[j].SlowdownPct <= pts[i].SlowdownPct && pts[j].Cost <= pts[i].Cost &&
				(pts[j].SlowdownPct < pts[i].SlowdownPct || pts[j].Cost < pts[i].Cost) {
				dominated = true
				break
			}
		}
		pts[i].Pareto = !dominated
	}
}

// goldenScaleFor returns the per-app default problem divisor (the golden
// suite's scales — small enough for second-scale sweeps).
func goldenScaleFor(app string) int {
	scales := map[string]int{
		"fft": 256, "lu": 8, "radix": 64, "ocean": 8,
		"barnes": 32, "mp3d": 50, "os": 16,
	}
	if s, ok := scales[app]; ok {
		return s
	}
	return 256
}

// Table renders the sweep as the paper-style aligned table: frontier
// points first (marked *), then the rest, both in increasing cost order.
func (r *ExploreResult) Table() string {
	idx := make([]int, len(r.Points))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		pa, pb := r.Points[idx[a]], r.Points[idx[b]]
		if pa.Pareto != pb.Pareto {
			return pa.Pareto
		}
		if pa.Cost != pb.Cost {
			return pa.Cost < pb.Cost
		}
		return pa.SlowdownPct < pb.SlowdownPct
	})
	rows := make([][]string, 0, len(idx))
	for _, i := range idx {
		p := r.Points[i]
		mark := ""
		if p.Pareto {
			mark = "*"
		}
		rows = append(rows, []string{
			mark, p.Engine, p.Sync, p.Protocol,
			fmt.Sprintf("%dK", p.MDCSize>>10),
			fmt.Sprintf("1/%d", p.PPClockDiv),
			fmt.Sprintf("%d", p.NetQueueCap),
			fmt.Sprintf("%d", p.NetTransit),
			fmt.Sprintf("%.2f", p.Cost),
			fmt.Sprintf("%.1f%%", p.SlowdownPct),
		})
	}
	return table([]string{"", "engine", "sync", "proto", "mdc", "pp-clk", "qcap", "net", "cost", "slowdown"}, rows)
}
