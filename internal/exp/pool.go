package exp

import (
	"sync"

	"flashsim/internal/arch"
	"flashsim/internal/core"
)

// MachinePool recycles machines across runs of a sweep. Machine
// construction pays for protocol assembly, store and component allocation,
// and engine setup on every core.New; a sweep that runs hundreds of
// simulations over a handful of distinct configurations gets the same
// machines back from the pool, wiped by core.Machine.Reset (a property
// TestMachineResetDeterminism pins: a recycled machine is bit-identical to
// a fresh one). Machines are pooled under core.PoolKeyFor, so host-side
// execution choices (engine, sync scheme, PP dispatch) never mix.
type MachinePool struct {
	mu   sync.Mutex
	idle map[string][]*core.Machine

	// Hits and Misses count Get calls served from the pool vs. built
	// fresh; read them after the sweep (not synchronized with Get).
	Hits, Misses int
}

// NewMachinePool returns an empty pool.
func NewMachinePool() *MachinePool {
	return &MachinePool{idle: map[string][]*core.Machine{}}
}

// Get returns a machine for cfg: a recycled one when available, freshly
// built otherwise. The caller owns it until Put.
func (p *MachinePool) Get(cfg arch.Config) (*core.Machine, error) {
	key := core.PoolKeyFor(cfg)
	p.mu.Lock()
	if list := p.idle[key]; len(list) > 0 {
		m := list[len(list)-1]
		p.idle[key] = list[:len(list)-1]
		p.Hits++
		p.mu.Unlock()
		return m, nil
	}
	p.Misses++
	p.mu.Unlock()
	return core.New(cfg)
}

// Put wipes m and returns it to the pool. m may be in any state — mid-run
// machines (a snapshot donor parked at its pause point) are fine; Reset
// restores the freshly constructed state.
func (p *MachinePool) Put(m *core.Machine) {
	m.Reset()
	key := m.PoolKey()
	p.mu.Lock()
	p.idle[key] = append(p.idle[key], m)
	p.mu.Unlock()
}
