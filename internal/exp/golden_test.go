package exp

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"flashsim/internal/apps"
	"flashsim/internal/arch"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata/golden_digest.json from the current tree")

// goldenDigest is one application's determinism fingerprint: the parallel
// execution time and the total number of simulation events dispatched. Any
// change to simulated behavior — event ordering, reference timing, protocol
// scheduling — moves at least one of the two.
type goldenDigest struct {
	Elapsed  uint64 `json:"elapsed_cycles"`
	Executed uint64 `json:"events_executed"`
}

// goldenConfig is the fixed small machine the digests are recorded on: 4
// FLASH nodes, default caches, problem sizes matching the apps package's
// determinism suite (small enough to keep the whole sweep to seconds).
func goldenConfig() arch.Config {
	cfg := arch.DefaultConfig()
	cfg.Nodes = 4
	cfg.MemBytesPerNode = 4 << 20
	return cfg
}

var goldenScales = map[string]int{
	"fft": 256, "lu": 8, "radix": 64, "ocean": 8,
	"barnes": 32, "mp3d": 50, "os": 16,
}

// TestGoldenDigest locks down per-run cycle counts and event counts against
// values recorded from the pre-optimization tree. Performance work on the
// event queue, the handshake path, or experiment parallelism must leave
// these bit-identical; regenerate with -update-golden only for intentional
// model changes.
func TestGoldenDigest(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	path := filepath.Join("testdata", "golden_digest.json")
	got := map[string]goldenDigest{}
	for _, name := range apps.Names {
		cfg := goldenConfig()
		if name == "os" {
			cfg.Placement = arch.PlaceRoundRobin
		}
		r, err := RunApp(name, cfg, apps.Params{Scale: goldenScales[name]}, true)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		got[name] = goldenDigest{
			Elapsed:  uint64(r.Report.Elapsed),
			Executed: r.Machine.Eng.ExecutedEvents(),
		}
	}

	if *updateGolden {
		buf, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", path)
		return
	}

	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden digests (run with -update-golden to record): %v", err)
	}
	want := map[string]goldenDigest{}
	if err := json.Unmarshal(buf, &want); err != nil {
		t.Fatal(err)
	}
	for _, name := range apps.Names {
		w, ok := want[name]
		if !ok {
			t.Errorf("%s: no golden digest recorded", name)
			continue
		}
		if got[name] != w {
			t.Errorf("%s: digest %+v, want %+v (simulated behavior changed)", name, got[name], w)
		}
	}
}

// TestGoldenBackendsAgree runs whole applications under both PP dispatch
// engines and requires identical digests: the compiled backend must be a
// pure host-side optimization with no simulated-behavior fingerprint. The
// per-pair differential torture test lives in ppsim; this is the end-to-end
// closure over full protocol runs.
func TestGoldenBackendsAgree(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	for _, name := range []string{"fft", "lu", "radix"} {
		digests := map[arch.PPDispatch]goldenDigest{}
		for _, d := range []arch.PPDispatch{arch.PPDispatchInterp, arch.PPDispatchCompiled} {
			cfg := goldenConfig()
			cfg.PPDispatch = d
			r, err := RunApp(name, cfg, apps.Params{Scale: goldenScales[name]}, true)
			if err != nil {
				t.Fatalf("%s (%s): %v", name, d, err)
			}
			digests[d] = goldenDigest{
				Elapsed:  uint64(r.Report.Elapsed),
				Executed: r.Machine.Eng.ExecutedEvents(),
			}
		}
		if digests[arch.PPDispatchInterp] != digests[arch.PPDispatchCompiled] {
			t.Errorf("%s: interp %+v != compiled %+v", name,
				digests[arch.PPDispatchInterp], digests[arch.PPDispatchCompiled])
		}
	}
}

// TestGoldenEnginesAgree runs whole applications under both event-engine
// backends and requires identical digests: the conservative parallel engine
// must be a pure host-side optimization with no simulated-behavior
// fingerprint. The per-event differential torture test lives in sim; this is
// the end-to-end closure over full protocol runs.
func TestGoldenEnginesAgree(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	for _, name := range []string{"fft", "lu", "radix"} {
		digests := map[arch.EngineKind]goldenDigest{}
		for _, e := range []arch.EngineKind{arch.EngineSeq, arch.EngineSharded} {
			cfg := goldenConfig()
			cfg.Engine = e
			r, err := RunApp(name, cfg, apps.Params{Scale: goldenScales[name]}, true)
			if err != nil {
				t.Fatalf("%s (%s): %v", name, e, err)
			}
			digests[e] = goldenDigest{
				Elapsed:  uint64(r.Report.Elapsed),
				Executed: r.Machine.Eng.ExecutedEvents(),
			}
		}
		if digests[arch.EngineSeq] != digests[arch.EngineSharded] {
			t.Errorf("%s: seq %+v != sharded %+v", name,
				digests[arch.EngineSeq], digests[arch.EngineSharded])
		}
	}
}
