package exp

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"flashsim/internal/apps"
	"flashsim/internal/arch"
)

// sampledDigest fingerprints a sampled run: the raw behavioral digest plus
// the extrapolation outputs. Two runs with the same SampleSpec must agree on
// every field.
type sampledDigest struct {
	goldenDigest
	Est uint64
	CI  uint64
	FF  uint64
}

func sampledDigestOf(r *Run) sampledDigest {
	d := sampledDigest{goldenDigest: goldenDigest{
		Elapsed:  uint64(r.Report.Elapsed),
		Executed: r.Machine.Eng.ExecutedEvents(),
	}}
	if s := r.Report.Sampled; s != nil {
		d.Est, d.CI, d.FF = s.ElapsedEst, s.ElapsedCI, s.FFWorkRefs
	}
	return d
}

// TestSampledDetailFraction1 locks the sampling off-switch down: a machine
// configured with a Stride-0 SampleSpec (detailed fraction 1.0) must be
// bit-identical to the recorded golden digests on every backend combination
// — the sampling plumbing may cost nothing and change nothing until a
// positive Stride turns it on.
func TestSampledDetailFraction1(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	want := readGoldenDigests(t)
	for _, eng := range []arch.EngineKind{arch.EngineSeq, arch.EngineSharded} {
		for _, pp := range []arch.PPDispatch{arch.PPDispatchInterp, arch.PPDispatchCompiled} {
			for _, name := range []string{"fft", "lu", "radix"} {
				cfg := goldenConfig()
				cfg.Engine = eng
				cfg.PPDispatch = pp
				// Stride 0 with a non-zero field: sampling force-off (also
				// shields the run from any FLASHSIM_SAMPLE in the test env).
				cfg.Sample = arch.SampleSpec{Detail: 1}
				r, err := RunApp(name, cfg, apps.Params{Scale: goldenScales[name]}, true)
				if err != nil {
					t.Fatalf("%s (%v/%v): %v", name, eng, pp, err)
				}
				got := goldenDigest{
					Elapsed:  uint64(r.Report.Elapsed),
					Executed: r.Machine.Eng.ExecutedEvents(),
				}
				if got != want[name] {
					t.Errorf("%s (%v/%v): digest %+v, want golden %+v", name, eng, pp, got, want[name])
				}
				if r.Report.Sampled != nil {
					t.Errorf("%s (%v/%v): detailed-fraction-1.0 run grew a Sampled report section", name, eng, pp)
				}
			}
		}
	}
}

// TestSampledRepeatable runs every application twice under the same sampled
// schedule and requires bit-identical digests and extrapolations: sampling
// is an intentional timing-model change, but a deterministic one. Verify
// stays on, so this doubles as the functional-correctness closure for the
// fast-forward path (architectural state, memory values, coherence).
func TestSampledRepeatable(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	spec := arch.SampleSpec{Detail: 500, Stride: 3500, Warmup: 2000}
	for _, name := range apps.Names {
		var d [2]sampledDigest
		for i := range d {
			cfg := goldenConfig()
			if name == "os" {
				cfg.Placement = arch.PlaceRoundRobin
			}
			cfg.Sample = spec
			r, err := RunApp(name, cfg, apps.Params{Scale: goldenScales[name]}, true)
			if err != nil {
				t.Fatalf("%s run %d: %v", name, i, err)
			}
			if r.Report.Sampled == nil {
				t.Fatalf("%s run %d: sampled run has no extrapolation section", name, i)
			}
			d[i] = sampledDigestOf(r)
		}
		if d[0] != d[1] {
			t.Errorf("%s: sampled runs differ: %+v vs %+v", name, d[0], d[1])
		}
	}
}

// TestSampledEnvResolution checks the FLASHSIM_SAMPLE process default: a
// zero-valued Config.Sample picks up the environment schedule, and an
// explicit force-off spec wins over it.
func TestSampledEnvResolution(t *testing.T) {
	t.Setenv("FLASHSIM_SAMPLE", "500/3500/2000")
	cfg := goldenConfig()
	r, err := RunApp("fft", cfg, apps.Params{Scale: goldenScales["fft"]}, true)
	if err != nil {
		t.Fatal(err)
	}
	if r.Report.Sampled == nil {
		t.Error("FLASHSIM_SAMPLE set but the run has no extrapolation section")
	}

	cfg = goldenConfig()
	cfg.Sample = arch.SampleSpec{Detail: 1} // explicit off beats the env
	r, err = RunApp("fft", cfg, apps.Params{Scale: goldenScales["fft"]}, true)
	if err != nil {
		t.Fatal(err)
	}
	if r.Report.Sampled != nil {
		t.Error("explicit Stride-0 spec did not override FLASHSIM_SAMPLE")
	}
}

// TestSampledSmoke leaves Config.Sample zero so the FLASHSIM_SAMPLE process
// default (if any) drives the schedule, and requires the runs to build,
// finish, verify their results, and pass the coherence audit. `make verify`
// runs this with FLASHSIM_SAMPLE=default as the sampled-mode smoke pass;
// without the variable it degenerates to a plain detailed run.
func TestSampledSmoke(t *testing.T) {
	for _, name := range []string{"fft", "radix"} {
		cfg := goldenConfig()
		r, err := RunApp(name, cfg, apps.Params{Scale: goldenScales[name]}, true)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if os.Getenv("FLASHSIM_SAMPLE") == "default" && r.Report.Sampled == nil {
			t.Errorf("%s: FLASHSIM_SAMPLE=default but no extrapolation section", name)
		}
	}
}

// readGoldenDigests loads testdata/golden_digest.json (shared with
// TestGoldenDigest).
func readGoldenDigests(t *testing.T) map[string]goldenDigest {
	t.Helper()
	buf, err := os.ReadFile(filepath.Join("testdata", "golden_digest.json"))
	if err != nil {
		t.Fatalf("missing golden digests: %v", err)
	}
	want := map[string]goldenDigest{}
	if err := json.Unmarshal(buf, &want); err != nil {
		t.Fatal(err)
	}
	return want
}
