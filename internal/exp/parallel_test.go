package exp

import (
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestWorkersSizing(t *testing.T) {
	// Explicit override wins.
	if got := (Options{Parallelism: 7}).workers(16); got != 7 {
		t.Fatalf("override workers = %d, want 7", got)
	}
	// Adaptive: GOMAXPROCS/simProcs, floored at 2.
	host := runtime.GOMAXPROCS(0)
	want := host / 16
	if want < 2 {
		want = 2
	}
	if got := (Options{}).workers(16); got != want {
		t.Fatalf("adaptive workers(16) = %d, want %d (GOMAXPROCS %d)", got, want, host)
	}
	if got := (Options{}).workers(0); got < 2 {
		t.Fatalf("workers(0) = %d, want >= 2", got)
	}
}

func TestParallelMapOrderAndErrors(t *testing.T) {
	items := []string{"a", "b", "c", "d"}
	out, err := parallelMap(3, items, func(s string) (string, error) {
		return strings.ToUpper(s), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range items {
		if out[i] != strings.ToUpper(s) {
			t.Fatalf("out = %v, not in item order", out)
		}
	}

	// Every failure is reported, wrapped with its item name.
	sentinelB := errors.New("boom-b")
	sentinelD := errors.New("boom-d")
	_, err = parallelMap(2, items, func(s string) (string, error) {
		switch s {
		case "b":
			return "", sentinelB
		case "d":
			return "", sentinelD
		}
		return s, nil
	})
	if err == nil {
		t.Fatal("expected joined error")
	}
	if !errors.Is(err, sentinelB) || !errors.Is(err, sentinelD) {
		t.Fatalf("joined error lost a failure: %v", err)
	}
	for _, want := range []string{"b: boom-b", "d: boom-d"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("error %q does not name the failing item %q", err, want)
		}
	}
}

func TestParallelMapBoundsConcurrency(t *testing.T) {
	items := make([]string, 32)
	for i := range items {
		items[i] = fmt.Sprint(i)
	}
	var mu sync.Mutex
	active, peak := 0, 0
	_, err := parallelMap(3, items, func(s string) (string, error) {
		mu.Lock()
		active++
		if active > peak {
			peak = active
		}
		mu.Unlock()
		time.Sleep(time.Millisecond)
		mu.Lock()
		active--
		mu.Unlock()
		return s, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if peak > 3 {
		t.Fatalf("peak concurrency %d exceeds worker bound 3", peak)
	}
	if peak < 1 {
		t.Fatalf("nothing ran")
	}
}
