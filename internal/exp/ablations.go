package exp

import (
	"fmt"
	"strings"

	"flashsim/internal/apps"
	"flashsim/internal/arch"
)

// AblateMDC sweeps the MAGIC data cache size on the OS workload, the
// MDC-hungriest application (Section 5.2 argues the 64 KB choice; this
// shows the knee).
func AblateMDC(o Options) (string, error) {
	sizes := []int{4 << 10, 16 << 10, 64 << 10, 256 << 10}
	var base uint64
	rows := [][]string{}
	for _, sz := range sizes {
		cfg := o.baseConfig(8)
		cfg.Placement = arch.PlaceRoundRobin
		cfg.MDCSize = sz
		r, err := RunApp("os", cfg, o.paramsFor("os", 8), o.Verify)
		if err != nil {
			return "", err
		}
		if base == 0 {
			base = uint64(r.Report.Elapsed)
		}
		rows = append(rows, []string{
			fmt.Sprintf("%d KB", sz>>10),
			fmt.Sprintf("%.2f%%", 100*r.Report.MDCMissRate),
			fmt.Sprintf("%.2f%%", 100*r.Report.MDCReadMissRate),
			fmt.Sprintf("%.1f%%", 100*float64(r.Report.Elapsed)/float64(base)),
		})
	}
	return "Ablation: MAGIC data cache size (OS workload, exec time normalized to 4 KB)\n" +
		table([]string{"MDC size", "Miss rate", "Read miss rate", "Exec time"}, rows), nil
}

// AblateNetwork sweeps the mesh transit latency on FFT, showing how the
// flexibility cost tracks the remote fraction of the miss path.
func AblateNetwork(o Options) (string, error) {
	rows := [][]string{}
	for _, transit := range []uint32{11, 22, 44, 88} {
		cfg := o.baseConfig(16)
		cfg.Timing.NetTransit = transit
		p := o.paramsFor("fft", 16)
		f, err := RunApp("fft", withTransit(cfg, arch.KindFLASH, transit), p, o.Verify)
		if err != nil {
			return "", err
		}
		id, err := RunApp("fft", withTransit(cfg, arch.KindIdeal, transit), p, o.Verify)
		if err != nil {
			return "", err
		}
		rows = append(rows, []string{
			fmt.Sprintf("%d cycles", transit),
			fmt.Sprint(f.Report.Elapsed),
			fmt.Sprint(id.Report.Elapsed),
			fmt.Sprintf("+%.1f%%", Slowdown(f, id)),
		})
	}
	return "Ablation: network transit latency (FFT, FLASH vs ideal)\n" +
		"(longer wires stretch the window in which lines are pending, so the\n" +
		" flexible controller's NAK/retry and occupancy costs compound)\n" +
		table([]string{"Transit", "FLASH cycles", "Ideal cycles", "Slowdown"}, rows), nil
}

// withTransit pins the network transit against core.New's recomputation by
// exploiting that core only overrides NetTransit from the node count; we
// re-apply the sweep value through a node-count-stable config.
func withTransit(cfg arch.Config, kind arch.MachineKind, transit uint32) arch.Config {
	out := cfg
	out.Kind = kind
	out.Timing.NetTransit = transit
	return out
}

// AblateIssueWidth isolates the two PP optimizations of Section 5.3:
// dual-issue alone, and the special instructions alone, on MP3D (the
// paper's worst case).
func AblateIssueWidth(o Options) (string, error) {
	modes := []struct {
		name string
		mode arch.PPMode
	}{
		{"dual-issue + special instrs (MAGIC)", arch.PPDualIssue},
		{"single-issue + special instrs", arch.PPSingleIssue},
		{"single-issue + DLX substitution", arch.PPNoSpecial},
	}
	p := o.paramsFor("mp3d", 16)
	var base uint64
	rows := [][]string{}
	for _, m := range modes {
		cfg := o.baseConfig(16)
		cfg.PPMode = m.mode
		r, err := RunApp("mp3d", cfg, p, o.Verify)
		if err != nil {
			return "", err
		}
		if base == 0 {
			base = uint64(r.Report.Elapsed)
		}
		rows = append(rows, []string{
			m.name,
			fmt.Sprint(r.Report.Elapsed),
			fmt.Sprintf("%.1f%%", 100*float64(r.Report.Elapsed)/float64(base)),
			fmt.Sprintf("%.1f%%", 100*r.Report.AvgPPOcc),
		})
	}
	return "Ablation: PP issue width and ISA extensions (MP3D)\n" +
		table([]string{"PP configuration", "Cycles", "Relative", "Avg PP occ"}, rows), nil
}

// Ablations runs all design-choice sweeps.
func Ablations(o Options) (string, error) {
	var b strings.Builder
	for _, f := range []func(Options) (string, error){AblateMDC, AblateNetwork, AblateIssueWidth} {
		s, err := f(o)
		if err != nil {
			return "", err
		}
		b.WriteString(s)
		b.WriteString("\n")
	}
	return b.String(), nil
}

var _ = apps.Params{} // keep the import stable across edits
