package exp

import (
	"strings"
	"testing"
)

// TestProfileAttribution pins the acceptance bar for the self-profiling
// harness: on a sharded-engine run the four phases {window execution,
// barrier wait, outbox drain, merge} must account for at least 95% of total
// engine wall time — the chained-timestamp design leaves no systematic gaps.
func TestProfileAttribution(t *testing.T) {
	profs, err := ProfileApps(Options{Scale: 256, Verify: true}, []string{"fft"})
	if err != nil {
		t.Fatal(err)
	}
	if len(profs) != 1 {
		t.Fatalf("got %d profiles, want 1", len(profs))
	}
	p := profs[0]
	if p.Engine == nil {
		t.Fatal("no engine profile collected")
	}
	if cov := p.Engine.Coverage(); cov < 0.95 {
		t.Errorf("phase attribution covers %.1f%% of engine wall time, want >= 95%%", 100*cov)
	}
	var shardEvents uint64
	for i := range p.Engine.Shards {
		s := &p.Engine.Shards[i]
		shardEvents += s.Executed
		if s.EmptyWindows > s.Windows {
			t.Errorf("shard %d: empty windows %d > windows %d", i, s.EmptyWindows, s.Windows)
		}
	}
	if total := p.Run.Machine.Eng.ExecutedEvents(); shardEvents != total {
		t.Errorf("shard events sum %d != engine total %d", shardEvents, total)
	}
	if p.Host == nil || p.Host.WallNS <= 0 {
		t.Errorf("host delta %+v, want positive wall time", p.Host)
	}

	out := RenderProfiles(profs)
	for _, want := range []string{"fft", "window exec", "barrier wait", "outbox drain", "merge", "Coverage"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}
