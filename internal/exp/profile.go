package exp

import (
	"fmt"
	"strings"

	"flashsim/internal/arch"
	"flashsim/internal/core"
	"flashsim/internal/metrics"
	"flashsim/internal/sim"
)

// This file is the self-profiling harness behind `flashexp profile`: it
// answers where the simulator's *host* time goes, not where simulated time
// goes. Each Figure 4.1 application runs once on the sharded engine with
// engine self-profiling and a metrics registry attached; the report
// attributes wall time to {window execution, barrier wait, outbox drain,
// merge} per shard and charges allocation and GC cost to each app.

// AppProfile is one application's host-cost profile.
type AppProfile struct {
	App  string
	Run  *Run
	// Engine is the engine's phase attribution for this app's FLASH run.
	Engine *sim.EngineProfile
	// Host is the Go-runtime cost of the run (wall, allocs, GC).
	Host *metrics.HostDelta
	// Registry holds the full metrics snapshot for the run.
	Registry *metrics.Registry
}

// ProfileApps profiles the named applications sequentially (parallel runs
// would blur the process-wide runtime counters) on the sharded engine.
func ProfileApps(o Options, names []string) ([]*AppProfile, error) {
	out := make([]*AppProfile, 0, len(names))
	for _, name := range names {
		np := 16
		if name == "os" {
			np = 8
		}
		if o.Procs > 0 {
			np = o.Procs
		}
		cfg := o.baseConfig(np)
		cfg.Kind = arch.KindFLASH
		cfg.Engine = arch.EngineSharded
		if o.Engine != arch.EngineAuto {
			cfg.Engine = o.Engine
		}
		cfg.EngineSync = o.EngineSync
		cfg.Sample = o.Sample
		if name == "os" {
			cfg.Placement = arch.PlaceRoundRobin
		}
		reg := metrics.NewRegistry()
		r, err := RunAppObserved(name, cfg, o.paramsFor(name, np), o.Verify, func(m *core.Machine) {
			if se, ok := m.Eng.(*sim.ShardedEngine); ok && o.EngineWorkers > 0 {
				se.Workers = o.EngineWorkers
			}
			m.EnableMetrics(reg)
		})
		if err != nil {
			return nil, fmt.Errorf("%s: %w", name, err)
		}
		out = append(out, &AppProfile{
			App:      name,
			Run:      r,
			Engine:   r.Machine.Eng.Profile(),
			Host:     r.Report.Host,
			Registry: reg,
		})
	}
	return out, nil
}

// Profile runs the host-performance report over the Figure 4.1 suite:
// per-app wall/GC/alloc accounting followed by each app's engine phase
// attribution.
func Profile(o Options) (string, error) {
	profs, err := ProfileApps(o, Fig41Apps())
	if err != nil {
		return "", err
	}
	return RenderProfiles(profs), nil
}

// RenderProfiles renders the host-performance report for profiled apps.
func RenderProfiles(profs []*AppProfile) string {
	var b strings.Builder
	b.WriteString("Host-performance profile (FLASH machine)\n\n")
	hdr := []string{"App", "Cycles", "Events", "Wall", "Ev/s", "AllocMB", "GCs", "GCPause", "Coverage"}
	rows := [][]string{}
	for _, p := range profs {
		wall := float64(p.Host.WallNS) / 1e9
		evs := float64(p.Run.Machine.Eng.ExecutedEvents())
		cov := "-"
		if p.Engine != nil {
			cov = fmt.Sprintf("%.1f%%", 100*p.Engine.Coverage())
		}
		rows = append(rows, []string{
			p.App,
			fmt.Sprintf("%d", p.Run.Report.Elapsed),
			fmt.Sprintf("%.0f", evs),
			fmt.Sprintf("%.2fs", wall),
			fmt.Sprintf("%.2gM", evs/wall/1e6),
			fmt.Sprintf("%.1f", float64(p.Host.AllocBytes)/(1<<20)),
			fmt.Sprintf("%d", p.Host.GCCycles),
			fmt.Sprintf("%.1fms", float64(p.Host.GCPauseNS)/1e6),
			cov,
		})
	}
	b.WriteString(table(hdr, rows))
	for _, p := range profs {
		if p.Engine == nil {
			continue
		}
		fmt.Fprintf(&b, "\n%s: %s", p.App, p.Engine.String())
	}
	return b.String()
}

// Fig41Apps is the Figure 4.1 suite in the paper's presentation order.
func Fig41Apps() []string {
	return []string{"fft", "lu", "radix", "ocean", "barnes", "mp3d", "os"}
}
