// Package exp regenerates the paper's tables and figures: each Experiment
// runs the required simulations and renders rows in the paper's layout.
// cmd/flashexp exposes them on the command line and bench_test.go wraps
// them as benchmarks.
package exp

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"flashsim/internal/apps"
	"flashsim/internal/arch"
	"flashsim/internal/core"
	"flashsim/internal/metrics"
	"flashsim/internal/stats"
	"flashsim/internal/workload"
)

// Options tune experiment cost.
type Options struct {
	// Scale multiplies every application's problem-size divisor: 1 runs the
	// paper sizes, larger values shrink the problems. The default (4) keeps
	// the full suite to minutes.
	Scale int
	// Procs overrides the processor count where the paper doesn't fix it.
	Procs int
	// Verify re-checks application results and machine coherence after
	// every run (slower; on by default in tests).
	Verify bool
	// Parallelism caps how many simulations an experiment runs at once.
	// 0 sizes the fan-out adaptively from the host: GOMAXPROCS divided by
	// the simulated processor count (each running simulation keeps roughly
	// one OS thread hot plus one goroutine per simulated processor),
	// floored at 2 so small hosts keep the FLASH/ideal pair concurrent.
	Parallelism int
	// Engine overrides the event-engine backend for the profile harness
	// (EngineAuto keeps the harness default: sharded).
	Engine arch.EngineKind
	// EngineSync selects the sharded engine's synchronization scheme for
	// the profile harness (EngineSyncAuto = process default).
	EngineSync arch.EngineSync
	// EngineWorkers overrides the sharded engine's worker-pool size for the
	// profile harness (0 = GOMAXPROCS-derived).
	EngineWorkers int
	// NetModel selects the network latency model every experiment's machines
	// use (the zero value is the paper's uniform average; NetMesh switches
	// to per-pair 2-D mesh transit and changes simulated timing).
	NetModel arch.NetModel
	// Sample, when enabled, runs experiments under the sampled fast-forward
	// schedule (see arch.SampleSpec). Most experiments ignore it; the
	// sampled experiment and the profile harness honor it.
	Sample arch.SampleSpec
	// SampleApps restricts the sampled experiment to these applications
	// (empty = the full Figure 4.1 suite). Sampling schedules are tuned
	// per application in practice (SMARTS picks per-benchmark configs), so
	// scripts pair a spec with the apps it suits.
	SampleApps []string
	// CacheBytes overrides the processor cache size (0 = the paper's 1 MB).
	CacheBytes int
}

// workers returns the experiment fan-out for simulations of simProcs
// processors each: the explicit Parallelism override, or the adaptive size.
func (o Options) workers(simProcs int) int {
	if o.Parallelism > 0 {
		return o.Parallelism
	}
	if simProcs < 1 {
		simProcs = 1
	}
	w := runtime.GOMAXPROCS(0) / simProcs
	if w < 2 {
		w = 2
	}
	return w
}

// DefaultOptions is the quick configuration: problem sizes a quarter of
// the paper's, which preserves the qualitative results at a fraction of
// the simulation cost. Use Scale 1 or 2 to approach the paper sizes.
func DefaultOptions() Options { return Options{Scale: 4, Verify: true} }

// quickScale gives per-application divisors applied on top of
// Options.Scale; Options.Scale == 1 runs the paper sizes.
var quickScale = map[string]int{
	"fft":    1,
	"lu":     1,
	"radix":  1,
	"ocean":  1,
	"barnes": 1,
	"mp3d":   1,
	"os":     1,
}

func (o Options) paramsFor(app string, procs int) apps.Params {
	s := o.Scale
	if s <= 0 {
		s = 1
	}
	return apps.Params{Procs: procs, Scale: s * quickScale[app]}
}

// Run is one completed simulation.
type Run struct {
	App     string
	Cfg     arch.Config
	Report  stats.Report
	Machine *core.Machine
	// SimWall is the host time spent inside the event loop proper (the
	// workload run), excluding machine construction, result verification,
	// and the post-run coherence audit — the part a sampled schedule can
	// actually shorten.
	SimWall time.Duration
	// pooled marks machines acquired from runPool (observe-free runs):
	// Release may hand them back for recycling.
	pooled bool
}

// runPool recycles machines across the experiment driver's runs: RunApp
// draws from it instead of calling core.New when a same-configuration
// machine has been Released (parallelMap's workers run many simulations
// over few distinct configurations). Observed runs (tracers, metrics,
// occupancy sampling attached) bypass the pool in both directions.
var runPool = NewMachinePool()

// Release returns the run's machine to the experiment pool for recycling
// and drops the reference. Call it only when nothing will touch r.Machine
// afterwards (reports are deep-copied and stay valid). Safe to skip —
// unreleased machines are simply collected by the GC — and a no-op for
// observed runs, whose machines never enter the pool.
func (r *Run) Release() {
	if r == nil || r.Machine == nil {
		return
	}
	if r.pooled {
		runPool.Put(r.Machine)
	}
	r.Machine = nil
}

// RunApp executes one application on one configuration.
func RunApp(name string, cfg arch.Config, p apps.Params, verify bool) (*Run, error) {
	return RunAppObserved(name, cfg, p, verify, nil)
}

// RunAppObserved is RunApp with a hook called on the freshly built machine
// before the run starts — the place to attach a tracer or enable occupancy
// sampling (core.Machine.SetTracer, EnableOccSampling) without perturbing
// the simulation itself.
//
// The returned report carries host-cost accounting (Report.Host) sampled
// around the run. The runtime counters are process-wide, so when several
// simulations run concurrently (Pair, parallelMap) each delta includes its
// neighbours' allocations; ProfileApps runs sequentially for exact
// attribution.
func RunAppObserved(name string, cfg arch.Config, p apps.Params, verify bool, observe func(*core.Machine)) (*Run, error) {
	before := metrics.ReadHost()
	var m *core.Machine
	var err error
	pooled := observe == nil
	if pooled {
		m, err = runPool.Get(cfg)
	} else {
		// Observed machines may carry tracers or registries Reset does not
		// detach; build fresh and never recycle.
		m, err = core.New(cfg)
	}
	if err != nil {
		return nil, err
	}
	if observe != nil {
		observe(m)
	}
	w := workload.NewWorld(m)
	app, err := apps.Build(name, w, p)
	if err != nil {
		return nil, err
	}
	simStart := time.Now()
	if err := w.Run(app.Run, 0); err != nil {
		return nil, fmt.Errorf("%s on %v: %w", name, cfg.Kind, err)
	}
	simWall := time.Since(simStart)
	if verify {
		if err := app.Verify(); err != nil {
			return nil, fmt.Errorf("%s on %v: %w", name, cfg.Kind, err)
		}
		if err := m.CheckCoherence(); err != nil {
			return nil, fmt.Errorf("%s on %v: %w", name, cfg.Kind, err)
		}
	}
	rep := stats.Collect(m)
	host := metrics.ReadHost().Sub(before)
	rep.Host = &host
	return &Run{App: name, Cfg: cfg, Report: rep, Machine: m, SimWall: simWall, pooled: pooled}, nil
}

// Pair runs an application on FLASH and on the ideal machine with otherwise
// identical configuration, in parallel. The ideal run's machine is released
// back to the experiment pool before returning (every caller consumes only
// ideal.Report); the FLASH machine stays attached — several experiments
// read its occupancy counters afterwards.
func Pair(name string, base arch.Config, p apps.Params, verify bool) (flash, ideal *Run, err error) {
	var wg sync.WaitGroup
	var ef, ei error
	wg.Add(2)
	go func() {
		defer wg.Done()
		cf := base
		cf.Kind = arch.KindFLASH
		flash, ef = RunApp(name, cf, p, verify)
	}()
	go func() {
		defer wg.Done()
		ci := base
		ci.Kind = arch.KindIdeal
		ideal, ei = RunApp(name, ci, p, verify)
	}()
	wg.Wait()
	if ef != nil {
		return nil, nil, ef
	}
	if ei != nil {
		return nil, nil, ei
	}
	ideal.Release()
	return flash, ideal, nil
}

// Slowdown returns FLASH execution time relative to ideal, in percent.
func Slowdown(flash, ideal *Run) float64 {
	return 100 * (float64(flash.Report.Elapsed)/float64(ideal.Report.Elapsed) - 1)
}

// baseConfig is the Section 3 machine with a memory size fit for the
// scaled problems, adjusted by the experiment-wide options (network model).
func (o Options) baseConfig(procs int) arch.Config {
	cfg := arch.DefaultConfig()
	if procs > 0 {
		cfg.Nodes = procs
	}
	cfg.MemBytesPerNode = 8 << 20
	cfg.NetModel = o.NetModel
	if o.CacheBytes > 0 {
		cfg.CacheSize = o.CacheBytes
	}
	return cfg
}

// parallelMap runs f over the items with at most `workers` in flight
// (bounded: each simulation already spawns one goroutine per simulated
// processor, and oversubscribing the host thrashes the workload handshake
// channels), preserving result order. Every failure is reported, each
// wrapped with the item that produced it.
func parallelMap[T any](workers int, items []string, f func(string) (T, error)) ([]T, error) {
	if workers < 1 {
		workers = 1
	}
	out := make([]T, len(items))
	errs := make([]error, len(items))
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for i, it := range items {
		wg.Add(1)
		go func(i int, it string) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			var err error
			out[i], err = f(it)
			if err != nil {
				errs[i] = fmt.Errorf("%s: %w", it, err)
			}
		}(i, it)
	}
	wg.Wait()
	if err := errors.Join(errs...); err != nil {
		return nil, err
	}
	return out, nil
}

// table renders rows with aligned columns.
func table(header []string, rows [][]string) string {
	width := make([]int, len(header))
	for i, h := range header {
		width[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	var b strings.Builder
	line := func(cols []string) {
		for i, c := range cols {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", width[i], c)
		}
		b.WriteString("\n")
	}
	line(header)
	for _, r := range rows {
		line(r)
	}
	return b.String()
}

// sortedKeys returns the map's keys in sorted order.
func sortedKeys[V any](m map[string]V) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

func pct(v float64) string  { return fmt.Sprintf("%.1f%%", 100*v) }
func pct2(v float64) string { return fmt.Sprintf("%.2f%%", 100*v) }
