package exp

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"flashsim/internal/apps"
	"flashsim/internal/arch"
	"flashsim/internal/core"
	"flashsim/internal/stats"
	"flashsim/internal/workload"
)

var updateForkGolden = flag.Bool("update-fork-golden", false, "rewrite testdata/golden_fork.json from the current tree")

// forkPauseRefs is where the phased runs pause: far enough in that the
// snapshot catches warmed caches, in-flight sharing patterns, and consumed
// synchronization, small enough that every application still has most of
// its work left to run after the fork.
const forkPauseRefs = 20000

// phasedLegs runs one application both ways around a checkpoint: the cold
// leg pauses at forkPauseRefs, checkpoints, and resumes in place; the warm
// leg restores the checkpoint into a second machine and resumes there. It
// verifies application results and coherence on both machines, the
// executed-event sum identity, and that the two statistics reports are
// deeply equal, then returns the (shared) digest.
func phasedLegs(t *testing.T, name string, cfg arch.Config) goldenDigest {
	t.Helper()
	p := apps.Params{Scale: goldenScales[name]}

	m, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	w := workload.NewWorld(m)
	app, err := apps.Build(name, w, p)
	if err != nil {
		t.Fatal(err)
	}
	pre, err := w.RunPrefix(app.Run, forkPauseRefs, 0)
	if err != nil {
		t.Fatalf("prefix: %v", err)
	}
	ck, err := pre.Checkpoint()
	if err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	if err := pre.Resume(); err != nil {
		t.Fatalf("cold resume: %v", err)
	}
	if err := m.CheckCoherence(); err != nil {
		t.Fatalf("cold coherence: %v", err)
	}
	cold := goldenDigest{Elapsed: uint64(m.Elapsed), Executed: m.Eng.ExecutedEvents()}
	coldRep := stats.Collect(m)

	m2, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	w2, err := w.Fork(ck, m2, app.Run, 0)
	if err != nil {
		t.Fatalf("fork: %v", err)
	}
	forkExec := m2.Eng.ExecutedEvents()
	warm := goldenDigest{Elapsed: uint64(m2.Elapsed), Executed: ck.Snap.Executed + forkExec}

	// The fork executes exactly the events the cold continuation does: the
	// cold total splits into prefix + fork with nothing lost or repeated.
	if warm.Executed != cold.Executed {
		t.Errorf("executed-sum identity broken: prefix %d + fork %d != cold %d",
			ck.Snap.Executed, forkExec, cold.Executed)
	}
	if warm != cold {
		t.Errorf("fork digest %+v != cold digest %+v", warm, cold)
	}

	// Verify the forked machine's computed result (Verify closures are
	// one-shot — several applications factor or advance their host-side
	// reference in place — so the single call goes to the fork; the cold
	// leg is covered by the word-for-word memory comparison below). The
	// application reads through its build-time world, so point that world
	// at the forked machine for the check.
	w.M = m2
	if err := app.Verify(); err != nil {
		t.Errorf("fork verify: %v", err)
	}
	w.M = m
	if err := m2.CheckCoherence(); err != nil {
		t.Errorf("fork coherence: %v", err)
	}

	// Cold and warm continuations must leave bit-identical memory images.
	words := uint64(cfg.Nodes * cfg.MemBytesPerNode / 8)
	for i := uint64(0); i < words; i++ {
		if a, b := m.Backing.Load(i), m2.Backing.Load(i); a != b {
			t.Errorf("memory diverged at word %d: cold %#x, fork %#x", i, a, b)
			break
		}
	}

	warmRep := stats.Collect(w2.M)
	if !reflect.DeepEqual(coldRep, warmRep) {
		cb, _ := json.Marshal(coldRep)
		wb, _ := json.Marshal(warmRep)
		t.Errorf("fork report differs from cold report:\ncold: %s\nwarm: %s", cb, wb)
	}
	return cold
}

// TestForkDeterminism pins the phased (pause + checkpoint + resume) digests
// of every Figure 4.1 application and requires the snapshot-forked
// continuation to be bit-identical to the cold continuation. The golden
// file is shared across engines, sync schemes, and PP dispatch backends:
// `make verify` re-runs this test under all four backend combinations
// against the same recorded digests.
func TestForkDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	path := filepath.Join("testdata", "golden_fork.json")
	got := map[string]goldenDigest{}
	for _, name := range apps.Names {
		cfg := goldenConfig()
		if name == "os" {
			cfg.Placement = arch.PlaceRoundRobin
		}
		got[name] = phasedLegs(t, name, cfg)
	}

	if *updateForkGolden {
		buf, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", path)
		return
	}

	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing fork golden digests (run with -update-fork-golden to record): %v", err)
	}
	want := map[string]goldenDigest{}
	if err := json.Unmarshal(buf, &want); err != nil {
		t.Fatal(err)
	}
	for _, name := range apps.Names {
		w, ok := want[name]
		if !ok {
			t.Errorf("%s: no fork golden digest recorded", name)
			continue
		}
		if got[name] != w {
			t.Errorf("%s: phased digest %+v, want %+v (snapshot behavior changed)", name, got[name], w)
		}
	}
}

// TestMachineResetDeterminism recycles one machine through Reset and
// requires the second run to be bit-identical to a fresh machine's run —
// the property the machine pool depends on.
func TestMachineResetDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	cfg := goldenConfig()
	run := func(m *core.Machine) goldenDigest {
		t.Helper()
		w := workload.NewWorld(m)
		app, err := apps.Build("fft", w, apps.Params{Scale: goldenScales["fft"]})
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Run(app.Run, 0); err != nil {
			t.Fatal(err)
		}
		if err := app.Verify(); err != nil {
			t.Fatal(err)
		}
		return goldenDigest{Elapsed: uint64(m.Elapsed), Executed: m.Eng.ExecutedEvents()}
	}
	m, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fresh := run(m)
	m.Reset()
	if recycled := run(m); recycled != fresh {
		t.Errorf("recycled digest %+v != fresh digest %+v", recycled, fresh)
	}
	// A recycled machine must also accept snapshots exactly like a fresh
	// one: reset again and run a full phased fork cycle on it.
	m.Reset()
	if key := m.PoolKey(); key != core.PoolKeyFor(cfg) {
		t.Errorf("pool key mismatch: machine %q, config %q", key, core.PoolKeyFor(cfg))
	}

	// The ideal machine recycles too (Pair releases its ideal leg to the
	// experiment pool), so its Reset must be just as deterministic.
	icfg := cfg
	icfg.Kind = arch.KindIdeal
	im, err := core.New(icfg)
	if err != nil {
		t.Fatal(err)
	}
	ifresh := run(im)
	im.Reset()
	if recycled := run(im); recycled != ifresh {
		t.Errorf("recycled ideal digest %+v != fresh ideal digest %+v", recycled, ifresh)
	}
}
