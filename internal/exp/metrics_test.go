package exp

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"flashsim/internal/apps"
	"flashsim/internal/arch"
	"flashsim/internal/core"
	"flashsim/internal/metrics"
)

// TestMetricsDoNotPerturbSimulation is the non-perturbation proof promised
// by DESIGN.md §12: running with a metrics registry attached (which also
// turns on engine self-profiling) yields cycle counts and event counts
// bit-identical to the recorded golden digests, on both engines and both PP
// dispatch backends. Metrics are host-side observation only — any
// divergence here means instrumentation leaked into simulated behaviour.
func TestMetricsDoNotPerturbSimulation(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	buf, err := os.ReadFile(filepath.Join("testdata", "golden_digest.json"))
	if err != nil {
		t.Fatalf("missing golden digests: %v", err)
	}
	want := map[string]goldenDigest{}
	if err := json.Unmarshal(buf, &want); err != nil {
		t.Fatal(err)
	}
	const app = "fft"
	for _, eng := range []arch.EngineKind{arch.EngineSeq, arch.EngineSharded} {
		for _, disp := range []arch.PPDispatch{arch.PPDispatchInterp, arch.PPDispatchCompiled} {
			cfg := goldenConfig()
			cfg.Engine = eng
			cfg.PPDispatch = disp
			reg := metrics.NewRegistry()
			r, err := RunAppObserved(app, cfg, apps.Params{Scale: goldenScales[app]}, true, func(m *core.Machine) {
				m.EnableMetrics(reg)
			})
			if err != nil {
				t.Fatalf("%v/%v: %v", eng, disp, err)
			}
			got := goldenDigest{
				Elapsed:  uint64(r.Report.Elapsed),
				Executed: r.Machine.Eng.ExecutedEvents(),
			}
			if got != want[app] {
				t.Errorf("%v/%v: metrics-enabled digest %+v, want %+v (instrumentation perturbed the simulation)",
					eng, disp, got, want[app])
			}

			// The registry must agree with the simulation's own accounting.
			snap := reg.Snapshot()
			if c, ok := snap.Gauges["flash_cycles"]; !ok || uint64(c) != got.Elapsed {
				t.Errorf("%v/%v: flash_cycles gauge = %d, want %d", eng, disp, c, got.Elapsed)
			}
			if ev, ok := snap.Counters["flashsim_sim_events_total"]; !ok || ev != got.Executed {
				t.Errorf("%v/%v: sim_events counter = %d, want %d", eng, disp, ev, got.Executed)
			}
		}
	}
}

// TestMetricsProfileShape checks the engine-profile series published for a
// sharded run: per-shard event counters must sum to the engine total, and
// every shard must have published a window-execution time series.
func TestMetricsProfileShape(t *testing.T) {
	cfg := goldenConfig()
	cfg.Engine = arch.EngineSharded
	reg := metrics.NewRegistry()
	r, err := RunAppObserved("fft", cfg, apps.Params{Scale: goldenScales["fft"]}, true, func(m *core.Machine) {
		m.EnableMetrics(reg)
	})
	if err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	var perShard uint64
	shards := 0
	for id, v := range snap.Counters {
		if len(id) > 28 && id[:28] == "flashsim_engine_events_total" {
			perShard += v
			shards++
		}
	}
	if shards != cfg.Nodes {
		t.Errorf("per-shard event series for %d shards, want %d", shards, cfg.Nodes)
	}
	if total := r.Machine.Eng.ExecutedEvents(); perShard != total {
		t.Errorf("per-shard events sum %d != engine total %d", perShard, total)
	}
	if _, ok := snap.Counters[`flashsim_engine_run_ns_total{engine="sharded"}`]; !ok {
		t.Error("missing flashsim_engine_run_ns_total{engine=\"sharded\"}")
	}
	if r.Report.Host == nil || r.Report.Host.WallNS <= 0 {
		t.Errorf("Report.Host = %+v, want positive wall time", r.Report.Host)
	}
}
