package memsys

// Store is the machine-wide data backing store: 8-byte words indexed by
// physical address / 8, materialized in 64 KiB chunks on first write.
// Machines are configured with the paper's memory sizes (megabytes per
// node) but scaled-down workloads touch a small fraction of that, so a
// dense []uint64 spends more host time zeroing memory at construction than
// the simulation spends running. Untouched chunks read as zero, matching
// the dense semantics exactly.
type Store struct {
	chunks [][]uint64
}

const (
	storeChunkShift = 13 // 8 Ki words = 64 KiB per chunk
	storeChunkWords = 1 << storeChunkShift
)

// NewStore creates a store covering the given number of words. No data
// memory is allocated until it is written.
func NewStore(words int) *Store {
	n := (words + storeChunkWords - 1) >> storeChunkShift
	return &Store{chunks: make([][]uint64, n)}
}

// Load returns word i. Reads of never-written chunks return zero without
// materializing them.
func (s *Store) Load(i uint64) uint64 {
	c := s.chunks[i>>storeChunkShift]
	if c == nil {
		return 0
	}
	return c[i&(storeChunkWords-1)]
}

// Word returns a stable pointer to word i, materializing its chunk if
// needed. Chunks are never moved or freed, so pointers taken before the
// simulation starts (workload initialization) stay valid throughout.
func (s *Store) Word(i uint64) *uint64 {
	ci := i >> storeChunkShift
	c := s.chunks[ci]
	if c == nil {
		c = make([]uint64, storeChunkWords)
		s.chunks[ci] = c
	}
	return &c[i&(storeChunkWords-1)]
}
