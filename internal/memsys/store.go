package memsys

// Store is the machine-wide data backing store: 8-byte words indexed by
// physical address / 8, materialized in 64 KiB chunks on first write.
// Machines are configured with the paper's memory sizes (megabytes per
// node) but scaled-down workloads touch a small fraction of that, so a
// dense []uint64 spends more host time zeroing memory at construction than
// the simulation spends running. Untouched chunks read as zero, matching
// the dense semantics exactly.
type Store struct {
	chunks [][]uint64
	// shared[i] marks chunk i as referenced by a snapshot (or restored from
	// one): it must be cloned before the next write through Word. Reads go
	// through shared chunks directly.
	shared []bool
}

const (
	storeChunkShift = 13 // 8 Ki words = 64 KiB per chunk
	storeChunkWords = 1 << storeChunkShift
)

// NewStore creates a store covering the given number of words. No data
// memory is allocated until it is written.
func NewStore(words int) *Store {
	n := (words + storeChunkWords - 1) >> storeChunkShift
	return &Store{chunks: make([][]uint64, n), shared: make([]bool, n)}
}

// Load returns word i. Reads of never-written chunks return zero without
// materializing them.
func (s *Store) Load(i uint64) uint64 {
	c := s.chunks[i>>storeChunkShift]
	if c == nil {
		return 0
	}
	return c[i&(storeChunkWords-1)]
}

// Word returns a writable pointer to word i, materializing its chunk if
// needed and cloning it first when it is shared with a snapshot. Within
// one machine lifetime (no Snapshot/Restore), chunks are never moved or
// freed, so pointers taken before the simulation starts (workload
// initialization) stay valid throughout; after SnapshotChunks or
// RestoreShared, previously taken pointers may refer to a frozen copy and
// must be re-fetched.
func (s *Store) Word(i uint64) *uint64 {
	ci := i >> storeChunkShift
	c := s.chunks[ci]
	if c == nil {
		c = make([]uint64, storeChunkWords)
		s.chunks[ci] = c
	} else if s.shared[ci] {
		clone := make([]uint64, storeChunkWords)
		copy(clone, c)
		s.chunks[ci] = clone
		s.shared[ci] = false
		c = clone
	}
	return &c[i&(storeChunkWords-1)]
}

// SnapshotChunks freezes the store's current contents and returns the
// chunk-pointer table. Every materialized chunk is marked shared, so the
// donor (and any store restored from the returned table) clones a chunk
// before its first subsequent write — the returned table's data is
// immutable from this point on and may back any number of forks.
func (s *Store) SnapshotChunks() [][]uint64 {
	snap := make([][]uint64, len(s.chunks))
	copy(snap, s.chunks)
	for i, c := range s.chunks {
		if c != nil {
			s.shared[i] = true
		}
	}
	return snap
}

// RestoreShared replaces the store's contents with a chunk table produced
// by SnapshotChunks on a same-sized store. All installed chunks are marked
// shared: the first write to each clones it, leaving the snapshot intact.
func (s *Store) RestoreShared(chunks [][]uint64) {
	if len(chunks) != len(s.chunks) {
		panic("memsys: RestoreShared chunk count mismatch")
	}
	copy(s.chunks, chunks)
	for i, c := range s.chunks {
		s.shared[i] = c != nil
	}
}

// Reset drops all materialized chunks, returning the store to its
// freshly constructed all-zero state.
func (s *Store) Reset() {
	for i := range s.chunks {
		s.chunks[i] = nil
		s.shared[i] = false
	}
}

// View is one node's window-quantized view of the backing store: writes
// buffer in a private append log and publish to the shared Store only when
// Flush runs (at lookahead-window boundaries, in node order, on the
// engine's coordinating goroutine). Reads see the node's own unflushed
// writes immediately — exact read-own-writes — while other nodes' writes
// become visible at the next boundary.
//
// This quantization is what lets both engines agree bit-for-bit: during a
// window no node can observe another node's in-window stores, so the
// parallel engine's concurrent window execution is indistinguishable from
// the sequential engine's interleaved one. It is safe for the simulated
// programs because conflicting cross-node accesses to the same word are
// serialized by the coherence protocol at least two network transits (two
// windows) apart, and synchronization spin loops tolerate a bounded,
// deterministic staleness of at most one window.
type View struct {
	s            *Store
	log          []writeRec
	writeThrough bool
}

type writeRec struct {
	idx uint64
	val uint64
}

// NewView returns an empty write-buffering view of s.
func NewView(s *Store) *View { return &View{s: s} }

// Load returns word i as seen by this node: its own latest unflushed write
// if any, else the shared store. The log stays short (a node's stores in
// one window), so the backward scan is cheaper than a map.
func (v *View) Load(i uint64) uint64 {
	for j := len(v.log) - 1; j >= 0; j-- {
		if v.log[j].idx == i {
			return v.log[j].val
		}
	}
	return v.s.Load(i)
}

// Store buffers a write of word i (publishes it immediately in
// write-through mode).
func (v *View) Store(i, x uint64) {
	if v.writeThrough {
		*v.s.Word(i) = x
		return
	}
	v.log = append(v.log, writeRec{idx: i, val: x})
}

// SetWriteThrough makes every Store publish to the shared backing
// immediately, bypassing the window log. Sampled runs use it: synchronous
// fast-forward chains complete cross-node transfers in zero engine time,
// so window-quantized visibility would expose stale data mid-chain, and
// sampled execution is serialized (single engine worker) so the eager
// publish is race-free. Equivalent to flushing after every store, minus
// the log traffic.
func (v *View) SetWriteThrough(wt bool) { v.writeThrough = wt }

// Flush publishes buffered writes to the shared store in program order and
// empties the log.
func (v *View) Flush() {
	for _, r := range v.log {
		*v.s.Word(r.idx) = r.val
	}
	v.log = v.log[:0]
}

// Pending reports how many buffered writes have not been flushed.
// Snapshot capture asserts this is zero after a boundary flush.
func (v *View) Pending() int { return len(v.log) }

// Reset empties the log and clears write-through mode.
func (v *View) Reset() {
	v.log = v.log[:0]
	v.writeThrough = false
}
