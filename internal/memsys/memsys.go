// Package memsys models one node's main-memory system: a single memory
// controller with a one-request queue and a 14-cycle access time to the
// first 8 bytes (Table 3.2), streaming the remainder of a 128-byte line over
// the 64-bit path. Both FLASH and the ideal machine use this model; the
// paper models memory contention accurately on both.
package memsys

import (
	"flashsim/internal/arch"
	"flashsim/internal/sim"
)

// Memory is one node's memory controller.
type Memory struct {
	t   arch.Timing
	srv sim.Server

	// Stats.
	Reads       uint64
	Writes      uint64
	SpecReads   uint64 // speculative reads issued by the inbox
	SpecUseless uint64 // speculative reads whose data was not used
}

// New creates a memory controller with the given timing.
func New(t arch.Timing) *Memory {
	return &Memory{t: t}
}

// Read reserves a full-line read starting no earlier than at. It returns
// when the first 8 bytes are available and when the controller frees.
func (m *Memory) Read(at sim.Cycle) (firstWord, done sim.Cycle) {
	start, end := m.srv.Reserve(at, sim.Cycle(m.t.MemLineBusy))
	m.Reads++
	return start + sim.Cycle(m.t.MemAccess), end
}

// SpeculativeRead is a Read issued by the inbox before the handler runs
// (Section 5.1). The caller later marks it useless if the data was not sent.
func (m *Memory) SpeculativeRead(at sim.Cycle) (firstWord, done sim.Cycle) {
	fw, done := m.Read(at)
	m.SpecReads++
	return fw, done
}

// MarkUseless records that the most recent speculative read fetched data
// that was not used (the line was dirty elsewhere, or the request was
// NAKed).
func (m *Memory) MarkUseless() { m.SpecUseless++ }

// Write reserves a full-line write starting no earlier than at and returns
// when the controller frees.
func (m *Memory) Write(at sim.Cycle) (done sim.Cycle) {
	_, end := m.srv.Reserve(at, sim.Cycle(m.t.MemLineBusy))
	m.Writes++
	return end
}

// Occupancy returns the controller's busy fraction over total cycles.
func (m *Memory) Occupancy(total sim.Cycle) float64 { return m.srv.Occ.Fraction(total) }

// BusyCycles returns total busy cycles.
func (m *Memory) BusyCycles() sim.Cycle { return m.srv.Occ.Busy }

// Accesses returns the total number of line accesses.
func (m *Memory) Accesses() uint64 { return m.Reads + m.Writes }
