// Package memsys models one node's main-memory system: a single memory
// controller with a one-request queue and a 14-cycle access time to the
// first 8 bytes (Table 3.2), streaming the remainder of a 128-byte line over
// the 64-bit path. Both FLASH and the ideal machine use this model; the
// paper models memory contention accurately on both.
package memsys

import (
	"flashsim/internal/arch"
	"flashsim/internal/sim"
	"flashsim/internal/trace"
)

// Memory is one node's memory controller.
type Memory struct {
	t    arch.Timing
	srv  sim.Server
	node arch.NodeID

	tr     *trace.Tracer
	series *trace.TimeSeries

	// Stats.
	Reads       uint64
	Writes      uint64
	SpecReads   uint64 // speculative reads issued by the inbox
	SpecUseless uint64 // speculative reads whose data was not used
}

// New creates a memory controller with the given timing.
func New(t arch.Timing) *Memory {
	return &Memory{t: t}
}

// SetTracer attaches tr (nil detaches) and records the owning node id for
// emitted reservation events.
func (m *Memory) SetTracer(tr *trace.Tracer, node arch.NodeID) {
	m.tr = tr
	m.node = node
}

// EnableSampling turns on windowed occupancy sampling with the given window
// width in cycles.
func (m *Memory) EnableSampling(window uint64) {
	m.series = trace.NewTimeSeries(window)
}

// Series returns the occupancy sampler, or nil when sampling is off.
func (m *Memory) Series() *trace.TimeSeries { return m.series }

// observe records one reservation in the sampler and the event trace.
func (m *Memory) observe(kind trace.Kind, start sim.Cycle) {
	m.series.Add(uint64(start), uint64(m.t.MemLineBusy))
	if m.tr.Active() {
		m.tr.Emit(trace.Event{
			Cycle: uint64(start), Dur: uint64(m.t.MemLineBusy),
			Node: int32(m.node), Kind: kind,
		})
	}
}

// Read reserves a full-line read starting no earlier than at. It returns
// when the first 8 bytes are available and when the controller frees.
func (m *Memory) Read(at sim.Cycle) (firstWord, done sim.Cycle) {
	start, end := m.srv.Reserve(at, sim.Cycle(m.t.MemLineBusy))
	m.Reads++
	m.observe(trace.KindMemRead, start)
	return start + sim.Cycle(m.t.MemAccess), end
}

// SpeculativeRead is a Read issued by the inbox before the handler runs
// (Section 5.1). The caller later marks it useless if the data was not sent.
func (m *Memory) SpeculativeRead(at sim.Cycle) (firstWord, done sim.Cycle) {
	fw, done := m.Read(at)
	m.SpecReads++
	return fw, done
}

// MarkUseless records that the most recent speculative read fetched data
// that was not used (the line was dirty elsewhere, or the request was
// NAKed).
func (m *Memory) MarkUseless() { m.SpecUseless++ }

// Write reserves a full-line write starting no earlier than at and returns
// when the controller frees.
func (m *Memory) Write(at sim.Cycle) (done sim.Cycle) {
	start, end := m.srv.Reserve(at, sim.Cycle(m.t.MemLineBusy))
	m.Writes++
	m.observe(trace.KindMemWrite, start)
	return end
}

// MemoryState is the deterministic simulation state of one memory
// controller, as captured by CaptureState. Server is a value type
// (busyUntil / occupancy / job count), so plain assignment deep-copies it.
type MemoryState struct {
	Srv         sim.Server
	Reads       uint64
	Writes      uint64
	SpecReads   uint64
	SpecUseless uint64
}

// CaptureState snapshots the controller's simulation state. Tracer and
// sampler attachments are host-side observers and are not captured.
func (m *Memory) CaptureState() MemoryState {
	return MemoryState{
		Srv: m.srv, Reads: m.Reads, Writes: m.Writes,
		SpecReads: m.SpecReads, SpecUseless: m.SpecUseless,
	}
}

// RestoreState installs a previously captured state.
func (m *Memory) RestoreState(st MemoryState) {
	m.srv = st.Srv
	m.Reads, m.Writes = st.Reads, st.Writes
	m.SpecReads, m.SpecUseless = st.SpecReads, st.SpecUseless
}

// Reset returns the controller to its freshly constructed state, keeping
// timing and attachments.
func (m *Memory) Reset() {
	m.srv = sim.Server{Strict: m.srv.Strict}
	m.Reads, m.Writes, m.SpecReads, m.SpecUseless = 0, 0, 0, 0
}

// Occupancy returns the controller's busy fraction over total cycles.
func (m *Memory) Occupancy(total sim.Cycle) float64 { return m.srv.Occ.Fraction(total) }

// BusyCycles returns total busy cycles.
func (m *Memory) BusyCycles() sim.Cycle { return m.srv.Occ.Busy }

// Accesses returns the total number of line accesses.
func (m *Memory) Accesses() uint64 { return m.Reads + m.Writes }
