package memsys

import "testing"

// A snapshot must be immutable: writes by the donor after SnapshotChunks
// land in private clones, and a store restored from the snapshot sees the
// frozen values until it writes its own clones.
func TestStoreSnapshotCopyOnWrite(t *testing.T) {
	words := 3 * storeChunkWords
	s := NewStore(words)
	*s.Word(0) = 11
	*s.Word(uint64(storeChunkWords)) = 22 // chunk 1; chunk 2 untouched

	snap := s.SnapshotChunks()

	// Donor write after snapshot clones the chunk; snapshot data intact.
	*s.Word(1) = 99
	if got := snap[0][1]; got != 0 {
		t.Fatalf("snapshot chunk mutated by donor write: word1=%d", got)
	}
	if got := s.Load(0); got != 11 {
		t.Fatalf("donor lost pre-snapshot value: word0=%d", got)
	}

	// Fork restored from snapshot sees frozen values.
	f := NewStore(words)
	f.RestoreShared(snap)
	if got := f.Load(0); got != 11 {
		t.Fatalf("fork word0=%d, want 11", got)
	}
	if got := f.Load(1); got != 0 {
		t.Fatalf("fork sees donor's post-snapshot write: word1=%d", got)
	}
	if got := f.Load(uint64(storeChunkWords)); got != 22 {
		t.Fatalf("fork chunk1 word=%d, want 22", got)
	}

	// Fork write clones; donor and snapshot unaffected.
	*f.Word(0) = 77
	if got := f.Load(0); got != 77 {
		t.Fatalf("fork write lost: word0=%d", got)
	}
	if got := s.Load(0); got != 11 {
		t.Fatalf("fork write leaked into donor: word0=%d", got)
	}
	if got := snap[0][0]; got != 11 {
		t.Fatalf("fork write leaked into snapshot: word0=%d", got)
	}

	// Untouched chunk stays shared (nil in both snapshot and fork).
	if snap[2] != nil {
		t.Fatalf("untouched chunk materialized in snapshot")
	}
	if got := f.Load(uint64(2 * storeChunkWords)); got != 0 {
		t.Fatalf("untouched chunk reads %d, want 0", got)
	}
}

// Two forks of one snapshot must not observe each other's writes.
func TestStoreForkIsolation(t *testing.T) {
	s := NewStore(storeChunkWords)
	*s.Word(5) = 1
	snap := s.SnapshotChunks()

	a := NewStore(storeChunkWords)
	a.RestoreShared(snap)
	b := NewStore(storeChunkWords)
	b.RestoreShared(snap)

	*a.Word(5) = 100
	*b.Word(5) = 200
	if got := a.Load(5); got != 100 {
		t.Fatalf("fork a word5=%d, want 100", got)
	}
	if got := b.Load(5); got != 200 {
		t.Fatalf("fork b word5=%d, want 200", got)
	}
	if got := s.Load(5); got != 1 {
		t.Fatalf("donor word5=%d, want 1", got)
	}
}

func TestStoreReset(t *testing.T) {
	s := NewStore(storeChunkWords)
	*s.Word(3) = 42
	s.SnapshotChunks()
	s.Reset()
	if got := s.Load(3); got != 0 {
		t.Fatalf("after Reset word3=%d, want 0", got)
	}
	// Post-reset writes must not require a clone (shared flags cleared).
	*s.Word(3) = 7
	if got := s.Load(3); got != 7 {
		t.Fatalf("post-reset write lost: word3=%d", got)
	}
}

func TestViewPendingAndReset(t *testing.T) {
	s := NewStore(storeChunkWords)
	v := NewView(s)
	v.Store(1, 10)
	v.Store(2, 20)
	if v.Pending() != 2 {
		t.Fatalf("Pending=%d, want 2", v.Pending())
	}
	v.Flush()
	if v.Pending() != 0 {
		t.Fatalf("Pending after flush=%d, want 0", v.Pending())
	}
	v.SetWriteThrough(true)
	v.Reset()
	v.Store(3, 30)
	if s.Load(3) != 0 {
		t.Fatalf("Reset did not clear write-through mode")
	}
	if v.Pending() != 1 {
		t.Fatalf("Pending=%d, want 1", v.Pending())
	}
}
