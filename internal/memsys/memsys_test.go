package memsys

import (
	"testing"
	"testing/quick"

	"flashsim/internal/arch"
	"flashsim/internal/sim"
)

func TestReadTiming(t *testing.T) {
	m := New(arch.DefaultTiming())
	fw, done := m.Read(100)
	if fw != 114 {
		t.Fatalf("first word at %d, want 114", fw)
	}
	if done != 129 {
		t.Fatalf("done at %d, want 129", done)
	}
	// A second read queues behind the first.
	fw2, done2 := m.Read(100)
	if fw2 != 129+14 || done2 != 129+29 {
		t.Fatalf("queued read = (%d,%d), want (143,158)", fw2, done2)
	}
}

func TestWriteOccupancy(t *testing.T) {
	m := New(arch.DefaultTiming())
	m.Write(0)
	m.Write(0)
	if got := m.BusyCycles(); got != 58 {
		t.Fatalf("busy = %d, want 58", got)
	}
	if occ := m.Occupancy(116); occ != 0.5 {
		t.Fatalf("occupancy = %v, want 0.5", occ)
	}
	if m.Accesses() != 2 || m.Writes != 2 {
		t.Fatalf("accesses = %d writes = %d", m.Accesses(), m.Writes)
	}
}

func TestSpeculativeAccounting(t *testing.T) {
	m := New(arch.DefaultTiming())
	m.SpeculativeRead(0)
	m.SpeculativeRead(50)
	m.MarkUseless()
	if m.SpecReads != 2 || m.SpecUseless != 1 {
		t.Fatalf("spec = %d/%d, want 2/1", m.SpecUseless, m.SpecReads)
	}
	if m.Reads != 2 {
		t.Fatalf("spec reads must count as reads: %d", m.Reads)
	}
}

// Property: service is FIFO and non-overlapping for nondecreasing request
// times.
func TestNoOverlap(t *testing.T) {
	f := func(gaps []uint8) bool {
		m := New(arch.DefaultTiming())
		at := sim.Cycle(0)
		var prevDone sim.Cycle
		for _, g := range gaps {
			at += sim.Cycle(g)
			fw, done := m.Read(at)
			if fw < at+14 || done != fw+15 {
				return false
			}
			if fw-14 < prevDone { // service started before predecessor done
				return false
			}
			prevDone = done
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
