package ideal

import (
	"testing"

	"flashsim/internal/arch"
	"flashsim/internal/cpu"
	"flashsim/internal/memsys"
	"flashsim/internal/network"
	"flashsim/internal/sim"
)

// rig builds a two-node ideal machine by hand (core would be a circular
// import) with scripted reference streams.
type rig struct {
	eng  *sim.Engine
	ctls [2]*Controller
	cpus [2]*cpu.CPU
}

type script struct {
	refs []cpu.Ref
	i    int
}

func (s *script) NextBatch() ([]cpu.Ref, bool) {
	if s.i >= len(s.refs) {
		return nil, false
	}
	b := s.refs[s.i : s.i+1]
	s.i++
	return b, true
}
func (s *script) ReadDone() {}

func newRig(t *testing.T, refs [2][]cpu.Ref) *rig {
	t.Helper()
	cfg := arch.DefaultConfig()
	cfg.Kind = arch.KindIdeal
	cfg.Nodes = 2
	cfg.MemBytesPerNode = 1 << 20
	cfg.Timing = arch.IdealTiming()
	r := &rig{eng: sim.NewEngine()}
	net := network.New(2, 22)
	mem := memsys.NewStore(1 << 18)
	for i := 0; i < 2; i++ {
		m := memsys.New(cfg.Timing)
		c := New(arch.NodeID(i), r.eng, &cfg, m, net.Port(arch.NodeID(i), r.eng))
		p := cpu.New(arch.NodeID(i), r.eng, &cfg, c, memsys.NewView(mem))
		c.Attach(p)
		net.Attach(arch.NodeID(i), c)
		r.ctls[i] = c
		r.cpus[i] = p
		p.SetSource(&script{refs: refs[i]}, nil)
		p.Start()
	}
	if err := r.eng.Run(); err != nil {
		t.Fatal(err)
	}
	return r
}

func TestIdealLocalRead(t *testing.T) {
	r := newRig(t, [2][]cpu.Ref{
		{{Kind: arch.RefRead, Addr: 0x1000}},
		nil,
	})
	snap := r.ctls[0].Snapshot()
	e := snap[arch.Addr(0x1000).Line()]
	if !e.Local || e.Dirty || e.Pending {
		t.Fatalf("dir = %+v, want local clean", e)
	}
	if r.cpus[0].Stats.ReadStall != 24 {
		t.Fatalf("local read latency = %d, want 24", r.cpus[0].Stats.ReadStall)
	}
}

func TestIdealRemoteWriteOwnership(t *testing.T) {
	r := newRig(t, [2][]cpu.Ref{
		nil,
		{{Kind: arch.RefWrite, Addr: 0x2000}}, // node 1 writes node 0's line
	})
	snap := r.ctls[0].Snapshot()
	e := snap[arch.Addr(0x2000).Line()]
	if !e.Dirty || e.Owner != 1 || e.Pending {
		t.Fatalf("dir = %+v, want dirty owner=1", e)
	}
	if r.cpus[1].Cache.Lookup(arch.Addr(0x2000).Line()) != cpu.Modified {
		t.Fatal("writer's cache not Modified")
	}
}

func TestIdealInvalidationOnWrite(t *testing.T) {
	// Node 1 reads (shared), then node 0 writes: node 1 must be
	// invalidated and acks collected.
	r := newRig(t, [2][]cpu.Ref{
		{{Kind: arch.RefWrite, Addr: 0x3000, Busy: 4000}},
		{{Kind: arch.RefRead, Addr: 0x3000}},
	})
	snap := r.ctls[0].Snapshot()
	e := snap[arch.Addr(0x3000).Line()]
	if !e.Dirty || e.Owner != 0 || e.Pending || e.Acks != 0 {
		t.Fatalf("dir = %+v, want dirty owner=0 quiesced", e)
	}
	if r.cpus[1].Cache.Lookup(arch.Addr(0x3000).Line()) != cpu.Invalid {
		t.Fatal("old sharer not invalidated")
	}
	if r.ctls[0].Stats.Invals != 1 {
		t.Fatalf("invals = %d, want 1", r.ctls[0].Stats.Invals)
	}
}

func TestIdealThreeHopRead(t *testing.T) {
	// Node 1 writes node 0's line; node 0 then reads it back: a forwarded
	// request, a sharing writeback, and both nodes end up sharers.
	r := newRig(t, [2][]cpu.Ref{
		{{Kind: arch.RefRead, Addr: 0x4000, Busy: 4000}},
		{{Kind: arch.RefWrite, Addr: 0x4000}},
	})
	e := r.ctls[0].Snapshot()[arch.Addr(0x4000).Line()]
	if e.Dirty || e.Pending {
		t.Fatalf("dir = %+v, want clean after sharing writeback", e)
	}
	if !e.Local {
		t.Fatal("reader (home) not recorded")
	}
	found := false
	for _, s := range e.Sharers {
		if s == 1 {
			found = true
		}
	}
	if !found {
		t.Fatal("old owner not recorded as sharer")
	}
	if r.cpus[1].Cache.Lookup(arch.Addr(0x4000).Line()) != cpu.Shared {
		t.Fatal("old owner's copy not downgraded to Shared")
	}
}
