// Package ideal implements the paper's idealized hardwired node controller:
// every protocol operation completes in zero time, the directory is an
// instantaneous oracle, and all queues are infinite. The only delays are
// data transit and arbitration (Table 3.2's ideal column) plus contention
// for the shared resources both machines model: memory, processor bus, and
// network. The protocol semantics — including NAK/retry races, 3-hop
// forwarding, sharing writebacks and invalidation acknowledgments — match
// the FLASH handler code exactly, which also makes this controller the
// reference oracle for differential tests.
package ideal

import (
	"flashsim/internal/arch"
	"flashsim/internal/cpu"
	"flashsim/internal/memsys"
	"flashsim/internal/network"
	"flashsim/internal/sim"
	"flashsim/internal/trace"
)

// dirEntry is the oracle directory state for one line.
type dirEntry struct {
	dirty   bool
	pending bool
	local   bool
	owner   arch.NodeID
	sharers []arch.NodeID
	acks    int
}

func (e *dirEntry) addSharer(n arch.NodeID) {
	for _, s := range e.sharers {
		if s == n {
			return
		}
	}
	e.sharers = append(e.sharers, n)
}

func (e *dirEntry) removeSharer(n arch.NodeID) {
	for i, s := range e.sharers {
		if s == n {
			e.sharers = append(e.sharers[:i], e.sharers[i+1:]...)
			return
		}
	}
}

// Stats counts ideal-controller activity.
type Stats struct {
	Handled uint64
	Naks    uint64
	Invals  uint64
}

// Controller is one node's idealized controller.
type Controller struct {
	ID  arch.NodeID
	Eng sim.Scheduler
	Cfg *arch.Config
	T   arch.Timing

	Mem *memsys.Memory
	CPU *cpu.CPU
	Net *network.Port

	// Tr, when non-nil, receives a handler event per message processed.
	// Injected per machine (core.Machine.SetTracer), replacing the old
	// race-prone package-global printf hook.
	Tr *trace.Tracer

	dir   map[uint64]*dirEntry
	Stats Stats

	// curTID is the trace id of the handler event currently executing, used
	// to stamp outgoing messages. Best-effort for sends made from deferred
	// intervention callbacks, which run after handle returns.
	curTID uint64
}

// New builds an idealized controller; call Attach to wire the CPU.
func New(id arch.NodeID, eng sim.Scheduler, cfg *arch.Config, mem *memsys.Memory, net *network.Port) *Controller {
	t := cfg.Timing
	return &Controller{
		ID: id, Eng: eng, Cfg: cfg, T: t,
		Mem: mem, Net: net,
		dir: make(map[uint64]*dirEntry),
	}
}

// Attach wires the processor.
func (c *Controller) Attach(p *cpu.CPU) { c.CPU = p }

// Reset returns the controller to its freshly constructed state: an empty
// oracle directory and zeroed counters.
func (c *Controller) Reset() {
	c.dir = make(map[uint64]*dirEntry)
	c.Stats = Stats{}
	c.curTID = 0
}

// DirState is a read-only directory snapshot for invariant checking.
type DirState struct {
	Dirty, Pending, Local bool
	Owner                 arch.NodeID
	Sharers               []arch.NodeID
	Acks                  int
}

// Snapshot copies the oracle directory (lines with any recorded state).
func (c *Controller) Snapshot() map[uint64]DirState {
	out := make(map[uint64]DirState, len(c.dir))
	for l, e := range c.dir {
		out[l] = DirState{
			Dirty: e.dirty, Pending: e.pending, Local: e.local,
			Owner: e.owner, Sharers: append([]arch.NodeID(nil), e.sharers...),
			Acks: e.acks,
		}
	}
	return out
}

func (c *Controller) entry(a arch.Addr) *dirEntry {
	l := a.Line()
	e := c.dir[l]
	if e == nil {
		e = &dirEntry{}
		c.dir[l] = e
	}
	return e
}

// FromProc receives a processor-side message (cpu.Ctl).
func (c *Controller) FromProc(m arch.Msg, at sim.Cycle) {
	c.Eng.At(at+sim.Cycle(c.T.PIInbound), func() { c.handle(m, false) })
}

// FromProcFF satisfies cpu.Ctl; never reached on ideal machines (core
// forces sampling off — the ideal protocol already runs in zero time).
func (c *Controller) FromProcFF(m arch.Msg, at sim.Cycle) {
	panic("ideal: FromProcFF on a machine with sampling disabled")
}

// FromNet receives a network message (network.Sink).
func (c *Controller) FromNet(m arch.Msg) {
	c.Eng.After(sim.Cycle(c.T.NIInbound), func() { c.handle(m, true) })
}

// --- send helpers (all timed from r, the processing instant) ---

// toNet injects a message; data-carrying messages wait for firstData.
func (c *Controller) toNet(r sim.Cycle, m arch.Msg, firstData sim.Cycle) {
	if m.TID == 0 {
		m.TID = c.curTID
	}
	inject := r
	if firstData > inject {
		inject = firstData
	}
	inject += sim.Cycle(c.T.NIOutbound)
	c.Net.Send(inject, m)
}

// toProc delivers a reply to the local processor.
func (c *Controller) toProc(r sim.Cycle, m arch.Msg, firstData sim.Cycle) {
	if m.TID == 0 {
		m.TID = c.curTID
	}
	deliver := r
	if firstData > deliver {
		deliver = firstData
	}
	deliver += sim.Cycle(c.T.PIOutbound) + sim.Cycle(c.T.PIBusWord)
	c.Eng.At(deliver, func() { c.CPU.Deliver(m, c.Eng.Now()) })
}

// nak bounces a request back to its origin.
func (c *Controller) nak(r sim.Cycle, m arch.Msg, viaNet bool) {
	c.Stats.Naks++
	n := arch.Msg{Type: arch.MsgNAK, Addr: m.Addr, Src: c.ID, Dst: m.Src, Req: m.Req, DB: -1}
	if viaNet {
		c.toNet(r, n, 0)
	} else {
		c.toProc(r, n, 0)
	}
}

// reply sends a data reply to the requester, locally or across the mesh.
func (c *Controller) reply(r sim.Cycle, t arch.MsgType, m arch.Msg, aux uint32, firstData sim.Cycle, viaNet bool) {
	n := arch.Msg{Type: t, Addr: m.Addr, Src: c.ID, Dst: m.Src, Req: m.Req, Aux: aux, DB: 0}
	if viaNet {
		c.toNet(r, n, firstData)
	} else {
		c.toProc(r, n, firstData)
	}
}

// handle processes one message in zero time at the current instant.
func (c *Controller) handle(m arch.Msg, viaNet bool) {
	r := c.Eng.Now()
	c.Stats.Handled++
	isHome := c.Cfg.HomeOf(m.Addr) == c.ID
	c.curTID = 0
	if c.Tr.Active() {
		c.curTID = c.Tr.NewID()
		c.Tr.Emit(trace.Event{
			Cycle: uint64(r), Node: int32(c.ID), Kind: trace.KindHandler,
			Addr: uint64(m.Addr), ID: c.curTID, Parent: m.TID,
			Name: m.Type.String(),
		})
	}

	// Processor-side requests for remote addresses forward to the home.
	if !viaNet && !isHome {
		switch m.Type {
		case arch.MsgGET, arch.MsgGETX, arch.MsgWB, arch.MsgRPL:
			fwd := m
			fwd.Dst = c.Cfg.HomeOf(m.Addr)
			data := sim.Cycle(0)
			if m.Type == arch.MsgWB {
				data = r
			}
			c.toNet(r, fwd, data)
			return
		}
	}

	switch m.Type {
	case arch.MsgGET:
		c.get(r, m, viaNet)
	case arch.MsgGETX:
		c.getx(r, m, viaNet)
	case arch.MsgWB:
		c.writeback(r, m)
	case arch.MsgRPL:
		c.entry(m.Addr).removeSharer(m.Src)
		if !viaNet {
			c.entry(m.Addr).local = false
		}
	case arch.MsgFwdGET:
		c.fwdGet(r, m, false)
	case arch.MsgFwdGETX:
		c.fwdGet(r, m, true)
	case arch.MsgINVAL:
		c.CPU.Intervene(arch.MsgPIInval, m.Addr, r, func(arch.MsgType, sim.Cycle) {})
		c.toNet(r, arch.Msg{Type: arch.MsgIACK, Addr: m.Addr, Src: c.ID, Dst: m.Src, DB: -1}, 0)
	case arch.MsgPUT, arch.MsgPUTX, arch.MsgNAK:
		// Replies arriving at the requester: hand to the processor.
		data := sim.Cycle(0)
		if m.Type != arch.MsgNAK {
			data = r
		}
		c.toProc(r, m, data)
	case arch.MsgSWB:
		c.Mem.Write(r)
		e := c.entry(m.Addr)
		if e.dirty && e.owner == m.Src {
			e.dirty, e.pending = false, false
			c.noteSharer(e, m.Src)
			c.noteSharer(e, m.Req)
		}
	case arch.MsgXFER:
		e := c.entry(m.Addr)
		if e.dirty && e.owner == m.Src {
			e.owner = m.Req
			e.pending = false
		}
	case arch.MsgPCLR:
		e := c.entry(m.Addr)
		if e.dirty && e.owner == m.Src {
			e.pending = false
		}
	case arch.MsgIACK:
		e := c.entry(m.Addr)
		e.acks--
		if e.acks <= 0 {
			e.acks = 0
			e.pending = false
		}
	default:
		panic("ideal: unexpected message " + m.Type.String())
	}
}

func (c *Controller) noteSharer(e *dirEntry, n arch.NodeID) {
	if n == c.ID {
		e.local = true
	} else {
		e.addSharer(n)
	}
}

// get serves a read request at the home node.
func (c *Controller) get(r sim.Cycle, m arch.Msg, viaNet bool) {
	e := c.entry(m.Addr)
	switch {
	case e.pending:
		c.nak(r, m, viaNet)
	case e.dirty && e.owner == c.ID:
		// Dirty in our own processor cache: retrieve and downgrade. Pending
		// guards the window (the flexible machine's PP serializes this
		// naturally; the oracle must do it explicitly).
		e.pending = true
		c.CPU.Intervene(arch.MsgPIDowngr, m.Addr, r+sim.Cycle(c.T.PIOutbound),
			func(resp arch.MsgType, first sim.Cycle) {
				now := c.Eng.Now()
				e.pending = false
				if resp != arch.MsgPCData {
					c.nak(now, m, viaNet)
					return
				}
				c.Mem.Write(now)
				e.dirty = false
				e.local = true // our processor keeps the downgraded copy
				c.noteSharer(e, m.Src)
				c.reply(now, arch.MsgPUT, m, 1, first, viaNet)
			})
	case e.dirty:
		if e.owner == m.Src {
			c.nak(r, m, viaNet) // requester's own writeback is in flight
			return
		}
		e.pending = true
		c.toNet(r, arch.Msg{Type: arch.MsgFwdGET, Addr: m.Addr, Src: c.ID, Dst: e.owner, Req: m.Src, DB: -1}, 0)
	default:
		c.noteSharer(e, m.Src)
		fw, _ := c.Mem.Read(r)
		c.reply(r, arch.MsgPUT, m, 0, fw, viaNet)
	}
}

// getx serves a write (read-exclusive) request at the home node.
func (c *Controller) getx(r sim.Cycle, m arch.Msg, viaNet bool) {
	e := c.entry(m.Addr)
	switch {
	case e.pending:
		c.nak(r, m, viaNet)
	case e.dirty && e.owner == c.ID && m.Src == c.ID:
		c.nak(r, m, viaNet) // our writeback is in flight
	case e.dirty && e.owner == c.ID:
		e.pending = true
		c.CPU.Intervene(arch.MsgPIFlush, m.Addr, r+sim.Cycle(c.T.PIOutbound),
			func(resp arch.MsgType, first sim.Cycle) {
				now := c.Eng.Now()
				e.pending = false
				if resp != arch.MsgPCData {
					c.nak(now, m, viaNet)
					return
				}
				c.Mem.Write(now)
				e.local = false
				e.owner = m.Src
				c.reply(now, arch.MsgPUTX, m, 1, first, viaNet)
			})
	case e.dirty:
		if e.owner == m.Src {
			c.nak(r, m, viaNet)
			return
		}
		e.pending = true
		c.toNet(r, arch.Msg{Type: arch.MsgFwdGETX, Addr: m.Addr, Src: c.ID, Dst: e.owner, Req: m.Src, DB: -1}, 0)
	default:
		// Invalidate all sharers except the requester. The zero-occupancy
		// controller issues every invalidation at the same instant.
		acks := 0
		for _, s := range e.sharers {
			if s == m.Src {
				continue
			}
			c.Stats.Invals++
			c.toNet(r, arch.Msg{Type: arch.MsgINVAL, Addr: m.Addr, Src: c.ID, Dst: s, Req: m.Src, DB: -1}, 0)
			acks++
		}
		e.sharers = e.sharers[:0]
		if e.local && m.Src != c.ID {
			c.CPU.Intervene(arch.MsgPIInval, m.Addr, r, func(arch.MsgType, sim.Cycle) {})
			e.local = false
		}
		if m.Src == c.ID {
			e.local = true
		}
		e.dirty = true
		e.owner = m.Src
		e.acks = acks
		e.pending = acks > 0
		fw, _ := c.Mem.Read(r)
		c.reply(r, arch.MsgPUTX, m, 0, fw, viaNet)
	}
}

// writeback retires dirty data to memory at the home node.
func (c *Controller) writeback(r sim.Cycle, m arch.Msg) {
	c.Mem.Write(r)
	e := c.entry(m.Addr)
	if e.dirty && e.owner == m.Src {
		e.dirty = false
		if m.Src == c.ID {
			e.local = false
		}
		if e.acks == 0 {
			e.pending = false
		}
	}
}

// fwdGet handles a forwarded request at the (believed) dirty node.
func (c *Controller) fwdGet(r sim.Cycle, m arch.Msg, exclusive bool) {
	kind := arch.MsgPIDowngr
	if exclusive {
		kind = arch.MsgPIFlush
	}
	c.CPU.Intervene(kind, m.Addr, r+sim.Cycle(c.T.PIOutbound),
		func(resp arch.MsgType, first sim.Cycle) {
			now := c.Eng.Now()
			if resp != arch.MsgPCData {
				// Already written back: clear home's pending, bounce requester.
				c.toNet(now, arch.Msg{Type: arch.MsgPCLR, Addr: m.Addr, Src: c.ID, Dst: m.Src, DB: -1}, 0)
				c.deliverOrSend(now, arch.Msg{Type: arch.MsgNAK, Addr: m.Addr, Src: c.ID, Dst: m.Req, DB: -1}, 0)
				return
			}
			t := arch.MsgPUT
			home := arch.MsgSWB
			if exclusive {
				t, home = arch.MsgPUTX, arch.MsgXFER
			}
			c.deliverOrSend(now, arch.Msg{Type: t, Addr: m.Addr, Src: c.ID, Dst: m.Req, Req: m.Req, Aux: 3, DB: 0}, first)
			homeData := first
			if exclusive {
				homeData = 0 // XFER carries no data
			}
			c.toNet(now, arch.Msg{Type: home, Addr: m.Addr, Src: c.ID, Dst: m.Src, Req: m.Req, DB: -1}, homeData)
		})
}

// deliverOrSend routes a reply to the requester: across the network, or
// straight to our own processor when we are the requester (a local miss
// that was dirty in our cache region's forwarded path).
func (c *Controller) deliverOrSend(r sim.Cycle, m arch.Msg, firstData sim.Cycle) {
	if m.Dst == c.ID {
		c.toProc(r, m, firstData)
		return
	}
	c.toNet(r, m, firstData)
}
