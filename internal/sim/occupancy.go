package sim

// OccupancyMeter accumulates the number of cycles a resource was busy, for
// the "memory occupancy" and "PP occupancy" statistics of the paper
// (Tables 4.1 and 4.2). A resource marks the half-open busy interval
// [start, end) with AddBusy.
type OccupancyMeter struct {
	Busy Cycle
}

// AddBusy records d busy cycles.
func (m *OccupancyMeter) AddBusy(d Cycle) { m.Busy += d }

// Fraction returns busy/total, in [0,1]; total==0 yields 0.
func (m *OccupancyMeter) Fraction(total Cycle) float64 {
	if total == 0 {
		return 0
	}
	return float64(m.Busy) / float64(total)
}
