package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestOccupancyMeterAccumulates(t *testing.T) {
	var m OccupancyMeter
	if m.Busy != 0 {
		t.Fatalf("zero value Busy = %d", m.Busy)
	}
	m.AddBusy(25)
	m.AddBusy(25)
	if m.Busy != 50 {
		t.Fatalf("Busy = %d, want 50", m.Busy)
	}
	if got := m.Fraction(100); got != 0.5 {
		t.Fatalf("Fraction(100) = %v, want 0.5", got)
	}
	m.AddBusy(0)
	if m.Busy != 50 {
		t.Fatalf("AddBusy(0) changed Busy to %d", m.Busy)
	}
}

func TestOccupancyMeterEdges(t *testing.T) {
	var m OccupancyMeter
	if got := m.Fraction(100); got != 0 {
		t.Fatalf("idle Fraction = %v, want 0", got)
	}
	m.AddBusy(10)
	if got := m.Fraction(0); got != 0 {
		t.Fatalf("Fraction(0) = %v, want 0 (no divide-by-zero)", got)
	}
	if got := m.Fraction(10); got != 1 {
		t.Fatalf("saturated Fraction = %v, want 1", got)
	}
	// A resource busier than the measured window (overlapping reservations)
	// reports > 1 rather than clamping — callers rely on it for detecting
	// double-counted intervals.
	if got := m.Fraction(5); got != 2 {
		t.Fatalf("oversubscribed Fraction = %v, want 2", got)
	}
}

// Property: Fraction is Busy/total for any split of busy intervals — the
// meter is order- and granularity-independent.
func TestOccupancyMeterSplitInvariance(t *testing.T) {
	f := func(chunks []uint16, total uint32) bool {
		var whole, split OccupancyMeter
		var sum Cycle
		for _, c := range chunks {
			split.AddBusy(Cycle(c))
			sum += Cycle(c)
		}
		whole.AddBusy(sum)
		a, b := whole.Fraction(Cycle(total)), split.Fraction(Cycle(total))
		return a == b && (total == 0 || !math.Signbit(a))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
