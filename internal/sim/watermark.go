package sim

import (
	"sync"
	"time"
)

// This file is the sharded engine's watermark synchronization scheme: the
// conservative distance-aware replacement for the uniform-window full
// barrier in sharded.go.
//
// Protocol. Each shard a maintains a monotone frontier fr[a] (its
// "sent-through" watermark): every event at a cycle < fr[a] has executed,
// and no send will ever originate from a cycle < fr[a]. Because a delivery
// from a to b takes at least the pair lookahead L[a][b] (the per-(src,dst)
// matrix from SetLookahead, uniform window otherwise), every arrival at b
// lands at or beyond fr[a] + L[a][b]. Shard b may therefore execute every
// event strictly below its horizon
//
//	hz[b] = min over a != b of fr[a] + L[a][b]
//
// without ever seeing a late arrival — shards synchronize exactly as much
// as the distance model demands, instead of rendezvousing at every W
// cycles. Deliveries stage in the sender's per-destination outbox during a
// burst and are batch-appended to the destination's mailbox (one lock per
// pair touched); the arrival bound above guarantees everything appended
// while a burst runs lands at or beyond the receiver's horizon, so bursts
// never need to re-check their mailboxes mid-flight.
//
// Scheduling is cooperative rather than free-running: a small worker pool
// pulls (shard, horizon) bursts from a queue, and a completed burst
// records its shard's new frontier (= the burst horizon) in the scheduler
// under the scheduler lock. When the pool quiesces the last idle worker
// runs decide(), which sweeps the nonempty mailboxes, snapshots next-event
// times, and solves the horizons:
//
//   - When the lookahead matrix satisfies the triangle inequality (uniform
//     and mesh both do), a null message relayed through an intermediate
//     shard can never beat the direct pair bound, so the Chandy-Misra-Bryant
//     fixpoint collapses to a closed form over next-event times —
//     hz[b] = min(cap, next[b]+rt[b], min over event-holding a != b of
//     next[a] + L[a][b]), where rt[b] is b's minimum round trip through any
//     peer, bounding echoes of b's own sends — solved in one O(n) pass
//     (min/second-min for uniform lookahead).
//   - A non-metric matrix falls back to the iterative Gauss-Seidel fixpoint
//     over the persistent frontier array, with idle shards promising
//     silence up to min(horizon, next event).
//
// decide() then schedules every shard whose horizon uncovered work, and
// fails over to the store-visibility gate, the cycle limit, or
// termination. Progress: whenever events remain below the cap the
// earliest-event shard is always schedulable (its bound exceeds its own
// next-event time by at least the minimum lookahead), so either work is
// scheduled, the gate advances (one flush per occupied window, mirroring
// the sequential engine's flush-on-window-entry), the limit fires, or the
// run is done — an idle shard with no traffic can never stall its peers.
//
// Store visibility. The memsys view flush must stay a global quantum (the
// torture tests pin same-window same-word cross-node writes resolved by
// node-ordered flushing), so the gate wmGate caps every horizon at the next
// unflushed window boundary. decide() advances it only when the pool is
// quiescent and every frontier has reached the gate — at that point no
// shard is executing, every event below the boundary has run, and the
// flush is race-free and bit-identical in content and order to the
// sequential engine's.
//
// Determinism. Horizons only gate WHEN an event may run, never its heap
// order: the 64-bit (cycle, key) event keys fully determine per-shard
// dispatch order, mailbox drain order is irrelevant (keys are unique), and
// flush points are fixed by the quantum. Worker count and goroutine
// interleaving cannot leak into simulated behaviour.

// SyncMode selects how the sharded engine's shards synchronize.
type SyncMode uint8

const (
	// SyncBarrier is the uniform-window scheme: all shards rendezvous at a
	// full spin-barrier every lookahead window (sharded.go).
	SyncBarrier SyncMode = iota
	// SyncWatermark is the per-pair watermark scheme described above.
	SyncWatermark
)

func (m SyncMode) String() string {
	if m == SyncWatermark {
		return "watermark"
	}
	return "barrier"
}

// noCap is the horizon cap when neither a cycle limit nor a store
// visibility gate applies: far beyond any simulated time, small enough
// that adding a lookahead can never overflow.
const noCap = Cycle(1) << 62

// wmState is one watermark Run's scheduler state. All fields are guarded
// by mu; workers sleep on cond when peers are still bursting.
type wmState struct {
	mu      sync.Mutex
	cond    *sync.Cond
	tasks   []wmTask
	head    int // next unclaimed task
	running int // bursts in flight
	done    bool
	err     error
}

// wmTask is one scheduled burst: run shard up to (excluding) hz.
type wmTask struct {
	shard int
	hz    Cycle
}

// runWatermark is Run's watermark-mode body; see the file comment.
func (e *ShardedEngine) runWatermark() error {
	p := e.poolSize()
	if e.flush != nil && e.wmGate == 0 {
		e.wmGate = e.window
	}
	n := len(e.shards)
	if e.frS == nil || len(e.frS) != n {
		e.frS = make([]Cycle, n)
		e.hzS = make([]Cycle, n)
		e.nextS = make([]Cycle, n)
		e.hasS = make([]bool, n)
	}
	prof := e.profOn
	var start time.Time
	if prof {
		e.profWorkers = p
		e.horizonNS = make([]int64, p)
		start = time.Now()
	}
	st := &wmState{}
	st.cond = sync.NewCond(&st.mu)
	e.running = true
	var wg sync.WaitGroup
	for w := 1; w < p; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			e.wmWorker(w, st, start)
		}(w)
	}
	e.wmWorker(0, st, start)
	wg.Wait()
	e.running = false
	if prof {
		e.runNS += time.Since(start).Nanoseconds()
	}
	return st.err
}

// wmWorker is one pool worker: claim bursts while they exist, sleep while
// peers burst, and run decide() when the whole pool quiesces. The chained
// timestamp starts at the run's start (not the goroutine's), so a worker's
// scheduling delay on an oversubscribed host is charged to horizon wait
// rather than falling out of the attribution.
func (e *ShardedEngine) wmWorker(w int, st *wmState, start time.Time) {
	prof := e.profOn
	mark := start
	if prof {
		e.horizonNS[w] += lap(&mark)
	}
	st.mu.Lock()
	for {
		if st.done {
			if prof {
				e.horizonNS[w] += lap(&mark)
			}
			st.mu.Unlock()
			return
		}
		if st.head < len(st.tasks) {
			t := st.tasks[st.head]
			st.head++
			st.running++
			st.mu.Unlock()
			s := e.shards[t.shard]
			e.burst(s, t.hz)
			if prof {
				s.execNS += lap(&mark)
			}
			st.mu.Lock()
			st.running--
			// Record the frontier the burst committed through. A plain
			// write under the scheduler lock decide() already holds when it
			// reads — the burst's mailbox appends happen-before via this
			// same lock. A stopped shard publishes nothing: it did not
			// commit through hz.
			if !s.stopped && t.hz > e.frS[t.shard] {
				e.frS[t.shard] = t.hz
				if prof {
					s.pubs++
				}
			}
			if e.stopReq.Load() && !st.done {
				// Bursts in flight finish; nothing new is scheduled.
				st.done = true
				st.cond.Broadcast()
			}
			continue
		}
		if st.running > 0 {
			// Peers are still bursting and may reveal more work.
			e.wmWaitOps++
			if prof {
				e.horizonNS[w] += lap(&mark)
			}
			st.cond.Wait()
			if prof {
				e.horizonNS[w] += lap(&mark)
			}
			continue
		}
		// Pool quiescent: no tasks, no bursts in flight.
		if prof {
			e.horizonNS[w] += lap(&mark)
		}
		e.decide(st)
		if prof {
			e.solveNS += lap(&mark)
		}
	}
}

// drainInbox swaps the shard's mailbox empty and pushes its deliveries into
// the heap. Heap order is (at, key), so drain timing and order never affect
// dispatch order. Only a quiescent decide() calls it.
func (s *Shard) drainInbox(prof bool) {
	s.inMu.Lock()
	in := s.inbox
	s.inbox = s.inboxSpare[:0]
	s.inMu.Unlock()
	for i := range in {
		s.push(event{at: in[i].at, key: in[i].key, fn: in[i].fn})
	}
	if prof && len(in) > 0 {
		s.drains++
	}
	clear(in)
	s.inboxSpare = in[:0]
}

// burst executes every event strictly below the horizon hz and
// batch-flushes staged deliveries into peer mailboxes. The horizon came
// from next-event times shards cannot retract while quiescent, and decide()
// already swept every mailbox before scheduling, so the heap holds all
// events below hz; arrivals appended by concurrent bursts necessarily land
// at or beyond hz and are swept at the next decide. The shard's frontier
// advance is recorded by the worker loop under the scheduler lock once the
// burst completes.
func (e *ShardedEngine) burst(s *Shard, hz Cycle) {
	prof := e.profOn
	var before uint64
	if prof {
		before = s.executed
	}
	s.runWin(hz, e.limit)
	if prof {
		s.windows++
		if d := s.executed - before; d == 0 {
			s.emptyWins++
		} else if d > s.maxEvWindow {
			s.maxEvWindow = d
		}
	}
	for dst, box := range s.outbox {
		if len(box) == 0 {
			continue
		}
		d := e.shards[dst]
		d.inMu.Lock()
		d.inbox = append(d.inbox, box...)
		d.inMu.Unlock()
		if prof {
			s.inFlushes++
			if s.sent != nil {
				s.sent[dst] += uint64(len(box))
			}
		}
		clear(box)
		s.outbox[dst] = box[:0]
	}
}

// decide advances the run when the pool is quiescent: exactly one worker
// runs it at a time, with the scheduler lock held and no burst in flight,
// so it may touch every shard freely. It either schedules newly safe
// bursts, advances the store-visibility gate (flushing once per occupied
// window), or ends the run (drained, stopped, or cycle limit).
func (e *ShardedEngine) decide(st *wmState) {
	prof := e.profOn
	if e.stopReq.Load() {
		st.done = true
		st.cond.Broadcast()
		return
	}
	n := len(e.shards)
	// Sweep parked mailbox arrivals into the heaps so next-event times are
	// exact, and find the min / second-min next-event times. The pool is
	// quiescent and every producer released the scheduler lock after its
	// burst, so a plain length read of a peer mailbox is ordered; only
	// nonempty mailboxes pay a lock. m1/a1 is the earliest event anywhere,
	// m2 the earliest on any other shard.
	pending := false
	m1, m2 := noCap, noCap
	a1 := -1
	for i, s := range e.shards {
		if len(s.inbox) > 0 {
			s.drainInbox(prof)
		}
		t, ok := s.nextAt()
		e.nextS[i], e.hasS[i] = t, ok && !s.stopped
		if !e.hasS[i] {
			continue
		}
		pending = true
		if t < m1 || a1 < 0 {
			m1, m2, a1 = t, m1, i
		} else if t < m2 {
			m2 = t
		}
	}
	if prof {
		e.wmSolves++
		e.wmSolveOp += uint64(n) // sweep + next-event scan
	}
	if !pending {
		st.done = true
		st.cond.Broadcast()
		return
	}
	cap := noCap
	if e.limit != 0 {
		cap = e.limit + 1
	}
	if e.limit != 0 && m1 > e.limit {
		st.done, st.err = true, ErrLimit
		st.cond.Broadcast()
		return
	}
	if e.flush != nil && m1 >= e.wmGate {
		// Every event below the gate has executed and no shard is running:
		// the flush is race-free and content-identical to the sequential
		// engine's flush on entering m1's window.
		e.flush()
		win := m1 / e.window
		e.curWin = win
		e.wmGate = (win + 1) * e.window
		e.wmGateAdv++
	}
	eff := cap
	if e.flush != nil && e.wmGate < eff {
		eff = e.wmGate
	}
	if e.look != nil && !e.look.tri {
		e.decideFixpoint(st, eff, m1)
		return
	}
	// Direct solve. With a triangle-inequality matrix a relayed promise
	// never beats the direct pair bound, and committed frontiers never
	// exceed a holder's next-event time, so the null-message fixpoint is
	// simply
	//
	//	hz[b] = min(eff, next[b]+rt[b], min over holders a != b of next[a]+L[a][b])
	//
	// where rt[b] is b's minimum round trip through any peer (2W uniform).
	// The self term bounds echo chains rooted at b's OWN events: an event b
	// executes at t >= next[b] can trigger a peer delivery whose handler
	// sends back to b, landing no earlier than t + rt[b] (longer relays
	// b->c->..->b fold onto the best two-hop round trip by the triangle
	// inequality) — exactly the bound the iterative fixpoint enforces by
	// stalling holders' frontiers at their next-event times. Without it a
	// shard whose peers hold no events would see an unbounded horizon,
	// execute far-future events, and later receive the echo below its
	// committed frontier. Uniform lookahead reduces the holder scan to
	// min/second-min in O(1) per shard.
	st.tasks = st.tasks[:0]
	st.head = 0
	steps := 0
	for b := range e.shards {
		if !e.hasS[b] {
			continue
		}
		var hz Cycle
		if e.look == nil {
			steps++
			bound := m1
			if b == a1 {
				bound = m2
			}
			hz = bound + e.window
			if n > 1 {
				if v := e.nextS[b] + 2*e.window; v < hz {
					hz = v
				}
			}
		} else {
			hz = e.nextS[b] + e.look.rt[b]
			for a := range e.shards {
				if a == b || !e.hasS[a] {
					continue
				}
				steps++
				if v := e.nextS[a] + e.look.at(a, b); v < hz {
					hz = v
				}
			}
		}
		if hz > eff {
			hz = eff
		}
		if e.nextS[b] < hz {
			st.tasks = append(st.tasks, wmTask{shard: b, hz: hz})
		}
	}
	if prof {
		e.wmSolveOp += uint64(steps)
	}
	if len(st.tasks) == 0 {
		// Unreachable: the m1 holder's bound is at least min(m2+L, m1+rt),
		// both > m1, and the limit/gate checks above ensured eff > m1.
		panic("sim: watermark scheduler stalled with pending work (lookahead bug)")
	}
	st.cond.Broadcast()
}

// decideFixpoint is decide's fallback for lookahead matrices that violate
// the triangle inequality: a multi-hop chain of promises may then bound a
// horizon tighter than any direct pair, so horizons are solved iteratively
// over the persistent frontier array. Each round lets every shard promise
// silence up to min(horizon, next event) — Chandy-Misra-Bryant null
// messages solved centrally — and Gauss-Seidel iteration (each shard sees
// its predecessors' updated frontiers) converges in a handful of rounds
// because event-holding shards jump straight to their next-event time.
// minNext (= the earliest event anywhere) is below eff: decide already
// handled the limit and the gate.
func (e *ShardedEngine) decideFixpoint(st *wmState, eff, minNext Cycle) {
	prof := e.profOn
	n := len(e.shards)
	for {
		changed := false
		for b := range e.shards {
			hz := eff
			for a := range e.shards {
				if a == b {
					continue
				}
				if v := e.frS[a] + e.look.at(a, b); v < hz {
					hz = v
				}
			}
			e.hzS[b] = hz
			target := hz
			if e.hasS[b] && e.nextS[b] < target {
				target = e.nextS[b]
			}
			if target > e.frS[b] {
				e.frS[b] = target
				changed = true
			}
		}
		if prof {
			e.wmSolveOp += uint64(n)
		}
		if !changed {
			break
		}
	}
	st.tasks = st.tasks[:0]
	st.head = 0
	for b := range e.shards {
		if e.hasS[b] && e.nextS[b] < e.hzS[b] {
			st.tasks = append(st.tasks, wmTask{shard: b, hz: e.hzS[b]})
		}
	}
	if len(st.tasks) == 0 {
		// Unreachable: at the fixpoint the minNext holder's frontier stalls
		// at minNext < eff, so every other frontier exceeds minNext's pair
		// bound and the holder's own horizon exceeds minNext.
		panic("sim: watermark scheduler stalled with pending work (lookahead bug)")
	}
	st.cond.Broadcast()
}
