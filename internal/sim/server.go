package sim

import "fmt"

// Server is a reservation-based single-server FIFO resource: callers reserve
// service intervals and receive start/end times without needing events. This
// models resources like the memory controller and the processor bus exactly
// (single server, FIFO, non-preemptive) while keeping the event count low.
//
// Reservations must be made in nondecreasing request-time order, which the
// event engine guarantees for calls made at the dispatching event's own
// time. Callers that run ahead of the clock (the CPU model executes a
// chunk of references at virtual times beyond Now) can violate the order;
// the server then still serializes in call order, which is the intended
// FIFO semantics. Set Strict to assert the documented order in tests and
// debug runs.
type Server struct {
	busyUntil Cycle
	lastAt    Cycle
	Occ       OccupancyMeter
	Jobs      uint64

	// Strict makes Reserve panic when a reservation's request time precedes
	// the previous call's, turning the documented invariant into an
	// executable assertion. Off by default: checking is for tests and
	// debugging, not for production runs.
	Strict bool
}

// Reserve books dur cycles of service starting no earlier than at. It
// returns the service start and end times.
func (s *Server) Reserve(at Cycle, dur Cycle) (start, end Cycle) {
	if s.Strict && at < s.lastAt {
		panic(fmt.Sprintf("sim: Server.Reserve request time %d precedes previous request %d", at, s.lastAt))
	}
	s.lastAt = at
	start = at
	if s.busyUntil > start {
		start = s.busyUntil
	}
	end = start + dur
	s.busyUntil = end
	s.Occ.AddBusy(dur)
	s.Jobs++
	return start, end
}

// BusyUntil reports when the server frees up.
func (s *Server) BusyUntil() Cycle { return s.busyUntil }
