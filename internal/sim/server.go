package sim

// Server is a reservation-based single-server FIFO resource: callers reserve
// service intervals and receive start/end times without needing events. This
// models resources like the memory controller and the processor bus exactly
// (single server, FIFO, non-preemptive) while keeping the event count low.
//
// Reservations must be made in nondecreasing request-time order, which the
// event engine guarantees for calls made during event dispatch.
type Server struct {
	busyUntil Cycle
	Occ       OccupancyMeter
	Jobs      uint64
}

// Reserve books dur cycles of service starting no earlier than at. It
// returns the service start and end times.
func (s *Server) Reserve(at Cycle, dur Cycle) (start, end Cycle) {
	start = at
	if s.busyUntil > start {
		start = s.busyUntil
	}
	end = start + dur
	s.busyUntil = end
	s.Occ.AddBusy(dur)
	s.Jobs++
	return start, end
}

// BusyUntil reports when the server frees up.
func (s *Server) BusyUntil() Cycle { return s.busyUntil }
