// Package sim provides the deterministic discrete-event simulation kernel
// that underlies the FLASH system simulator. Components schedule closures at
// future cycle times; the engine runs them in (cycle, insertion-order) order,
// so simulations are bit-for-bit reproducible across runs.
//
// All times are expressed in 10 ns system clock cycles (the 100 MHz MAGIC
// clock of the paper).
package sim

import (
	"container/heap"
	"fmt"
)

// Cycle is a point in simulated time, in 10 ns system clock cycles.
type Cycle uint64

// Event is a scheduled callback.
type event struct {
	at  Cycle
	seq uint64 // tie-break: FIFO among events at the same cycle
	fn  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// Engine is a discrete-event simulator. The zero value is not usable; create
// one with NewEngine.
type Engine struct {
	now     Cycle
	seq     uint64
	events  eventHeap
	stopped bool

	// Executed counts events dispatched since construction; useful as a
	// progress and runaway-simulation guard.
	Executed uint64

	// Limit, when nonzero, aborts Run with ErrLimit once the clock passes it.
	Limit Cycle
}

// ErrLimit is returned by Run when Engine.Limit is exceeded.
var ErrLimit = fmt.Errorf("sim: cycle limit exceeded")

// NewEngine returns an empty engine at cycle 0.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current simulated cycle.
func (e *Engine) Now() Cycle { return e.now }

// At schedules fn to run at absolute cycle t. Scheduling in the past (t <
// Now) panics: it always indicates a model bug.
func (e *Engine) At(t Cycle, fn func()) {
	if t < e.now {
		panic(fmt.Sprintf("sim: schedule at %d before now %d", t, e.now))
	}
	e.seq++
	heap.Push(&e.events, event{at: t, seq: e.seq, fn: fn})
}

// After schedules fn to run d cycles from now.
func (e *Engine) After(d Cycle, fn func()) { e.At(e.now+d, fn) }

// Stop makes Run return after the current event completes.
func (e *Engine) Stop() { e.stopped = true }

// Stopped reports whether Stop has been called.
func (e *Engine) Stopped() bool { return e.stopped }

// Run dispatches events until the queue drains, Stop is called, or the cycle
// limit is exceeded.
func (e *Engine) Run() error {
	e.stopped = false
	for len(e.events) > 0 && !e.stopped {
		ev := heap.Pop(&e.events).(event)
		if ev.at > e.now {
			e.now = ev.at
		}
		if e.Limit != 0 && e.now > e.Limit {
			return ErrLimit
		}
		e.Executed++
		ev.fn()
	}
	return nil
}

// Pending reports the number of undispatched events.
func (e *Engine) Pending() int { return len(e.events) }
