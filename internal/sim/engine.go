// Package sim provides the deterministic discrete-event simulation kernel
// that underlies the FLASH system simulator. Components schedule closures at
// future cycle times; the engine runs them in (cycle, insertion-order) order,
// so simulations are bit-for-bit reproducible across runs.
//
// All times are expressed in 10 ns system clock cycles (the 100 MHz MAGIC
// clock of the paper).
//
// The event queue is a monomorphic binary min-heap over []event — no
// container/heap, no interface boxing, no per-event allocations — plus a
// same-cycle FIFO: events scheduled for the current cycle bypass the heap
// entirely and run in insertion order after any heap events already queued
// for that cycle (which, having been scheduled earlier, precede them in the
// global (cycle, insertion) order).
package sim

import "fmt"

// Cycle is a point in simulated time, in 10 ns system clock cycles.
type Cycle uint64

// Event is a scheduled callback.
type event struct {
	at  Cycle
	seq uint64 // tie-break: FIFO among events at the same cycle
	fn  func()
}

// Engine is a discrete-event simulator. The zero value is not usable; create
// one with NewEngine.
type Engine struct {
	now     Cycle
	seq     uint64
	heap    []event  // future events, min-ordered by (at, seq)
	fifo    []func() // events scheduled for the current cycle, in order
	fifoPos int      // next undispatched fifo entry
	stopped bool

	// Executed counts events dispatched since construction; useful as a
	// progress and runaway-simulation guard.
	Executed uint64

	// Limit, when nonzero, aborts Run with ErrLimit once the clock passes it.
	Limit Cycle
}

// ErrLimit is returned by Run when Engine.Limit is exceeded.
var ErrLimit = fmt.Errorf("sim: cycle limit exceeded")

// NewEngine returns an empty engine at cycle 0.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current simulated cycle.
func (e *Engine) Now() Cycle { return e.now }

// At schedules fn to run at absolute cycle t. Scheduling in the past (t <
// Now) panics: it always indicates a model bug. Scheduling at exactly Now
// takes the FIFO fast path: no heap sift, no seq assignment.
func (e *Engine) At(t Cycle, fn func()) {
	if t <= e.now {
		if t == e.now {
			e.fifo = append(e.fifo, fn)
			return
		}
		panic(fmt.Sprintf("sim: schedule at %d before now %d", t, e.now))
	}
	e.seq++
	e.push(event{at: t, seq: e.seq, fn: fn})
}

// After schedules fn to run d cycles from now.
func (e *Engine) After(d Cycle, fn func()) { e.At(e.now+d, fn) }

// Stop makes Run return after the current event completes.
func (e *Engine) Stop() { e.stopped = true }

// Stopped reports whether Stop has been called.
func (e *Engine) Stopped() bool { return e.stopped }

// Run dispatches events until the queue drains, Stop is called, or the cycle
// limit is exceeded. The limit is checked only when the clock advances (and
// once on entry, for engines already past it): an event at exactly Limit
// still runs; the first advance beyond it aborts.
func (e *Engine) Run() error {
	e.stopped = false
	if e.Limit != 0 && e.now > e.Limit {
		return ErrLimit
	}
	for !e.stopped {
		// Heap events at the current cycle were scheduled before any fifo
		// entry for it, so they dispatch first.
		if len(e.heap) > 0 && e.heap[0].at == e.now {
			fn := e.pop()
			e.Executed++
			fn()
			continue
		}
		if e.fifoPos < len(e.fifo) {
			fn := e.fifo[e.fifoPos]
			e.fifo[e.fifoPos] = nil
			e.fifoPos++
			if e.fifoPos >= 1024 && e.fifoPos*2 >= len(e.fifo) {
				// Compact so a chain of events that keeps scheduling at the
				// current cycle reuses the buffer instead of growing it.
				n := copy(e.fifo, e.fifo[e.fifoPos:])
				clear(e.fifo[n:])
				e.fifo = e.fifo[:n]
				e.fifoPos = 0
			}
			e.Executed++
			fn()
			continue
		}
		// Current cycle drained: recycle the fifo buffer and advance.
		e.fifo = e.fifo[:0]
		e.fifoPos = 0
		if len(e.heap) == 0 {
			return nil
		}
		e.now = e.heap[0].at
		if e.Limit != 0 && e.now > e.Limit {
			return ErrLimit
		}
	}
	return nil
}

// Pending reports the number of undispatched events.
func (e *Engine) Pending() int { return len(e.heap) + len(e.fifo) - e.fifoPos }

// --- inlined min-heap over []event, ordered by (at, seq) ---

func (e *Engine) push(ev event) {
	h := append(e.heap, ev)
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if h[p].at < ev.at || (h[p].at == ev.at && h[p].seq < ev.seq) {
			break
		}
		h[i] = h[p]
		i = p
	}
	h[i] = ev
	e.heap = h
}

func (e *Engine) pop() func() {
	h := e.heap
	fn := h[0].fn
	n := len(h) - 1
	last := h[n]
	h[n] = event{} // release the closure
	h = h[:n]
	e.heap = h
	if n > 0 {
		// Sift the former tail down from the root.
		i := 0
		for {
			l := 2*i + 1
			if l >= n {
				break
			}
			c := l
			if r := l + 1; r < n {
				if h[r].at < h[l].at || (h[r].at == h[l].at && h[r].seq < h[l].seq) {
					c = r
				}
			}
			if last.at < h[c].at || (last.at == h[c].at && last.seq < h[c].seq) {
				break
			}
			h[i] = h[c]
			i = c
		}
		h[i] = last
	}
	return fn
}
