// Package sim provides the deterministic discrete-event simulation kernel
// that underlies the FLASH system simulator. Components schedule closures at
// future cycle times; an engine runs them in (cycle, key) order, so
// simulations are bit-for-bit reproducible across runs.
//
// All times are expressed in 10 ns system clock cycles (the 100 MHz MAGIC
// clock of the paper).
//
// Two engines implement the same reference semantics behind the Backend
// interface: the sequential Engine in this file, and the conservative
// parallel ShardedEngine in sharded.go. The event ordering rule shared by
// both is encoded in each event's 64-bit key:
//
//   - network deliveries carry key = src<<40 | sendSeq (top bit clear), so
//     at a given cycle all deliveries dispatch before locally scheduled
//     events, ordered by (source node, per-source send order);
//   - locally scheduled events carry key = 1<<63 | localSeq, preserving
//     insertion order among themselves.
//
// This rule is what makes the parallel engine exact: a delivery's key is a
// pure function of (source, send order), not of when the scheduling call
// happened to interleave with other nodes' scheduling calls.
//
// The event queue is a monomorphic binary min-heap over []event — no
// container/heap, no interface boxing, no per-event allocations — plus a
// same-cycle FIFO: events scheduled for the current cycle bypass the heap
// entirely and run in insertion order after any heap events already queued
// for that cycle (which, having been scheduled earlier, precede them in the
// global (cycle, key) order; deliveries never land at the current cycle
// because network transit is positive).
package sim

import (
	"fmt"
	"time"
)

// Cycle is a point in simulated time, in 10 ns system clock cycles.
type Cycle uint64

// localKeyBit marks a locally scheduled event's key; deliveries keep it
// clear so they order first at a given cycle.
const localKeyBit = uint64(1) << 63

// deliverySeqBits is the width of the per-source send-sequence field in a
// delivery key. 2^40 sends per source and 2^23 sources are far beyond any
// simulated machine.
const deliverySeqBits = 40

// deliveryKey builds the heap key for a cross-node delivery.
func deliveryKey(src int, seq uint64) uint64 {
	return uint64(src)<<deliverySeqBits | seq&(1<<deliverySeqBits-1)
}

// Event is a scheduled callback.
type event struct {
	at  Cycle
	key uint64 // dispatch order among events at the same cycle; see package doc
	fn  func()
}

// Scheduler is the per-node scheduling surface components program against.
// On the sequential engine every node shares one Scheduler (the Engine
// itself); on the sharded engine each node gets its own shard.
type Scheduler interface {
	// Now returns the current simulated cycle of this node's clock.
	Now() Cycle
	// At schedules fn at absolute cycle t on this node (t >= Now).
	At(t Cycle, fn func())
	// After schedules fn d cycles from now on this node.
	After(d Cycle, fn func())
	// Deliver schedules a cross-node message arrival at cycle `at` on node
	// dst. src and seq (monotonic per source) determine the deterministic
	// dispatch order among same-cycle arrivals; `at` must be strictly in
	// the future — in fact at least one lookahead window away, which the
	// network's positive transit latency guarantees.
	Deliver(at Cycle, src, dst int, seq uint64, fn func())
	// Stop makes the engine's Run return; immediately for events on this
	// node, at the current window barrier for other shards.
	Stop()
}

// Backend is the machine-level engine surface: a set of per-node Schedulers
// plus the run driver. Both the sequential Engine and the parallel
// ShardedEngine implement it with identical simulated behaviour.
type Backend interface {
	Node(i int) Scheduler
	Run() error
	Stop()
	SetLimit(Cycle)
	// SetQuantum installs the store-visibility quantum: flush is invoked
	// (on the coordinating goroutine) each time the global clock first
	// enters a new window of q cycles. Machines use it to publish per-node
	// write buffers at deterministic points; see memsys.View.
	SetQuantum(q Cycle, flush func())
	Now() Cycle
	ExecutedEvents() uint64
	Pending() int
	// EnableProfiling turns on host-side self-profiling for subsequent Run
	// calls. Purely observational: simulated behaviour is bit-identical
	// with profiling on or off. Call before Run.
	EnableProfiling()
	// Profile returns the host-cost breakdown accumulated by profiled Run
	// calls, or nil when profiling was never enabled.
	Profile() *EngineProfile
	// Reset discards every pending event and returns the clock to cycle 0,
	// as if the engine were freshly constructed. Quantum/flush wiring and
	// profiling accumulation survive; machine pooling uses it to recycle
	// engines.
	Reset()
}

// queue is one node's event population: the monomorphic heap plus the
// same-cycle FIFO. The sequential Engine embeds one; each Shard of the
// parallel engine embeds its own.
type queue struct {
	now     Cycle
	seq     uint64
	heap    []event  // future events, min-ordered by (at, key)
	fifo    []func() // events scheduled for the current cycle, in order
	fifoPos int      // next undispatched fifo entry
	hiWater int      // deepest the heap ever grew (self-profiling)
}

// at schedules fn at absolute cycle t. Scheduling in the past (t < now)
// panics: it always indicates a model bug. Scheduling at exactly now takes
// the FIFO fast path: no heap sift, no key assignment.
func (q *queue) at(t Cycle, fn func()) {
	if t <= q.now {
		if t == q.now {
			q.fifo = append(q.fifo, fn)
			return
		}
		panic(fmt.Sprintf("sim: schedule at %d before now %d", t, q.now))
	}
	q.seq++
	q.push(event{at: t, key: localKeyBit | q.seq, fn: fn})
}

// deliver enqueues a message arrival with the delivery key for (src, seq).
func (q *queue) deliver(at Cycle, src int, seq uint64, fn func()) {
	if at <= q.now {
		panic(fmt.Sprintf("sim: delivery at %d not after now %d", at, q.now))
	}
	q.push(event{at: at, key: deliveryKey(src, seq), fn: fn})
}

// pending reports the number of undispatched events in this queue.
func (q *queue) pending() int { return len(q.heap) + len(q.fifo) - q.fifoPos }

// reset discards all events and rewinds the clock to cycle 0, keeping the
// allocated heap/fifo capacity (and the hiWater profiling high-mark).
func (q *queue) reset() {
	q.now = 0
	q.seq = 0
	q.heap = q.heap[:0]
	q.fifo = q.fifo[:0]
	q.fifoPos = 0
}

// nextAt returns the cycle of the earliest undispatched event, if any.
func (q *queue) nextAt() (Cycle, bool) {
	if q.fifoPos < len(q.fifo) {
		return q.now, true
	}
	if len(q.heap) > 0 {
		return q.heap[0].at, true
	}
	return 0, false
}

// Engine is the sequential discrete-event simulator and the reference
// implementation of Backend. The zero value is not usable; create one with
// NewEngine.
type Engine struct {
	queue
	stopped bool

	// Executed counts events dispatched since construction; useful as a
	// progress and runaway-simulation guard.
	Executed uint64

	// Limit, when nonzero, aborts Run with ErrLimit once the clock passes it.
	Limit Cycle

	quantum Cycle
	flush   func()
	curWin  Cycle

	profOn bool
	runNS  int64
}

// ErrLimit is returned by Run when the cycle limit is exceeded.
var ErrLimit = fmt.Errorf("sim: cycle limit exceeded")

// NewEngine returns an empty engine at cycle 0.
func NewEngine() *Engine {
	return &Engine{}
}

// Reset returns the engine to its freshly constructed state: no pending
// events, clock at 0, executed count cleared. Quantum/flush wiring and
// profiling state are kept so a pooled machine's engine stays configured.
func (e *Engine) Reset() {
	e.queue.reset()
	e.stopped = false
	e.Executed = 0
	e.Limit = 0
	e.curWin = 0
}

// Now returns the current simulated cycle.
func (e *Engine) Now() Cycle { return e.now }

// At schedules fn to run at absolute cycle t; see queue.at.
func (e *Engine) At(t Cycle, fn func()) { e.at(t, fn) }

// After schedules fn to run d cycles from now.
func (e *Engine) After(d Cycle, fn func()) { e.at(e.now+d, fn) }

// Deliver schedules a cross-node message arrival; dst is ignored by the
// sequential engine, which holds every node's events in one queue.
func (e *Engine) Deliver(at Cycle, src, dst int, seq uint64, fn func()) {
	e.deliver(at, src, seq, fn)
}

// Node returns the Scheduler for node i: the engine itself, shared by all
// nodes of a sequential machine.
func (e *Engine) Node(i int) Scheduler { return e }

// SetLimit sets the cycle limit (0 = none); equivalent to assigning Limit.
func (e *Engine) SetLimit(l Cycle) { e.Limit = l }

// ExecutedEvents returns the number of events dispatched since construction.
func (e *Engine) ExecutedEvents() uint64 { return e.Executed }

// SetQuantum installs the store-visibility quantum; see Backend.
func (e *Engine) SetQuantum(q Cycle, flush func()) {
	e.quantum = q
	e.flush = flush
}

// EnableProfiling turns on host-side self-profiling; see Backend. The
// sequential engine's whole run is one window-execution phase, so the
// profile carries the run wall time plus the queue's high-water mark.
func (e *Engine) EnableProfiling() { e.profOn = true }

// Profile returns the host-cost breakdown, nil if profiling is off.
func (e *Engine) Profile() *EngineProfile {
	if !e.profOn {
		return nil
	}
	return &EngineProfile{
		Engine:  "seq",
		Workers: 1,
		RunNS:   e.runNS,
		Shards: []ShardProfile{{
			ExecNS:      e.runNS,
			Executed:    e.Executed,
			HeapHiWater: uint64(e.hiWater),
		}},
	}
}

// Stop makes Run return after the current event completes.
func (e *Engine) Stop() { e.stopped = true }

// Stopped reports whether Stop has been called.
func (e *Engine) Stopped() bool { return e.stopped }

// Run dispatches events until the queue drains, Stop is called, or the cycle
// limit is exceeded. The limit is checked only when the clock advances (and
// once on entry, for engines already past it): an event at exactly Limit
// still runs; the first advance beyond it aborts.
func (e *Engine) Run() error {
	e.stopped = false
	if e.profOn {
		start := time.Now()
		defer func() { e.runNS += time.Since(start).Nanoseconds() }()
	}
	if e.Limit != 0 && e.now > e.Limit {
		return ErrLimit
	}
	for !e.stopped {
		// Heap events at the current cycle dispatch before fifo entries:
		// deliveries by key rule, locals because they were scheduled before
		// the cycle became current.
		if len(e.heap) > 0 && e.heap[0].at == e.now {
			fn := e.pop()
			e.Executed++
			fn()
			continue
		}
		if e.fifoPos < len(e.fifo) {
			fn := e.fifo[e.fifoPos]
			e.fifo[e.fifoPos] = nil
			e.fifoPos++
			if e.fifoPos >= 1024 && e.fifoPos*2 >= len(e.fifo) {
				// Compact so a chain of events that keeps scheduling at the
				// current cycle reuses the buffer instead of growing it.
				n := copy(e.fifo, e.fifo[e.fifoPos:])
				clear(e.fifo[n:])
				e.fifo = e.fifo[:n]
				e.fifoPos = 0
			}
			e.Executed++
			fn()
			continue
		}
		// Current cycle drained: recycle the fifo buffer and advance.
		e.fifo = e.fifo[:0]
		e.fifoPos = 0
		if len(e.heap) == 0 {
			return nil
		}
		// Check the limit before advancing so Now never moves past a cycle
		// that will not execute (the sharded engine behaves the same way).
		if t := e.heap[0].at; e.Limit != 0 && t > e.Limit {
			return ErrLimit
		}
		e.now = e.heap[0].at
		if e.quantum != 0 {
			if w := e.now / e.quantum; w > e.curWin {
				e.curWin = w
				e.flush()
			}
		}
	}
	return nil
}

// Pending reports the number of undispatched events.
func (e *Engine) Pending() int { return e.pending() }

// --- inlined min-heap over []event, ordered by (at, key) ---

func (q *queue) push(ev event) {
	h := append(q.heap, ev)
	if len(h) > q.hiWater {
		q.hiWater = len(h)
	}
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if h[p].at < ev.at || (h[p].at == ev.at && h[p].key < ev.key) {
			break
		}
		h[i] = h[p]
		i = p
	}
	h[i] = ev
	q.heap = h
}

func (q *queue) pop() func() {
	h := q.heap
	fn := h[0].fn
	n := len(h) - 1
	last := h[n]
	h[n] = event{} // release the closure
	h = h[:n]
	q.heap = h
	if n > 0 {
		// Sift the former tail down from the root.
		i := 0
		for {
			l := 2*i + 1
			if l >= n {
				break
			}
			c := l
			if r := l + 1; r < n {
				if h[r].at < h[l].at || (h[r].at == h[l].at && h[r].key < h[l].key) {
					c = r
				}
			}
			if last.at < h[c].at || (last.at == h[c].at && last.key < h[c].key) {
				break
			}
			h[i] = h[c]
			i = c
		}
		h[i] = last
	}
	return fn
}
