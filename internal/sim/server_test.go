package sim

import (
	"strings"
	"testing"
)

func TestServerReserveFIFO(t *testing.T) {
	var s Server
	start, end := s.Reserve(10, 5)
	if start != 10 || end != 15 {
		t.Fatalf("first reservation [%d,%d), want [10,15)", start, end)
	}
	// Overlapping request queues behind the busy interval.
	start, end = s.Reserve(12, 5)
	if start != 15 || end != 20 {
		t.Fatalf("queued reservation [%d,%d), want [15,20)", start, end)
	}
	// A later request on an idle server starts immediately.
	start, end = s.Reserve(100, 1)
	if start != 100 || end != 101 {
		t.Fatalf("idle reservation [%d,%d), want [100,101)", start, end)
	}
	if s.Jobs != 3 || s.Occ.Busy != 11 {
		t.Fatalf("jobs=%d busy=%d, want 3, 11", s.Jobs, s.Occ.Busy)
	}
	if s.BusyUntil() != 101 {
		t.Fatalf("busyUntil = %d, want 101", s.BusyUntil())
	}
}

func TestServerStrictAssertsNondecreasingOrder(t *testing.T) {
	var s Server
	s.Strict = true
	s.Reserve(10, 5)
	s.Reserve(10, 5) // equal request times are fine
	s.Reserve(20, 5)

	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("Strict Reserve with decreasing request time did not panic")
		}
		msg, ok := r.(string)
		if !ok || !strings.Contains(msg, "precedes previous request 20") {
			t.Fatalf("panic = %v, want request-order message", r)
		}
	}()
	s.Reserve(19, 5)
}

func TestServerNonStrictToleratesOutOfOrder(t *testing.T) {
	// The CPU model runs ahead of the clock within a chunk, so real machines
	// do make out-of-order reservations; the default server serializes them
	// in call order.
	var s Server
	s.Reserve(20, 5)
	start, end := s.Reserve(10, 5)
	if start != 25 || end != 30 {
		t.Fatalf("out-of-order reservation [%d,%d), want serialized [25,30)", start, end)
	}
}
