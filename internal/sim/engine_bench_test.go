package sim

import "testing"

// BenchmarkEngineSchedule is the steady-state schedule+dispatch path: one
// event chain rescheduling itself at a future cycle, exercising heap push
// and pop. It must report 0 allocs/op — the event queue is monomorphic and
// the closure is allocated once, outside the timed region.
func BenchmarkEngineSchedule(b *testing.B) {
	e := NewEngine()
	n := 0
	var tick func()
	tick = func() {
		n++
		if n < b.N {
			e.After(3, tick)
		}
	}
	e.At(1, tick)
	b.ReportAllocs()
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkEngineSameCycle measures the same-cycle FIFO fast path: every
// event schedules its successor for the current cycle, so nothing touches
// the heap after the first event. Also 0 allocs/op in steady state.
func BenchmarkEngineSameCycle(b *testing.B) {
	e := NewEngine()
	n := 0
	var tick func()
	tick = func() {
		n++
		if n < b.N {
			e.At(e.Now(), tick)
		}
	}
	// Prime the run and grow the FIFO ring before the timed region.
	e.At(1, tick)
	b.ReportAllocs()
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkEngineBurst mixes the two paths the way the machine does: each
// clock advance dispatches a burst of same-cycle events plus one heap event
// carrying the chain forward.
func BenchmarkEngineBurst(b *testing.B) {
	e := NewEngine()
	n := 0
	var burst func()
	var tick func()
	burst = func() { n++ }
	tick = func() {
		n++
		for i := 0; i < 7 && n < b.N; i++ {
			e.At(e.Now(), burst)
		}
		if n < b.N {
			e.After(5, tick)
		}
	}
	e.At(1, tick)
	b.ReportAllocs()
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkEngineHeapDepth keeps many future events queued so sift depth is
// realistic (the machine holds one or more events per node).
func BenchmarkEngineHeapDepth(b *testing.B) {
	e := NewEngine()
	n := 0
	var tick func()
	tick = func() {
		n++
		if n < b.N {
			e.After(Cycle(1+n%64), tick)
		}
	}
	// A standing population of long-lived events.
	idle := func() {}
	for i := 0; i < 128; i++ {
		e.At(Cycle(1_000_000_000+i), idle)
	}
	e.At(1, tick)
	b.ReportAllocs()
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}
