package sim_test

import (
	"reflect"
	"testing"

	"flashsim/internal/memsys"
	"flashsim/internal/sim"
)

// The differential torture test drives both engines through an identical
// randomized workload — per-node local event chains, cross-node deliveries
// with lookahead-respecting latencies, and window-quantized stores through
// memsys views — and demands bit-identical results: per-node event logs,
// final store contents, executed-event counts, and the final clock.

const (
	tortureNodes  = 8
	tortureWindow = sim.Cycle(16)
	tortureWords  = 64
	tortureSteps  = 300 // local events per node
)

type tortureResult struct {
	logs     [][]uint64
	words    []uint64
	executed uint64
	sends    uint64 // cross-node Deliver calls issued
	now      sim.Cycle
	err      error
}

func xorshift(s *uint64) uint64 {
	x := *s
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	*s = x
	return x
}

func runTorture(b sim.Backend, limit sim.Cycle) tortureResult {
	store := memsys.NewStore(tortureWords * 8)
	views := make([]*memsys.View, tortureNodes)
	for i := range views {
		views[i] = memsys.NewView(store)
	}
	b.SetQuantum(tortureWindow, func() {
		for _, v := range views {
			v.Flush()
		}
	})

	logs := make([][]uint64, tortureNodes)
	rngs := make([]uint64, tortureNodes)
	seqs := make([]uint64, tortureNodes)
	for i := range rngs {
		rngs[i] = uint64(0x9e3779b97f4a7c15 * uint64(i+1))
	}

	var tick func(i, n int)
	tick = func(i, n int) {
		s := b.Node(i)
		now := s.Now()
		r := xorshift(&rngs[i])
		logs[i] = append(logs[i], uint64(now)<<24|uint64(i)<<16|r&0xffff)
		switch r % 4 {
		case 0:
			views[i].Store(r%tortureWords, uint64(now)<<8|uint64(i))
		case 1:
			// Log the value read so cross-node visibility timing is pinned.
			logs[i] = append(logs[i], views[i].Load((r>>4)%tortureWords)<<1|1)
		case 2:
			dst := int((r >> 8) % tortureNodes)
			at := now + tortureWindow + sim.Cycle(r%50)
			seqs[i]++
			payload := r
			src := i
			s.Deliver(at, src, dst, seqs[i], func() {
				d := b.Node(dst)
				logs[dst] = append(logs[dst], uint64(d.Now())<<24|uint64(src)<<4|0xf)
				views[dst].Store(payload%tortureWords, payload)
				d.At(d.Now()+3, func() {
					logs[dst] = append(logs[dst], uint64(d.Now())<<24|0xabc)
				})
			})
		}
		if n > 0 {
			s.After(1+sim.Cycle(r%37), func() { tick(i, n-1) })
		}
	}

	for i := 0; i < tortureNodes; i++ {
		i := i
		b.Node(i).At(sim.Cycle(1+i), func() { tick(i, tortureSteps) })
	}
	if limit != 0 {
		b.SetLimit(limit)
	}
	res := tortureResult{err: b.Run()}
	// Mirror core.Run: flush straggler buffered writes after the run so the
	// final store state is comparable.
	for _, v := range views {
		v.Flush()
	}
	res.logs = logs
	res.words = make([]uint64, tortureWords)
	for w := range res.words {
		res.words[w] = store.Load(uint64(w))
	}
	res.executed = b.ExecutedEvents()
	for _, s := range seqs {
		res.sends += s
	}
	res.now = b.Now()
	return res
}

func compareTorture(t *testing.T, name string, want, got tortureResult) {
	t.Helper()
	if got.err != want.err {
		t.Fatalf("%s: err = %v, want %v", name, got.err, want.err)
	}
	if got.executed != want.executed {
		t.Errorf("%s: executed = %d, want %d", name, got.executed, want.executed)
	}
	if got.now != want.now {
		t.Errorf("%s: now = %d, want %d", name, got.now, want.now)
	}
	for i := range want.logs {
		if !reflect.DeepEqual(got.logs[i], want.logs[i]) {
			a, b := want.logs[i], got.logs[i]
			n := len(a)
			if len(b) < n {
				n = len(b)
			}
			d := n
			for j := 0; j < n; j++ {
				if a[j] != b[j] {
					d = j
					break
				}
			}
			t.Fatalf("%s: node %d log diverges at entry %d/%d (want len %d, got len %d)",
				name, i, d, n, len(a), len(b))
		}
	}
	if !reflect.DeepEqual(got.words, want.words) {
		t.Errorf("%s: final store contents differ", name)
	}
}

// TestShardedDifferentialTorture is the core bit-identity check: the same
// workload on the sequential engine and on the sharded engine with several
// worker-pool sizes must produce identical observable behaviour.
func TestShardedDifferentialTorture(t *testing.T) {
	want := runTorture(sim.NewEngine(), 0)
	for _, workers := range []int{0, 1, 2, tortureNodes} {
		e := sim.NewShardedEngine(tortureNodes, tortureWindow)
		e.Workers = workers
		got := runTorture(e, 0)
		compareTorture(t, "sharded/workers="+string(rune('0'+workers)), want, got)
	}
}

// TestShardedDifferentialTortureWithLimit checks the two engines agree when
// the run aborts at a cycle limit mid-workload.
func TestShardedDifferentialTortureWithLimit(t *testing.T) {
	const limit = sim.Cycle(1500)
	want := runTorture(sim.NewEngine(), limit)
	if want.err != sim.ErrLimit {
		t.Fatalf("seq err = %v, want ErrLimit (limit too high for torture?)", want.err)
	}
	for _, workers := range []int{1, 4} {
		e := sim.NewShardedEngine(tortureNodes, tortureWindow)
		e.Workers = workers
		got := runTorture(e, limit)
		compareTorture(t, "sharded-limit", want, got)
	}
}

// TestShardedWorkerPoolDeterminism runs the sharded engine repeatedly with
// different pool sizes and checks the results against each other — worker
// count and goroutine interleaving must never leak into simulated behaviour.
func TestShardedWorkerPoolDeterminism(t *testing.T) {
	var want tortureResult
	for rep, workers := range []int{1, 2, 3, 0, 0, 0} {
		e := sim.NewShardedEngine(tortureNodes, tortureWindow)
		e.Workers = workers
		got := runTorture(e, 0)
		if rep == 0 {
			want = got
			continue
		}
		compareTorture(t, "rep", want, got)
	}
}

// TestShardedLookaheadViolationPanics pins the guard rail: a delivery that
// lands inside the currently executing window (transit below the lookahead
// window) must panic rather than silently break causality.
func TestShardedLookaheadViolationPanics(t *testing.T) {
	e := sim.NewShardedEngine(2, 10)
	e.Workers = 1 // keep the panic on the coordinator goroutine
	s := e.Node(0)
	s.At(5, func() {
		s.Deliver(7, 0, 1, 1, func() {})
	})
	defer func() {
		if recover() == nil {
			t.Fatal("in-window delivery did not panic")
		}
	}()
	_ = e.Run()
}

// TestShardedStopFromShard checks Stop called from inside a shard event
// halts the whole engine promptly and Run returns cleanly.
func TestShardedStopFromShard(t *testing.T) {
	e := sim.NewShardedEngine(4, 10)
	var after bool
	e.Node(2).At(25, func() { e.Node(2).Stop() })
	e.Node(2).At(26, func() { after = true })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if after {
		t.Fatal("event on stopping shard after Stop ran")
	}
	if e.Pending() == 0 {
		t.Fatal("pending event discarded by Stop")
	}
}
