package sim

import (
	"testing"
	"testing/quick"
)

func TestRunOrder(t *testing.T) {
	e := NewEngine()
	var got []int
	e.At(10, func() { got = append(got, 2) })
	e.At(5, func() { got = append(got, 1) })
	e.At(10, func() { got = append(got, 3) }) // same cycle: FIFO
	e.At(0, func() { got = append(got, 0) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []int{0, 1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if e.Now() != 10 {
		t.Fatalf("Now = %d, want 10", e.Now())
	}
}

func TestAfterChains(t *testing.T) {
	e := NewEngine()
	var last Cycle
	var step func()
	n := 0
	step = func() {
		last = e.Now()
		n++
		if n < 5 {
			e.After(7, step)
		}
	}
	e.After(1, step)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if last != 1+4*7 {
		t.Fatalf("last = %d, want %d", last, 1+4*7)
	}
	if e.Executed != 5 {
		t.Fatalf("Executed = %d, want 5", e.Executed)
	}
}

func TestSchedulePastPanics(t *testing.T) {
	e := NewEngine()
	e.At(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.At(5, func() {})
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestStop(t *testing.T) {
	e := NewEngine()
	ran := 0
	e.At(1, func() { ran++; e.Stop() })
	e.At(2, func() { ran++ })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if ran != 1 {
		t.Fatalf("ran = %d, want 1", ran)
	}
	if e.Pending() != 1 {
		t.Fatalf("Pending = %d, want 1", e.Pending())
	}
}

func TestLimit(t *testing.T) {
	e := NewEngine()
	e.Limit = 100
	var tick func()
	tick = func() { e.After(10, tick) }
	e.At(0, tick)
	if err := e.Run(); err != ErrLimit {
		t.Fatalf("err = %v, want ErrLimit", err)
	}
}

// The limit boundary: an event at exactly Limit runs; the first clock
// advance past Limit aborts before dispatching anything.
func TestLimitBoundary(t *testing.T) {
	e := NewEngine()
	e.Limit = 50
	ran := 0
	e.At(50, func() { ran++ })
	if err := e.Run(); err != nil {
		t.Fatalf("event at now == Limit errored: %v", err)
	}
	if ran != 1 || e.Now() != 50 {
		t.Fatalf("ran = %d at %d, want 1 at 50", ran, e.Now())
	}
	e.At(51, func() { ran++ })
	if err := e.Run(); err != ErrLimit {
		t.Fatalf("err = %v, want ErrLimit at Limit+1", err)
	}
	if ran != 1 {
		t.Fatalf("event past the limit dispatched (ran = %d)", ran)
	}
}

// An engine whose clock is already past Limit errors even with an empty
// queue (previously the check only ran after popping an event).
func TestLimitAlreadyPast(t *testing.T) {
	e := NewEngine()
	e.At(10, func() {})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	e.Limit = 5
	if err := e.Run(); err != ErrLimit {
		t.Fatalf("err = %v, want ErrLimit with empty queue past limit", err)
	}
}

// Same-cycle ordering across the two queues: events scheduled for a future
// cycle (heap) run before events scheduled at that cycle once it is current
// (FIFO fast path), and nested same-cycle scheduling stays FIFO.
func TestSameCycleHeapBeforeFIFO(t *testing.T) {
	e := NewEngine()
	var got []int
	e.At(5, func() {
		got = append(got, 1)
		e.At(5, func() {
			got = append(got, 3)
			e.At(5, func() { got = append(got, 4) })
		})
	})
	e.At(5, func() { got = append(got, 2) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []int{1, 2, 3, 4}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if e.Executed != 4 {
		t.Fatalf("Executed = %d, want 4", e.Executed)
	}
}

// Property: events always dispatch in nondecreasing time order, regardless of
// insertion order.
func TestMonotonicDispatch(t *testing.T) {
	f := func(delays []uint16) bool {
		e := NewEngine()
		var prev Cycle
		ok := true
		for _, d := range delays {
			e.At(Cycle(d), func() {
				if e.Now() < prev {
					ok = false
				}
				prev = e.Now()
			})
		}
		if err := e.Run(); err != nil {
			return false
		}
		return ok
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: FIFO among same-cycle events, across arbitrary interleavings of
// two cycles.
func TestSameCycleFIFO(t *testing.T) {
	f := func(picks []bool) bool {
		e := NewEngine()
		var a, b []int
		na, nb := 0, 0
		for _, p := range picks {
			if p {
				na++
				k := na
				e.At(3, func() { a = append(a, k) })
			} else {
				nb++
				k := nb
				e.At(4, func() { b = append(b, k) })
			}
		}
		if err := e.Run(); err != nil {
			return false
		}
		for i := range a {
			if a[i] != i+1 {
				return false
			}
		}
		for i := range b {
			if b[i] != i+1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
