package sim

import (
	"fmt"
	"strings"
	"time"
)

// This file is the engines' self-profiling surface: where does *host* time
// go while the simulated machine runs? The sharded engine attributes every
// nanosecond of its coordinator and worker loops to one of four phases —
// window execution, barrier wait, outbox drain, and window merge — using
// chained timestamps: each clock reading both ends one interval and begins
// the next, so the attribution has no gaps by construction and Coverage
// approaches 1 for any run long enough to dwarf Run's setup cost.
//
// Profiling is off by default and costs nothing when off (a handful of
// predictable branches). When on it adds two clock reads per shard per
// window — purely host-side; simulated cycles stay bit-identical, which the
// metrics non-perturbation golden test in internal/exp pins.

// EngineProfile is the host-cost breakdown of one engine's Run.
type EngineProfile struct {
	// Engine is the backend name: "seq" or "sharded".
	Engine string `json:"engine"`
	// Workers is the worker-pool size the run used (1 for seq).
	Workers int `json:"workers"`
	// RunNS is the wall-clock duration of Run, including pool setup.
	RunNS int64 `json:"run_ns"`
	// MergeNS is coordinator time spent on window bookkeeping between
	// barriers: finding the next window, publishing it, and running the
	// store-visibility flush (sharded only).
	MergeNS int64 `json:"merge_ns,omitempty"`
	// DrainNS is coordinator time spent routing outboxes into destination
	// heaps at barriers (sharded only).
	DrainNS int64 `json:"drain_ns,omitempty"`
	// BarrierNS is per-worker time spent spinning at the window barrier;
	// index 0 is the coordinating goroutine.
	BarrierNS []int64 `json:"barrier_ns,omitempty"`
	// Sync is the sharded engine's shard-synchronization scheme ("barrier"
	// or "watermark"); empty for seq.
	Sync string `json:"sync,omitempty"`
	// HorizonNS is per-worker time spent asleep waiting for peer frontiers
	// to uncover more safe work (watermark mode); index 0 is the goroutine
	// that called Run.
	HorizonNS []int64 `json:"horizon_ns,omitempty"`
	// SolveNS is time spent in the quiescent decide step: sweeping mailboxes
	// and solving the null-message fixpoint that advances frontiers
	// (watermark mode).
	SolveNS int64 `json:"solve_ns,omitempty"`
	// Solves counts decide invocations and SolveOps the per-shard scan steps
	// they performed (watermark mode).
	Solves   uint64 `json:"solves,omitempty"`
	SolveOps uint64 `json:"solve_ops,omitempty"`
	// WaitOps counts worker sleeps on the scheduler condition — the
	// watermark analogue of a barrier crossing, paid only when a worker
	// actually runs out of safe work.
	WaitOps uint64 `json:"wait_ops,omitempty"`
	// GateAdvances counts store-visibility gate advances: one per occupied
	// window, however far apart those windows are (watermark mode).
	GateAdvances uint64 `json:"gate_advances,omitempty"`
	// CoordWindows counts coordinator window iterations (barrier mode);
	// recorded even with profiling off because SyncOps derives the
	// barrier-mode totals from it.
	CoordWindows uint64 `json:"coord_windows,omitempty"`
	// Shards holds the per-shard breakdown (one pseudo-shard for seq).
	Shards []ShardProfile `json:"shards"`
}

// ShardProfile is one shard's slice of the breakdown.
type ShardProfile struct {
	// ExecNS is time spent inside this shard's window execution.
	ExecNS int64 `json:"exec_ns"`
	// Executed counts events this shard dispatched.
	Executed uint64 `json:"executed"`
	// Windows counts lookahead windows this shard was driven through.
	Windows uint64 `json:"windows,omitempty"`
	// EmptyWindows counts windows in which this shard dispatched nothing —
	// pure lookahead overhead.
	EmptyWindows uint64 `json:"empty_windows,omitempty"`
	// MaxEventsWindow is the largest number of events in one window.
	MaxEventsWindow uint64 `json:"max_events_window,omitempty"`
	// HeapHiWater is the deepest the shard's event heap ever grew.
	HeapHiWater uint64 `json:"heap_hiwater"`
	// OutboxSent counts cross-shard deliveries routed from this shard per
	// destination shard — the (src,dst) traffic matrix row.
	OutboxSent []uint64 `json:"outbox_sent,omitempty"`
	// Publishes counts frontier watermark advances recorded for this shard
	// (at burst completion, under the scheduler lock), InboxDrains its
	// nonempty mailbox drains, and InboxFlushes the batched appends it made
	// into peer mailboxes (the latter two one lock acquisition each).
	// Watermark mode only.
	Publishes    uint64 `json:"publishes,omitempty"`
	InboxDrains  uint64 `json:"inbox_drains,omitempty"`
	InboxFlushes uint64 `json:"inbox_flushes,omitempty"`
}

// AccountedNS sums all attributed time: shard execution, barrier waits,
// outbox drain, window merge, horizon waits, and frontier solving.
func (p *EngineProfile) AccountedNS() int64 {
	total := p.MergeNS + p.DrainNS + p.SolveNS
	for _, ns := range p.BarrierNS {
		total += ns
	}
	for _, ns := range p.HorizonNS {
		total += ns
	}
	for i := range p.Shards {
		total += p.Shards[i].ExecNS
	}
	return total
}

// SyncOps totals the synchronization operations the run performed — the
// quantity watermark mode exists to reduce. One unit is one operation on
// shared scheduling state: a lock acquisition, a condition-variable sleep,
// or one step of a scan over per-shard coordination state. Barrier mode
// pays, every window, a full outbox-route scan (n² pair slots), a
// next-event scan (n shards), and one barrier crossing per worker.
// Watermark mode pays only for actual traffic and actual scheduling:
// mailbox drains and batched mailbox flushes (one lock each), worker
// sleeps, decide invocations (one queue rebuild + broadcast each), decide
// scan steps, and gate advances. Frontier publishes ride inside scheduler
// critical sections the worker already holds, so they appear in the
// per-shard Publishes counters but add no operations here.
func (p *EngineProfile) SyncOps() uint64 {
	n := uint64(len(p.Shards))
	if p.Sync == "watermark" {
		ops := p.Solves + p.SolveOps + p.WaitOps + p.GateAdvances
		for i := range p.Shards {
			s := &p.Shards[i]
			ops += s.InboxDrains + s.InboxFlushes
		}
		return ops
	}
	return p.CoordWindows * (n*n + n + uint64(p.Workers))
}

// Coverage is the fraction of total engine wall time (RunNS times the pool
// size, since every worker burns wall clock for the whole run) attributed
// to a phase. The profile report requires this to stay near 1.
func (p *EngineProfile) Coverage() float64 {
	if p.RunNS <= 0 || p.Workers <= 0 {
		return 0
	}
	return float64(p.AccountedNS()) / (float64(p.RunNS) * float64(p.Workers))
}

// shardWorker returns the pool worker that drives shard i.
func (p *EngineProfile) shardWorker(i int) int {
	if p.Workers <= 0 {
		return 0
	}
	return i % p.Workers
}

// ShardBarrierNS attributes barrier-wait time to shard i: its worker's
// spin time divided evenly over the shards that worker drives.
func (p *EngineProfile) ShardBarrierNS(i int) int64 {
	w := p.shardWorker(i)
	if w >= len(p.BarrierNS) {
		return 0
	}
	// Shards j with j ≡ w (mod Workers) in [0, len(Shards)).
	n := (len(p.Shards) - w + p.Workers - 1) / p.Workers
	if n <= 0 {
		return 0
	}
	return p.BarrierNS[w] / int64(n)
}

// String renders the attribution report: phase totals with shares of total
// engine wall time, then the per-shard table.
func (p *EngineProfile) String() string {
	var b strings.Builder
	name := p.Engine
	if p.Sync != "" {
		name += "/" + p.Sync
	}
	fmt.Fprintf(&b, "%s engine: run %.3fs, %d worker(s), coverage %.1f%%\n",
		name, float64(p.RunNS)/1e9, p.Workers, 100*p.Coverage())
	totalNS := p.RunNS * int64(p.Workers)
	if totalNS <= 0 {
		totalNS = 1
	}
	var execNS, barrierNS, horizonNS int64
	for i := range p.Shards {
		execNS += p.Shards[i].ExecNS
	}
	for _, ns := range p.BarrierNS {
		barrierNS += ns
	}
	for _, ns := range p.HorizonNS {
		horizonNS += ns
	}
	share := func(ns int64) string {
		return fmt.Sprintf("%.2fs (%.1f%%)", float64(ns)/1e9, 100*float64(ns)/float64(totalNS))
	}
	if p.Sync == "watermark" {
		fmt.Fprintf(&b, "  burst exec %s  horizon wait %s  frontier solve %s\n",
			share(execNS), share(horizonNS), share(p.SolveNS))
		fmt.Fprintf(&b, "  sync ops %d (solve %d in %d decides, waits %d, gate advances %d)\n",
			p.SyncOps(), p.SolveOps, p.Solves, p.WaitOps, p.GateAdvances)
		fmt.Fprintf(&b, "  %-5s %10s %7s %8s %7s %8s %9s %6s %7s %8s\n",
			"shard", "exec_ms", "exec%", "bursts", "empty", "ev/burst", "heap_hw", "pubs", "drains", "flushes")
		for i := range p.Shards {
			s := &p.Shards[i]
			perWin := 0.0
			if s.Windows > 0 {
				perWin = float64(s.Executed) / float64(s.Windows)
			}
			fmt.Fprintf(&b, "  %-5d %10.2f %6.1f%% %8d %7d %8.1f %9d %6d %7d %8d\n",
				i, float64(s.ExecNS)/1e6, 100*float64(s.ExecNS)/float64(totalNS),
				s.Windows, s.EmptyWindows, perWin, s.HeapHiWater,
				s.Publishes, s.InboxDrains, s.InboxFlushes)
		}
		return b.String()
	}
	fmt.Fprintf(&b, "  window exec %s  barrier wait %s  outbox drain %s  merge %s\n",
		share(execNS), share(barrierNS), share(p.DrainNS), share(p.MergeNS))
	if p.Engine != "sharded" {
		return b.String()
	}
	fmt.Fprintf(&b, "  sync ops %d (%d windows)\n", p.SyncOps(), p.CoordWindows)
	fmt.Fprintf(&b, "  %-5s %10s %7s %12s %9s %8s %7s %8s %9s\n",
		"shard", "exec_ms", "exec%", "barrier_ms", "barrier%", "windows", "empty", "ev/win", "heap_hw")
	for i := range p.Shards {
		s := &p.Shards[i]
		bar := p.ShardBarrierNS(i)
		perWin := 0.0
		if s.Windows > 0 {
			perWin = float64(s.Executed) / float64(s.Windows)
		}
		fmt.Fprintf(&b, "  %-5d %10.2f %6.1f%% %12.2f %8.1f%% %8d %7d %7.1f %9d\n",
			i, float64(s.ExecNS)/1e6, 100*float64(s.ExecNS)/float64(totalNS),
			float64(bar)/1e6, 100*float64(bar)/float64(totalNS),
			s.Windows, s.EmptyWindows, perWin, s.HeapHiWater)
	}
	return b.String()
}

// lap returns the nanoseconds since *mark and advances *mark to now, with a
// single clock read — consecutive laps tile time without gaps.
func lap(mark *time.Time) int64 {
	now := time.Now()
	d := now.Sub(*mark).Nanoseconds()
	*mark = now
	return d
}
