package sim

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// ShardedEngine is the conservative parallel discrete-event backend: the
// event population is partitioned into one Shard per node, and all shards
// execute concurrently over bounded windows of `window` cycles on a small
// worker pool.
//
// The lookahead argument: cross-node interaction happens only through
// Deliver with an arrival at least `window` cycles after the send (the
// network transit latency), so events inside the window [k·W, (k+1)·W)
// on different shards cannot affect each other — a send during window k
// arrives in window k+1 at the earliest. Shards therefore run the whole
// window without synchronization; cross-node arrivals accumulate in
// per-(src,dst) outboxes and are merged into the destination heaps at the
// window barrier by the coordinator. The merge is deterministic because a
// delivery's heap position depends only on (arrival cycle, source node,
// per-source send sequence) — never on the order outboxes are drained.
//
// With a worker-pool size of 1 (e.g. GOMAXPROCS=1) the same algorithm runs
// entirely on the coordinating goroutine, shard 0..N-1 in order, and
// produces identical results, which is what the differential tests pin.
type ShardedEngine struct {
	shards []*Shard
	window Cycle
	flush  func()
	curWin Cycle
	limit  Cycle

	// Workers overrides the worker-pool size; 0 means
	// min(len(shards), GOMAXPROCS). Exposed for differential tests.
	Workers int

	// sync selects the shard-synchronization scheme: the full window
	// barrier (default) or per-pair watermarks (watermark.go).
	sync SyncMode
	// look is the per-(src,dst) lookahead matrix (nil = uniform window).
	look *lookahead
	// wmGate is the watermark-mode store-visibility gate: events at cycles
	// < wmGate may execute given the flushes already performed. 0 means
	// uninitialized; set on the first watermark Run when a flush is
	// installed.
	wmGate Cycle

	running bool
	stopReq atomic.Bool

	// Window barrier: the coordinator publishes winEnd/winLim/quit, resets
	// done, and bumps phase; workers spin on phase, run their shards, and
	// count themselves into done. The atomics carry the happens-before
	// edges for everything written in between.
	phase  atomic.Uint64
	done   atomic.Int64
	winEnd Cycle
	winLim Cycle
	quit   bool

	// coordWins counts coordinator window iterations (barrier mode) across
	// the engine's lifetime; always on (one increment per window) because
	// the synchronization-cost accounting in profile.go derives the
	// barrier-mode op totals from it.
	coordWins uint64

	// Self-profiling (off unless EnableProfiling was called). The chained
	// timestamps attribute the coordinator and worker loops to the four
	// phases in profile.go; per-worker barrier slots are written only by
	// their owning goroutine and read after the pool joins.
	profOn      bool
	profWorkers int
	runNS       int64
	mergeNS     int64
	drainNS     int64
	barrierNS   []int64

	// Watermark-mode self-profiling: per-worker horizon-wait time, decide
	// (frontier solve) time, and the synchronization-operation counters
	// described in profile.go. Engine-level counters are only written under
	// the scheduler lock or by the deciding worker.
	horizonNS []int64
	solveNS   int64
	wmSolves  uint64
	wmSolveOp uint64
	wmWaitOps uint64
	wmGateAdv uint64

	// Watermark scheduler state: frS holds every shard's committed frontier
	// (written at burst completion and by the non-metric fixpoint, always
	// under the scheduler lock); hzS/nextS/hasS are decide() scratch, reused
	// across decisions to stay allocation-free.
	frS   []Cycle
	hzS   []Cycle
	nextS []Cycle
	hasS  []bool
}

// Shard is one node's slice of the event population. It implements
// Scheduler; all of a node's components schedule through their shard.
type Shard struct {
	queue
	id       int
	eng      *ShardedEngine
	executed uint64
	stopped  bool
	outbox   [][]delivery // per destination shard, drained at barriers

	// Watermark-mode synchronization state: inbox is the MPSC mailbox peers
	// append staged deliveries into (batched, one lock per burst per pair);
	// the quiescent scheduler swaps it against inboxSpare when it drains.
	// The shard's frontier itself lives in the scheduler's frS array,
	// maintained under the scheduler lock (see watermark.go).
	inMu       sync.Mutex
	inbox      []delivery
	inboxSpare []delivery

	// Self-profiling fields, written only by the goroutine driving this
	// shard (or by the coordinator at barriers, for sent).
	execNS      int64
	windows     uint64
	emptyWins   uint64
	maxEvWindow uint64
	sent        []uint64 // deliveries routed per destination shard
	pubs        uint64   // frontier publishes (watermark)
	drains      uint64   // nonempty inbox drains (watermark)
	inFlushes   uint64   // batched appends into peer inboxes (watermark)
}

type delivery struct {
	at  Cycle
	key uint64
	fn  func()
}

// NewShardedEngine returns a parallel engine with n shards and the given
// lookahead window in cycles (the minimum cross-shard latency; a machine's
// network transit). SetQuantum with a nonzero quantum overrides the window,
// since the store-visibility quantum and the lookahead window are the same
// quantity for a machine.
func NewShardedEngine(n int, window Cycle) *ShardedEngine {
	if n < 1 {
		n = 1
	}
	if window == 0 {
		window = 1
	}
	e := &ShardedEngine{window: window}
	e.shards = make([]*Shard, n)
	for i := range e.shards {
		e.shards[i] = &Shard{id: i, eng: e, outbox: make([][]delivery, n)}
	}
	return e
}

// Node returns node i's shard.
func (e *ShardedEngine) Node(i int) Scheduler { return e.shards[i] }

// SetSync selects the shard-synchronization scheme; see SyncMode. Call
// before Run.
func (e *ShardedEngine) SetSync(m SyncMode) { e.sync = m }

// Sync reports the engine's shard-synchronization scheme.
func (e *ShardedEngine) Sync() SyncMode { return e.sync }

// SetLimit sets the cycle limit (0 = none).
func (e *ShardedEngine) SetLimit(l Cycle) { e.limit = l }

// SetQuantum installs the store-visibility flush and adopts q as the
// lookahead window; see Backend.
func (e *ShardedEngine) SetQuantum(q Cycle, flush func()) {
	if q != 0 {
		e.window = q
	}
	e.flush = flush
}

// EnableProfiling turns on host-side self-profiling; see Backend.
func (e *ShardedEngine) EnableProfiling() {
	e.profOn = true
	for _, s := range e.shards {
		if s.sent == nil {
			s.sent = make([]uint64, len(e.shards))
		}
	}
}

// Profile returns the host-cost breakdown, nil if profiling is off.
func (e *ShardedEngine) Profile() *EngineProfile {
	if !e.profOn {
		return nil
	}
	p := &EngineProfile{
		Engine:       "sharded",
		Workers:      e.profWorkers,
		RunNS:        e.runNS,
		MergeNS:      e.mergeNS,
		DrainNS:      e.drainNS,
		BarrierNS:    append([]int64(nil), e.barrierNS...),
		Sync:         e.sync.String(),
		HorizonNS:    append([]int64(nil), e.horizonNS...),
		SolveNS:      e.solveNS,
		Solves:       e.wmSolves,
		SolveOps:     e.wmSolveOp,
		WaitOps:      e.wmWaitOps,
		GateAdvances: e.wmGateAdv,
		CoordWindows: e.coordWins,
	}
	for _, s := range e.shards {
		p.Shards = append(p.Shards, ShardProfile{
			ExecNS:          s.execNS,
			Executed:        s.executed,
			Windows:         s.windows,
			EmptyWindows:    s.emptyWins,
			MaxEventsWindow: s.maxEvWindow,
			HeapHiWater:     uint64(s.hiWater),
			OutboxSent:      append([]uint64(nil), s.sent...),
			Publishes:       s.pubs,
			InboxDrains:     s.drains,
			InboxFlushes:    s.inFlushes,
		})
	}
	return p
}

// Stop makes Run return at the current window barrier. Events already
// inside the window on other shards still execute; the calling shard (when
// Stop is invoked from a simulation event) halts immediately.
func (e *ShardedEngine) Stop() { e.stopReq.Store(true) }

// Reset returns the engine to its freshly constructed state: every shard's
// queue and mailboxes emptied, all clocks at 0, executed counts cleared.
// Window/sync/lookahead configuration and profiling accumulation survive.
// Must not be called while Run is in progress.
func (e *ShardedEngine) Reset() {
	for _, s := range e.shards {
		s.queue.reset()
		s.executed = 0
		s.stopped = false
		for i := range s.outbox {
			s.outbox[i] = s.outbox[i][:0]
		}
		s.inMu.Lock()
		s.inbox = s.inbox[:0]
		s.inboxSpare = s.inboxSpare[:0]
		s.inMu.Unlock()
	}
	e.curWin = 0
	e.limit = 0
	e.wmGate = 0
	e.stopReq.Store(false)
	for i := range e.frS {
		e.frS[i], e.hzS[i], e.nextS[i] = 0, 0, 0
		e.hasS[i] = false
	}
}

// Now returns the globally latest shard clock: the cycle of the last event
// dispatched anywhere, matching the sequential engine's clock.
func (e *ShardedEngine) Now() Cycle {
	var max Cycle
	for _, s := range e.shards {
		if s.now > max {
			max = s.now
		}
	}
	return max
}

// ExecutedEvents returns the total number of events dispatched across all
// shards since construction.
func (e *ShardedEngine) ExecutedEvents() uint64 {
	var n uint64
	for _, s := range e.shards {
		n += s.executed
	}
	return n
}

// Pending reports undispatched events across all shards, outboxes, and
// watermark inboxes.
func (e *ShardedEngine) Pending() int {
	n := 0
	for _, s := range e.shards {
		n += s.pending()
		for _, box := range s.outbox {
			n += len(box)
		}
		s.inMu.Lock()
		n += len(s.inbox)
		s.inMu.Unlock()
	}
	return n
}

// minNext returns the earliest undispatched event cycle across all shards.
// Only valid at barriers, when outboxes are drained.
func (e *ShardedEngine) minNext() (Cycle, bool) {
	var min Cycle
	ok := false
	for _, s := range e.shards {
		if t, has := s.nextAt(); has && (!ok || t < min) {
			min, ok = t, true
		}
	}
	return min, ok
}

// route drains every outbox into the destination shards. Single-threaded
// (coordinator, at a barrier); the resulting heap order is independent of
// drain order because (at, key) pairs are unique.
func (e *ShardedEngine) route() {
	for _, src := range e.shards {
		for dst, box := range src.outbox {
			if len(box) == 0 {
				continue
			}
			if src.sent != nil {
				src.sent[dst] += uint64(len(box))
			}
			d := e.shards[dst]
			for _, dl := range box {
				d.push(event{at: dl.at, key: dl.key, fn: dl.fn})
			}
			// Reuse the backing array; nil the closures so they release.
			clear(box)
			src.outbox[dst] = box[:0]
		}
	}
}

// poolSize resolves the worker-pool size for this run.
func (e *ShardedEngine) poolSize() int {
	p := e.Workers
	if p <= 0 {
		p = runtime.GOMAXPROCS(0)
	}
	if n := len(e.shards); p > n {
		p = n
	}
	if p < 1 {
		p = 1
	}
	return p
}

// Run executes until every shard drains, Stop is called, or the cycle limit
// is exceeded. Limit semantics match the sequential engine: an event at
// exactly the limit runs; ErrLimit is returned when only events beyond it
// remain. The barrier scheme below runs uniform lookahead windows separated
// by full rendezvous; SyncWatermark delegates to the per-pair watermark
// scheduler in watermark.go.
func (e *ShardedEngine) Run() error {
	e.stopReq.Store(false)
	for _, s := range e.shards {
		s.stopped = false
	}
	if e.limit != 0 && e.Now() > e.limit {
		return ErrLimit
	}
	if e.sync == SyncWatermark {
		return e.runWatermark()
	}

	n := len(e.shards)
	p := e.poolSize()

	// Profiling uses chained timestamps: each lap both ends one interval
	// and begins the next, so coordinator time tiles into merge, exec,
	// barrier, and drain with no gaps (see profile.go).
	prof := e.profOn
	var start, mark time.Time
	if prof {
		e.profWorkers = p
		e.barrierNS = make([]int64, p)
		start = time.Now()
		mark = start
	}

	e.quit = false
	e.running = true
	var wg sync.WaitGroup
	if p > 1 {
		base := e.phase.Load()
		for w := 1; w < p; w++ {
			wg.Add(1)
			go e.workerLoop(w, p, base, &wg)
		}
	}
	defer func() {
		if p > 1 {
			e.quit = true
			e.phase.Add(1)
			wg.Wait()
		}
		e.running = false
		if prof {
			e.runNS += time.Since(start).Nanoseconds()
		}
	}()

	for {
		t, ok := e.minNext()
		if !ok {
			if prof {
				e.mergeNS += lap(&mark)
			}
			return nil
		}
		if e.limit != 0 && t > e.limit {
			if prof {
				e.mergeNS += lap(&mark)
			}
			return ErrLimit
		}
		win := t / e.window
		if win > e.curWin {
			e.curWin = win
			if e.flush != nil {
				e.flush()
			}
		}
		end := (win + 1) * e.window
		e.winEnd, e.winLim = end, e.limit
		e.coordWins++
		if prof {
			e.mergeNS += lap(&mark)
		}

		if p > 1 {
			e.done.Store(0)
			e.phase.Add(1)
			for i := 0; i < n; i += p {
				s := e.shards[i]
				s.runWindow(end, e.limit)
				if prof {
					s.execNS += lap(&mark)
				}
			}
			e.done.Add(1)
			for spins := 0; e.done.Load() < int64(p); spins++ {
				if spins > 256 {
					runtime.Gosched()
				}
			}
			if prof {
				e.barrierNS[0] += lap(&mark)
			}
		} else {
			for _, s := range e.shards {
				s.runWindow(end, e.limit)
				if prof {
					s.execNS += lap(&mark)
				}
			}
		}

		e.route()
		if prof {
			e.drainNS += lap(&mark)
		}
		if e.stopReq.Load() {
			return nil
		}
	}
}

// workerLoop is one pool worker: it spins on the barrier phase, runs its
// fixed stride of shards for the published window, and checks in.
func (e *ShardedEngine) workerLoop(w, p int, last uint64, wg *sync.WaitGroup) {
	defer wg.Done()
	prof := e.profOn
	var mark time.Time
	if prof {
		mark = time.Now()
	}
	for {
		for spins := 0; ; spins++ {
			if ph := e.phase.Load(); ph != last {
				last = ph
				break
			}
			if spins > 256 {
				runtime.Gosched()
			}
		}
		if prof {
			e.barrierNS[w] += lap(&mark)
		}
		if e.quit {
			return
		}
		end, lim := e.winEnd, e.winLim
		for i := w; i < len(e.shards); i += p {
			s := e.shards[i]
			s.runWindow(end, lim)
			if prof {
				s.execNS += lap(&mark)
			}
		}
		e.done.Add(1)
	}
}

// runWindow dispatches this shard's events for one lookahead window,
// recording window-utilization counters when profiling is on.
func (s *Shard) runWindow(end, lim Cycle) {
	if !s.eng.profOn {
		s.runWin(end, lim)
		return
	}
	before := s.executed
	s.runWin(end, lim)
	s.windows++
	if d := s.executed - before; d == 0 {
		s.emptyWins++
	} else if d > s.maxEvWindow {
		s.maxEvWindow = d
	}
}

// runWin dispatches this shard's events with cycle < end (and, when lim
// is nonzero, cycle <= lim), mirroring the sequential Run loop structure.
func (s *Shard) runWin(end, lim Cycle) {
	for !s.stopped {
		if len(s.heap) > 0 && s.heap[0].at == s.now {
			fn := s.pop()
			s.executed++
			fn()
			continue
		}
		if s.fifoPos < len(s.fifo) {
			fn := s.fifo[s.fifoPos]
			s.fifo[s.fifoPos] = nil
			s.fifoPos++
			if s.fifoPos >= 1024 && s.fifoPos*2 >= len(s.fifo) {
				n := copy(s.fifo, s.fifo[s.fifoPos:])
				clear(s.fifo[n:])
				s.fifo = s.fifo[:n]
				s.fifoPos = 0
			}
			s.executed++
			fn()
			continue
		}
		s.fifo = s.fifo[:0]
		s.fifoPos = 0
		if len(s.heap) == 0 {
			return
		}
		t := s.heap[0].at
		if t >= end {
			return
		}
		if lim != 0 && t > lim {
			return
		}
		s.now = t
	}
}

// Now returns this shard's clock: the cycle of its last dispatched event.
func (s *Shard) Now() Cycle { return s.now }

// At schedules fn at absolute cycle t on this shard.
func (s *Shard) At(t Cycle, fn func()) { s.at(t, fn) }

// After schedules fn d cycles from this shard's now.
func (s *Shard) After(d Cycle, fn func()) { s.at(s.now+d, fn) }

// Stop halts this shard after the current event and makes Run return at
// the window barrier.
func (s *Shard) Stop() {
	s.stopped = true
	s.eng.stopReq.Store(true)
}

// Deliver routes a message arrival to shard dst. During a run the delivery
// parks in this shard's outbox (merged at the barrier in barrier mode,
// batch-appended to the destination inbox after the burst in watermark
// mode); outside Run — e.g. test setup — it goes straight into the
// destination heap. Arrivals whose transit undercuts the conservative
// synchronization contract panic, naming the (src,dst) pair and the pair's
// lookahead bound.
func (s *Shard) Deliver(at Cycle, src, dst int, seq uint64, fn func()) {
	e := s.eng
	if !e.running {
		e.shards[dst].deliver(at, src, seq, fn)
		return
	}
	if e.sync == SyncWatermark {
		if lb := e.pairLookahead(src, dst); at < s.now+lb {
			panic(fmt.Sprintf("sim: sharded delivery %d->%d at cycle %d sent at %d: transit %d below pair lookahead %d",
				src, dst, at, s.now, at-s.now, lb))
		}
		if dst == s.id {
			// Self-deliveries join the shard's own heap directly: the
			// (at, key) order is identical to routing through a mailbox.
			s.push(event{at: at, key: deliveryKey(src, seq), fn: fn})
			return
		}
		s.outbox[dst] = append(s.outbox[dst], delivery{at: at, key: deliveryKey(src, seq), fn: fn})
		return
	}
	if at < e.winEnd {
		panic(fmt.Sprintf("sim: sharded delivery %d->%d at cycle %d inside window ending %d (transit below pair lookahead %d)",
			src, dst, at, e.winEnd, e.pairLookahead(src, dst)))
	}
	s.outbox[dst] = append(s.outbox[dst], delivery{at: at, key: deliveryKey(src, seq), fn: fn})
}
