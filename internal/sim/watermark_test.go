package sim_test

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"flashsim/internal/memsys"
	"flashsim/internal/sim"
)

// The watermark tests mirror the sharded barrier suite: the per-pair
// watermark scheduler must stay bit-identical to the sequential engine for
// every worker count, including under nonuniform per-pair latencies where
// far-apart shards run many windows ahead of each other.

// skewDist is a deliberately asymmetric distance model for the torture
// tests: transit depends on both endpoints, spanning skewMin..skewMax
// cycles, with some pairs well below the uniform torture window.
type skewDist struct{}

const (
	skewMin = sim.Cycle(8)
	skewMax = sim.Cycle(30)
)

func (skewDist) MinTransit(src, dst int) sim.Cycle {
	if src == dst {
		return 1
	}
	return skewMin + sim.Cycle((src*7+dst*11)%23) // 8..30
}

// runTortureDist is runTorture with per-pair delivery latencies drawn from
// dm: transit = MinTransit(src,dst) + jitter instead of window + jitter.
// The workload is engine-independent, so the sequential engine replays it
// identically without knowing about dm.
func runTortureDist(b sim.Backend, dm sim.DistanceModel, limit sim.Cycle) tortureResult {
	store := memsys.NewStore(tortureWords * 8)
	views := make([]*memsys.View, tortureNodes)
	for i := range views {
		views[i] = memsys.NewView(store)
	}
	b.SetQuantum(tortureWindow, func() {
		for _, v := range views {
			v.Flush()
		}
	})

	logs := make([][]uint64, tortureNodes)
	rngs := make([]uint64, tortureNodes)
	seqs := make([]uint64, tortureNodes)
	for i := range rngs {
		rngs[i] = uint64(0x9e3779b97f4a7c15 * uint64(i+1))
	}

	var tick func(i, n int)
	tick = func(i, n int) {
		s := b.Node(i)
		now := s.Now()
		r := xorshift(&rngs[i])
		logs[i] = append(logs[i], uint64(now)<<24|uint64(i)<<16|r&0xffff)
		switch r % 4 {
		case 0:
			views[i].Store(r%tortureWords, uint64(now)<<8|uint64(i))
		case 1:
			logs[i] = append(logs[i], views[i].Load((r>>4)%tortureWords)<<1|1)
		case 2:
			dst := int((r >> 8) % tortureNodes)
			at := now + dm.MinTransit(i, dst) + sim.Cycle(r%50)
			seqs[i]++
			payload := r
			src := i
			s.Deliver(at, src, dst, seqs[i], func() {
				d := b.Node(dst)
				logs[dst] = append(logs[dst], uint64(d.Now())<<24|uint64(src)<<4|0xf)
				views[dst].Store(payload%tortureWords, payload)
				d.At(d.Now()+3, func() {
					logs[dst] = append(logs[dst], uint64(d.Now())<<24|0xabc)
				})
			})
		}
		if n > 0 {
			s.After(1+sim.Cycle(r%37), func() { tick(i, n-1) })
		}
	}

	for i := 0; i < tortureNodes; i++ {
		i := i
		b.Node(i).At(sim.Cycle(1+i), func() { tick(i, tortureSteps) })
	}
	if limit != 0 {
		b.SetLimit(limit)
	}
	res := tortureResult{err: b.Run()}
	for _, v := range views {
		v.Flush()
	}
	res.logs = logs
	res.words = make([]uint64, tortureWords)
	for w := range res.words {
		res.words[w] = store.Load(uint64(w))
	}
	res.executed = b.ExecutedEvents()
	for _, s := range seqs {
		res.sends += s
	}
	res.now = b.Now()
	return res
}

func newWatermarkEngine(workers int, dm sim.DistanceModel) *sim.ShardedEngine {
	e := sim.NewShardedEngine(tortureNodes, tortureWindow)
	e.SetSync(sim.SyncWatermark)
	e.SetLookahead(dm)
	e.Workers = workers
	return e
}

// TestWatermarkDifferentialTorture: watermark mode with uniform lookahead
// must be bit-identical to the sequential engine at every pool size.
func TestWatermarkDifferentialTorture(t *testing.T) {
	want := runTorture(sim.NewEngine(), 0)
	for _, workers := range []int{0, 1, 2, tortureNodes} {
		got := runTorture(newWatermarkEngine(workers, nil), 0)
		compareTorture(t, fmt.Sprintf("watermark/workers=%d", workers), want, got)
	}
}

// TestWatermarkDifferentialTortureNonuniform is the distance-aware variant:
// per-pair delivery latencies (8..30 cycles, some well under the store
// quantum of 16) with the matching lookahead matrix installed. The
// sequential engine replays the same workload with no matrix; results must
// stay bit-identical even though shards now advance at pair-dependent
// horizons.
func TestWatermarkDifferentialTortureNonuniform(t *testing.T) {
	dm := skewDist{}
	want := runTortureDist(sim.NewEngine(), dm, 0)
	for _, workers := range []int{0, 1, 2, tortureNodes} {
		got := runTortureDist(newWatermarkEngine(workers, dm), dm, 0)
		compareTorture(t, fmt.Sprintf("watermark-dist/workers=%d", workers), want, got)
	}
}

// TestWatermarkSelfEchoOrdering pins the self-rooted echo bound in the
// closed-form horizon solve: with no flush gate and no limit, a shard whose
// peers hold no events must still cap its horizon at its own next event plus
// the minimum round trip, because one of its own sends can trigger a reply
// that lands between its events. Node 0 holds events at 10 and 100; event
// @10 delivers 0->1@15 whose handler delivers 1->0@20 — the reply must run
// before n0@100, as on the sequential engine. An uncapped horizon executes
// n0@100 first and the shard clock runs backwards when the echo arrives.
func TestWatermarkSelfEchoOrdering(t *testing.T) {
	run := func(b sim.Backend) string {
		var log []string
		b.Node(0).At(10, func() {
			log = append(log, fmt.Sprintf("n0@%d", b.Node(0).Now()))
			b.Node(0).Deliver(15, 0, 1, 1, func() {
				log = append(log, fmt.Sprintf("n1@%d", b.Node(1).Now()))
				b.Node(1).Deliver(20, 1, 0, 1, func() {
					log = append(log, fmt.Sprintf("reply@%d", b.Node(0).Now()))
				})
			})
		})
		b.Node(0).At(100, func() {
			log = append(log, fmt.Sprintf("n0@%d", b.Node(0).Now()))
		})
		if err := b.Run(); err != nil {
			t.Fatal(err)
		}
		return strings.Join(log, " ")
	}
	want := run(sim.NewEngine())
	// flatDist forces the matrix branch of the direct solve (2 nodes have no
	// off-diagonal triples, so the matrix is trivially metric); nil takes the
	// uniform min/second-min branch. Both omit the flush gate and the limit.
	for _, dm := range []sim.DistanceModel{nil, flatDist(5)} {
		for _, workers := range []int{1, 2} {
			e := sim.NewShardedEngine(2, 5)
			e.SetSync(sim.SyncWatermark)
			e.SetLookahead(dm)
			e.Workers = workers
			if got := run(e); got != want {
				t.Fatalf("matrix=%v workers=%d: order %q, want %q", dm != nil, workers, got, want)
			}
		}
	}
}

// flatDist is a uniform distance model expressed as a matrix, so the solver
// takes the matrix code path instead of the uniform fast path.
type flatDist sim.Cycle

func (f flatDist) MinTransit(src, dst int) sim.Cycle {
	if src == dst {
		return 1
	}
	return sim.Cycle(f)
}

// gridDist is a metric distance model (4x2 grid, Manhattan hops): it
// satisfies the triangle inequality, so the scheduler solves horizons with
// the closed-form one-pass path instead of the iterative fixpoint skewDist
// forces. Both solver paths must be bit-identical to the sequential engine.
type gridDist struct{}

func (gridDist) MinTransit(src, dst int) sim.Cycle {
	if src == dst {
		return 1
	}
	dx := src%4 - dst%4
	if dx < 0 {
		dx = -dx
	}
	dy := src/4 - dst/4
	if dy < 0 {
		dy = -dy
	}
	return sim.Cycle(5 + 3*(dx+dy))
}

// TestWatermarkDifferentialTortureMetric covers the closed-form solver on a
// genuinely nonuniform (but metric) lookahead matrix.
func TestWatermarkDifferentialTortureMetric(t *testing.T) {
	dm := gridDist{}
	want := runTortureDist(sim.NewEngine(), dm, 0)
	for _, workers := range []int{1, tortureNodes} {
		got := runTortureDist(newWatermarkEngine(workers, dm), dm, 0)
		compareTorture(t, fmt.Sprintf("watermark-grid/workers=%d", workers), want, got)
	}
}

// runTortureEcho is the echo-chain torture: per-node event chains whose
// deliveries travel at exactly the pair's minimum transit and whose handlers
// echo straight back to the sender — the tightest causal loops the lookahead
// matrix permits. quantum 0 runs with no store-visibility flush at all
// (eff = noCap in every decide); a nonzero quantum installs the gate with
// memsys views, covering matrices whose round trips are shorter than the
// window. gap bounds each node's local chain spacing: large gaps leave lone
// event-holders (whose horizons would be unbounded without the self
// round-trip cap), small gaps pack several events per node into one
// visibility window so echoes interleave with them below the gate.
func runTortureEcho(b sim.Backend, dm sim.DistanceModel, quantum sim.Cycle, gap uint64) tortureResult {
	transit := func(src, dst int) sim.Cycle {
		if dm == nil {
			return tortureWindow
		}
		return dm.MinTransit(src, dst)
	}
	var store *memsys.Store
	var views []*memsys.View
	if quantum != 0 {
		store = memsys.NewStore(tortureWords * 8)
		views = make([]*memsys.View, tortureNodes)
		for i := range views {
			views[i] = memsys.NewView(store)
		}
		b.SetQuantum(quantum, func() {
			for _, v := range views {
				v.Flush()
			}
		})
	}

	logs := make([][]uint64, tortureNodes)
	rngs := make([]uint64, tortureNodes)
	seqs := make([]uint64, tortureNodes)
	for i := range rngs {
		rngs[i] = uint64(0x9e3779b97f4a7c15 * uint64(i+1))
	}
	// send dispatches a minimum-transit delivery src->dst; its handler logs,
	// optionally stores, and echoes back to src with depth-1 until the chain
	// dies, producing src->dst->src->... ping-pong at the matrix bound.
	var send func(src, dst, depth int, payload uint64)
	send = func(src, dst, depth int, payload uint64) {
		s := b.Node(src)
		at := s.Now() + transit(src, dst)
		seqs[src]++
		s.Deliver(at, src, dst, seqs[src], func() {
			d := b.Node(dst)
			logs[dst] = append(logs[dst], uint64(d.Now())<<24|uint64(src)<<8|uint64(depth))
			if views != nil {
				views[dst].Store(payload%tortureWords, payload^uint64(d.Now()))
			}
			if depth > 0 {
				send(dst, src, depth-1, payload>>1)
			}
		})
	}
	var tick func(i, n int)
	tick = func(i, n int) {
		s := b.Node(i)
		r := xorshift(&rngs[i])
		logs[i] = append(logs[i], uint64(s.Now())<<24|uint64(i)<<16|r&0xffff)
		switch r % 3 {
		case 0:
			send(i, int((r>>8)%tortureNodes), int(r>>4%4), r)
		case 1:
			if views != nil {
				logs[i] = append(logs[i], views[i].Load((r>>4)%tortureWords)<<1|1)
			}
		}
		if n > 0 {
			s.After(1+sim.Cycle(r%gap), func() { tick(i, n-1) })
		}
	}
	for i := 0; i < tortureNodes; i++ {
		i := i
		b.Node(i).At(sim.Cycle(1+i), func() { tick(i, tortureSteps/3) })
	}
	res := tortureResult{err: b.Run()}
	res.logs = logs
	if store != nil {
		for _, v := range views {
			v.Flush()
		}
		res.words = make([]uint64, tortureWords)
		for w := range res.words {
			res.words[w] = store.Load(uint64(w))
		}
	}
	res.executed = b.ExecutedEvents()
	for _, s := range seqs {
		res.sends += s
	}
	res.now = b.Now()
	return res
}

// TestWatermarkDifferentialTortureFlushFree pins the self-echo horizon cap
// at torture scale: no flush gate, no limit, sparse events, minimum-transit
// echo chains — under uniform, metric (closed-form), and non-metric
// (fixpoint) lookahead. Before the cap, a shard alone in holding events ran
// unboundedly far ahead and echoes landed below its committed frontier.
func TestWatermarkDifferentialTortureFlushFree(t *testing.T) {
	for _, tc := range []struct {
		name string
		dm   sim.DistanceModel
	}{{"uniform", nil}, {"grid", gridDist{}}, {"skew", skewDist{}}} {
		want := runTortureEcho(sim.NewEngine(), tc.dm, 0, 499)
		for _, workers := range []int{1, 2, tortureNodes} {
			got := runTortureEcho(newWatermarkEngine(workers, tc.dm), tc.dm, 0, 499)
			compareTorture(t, fmt.Sprintf("echo-%s/workers=%d", tc.name, workers), want, got)
		}
	}
}

// nearDist is a metric model whose round trips (8..) undercut the store
// window (16): echo chains complete within a single visibility quantum, so
// the flush gate alone cannot serialize them — safety must come from the
// solver's round-trip cap. gridDist (min round trip 16 = the window) sits
// exactly at the masking threshold and cannot catch that regression.
type nearDist struct{}

func (nearDist) MinTransit(src, dst int) sim.Cycle {
	if src == dst {
		return 1
	}
	d := src - dst
	if d < 0 {
		d = -d
	}
	return sim.Cycle(3 + d) // 4..10, all below the window of 16
}

// TestWatermarkGatedSelfEchoWithinWindow pins the issue the flush gate
// alone cannot mask: a matrix round trip (8) below the window (16) lets an
// echo chain complete inside one visibility quantum, so the gate cap on the
// horizon does not order it — the solver's self round-trip cap must. Node 0
// holds events at 2 and 12 in the first window; event @2 sends 0->1@6 whose
// handler replies 1->0@10, and the reply must run before n0@12. Node 1's
// far event keeps it from draining early without bounding node 0's horizon.
func TestWatermarkGatedSelfEchoWithinWindow(t *testing.T) {
	run := func(b sim.Backend) string {
		b.SetQuantum(16, func() {})
		var log []string
		b.Node(0).At(2, func() {
			log = append(log, fmt.Sprintf("n0@%d", b.Node(0).Now()))
			b.Node(0).Deliver(6, 0, 1, 1, func() {
				log = append(log, fmt.Sprintf("n1@%d", b.Node(1).Now()))
				b.Node(1).Deliver(10, 1, 0, 1, func() {
					log = append(log, fmt.Sprintf("reply@%d", b.Node(0).Now()))
				})
			})
		})
		b.Node(0).At(12, func() {
			log = append(log, fmt.Sprintf("n0@%d", b.Node(0).Now()))
		})
		b.Node(1).At(200, func() {
			log = append(log, fmt.Sprintf("n1@%d", b.Node(1).Now()))
		})
		if err := b.Run(); err != nil {
			t.Fatal(err)
		}
		return strings.Join(log, " ")
	}
	want := run(sim.NewEngine())
	for _, workers := range []int{1, 2} {
		e := sim.NewShardedEngine(2, 16)
		e.SetSync(sim.SyncWatermark)
		e.SetLookahead(flatDist(4))
		e.Workers = workers
		if got := run(e); got != want {
			t.Fatalf("workers=%d: order %q, want %q", workers, got, want)
		}
	}
}

// TestWatermarkDifferentialTortureShortRoundTrip covers watermark safety
// when the lookahead matrix's minimum round trip is well below the engine
// window: within-window echoes at minimum transit, with the store gate
// installed, must stay bit-identical to the sequential engine.
func TestWatermarkDifferentialTortureShortRoundTrip(t *testing.T) {
	dm := nearDist{}
	want := runTortureEcho(sim.NewEngine(), dm, tortureWindow, 24)
	for _, workers := range []int{1, 2, tortureNodes} {
		got := runTortureEcho(newWatermarkEngine(workers, dm), dm, tortureWindow, 24)
		compareTorture(t, fmt.Sprintf("near/workers=%d", workers), want, got)
	}
}

// TestWatermarkDifferentialTortureWithLimit checks ErrLimit agreement and
// that a limited run can be resumed with a higher limit, matching the
// sequential engine at every step.
func TestWatermarkDifferentialTortureWithLimit(t *testing.T) {
	const limit = sim.Cycle(1500)
	want := runTorture(sim.NewEngine(), limit)
	if want.err != sim.ErrLimit {
		t.Fatalf("seq err = %v, want ErrLimit", want.err)
	}
	for _, workers := range []int{1, 4} {
		got := runTorture(newWatermarkEngine(workers, nil), limit)
		compareTorture(t, "watermark-limit", want, got)
	}
}

// TestWatermarkResumeAfterLimit pins ErrLimit resumability: frontiers and
// the flush gate persist across Run calls, so raising the limit and
// rerunning continues the simulation exactly where it stopped.
func TestWatermarkResumeAfterLimit(t *testing.T) {
	run := func(b sim.Backend) (mid, fin uint64, now sim.Cycle) {
		var log []uint64
		for i := 0; i < 4; i++ {
			i := i
			var ping func()
			ping = func() {
				s := b.Node(i)
				log = append(log, uint64(s.Now())<<8|uint64(i))
				dst := (i + 1) % 4
				s.Deliver(s.Now()+12, i, dst, uint64(len(log)), func() {})
				if s.Now() < 900 {
					s.After(7+sim.Cycle(i), ping)
				}
			}
			b.Node(i).At(sim.Cycle(1+i), ping)
		}
		b.SetLimit(400)
		if err := b.Run(); err != sim.ErrLimit {
			t.Fatalf("first run err = %v, want ErrLimit", err)
		}
		mid = b.ExecutedEvents()
		b.SetLimit(0)
		if err := b.Run(); err != nil {
			t.Fatalf("resume err = %v", err)
		}
		return mid, b.ExecutedEvents(), b.Now()
	}
	wm, wf, wn := run(sim.NewEngine())
	e := sim.NewShardedEngine(4, 10)
	e.SetSync(sim.SyncWatermark)
	gm, gf, gn := run(e)
	if gm != wm || gf != wf || gn != wn {
		t.Fatalf("watermark resume = (%d,%d,%d), want (%d,%d,%d)", gm, gf, gn, wm, wf, wn)
	}
}

// TestWatermarkIdleShardNoDeadlock is the deadlock-freedom check from the
// issue: shards that never send must not stall their peers. Node 3 holds a
// single far-future event and no traffic; nodes 0..2 ping-pong thousands of
// deliveries below it. The null-message fixpoint must carry node 3's
// frontier forward so the ring keeps advancing; a scheduler stall would
// trip the watchdog.
func TestWatermarkIdleShardNoDeadlock(t *testing.T) {
	e := sim.NewShardedEngine(4, 10)
	e.SetSync(sim.SyncWatermark)
	e.Workers = 4
	var hops int
	var hop func(node int)
	hop = func(node int) {
		hops++
		s := e.Node(node)
		if s.Now() > 50000 {
			return
		}
		dst := (node + 1) % 3
		s.Deliver(s.Now()+10, node, dst, uint64(hops), func() { hop(dst) })
	}
	e.Node(0).At(1, func() { hop(0) })
	var lateRan bool
	e.Node(3).At(60000, func() { lateRan = true })

	done := make(chan error, 1)
	go func() { done <- e.Run() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("watermark engine deadlocked with an idle shard")
	}
	if hops < 1000 {
		t.Fatalf("ring made only %d hops", hops)
	}
	if !lateRan {
		t.Fatal("idle shard's far-future event never ran")
	}
}

// TestWatermarkLookaheadViolationPanics pins the sharpened guard rail: the
// panic must name the (src,dst) pair and the pair's lookahead bound.
func TestWatermarkLookaheadViolationPanics(t *testing.T) {
	e := sim.NewShardedEngine(2, 10)
	e.SetSync(sim.SyncWatermark)
	e.Workers = 1
	s := e.Node(0)
	s.At(5, func() {
		s.Deliver(7, 0, 1, 1, func() {})
	})
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("sub-lookahead delivery did not panic")
		}
		msg := fmt.Sprint(r)
		for _, want := range []string{"0->1", "at cycle 7", "sent at 5", "pair lookahead 10"} {
			if !strings.Contains(msg, want) {
				t.Fatalf("panic %q missing %q", msg, want)
			}
		}
	}()
	_ = e.Run()
}

// TestBarrierViolationPanicNamesPair pins the barrier-mode message shape,
// which now also names the offending pair and its lookahead bound.
func TestBarrierViolationPanicNamesPair(t *testing.T) {
	e := sim.NewShardedEngine(2, 10)
	e.Workers = 1
	s := e.Node(0)
	s.At(5, func() {
		s.Deliver(7, 0, 1, 1, func() {})
	})
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("in-window delivery did not panic")
		}
		msg := fmt.Sprint(r)
		for _, want := range []string{"0->1", "at cycle 7", "window ending 10", "pair lookahead 10"} {
			if !strings.Contains(msg, want) {
				t.Fatalf("panic %q missing %q", msg, want)
			}
		}
	}()
	_ = e.Run()
}

// TestWatermarkStopFromShard mirrors the barrier Stop semantics: the
// stopping shard halts immediately, in-flight bursts finish, pending events
// survive.
func TestWatermarkStopFromShard(t *testing.T) {
	e := sim.NewShardedEngine(4, 10)
	e.SetSync(sim.SyncWatermark)
	var after bool
	e.Node(2).At(25, func() { e.Node(2).Stop() })
	e.Node(2).At(26, func() { after = true })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if after {
		t.Fatal("event on stopping shard after Stop ran")
	}
	if e.Pending() == 0 {
		t.Fatal("pending event discarded by Stop")
	}
}

// TestWatermarkProfileCoverage checks the watermark phases account for the
// run: burst exec + horizon wait + frontier solve must cover >= 95% of
// engine wall time, and the sync-op counters must be populated.
func TestWatermarkProfileCoverage(t *testing.T) {
	e := newWatermarkEngine(2, nil)
	e.EnableProfiling()
	res := runTorture(e, 0)
	if res.err != nil {
		t.Fatal(res.err)
	}
	p := e.Profile()
	if p == nil {
		t.Fatal("no profile")
	}
	if p.Sync != "watermark" {
		t.Fatalf("profile sync = %q", p.Sync)
	}
	if c := p.Coverage(); c < 0.95 {
		t.Fatalf("coverage = %.3f, want >= 0.95\n%s", c, p)
	}
	if p.Solves == 0 || p.SolveOps == 0 || p.GateAdvances == 0 {
		t.Fatalf("sync counters empty: solves=%d ops=%d gates=%d", p.Solves, p.SolveOps, p.GateAdvances)
	}
	var pubs, flushes uint64
	for i := range p.Shards {
		pubs += p.Shards[i].Publishes
		flushes += p.Shards[i].InboxFlushes
	}
	if pubs == 0 || flushes == 0 {
		t.Fatalf("shard counters empty: pubs=%d flushes=%d", pubs, flushes)
	}
	if p.SyncOps() == 0 {
		t.Fatal("SyncOps = 0")
	}
	if !strings.Contains(p.String(), "horizon wait") {
		t.Fatalf("report missing watermark phases:\n%s", p)
	}
}

// BenchmarkWindowSync compares the synchronization schemes on the torture
// workload — the sync-op reduction is the point, so the benchmark also
// reports it per scheme.
func BenchmarkWindowSync(b *testing.B) {
	for _, bc := range []struct {
		name string
		mode sim.SyncMode
	}{{"barrier", sim.SyncBarrier}, {"watermark", sim.SyncWatermark}} {
		b.Run(bc.name, func(b *testing.B) {
			var ops, cycles uint64
			for i := 0; i < b.N; i++ {
				e := sim.NewShardedEngine(tortureNodes, tortureWindow)
				e.SetSync(bc.mode)
				e.EnableProfiling()
				res := runTorture(e, 0)
				if res.err != nil {
					b.Fatal(res.err)
				}
				ops += e.Profile().SyncOps()
				cycles += uint64(res.now)
			}
			b.ReportMetric(float64(ops)/float64(b.N), "syncops/run")
			b.ReportMetric(float64(ops)/float64(cycles)*1000, "syncops/kcycle")
		})
	}
}
