package sim

// DistanceModel exposes the minimum cross-node message latency per
// (source, destination) pair. The network provides implementations (uniform
// transit, or the 2-D mesh hop model); the sharded engine consumes one to
// build its lookahead matrix, so far-apart shards may run further ahead of
// each other than neighbours.
//
// MinTransit(src, dst) must LOWER-bound every actual delivery latency the
// model will ever produce for that pair: a delivery whose transit undercuts
// it violates the conservative synchronization contract and panics. That is
// the ONLY requirement — watermark safety does not depend on any relation
// between the matrix and the engine's window (the store-visibility
// quantum), because the horizon solver caps every shard at its own minimum
// round trip through a peer (see decide in watermark.go), so within-window
// echo chains are bounded by the matrix itself.
type DistanceModel interface {
	// MinTransit returns the minimum cycles between a send at src and its
	// arrival at dst. Must be >= 1 for src != dst and stable for the
	// lifetime of the engine.
	MinTransit(src, dst int) Cycle
}

// lookahead is the engine's per-(src,dst) lookahead matrix plus its derived
// minima. A nil *lookahead means uniform lookahead equal to the engine's
// window — the degenerate matrix — for which every computation below has an
// O(1)-per-pair fast path.
type lookahead struct {
	n   int
	l   []Cycle // l[src*n+dst]
	min Cycle   // min over all pairs src != dst
	// rt[b] is shard b's minimum round trip through any peer: min over
	// c != b of l[b][c] + l[c][b] (noCap when n == 1). It lower-bounds how
	// soon a causal chain rooted at one of b's own events can echo an
	// arrival back to b, so the watermark solver caps b's horizon at
	// next[b] + rt[b].
	rt []Cycle
	// tri reports whether the matrix satisfies the triangle inequality
	// (L[a][c] <= L[a][b] + L[b][c] for all distinct a,b,c). Metric-derived
	// models (uniform transit, mesh hop distance) always do, and it lets the
	// watermark scheduler solve horizons in one pass: a null message relayed
	// through an intermediate shard can never beat the direct bound, so only
	// one-hop promises matter. Non-metric matrices fall back to the
	// iterative fixpoint.
	tri bool
}

// newLookahead samples dm into a dense matrix for n nodes.
func newLookahead(n int, dm DistanceModel) *lookahead {
	lk := &lookahead{n: n, l: make([]Cycle, n*n)}
	first := true
	for s := 0; s < n; s++ {
		for d := 0; d < n; d++ {
			t := dm.MinTransit(s, d)
			if t == 0 {
				t = 1
			}
			lk.l[s*n+d] = t
			if s != d && (first || t < lk.min) {
				lk.min, first = t, false
			}
		}
	}
	if first {
		lk.min = 1
	}
	lk.rt = make([]Cycle, n)
	for b := 0; b < n; b++ {
		lk.rt[b] = noCap
		for c := 0; c < n; c++ {
			if c == b {
				continue
			}
			if v := lk.l[b*n+c] + lk.l[c*n+b]; v < lk.rt[b] {
				lk.rt[b] = v
			}
		}
	}
	lk.tri = lk.triangular()
	return lk
}

// triangular checks the triangle inequality over all off-diagonal triples.
// O(n^3) once at construction; n is the node count, so this is trivial.
func (lk *lookahead) triangular() bool {
	for a := 0; a < lk.n; a++ {
		for b := 0; b < lk.n; b++ {
			if b == a {
				continue
			}
			for c := 0; c < lk.n; c++ {
				if c == a || c == b {
					continue
				}
				if lk.at(a, c) > lk.at(a, b)+lk.at(b, c) {
					return false
				}
			}
		}
	}
	return true
}

// at returns L[src][dst].
func (lk *lookahead) at(src, dst int) Cycle { return lk.l[src*lk.n+dst] }

// SetLookahead installs a per-pair lookahead matrix derived from dm (nil
// restores the uniform default: every pair at the engine's window). The
// matrix bounds how far one shard's horizon may trail another's watermark in
// watermark sync mode, and sharpens the delivery-violation diagnostics in
// both modes. Call before Run.
func (e *ShardedEngine) SetLookahead(dm DistanceModel) {
	if dm == nil {
		e.look = nil
		return
	}
	e.look = newLookahead(len(e.shards), dm)
}

// pairLookahead returns the lookahead bound for (src,dst): the matrix entry
// when a matrix is installed, the uniform window otherwise.
func (e *ShardedEngine) pairLookahead(src, dst int) Cycle {
	if e.look != nil {
		return e.look.at(src, dst)
	}
	return e.window
}
