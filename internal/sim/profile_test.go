package sim_test

import (
	"strings"
	"testing"

	"flashsim/internal/sim"
)

// TestProfilingDoesNotPerturb drives the torture workload with and without
// self-profiling at several worker counts and demands bit-identical
// simulated results: profiling is host-side observation only.
func TestProfilingDoesNotPerturb(t *testing.T) {
	base := runTorture(sim.NewShardedEngine(tortureNodes, tortureWindow), 0)
	for _, workers := range []int{1, 2, 8} {
		e := sim.NewShardedEngine(tortureNodes, tortureWindow)
		e.Workers = workers
		e.EnableProfiling()
		got := runTorture(e, 0)
		compareTorture(t, "profiled", base, got)
	}

	seqBase := runTorture(sim.NewEngine(), 0)
	se := sim.NewEngine()
	se.EnableProfiling()
	compareTorture(t, "profiled-seq", seqBase, runTorture(se, 0))
}

// TestProfileAttribution checks the profile's internal accounting at each
// worker count: phase coverage of at least 95% of engine wall time, shard
// event counts summing to the engine total, a consistent outbox traffic
// matrix, and sane window-utilization and heap statistics.
func TestProfileAttribution(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		e := sim.NewShardedEngine(tortureNodes, tortureWindow)
		e.Workers = workers
		e.EnableProfiling()
		res := runTorture(e, 0)
		if res.err != nil {
			t.Fatalf("workers=%d: %v", workers, res.err)
		}
		p := e.Profile()
		if p == nil {
			t.Fatalf("workers=%d: nil profile", workers)
		}
		if p.Engine != "sharded" || p.Workers != workers {
			t.Errorf("workers=%d: profile header %s/%d", workers, p.Engine, p.Workers)
		}
		if cov := p.Coverage(); cov < 0.95 {
			t.Errorf("workers=%d: coverage %.3f, want >= 0.95", workers, cov)
		}
		if len(p.Shards) != tortureNodes {
			t.Fatalf("workers=%d: %d shard profiles, want %d", workers, len(p.Shards), tortureNodes)
		}
		var events, sent uint64
		for i := range p.Shards {
			s := &p.Shards[i]
			events += s.Executed
			if s.EmptyWindows > s.Windows {
				t.Errorf("workers=%d shard %d: empty %d > windows %d", workers, i, s.EmptyWindows, s.Windows)
			}
			if s.Executed > 0 && s.HeapHiWater == 0 {
				t.Errorf("workers=%d shard %d: executed %d events but heap high-water 0", workers, i, s.Executed)
			}
			if len(s.OutboxSent) != tortureNodes {
				t.Fatalf("workers=%d shard %d: outbox row length %d, want %d", workers, i, len(s.OutboxSent), tortureNodes)
			}
			for _, n := range s.OutboxSent {
				sent += n
			}
		}
		if events != res.executed {
			t.Errorf("workers=%d: shard events sum %d != executed %d", workers, events, res.executed)
		}
		if sent == 0 {
			t.Errorf("workers=%d: outbox matrix empty; torture workload always crosses shards", workers)
		}
		// Every delivery the workload issued while the engine ran goes
		// through an outbox (route tallies at the source shard), so the
		// matrix must account for each send exactly once.
		if sent != res.sends {
			t.Errorf("workers=%d: outbox matrix counts %d sends, want %d", workers, sent, res.sends)
		}
		if !strings.Contains(p.String(), "coverage") {
			t.Errorf("workers=%d: String() missing coverage line:\n%s", workers, p)
		}
	}
}

// TestProfileDisabled pins the zero-cost contract: without EnableProfiling,
// Profile returns nil on both engines and the outbox matrix stays unallocated.
func TestProfileDisabled(t *testing.T) {
	e := sim.NewShardedEngine(2, 8)
	if p := e.Profile(); p != nil {
		t.Errorf("sharded Profile() = %+v before EnableProfiling, want nil", p)
	}
	if p := sim.NewEngine().Profile(); p != nil {
		t.Errorf("seq Profile() = %+v before EnableProfiling, want nil", p)
	}
}
