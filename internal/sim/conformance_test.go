package sim_test

import (
	"testing"

	"flashsim/internal/sim"
)

// backendCase builds one engine behind the shared Backend interface. The
// conformance suite runs every scenario against both engines and demands
// identical observable behaviour — the edge cases here are the contract the
// sharded backend must honor bit-for-bit.
type backendCase struct {
	name string
	mk   func(nodes int, window sim.Cycle) sim.Backend
}

func backendCases() []backendCase {
	return []backendCase{
		{"seq", func(nodes int, window sim.Cycle) sim.Backend {
			return sim.NewEngine()
		}},
		{"sharded", func(nodes int, window sim.Cycle) sim.Backend {
			return sim.NewShardedEngine(nodes, window)
		}},
		{"sharded-1worker", func(nodes int, window sim.Cycle) sim.Backend {
			e := sim.NewShardedEngine(nodes, window)
			e.Workers = 1
			return e
		}},
		{"watermark", func(nodes int, window sim.Cycle) sim.Backend {
			e := sim.NewShardedEngine(nodes, window)
			e.SetSync(sim.SyncWatermark)
			return e
		}},
		{"watermark-1worker", func(nodes int, window sim.Cycle) sim.Backend {
			e := sim.NewShardedEngine(nodes, window)
			e.SetSync(sim.SyncWatermark)
			e.Workers = 1
			return e
		}},
	}
}

// TestConformanceStopInsideFifo pins Stop called from a same-cycle FIFO
// event: the current event completes, later FIFO entries and future events
// stay pending.
func TestConformanceStopInsideFifo(t *testing.T) {
	for _, bc := range backendCases() {
		t.Run(bc.name, func(t *testing.T) {
			b := bc.mk(1, 10)
			s := b.Node(0)
			var order []int
			s.At(5, func() {
				order = append(order, 1)
				s.At(5, func() {
					order = append(order, 2)
					s.Stop()
				})
				s.At(5, func() { order = append(order, 3) })
			})
			s.At(9, func() { order = append(order, 4) })
			if err := b.Run(); err != nil {
				t.Fatal(err)
			}
			if len(order) != 2 || order[0] != 1 || order[1] != 2 {
				t.Fatalf("order = %v, want [1 2]", order)
			}
			if got := b.Pending(); got != 2 {
				t.Fatalf("Pending = %d, want 2 (one fifo entry, one future event)", got)
			}
			if got := b.ExecutedEvents(); got != 2 {
				t.Fatalf("ExecutedEvents = %d, want 2", got)
			}
		})
	}
}

// TestConformanceAtExactlyLimit pins the limit boundary: an event at
// exactly Limit runs; anything beyond aborts with ErrLimit.
func TestConformanceAtExactlyLimit(t *testing.T) {
	for _, bc := range backendCases() {
		t.Run(bc.name, func(t *testing.T) {
			b := bc.mk(1, 10)
			ran := false
			b.Node(0).At(42, func() { ran = true })
			b.SetLimit(42)
			if err := b.Run(); err != nil {
				t.Fatal(err)
			}
			if !ran {
				t.Fatal("event at exactly Limit did not run")
			}

			b = bc.mk(1, 10)
			ran = false
			b.Node(0).At(43, func() { ran = true })
			b.SetLimit(42)
			if err := b.Run(); err != sim.ErrLimit {
				t.Fatalf("err = %v, want ErrLimit", err)
			}
			if ran {
				t.Fatal("event beyond Limit ran")
			}
			if got := b.Pending(); got != 1 {
				t.Fatalf("Pending = %d, want 1", got)
			}
		})
	}
}

// TestConformanceFifoCompaction pins FIFO ordering across the fifoPos
// compaction threshold: a same-cycle chain of several thousand events must
// dispatch strictly in insertion order on both engines.
func TestConformanceFifoCompaction(t *testing.T) {
	for _, bc := range backendCases() {
		t.Run(bc.name, func(t *testing.T) {
			const chain = 5000
			b := bc.mk(1, 10)
			s := b.Node(0)
			var got []int
			var step func(i int)
			step = func(i int) {
				got = append(got, i)
				if i+1 < chain {
					s.At(s.Now(), func() { step(i + 1) })
				}
			}
			after := false
			s.At(3, func() { step(0) })
			s.At(4, func() { after = true })
			if err := b.Run(); err != nil {
				t.Fatal(err)
			}
			if len(got) != chain {
				t.Fatalf("dispatched %d, want %d", len(got), chain)
			}
			for i, v := range got {
				if v != i {
					t.Fatalf("got[%d] = %d: FIFO order violated across compaction", i, v)
				}
			}
			if !after {
				t.Fatal("next-cycle event did not run")
			}
		})
	}
}

// TestConformanceDeliveryOrdering pins the shared ordering rule: at a given
// cycle, deliveries dispatch before locally scheduled events, ordered by
// (source node, send sequence) regardless of the order the Deliver calls
// were made.
func TestConformanceDeliveryOrdering(t *testing.T) {
	for _, bc := range backendCases() {
		t.Run(bc.name, func(t *testing.T) {
			b := bc.mk(3, 10)
			n1 := b.Node(1)
			var order []string
			n1.At(30, func() { order = append(order, "localA") })
			n1.At(30, func() { order = append(order, "localB") })
			// Deliver calls arrive out of source order; dispatch must not
			// care.
			b.Node(2).Deliver(30, 2, 1, 1, func() { order = append(order, "d2.1") })
			b.Node(2).Deliver(30, 2, 1, 2, func() { order = append(order, "d2.2") })
			b.Node(0).Deliver(30, 0, 1, 1, func() { order = append(order, "d0.1") })
			if err := b.Run(); err != nil {
				t.Fatal(err)
			}
			want := []string{"d0.1", "d2.1", "d2.2", "localA", "localB"}
			if len(order) != len(want) {
				t.Fatalf("order = %v, want %v", order, want)
			}
			for i := range want {
				if order[i] != want[i] {
					t.Fatalf("order = %v, want %v", order, want)
				}
			}
		})
	}
}
