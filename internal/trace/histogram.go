package trace

import (
	"fmt"
	"math/bits"
)

// HistBuckets is the number of power-of-two latency buckets. Bucket i
// counts observations v with bits.Len64(v) == i, i.e. v in [2^(i-1), 2^i);
// bucket 0 holds v == 0 and the last bucket absorbs everything above
// 2^(HistBuckets-2). 40 buckets cover every latency a bounded simulation
// can produce (2^38 cycles ≈ 45 simulated minutes).
const HistBuckets = 40

// Histogram is a fixed-bucket latency histogram with exact count, sum, min
// and max. The value type has no pointers and a fixed size, so embedding
// one in per-node statistics costs no allocations and recording an
// observation is a handful of integer operations — cheap enough to stay
// always-on.
type Histogram struct {
	Count   uint64              `json:"count"`
	Sum     uint64              `json:"sum"`
	Min     uint64              `json:"min"`
	Max     uint64              `json:"max"`
	Buckets [HistBuckets]uint64 `json:"pow2_buckets"`
}

// Observe records one value.
func (h *Histogram) Observe(v uint64) {
	i := bits.Len64(v)
	if i >= HistBuckets {
		i = HistBuckets - 1
	}
	h.Buckets[i]++
	h.Sum += v
	if h.Count == 0 || v < h.Min {
		h.Min = v
	}
	if v > h.Max {
		h.Max = v
	}
	h.Count++
}

// Merge folds o into h.
func (h *Histogram) Merge(o *Histogram) {
	if o.Count == 0 {
		return
	}
	if h.Count == 0 || o.Min < h.Min {
		h.Min = o.Min
	}
	if o.Max > h.Max {
		h.Max = o.Max
	}
	h.Count += o.Count
	h.Sum += o.Sum
	for i := range h.Buckets {
		h.Buckets[i] += o.Buckets[i]
	}
}

// Mean returns the exact mean of all observations (0 when empty).
func (h *Histogram) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return float64(h.Sum) / float64(h.Count)
}

// BucketBounds returns the half-open value range [lo, hi) of bucket i.
func BucketBounds(i int) (lo, hi uint64) {
	if i <= 0 {
		return 0, 1
	}
	return 1 << (i - 1), 1 << i
}

// Quantile estimates the q-quantile (q in [0,1]) assuming a uniform
// distribution within each bucket, clamped to the exact Min/Max.
func (h *Histogram) Quantile(q float64) float64 {
	if h.Count == 0 {
		return 0
	}
	if q <= 0 {
		return float64(h.Min)
	}
	if q >= 1 {
		return float64(h.Max)
	}
	rank := q * float64(h.Count)
	var seen float64
	for i, n := range h.Buckets {
		if n == 0 {
			continue
		}
		if seen+float64(n) >= rank {
			lo, hi := BucketBounds(i)
			v := float64(lo) + (rank-seen)/float64(n)*float64(hi-lo)
			if v < float64(h.Min) {
				v = float64(h.Min)
			}
			if v > float64(h.Max) {
				v = float64(h.Max)
			}
			return v
		}
		seen += float64(n)
	}
	return float64(h.Max)
}

// String renders a compact one-line summary.
func (h *Histogram) String() string {
	if h.Count == 0 {
		return "n=0"
	}
	return fmt.Sprintf("n=%d mean=%.1f min=%d p50~%.0f p90~%.0f p99~%.0f max=%d",
		h.Count, h.Mean(), h.Min, h.Quantile(0.5), h.Quantile(0.9), h.Quantile(0.99), h.Max)
}
