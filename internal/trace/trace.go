// Package trace is the simulator's observability layer: a structured,
// causally-linked event tracer, fixed-bucket latency histograms, and
// windowed occupancy samplers.
//
// The tracer is strictly observational. Emitting an event never touches the
// event engine, never allocates on the simulated hot path when disabled,
// and never changes simulated behavior: the golden-digest test runs with a
// tracer attached and requires bit-identical cycle and event counts.
//
// A Tracer is per machine, not global: the experiment driver runs many
// machines concurrently, and each machine's simulation goroutine owns its
// tracer exclusively. A nil *Tracer is valid and means "tracing off"; every
// method has a nil fast path, so components hold a possibly-nil tracer and
// call it unconditionally.
package trace

import (
	"encoding/json"
	"fmt"
)

// Kind classifies a trace event.
type Kind uint8

const (
	// KindMsgSend marks a protocol message injected into the interconnect.
	KindMsgSend Kind = iota
	// KindMsgRecv marks a protocol message delivered to its destination node.
	KindMsgRecv
	// KindHandler is a handler invocation span: dispatch through completion
	// on MAGIC's protocol processor, or the zero-time equivalent on the
	// idealized controller.
	KindHandler
	// KindMissIssue marks a processor cache miss leaving for the controller.
	KindMissIssue
	// KindMissDone marks a miss completing (first data word on the bus).
	KindMissDone
	// KindNak marks a negative acknowledgment arriving at the requester.
	KindNak
	// KindFill marks a processor cache line fill.
	KindFill
	// KindEvict marks a victim leaving the processor cache (writeback or
	// replacement hint).
	KindEvict
	// KindIntervene marks a controller-initiated processor-cache transaction
	// (invalidate, downgrade, flush).
	KindIntervene
	// KindMemRead is a memory-controller read reservation span.
	KindMemRead
	// KindMemWrite is a memory-controller write reservation span.
	KindMemWrite

	numKinds
)

var kindNames = [numKinds]string{
	"msg-send", "msg-recv", "handler",
	"miss-issue", "miss-done", "nak",
	"fill", "evict", "intervene",
	"mem-read", "mem-write",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// MarshalJSON renders the kind as its name, keeping JSONL traces readable
// and stable across reorderings of the Kind constants.
func (k Kind) MarshalJSON() ([]byte, error) {
	return json.Marshal(k.String())
}

// UnmarshalJSON accepts a kind name (or a legacy numeric value).
func (k *Kind) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err == nil {
		for i, n := range kindNames {
			if n == s {
				*k = Kind(i)
				return nil
			}
		}
		return fmt.Errorf("trace: unknown event kind %q", s)
	}
	var v uint8
	if err := json.Unmarshal(b, &v); err != nil {
		return err
	}
	*k = Kind(v)
	return nil
}

// Event is one structured trace record. Cycle is in simulated 10 ns cycles;
// Dur is nonzero for span events (handler executions, memory reservations).
// ID and Parent causally link records: a handler's Parent is the id of the
// message that dispatched it, a message's Parent is the id of the handler
// that composed it, and a miss completion's Parent is the id of the reply
// that delivered it. Name carries the handler entry point or message type.
type Event struct {
	Cycle  uint64 `json:"c"`
	Dur    uint64 `json:"d,omitempty"`
	Node   int32  `json:"n"`
	Kind   Kind   `json:"k"`
	Addr   uint64 `json:"a,omitempty"`
	Arg    uint64 `json:"x,omitempty"`
	ID     uint64 `json:"id,omitempty"`
	Parent uint64 `json:"p,omitempty"`
	Name   string `json:"name,omitempty"`
}

// Sink receives emitted events. Sinks are called from the machine's
// simulation goroutine only and need no internal locking.
type Sink interface {
	Emit(Event)
	Close() error
}

// Tracer hands events to a sink and issues causal ids. The zero id means
// "no causal link"; real ids start at 1.
type Tracer struct {
	sink   Sink
	nextID uint64
	step   uint64 // id stride; 1 for plain tracers
}

// New returns a tracer writing to sink.
func New(sink Sink) *Tracer { return &Tracer{sink: sink, step: 1} }

// NewStrided returns a tracer whose ids walk the arithmetic sequence
// offset+step, offset+2·step, … — so per-node tracers on the parallel
// engine (node i of n gets offset i, step n) mint globally unique causal
// ids without synchronization, and the ids depend only on each node's own
// emission order.
func NewStrided(sink Sink, offset, step uint64) *Tracer {
	if step == 0 {
		step = 1
	}
	return &Tracer{sink: sink, nextID: offset, step: step}
}

// Active reports whether emitting is worthwhile; safe on a nil tracer.
// Components guard multi-field Event construction with Active so a disabled
// tracer costs one predictable branch.
func (t *Tracer) Active() bool { return t != nil && t.sink != nil }

// NewID returns the next causal id, or 0 on a nil tracer.
func (t *Tracer) NewID() uint64 {
	if t == nil {
		return 0
	}
	if t.step == 0 {
		t.step = 1 // zero-value Tracer compatibility
	}
	t.nextID += t.step
	return t.nextID
}

// Emit forwards ev to the sink; no-op on a nil or sink-less tracer.
func (t *Tracer) Emit(ev Event) {
	if t == nil || t.sink == nil {
		return
	}
	t.sink.Emit(ev)
}

// Close flushes and closes the sink.
func (t *Tracer) Close() error {
	if t == nil || t.sink == nil {
		return nil
	}
	return t.sink.Close()
}
