package trace

// TimeSeries accumulates resource busy-cycles into fixed-width windows of
// the simulated clock, turning a whole-run occupancy scalar into an
// occupancy-over-time curve. A nil *TimeSeries is valid and means
// "sampling off": Add on nil is a no-op, so components call it
// unconditionally next to their OccupancyMeter updates.
type TimeSeries struct {
	Window uint64   `json:"window"` // window width in cycles
	Busy   []uint64 `json:"busy"`   // busy cycles per window
}

// NewTimeSeries returns a sampler with the given window width in cycles
// (minimum 1).
func NewTimeSeries(window uint64) *TimeSeries {
	if window == 0 {
		window = 1
	}
	return &TimeSeries{Window: window}
}

// Add records a busy interval [at, at+dur), splitting it across window
// boundaries so each window's busy count is exact.
func (s *TimeSeries) Add(at, dur uint64) {
	if s == nil || dur == 0 {
		return
	}
	for dur > 0 {
		w := at / s.Window
		for uint64(len(s.Busy)) <= w {
			s.Busy = append(s.Busy, 0)
		}
		span := (w+1)*s.Window - at // room left in this window
		if span > dur {
			span = dur
		}
		s.Busy[w] += span
		at += span
		dur -= span
	}
}

// Merge folds o (which must share the window width) into s, summing busy
// counts per window.
func (s *TimeSeries) Merge(o *TimeSeries) {
	if s == nil || o == nil {
		return
	}
	for len(s.Busy) < len(o.Busy) {
		s.Busy = append(s.Busy, 0)
	}
	for i, b := range o.Busy {
		s.Busy[i] += b
	}
}

// Fractions returns per-window occupancy in [0,1], dividing each window's
// busy count by width*servers (servers > 1 when the series aggregates
// several merged resources).
func (s *TimeSeries) Fractions(servers int) []float64 {
	if s == nil || len(s.Busy) == 0 {
		return nil
	}
	if servers < 1 {
		servers = 1
	}
	out := make([]float64, len(s.Busy))
	den := float64(s.Window) * float64(servers)
	for i, b := range s.Busy {
		out[i] = float64(b) / den
	}
	return out
}
