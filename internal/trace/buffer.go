package trace

import "sort"

// Buffer is an in-memory sink. The parallel engine gives each node a
// Buffer-backed strided tracer so emission never crosses shards; the
// machine merges the buffers deterministically into the user's sink after
// the run (MergeBuffers).
type Buffer struct {
	Events []Event
}

// Emit appends ev.
func (b *Buffer) Emit(ev Event) { b.Events = append(b.Events, ev) }

// Close is a no-op.
func (b *Buffer) Close() error { return nil }

// MergeBuffers drains the per-node buffers into dst in a deterministic
// order: ascending cycle, ties broken by buffer (node) index, preserving
// each buffer's own emission order among same-cycle events. The order
// depends only on simulated behaviour, never on host scheduling.
func MergeBuffers(dst *Tracer, bufs []*Buffer) {
	type ref struct {
		buf int
		pos int
	}
	var total int
	for _, b := range bufs {
		total += len(b.Events)
	}
	refs := make([]ref, 0, total)
	for bi, b := range bufs {
		for pi := range b.Events {
			refs = append(refs, ref{buf: bi, pos: pi})
		}
	}
	sort.SliceStable(refs, func(i, j int) bool {
		return bufs[refs[i].buf].Events[refs[i].pos].Cycle < bufs[refs[j].buf].Events[refs[j].pos].Cycle
	})
	for _, r := range refs {
		dst.Emit(bufs[r.buf].Events[r.pos])
	}
	for _, b := range bufs {
		b.Events = b.Events[:0]
	}
}
