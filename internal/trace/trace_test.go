package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestNilTracerIsInert(t *testing.T) {
	var tr *Tracer
	if tr.Active() {
		t.Fatal("nil tracer reports active")
	}
	if id := tr.NewID(); id != 0 {
		t.Fatalf("nil tracer NewID = %d, want 0", id)
	}
	tr.Emit(Event{Kind: KindFill}) // must not panic
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestTracerIDsAndEmit(t *testing.T) {
	var buf bytes.Buffer
	tr := New(NewJSONLSink(&buf))
	if !tr.Active() {
		t.Fatal("tracer with sink not active")
	}
	if a, b := tr.NewID(), tr.NewID(); a != 1 || b != 2 {
		t.Fatalf("ids = %d, %d, want 1, 2", a, b)
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	events := []Event{
		{Cycle: 100, Node: 3, Kind: KindMissIssue, Addr: 0x2000, ID: 1, Name: "GET"},
		{Cycle: 140, Node: 0, Kind: KindHandler, Dur: 12, ID: 2, Parent: 1, Name: "h_get_home"},
		{Cycle: 190, Node: 3, Kind: KindMissDone, Addr: 0x2000, ID: 1, Parent: 2},
		{Cycle: 200, Node: 3, Kind: KindMemRead, Dur: 29},
	}
	var buf bytes.Buffer
	sink := NewJSONLSink(&buf)
	tr := New(sink)
	for _, ev := range events {
		tr.Emit(ev)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}

	got, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(events) {
		t.Fatalf("decoded %d events, want %d", len(got), len(events))
	}
	for i := range events {
		if got[i] != events[i] {
			t.Errorf("event %d: got %+v, want %+v", i, got[i], events[i])
		}
	}
}

func TestKindJSONNames(t *testing.T) {
	buf, err := json.Marshal(KindHandler)
	if err != nil {
		t.Fatal(err)
	}
	if string(buf) != `"handler"` {
		t.Fatalf("KindHandler marshals to %s", buf)
	}
	var k Kind
	if err := json.Unmarshal([]byte(`"mem-read"`), &k); err != nil || k != KindMemRead {
		t.Fatalf("unmarshal mem-read: %v, %v", k, err)
	}
	if err := json.Unmarshal([]byte(`"no-such-kind"`), &k); err == nil {
		t.Fatal("unknown kind accepted")
	}
}

func TestChromeRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	sink := NewChromeSink(&buf)
	tr := New(sink)
	tr.Emit(Event{Cycle: 10, Node: 1, Kind: KindHandler, Dur: 25, Name: "h_get_home", ID: 7, Parent: 3})
	tr.Emit(Event{Cycle: 40, Node: 2, Kind: KindMsgSend, Addr: 0x80, Name: "PUT"})
	tr.Emit(Event{Cycle: 50, Node: 1, Kind: KindMemWrite, Dur: 29})
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}

	// The document must be plain JSON (Perfetto-loadable).
	var raw map[string]any
	if err := json.Unmarshal(buf.Bytes(), &raw); err != nil {
		t.Fatalf("chrome output is not valid JSON: %v\n%s", err, buf.String())
	}

	ct, err := ReadChrome(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(ct.TraceEvents) != 3 {
		t.Fatalf("decoded %d trace events, want 3", len(ct.TraceEvents))
	}
	h := ct.TraceEvents[0]
	if h.Ph != "X" || h.Name != "h_get_home" || h.TS != 10 || h.Dur != 25 || h.PID != 1 {
		t.Fatalf("handler span decoded wrong: %+v", h)
	}
	if h.Args["id"] != float64(7) || h.Args["parent"] != float64(3) {
		t.Fatalf("handler args lost causal ids: %+v", h.Args)
	}
	if i := ct.TraceEvents[1]; i.Ph != "i" || i.Name != "PUT" || i.Cat != "msg-send" {
		t.Fatalf("instant decoded wrong: %+v", i)
	}
	if m := ct.TraceEvents[2]; m.Ph != "X" || m.TID != 1 || m.Dur != 29 {
		t.Fatalf("memory span decoded wrong: %+v", m)
	}
}

func TestChromeEmptyTraceIsValid(t *testing.T) {
	var buf bytes.Buffer
	if err := New(NewChromeSink(&buf)).Close(); err != nil {
		t.Fatal(err)
	}
	ct, err := ReadChrome(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(ct.TraceEvents) != 0 {
		t.Fatalf("empty trace decoded %d events", len(ct.TraceEvents))
	}
}

func TestHistogramObserve(t *testing.T) {
	var h Histogram
	for _, v := range []uint64{0, 1, 2, 3, 4, 100, 1000} {
		h.Observe(v)
	}
	if h.Count != 7 || h.Sum != 1110 || h.Min != 0 || h.Max != 1000 {
		t.Fatalf("summary wrong: %+v", h)
	}
	// 0 -> bucket 0; 1 -> 1; 2,3 -> 2; 4 -> 3; 100 -> 7; 1000 -> 10.
	wantBuckets := map[int]uint64{0: 1, 1: 1, 2: 2, 3: 1, 7: 1, 10: 1}
	for i, n := range h.Buckets {
		if n != wantBuckets[i] {
			t.Errorf("bucket %d = %d, want %d", i, n, wantBuckets[i])
		}
	}
	if m := h.Mean(); m < 158.5 || m > 158.6 {
		t.Errorf("mean = %v", m)
	}
}

func TestHistogramOverflowClamps(t *testing.T) {
	var h Histogram
	h.Observe(1 << 62) // far beyond the last bucket boundary
	if h.Buckets[HistBuckets-1] != 1 {
		t.Fatalf("overflow not clamped to last bucket: %+v", h.Buckets)
	}
}

func TestHistogramQuantileAndMerge(t *testing.T) {
	var a, b Histogram
	for i := 0; i < 90; i++ {
		a.Observe(10)
	}
	for i := 0; i < 10; i++ {
		b.Observe(1000)
	}
	a.Merge(&b)
	if a.Count != 100 || a.Min != 10 || a.Max != 1000 {
		t.Fatalf("merge wrong: %+v", a)
	}
	if q := a.Quantile(0.5); q < 8 || q > 16 {
		t.Errorf("p50 = %v, want ~10", q)
	}
	if q := a.Quantile(0.99); q < 512 || q > 1000 {
		t.Errorf("p99 = %v, want in the 1000 bucket", q)
	}
	if q := a.Quantile(0); q != 10 {
		t.Errorf("q0 = %v, want min", q)
	}
	if q := a.Quantile(1); q != 1000 {
		t.Errorf("q1 = %v, want max", q)
	}
	if !strings.Contains(a.String(), "n=100") {
		t.Errorf("String() = %q", a.String())
	}
}

func TestHistogramJSONRoundTrip(t *testing.T) {
	var h Histogram
	h.Observe(27)
	h.Observe(143)
	buf, err := json.Marshal(&h)
	if err != nil {
		t.Fatal(err)
	}
	var got Histogram
	if err := json.Unmarshal(buf, &got); err != nil {
		t.Fatal(err)
	}
	if got != h {
		t.Fatalf("round trip changed histogram:\n got %+v\nwant %+v", got, h)
	}
}

func TestTimeSeries(t *testing.T) {
	s := NewTimeSeries(100)
	s.Add(10, 20)   // window 0
	s.Add(90, 20)   // splits: 10 in window 0, 10 in window 1
	s.Add(350, 400) // windows 3..7: 50,100,100,100,50
	want := []uint64{30, 10, 0, 50, 100, 100, 100, 50}
	if len(s.Busy) != len(want) {
		t.Fatalf("busy = %v, want %v", s.Busy, want)
	}
	for i := range want {
		if s.Busy[i] != want[i] {
			t.Fatalf("busy = %v, want %v", s.Busy, want)
		}
	}
	f := s.Fractions(1)
	if f[4] != 1.0 || f[0] != 0.3 {
		t.Fatalf("fractions = %v", f)
	}

	var nilSeries *TimeSeries
	nilSeries.Add(0, 100) // must not panic
	if nilSeries.Fractions(1) != nil {
		t.Fatal("nil series produced fractions")
	}

	o := NewTimeSeries(100)
	o.Add(0, 50)
	o.Add(820, 10)
	s.Merge(o)
	if s.Busy[0] != 80 || len(s.Busy) != 9 || s.Busy[8] != 10 {
		t.Fatalf("merge wrong: %v", s.Busy)
	}
}
