package trace

import (
	"reflect"
	"sync"
	"testing"
)

// Satellite coverage for the parallel-engine tracing path: per-node strided
// tracers emitting into per-node buffers, merged by MergeBuffers, must
// produce output that depends only on each node's own emission order —
// never on how many host workers drove the nodes or how they interleaved.

const (
	stridedNodes  = 8
	stridedEvents = 200
)

// emitAll drives the per-node emission loops with the given number of
// concurrent workers (nodes partitioned round-robin) and returns the merged
// event stream plus each node's buffer.
func emitAll(t *testing.T, workers int) []Event {
	t.Helper()
	bufs := make([]*Buffer, stridedNodes)
	tracers := make([]*Tracer, stridedNodes)
	for i := range bufs {
		bufs[i] = &Buffer{}
		tracers[i] = NewStrided(bufs[i], uint64(i), stridedNodes)
	}
	// Each node's emission sequence is a pure function of the node index;
	// workers only decide which goroutine runs which node's loop.
	emitNode := func(i int) {
		tr := tracers[i]
		for k := 0; k < stridedEvents; k++ {
			id := tr.NewID()
			tr.Emit(Event{
				// Colliding cycles across nodes exercise the tie-break rule.
				Cycle: uint64(k / 3),
				Node:  int32(i),
				Kind:  KindMsgSend,
				ID:    id,
				Arg:   uint64(i*stridedEvents + k),
			})
		}
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < stridedNodes; i += workers {
				emitNode(i)
			}
		}(w)
	}
	wg.Wait()

	var out Buffer
	dst := New(&out)
	MergeBuffers(dst, bufs)
	return out.Events
}

func TestStridedMergeDeterministicAcrossWorkers(t *testing.T) {
	want := emitAll(t, 1)
	if len(want) != stridedNodes*stridedEvents {
		t.Fatalf("merged %d events, want %d", len(want), stridedNodes*stridedEvents)
	}
	for _, workers := range []int{2, 8} {
		got := emitAll(t, workers)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d: merged stream differs from single-worker stream", workers)
		}
	}
}

func TestStridedIDsUniqueAndOwned(t *testing.T) {
	events := emitAll(t, 8)
	seen := map[uint64]bool{}
	for _, ev := range events {
		if ev.ID == 0 {
			t.Fatal("strided tracer minted id 0 (reserved for 'no link')")
		}
		if seen[ev.ID] {
			t.Fatalf("id %d minted twice", ev.ID)
		}
		seen[ev.ID] = true
		// NewStrided(offset i, step n) walks i+n, i+2n, ...: the residue
		// identifies the minting node without synchronization.
		if got := int32(ev.ID % stridedNodes); got != ev.Node%stridedNodes {
			t.Fatalf("id %d (residue %d) emitted by node %d", ev.ID, got, ev.Node)
		}
	}
}

func TestMergeBuffersOrdering(t *testing.T) {
	events := emitAll(t, 2)
	for i := 1; i < len(events); i++ {
		a, b := events[i-1], events[i]
		if a.Cycle > b.Cycle {
			t.Fatalf("event %d: cycle %d after %d", i, b.Cycle, a.Cycle)
		}
		if a.Cycle == b.Cycle && a.Node > b.Node {
			t.Fatalf("event %d: same-cycle tie broken against node order (%d after %d)", i, b.Node, a.Node)
		}
		if a.Cycle == b.Cycle && a.Node == b.Node && a.Arg >= b.Arg {
			t.Fatalf("event %d: per-node emission order not preserved", i)
		}
	}
}
