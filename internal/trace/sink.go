package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// JSONLSink writes one JSON object per line — the exchange format for
// scripts and the decoder ReadJSONL.
type JSONLSink struct {
	w   *bufio.Writer
	c   io.Closer // underlying file, if any
	enc *json.Encoder
	err error
}

// NewJSONLSink wraps w. If w is also an io.Closer it is closed by Close.
func NewJSONLSink(w io.Writer) *JSONLSink {
	bw := bufio.NewWriterSize(w, 1<<16)
	s := &JSONLSink{w: bw, enc: json.NewEncoder(bw)}
	if c, ok := w.(io.Closer); ok {
		s.c = c
	}
	return s
}

// Emit implements Sink.
func (s *JSONLSink) Emit(ev Event) {
	if s.err != nil {
		return
	}
	s.err = s.enc.Encode(ev)
}

// Close flushes buffered lines and reports the first write error.
func (s *JSONLSink) Close() error {
	if err := s.w.Flush(); s.err == nil {
		s.err = err
	}
	if s.c != nil {
		if err := s.c.Close(); s.err == nil {
			s.err = err
		}
	}
	return s.err
}

// ReadJSONL decodes a JSONL trace produced by JSONLSink.
func ReadJSONL(r io.Reader) ([]Event, error) {
	dec := json.NewDecoder(r)
	var out []Event
	for {
		var ev Event
		if err := dec.Decode(&ev); err == io.EOF {
			return out, nil
		} else if err != nil {
			return out, fmt.Errorf("trace: line %d: %w", len(out)+1, err)
		}
		out = append(out, ev)
	}
}

// ChromeSink streams events in the Chrome trace-event format, viewable in
// Perfetto (ui.perfetto.dev) or chrome://tracing. One simulated cycle is
// rendered as one microsecond. Each node is a process; lane 0 carries
// handler spans, lane 1 memory-controller spans, lane 2 instant events.
type ChromeSink struct {
	w     *bufio.Writer
	c     io.Closer
	first bool
	err   error
}

// NewChromeSink wraps w. If w is also an io.Closer it is closed by Close.
func NewChromeSink(w io.Writer) *ChromeSink {
	bw := bufio.NewWriterSize(w, 1<<16)
	s := &ChromeSink{w: bw, first: true}
	if c, ok := w.(io.Closer); ok {
		s.c = c
	}
	_, s.err = bw.WriteString("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n")
	return s
}

// chromeEvent is the wire form of one trace-event record.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	TS   uint64         `json:"ts"`
	Dur  uint64         `json:"dur,omitempty"`
	PID  int32          `json:"pid"`
	TID  int32          `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// Emit implements Sink.
func (s *ChromeSink) Emit(ev Event) {
	if s.err != nil {
		return
	}
	ce := chromeEvent{
		Name: ev.Name,
		Cat:  ev.Kind.String(),
		TS:   ev.Cycle,
		PID:  ev.Node,
	}
	if ce.Name == "" {
		ce.Name = ev.Kind.String()
	}
	switch ev.Kind {
	case KindHandler:
		ce.Ph, ce.TID, ce.Dur = "X", 0, ev.Dur
	case KindMemRead, KindMemWrite:
		ce.Ph, ce.TID, ce.Dur = "X", 1, ev.Dur
	default:
		ce.Ph, ce.TID, ce.S = "i", 2, "t"
	}
	args := map[string]any{}
	if ev.Addr != 0 {
		args["addr"] = fmt.Sprintf("%#x", ev.Addr)
	}
	if ev.ID != 0 {
		args["id"] = ev.ID
	}
	if ev.Parent != 0 {
		args["parent"] = ev.Parent
	}
	if ev.Arg != 0 {
		args["arg"] = ev.Arg
	}
	if len(args) > 0 {
		ce.Args = args
	}
	buf, err := json.Marshal(ce)
	if err != nil {
		s.err = err
		return
	}
	if !s.first {
		if _, s.err = s.w.WriteString(",\n"); s.err != nil {
			return
		}
	}
	s.first = false
	_, s.err = s.w.Write(buf)
}

// Close terminates the JSON document and flushes.
func (s *ChromeSink) Close() error {
	if _, err := s.w.WriteString("\n]}\n"); s.err == nil {
		s.err = err
	}
	if err := s.w.Flush(); s.err == nil {
		s.err = err
	}
	if s.c != nil {
		if err := s.c.Close(); s.err == nil {
			s.err = err
		}
	}
	return s.err
}

// ChromeTrace is the decoded form of a ChromeSink document, for tests and
// tooling that round-trip the format.
type ChromeTrace struct {
	DisplayTimeUnit string        `json:"displayTimeUnit"`
	TraceEvents     []ChromeEvent `json:"traceEvents"`
}

// ChromeEvent is one decoded trace-event record.
type ChromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	TS   uint64         `json:"ts"`
	Dur  uint64         `json:"dur"`
	PID  int32          `json:"pid"`
	TID  int32          `json:"tid"`
	Args map[string]any `json:"args"`
}

// ReadChrome decodes a Chrome trace-event document produced by ChromeSink.
func ReadChrome(r io.Reader) (*ChromeTrace, error) {
	var t ChromeTrace
	if err := json.NewDecoder(r).Decode(&t); err != nil {
		return nil, fmt.Errorf("trace: chrome decode: %w", err)
	}
	return &t, nil
}
