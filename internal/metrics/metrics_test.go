package metrics

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// The concurrent tests below are the registry's -race pass (make verify runs
// this package under the race detector): many goroutines hammer shared
// instruments and the totals must come out exact.

func TestCounterConcurrent(t *testing.T) {
	reg := NewRegistry()
	const goroutines, perG = 16, 10_000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := reg.Counter("test_total", "worker", "shared")
			for i := 0; i < perG; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := reg.Counter("test_total", "worker", "shared").Value(); got != goroutines*perG {
		t.Errorf("counter = %d, want %d", got, goroutines*perG)
	}
}

func TestGaugeSetMaxConcurrent(t *testing.T) {
	reg := NewRegistry()
	g := reg.Gauge("hiwater")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				g.SetMax(int64(w*1000 + i))
			}
		}(w)
	}
	wg.Wait()
	if got := g.Value(); got != 7999 {
		t.Errorf("SetMax high-water = %d, want 7999", got)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("lat")
	const goroutines, perG = 8, 5000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				h.Observe(uint64(g*perG + i))
			}
		}(g)
	}
	wg.Wait()
	s := h.Snapshot()
	n := uint64(goroutines * perG)
	if s.Count != n {
		t.Errorf("count = %d, want %d", s.Count, n)
	}
	if want := n * (n - 1) / 2; s.Sum != want {
		t.Errorf("sum = %d, want %d", s.Sum, want)
	}
	if s.Min != 0 || s.Max != n-1 {
		t.Errorf("min/max = %d/%d, want 0/%d", s.Min, s.Max, n-1)
	}
	var bucketSum uint64
	for _, b := range s.Buckets {
		bucketSum += b
	}
	if bucketSum != n {
		t.Errorf("bucket total = %d, want %d", bucketSum, n)
	}
}

func TestRegistryIdentityAndKinds(t *testing.T) {
	reg := NewRegistry()
	a := reg.Counter("x_total", "k", "v")
	b := reg.Counter("x_total", "k", "v")
	if a != b {
		t.Error("same (name, labels) returned distinct counters")
	}
	if c := reg.Counter("x_total", "k", "other"); c == a {
		t.Error("different labels returned the same counter")
	}
	defer func() {
		if recover() == nil {
			t.Error("kind mismatch did not panic")
		}
	}()
	reg.Gauge("x_total", "k", "v")
}

func TestNilRegistryDiscards(t *testing.T) {
	var reg *Registry
	reg.Counter("a").Inc()
	reg.Gauge("b").Set(7)
	reg.Histogram("c").Observe(3)
	s := reg.Snapshot()
	if len(s.Counters)+len(s.Gauges)+len(s.Histograms) != 0 {
		t.Errorf("nil registry snapshot not empty: %+v", s)
	}
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if sb.Len() != 0 {
		t.Errorf("nil registry exposition not empty: %q", sb.String())
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	reg := NewRegistry()
	reg.Gauge("flash_cycles").Set(19307)
	reg.Counter("flashsim_sim_events_total").Add(6277)
	reg.Histogram("window_events", "shard", "0").Observe(5)

	var sb strings.Builder
	if err := reg.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	var s Snapshot
	if err := json.Unmarshal([]byte(sb.String()), &s); err != nil {
		t.Fatalf("snapshot JSON does not round-trip: %v", err)
	}
	if s.Gauges["flash_cycles"] != 19307 {
		t.Errorf("flash_cycles = %d, want 19307", s.Gauges["flash_cycles"])
	}
	if s.Counters["flashsim_sim_events_total"] != 6277 {
		t.Errorf("events = %d, want 6277", s.Counters["flashsim_sim_events_total"])
	}
	if h := s.Histograms[`window_events{shard="0"}`]; h.Count != 1 || h.Sum != 5 {
		t.Errorf("histogram round-trip = %+v", h)
	}
}

func TestPrometheusExposition(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("evt_total", "shard", "1").Add(42)
	reg.Gauge("depth").Set(-3)
	reg.Histogram("lat").Observe(6) // bits.Len64(6) == 3, le bound 7

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE evt_total counter",
		`evt_total{shard="1"} 42`,
		"# TYPE depth gauge",
		"depth -3",
		"# TYPE lat histogram",
		`lat_bucket{le="7"} 1`,
		`lat_bucket{le="+Inf"} 1`,
		"lat_sum 6",
		"lat_count 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestHandlerContentNegotiation(t *testing.T) {
	reg := NewRegistry()
	reg.Gauge("flash_cycles").Set(7)
	h := reg.Handler()

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("default content type %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "flash_cycles 7") {
		t.Errorf("text body missing series:\n%s", rec.Body.String())
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics?format=json", nil))
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Errorf("json content type %q", ct)
	}
	var s Snapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &s); err != nil {
		t.Fatalf("json body: %v", err)
	}
	if s.Gauges["flash_cycles"] != 7 {
		t.Errorf("json body gauges = %+v", s.Gauges)
	}
}

func TestReadHostDelta(t *testing.T) {
	before := ReadHost()
	// Allocate visibly so the delta has something to show.
	sink := make([][]byte, 0, 1024)
	for i := 0; i < 1024; i++ {
		sink = append(sink, make([]byte, 1024))
	}
	_ = sink
	time.Sleep(time.Millisecond)
	d := ReadHost().Sub(before)
	if d.WallNS <= 0 {
		t.Errorf("wall delta %d, want > 0", d.WallNS)
	}
	if d.AllocBytes < 1<<20 {
		t.Errorf("alloc delta %d bytes, want >= 1 MiB", d.AllocBytes)
	}
	reg := NewRegistry()
	d.Publish(reg, "host", "app", "test")
	s := reg.Snapshot()
	if got := s.Gauges[`host_alloc_bytes{app="test"}`]; got != int64(d.AllocBytes) {
		t.Errorf("published alloc = %d, want %d", got, d.AllocBytes)
	}
}
