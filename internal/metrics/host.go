package metrics

import (
	"math"
	"runtime/metrics"
	"time"
)

// hostKeys are the runtime/metrics samples behind a HostSample, in the
// order ReadHost requests them.
var hostKeys = []string{
	"/gc/heap/allocs:bytes",
	"/gc/heap/allocs:objects",
	"/gc/cycles/total:gc-cycles",
	"/cpu/classes/gc/total:cpu-seconds",
	"/sched/pauses/total/gc:seconds",
}

// HostSample is a point-in-time reading of the Go runtime's host-cost
// counters, sourced from runtime/metrics. Subtract two samples (Sub) to
// attribute allocation, GC, and wall-clock cost to the work between them.
type HostSample struct {
	When         time.Time `json:"-"`
	AllocBytes   uint64    // cumulative heap bytes allocated
	AllocObjects uint64    // cumulative heap objects allocated
	GCCycles     uint64    // completed GC cycles
	GCCPUNS      int64     // estimated CPU nanoseconds spent in GC
	GCPauses     uint64    // stop-the-world GC pauses
	GCPauseNS    int64     // total STW GC pause nanoseconds (bucket-midpoint estimate)
}

// ReadHost samples the runtime counters now.
func ReadHost() HostSample {
	samples := make([]metrics.Sample, len(hostKeys))
	for i, k := range hostKeys {
		samples[i].Name = k
	}
	metrics.Read(samples)
	h := HostSample{When: time.Now()}
	for _, s := range samples {
		switch s.Name {
		case "/gc/heap/allocs:bytes":
			if s.Value.Kind() == metrics.KindUint64 {
				h.AllocBytes = s.Value.Uint64()
			}
		case "/gc/heap/allocs:objects":
			if s.Value.Kind() == metrics.KindUint64 {
				h.AllocObjects = s.Value.Uint64()
			}
		case "/gc/cycles/total:gc-cycles":
			if s.Value.Kind() == metrics.KindUint64 {
				h.GCCycles = s.Value.Uint64()
			}
		case "/cpu/classes/gc/total:cpu-seconds":
			if s.Value.Kind() == metrics.KindFloat64 {
				h.GCCPUNS = int64(s.Value.Float64() * 1e9)
			}
		case "/sched/pauses/total/gc:seconds":
			if s.Value.Kind() == metrics.KindFloat64Histogram {
				h.GCPauses, h.GCPauseNS = pauseTotals(s.Value.Float64Histogram())
			}
		}
	}
	return h
}

// pauseTotals estimates count and total seconds of a runtime pause
// histogram: exact counts, durations approximated at bucket midpoints
// (runtime buckets are fine-grained, so the estimate is tight).
func pauseTotals(h *metrics.Float64Histogram) (count uint64, totalNS int64) {
	if h == nil {
		return 0, 0
	}
	var total float64
	for i, n := range h.Counts {
		if n == 0 {
			continue
		}
		lo, hi := h.Buckets[i], h.Buckets[i+1]
		mid := (lo + hi) / 2
		if math.IsInf(lo, -1) {
			mid = hi
		}
		if math.IsInf(hi, 1) {
			mid = lo
		}
		count += n
		total += float64(n) * mid
	}
	return count, int64(total * 1e9)
}

// HostDelta is the host cost attributed to the work between two samples.
type HostDelta struct {
	WallNS       int64
	AllocBytes   uint64
	AllocObjects uint64
	GCCycles     uint64
	GCCPUNS      int64
	GCPauses     uint64
	GCPauseNS    int64
}

// Sub returns the delta from earlier to h.
func (h HostSample) Sub(earlier HostSample) HostDelta {
	return HostDelta{
		WallNS:       h.When.Sub(earlier.When).Nanoseconds(),
		AllocBytes:   h.AllocBytes - earlier.AllocBytes,
		AllocObjects: h.AllocObjects - earlier.AllocObjects,
		GCCycles:     h.GCCycles - earlier.GCCycles,
		GCCPUNS:      h.GCCPUNS - earlier.GCCPUNS,
		GCPauses:     h.GCPauses - earlier.GCPauses,
		GCPauseNS:    h.GCPauseNS - earlier.GCPauseNS,
	}
}

// Publish records the delta into reg as gauges under the given metric name
// prefix and optional labels (e.g. prefix "flashsim_app_host", labels
// app=fft).
func (d HostDelta) Publish(reg *Registry, prefix string, labels ...string) {
	reg.Gauge(prefix+"_wall_ns", labels...).Set(d.WallNS)
	reg.Gauge(prefix+"_alloc_bytes", labels...).Set(int64(d.AllocBytes))
	reg.Gauge(prefix+"_alloc_objects", labels...).Set(int64(d.AllocObjects))
	reg.Gauge(prefix+"_gc_cycles", labels...).Set(int64(d.GCCycles))
	reg.Gauge(prefix+"_gc_cpu_ns", labels...).Set(d.GCCPUNS)
	reg.Gauge(prefix+"_gc_pauses", labels...).Set(int64(d.GCPauses))
	reg.Gauge(prefix+"_gc_pause_ns", labels...).Set(d.GCPauseNS)
}
