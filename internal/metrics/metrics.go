// Package metrics is the simulator's host-side observability layer: a
// registry of named counters, gauges, and pow2-bucket histograms describing
// the cost of running the simulation itself (as opposed to internal/trace
// and internal/stats, which describe the simulated machine).
//
// The design mirrors the trace package's zero-cost-when-disabled pattern: a
// nil *Registry is valid and hands out discard instruments, so components
// can resolve their metrics unconditionally at setup time; engines batch
// their hot-path observations in plain per-shard fields and flush them into
// the registry at run boundaries, so an enabled registry never adds atomic
// traffic to the event loop. The non-perturbation test in internal/exp
// proves a metrics-enabled run stays cycle-identical to the golden digests.
//
// Instrument values use atomics throughout, so a registry may be shared by
// concurrent simulations and scraped (Handler, WriteJSON, WritePrometheus)
// while runs are in flight. Snapshot reads are per-field atomic, not
// globally linearizable: a scrape racing a writer can observe a histogram
// whose sum is momentarily ahead of its buckets.
package metrics

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"flashsim/internal/trace"
)

// Counter is a monotonically increasing uint64.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is an instantaneous int64 value.
type Gauge struct{ v atomic.Int64 }

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adds d (may be negative).
func (g *Gauge) Add(d int64) { g.v.Add(d) }

// SetMax raises the gauge to v if v is larger — the high-water-mark
// operation (heap depths, queue peaks).
func (g *Gauge) SetMax(v int64) {
	for {
		cur := g.v.Load()
		if v <= cur || g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is an atomic power-of-two-bucket histogram with the same bucket
// shape as trace.Histogram (bucket i counts values v with bits.Len64(v) ==
// i), safe for concurrent Observe from many goroutines.
type Histogram struct {
	count, sum atomic.Uint64
	// minC holds the bitwise complement of the minimum, so the zero value
	// (^uint64(0) complemented) reads as "no observation yet" and the CAS
	// race always keeps the smaller value.
	minC, max atomic.Uint64
	buckets   [trace.HistBuckets]atomic.Uint64
}

// Observe records one value.
func (h *Histogram) Observe(v uint64) {
	i := bits.Len64(v)
	if i >= trace.HistBuckets {
		i = trace.HistBuckets - 1
	}
	h.buckets[i].Add(1)
	h.sum.Add(v)
	h.count.Add(1)
	for {
		cur := h.minC.Load()
		if ^cur <= v || h.minC.CompareAndSwap(cur, ^v) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
}

// Snapshot materializes the histogram as a plain trace.Histogram.
func (h *Histogram) Snapshot() trace.Histogram {
	var s trace.Histogram
	s.Count = h.count.Load()
	s.Sum = h.sum.Load()
	if s.Count > 0 {
		s.Min = ^h.minC.Load()
		s.Max = h.max.Load()
	}
	for i := range s.Buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	return s
}

type metricKind uint8

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// entry is one registered instrument: a name, an optional label set, and
// exactly one of the three value types.
type entry struct {
	name   string
	labels []string // alternating key, value
	id     string   // name plus rendered labels; the registry key
	kind   metricKind

	c *Counter
	g *Gauge
	h *Histogram
}

// Registry is a concurrent-safe set of named instruments. Instruments are
// created on first lookup and live for the registry's lifetime; repeated
// lookups with the same name and labels return the same instrument. A nil
// *Registry is valid: lookups return fresh discard instruments and the
// exposition methods render an empty registry.
type Registry struct {
	mu   sync.Mutex
	byID map[string]*entry
	all  []*entry
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byID: map[string]*entry{}}
}

// id renders the canonical series id: name{k1="v1",k2="v2"} with labels in
// the order given (callers use fixed label orders, so ids are stable).
func id(name string, labels []string) string {
	if len(labels) == 0 {
		return name
	}
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i := 0; i+1 < len(labels); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", labels[i], labels[i+1])
	}
	b.WriteByte('}')
	return b.String()
}

// lookup get-or-creates the entry for (name, labels) of the given kind.
// Requesting an existing name with a different kind is a programming error
// and panics.
func (r *Registry) lookup(kind metricKind, name string, labels []string) *entry {
	if len(labels)%2 != 0 {
		panic(fmt.Sprintf("metrics: odd label list for %s: %v", name, labels))
	}
	key := id(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.byID[key]
	if !ok {
		e = &entry{name: name, labels: labels, id: key, kind: kind}
		switch kind {
		case kindCounter:
			e.c = new(Counter)
		case kindGauge:
			e.g = new(Gauge)
		case kindHistogram:
			e.h = new(Histogram)
		}
		r.byID[key] = e
		r.all = append(r.all, e)
	}
	if e.kind != kind {
		panic(fmt.Sprintf("metrics: %s registered as %s, requested as %s", key, e.kind, kind))
	}
	return e
}

// Counter returns the counter for name with the given alternating
// key/value labels, creating it on first use. Nil-safe: a nil registry
// returns a discard counter.
func (r *Registry) Counter(name string, labels ...string) *Counter {
	if r == nil {
		return new(Counter)
	}
	return r.lookup(kindCounter, name, labels).c
}

// Gauge returns the gauge for name and labels, creating it on first use.
func (r *Registry) Gauge(name string, labels ...string) *Gauge {
	if r == nil {
		return new(Gauge)
	}
	return r.lookup(kindGauge, name, labels).g
}

// Histogram returns the histogram for name and labels, creating it on
// first use.
func (r *Registry) Histogram(name string, labels ...string) *Histogram {
	if r == nil {
		return new(Histogram)
	}
	return r.lookup(kindHistogram, name, labels).h
}

// sorted returns the entries ordered by id, for stable exposition.
func (r *Registry) sorted() []*entry {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	out := make([]*entry, len(r.all))
	copy(out, r.all)
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
	return out
}
