package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"

	"flashsim/internal/trace"
)

// Snapshot is a point-in-time copy of every instrument in a registry,
// keyed by the canonical series id (name{k="v",...}).
type Snapshot struct {
	Counters   map[string]uint64          `json:"counters,omitempty"`
	Gauges     map[string]int64           `json:"gauges,omitempty"`
	Histograms map[string]trace.Histogram `json:"histograms,omitempty"`
}

// Snapshot copies the registry's current values.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{}
	for _, e := range r.sorted() {
		switch e.kind {
		case kindCounter:
			if s.Counters == nil {
				s.Counters = map[string]uint64{}
			}
			s.Counters[e.id] = e.c.Value()
		case kindGauge:
			if s.Gauges == nil {
				s.Gauges = map[string]int64{}
			}
			s.Gauges[e.id] = e.g.Value()
		case kindHistogram:
			if s.Histograms == nil {
				s.Histograms = map[string]trace.Histogram{}
			}
			s.Histograms[e.id] = e.h.Snapshot()
		}
	}
	return s
}

// WriteJSON writes the snapshot as indented JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	buf, err := json.MarshalIndent(r.Snapshot(), "", "  ")
	if err != nil {
		return err
	}
	_, err = w.Write(append(buf, '\n'))
	return err
}

// WritePrometheus writes the registry in the Prometheus text exposition
// format (version 0.0.4). Histograms render cumulatively with le bounds at
// the pow2 bucket upper edges.
func (r *Registry) WritePrometheus(w io.Writer) error {
	var b strings.Builder
	typed := map[string]bool{}
	for _, e := range r.sorted() {
		if !typed[e.name] {
			typed[e.name] = true
			fmt.Fprintf(&b, "# TYPE %s %s\n", e.name, e.kind)
		}
		switch e.kind {
		case kindCounter:
			fmt.Fprintf(&b, "%s %d\n", e.id, e.c.Value())
		case kindGauge:
			fmt.Fprintf(&b, "%s %d\n", e.id, e.g.Value())
		case kindHistogram:
			writePromHistogram(&b, e)
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// writePromHistogram renders one histogram series. Bucket i of the pow2
// shape counts values v with bits.Len64(v) == i, i.e. v <= 2^i - 1, so the
// le bound of bucket i is 2^i - 1.
func writePromHistogram(b *strings.Builder, e *entry) {
	h := e.h.Snapshot()
	var cum uint64
	for i, n := range h.Buckets {
		cum += n
		if n == 0 && i != len(h.Buckets)-1 {
			continue
		}
		le := fmt.Sprintf("%d", uint64(1)<<i-1)
		if i == len(h.Buckets)-1 {
			le = "+Inf"
		}
		fmt.Fprintf(b, "%s %d\n", id(e.name+"_bucket", append(append([]string{}, e.labels...), "le", le)), cum)
	}
	fmt.Fprintf(b, "%s %d\n", id(e.name+"_sum", e.labels), h.Sum)
	fmt.Fprintf(b, "%s %d\n", id(e.name+"_count", e.labels), h.Count)
}

// Handler returns an http.Handler exposing the registry: Prometheus text
// by default, JSON with ?format=json or an application/json Accept header.
// This is the metrics endpoint the future flashexpd service mode mounts.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		wantJSON := req.URL.Query().Get("format") == "json" ||
			strings.Contains(req.Header.Get("Accept"), "application/json")
		if wantJSON {
			w.Header().Set("Content-Type", "application/json")
			if err := r.WriteJSON(w); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
			}
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := r.WritePrometheus(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
}
