package ppisa

import "sort"

// Mode selects the scheduling target.
type Mode uint8

const (
	// DualIssue statically schedules instruction pairs for the real PP. All
	// pairs must be free of intra-pair dependences, since the PP has no
	// resource conflict detection (Section 2 of the paper).
	DualIssue Mode = iota
	// SingleIssue emits one instruction per cycle (Section 5.3 ablation).
	SingleIssue
)

// Pair is one dual-issue instruction pair. Both slots read register state
// from before the pair; writes commit after the pair.
type Pair struct {
	A, B Instr
}

// SideEffect reports whether op produces a post-commit action in the
// emulator (control transfer, message send, or intervention wait). The
// scheduler admits at most one such instruction per pair, which is what
// lets the compiled backend assume a unique pair action (compile.go falls
// back to the reference interpreter for hand-built pairs that violate it).
func SideEffect(op Op) bool {
	return IsControl(op) || op == SEND || op == WAITPC
}

// Program is a scheduled handler image ready for execution by ppsim.
type Program struct {
	Pairs   []Pair
	Entries map[string]int // handler name -> pair index
	Mode    Mode

	// SrcInstrs is the number of non-NOP source instructions before
	// scheduling (the numerator of dynamic dual-issue efficiency is counted
	// at run time; this is the static analogue).
	SrcInstrs int
}

// CodeBytes returns the static code size in bytes, counting both slots of
// every pair at 4 bytes per instruction slot (Table 5.2's "static code size
// of fully-scheduled handlers (with NOPs)").
func (p *Program) CodeBytes() int {
	if p.Mode == SingleIssue {
		return len(p.Pairs) * 4
	}
	return len(p.Pairs) * 8
}

// StaticNonNops counts non-NOP slots in the scheduled image.
func (p *Program) StaticNonNops() int {
	n := 0
	for _, pr := range p.Pairs {
		if pr.A.Op != NOP {
			n++
		}
		if pr.B.Op != NOP {
			n++
		}
	}
	return n
}

// Schedule turns an assembled source into an executable program. For
// DualIssue it performs list scheduling within basic blocks: instructions
// may be reordered subject to register, memory, and MAGIC-interface
// dependences, and paired when no intra-pair hazard exists.
func Schedule(src *Source, mode Mode) *Program {
	p := &Program{Mode: mode, Entries: make(map[string]int)}
	for _, in := range src.Instrs {
		if in.Op != NOP {
			p.SrcInstrs++
		}
	}

	// Basic block leaders: entry 0, label targets, and instructions after
	// control transfers.
	n := len(src.Instrs)
	leader := make([]bool, n+1)
	leader[0] = true
	for _, idx := range src.Labels {
		if idx <= n {
			leader[idx] = true
		}
	}
	for i, in := range src.Instrs {
		if IsControl(in.Op) && i+1 <= n {
			leader[i+1] = true
		}
		switch in.Op {
		case BEQ, BNE, BLEZ, BGTZ, BBS, BBC, J, JAL:
			leader[in.Target] = true
		}
	}

	// Schedule each block; record the pair index of every source index that
	// is a leader so branch targets can be remapped.
	leaderPair := make(map[int]int)
	for start := 0; start < n; {
		end := start + 1
		for end < n && !leader[end] {
			end++
		}
		leaderPair[start] = len(p.Pairs)
		block := src.Instrs[start:end]
		if mode == SingleIssue {
			for _, in := range block {
				if in.Op == NOP {
					continue
				}
				p.Pairs = append(p.Pairs, Pair{A: in, B: Instr{Op: NOP}})
			}
			if len(block) > 0 && allNops(block) {
				// Preserve an empty block as a single NOP so labels resolve.
				p.Pairs = append(p.Pairs, Pair{A: Instr{Op: NOP}, B: Instr{Op: NOP}})
			}
		} else {
			p.Pairs = append(p.Pairs, scheduleBlock(block)...)
		}
		start = end
	}
	leaderPair[n] = len(p.Pairs)

	// Remap branch targets from source indices to pair indices.
	for i := range p.Pairs {
		remap(&p.Pairs[i].A, leaderPair)
		remap(&p.Pairs[i].B, leaderPair)
	}
	for name, idx := range src.Labels {
		pi, ok := leaderPair[idx]
		if !ok {
			pi = len(p.Pairs)
		}
		p.Entries[name] = pi
	}
	return p
}

func allNops(block []Instr) bool {
	for _, in := range block {
		if in.Op != NOP {
			return false
		}
	}
	return true
}

func remap(in *Instr, leaderPair map[int]int) {
	switch in.Op {
	case BEQ, BNE, BLEZ, BGTZ, BBS, BBC, J, JAL:
		if pi, ok := leaderPair[in.Target]; ok {
			in.Target = pi
		} else {
			panic("ppisa: branch target is not a block leader")
		}
	}
}

// scheduleBlock list-schedules one basic block into pairs. A trailing
// control transfer is held aside and re-attached to the final pair when no
// hazard prevents it (the branch still takes effect after the pair, so this
// preserves semantics while letting branches dual-issue).
func scheduleBlock(block []Instr) []Pair {
	ins := make([]Instr, 0, len(block))
	for _, in := range block {
		if in.Op != NOP {
			ins = append(ins, in)
		}
	}
	if len(ins) == 0 {
		if len(block) == 0 {
			return nil
		}
		return []Pair{{A: Instr{Op: NOP}, B: Instr{Op: NOP}}}
	}
	var ctl *Instr
	if IsControl(ins[len(ins)-1].Op) {
		c := ins[len(ins)-1]
		ctl = &c
		ins = ins[:len(ins)-1]
	}
	pairs := scheduleStraight(ins)
	if ctl != nil {
		if k := len(pairs) - 1; k >= 0 && pairs[k].B.Op == NOP &&
			pairable(&pairs[k].A, ctl) {
			pairs[k].B = *ctl
		} else {
			pairs = append(pairs, Pair{A: Instr{Op: NOP}, B: *ctl})
		}
	}
	return pairs
}

// scheduleStraight schedules a straight-line (control-free) sequence.
func scheduleStraight(ins []Instr) []Pair {
	if len(ins) == 0 {
		return nil
	}

	// Dependence edges (i -> j means j must follow i).
	m := len(ins)
	succ := make([][]int, m)
	npred := make([]int, m)
	addEdge := func(i, j int) {
		succ[i] = append(succ[i], j)
		npred[j]++
	}
	var uses, usesJ []int
	for j := 1; j < m; j++ {
		usesJ = ins[j].Uses(usesJ[:0])
		defJ := ins[j].Def()
		cj := Classify(ins[j].Op)
		for i := j - 1; i >= 0; i-- {
			uses = ins[i].Uses(uses[:0])
			defI := ins[i].Def()
			ci := Classify(ins[i].Op)
			dep := false
			if defI >= 0 {
				for _, u := range usesJ {
					if u == defI {
						dep = true // RAW
					}
				}
			}
			if defJ >= 0 {
				if defJ == defI {
					dep = true // WAW
				}
				for _, u := range uses {
					if u == defJ {
						dep = true // WAR
					}
				}
			}
			// Conservative memory and MAGIC-interface ordering.
			if ci == ClassMem && cj == ClassMem &&
				(ins[i].Op == ST || ins[j].Op == ST) {
				dep = true
			}
			if ci == ClassMagic && cj == ClassMagic {
				dep = true
			}
			if dep {
				addEdge(i, j)
			}
		}
	}

	// Priority: critical-path height.
	height := make([]int, m)
	for i := m - 1; i >= 0; i-- {
		h := 0
		for _, s := range succ[i] {
			if height[s]+1 > h {
				h = height[s] + 1
			}
		}
		height[i] = h
	}

	ready := []int{}
	for i := 0; i < m; i++ {
		if npred[i] == 0 {
			ready = append(ready, i)
		}
	}
	pickBest := func(exclude int, filter func(int) bool) int {
		best := -1
		for _, c := range ready {
			if c == exclude || !filter(c) {
				continue
			}
			if best < 0 || height[c] > height[best] ||
				(height[c] == height[best] && c < best) {
				best = c
			}
		}
		return best
	}
	remove := func(x int) {
		for k, c := range ready {
			if c == x {
				ready = append(ready[:k], ready[k+1:]...)
				return
			}
		}
	}
	finish := func(x int) {
		for _, s := range succ[x] {
			npred[s]--
			if npred[s] == 0 {
				ready = append(ready, s)
			}
		}
		sort.Ints(ready) // determinism
	}

	var pairs []Pair
	scheduled := 0
	for scheduled < m {
		a := pickBest(-1, func(int) bool { return true })
		remove(a)
		// Try to fill slot B with an independent, structurally compatible
		// instruction. Candidates must already be ready (so they do not
		// depend on a), must not violate pairing rules with a, and — because
		// both slots read pre-pair state — must not be anti- or
		// output-dependent on a either.
		b := pickBest(a, func(c int) bool { return pairable(&ins[a], &ins[c]) })
		pa := ins[a]
		pb := Instr{Op: NOP}
		if b >= 0 {
			remove(b)
			pb = ins[b]
		}
		pairs = append(pairs, Pair{A: pa, B: pb})
		finish(a)
		if b >= 0 {
			finish(b)
			scheduled++
		}
		scheduled++
	}
	return pairs
}

// pairable reports whether b may issue in the same pair as a (a precedes b
// in the chosen order; both ready, so no RAW from a to b exists only if b
// doesn't read a's def — checked here because readiness was computed before
// a finished).
func pairable(a, b *Instr) bool {
	ca, cb := Classify(a.Op), Classify(b.Op)
	// Structural: one memory port, one MAGIC port, one control transfer.
	if ca == ClassMem && cb == ClassMem {
		return false
	}
	if ca == ClassMagic && cb == ClassMagic {
		return false
	}
	// At most one action-producing instruction (control transfer, SEND, or
	// WAITPC) per pair, so the emulator's post-commit action is unique.
	if SideEffect(a.Op) && SideEffect(b.Op) {
		return false
	}
	// Register hazards within the pair.
	defA, defB := a.Def(), b.Def()
	if defA >= 0 {
		var u []int
		for _, r := range b.Uses(u) {
			if r == defA {
				return false // RAW
			}
		}
		if defA == defB {
			return false // WAW
		}
	}
	if defB >= 0 {
		var u []int
		for _, r := range a.Uses(u) {
			if r == defB {
				// WAR within the pair would be fine under read-old-state
				// semantics, but the paper's PP has no conflict detection at
				// all, so PPtwine scheduled around every hazard; we do too.
				return false
			}
		}
	}
	return true
}
