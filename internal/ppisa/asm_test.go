package ppisa

import (
	"strings"
	"testing"
)

func TestAssembleBasic(t *testing.T) {
	src, err := Assemble(`
; a tiny handler
start:
	addi  r1, r0, 5
	add   r2, r1, r1
.loop:
	addi  r2, r2, -1
	bgtz  r2, .loop
	done
other:
	mfh   r3, 1
	done
`, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(src.Instrs) != 7 {
		t.Fatalf("got %d instructions, want 7", len(src.Instrs))
	}
	if src.Labels["start"] != 0 || src.Labels["start.loop"] != 2 || src.Labels["other"] != 5 {
		t.Fatalf("labels = %v", src.Labels)
	}
	if src.Instrs[3].Op != BGTZ || src.Instrs[3].Target != 2 {
		t.Fatalf("branch = %+v", src.Instrs[3])
	}
}

func TestAssembleSymbolsAndExpressions(t *testing.T) {
	syms := map[string]int64{"BASE": 0x100, "B_DIRTY": 3, "NET": 0, "DATA": 2}
	src, err := Assemble(`
h:	ld    r1, BASE+8(r2)
	bbs   r1, B_DIRTY, .d
	send  NET|DATA
	done
.d:	li    r4, 0x12345
	li    r5, 1<<20
	done
`, syms)
	if err != nil {
		t.Fatal(err)
	}
	if src.Instrs[0].Imm != 0x108 {
		t.Fatalf("ld offset = %#x, want 0x108", src.Instrs[0].Imm)
	}
	if src.Instrs[1].Imm != 3 {
		t.Fatalf("bbs bit = %d", src.Instrs[1].Imm)
	}
	if src.Instrs[2].Imm != 2 {
		t.Fatalf("send flags = %d", src.Instrs[2].Imm)
	}
	// li 0x12345 expands to lui+ori
	if src.Instrs[4].Op != LUI || src.Instrs[4].Imm != 1 {
		t.Fatalf("li expansion = %v", src.Instrs[4])
	}
	if src.Instrs[5].Op != ORI || src.Instrs[5].Imm != 0x2345 {
		t.Fatalf("li expansion = %v", src.Instrs[5])
	}
	// li 1<<20 expands to lui only
	if src.Instrs[6].Op != LUI || src.Instrs[6].Imm != 0x10 {
		t.Fatalf("li 1<<20 = %v", src.Instrs[6])
	}
}

func TestAssembleErrors(t *testing.T) {
	cases := []struct {
		src, want string
	}{
		{"frob r1, r2", "unknown mnemonic"},
		{"add r1, r2", "wants 3 operands"},
		{"add r1, r2, r99", "bad register"},
		{"add r1, r2, r30", "reserved"},
		{"j nowhere", "undefined label"},
		{"x: addi r1, r0, UNDEF", "unknown symbol"},
		{"x: nop\nx: nop", "duplicate label"},
		{".l: nop", "before any global label"},
		{"bbs r1, 71, x\nx: nop", "out of range"},
		{"mfh r1, 9", "header field"},
	}
	for _, c := range cases {
		if _, err := Assemble(c.src, nil); err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("Assemble(%q) err = %v, want contains %q", c.src, err, c.want)
		}
	}
}

func TestLoadImm64(t *testing.T) {
	// Spot-check that the sequence semantics match by symbolic evaluation.
	eval := func(seq []Instr) uint64 {
		var regs [32]uint64
		for _, in := range seq {
			switch in.Op {
			case ADDI:
				regs[in.Rd] = regs[in.Rs] + uint64(in.Imm)
			case LUI:
				regs[in.Rd] = uint64(in.Imm&0xFFFF) << 16
			case ORI:
				regs[in.Rd] = regs[in.Rs] | uint64(in.Imm)
			case SLLI:
				regs[in.Rd] = regs[in.Rs] << uint(in.Imm)
			case OR:
				regs[in.Rd] = regs[in.Rs] | regs[in.Rt]
			default:
				t.Fatalf("unexpected op %v in LoadImm sequence", in.Op)
			}
		}
		return regs[1]
	}
	for _, v := range []int64{0, 1, -1, 32767, -32768, 65536, 0xDEAD0000, 0x123456789ABCDEF0 & (1<<63 - 1), -0x123456789} {
		if got := eval(LoadImm(1, v)); got != uint64(v) {
			t.Errorf("LoadImm(%#x) evaluates to %#x", v, got)
		}
	}
}
