package ppisa

import (
	"strings"
	"testing"
)

func TestClassify(t *testing.T) {
	cases := map[Op]Class{
		NOP: ClassNop,
		ADD: ClassALU, SLTI: ClassALU, LUI: ClassALU,
		FFS: ClassSpecial, EXT: ClassSpecial, INS: ClassSpecial,
		ORFI: ClassSpecial, ANDFI: ClassSpecial,
		BBS: ClassBranchBit, BBC: ClassBranchBit,
		LD: ClassMem, ST: ClassMem,
		BEQ: ClassBranch, J: ClassBranch, JR: ClassBranch,
		MFH: ClassMagic, SEND: ClassMagic, DONE: ClassMagic, WAITPC: ClassMagic,
	}
	for op, want := range cases {
		if got := Classify(op); got != want {
			t.Errorf("Classify(%v) = %v, want %v", op, got, want)
		}
	}
}

func TestIsControl(t *testing.T) {
	for _, op := range []Op{BEQ, BNE, BLEZ, BGTZ, BBS, BBC, J, JAL, JR, DONE} {
		if !IsControl(op) {
			t.Errorf("%v should be control", op)
		}
	}
	for _, op := range []Op{ADD, LD, SEND, MFH, WAITPC} {
		if IsControl(op) {
			t.Errorf("%v should not be control", op)
		}
	}
}

func TestDefUses(t *testing.T) {
	in := Instr{Op: ADD, Rd: 3, Rs: 1, Rt: 2}
	if in.Def() != 3 {
		t.Fatalf("Def = %d", in.Def())
	}
	uses := in.Uses(nil)
	if len(uses) != 2 || uses[0] != 1 || uses[1] != 2 {
		t.Fatalf("Uses = %v", uses)
	}
	// r0 never counts.
	z := Instr{Op: ADD, Rd: 0, Rs: 0, Rt: 5}
	if z.Def() != -1 {
		t.Fatal("write to r0 counted as def")
	}
	if u := z.Uses(nil); len(u) != 1 || u[0] != 5 {
		t.Fatalf("Uses = %v", u)
	}
	// INS reads its destination; ST reads its data register.
	ins := Instr{Op: INS, Rd: 4, Rs: 2, Imm: 8, Imm2: 4}
	if u := ins.Uses(nil); len(u) != 2 {
		t.Fatalf("INS uses = %v", u)
	}
	st := Instr{Op: ST, Rd: 7, Rs: 3}
	if st.Def() != -1 {
		t.Fatal("ST counted as def")
	}
	if u := st.Uses(nil); len(u) != 2 {
		t.Fatalf("ST uses = %v", u)
	}
}

func TestInstrString(t *testing.T) {
	cases := []struct {
		in   Instr
		want string
	}{
		{Instr{Op: ADD, Rd: 1, Rs: 2, Rt: 3}, "add r1, r2, r3"},
		{Instr{Op: ADDI, Rd: 1, Rs: 2, Imm: -5}, "addi r1, r2, -5"},
		{Instr{Op: LD, Rd: 4, Rs: 2, Imm: 16}, "ld r4, 16(r2)"},
		{Instr{Op: EXT, Rd: 1, Rs: 2, Imm: 8, Imm2: 20}, "ext r1, r2, 8, 20"},
		{Instr{Op: BBS, Rs: 3, Imm: 5, Target: 7}, "bbs r3, 5, @7"},
		{Instr{Op: MFH, Rd: 2, Imm: 1}, "mfh r2, 1"},
		{Instr{Op: SEND, Imm: 3}, "send 3"},
		{Instr{Op: DONE}, "done"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

// Dual-issue scheduling must never lose or duplicate instructions across a
// realistic multi-handler program (regression companion to the structural
// property test in sched_test.go).
func TestScheduleProgramConservation(t *testing.T) {
	src := assemble(t, schedSample)
	for _, mode := range []Mode{DualIssue, SingleIssue} {
		p := Schedule(src, mode)
		if p.StaticNonNops() != p.SrcInstrs {
			t.Fatalf("mode %v: %d scheduled, %d source", mode, p.StaticNonNops(), p.SrcInstrs)
		}
	}
	// DLX substitution grows the instruction count but also conserves.
	sub := SubstituteDLX(src)
	p := Schedule(sub, SingleIssue)
	nonNop := 0
	for _, in := range sub.Instrs {
		if in.Op != NOP {
			nonNop++
		}
	}
	if p.StaticNonNops() != nonNop {
		t.Fatalf("substituted: %d scheduled, %d source", p.StaticNonNops(), nonNop)
	}
}

func TestAssembleCommentsAndBlank(t *testing.T) {
	src, err := Assemble(`
; full-line comment
# hash comment

h:  nop  ; trailing
	done # trailing hash
`, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(src.Instrs) != 2 {
		t.Fatalf("instrs = %d, want 2", len(src.Instrs))
	}
}

func TestAssembleLabelOnlyLineAndSameLine(t *testing.T) {
	src, err := Assemble("a: b: nop\nc:\n done", nil)
	if err != nil {
		t.Fatal(err)
	}
	if src.Labels["a"] != 0 || src.Labels["b"] != 0 || src.Labels["c"] != 1 {
		t.Fatalf("labels = %v", src.Labels)
	}
}

func TestCodeBytesBySlots(t *testing.T) {
	src := assemble(t, "h:\tadd r1, r2, r3\n\tdone")
	d := Schedule(src, DualIssue)
	if d.CodeBytes() != len(d.Pairs)*8 {
		t.Fatal("dual-issue code size must count both slots")
	}
	s := Schedule(src, SingleIssue)
	if s.CodeBytes() != len(s.Pairs)*4 {
		t.Fatal("single-issue code size counts one slot")
	}
	if !strings.Contains(d.Pairs[0].A.String(), "add") {
		t.Fatal("unexpected slot contents")
	}
}
