package ppisa

// SubstituteDLX rewrites a source program so that it uses no FLASH special
// instructions, replacing each with the DLX substitution sequences of
// Table 5.3. Registers r29-r31 (reserved by the assembler) are used as
// scratch. Branch targets are remapped across the expansion.
//
// The resulting source is normally scheduled SingleIssue to model the
// "non-optimized PP" of Section 5.3.
func SubstituteDLX(src *Source) *Source {
	out := &Source{Labels: make(map[string]int)}
	// indexMap[i] = new index of old instruction i.
	indexMap := make([]int, len(src.Instrs)+1)

	for i, in := range src.Instrs {
		indexMap[i] = len(out.Instrs)
		out.Instrs = append(out.Instrs, expandDLX(in, out)...)
	}
	indexMap[len(src.Instrs)] = len(out.Instrs)

	// Remap branch targets from old index space to new. Branches emitted by
	// the expander that jump within their own expansion carry the synthMark
	// tag and already hold new-space targets.
	for k := range out.Instrs {
		in := &out.Instrs[k]
		switch in.Op {
		case BEQ, BNE, BLEZ, BGTZ, J, JAL:
			if in.Imm2 == synthMark {
				in.Imm2 = 0
			} else {
				in.Target = indexMap[in.Target]
			}
		}
	}
	for name, idx := range src.Labels {
		out.Labels[name] = indexMap[idx]
	}
	return out
}

// synthMark flags expander-generated branches whose Target is already in
// new-index space (they only ever branch within their own expansion, to a
// known relative position).
const synthMark = -0x5EED

const (
	at1 = 29
	at2 = 30
	at3 = 31
)

// expandDLX returns the replacement sequence for one instruction. For
// branches that target old-index space the Target is left for the caller to
// remap; intra-expansion branches are resolved here and tagged.
func expandDLX(in Instr, out *Source) []Instr {
	base := len(out.Instrs)
	switch in.Op {
	case FFS:
		// Code-size-optimized loop (paper: 6 instructions, 2 + 4 cycles per
		// bit checked). rd = bit index of the lowest set bit of rs.
		//   mv   at1, rs
		//   addi rd, r0, -1
		// L:addi rd, rd, 1
		//   andi at2, at1, 1
		//   srli at1, at1, 1
		//   beq  at2, r0, L
		loop := base + 2
		return []Instr{
			{Op: ADD, Rd: at1, Rs: in.Rs},
			{Op: ADDI, Rd: in.Rd, Imm: -1},
			{Op: ADDI, Rd: in.Rd, Rs: in.Rd, Imm: 1},
			{Op: ANDI, Rd: at2, Rs: at1, Imm: 1},
			{Op: SRLI, Rd: at1, Rs: at1, Imm: 1},
			{Op: BEQ, Rs: at2, Target: loop, Imm2: synthMark},
		}

	case BBS, BBC:
		// 2 instructions for low bits reachable by a 16-bit mask, 4 when a
		// lui/ori mask build is needed (paper: "2 or 4 instructions").
		br := BNE
		if in.Op == BBC {
			br = BEQ
		}
		if in.Imm < 16 {
			return []Instr{
				{Op: ANDI, Rd: at1, Rs: in.Rs, Imm: 1 << uint(in.Imm)},
				{Op: br, Rs: at1, Target: in.Target, Sym: in.Sym},
			}
		}
		return []Instr{
			{Op: SRLI, Rd: at1, Rs: in.Rs, Imm: in.Imm},
			{Op: ANDI, Rd: at1, Rs: at1, Imm: 1},
			{Op: br, Rs: at1, Target: in.Target, Sym: in.Sym},
		}

	case EXT:
		// srl + mask. 1 instruction when the shift alone suffices, up to 4
		// when the mask needs lui/ori.
		pos, w := uint(in.Imm), uint(in.Imm2)
		if pos+w == 64 {
			return []Instr{{Op: SRLI, Rd: in.Rd, Rs: in.Rs, Imm: int64(pos)}}
		}
		mask := int64(1)<<w - 1
		seq := []Instr{}
		srcReg := in.Rs
		if pos > 0 {
			seq = append(seq, Instr{Op: SRLI, Rd: in.Rd, Rs: in.Rs, Imm: int64(pos)})
			srcReg = in.Rd
		}
		if mask >= 0 && mask < 1<<16 {
			seq = append(seq, Instr{Op: ANDI, Rd: in.Rd, Rs: srcReg, Imm: mask})
		} else {
			seq = append(seq, LoadImm(at1, mask)...)
			seq = append(seq, Instr{Op: AND, Rd: in.Rd, Rs: srcReg, Rt: at1})
		}
		return seq

	case ORFI:
		// OR with a string of consecutive ones (1-5 instructions).
		pos, w := uint(in.Imm), uint(in.Imm2)
		mask := (int64(1)<<w - 1) << pos
		if mask >= 0 && mask < 1<<16 {
			return []Instr{{Op: ORI, Rd: in.Rd, Rs: in.Rs, Imm: mask}}
		}
		seq := LoadImm(at1, mask)
		return append(seq, Instr{Op: OR, Rd: in.Rd, Rs: in.Rs, Rt: at1})

	case ANDFI:
		// AND with a string of consecutive zeros: materialize the ones-mask,
		// invert, and.
		pos, w := uint(in.Imm), uint(in.Imm2)
		mask := (int64(1)<<w - 1) << pos
		seq := LoadImm(at1, mask)
		seq = append(seq,
			Instr{Op: XORI, Rd: at1, Rs: at1, Imm: -1},
			Instr{Op: AND, Rd: in.Rd, Rs: in.Rs, Rt: at1})
		return seq

	case INS:
		// Equivalent to two field immediates followed by an or (Table 5.3):
		// clear the field in rd, position the source bits, combine.
		pos, w := uint(in.Imm), uint(in.Imm2)
		mask := (int64(1)<<w - 1) << pos
		seq := LoadImm(at1, mask)
		seq = append(seq,
			Instr{Op: XORI, Rd: at2, Rs: at1, Imm: -1},
			Instr{Op: AND, Rd: in.Rd, Rs: in.Rd, Rt: at2})
		// at3 = (rs & ones(w)) << pos
		lowMask := int64(1)<<w - 1
		if lowMask >= 0 && lowMask < 1<<16 {
			seq = append(seq, Instr{Op: ANDI, Rd: at3, Rs: in.Rs, Imm: lowMask})
		} else {
			seq = append(seq, Instr{Op: SLLI, Rd: at3, Rs: in.Rs, Imm: int64(64 - w)},
				Instr{Op: SRLI, Rd: at3, Rs: at3, Imm: int64(64 - w)})
		}
		if pos > 0 {
			seq = append(seq, Instr{Op: SLLI, Rd: at3, Rs: at3, Imm: int64(pos)})
		}
		seq = append(seq, Instr{Op: OR, Rd: in.Rd, Rs: in.Rd, Rt: at3})
		return seq
	}
	return []Instr{in}
}
