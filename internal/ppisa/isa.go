// Package ppisa defines the instruction set of MAGIC's protocol processor
// (PP) and provides an assembler, a static dual-issue scheduler (the role
// PPtwine played in the paper), and the DLX-substitution transform used to
// evaluate the PP's special instructions (Table 5.3, Section 5.3).
//
// The PP is a 64-bit DLX-derived core with 32 general registers (r0 wired to
// zero), extended with bitfield insert/extract, field-immediate ALU
// operations, find-first-set, and branch-on-bit instructions, plus the MAGIC
// interface operations that read incoming message headers, compose outgoing
// messages, and direct the hardwired data-transfer logic.
package ppisa

import "fmt"

// Op is a PP opcode.
type Op uint8

const (
	NOP Op = iota

	// Register-register ALU.
	ADD
	SUB
	AND
	OR
	XOR
	SLL
	SRL
	SRA
	SLT
	SLTU

	// Register-immediate ALU.
	ADDI
	ANDI
	ORI
	XORI
	SLLI
	SRLI
	SRAI
	SLTI
	LUI

	// FLASH special instructions (Section 5.3).
	FFS   // find first set bit
	EXT   // extract bitfield
	INS   // insert bitfield
	ORFI  // OR field immediate (a string of consecutive ones)
	ANDFI // AND field immediate (a string of consecutive zeros)

	// Memory, through the MAGIC data cache.
	LD
	ST

	// Control transfer.
	BEQ
	BNE
	BLEZ
	BGTZ
	BBS // branch on bit set
	BBC // branch on bit clear
	J
	JAL
	JR

	// MAGIC interface.
	MFH    // move from incoming-message header field
	MTH    // move to outgoing-message header field
	SEND   // launch outgoing message (imm encodes interface and data flag)
	MEMRD  // initiate memory read of the line addressed by rs into the data buffer
	MEMWR  // write the data buffer back to the line addressed by rs
	WAITPC // stall until the processor-cache intervention response arrives
	DONE   // handler complete; return to the inbox

	NumOps
)

var opNames = [NumOps]string{
	"nop",
	"add", "sub", "and", "or", "xor", "sll", "srl", "sra", "slt", "sltu",
	"addi", "andi", "ori", "xori", "slli", "srli", "srai", "slti", "lui",
	"ffs", "ext", "ins", "orfi", "andfi",
	"ld", "st",
	"beq", "bne", "blez", "bgtz", "bbs", "bbc", "j", "jal", "jr",
	"mfh", "mth", "send", "memrd", "memwr", "waitpc", "done",
}

func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Header field indices for MFH/MTH. The inbox preprocesses incoming headers
// (Section 2 of the paper), so handlers also see the precomputed directory
// offset of the message address and the node's own identifier. For outgoing
// messages the HdrSrc slot addresses the destination.
const (
	HdrType   = iota // message type
	HdrAddr          // line address
	HdrSrc           // incoming: source node; outgoing: destination node
	HdrReq           // original requester
	HdrAux           // type-specific auxiliary field
	HdrPCKind        // MFH only: processor-cache response kind after WAITPC
	HdrDirOff        // MFH only: protocol-memory byte offset of the directory header
	HdrSelf          // MFH only: this node's identifier
	NumHdrFields
)

// SEND immediate encoding.
const (
	SendNet   = 0 // to the network interface
	SendPI    = 1 // to the processor interface
	SendData  = 2 // flag: message carries the handler's data buffer
	SendIface = 1 // mask selecting the interface bit
)

// Instr is one PP instruction. Field use varies by opcode:
//
//	ALU reg-reg:  Rd, Rs, Rt
//	ALU reg-imm:  Rd, Rs, Imm
//	field ops:    Rd, Rs, Imm (pos), Imm2 (width)
//	LD/ST:        Rd (data), Rs (base), Imm (offset)
//	branches:     Rs, Rt/Imm(bit), Target
//	MFH/MTH:      Rd/Rs and Imm (field index)
//	SEND:         Imm (interface | data flag)
type Instr struct {
	Op     Op
	Rd     uint8
	Rs     uint8
	Rt     uint8
	Imm    int64
	Imm2   int64
	Target int    // resolved instruction index for branch/jump targets
	Sym    string // unresolved target label (assembler only)
}

// Class is the broad instruction category used by the Table 5.2 statistics.
type Class uint8

const (
	ClassALU Class = iota
	ClassSpecial
	ClassMem
	ClassBranch
	ClassBranchBit // branch-on-bit: counts as both branch and special
	ClassMagic
	ClassNop
)

// Classify returns the statistics class of op.
func Classify(op Op) Class {
	switch op {
	case NOP:
		return ClassNop
	case FFS, EXT, INS, ORFI, ANDFI:
		return ClassSpecial
	case BBS, BBC:
		return ClassBranchBit
	case LD, ST:
		return ClassMem
	case BEQ, BNE, BLEZ, BGTZ, J, JAL, JR:
		return ClassBranch
	case MFH, MTH, SEND, MEMRD, MEMWR, WAITPC, DONE:
		return ClassMagic
	default:
		return ClassALU
	}
}

// StatDeltas returns the dynamic-statistics increments (Table 5.2) that one
// executed instance of op contributes: the non-NOP instruction count, the
// ALU-or-branch count, and the special-instruction count. It is the static
// form of the per-instruction counting the emulator's reference interpreter
// performs, so a predecoding backend can fold the increments of a whole
// instruction pair into constants at program-load time.
func StatDeltas(op Op) (instrs, aluBranch, special uint64) {
	switch Classify(op) {
	case ClassNop:
		return 0, 0, 0
	case ClassALU, ClassBranch:
		return 1, 1, 0
	case ClassSpecial, ClassBranchBit:
		return 1, 1, 1
	default: // ClassMem, ClassMagic
		return 1, 0, 0
	}
}

// RAWHazard reports whether b reads the register a writes. Dual-issue pair
// semantics evaluate both slots against pre-pair register state; executing
// the slots sequentially (a then b) is equivalent exactly when no such
// read-after-write exists — WAR and WAW resolve identically either way,
// since writes commit in slot order. The scheduler never emits RAW pairs
// (pairable rejects them), so this is a load-time validity check for
// predecoded backends, not a run-time concern.
func RAWHazard(a, b *Instr) bool {
	def := a.Def()
	if def < 0 {
		return false
	}
	for _, r := range b.Uses(nil) {
		if r == def {
			return true
		}
	}
	return false
}

// IsControl reports whether op transfers control.
func IsControl(op Op) bool {
	switch op {
	case BEQ, BNE, BLEZ, BGTZ, BBS, BBC, J, JAL, JR, DONE:
		return true
	}
	return false
}

// writesRd reports whether op writes its Rd register.
func writesRd(op Op) bool {
	switch op {
	case NOP, ST, BEQ, BNE, BLEZ, BGTZ, BBS, BBC, J, JR, DONE,
		MTH, SEND, MEMRD, MEMWR, WAITPC:
		return false
	case JAL:
		return true // link register, held in Rd
	}
	return true
}

// Def returns the register op writes, or -1.
func (in *Instr) Def() int {
	if writesRd(in.Op) && in.Rd != 0 {
		return int(in.Rd)
	}
	return -1
}

// Uses appends the registers in reads to dst and returns it.
func (in *Instr) Uses(dst []int) []int {
	add := func(r uint8) []int {
		if r != 0 {
			dst = append(dst, int(r))
		}
		return dst
	}
	switch in.Op {
	case ADD, SUB, AND, OR, XOR, SLL, SRL, SRA, SLT, SLTU:
		dst = add(in.Rs)
		dst = add(in.Rt)
	case ADDI, ANDI, ORI, XORI, SLLI, SRLI, SRAI, SLTI:
		dst = add(in.Rs)
	case FFS, EXT, ORFI, ANDFI:
		dst = add(in.Rs)
	case INS:
		dst = add(in.Rs)
		dst = add(in.Rd) // INS reads and writes Rd
	case LD:
		dst = add(in.Rs)
	case ST:
		dst = add(in.Rs)
		dst = add(in.Rd) // stored value
	case BEQ, BNE:
		dst = add(in.Rs)
		dst = add(in.Rt)
	case BLEZ, BGTZ, BBS, BBC, JR:
		dst = add(in.Rs)
	case MTH, MEMRD, MEMWR:
		dst = add(in.Rs)
	}
	return dst
}

func (in *Instr) String() string {
	switch in.Op {
	case NOP, DONE, WAITPC:
		return in.Op.String()
	case ADD, SUB, AND, OR, XOR, SLL, SRL, SRA, SLT, SLTU:
		return fmt.Sprintf("%s r%d, r%d, r%d", in.Op, in.Rd, in.Rs, in.Rt)
	case ADDI, ANDI, ORI, XORI, SLLI, SRLI, SRAI, SLTI:
		return fmt.Sprintf("%s r%d, r%d, %d", in.Op, in.Rd, in.Rs, in.Imm)
	case LUI:
		return fmt.Sprintf("lui r%d, %d", in.Rd, in.Imm)
	case FFS:
		return fmt.Sprintf("ffs r%d, r%d", in.Rd, in.Rs)
	case EXT, INS, ORFI, ANDFI:
		return fmt.Sprintf("%s r%d, r%d, %d, %d", in.Op, in.Rd, in.Rs, in.Imm, in.Imm2)
	case LD:
		return fmt.Sprintf("ld r%d, %d(r%d)", in.Rd, in.Imm, in.Rs)
	case ST:
		return fmt.Sprintf("st r%d, %d(r%d)", in.Rd, in.Imm, in.Rs)
	case BEQ, BNE:
		return fmt.Sprintf("%s r%d, r%d, @%d", in.Op, in.Rs, in.Rt, in.Target)
	case BLEZ, BGTZ:
		return fmt.Sprintf("%s r%d, @%d", in.Op, in.Rs, in.Target)
	case BBS, BBC:
		return fmt.Sprintf("%s r%d, %d, @%d", in.Op, in.Rs, in.Imm, in.Target)
	case J, JAL:
		return fmt.Sprintf("%s @%d", in.Op, in.Target)
	case JR:
		return fmt.Sprintf("jr r%d", in.Rs)
	case MFH:
		return fmt.Sprintf("mfh r%d, %d", in.Rd, in.Imm)
	case MTH:
		return fmt.Sprintf("mth %d, r%d", in.Imm, in.Rs)
	case SEND:
		return fmt.Sprintf("send %d", in.Imm)
	case MEMRD, MEMWR:
		return fmt.Sprintf("%s r%d", in.Op, in.Rs)
	}
	return in.Op.String()
}
