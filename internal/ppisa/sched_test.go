package ppisa

import (
	"testing"
	"testing/quick"
)

const schedSample = `
h1:
	mfh   r1, 1
	ext   r2, r1, 7, 20
	slli  r3, r2, 3
	ld    r4, 0(r3)
	bbs   r4, 1, .dirty
	orfi  r4, r4, 2, 1
	st    r4, 0(r3)
	mth   1, r1
	send  1|2
	done
.dirty:
	mth   1, r1
	send  0
	done
`

func assemble(t *testing.T, text string) *Source {
	t.Helper()
	src, err := Assemble(text, nil)
	if err != nil {
		t.Fatal(err)
	}
	return src
}

// checkProgram verifies structural invariants of a scheduled program.
func checkProgram(t *testing.T, p *Program) {
	t.Helper()
	for i, pr := range p.Pairs {
		a, b := pr.A, pr.B
		if p.Mode == SingleIssue && b.Op != NOP {
			t.Fatalf("pair %d: single-issue has non-NOP slot B: %v", i, b)
		}
		if b.Op == NOP {
			continue
		}
		if !pairable(&a, &b) && !pairable(&b, &a) {
			t.Fatalf("pair %d: hazardous pair [%v | %v]", i, a, b)
		}
	}
	for name, idx := range p.Entries {
		if idx < 0 || idx > len(p.Pairs) {
			t.Fatalf("entry %s out of range: %d", name, idx)
		}
	}
	// Branch targets must be valid pair indices.
	for i, pr := range p.Pairs {
		for _, in := range []Instr{pr.A, pr.B} {
			switch in.Op {
			case BEQ, BNE, BLEZ, BGTZ, BBS, BBC, J, JAL:
				if in.Target < 0 || in.Target >= len(p.Pairs) {
					t.Fatalf("pair %d: branch target %d out of range", i, in.Target)
				}
			}
		}
	}
}

func TestScheduleDualIssue(t *testing.T) {
	src := assemble(t, schedSample)
	p := Schedule(src, DualIssue)
	checkProgram(t, p)
	if p.SrcInstrs != 13 {
		t.Fatalf("SrcInstrs = %d, want 13", p.SrcInstrs)
	}
	if p.StaticNonNops() != 13 {
		t.Fatalf("scheduled non-NOPs = %d, want 13 (no instruction lost)", p.StaticNonNops())
	}
	if len(p.Pairs) >= 13 {
		t.Fatalf("no pairing happened: %d pairs for 13 instructions", len(p.Pairs))
	}
	if _, ok := p.Entries["h1"]; !ok {
		t.Fatal("missing entry h1")
	}
	if _, ok := p.Entries["h1.dirty"]; !ok {
		t.Fatal("missing entry h1.dirty")
	}
}

func TestScheduleSingleIssue(t *testing.T) {
	src := assemble(t, schedSample)
	p := Schedule(src, SingleIssue)
	checkProgram(t, p)
	if len(p.Pairs) != 13 {
		t.Fatalf("single-issue pairs = %d, want 13", len(p.Pairs))
	}
	if p.CodeBytes() != 13*4 {
		t.Fatalf("CodeBytes = %d", p.CodeBytes())
	}
}

func TestScheduleRespectsDependences(t *testing.T) {
	// r2 depends on r1; r3 on r2; nothing can pair.
	src := assemble(t, `
h:	addi r1, r0, 1
	addi r2, r1, 1
	addi r3, r2, 1
	done
`)
	p := Schedule(src, DualIssue)
	checkProgram(t, p)
	// The chain forces 3 pairs; done can share the last one.
	if len(p.Pairs) != 3 {
		t.Fatalf("pairs = %d, want 3", len(p.Pairs))
	}
	if p.Pairs[2].B.Op != DONE {
		t.Fatalf("done not paired into final slot: %+v", p.Pairs[2])
	}
}

func TestScheduleMagicOrdering(t *testing.T) {
	// mth must precede send and they must not pair.
	src := assemble(t, `
h:	mth  1, r1
	send 0
	done
`)
	p := Schedule(src, DualIssue)
	checkProgram(t, p)
	seen := []Op{}
	for _, pr := range p.Pairs {
		for _, in := range []Instr{pr.A, pr.B} {
			if in.Op == MTH || in.Op == SEND {
				seen = append(seen, in.Op)
			}
		}
		if pr.A.Op == MTH && pr.B.Op == SEND || pr.A.Op == SEND && pr.B.Op == MTH {
			t.Fatal("mth paired with send")
		}
	}
	if len(seen) != 2 || seen[0] != MTH || seen[1] != SEND {
		t.Fatalf("magic order = %v", seen)
	}
}

func TestSubstituteDLXRemovesSpecials(t *testing.T) {
	src := assemble(t, schedSample)
	sub := SubstituteDLX(src)
	for i, in := range sub.Instrs {
		switch Classify(in.Op) {
		case ClassSpecial, ClassBranchBit:
			t.Fatalf("instr %d still special: %v", i, in)
		}
	}
	if len(sub.Instrs) <= len(src.Instrs) {
		t.Fatalf("substitution did not expand: %d <= %d", len(sub.Instrs), len(src.Instrs))
	}
	p := Schedule(sub, SingleIssue)
	checkProgram(t, p)
}

func TestSubstituteDLXBranchTargets(t *testing.T) {
	src := assemble(t, `
h:	ext  r1, r2, 4, 8
	beq  r1, r0, .skip
	addi r3, r0, 1
.skip:
	done
`)
	sub := SubstituteDLX(src)
	// Find the beq: its target must be the index of DONE (the .skip label).
	skip := sub.Labels["h.skip"]
	if sub.Instrs[skip].Op != DONE {
		t.Fatalf("label h.skip points at %v", sub.Instrs[skip])
	}
	found := false
	for _, in := range sub.Instrs {
		if in.Op == BEQ && in.Rs == 1 {
			found = true
			if in.Target != skip {
				t.Fatalf("beq target = %d, want %d", in.Target, skip)
			}
		}
	}
	if !found {
		t.Fatal("beq not found after substitution")
	}
}

// Property: for random dependence chains, scheduling preserves instruction
// count and never produces hazardous pairs.
func TestSchedulePropertyNoLoss(t *testing.T) {
	f := func(seeds []uint8) bool {
		ins := []Instr{}
		for _, s := range seeds {
			rd := uint8(s%27) + 1
			rs := uint8((s>>3)%27) + 1
			switch s % 5 {
			case 0:
				ins = append(ins, Instr{Op: ADD, Rd: rd, Rs: rs, Rt: 1})
			case 1:
				ins = append(ins, Instr{Op: ADDI, Rd: rd, Rs: rs, Imm: int64(s)})
			case 2:
				ins = append(ins, Instr{Op: EXT, Rd: rd, Rs: rs, Imm: int64(s % 8), Imm2: 4})
			case 3:
				ins = append(ins, Instr{Op: LD, Rd: rd, Rs: rs})
			case 4:
				ins = append(ins, Instr{Op: ST, Rd: rd, Rs: rs})
			}
		}
		ins = append(ins, Instr{Op: DONE})
		src := &Source{Instrs: ins, Labels: map[string]int{"h": 0}}
		p := Schedule(src, DualIssue)
		if p.StaticNonNops() != len(ins) {
			return false
		}
		for _, pr := range p.Pairs {
			if pr.B.Op == NOP {
				continue
			}
			a, b := pr.A, pr.B
			if !pairable(&a, &b) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
