package ppisa

import (
	"fmt"
	"strconv"
	"strings"
)

// Source is an assembled-but-unscheduled handler program: a linear
// instruction list with resolved branch targets and named entry points.
type Source struct {
	Instrs []Instr
	Labels map[string]int // label -> instruction index
}

// Assemble parses PP assembly text. syms supplies named constants (layout
// offsets, bit positions, message types). Registers are written r0..r31;
// r29-r31 are reserved for assembler temporaries (the DLX substitution pass
// and pseudo-instructions), and using them explicitly is an error.
//
// Syntax:
//
//	label:              ; global label
//	.local:             ; local label, scoped to the preceding global label
//	op a, b, c          ; operands: rN, immediate expressions, labels
//	ld r1, OFF(r2)      ; memory operands
//	; comment           ; also # comments
//
// Immediate expressions support + - | << and parentheses-free left-to-right
// evaluation over numbers and symbols.
//
// Pseudo-instructions: li rd, imm (expands to addi or lui/ori sequences),
// mv rd, rs, b label, not rd, rs.
func Assemble(text string, syms map[string]int64) (*Source, error) {
	a := &asm{syms: syms, labels: make(map[string]int)}
	if err := a.parse(text); err != nil {
		return nil, err
	}
	if err := a.resolve(); err != nil {
		return nil, err
	}
	return &Source{Instrs: a.instrs, Labels: a.labels}, nil
}

type asm struct {
	syms    map[string]int64
	instrs  []Instr
	labels  map[string]int
	scope   string // current global label for .local scoping
	lineNum int
}

func (a *asm) errf(format string, args ...interface{}) error {
	return fmt.Errorf("ppisa: line %d: %s", a.lineNum, fmt.Sprintf(format, args...))
}

func (a *asm) parse(text string) error {
	for _, raw := range strings.Split(text, "\n") {
		a.lineNum++
		line := raw
		if i := strings.IndexAny(line, ";#"); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		// Labels, possibly followed by an instruction on the same line.
		for {
			i := strings.Index(line, ":")
			if i < 0 || strings.ContainsAny(line[:i], " \t,(") {
				break
			}
			name := line[:i]
			if err := a.defineLabel(name); err != nil {
				return err
			}
			line = strings.TrimSpace(line[i+1:])
			if line == "" {
				break
			}
		}
		if line == "" {
			continue
		}
		if err := a.parseInstr(line); err != nil {
			return err
		}
	}
	return nil
}

func (a *asm) defineLabel(name string) error {
	full := name
	if strings.HasPrefix(name, ".") {
		if a.scope == "" {
			return a.errf("local label %s before any global label", name)
		}
		full = a.scope + name
	} else {
		a.scope = name
	}
	if _, dup := a.labels[full]; dup {
		return a.errf("duplicate label %s", full)
	}
	a.labels[full] = len(a.instrs)
	return nil
}

func (a *asm) parseInstr(line string) error {
	var mnem, rest string
	if i := strings.IndexAny(line, " \t"); i >= 0 {
		mnem, rest = line[:i], strings.TrimSpace(line[i+1:])
	} else {
		mnem = line
	}
	mnem = strings.ToLower(mnem)
	var ops []string
	if rest != "" {
		for _, f := range strings.Split(rest, ",") {
			ops = append(ops, strings.TrimSpace(f))
		}
	}
	return a.emit(mnem, ops)
}

// reg parses rN.
func (a *asm) reg(s string) (uint8, error) {
	if len(s) < 2 || (s[0] != 'r' && s[0] != 'R') {
		return 0, a.errf("expected register, got %q", s)
	}
	n, err := strconv.Atoi(s[1:])
	if err != nil || n < 0 || n > 31 {
		return 0, a.errf("bad register %q", s)
	}
	if n >= 29 {
		return 0, a.errf("register r%d is reserved for the assembler", n)
	}
	return uint8(n), nil
}

// rawReg parses rN allowing reserved registers (for internal expansion).
func rawReg(n int) uint8 { return uint8(n) }

// imm evaluates an immediate expression.
func (a *asm) imm(s string) (int64, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return 0, a.errf("empty immediate")
	}
	// Tokenize on operators, left-to-right.
	val := int64(0)
	op := byte('+')
	i := 0
	for i < len(s) {
		// find next operator at top level
		j := i
		for j < len(s) && !strings.ContainsRune("+|", rune(s[j])) &&
			!(s[j] == '<' && j+1 < len(s) && s[j+1] == '<') &&
			!(s[j] == '-' && j > i) {
			j++
		}
		term := strings.TrimSpace(s[i:j])
		tv, err := a.term(term)
		if err != nil {
			return 0, err
		}
		switch op {
		case '+':
			val += tv
		case '-':
			val -= tv
		case '|':
			val |= tv
		case '<':
			val <<= uint(tv)
		}
		if j >= len(s) {
			break
		}
		op = s[j]
		if op == '<' {
			j++ // skip second '<'
		}
		i = j + 1
	}
	return val, nil
}

func (a *asm) term(s string) (int64, error) {
	if s == "" {
		return 0, a.errf("empty term in immediate expression")
	}
	neg := false
	if s[0] == '-' {
		neg, s = true, s[1:]
	}
	var v int64
	if n, err := strconv.ParseInt(s, 0, 64); err == nil {
		v = n
	} else if sv, ok := a.syms[s]; ok {
		v = sv
	} else {
		return 0, a.errf("unknown symbol %q", s)
	}
	if neg {
		v = -v
	}
	return v, nil
}

// memOperand parses imm(rN).
func (a *asm) memOperand(s string) (int64, uint8, error) {
	i := strings.Index(s, "(")
	if i < 0 || !strings.HasSuffix(s, ")") {
		return 0, 0, a.errf("expected offset(reg), got %q", s)
	}
	off := int64(0)
	if strings.TrimSpace(s[:i]) != "" {
		v, err := a.imm(s[:i])
		if err != nil {
			return 0, 0, err
		}
		off = v
	}
	r, err := a.reg(strings.TrimSpace(s[i+1 : len(s)-1]))
	if err != nil {
		return 0, 0, err
	}
	return off, r, nil
}

func (a *asm) labelRef(s string) string {
	if strings.HasPrefix(s, ".") {
		return a.scope + s
	}
	return s
}

func (a *asm) push(in Instr) { a.instrs = append(a.instrs, in) }

func (a *asm) emit(mnem string, ops []string) error {
	need := func(n int) error {
		if len(ops) != n {
			return a.errf("%s wants %d operands, got %d", mnem, n, len(ops))
		}
		return nil
	}
	switch mnem {
	case "nop":
		a.push(Instr{Op: NOP})
	case "done":
		a.push(Instr{Op: DONE})
	case "waitpc":
		a.push(Instr{Op: WAITPC})

	case "add", "sub", "and", "or", "xor", "sll", "srl", "sra", "slt", "sltu":
		if err := need(3); err != nil {
			return err
		}
		rd, err := a.reg(ops[0])
		if err != nil {
			return err
		}
		rs, err := a.reg(ops[1])
		if err != nil {
			return err
		}
		rt, err := a.reg(ops[2])
		if err != nil {
			return err
		}
		a.push(Instr{Op: aluOp(mnem), Rd: rd, Rs: rs, Rt: rt})

	case "addi", "andi", "ori", "xori", "slli", "srli", "srai", "slti":
		if err := need(3); err != nil {
			return err
		}
		rd, err := a.reg(ops[0])
		if err != nil {
			return err
		}
		rs, err := a.reg(ops[1])
		if err != nil {
			return err
		}
		imm, err := a.imm(ops[2])
		if err != nil {
			return err
		}
		a.push(Instr{Op: aluImmOp(mnem), Rd: rd, Rs: rs, Imm: imm})

	case "lui":
		if err := need(2); err != nil {
			return err
		}
		rd, err := a.reg(ops[0])
		if err != nil {
			return err
		}
		imm, err := a.imm(ops[1])
		if err != nil {
			return err
		}
		a.push(Instr{Op: LUI, Rd: rd, Imm: imm})

	case "ffs":
		if err := need(2); err != nil {
			return err
		}
		rd, err := a.reg(ops[0])
		if err != nil {
			return err
		}
		rs, err := a.reg(ops[1])
		if err != nil {
			return err
		}
		a.push(Instr{Op: FFS, Rd: rd, Rs: rs})

	case "ext", "ins", "orfi", "andfi":
		if err := need(4); err != nil {
			return err
		}
		rd, err := a.reg(ops[0])
		if err != nil {
			return err
		}
		rs, err := a.reg(ops[1])
		if err != nil {
			return err
		}
		pos, err := a.imm(ops[2])
		if err != nil {
			return err
		}
		w, err := a.imm(ops[3])
		if err != nil {
			return err
		}
		if pos < 0 || w <= 0 || pos+w > 64 {
			return a.errf("%s field [%d,%d) out of range", mnem, pos, pos+w)
		}
		var op Op
		switch mnem {
		case "ext":
			op = EXT
		case "ins":
			op = INS
		case "orfi":
			op = ORFI
		default:
			op = ANDFI
		}
		a.push(Instr{Op: op, Rd: rd, Rs: rs, Imm: pos, Imm2: w})

	case "ld", "st":
		if err := need(2); err != nil {
			return err
		}
		rd, err := a.reg(ops[0])
		if err != nil {
			return err
		}
		off, rs, err := a.memOperand(ops[1])
		if err != nil {
			return err
		}
		op := LD
		if mnem == "st" {
			op = ST
		}
		a.push(Instr{Op: op, Rd: rd, Rs: rs, Imm: off})

	case "beq", "bne":
		if err := need(3); err != nil {
			return err
		}
		rs, err := a.reg(ops[0])
		if err != nil {
			return err
		}
		rt, err := a.reg(ops[1])
		if err != nil {
			return err
		}
		op := BEQ
		if mnem == "bne" {
			op = BNE
		}
		a.push(Instr{Op: op, Rs: rs, Rt: rt, Sym: a.labelRef(ops[2])})

	case "blez", "bgtz":
		if err := need(2); err != nil {
			return err
		}
		rs, err := a.reg(ops[0])
		if err != nil {
			return err
		}
		op := BLEZ
		if mnem == "bgtz" {
			op = BGTZ
		}
		a.push(Instr{Op: op, Rs: rs, Sym: a.labelRef(ops[1])})

	case "bbs", "bbc":
		if err := need(3); err != nil {
			return err
		}
		rs, err := a.reg(ops[0])
		if err != nil {
			return err
		}
		bit, err := a.imm(ops[1])
		if err != nil {
			return err
		}
		if bit < 0 || bit > 63 {
			return a.errf("bit %d out of range", bit)
		}
		op := BBS
		if mnem == "bbc" {
			op = BBC
		}
		a.push(Instr{Op: op, Rs: rs, Imm: bit, Sym: a.labelRef(ops[2])})

	case "j", "jal", "b":
		if err := need(1); err != nil {
			return err
		}
		op := J
		if mnem == "jal" {
			op = JAL
		}
		in := Instr{Op: op, Sym: a.labelRef(ops[0])}
		if mnem == "jal" {
			in.Rd = 28 // link register convention: r28
		}
		a.push(in)

	case "jr":
		if err := need(1); err != nil {
			return err
		}
		rs, err := a.reg(ops[0])
		if err != nil {
			return err
		}
		a.push(Instr{Op: JR, Rs: rs})

	case "mfh":
		if err := need(2); err != nil {
			return err
		}
		rd, err := a.reg(ops[0])
		if err != nil {
			return err
		}
		f, err := a.imm(ops[1])
		if err != nil {
			return err
		}
		if f < 0 || f >= NumHdrFields {
			return a.errf("header field %d out of range", f)
		}
		a.push(Instr{Op: MFH, Rd: rd, Imm: f})

	case "mth":
		if err := need(2); err != nil {
			return err
		}
		f, err := a.imm(ops[0])
		if err != nil {
			return err
		}
		rs, err := a.reg(ops[1])
		if err != nil {
			return err
		}
		if f < 0 || f >= NumHdrFields {
			return a.errf("header field %d out of range", f)
		}
		a.push(Instr{Op: MTH, Rs: rs, Imm: f})

	case "send":
		if err := need(1); err != nil {
			return err
		}
		flags, err := a.imm(ops[0])
		if err != nil {
			return err
		}
		a.push(Instr{Op: SEND, Imm: flags})

	case "memrd", "memwr":
		if err := need(1); err != nil {
			return err
		}
		rs, err := a.reg(ops[0])
		if err != nil {
			return err
		}
		op := MEMRD
		if mnem == "memwr" {
			op = MEMWR
		}
		a.push(Instr{Op: op, Rs: rs})

	// Pseudo-instructions.
	case "mv":
		if err := need(2); err != nil {
			return err
		}
		rd, err := a.reg(ops[0])
		if err != nil {
			return err
		}
		rs, err := a.reg(ops[1])
		if err != nil {
			return err
		}
		a.push(Instr{Op: ADD, Rd: rd, Rs: rs})

	case "not":
		if err := need(2); err != nil {
			return err
		}
		rd, err := a.reg(ops[0])
		if err != nil {
			return err
		}
		rs, err := a.reg(ops[1])
		if err != nil {
			return err
		}
		a.push(Instr{Op: XORI, Rd: rd, Rs: rs, Imm: -1})

	case "li":
		if err := need(2); err != nil {
			return err
		}
		rd, err := a.reg(ops[0])
		if err != nil {
			return err
		}
		imm, err := a.imm(ops[1])
		if err != nil {
			return err
		}
		for _, in := range LoadImm(rd, imm) {
			a.push(in)
		}

	default:
		return a.errf("unknown mnemonic %q", mnem)
	}
	return nil
}

// LoadImm returns the shortest instruction sequence materializing v in rd.
func LoadImm(rd uint8, v int64) []Instr {
	if v >= -32768 && v < 32768 {
		return []Instr{{Op: ADDI, Rd: rd, Imm: v}}
	}
	if v >= 0 && v < 1<<32 {
		seq := []Instr{{Op: LUI, Rd: rd, Imm: (v >> 16) & 0xFFFF}}
		if lo := v & 0xFFFF; lo != 0 {
			seq = append(seq, Instr{Op: ORI, Rd: rd, Rs: rd, Imm: lo})
		}
		return seq
	}
	// General 64-bit: build the high 32 bits, shift, or in the low 32.
	seq := LoadImm(rd, (v>>32)&0xFFFFFFFF)
	seq = append(seq, Instr{Op: SLLI, Rd: rd, Rs: rd, Imm: 32})
	lo := v & 0xFFFFFFFF
	if hi16 := (lo >> 16) & 0xFFFF; hi16 != 0 {
		seq = append(seq,
			Instr{Op: LUI, Rd: 31, Imm: hi16},
			Instr{Op: ORI, Rd: 31, Rs: 31, Imm: lo & 0xFFFF},
			Instr{Op: OR, Rd: rd, Rs: rd, Rt: 31})
	} else if lo != 0 {
		seq = append(seq, Instr{Op: ORI, Rd: rd, Rs: rd, Imm: lo})
	}
	return seq
}

func aluOp(m string) Op {
	switch m {
	case "add":
		return ADD
	case "sub":
		return SUB
	case "and":
		return AND
	case "or":
		return OR
	case "xor":
		return XOR
	case "sll":
		return SLL
	case "srl":
		return SRL
	case "sra":
		return SRA
	case "slt":
		return SLT
	default:
		return SLTU
	}
}

func aluImmOp(m string) Op {
	switch m {
	case "addi":
		return ADDI
	case "andi":
		return ANDI
	case "ori":
		return ORI
	case "xori":
		return XORI
	case "slli":
		return SLLI
	case "srli":
		return SRLI
	case "srai":
		return SRAI
	default:
		return SLTI
	}
}

func (a *asm) resolve() error {
	for i := range a.instrs {
		in := &a.instrs[i]
		if in.Sym == "" {
			continue
		}
		t, ok := a.labels[in.Sym]
		if !ok {
			return fmt.Errorf("ppisa: undefined label %q", in.Sym)
		}
		in.Target = t
	}
	return nil
}
