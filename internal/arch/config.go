package arch

import "fmt"

// Placement selects how physical pages are distributed across node memories.
type Placement uint8

const (
	// PlaceRoundRobin interleaves pages across nodes (the paper's default
	// for the OS workload and the NUMA-friendly baseline).
	PlaceRoundRobin Placement = iota
	// PlaceFirstTouch assigns a page to the first node that touches it
	// (approximates good data placement for partitioned scientific codes).
	PlaceFirstTouch
	// PlaceNodeZero puts every page on node 0 (the Section 4.3 hot-spot
	// experiments and the "original IRIX port" behaviour).
	PlaceNodeZero
)

func (p Placement) String() string {
	switch p {
	case PlaceRoundRobin:
		return "round-robin"
	case PlaceFirstTouch:
		return "first-touch"
	default:
		return "node-zero"
	}
}

// MachineKind selects the node controller implementation.
type MachineKind uint8

const (
	// KindFLASH uses MAGIC with the programmable protocol processor.
	KindFLASH MachineKind = iota
	// KindIdeal uses the idealized hardwired controller: all protocol
	// operations take zero time, queues are infinite.
	KindIdeal
)

func (k MachineKind) String() string {
	if k == KindFLASH {
		return "FLASH"
	}
	return "ideal"
}

// MarshalJSON renders the kind as its name so machine-readable reports stay
// stable if the constant values are ever reordered.
func (k MachineKind) MarshalJSON() ([]byte, error) {
	return []byte(`"` + k.String() + `"`), nil
}

// UnmarshalJSON accepts a kind name (or a legacy numeric value).
func (k *MachineKind) UnmarshalJSON(b []byte) error {
	switch string(b) {
	case `"FLASH"`:
		*k = KindFLASH
	case `"ideal"`:
		*k = KindIdeal
	default:
		var v uint8
		if _, err := fmt.Sscanf(string(b), "%d", &v); err != nil {
			return fmt.Errorf("arch: unknown machine kind %s", b)
		}
		*k = MachineKind(v)
	}
	return nil
}

// PPMode selects how the protocol handlers are scheduled/compiled, for the
// Section 5.3 ablations.
type PPMode uint8

const (
	// PPDualIssue is the real MAGIC PP: special instructions enabled,
	// statically scheduled dual-issue.
	PPDualIssue PPMode = iota
	// PPSingleIssue disables dual issue but keeps the special instructions.
	PPSingleIssue
	// PPNoSpecial expands special instructions into DLX substitution
	// sequences (Table 5.3) and schedules single-issue — the "non-optimized
	// PP" of Section 5.3.
	PPNoSpecial
)

func (m PPMode) String() string {
	switch m {
	case PPDualIssue:
		return "dual-issue"
	case PPSingleIssue:
		return "single-issue"
	default:
		return "single-issue+DLX-substitution"
	}
}

// PPDispatch selects the PP emulator's execution engine. Both engines are
// bit-identical in simulated behaviour; the choice only affects host-side
// simulation speed (ppsim compile.go documents the equivalence argument).
type PPDispatch uint8

const (
	// PPDispatchAuto defers to the process default: the FLASHSIM_PP_DISPATCH
	// environment variable if set, the compiled backend otherwise.
	PPDispatchAuto PPDispatch = iota
	// PPDispatchCompiled forces the predecoded closure backend.
	PPDispatchCompiled
	// PPDispatchInterp forces the reference switch interpreter.
	PPDispatchInterp
)

func (d PPDispatch) String() string {
	switch d {
	case PPDispatchCompiled:
		return "compiled"
	case PPDispatchInterp:
		return "interp"
	}
	return "auto"
}

// EngineKind selects the discrete-event engine backend. Both engines are
// bit-identical in simulated behaviour; the choice only affects host-side
// simulation speed (sim/sharded.go documents the lookahead argument).
type EngineKind uint8

const (
	// EngineAuto defers to the process default: the FLASHSIM_ENGINE
	// environment variable if set, the sequential engine otherwise.
	EngineAuto EngineKind = iota
	// EngineSeq forces the sequential reference engine.
	EngineSeq
	// EngineSharded forces the conservative parallel per-node-shard engine.
	EngineSharded
)

func (e EngineKind) String() string {
	switch e {
	case EngineSeq:
		return "seq"
	case EngineSharded:
		return "sharded"
	}
	return "auto"
}

// EngineSync selects how the sharded engine's shards synchronize. Both
// schemes are bit-identical in simulated behaviour; the choice only affects
// host-side simulation speed (sim/watermark.go documents the protocol).
type EngineSync uint8

const (
	// EngineSyncAuto defers to the process default: the FLASHSIM_ENGINE_SYNC
	// environment variable if set, the barrier scheme otherwise.
	EngineSyncAuto EngineSync = iota
	// EngineSyncBarrier forces the uniform-window full-barrier scheme.
	EngineSyncBarrier
	// EngineSyncWatermark forces the per-pair watermark scheme: shards
	// advance when their input watermarks allow, using the distance-aware
	// lookahead matrix when NetModel is the mesh.
	EngineSyncWatermark
)

func (s EngineSync) String() string {
	switch s {
	case EngineSyncBarrier:
		return "barrier"
	case EngineSyncWatermark:
		return "watermark"
	}
	return "auto"
}

// NetModel selects the interconnect latency model.
type NetModel uint8

const (
	// NetUniform charges the paper's fixed average transit (Section 3's 22
	// cycles at 16 nodes) to every message — the reference model all goldens
	// pin.
	NetUniform NetModel = iota
	// NetMesh charges per-pair 2-D mesh transit (enter + Manhattan hops +
	// exit at 4 cycles/hop, plus 3 header cycles). An INTENTIONAL MODEL
	// CHANGE relative to the goldens: nearby nodes get faster messages,
	// far-apart ones slower, and the sharded engine derives a per-pair
	// lookahead matrix from the same distances.
	NetMesh
)

func (m NetModel) String() string {
	if m == NetMesh {
		return "mesh"
	}
	return "uniform"
}

// Protocol selects which coherence protocol program MAGIC runs — the
// machine's flexibility in action.
type Protocol uint8

const (
	// ProtoDynPtr is the FLASH prototype's dynamic pointer allocation
	// directory (Section 3.3 of the paper).
	ProtoDynPtr Protocol = iota
	// ProtoBitVector is a DASH-style full bit-vector directory: an
	// alternative handler program for the same machine (up to 32 nodes).
	ProtoBitVector
)

func (p Protocol) String() string {
	if p == ProtoBitVector {
		return "bit-vector"
	}
	return "dynamic-pointer-allocation"
}

// Config describes one simulated machine.
type Config struct {
	Kind  MachineKind
	Nodes int // number of processors/nodes (16 for most experiments)

	// Processor cache geometry.
	CacheSize int // bytes (paper: 1 MB, 64 KB, 16 KB, 4 KB)
	CacheWays int // associativity (paper: 2)
	MSHRs     int // outstanding misses (paper: 4)

	// Memory placement for application pages.
	Placement Placement

	// MAGIC knobs.
	Speculation bool     // inbox-initiated speculative memory reads (Table 5.1)
	PPMode      PPMode   // Section 5.3 ablations
	Protocol    Protocol // coherence protocol program (FLASH machines)
	MDCSize     int      // MAGIC data cache bytes (paper: 64 KB)
	MDCWays     int      // MDC associativity (paper: 2)

	// PPDispatch selects the host-side PP execution engine (simulation
	// speed only; simulated results are bit-identical across engines).
	PPDispatch PPDispatch

	// Engine selects the host-side discrete-event backend (simulation
	// speed only; simulated results are bit-identical across engines).
	Engine EngineKind

	// EngineSync selects the sharded engine's shard-synchronization scheme
	// (simulation speed only; simulated results are bit-identical across
	// schemes). Ignored by the sequential engine.
	EngineSync EngineSync

	// NetModel selects the interconnect latency model. NetMesh changes
	// simulated timing (per-pair transit instead of the fixed average) — it
	// is a model knob, not a host-speed knob.
	NetModel NetModel

	// Sample configures SMARTS-style sampled execution: functional
	// fast-forward between periodic detailed measurement windows. The zero
	// value (and any Stride-0 spec) keeps every cycle detailed and is
	// bit-identical to no sampling at all. Enabling it is an INTENTIONAL
	// TIMING-MODEL CHANGE — read elapsed time from the extrapolated
	// estimate in stats.Report.Sampled. Ignored by ideal machines (their
	// protocol already runs in zero time).
	Sample SampleSpec

	// NetQueueCap bounds MAGIC's outgoing network queue (0 = the default
	// 16 entries of Table 3.1); DataBufs bounds its data-buffer pool (0 =
	// the default 16). Both change simulated timing under load: a full
	// queue stalls the PP, an exhausted buffer pool NAKs the request.
	NetQueueCap int
	DataBufs    int

	// PPClockDiv divides the protocol processor's clock relative to the
	// 100 MHz system clock: every PP cycle costs PPClockDiv system cycles
	// (0 or 1 = the paper's clock-matched PP). The design-space sweep uses
	// it to price slower, cheaper PP implementations.
	PPClockDiv int

	Timing Timing

	// MemBytesPerNode sizes each node's local memory slice. Placement maps
	// pages onto nodes; this only bounds the directory.
	MemBytesPerNode int
}

// DefaultConfig returns the 16-processor FLASH configuration of Section 3.
func DefaultConfig() Config {
	return Config{
		Kind:            KindFLASH,
		Nodes:           16,
		CacheSize:       1 << 20,
		CacheWays:       2,
		MSHRs:           4,
		Placement:       PlaceFirstTouch,
		Speculation:     true,
		PPMode:          PPDualIssue,
		MDCSize:         64 << 10,
		MDCWays:         2,
		Timing:          DefaultTiming(),
		MemBytesPerNode: 32 << 20,
	}
}

// Validate reports configuration errors.
func (c *Config) Validate() error {
	if c.Nodes <= 0 {
		return fmt.Errorf("arch: Nodes must be positive, got %d", c.Nodes)
	}
	if c.CacheSize <= 0 || c.CacheSize%(LineSize*c.CacheWays) != 0 {
		return fmt.Errorf("arch: CacheSize %d not divisible into %d-way sets of %d-byte lines", c.CacheSize, c.CacheWays, LineSize)
	}
	if c.MSHRs <= 0 {
		return fmt.Errorf("arch: MSHRs must be positive, got %d", c.MSHRs)
	}
	if c.Kind == KindFLASH {
		if c.MDCSize <= 0 || c.MDCSize%(LineSize*c.MDCWays) != 0 {
			return fmt.Errorf("arch: MDCSize %d not divisible into %d-way sets", c.MDCSize, c.MDCWays)
		}
	}
	if c.MemBytesPerNode <= 0 || c.MemBytesPerNode%PageSize != 0 {
		return fmt.Errorf("arch: MemBytesPerNode %d must be a positive multiple of the page size", c.MemBytesPerNode)
	}
	if c.NetQueueCap < 0 {
		return fmt.Errorf("arch: NetQueueCap must be non-negative, got %d", c.NetQueueCap)
	}
	if c.DataBufs < 0 {
		return fmt.Errorf("arch: DataBufs must be non-negative, got %d", c.DataBufs)
	}
	if c.PPClockDiv < 0 {
		return fmt.Errorf("arch: PPClockDiv must be non-negative, got %d", c.PPClockDiv)
	}
	if err := c.Sample.Validate(); err != nil {
		return err
	}
	return nil
}

// SimKey renders every field that affects simulated behaviour into a stable
// string. Two configs with equal SimKeys produce bit-identical simulations
// regardless of host-side choices (PPDispatch, Engine, EngineSync), which
// is what makes snapshot restore across machines and content-addressed
// result caching sound. Timing is included wholesale; host-only fields are
// deliberately absent.
func (c *Config) SimKey() string {
	return fmt.Sprintf(
		"kind=%v nodes=%d cache=%d/%d mshrs=%d place=%v spec=%v ppmode=%d proto=%d mdc=%d/%d net=%v nqcap=%d dbufs=%d ppdiv=%d sample=%d/%d/%d timing=%+v mem=%d",
		c.Kind, c.Nodes, c.CacheSize, c.CacheWays, c.MSHRs, c.Placement,
		c.Speculation, c.PPMode, c.Protocol, c.MDCSize, c.MDCWays, c.NetModel,
		c.NetQueueCap, c.DataBufs, c.PPClockDiv,
		c.Sample.Detail, c.Sample.Stride, c.Sample.Warmup,
		c.Timing, c.MemBytesPerNode)
}

// HomeOf computes the home node of an address under the static interleaved
// layout: the machine's physical address space is the concatenation of the
// node memories, and placement policies choose which physical page backs
// each virtual page. Here physical addresses encode the node directly.
func (c *Config) HomeOf(a Addr) NodeID {
	return NodeID(uint64(a) / uint64(c.MemBytesPerNode) % uint64(c.Nodes))
}

// NodeBase returns the first physical address owned by node n.
func (c *Config) NodeBase(n NodeID) Addr {
	return Addr(uint64(n) * uint64(c.MemBytesPerNode))
}

// LocalLine returns the node-local line index of address a within its home
// node's memory (used to index the directory).
func (c *Config) LocalLine(a Addr) uint64 {
	return (uint64(a) % uint64(c.MemBytesPerNode)) >> LineShift
}
