package arch

import (
	"testing"
	"testing/quick"
)

func TestAddrGeometry(t *testing.T) {
	a := Addr(0x12345)
	if a.Line() != 0x12345>>7 {
		t.Fatalf("Line = %#x", a.Line())
	}
	if a.LineAddr() != 0x12345&^127 {
		t.Fatalf("LineAddr = %#x", a.LineAddr())
	}
	if a.Page() != 0x12 {
		t.Fatalf("Page = %#x", a.Page())
	}
}

func TestHomeOfPartition(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Nodes = 4
	cfg.MemBytesPerNode = 1 << 20
	for n := 0; n < 4; n++ {
		base := cfg.NodeBase(NodeID(n))
		if cfg.HomeOf(base) != NodeID(n) || cfg.HomeOf(base+Addr(cfg.MemBytesPerNode-1)) != NodeID(n) {
			t.Fatalf("node %d boundaries misattributed", n)
		}
	}
	if cfg.LocalLine(cfg.NodeBase(2)+256) != 2 {
		t.Fatalf("LocalLine = %d", cfg.LocalLine(cfg.NodeBase(2)+256))
	}
}

func TestConfigValidate(t *testing.T) {
	good := DefaultConfig()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []func(*Config){
		func(c *Config) { c.Nodes = 0 },
		func(c *Config) { c.CacheSize = 100 },
		func(c *Config) { c.MSHRs = 0 },
		func(c *Config) { c.MDCSize = 999 },
		func(c *Config) { c.MemBytesPerNode = 5000 },
	}
	for i, mut := range cases {
		cfg := DefaultConfig()
		mut(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Fatalf("case %d: invalid config accepted", i)
		}
	}
}

func TestMsgClassification(t *testing.T) {
	// Replies and data-carriers per the virtual-network split.
	for _, mt := range []MsgType{MsgPUT, MsgPUTX, MsgNAK, MsgIACK, MsgSWB, MsgXFER, MsgPCLR} {
		if !mt.IsReply() {
			t.Fatalf("%v should be a reply", mt)
		}
	}
	for _, mt := range []MsgType{MsgGET, MsgGETX, MsgWB, MsgRPL, MsgFwdGET, MsgFwdGETX, MsgINVAL} {
		if mt.IsReply() {
			t.Fatalf("%v should be a request", mt)
		}
	}
	for _, mt := range []MsgType{MsgWB, MsgPUT, MsgPUTX, MsgSWB, MsgPIData, MsgPCData} {
		if !mt.CarriesData() {
			t.Fatalf("%v should carry data", mt)
		}
	}
	if MsgGET.CarriesData() || MsgNAK.CarriesData() {
		t.Fatal("header-only message marked as data-carrying")
	}
}

func TestStringers(t *testing.T) {
	if MsgGET.String() != "GET" || MsgPCLR.String() != "PCLR" {
		t.Fatal("MsgType names wrong")
	}
	if MissLocalClean.String() != "Local Clean" {
		t.Fatal("MissClass names wrong")
	}
	if KindFLASH.String() != "FLASH" || KindIdeal.String() != "ideal" {
		t.Fatal("MachineKind names wrong")
	}
	if ProtoBitVector.String() != "bit-vector" {
		t.Fatal("Protocol names wrong")
	}
	for _, p := range []Placement{PlaceRoundRobin, PlaceFirstTouch, PlaceNodeZero} {
		if p.String() == "" {
			t.Fatal("empty placement name")
		}
	}
	for _, m := range []PPMode{PPDualIssue, PPSingleIssue, PPNoSpecial} {
		if m.String() == "" {
			t.Fatal("empty PP mode name")
		}
	}
}

// Property: every address belongs to exactly one home and LocalLine is
// consistent with NodeBase.
func TestHomePartitionProperty(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Nodes = 8
	cfg.MemBytesPerNode = 1 << 20
	f := func(raw uint32) bool {
		a := Addr(uint64(raw) % (8 << 20))
		h := cfg.HomeOf(a)
		off := uint64(a) - uint64(cfg.NodeBase(h))
		return off < uint64(cfg.MemBytesPerNode) &&
			cfg.LocalLine(a) == off>>LineShift
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
