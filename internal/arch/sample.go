package arch

import (
	"fmt"
	"strconv"
	"strings"
)

// SampleSpec configures SMARTS-style sampled execution: the machine
// alternates between functional fast-forward phases — references and MAGIC
// handlers applied architecturally (caches, directory state, memory values,
// and queues stay warm) with fixed uncontended charge latencies — and
// detailed measurement windows where the full PP + memory + bus machinery
// runs as usual. Phases are a pure function of the simulated cycle, so the
// schedule is identical on every engine backend and worker count:
//
//	[0, Warmup)                        detailed (warm-up, not measured)
//	then repeating:  Stride cycles     fast-forward
//	                 Detail cycles     detailed (measured)
//
// The zero value (Stride == 0) disables sampling entirely: every cycle is
// detailed and simulated behavior is bit-identical to a machine with no
// SampleSpec at all. Enabling sampling is an INTENTIONAL TIMING-MODEL
// CHANGE: elapsed time must be read from the extrapolated estimate
// (stats.Report.Sampled), not from the raw cycle counter.
type SampleSpec struct {
	// Detail is the detailed measurement-window length in cycles.
	Detail uint64
	// Stride is the fast-forward phase length in cycles; 0 disables
	// sampling (detailed fraction 1.0).
	Stride uint64
	// Warmup is a detailed prefix before the first fast-forward phase,
	// excluded from measurement: it lets caches, directories, and queues
	// reach steady state under detailed timing before extrapolation starts.
	Warmup uint64
}

// DefaultSampleSpec is the schedule used when sampling is requested without
// an explicit spec ("-sample default", the sampled experiment, bench.sh):
// one eighth detailed with windows long enough to cover several miss round
// trips, and a detailed warm-up prefix.
func DefaultSampleSpec() SampleSpec {
	return SampleSpec{Detail: 2000, Stride: 14000, Warmup: 8000}
}

// Enabled reports whether sampling is active (a zero Stride means every
// cycle is detailed).
func (s SampleSpec) Enabled() bool { return s.Stride > 0 }

// Detailed reports whether cycle c falls in a detailed phase.
func (s SampleSpec) Detailed(c uint64) bool {
	if s.Stride == 0 {
		return true
	}
	if c < s.Warmup {
		return true
	}
	return (c-s.Warmup)%(s.Stride+s.Detail) >= s.Stride
}

// PhaseAt returns the phase containing cycle c and the first cycle past it
// (exclusive): callers on per-reference hot paths cache the pair and only
// recompute when the clock crosses `end`, replacing a modulo per reference
// with a compare. Agrees with Detailed for every cycle. Only meaningful
// when sampling is enabled.
func (s SampleSpec) PhaseAt(c uint64) (detailed bool, end uint64) {
	if c < s.Warmup {
		return true, s.Warmup
	}
	p := (c - s.Warmup) % (s.Stride + s.Detail)
	if p < s.Stride {
		return false, c - p + s.Stride
	}
	return true, c - p + s.Stride + s.Detail
}

// Window returns the index of the measurement window containing detailed
// cycle c, counting from 0 after the warm-up prefix. Only meaningful when
// Detailed(c) is true and c >= Warmup.
func (s SampleSpec) Window(c uint64) int {
	return int((c - s.Warmup) / (s.Stride + s.Detail))
}

// WindowEnd returns the last cycle (exclusive) of measurement window w.
func (s SampleSpec) WindowEnd(w int) uint64 {
	return s.Warmup + (uint64(w)+1)*(s.Stride+s.Detail)
}

// DetailedCyclesThrough returns how many cycles in [0, e) are detailed
// under the schedule, in closed form.
func (s SampleSpec) DetailedCyclesThrough(e uint64) uint64 {
	if s.Stride == 0 || e <= s.Warmup {
		return e
	}
	d := s.Warmup
	rest := e - s.Warmup
	period := s.Stride + s.Detail
	d += (rest / period) * s.Detail
	if p := rest % period; p > s.Stride {
		d += p - s.Stride
	}
	return d
}

// Validate reports spec errors.
func (s SampleSpec) Validate() error {
	if s.Stride > 0 && s.Detail == 0 {
		return fmt.Errorf("arch: SampleSpec with Stride %d needs a positive Detail window (pure fast-forward has no measurement windows to extrapolate from)", s.Stride)
	}
	return nil
}

// String renders the spec in the detail/stride/warmup form ParseSampleSpec
// accepts.
func (s SampleSpec) String() string {
	if !s.Enabled() {
		return "off"
	}
	return fmt.Sprintf("%d/%d/%d", s.Detail, s.Stride, s.Warmup)
}

// ParseSampleSpec parses a sampling schedule from its command-line /
// FLASHSIM_SAMPLE form: "off" or "" (disabled), "default" (the
// DefaultSampleSpec schedule), or "detail/stride[/warmup]" in cycles.
func ParseSampleSpec(v string) (SampleSpec, error) {
	switch v {
	case "", "off":
		return SampleSpec{}, nil
	case "default":
		return DefaultSampleSpec(), nil
	}
	parts := strings.Split(v, "/")
	if len(parts) != 2 && len(parts) != 3 {
		return SampleSpec{}, fmt.Errorf("arch: sample spec %q: want detail/stride[/warmup], \"default\", or \"off\"", v)
	}
	var s SampleSpec
	for i, dst := range []*uint64{&s.Detail, &s.Stride, &s.Warmup} {
		if i >= len(parts) {
			break
		}
		n, err := strconv.ParseUint(parts[i], 10, 64)
		if err != nil {
			return SampleSpec{}, fmt.Errorf("arch: sample spec %q: %v", v, err)
		}
		*dst = n
	}
	if err := s.Validate(); err != nil {
		return SampleSpec{}, err
	}
	return s, nil
}
