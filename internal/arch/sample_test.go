package arch

import (
	"strings"
	"testing"
)

func TestParseSampleSpecForms(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want SampleSpec
	}{
		{"", SampleSpec{}},
		{"off", SampleSpec{}},
		{"default", DefaultSampleSpec()},
		{"100/900", SampleSpec{Detail: 100, Stride: 900}},
		{"100/900/50", SampleSpec{Detail: 100, Stride: 900, Warmup: 50}},
		{"100/0", SampleSpec{Detail: 100}}, // Stride 0: sampling off
	} {
		got, err := ParseSampleSpec(tc.in)
		if err != nil {
			t.Fatalf("ParseSampleSpec(%q): %v", tc.in, err)
		}
		if got != tc.want {
			t.Errorf("ParseSampleSpec(%q) = %+v, want %+v", tc.in, got, tc.want)
		}
	}
}

func TestParseSampleSpecErrors(t *testing.T) {
	for _, tc := range []struct {
		in      string
		wantSub string
	}{
		{"100", "want detail/stride"},
		{"1/2/3/4", "want detail/stride"},
		{"abc/900", "sample spec"},
		{"100/xyz", "sample spec"},
		{"100/-5", "sample spec"},
		{"/", "sample spec"},
		{"0/900", "positive Detail"}, // Validate: stride without a window
	} {
		_, err := ParseSampleSpec(tc.in)
		if err == nil {
			t.Errorf("ParseSampleSpec(%q): expected error", tc.in)
			continue
		}
		if !strings.Contains(err.Error(), tc.wantSub) {
			t.Errorf("ParseSampleSpec(%q) error %q does not mention %q", tc.in, err, tc.wantSub)
		}
	}
}

// PhaseAt must agree with Detailed at every boundary cycle: warm-up end,
// fast-forward/detailed edges, and the cycles on either side of each.
func TestPhaseAtBoundaries(t *testing.T) {
	s := SampleSpec{Detail: 100, Stride: 900, Warmup: 50}
	period := s.Stride + s.Detail
	var probes []uint64
	add := func(c uint64) {
		if c > 0 {
			probes = append(probes, c-1)
		}
		probes = append(probes, c, c+1)
	}
	add(0)
	add(s.Warmup)
	for k := uint64(0); k < 3; k++ {
		add(s.Warmup + k*period + s.Stride) // fast-forward -> detailed edge
		add(s.Warmup + (k+1)*period)        // detailed -> fast-forward edge
	}
	for _, c := range probes {
		det, end := s.PhaseAt(c)
		if det != s.Detailed(c) {
			t.Errorf("PhaseAt(%d) detailed=%v disagrees with Detailed=%v", c, det, s.Detailed(c))
		}
		if end <= c {
			t.Errorf("PhaseAt(%d) end=%d not past the cycle", c, end)
		}
		// Every cycle inside [c, end) is in the same phase; end is not.
		if s.Detailed(end-1) != det {
			t.Errorf("PhaseAt(%d): cycle %d inside the phase disagrees", c, end-1)
		}
		if s.Detailed(end) == det {
			t.Errorf("PhaseAt(%d): end=%d still in the same phase", c, end)
		}
	}
}

// With Warmup 0 the first phase is fast-forward starting at cycle 0.
func TestPhaseAtWarmupZero(t *testing.T) {
	s := SampleSpec{Detail: 10, Stride: 90}
	det, end := s.PhaseAt(0)
	if det || end != 90 {
		t.Fatalf("PhaseAt(0) = (%v, %d), want (false, 90)", det, end)
	}
	det, end = s.PhaseAt(90)
	if !det || end != 100 {
		t.Fatalf("PhaseAt(90) = (%v, %d), want (true, 100)", det, end)
	}
}

// Stride 0 is the off switch: every cycle is detailed and
// DetailedCyclesThrough is the identity.
func TestStrideZeroOffSwitch(t *testing.T) {
	s := SampleSpec{Detail: 100}
	if s.Enabled() {
		t.Fatal("Stride 0 spec reports Enabled")
	}
	for _, c := range []uint64{0, 1, 99, 100, 1 << 40} {
		if !s.Detailed(c) {
			t.Errorf("Stride 0: cycle %d not detailed", c)
		}
	}
	for _, e := range []uint64{0, 1, 12345} {
		if got := s.DetailedCyclesThrough(e); got != e {
			t.Errorf("Stride 0: DetailedCyclesThrough(%d) = %d", e, got)
		}
	}
}

// DetailedCyclesThrough must equal a brute-force count of Detailed cycles
// at every phase boundary (and neighbors).
func TestDetailedCyclesThroughBoundaries(t *testing.T) {
	for _, s := range []SampleSpec{
		{Detail: 10, Stride: 40, Warmup: 25},
		{Detail: 10, Stride: 40}, // Warmup 0
		{Detail: 1, Stride: 1, Warmup: 1},
	} {
		period := s.Stride + s.Detail
		var probes []uint64
		for k := uint64(0); k < 3; k++ {
			base := s.Warmup + k*period
			for _, e := range []uint64{base, base + 1, base + s.Stride, base + s.Stride + 1, base + period} {
				probes = append(probes, e)
			}
		}
		probes = append(probes, 0, 1, s.Warmup)
		count := func(e uint64) uint64 {
			var n uint64
			for c := uint64(0); c < e; c++ {
				if s.Detailed(c) {
					n++
				}
			}
			return n
		}
		for _, e := range probes {
			if got, want := s.DetailedCyclesThrough(e), count(e); got != want {
				t.Errorf("spec %+v: DetailedCyclesThrough(%d) = %d, want %d", s, e, got, want)
			}
		}
	}
}
