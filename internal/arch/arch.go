// Package arch defines the architectural constants and types shared by every
// component of the FLASH simulator: addresses, cache-line geometry, node
// identifiers, inter- and intra-node messages, and machine configuration.
//
// The numeric constants reproduce Table 3.2 of the paper ("Suboperation
// Latencies in 10 ns Cycles"); composite latencies such as the 27-cycle local
// clean read miss emerge from the component models, not from tables.
package arch

import "fmt"

// Addr is a global physical byte address in the machine's shared address
// space.
type Addr uint64

// NodeID identifies a FLASH node (processor + caches + MAGIC + memory slice).
type NodeID int32

const (
	// LineSize is the cache line size in bytes (both machines, Section 3.2).
	LineSize = 128
	// LineShift is log2(LineSize).
	LineShift = 7
	// PageSize is the placement granularity for distributing physical pages
	// across node memories.
	PageSize = 4096
	// PageShift is log2(PageSize).
	PageShift = 12
	// WordSize is the width of the path to memory (64 bits).
	WordSize = 8
	// WordsPerLine is the number of 8-byte words in a cache line.
	WordsPerLine = LineSize / WordSize
)

// Line returns the cache-line index of a.
func (a Addr) Line() uint64 { return uint64(a) >> LineShift }

// LineAddr returns the address of the first byte of a's cache line.
func (a Addr) LineAddr() Addr { return a &^ (LineSize - 1) }

// Page returns the page index of a.
func (a Addr) Page() uint64 { return uint64(a) >> PageShift }

// Timing holds the suboperation latencies of Table 3.2, in 10 ns cycles.
// FLASH and the ideal machine share every field except where noted.
type Timing struct {
	MissDetect  uint32 // miss detect to request on bus
	BusTransit  uint32 // processor bus transit
	PIInbound   uint32 // processor interface inbound processing
	PIOutbound  uint32 // PI outbound processing (4 FLASH, 2 ideal)
	PIBusArb    uint32 // outbound bus arbitration
	PIBusWord   uint32 // outbound bus transit for first word
	PCacheState uint32 // retrieve state from processor cache
	PCacheData  uint32 // retrieve first double word from processor cache
	NIInbound   uint32 // network interface inbound processing
	NIOutbound  uint32 // NI outbound processing
	InboxSelect uint32 // inbox queue selection and arbitration
	JumpTable   uint32 // jump table lookup (FLASH only; 0 for ideal)
	MDCMiss     uint32 // MAGIC data cache miss penalty (FLASH only)
	OutboxOut   uint32 // outbox outbound processing (FLASH only)
	NetTransit  uint32 // network transit, average case
	MemAccess   uint32 // memory access, time to first 8 bytes
	MemLineBusy uint32 // memory controller busy time per full-line access
	BusLineBusy uint32 // processor bus busy time streaming a full line
	NakBackoff  uint32 // processor cache retry delay after a NAK
	InvalIssue  uint32 // PI-side latency to invalidate the processor cache
}

// DefaultTiming returns the FLASH latencies of Table 3.2 for a 16-processor
// machine (22-cycle average network transit).
func DefaultTiming() Timing {
	return Timing{
		MissDetect:  5,
		BusTransit:  1,
		PIInbound:   1,
		PIOutbound:  4,
		PIBusArb:    1,
		PIBusWord:   1,
		PCacheState: 15,
		PCacheData:  20,
		NIInbound:   8,
		NIOutbound:  4,
		InboxSelect: 1,
		JumpTable:   2,
		MDCMiss:     29,
		OutboxOut:   1,
		NetTransit:  0, // derived from the node count unless overridden
		MemAccess:   14,
		// A full 128-byte line over the 64-bit memory path: 14 cycles to the
		// first word plus one word per cycle for the remaining 15. This also
		// reproduces the 29-cycle MDC miss penalty of Table 3.2.
		MemLineBusy: 29,
		BusLineBusy: 16,
		NakBackoff:  20,
		InvalIssue:  15,
	}
}

// In DefaultTiming NetTransit is left zero, meaning "derive from the node
// count when the machine is built" (22 cycles for 16 processors); set it
// explicitly to pin a sweep value.

// IdealTiming returns the latencies assumed for the idealized hardwired
// machine: PI outbound drops to 2 cycles and every macropipeline
// suboperation (jump table, handler execution, MDC, outbox) takes zero time.
func IdealTiming() Timing {
	t := DefaultTiming()
	t.PIOutbound = 2
	t.JumpTable = 0
	t.MDCMiss = 0
	t.OutboxOut = 0
	return t
}

// MsgType enumerates protocol message types. These correspond one-for-one to
// jump table entries in MAGIC.
type MsgType uint8

const (
	// Requests from the local processor (PI) or from remote nodes (NI).
	MsgGET  MsgType = iota // read request
	MsgGETX                // read-exclusive (write) request
	MsgWB                  // writeback of a dirty line (carries data)
	MsgRPL                 // replacement hint for a clean line

	// Home-generated traffic.
	MsgFwdGET  // forwarded read to the dirty node
	MsgFwdGETX // forwarded read-exclusive to the dirty node
	MsgINVAL   // invalidate a shared copy

	// Replies.
	MsgPUT  // data reply, shared
	MsgPUTX // data reply, exclusive (carries pending-invalidation count)
	MsgNAK  // negative acknowledgment; requester must retry
	MsgIACK // invalidation acknowledgment (sent to the home node)
	MsgSWB  // sharing writeback: dirty data to home on a 3-hop read
	MsgXFER // ownership transfer notice to home on a 3-hop write
	MsgPCLR // pending-clear: a forwarded request found the line already written back

	// PI-internal transactions (MAGIC -> processor cache).
	MsgPIData   // data reply to the processor (completes a miss)
	MsgPIInval  // invalidate processor cache line
	MsgPIDowngr // retrieve dirty data, downgrade M->S
	MsgPIFlush  // retrieve dirty data and invalidate

	// Processor-cache responses to PI interventions.
	MsgPCData  // dirty data retrieved from the processor cache
	MsgPCClean // line was not dirty (writeback raced the intervention)

	NumMsgTypes
)

var msgNames = [NumMsgTypes]string{
	"GET", "GETX", "WB", "RPL",
	"FwdGET", "FwdGETX", "INVAL",
	"PUT", "PUTX", "NAK", "IACK", "SWB", "XFER", "PCLR",
	"PIData", "PIInval", "PIDowngr", "PIFlush",
	"PCData", "PCClean",
}

func (t MsgType) String() string {
	if int(t) < len(msgNames) {
		return msgNames[t]
	}
	return fmt.Sprintf("MsgType(%d)", uint8(t))
}

// IsReply reports whether t travels on the reply virtual network. Requests
// and replies use separate virtual networks and separate MAGIC queues so
// that reply traffic can always drain (deadlock avoidance).
func (t MsgType) IsReply() bool {
	switch t {
	case MsgPUT, MsgPUTX, MsgNAK, MsgIACK, MsgSWB, MsgXFER, MsgPCLR:
		return true
	}
	return false
}

// CarriesData reports whether messages of type t carry a full cache line and
// therefore occupy a MAGIC data buffer.
func (t MsgType) CarriesData() bool {
	switch t {
	case MsgWB, MsgPUT, MsgPUTX, MsgSWB, MsgPIData, MsgPCData:
		return true
	}
	return false
}

// Msg is a protocol message. Within a node the same structure represents
// PI, NI and memory-system transactions; between nodes it is what the mesh
// carries.
type Msg struct {
	Type MsgType
	Addr Addr   // line-aligned target address
	Src  NodeID // originating node
	Dst  NodeID // destination node
	Req  NodeID // original requester (for forwarded messages)
	Aux  uint32 // type-specific: invalidation count for PUTX, etc.
	DB   int16  // data buffer index inside a node; -1 if none

	// TID is the observability layer's causal trace id: the id of the trace
	// event that produced this message (0 when tracing is off). It is
	// carried, never interpreted — simulated behavior must not depend on it.
	TID uint64
}

// RefKind is the kind of memory reference a processor issues.
type RefKind uint8

const (
	RefRead RefKind = iota
	RefWrite
	RefRMW // atomic read-modify-write (synchronization)
)

func (k RefKind) String() string {
	switch k {
	case RefRead:
		return "read"
	case RefWrite:
		return "write"
	default:
		return "rmw"
	}
}

// MissClass classifies a read miss by where it was satisfied, matching the
// five rows of Table 4.1.
type MissClass uint8

const (
	MissLocalClean      MissClass = iota // clean in local node's memory
	MissLocalDirty                       // local address, dirty in a remote cache
	MissRemoteClean                      // clean in home node's memory
	MissRemoteDirtyHome                  // dirty in home node's processor cache
	MissRemoteDirty3rd                   // dirty in a third node's cache
	NumMissClasses
)

var missClassNames = [NumMissClasses]string{
	"Local Clean", "Local Dirty Remote", "Remote Clean",
	"Remote Dirty at Home", "Remote Dirty Remote",
}

func (c MissClass) String() string { return missClassNames[c] }
