// Package network models the FLASH interconnect: a two-dimensional mesh
// abstracted, as in the paper, by a fixed average transit latency per
// message (22 cycles for 16 processors: one hop to enter and exit, 2.6 hops
// of transit at 40 ns fall-through, and 3 cycles of header). Requests and
// replies travel on separate virtual networks so that replies can always
// make progress.
package network

import (
	"flashsim/internal/arch"
	"flashsim/internal/sim"
	"flashsim/internal/trace"
)

// Sink receives messages delivered to a node.
type Sink interface {
	// FromNet delivers m to the node. The callee owns any further queueing;
	// a full inbound queue backs messages up into (unbounded) network
	// buffering on the callee side, exactly as Table 3.1 specifies.
	FromNet(m arch.Msg)
}

// Network delivers messages between nodes after a fixed transit latency.
type Network struct {
	eng     *sim.Engine
	transit sim.Cycle
	sinks   []Sink

	// Tr, when non-nil, receives a send/recv event pair per message.
	// Injected per machine (core.Machine.SetTracer).
	Tr *trace.Tracer

	// Stats.
	Msgs      uint64
	DataMsgs  uint64
	ReplyMsgs uint64
}

// New creates a network for n nodes with the given transit latency.
func New(eng *sim.Engine, n int, transit sim.Cycle) *Network {
	return &Network{eng: eng, transit: transit, sinks: make([]Sink, n)}
}

// Attach registers the sink for node id.
func (n *Network) Attach(id arch.NodeID, s Sink) { n.sinks[id] = s }

// Send injects m at time `at` (which must be >= the engine's current time);
// it is delivered to m.Dst after the transit latency.
func (n *Network) Send(at sim.Cycle, m arch.Msg) {
	n.Msgs++
	if m.Type.CarriesData() {
		n.DataMsgs++
	}
	if m.Type.IsReply() {
		n.ReplyMsgs++
	}
	dst := n.sinks[m.Dst]
	if dst == nil {
		panic("network: send to unattached node")
	}
	if n.Tr.Active() {
		// Each hop gets its own id, parented on the producing context, and
		// becomes the causal parent of whatever its delivery triggers.
		id := n.Tr.NewID()
		n.Tr.Emit(trace.Event{
			Cycle: uint64(at), Node: int32(m.Src), Kind: trace.KindMsgSend,
			Addr: uint64(m.Addr), Arg: uint64(m.Dst), ID: id, Parent: m.TID,
			Name: m.Type.String(),
		})
		m.TID = id
		arrive := at + n.transit
		n.eng.At(arrive, func() {
			n.Tr.Emit(trace.Event{
				Cycle: uint64(arrive), Node: int32(m.Dst), Kind: trace.KindMsgRecv,
				Addr: uint64(m.Addr), ID: id, Name: m.Type.String(),
			})
			dst.FromNet(m)
		})
		return
	}
	n.eng.At(at+n.transit, func() { dst.FromNet(m) })
}

// AvgTransitFor returns the paper's average transit estimate for a p-node
// 2-D mesh: one hop in, one hop out, the average internal hop count of a
// sqrt(p) x sqrt(p) mesh at 4 cycles (40 ns) per hop, plus 3 header cycles.
func AvgTransitFor(p int) sim.Cycle {
	// Average Manhattan distance on a k x k mesh is ~2k/3 hops.
	k := 1
	for k*k < p {
		k++
	}
	internal := 2.0 * float64(k) / 3.0
	cycles := (1.0+internal+1.0)*4.0 + 3.0
	return sim.Cycle(cycles + 0.5)
}
