// Package network models the FLASH interconnect: a two-dimensional mesh
// abstracted, as in the paper, by a fixed average transit latency per
// message (22 cycles for 16 processors: one hop to enter and exit, 2.6 hops
// of transit at 40 ns fall-through, and 3 cycles of header). Requests and
// replies travel on separate virtual networks so that replies can always
// make progress.
//
// Each node sends through its own Port. Ports are the only cross-node edge
// in the simulator: a send turns into a Scheduler.Deliver on the source
// node's shard, keyed by (source, per-port send sequence), which is what
// makes delivery order — and therefore the whole simulation — deterministic
// under the parallel engine. Message counters live on the port (single
// writer: the owning node's events) and are summed on demand.
package network

import (
	"fmt"

	"flashsim/internal/arch"
	"flashsim/internal/sim"
	"flashsim/internal/trace"
)

// Sink receives messages delivered to a node.
type Sink interface {
	// FromNet delivers m to the node. The callee owns any further queueing;
	// a full inbound queue backs messages up into (unbounded) network
	// buffering on the callee side, exactly as Table 3.1 specifies.
	FromNet(m arch.Msg)
}

// Network delivers messages between nodes after a fixed transit latency, or
// — when a distance model is installed — after the model's per-pair transit.
type Network struct {
	transit sim.Cycle
	dist    sim.DistanceModel // nil = uniform transit
	sinks   []Sink
	ports   []*Port
}

// Port is node src's injection point into the network.
type Port struct {
	net   *Network
	src   arch.NodeID
	sched sim.Scheduler
	seq   uint64 // monotonic send sequence; orders this port's deliveries

	// Tr, when non-nil, receives the send half of each message's trace
	// pair (the recv half is emitted through the destination port's
	// tracer, since the arrival runs on the destination's shard). Injected
	// per machine (core.Machine.SetTracer).
	Tr *trace.Tracer

	// Stats. Single-writer: only the owning node's events send.
	Msgs      uint64
	DataMsgs  uint64
	ReplyMsgs uint64
}

// New creates a network for n nodes with the given transit latency.
func New(n int, transit sim.Cycle) *Network {
	return &Network{
		transit: transit,
		sinks:   make([]Sink, n),
		ports:   make([]*Port, n),
	}
}

// Attach registers the sink for node id.
func (n *Network) Attach(id arch.NodeID, s Sink) { n.sinks[id] = s }

// Port returns node id's port, creating it bound to sched on first use.
func (n *Network) Port(id arch.NodeID, sched sim.Scheduler) *Port {
	if n.ports[id] == nil {
		n.ports[id] = &Port{net: n, src: id, sched: sched}
	}
	return n.ports[id]
}

// Transit returns the fixed per-message transit latency.
func (n *Network) Transit() sim.Cycle { return n.transit }

// SetDistance installs a per-pair transit model (nil restores the uniform
// latency). The model doubles as the engine's lookahead source, so actual
// transit equals the conservative bound exactly — no message can undercut
// the synchronization contract.
func (n *Network) SetDistance(dm sim.DistanceModel) { n.dist = dm }

// TransitFor returns the transit latency charged from src to dst.
func (n *Network) TransitFor(src, dst arch.NodeID) sim.Cycle {
	if n.dist != nil {
		return n.dist.MinTransit(int(src), int(dst))
	}
	return n.transit
}

// TotalMsgs sums messages sent across all ports.
func (n *Network) TotalMsgs() uint64 { return n.total(func(p *Port) uint64 { return p.Msgs }) }

// TotalDataMsgs sums data-carrying messages sent across all ports.
func (n *Network) TotalDataMsgs() uint64 { return n.total(func(p *Port) uint64 { return p.DataMsgs }) }

// TotalReplyMsgs sums reply messages sent across all ports.
func (n *Network) TotalReplyMsgs() uint64 { return n.total(func(p *Port) uint64 { return p.ReplyMsgs }) }

func (n *Network) total(f func(*Port) uint64) uint64 {
	var t uint64
	for _, p := range n.ports {
		if p != nil {
			t += f(p)
		}
	}
	return t
}

// PortState is a port's deterministic state: the send-sequence counter
// (which keys delivery order, so forks must continue it exactly) and the
// message counters.
type PortState struct {
	Seq       uint64
	Msgs      uint64
	DataMsgs  uint64
	ReplyMsgs uint64
}

// CaptureState snapshots the port counters.
func (p *Port) CaptureState() PortState {
	return PortState{Seq: p.seq, Msgs: p.Msgs, DataMsgs: p.DataMsgs, ReplyMsgs: p.ReplyMsgs}
}

// RestoreState installs captured port counters.
func (p *Port) RestoreState(st PortState) {
	p.seq = st.Seq
	p.Msgs, p.DataMsgs, p.ReplyMsgs = st.Msgs, st.DataMsgs, st.ReplyMsgs
}

// Reset zeroes the sequence and message counters.
func (p *Port) Reset() {
	p.seq = 0
	p.Msgs, p.DataMsgs, p.ReplyMsgs = 0, 0, 0
}

// Send injects m at time `at` (which must be >= the owning node's current
// time); it is delivered to m.Dst after the transit latency.
func (p *Port) Send(at sim.Cycle, m arch.Msg) {
	n := p.net
	p.Msgs++
	if m.Type.CarriesData() {
		p.DataMsgs++
	}
	if m.Type.IsReply() {
		p.ReplyMsgs++
	}
	dst := n.sinks[m.Dst]
	if dst == nil {
		panic(fmt.Sprintf("network: send %s to unattached node %d", m.Type, m.Dst))
	}
	arrive := at + n.transit
	if n.dist != nil {
		arrive = at + n.dist.MinTransit(int(p.src), int(m.Dst))
	}
	p.seq++
	if p.Tr.Active() {
		// Each hop gets its own id, parented on the producing context, and
		// becomes the causal parent of whatever its delivery triggers.
		id := p.Tr.NewID()
		p.Tr.Emit(trace.Event{
			Cycle: uint64(at), Node: int32(m.Src), Kind: trace.KindMsgSend,
			Addr: uint64(m.Addr), Arg: uint64(m.Dst), ID: id, Parent: m.TID,
			Name: m.Type.String(),
		})
		m.TID = id
		// The arrival runs on the destination's shard, so the recv event
		// goes through the destination port's tracer.
		recvTr := p.Tr
		if dp := n.ports[m.Dst]; dp != nil {
			recvTr = dp.Tr
		}
		p.sched.Deliver(arrive, int(p.src), int(m.Dst), p.seq, func() {
			recvTr.Emit(trace.Event{
				Cycle: uint64(arrive), Node: int32(m.Dst), Kind: trace.KindMsgRecv,
				Addr: uint64(m.Addr), ID: id, Name: m.Type.String(),
			})
			dst.FromNet(m)
		})
		return
	}
	p.sched.Deliver(arrive, int(p.src), int(m.Dst), p.seq, func() { dst.FromNet(m) })
}

// AvgTransitFor returns the paper's average transit estimate for a p-node
// 2-D mesh: one hop in, one hop out, the average internal hop count of a
// sqrt(p) x sqrt(p) mesh at 4 cycles (40 ns) per hop, plus 3 header cycles.
func AvgTransitFor(p int) sim.Cycle {
	// Average Manhattan distance on a k x k mesh is ~2k/3 hops.
	k := meshSide(p)
	internal := 2.0 * float64(k) / 3.0
	cycles := (1.0+internal+1.0)*4.0 + 3.0
	return sim.Cycle(cycles + 0.5)
}

// meshSide returns the side of the smallest square mesh holding p nodes.
func meshSide(p int) int {
	k := 1
	for k*k < p {
		k++
	}
	return k
}

// Mesh is the explicit 2-D mesh distance model behind AvgTransitFor's
// average: nodes laid out row-major on the smallest k x k grid, transit from
// src to dst = (1 hop in + Manhattan hops + 1 hop out) * 4 cycles + 3 header
// cycles. It implements sim.DistanceModel, so the same distances that charge
// message latency also bound the sharded engine's per-pair lookahead —
// adjacent nodes synchronize tightly, opposite corners barely at all.
type Mesh struct {
	k int
}

// NewMesh returns the mesh model for n nodes.
func NewMesh(n int) *Mesh { return &Mesh{k: meshSide(n)} }

// MinTransit returns the exact transit from src to dst; the model is
// contention-free, so the minimum is also the actual latency.
func (m *Mesh) MinTransit(src, dst int) sim.Cycle {
	sx, sy := src%m.k, src/m.k
	dx, dy := dst%m.k, dst/m.k
	hops := sx - dx
	if hops < 0 {
		hops = -hops
	}
	if dyh := sy - dy; dyh >= 0 {
		hops += dyh
	} else {
		hops -= dyh
	}
	return sim.Cycle((1+hops+1)*4 + 3)
}

// MinPairTransit returns the smallest cross-node transit — the store
// visibility quantum equivalent of the uniform model's fixed latency.
func (m *Mesh) MinPairTransit() sim.Cycle {
	if m.k < 2 {
		return m.MinTransit(0, 0)
	}
	return m.MinTransit(0, 1)
}
