package network

import (
	"testing"

	"flashsim/internal/arch"
	"flashsim/internal/sim"
)

type sink struct {
	got []struct {
		m  arch.Msg
		at sim.Cycle
	}
	eng *sim.Engine
}

func (s *sink) FromNet(m arch.Msg) {
	s.got = append(s.got, struct {
		m  arch.Msg
		at sim.Cycle
	}{m, s.eng.Now()})
}

func TestDeliveryLatencyAndOrder(t *testing.T) {
	eng := sim.NewEngine()
	n := New(eng, 2, 22)
	s := &sink{eng: eng}
	n.Attach(0, s)
	n.Attach(1, s)

	a := arch.Msg{Type: arch.MsgGET, Dst: 1, Addr: 0x100}
	b := arch.Msg{Type: arch.MsgPUT, Dst: 1, Addr: 0x200, DB: 0}
	eng.At(5, func() { n.Send(5, a) })
	eng.At(6, func() { n.Send(6, b) })
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if len(s.got) != 2 {
		t.Fatalf("delivered %d, want 2", len(s.got))
	}
	if s.got[0].at != 27 || s.got[1].at != 28 {
		t.Fatalf("delivery times %d,%d want 27,28", s.got[0].at, s.got[1].at)
	}
	if s.got[0].m.Addr != 0x100 {
		t.Fatal("FIFO order violated")
	}
	if n.Msgs != 2 || n.DataMsgs != 1 || n.ReplyMsgs != 1 {
		t.Fatalf("stats = %d/%d/%d", n.Msgs, n.DataMsgs, n.ReplyMsgs)
	}
}

func TestAvgTransit(t *testing.T) {
	// The paper's figure: 22 cycles for a 16-processor mesh.
	if got := AvgTransitFor(16); got != 22 {
		t.Fatalf("AvgTransitFor(16) = %d, want 22", got)
	}
	if got := AvgTransitFor(64); got < 23 || got > 40 {
		t.Fatalf("AvgTransitFor(64) = %d, implausible", got)
	}
	if got := AvgTransitFor(1); got < 8 || got > 22 {
		t.Fatalf("AvgTransitFor(1) = %d, implausible", got)
	}
}

func TestUnattachedPanics(t *testing.T) {
	eng := sim.NewEngine()
	n := New(eng, 2, 22)
	defer func() {
		if recover() == nil {
			t.Fatal("send to unattached node did not panic")
		}
	}()
	n.Send(0, arch.Msg{Dst: 1})
}
