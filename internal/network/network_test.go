package network

import (
	"fmt"
	"testing"

	"flashsim/internal/arch"
	"flashsim/internal/sim"
)

type sink struct {
	got []struct {
		m  arch.Msg
		at sim.Cycle
	}
	eng *sim.Engine
}

func (s *sink) FromNet(m arch.Msg) {
	s.got = append(s.got, struct {
		m  arch.Msg
		at sim.Cycle
	}{m, s.eng.Now()})
}

func TestDeliveryLatencyAndOrder(t *testing.T) {
	eng := sim.NewEngine()
	n := New(2, 22)
	p := n.Port(0, eng)
	s := &sink{eng: eng}
	n.Attach(0, s)
	n.Attach(1, s)

	a := arch.Msg{Type: arch.MsgGET, Dst: 1, Addr: 0x100}
	b := arch.Msg{Type: arch.MsgPUT, Dst: 1, Addr: 0x200, DB: 0}
	eng.At(5, func() { p.Send(5, a) })
	eng.At(6, func() { p.Send(6, b) })
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if len(s.got) != 2 {
		t.Fatalf("delivered %d, want 2", len(s.got))
	}
	if s.got[0].at != 27 || s.got[1].at != 28 {
		t.Fatalf("delivery times %d,%d want 27,28", s.got[0].at, s.got[1].at)
	}
	if s.got[0].m.Addr != 0x100 {
		t.Fatal("FIFO order violated")
	}
	if p.Msgs != 2 || p.DataMsgs != 1 || p.ReplyMsgs != 1 {
		t.Fatalf("port stats = %d/%d/%d", p.Msgs, p.DataMsgs, p.ReplyMsgs)
	}
	if n.TotalMsgs() != 2 || n.TotalDataMsgs() != 1 || n.TotalReplyMsgs() != 1 {
		t.Fatalf("network stats = %d/%d/%d", n.TotalMsgs(), n.TotalDataMsgs(), n.TotalReplyMsgs())
	}
}

func TestAvgTransit(t *testing.T) {
	// The paper's figure: 22 cycles for a 16-processor mesh.
	if got := AvgTransitFor(16); got != 22 {
		t.Fatalf("AvgTransitFor(16) = %d, want 22", got)
	}
	if got := AvgTransitFor(64); got < 23 || got > 40 {
		t.Fatalf("AvgTransitFor(64) = %d, implausible", got)
	}
	if got := AvgTransitFor(1); got < 8 || got > 22 {
		t.Fatalf("AvgTransitFor(1) = %d, implausible", got)
	}
}

func TestUnattachedPanics(t *testing.T) {
	eng := sim.NewEngine()
	n := New(2, 22)
	p := n.Port(0, eng)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("send to unattached node did not panic")
		}
		// The message must name the offending node and message type.
		want := fmt.Sprintf("network: send %s to unattached node %d", arch.MsgGET, 1)
		if got, ok := r.(string); !ok || got != want {
			t.Fatalf("panic %q, want %q", r, want)
		}
	}()
	p.Send(0, arch.Msg{Type: arch.MsgGET, Dst: 1})
}
