// Package cliutil holds small helpers shared by the flashsim and flashexp
// command-line tools: output-path collision checks and pprof capture.
package cliutil

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime/pprof"
)

// OutputFlag names one flag that writes a file.
type OutputFlag struct {
	Flag string // flag name, for error messages (e.g. "-json")
	Path string // the value the user gave; "" means the flag is unused
}

// DistinctOutputs rejects configurations in which two output flags would
// clobber each other's file, or a file output would collide with results
// already going to standard output. stdoutUser names the output that owns
// stdout ("" if stdout is free). Paths are compared after filepath.Clean;
// "-" and "/dev/stdout" count as stdout.
func DistinctOutputs(stdoutUser string, flags ...OutputFlag) error {
	seen := map[string]string{}
	for _, f := range flags {
		if f.Path == "" {
			continue
		}
		if f.Path == "-" || f.Path == "/dev/stdout" {
			if stdoutUser != "" {
				return fmt.Errorf("%s: %q would interleave with %s output already on stdout; pick a file path", f.Flag, f.Path, stdoutUser)
			}
			stdoutUser = f.Flag
			continue
		}
		p := filepath.Clean(f.Path)
		if prev, ok := seen[p]; ok {
			return fmt.Errorf("%s and %s both write %q; give each its own path", prev, f.Flag, p)
		}
		seen[p] = f.Flag
	}
	return nil
}

// Pprof is an in-flight CPU+heap profile capture; create with StartPprof.
type Pprof struct {
	cpu  *os.File
	heap string
}

// StartPprof begins CPU profiling into dir/cpu.pprof and arranges for a
// heap profile at dir/heap.pprof on Stop. An empty dir disables capture and
// returns a nil Pprof, on which Stop is a no-op.
func StartPprof(dir string) (*Pprof, error) {
	if dir == "" {
		return nil, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	f, err := os.Create(filepath.Join(dir, "cpu.pprof"))
	if err != nil {
		return nil, err
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return nil, err
	}
	return &Pprof{cpu: f, heap: filepath.Join(dir, "heap.pprof")}, nil
}

// Stop ends CPU profiling and writes the heap profile. Safe on nil.
func (p *Pprof) Stop() error {
	if p == nil {
		return nil
	}
	pprof.StopCPUProfile()
	err := p.cpu.Close()
	f, herr := os.Create(p.heap)
	if herr != nil {
		if err == nil {
			err = herr
		}
		return err
	}
	if werr := pprof.WriteHeapProfile(f); werr != nil && err == nil {
		err = werr
	}
	if cerr := f.Close(); cerr != nil && err == nil {
		err = cerr
	}
	return err
}
