package cliutil

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestDistinctOutputsAllowsDisjointPaths(t *testing.T) {
	err := DistinctOutputs("-json",
		OutputFlag{Flag: "-trace", Path: "out/trace.jsonl"},
		OutputFlag{Flag: "-metrics-out", Path: "out/metrics.json"},
	)
	if err != nil {
		t.Fatalf("disjoint paths rejected: %v", err)
	}
}

func TestDistinctOutputsIgnoresUnset(t *testing.T) {
	if err := DistinctOutputs("", OutputFlag{Flag: "-trace"}, OutputFlag{Flag: "-metrics-out"}); err != nil {
		t.Fatalf("unset flags rejected: %v", err)
	}
}

func TestDistinctOutputsRejectsSamePath(t *testing.T) {
	err := DistinctOutputs("",
		OutputFlag{Flag: "-trace", Path: "out.json"},
		OutputFlag{Flag: "-metrics-out", Path: "./out.json"},
	)
	if err == nil {
		t.Fatal("same path (modulo Clean) accepted")
	}
	for _, want := range []string{"-trace", "-metrics-out", "out.json"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q does not name %q", err, want)
		}
	}
}

func TestDistinctOutputsRejectsStdoutCollision(t *testing.T) {
	for _, path := range []string{"-", "/dev/stdout"} {
		err := DistinctOutputs("-json", OutputFlag{Flag: "-metrics-out", Path: path})
		if err == nil {
			t.Fatalf("path %q accepted while -json owns stdout", path)
		}
		if !strings.Contains(err.Error(), "-json") || !strings.Contains(err.Error(), "-metrics-out") {
			t.Errorf("error %q does not name both flags", err)
		}
	}
	// With stdout free, one "-" output is fine; a second one is not.
	if err := DistinctOutputs("", OutputFlag{Flag: "-metrics-out", Path: "-"}); err != nil {
		t.Fatalf("lone stdout output rejected: %v", err)
	}
	err := DistinctOutputs("",
		OutputFlag{Flag: "-trace", Path: "-"},
		OutputFlag{Flag: "-metrics-out", Path: "-"},
	)
	if err == nil {
		t.Fatal("two stdout outputs accepted")
	}
}

// TestDistinctOutputsExploreFlags pins the flag set `flashexp explore`
// passes: -out may claim stdout (the table moves to stderr), and -table-out
// must not collide with it or with stdout.
func TestDistinctOutputsExploreFlags(t *testing.T) {
	if err := DistinctOutputs("",
		OutputFlag{Flag: "-out", Path: "pareto.json"},
		OutputFlag{Flag: "-table-out", Path: "pareto.txt"},
	); err != nil {
		t.Fatalf("disjoint explore outputs rejected: %v", err)
	}
	if err := DistinctOutputs("",
		OutputFlag{Flag: "-out", Path: "-"},
		OutputFlag{Flag: "-table-out", Path: "table.txt"},
	); err != nil {
		t.Fatalf("-out on stdout with -table-out on a file rejected: %v", err)
	}
	if err := DistinctOutputs("",
		OutputFlag{Flag: "-out", Path: "-"},
		OutputFlag{Flag: "-table-out", Path: "/dev/stdout"},
	); err == nil || !strings.Contains(err.Error(), "-out") || !strings.Contains(err.Error(), "-table-out") {
		t.Fatalf("two stdout claimants should conflict naming both flags, got %v", err)
	}
	if err := DistinctOutputs("",
		OutputFlag{Flag: "-out", Path: "same.json"},
		OutputFlag{Flag: "-table-out", Path: "same.json"},
	); err == nil {
		t.Fatal("explore outputs sharing a path accepted")
	}
}

func TestPprofCapture(t *testing.T) {
	dir := t.TempDir()
	p, err := StartPprof(dir)
	if err != nil {
		t.Fatalf("StartPprof: %v", err)
	}
	// Burn a little CPU so the profile has something to say.
	x := 0
	for i := 0; i < 1e6; i++ {
		x += i * i
	}
	_ = x
	if err := p.Stop(); err != nil {
		t.Fatalf("Stop: %v", err)
	}
	for _, name := range []string{"cpu.pprof", "heap.pprof"} {
		fi, err := os.Stat(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("%s missing: %v", name, err)
		}
		if fi.Size() == 0 {
			t.Errorf("%s is empty", name)
		}
	}
}

func TestPprofNilSafe(t *testing.T) {
	p, err := StartPprof("")
	if err != nil || p != nil {
		t.Fatalf("StartPprof(\"\") = %v, %v; want nil, nil", p, err)
	}
	if err := p.Stop(); err != nil {
		t.Fatalf("nil Stop: %v", err)
	}
}
