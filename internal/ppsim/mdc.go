// Package ppsim emulates MAGIC's protocol processor: it executes scheduled
// dual-issue handler code (package ppisa) against the node's protocol
// memory, models the MAGIC data cache (MDC) and instruction cache, and
// gathers the dynamic statistics reported in Tables 5.1-5.3 of the paper.
package ppsim

import "flashsim/internal/arch"

// MDC models the MAGIC data cache: 64 KB, 2-way set associative, 128-byte
// lines, write-back with write-allocate. Since almost all directory
// operations are read-modify-write, write misses behave like read misses
// (the paper notes the MDC write miss rate is approximately zero because of
// this).
type MDC struct {
	ways     int
	sets     int
	setShift uint
	tags     []uint64 // sets*ways; 0 = empty
	dirty    []bool
	lru      []uint8 // per-set counter for 2-way pseudo-LRU

	Stats MDCStats
}

// MDCStats counts MDC traffic for the Section 5.2 evaluation.
type MDCStats struct {
	Reads       uint64
	Writes      uint64
	ReadMisses  uint64
	WriteMisses uint64
	Writebacks  uint64
}

// MissRate returns the overall MDC miss rate.
func (s *MDCStats) MissRate() float64 {
	t := s.Reads + s.Writes
	if t == 0 {
		return 0
	}
	return float64(s.ReadMisses+s.WriteMisses) / float64(t)
}

// ReadMissRate returns the MDC read miss rate.
func (s *MDCStats) ReadMissRate() float64 {
	if s.Reads == 0 {
		return 0
	}
	return float64(s.ReadMisses) / float64(s.Reads)
}

// NewMDC builds an MDC of the given total size and associativity.
func NewMDC(size, ways int) *MDC {
	sets := size / (arch.LineSize * ways)
	if sets <= 0 || sets&(sets-1) != 0 {
		panic("ppsim: MDC set count must be a positive power of two")
	}
	m := &MDC{
		ways:  ways,
		sets:  sets,
		tags:  make([]uint64, sets*ways),
		dirty: make([]bool, sets*ways),
		lru:   make([]uint8, sets),
	}
	for s := uint(1); 1<<s < sets; s++ {
		m.setShift = s + 1
	}
	return m
}

// Access looks up the protocol-memory address a. It returns whether the
// access hit and whether a dirty victim was written back on a miss.
// isWrite marks the line dirty.
func (m *MDC) Access(a uint64, isWrite bool) (hit, writeback bool) {
	line := a >> arch.LineShift
	set := int(line) & (m.sets - 1)
	tag := line | 1<<63 // bit 63 marks a valid entry so tag 0 is distinct
	base := set * m.ways
	if isWrite {
		m.Stats.Writes++
	} else {
		m.Stats.Reads++
	}
	for w := 0; w < m.ways; w++ {
		if m.tags[base+w] == tag {
			if isWrite {
				m.dirty[base+w] = true
			}
			m.touch(set, w)
			return true, false
		}
	}
	if isWrite {
		m.Stats.WriteMisses++
	} else {
		m.Stats.ReadMisses++
	}
	// Fill, evicting the LRU way.
	victim := m.victim(set)
	idx := base + victim
	writeback = m.tags[idx] != 0 && m.dirty[idx]
	if writeback {
		m.Stats.Writebacks++
	}
	m.tags[idx] = tag
	m.dirty[idx] = isWrite
	m.touch(set, victim)
	return false, writeback
}

// Flush invalidates the whole cache (used between experiment phases).
func (m *MDC) Flush() {
	for i := range m.tags {
		m.tags[i] = 0
		m.dirty[i] = false
	}
}

// MDCState is a deep copy of the cache's tag/dirty/LRU arrays plus the
// traffic counters, captured by CaptureState for machine snapshots.
type MDCState struct {
	Tags  []uint64
	Dirty []bool
	LRU   []uint8
	Stats MDCStats
}

// CaptureState deep-copies the MDC contents and counters.
func (m *MDC) CaptureState() MDCState {
	return MDCState{
		Tags:  append([]uint64(nil), m.tags...),
		Dirty: append([]bool(nil), m.dirty...),
		LRU:   append([]uint8(nil), m.lru...),
		Stats: m.Stats,
	}
}

// RestoreState installs a captured state into a same-geometry MDC.
func (m *MDC) RestoreState(st MDCState) {
	if len(st.Tags) != len(m.tags) {
		panic("ppsim: MDC geometry mismatch in RestoreState")
	}
	copy(m.tags, st.Tags)
	copy(m.dirty, st.Dirty)
	copy(m.lru, st.LRU)
	m.Stats = st.Stats
}

// Reset empties the cache and zeroes the counters.
func (m *MDC) Reset() {
	m.Flush()
	for i := range m.lru {
		m.lru[i] = 0
	}
	m.Stats = MDCStats{}
}

func (m *MDC) touch(set, way int) {
	if m.ways == 2 {
		m.lru[set] = uint8(way)
		return
	}
	// For >2 ways fall back to a rotating counter biased away from `way`.
	m.lru[set] = uint8((way + 1) % m.ways)
}

func (m *MDC) victim(set int) int {
	if m.ways == 2 {
		return 1 - int(m.lru[set])
	}
	return int(m.lru[set]) % m.ways
}
