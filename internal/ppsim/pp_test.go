package ppsim

import (
	"testing"

	"flashsim/internal/ppisa"
)

// mockEnv records interface activity and can simulate full queues.
type mockEnv struct {
	sends     []OutHeader
	memReads  []uint64
	memWrites []uint64
	mdcFills  int
	blockN    int // number of TrySend calls to reject before accepting
}

func (m *mockEnv) TrySend(h OutHeader, dt uint64) bool {
	if m.blockN > 0 {
		m.blockN--
		return false
	}
	m.sends = append(m.sends, h)
	return true
}
func (m *mockEnv) MemRead(a, dt uint64)  { m.memReads = append(m.memReads, a) }
func (m *mockEnv) MemWrite(a, dt uint64) { m.memWrites = append(m.memWrites, a) }
func (m *mockEnv) MDCFill(a uint64, wb bool, dt uint64) uint64 {
	m.mdcFills++
	return 29
}

func build(t *testing.T, text string, mode ppisa.Mode, subst bool) *ppisa.Program {
	t.Helper()
	src, err := ppisa.Assemble(text, map[string]int64{
		"H_TYPE": 0, "H_ADDR": 1, "H_SRC": 2, "H_REQ": 3, "H_AUX": 4,
		"NET": 0, "PI": 1, "DATA": 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if subst {
		src = ppisa.SubstituteDLX(src)
	}
	return ppisa.Schedule(src, mode)
}

func newPP(prog *ppisa.Program, env Env) *PP {
	return New(prog, 64<<10, NewMDC(4096, 2), env)
}

// The reference handler exercises ALU, field ops, memory, branches, loops,
// and the MAGIC interface.
const refHandler = `
h:
	mfh   r1, H_ADDR
	ext   r2, r1, 7, 16      ; line number
	slli  r3, r2, 3          ; header offset
	ld    r4, 0(r3)
	bbs   r4, 0, .dirty
	orfi  r4, r4, 0, 1       ; mark bit 0
	ins   r4, r2, 16, 16     ; stash line number in a field
	st    r4, 0(r3)
	addi  r5, r0, 0
	addi  r6, r0, 3
.loop:
	addi  r5, r5, 1
	bne   r5, r6, .loop
	mth   H_ADDR, r1
	mth   H_TYPE, r5
	send  PI|DATA
	done
.dirty:
	ffs   r7, r4
	mth   H_AUX, r7
	send  NET
	done
`

func runRef(t *testing.T, mode ppisa.Mode, subst bool, hdrAddr, seed uint64) (*PP, *mockEnv, Status, uint64) {
	t.Helper()
	prog := build(t, refHandler, mode, subst)
	env := &mockEnv{}
	pp := newPP(prog, env)
	// Pre-seed the directory word the handler will read.
	line := (hdrAddr >> 7) & 0xFFFF
	pp.Mem[line] = seed
	pp.InHeader(ppisa.HdrAddr, hdrAddr)
	st, cyc := pp.Start("h")
	return pp, env, st, cyc
}

func TestHandlerCleanPath(t *testing.T) {
	pp, env, st, cyc := runRef(t, ppisa.DualIssue, false, 0x2A80, 0) // line 85
	if st != StatusDone {
		t.Fatalf("status = %v", st)
	}
	if len(env.sends) != 1 {
		t.Fatalf("sends = %d", len(env.sends))
	}
	s := env.sends[0]
	if s.Iface != ppisa.SendPI || !s.Data || s.Addr != 0x2A80 || s.Type != 3 {
		t.Fatalf("send = %+v", s)
	}
	// Directory word updated: bit 0 set, line number in bits 16..31.
	want := uint64(1) | 85<<16
	if pp.Mem[85] != want {
		t.Fatalf("dir word = %#x, want %#x", pp.Mem[85], want)
	}
	if cyc == 0 || cyc > 60 {
		t.Fatalf("cycles = %d, implausible", cyc)
	}
}

func TestHandlerDirtyPath(t *testing.T) {
	_, env, st, _ := runRef(t, ppisa.DualIssue, false, 0x80, 0x9) // bit0 set
	if st != StatusDone {
		t.Fatalf("status = %v", st)
	}
	if len(env.sends) != 1 || env.sends[0].Iface != ppisa.SendNet {
		t.Fatalf("sends = %+v", env.sends)
	}
	if env.sends[0].Aux != 0 { // ffs(0x9) = 0
		t.Fatalf("aux = %d, want 0", env.sends[0].Aux)
	}
}

// All three PP modes must compute identical architectural results; only the
// cycle counts differ.
func TestModeEquivalence(t *testing.T) {
	type result struct {
		mem   uint64
		sends []OutHeader
	}
	get := func(mode ppisa.Mode, subst bool) (result, uint64) {
		pp, env, st, cyc := runRef(t, mode, subst, 0x2A80, 0)
		if st != StatusDone {
			t.Fatalf("status = %v", st)
		}
		return result{mem: pp.Mem[85], sends: env.sends}, cyc
	}
	dual, cDual := get(ppisa.DualIssue, false)
	single, cSingle := get(ppisa.SingleIssue, false)
	nospec, cSub := get(ppisa.SingleIssue, true)
	if dual.mem != single.mem || dual.mem != nospec.mem {
		t.Fatalf("memory differs: %#x %#x %#x", dual.mem, single.mem, nospec.mem)
	}
	for i := range dual.sends {
		if dual.sends[i] != single.sends[i] || dual.sends[i] != nospec.sends[i] {
			t.Fatalf("send %d differs across modes", i)
		}
	}
	if !(cDual < cSingle && cSingle < cSub) {
		t.Fatalf("cycle ordering violated: dual=%d single=%d subst=%d", cDual, cSingle, cSub)
	}
}

func TestBlockedSendResume(t *testing.T) {
	prog := build(t, `
h:	mth  H_ADDR, r1
	send NET
	addi r9, r0, 7
	done
`, ppisa.DualIssue, false)
	env := &mockEnv{blockN: 2}
	pp := newPP(prog, env)
	st, _ := pp.Start("h")
	if st != StatusBlockedSend {
		t.Fatalf("status = %v, want blocked", st)
	}
	if !pp.Running() {
		t.Fatal("PP should still be running")
	}
	st, _ = pp.Resume() // still blocked once more
	if st != StatusBlockedSend {
		t.Fatalf("status = %v, want blocked again", st)
	}
	st, _ = pp.Resume()
	if st != StatusDone {
		t.Fatalf("status = %v, want done", st)
	}
	if len(env.sends) != 1 {
		t.Fatalf("sends = %d", len(env.sends))
	}
	if pp.regs[9] != 7 {
		t.Fatalf("post-send instruction lost: r9 = %d", pp.regs[9])
	}
}

func TestWaitPC(t *testing.T) {
	prog := build(t, `
h:	waitpc
	mfh  r1, 5
	mth  H_AUX, r1
	send NET
	done
`, ppisa.DualIssue, false)
	env := &mockEnv{}
	pp := newPP(prog, env)
	st, _ := pp.Start("h")
	if st != StatusWaitPC {
		t.Fatalf("status = %v, want WaitPC", st)
	}
	pp.SetPCResponse(1)
	st, _ = pp.Resume()
	if st != StatusDone {
		t.Fatalf("status = %v", st)
	}
	if env.sends[0].Aux != 1 {
		t.Fatalf("aux = %d, want 1 (PC response)", env.sends[0].Aux)
	}
}

func TestMDCMissAddsPenalty(t *testing.T) {
	prog := build(t, `
h:	ld   r1, 0(r0)
	done
`, ppisa.DualIssue, false)
	env := &mockEnv{}
	pp := newPP(prog, env)
	_, cyc := pp.Start("h")
	if env.mdcFills != 1 {
		t.Fatalf("mdcFills = %d", env.mdcFills)
	}
	if cyc < 29 {
		t.Fatalf("cycles = %d, want >= 29 (MDC miss)", cyc)
	}
	// Second access hits.
	env2 := &mockEnv{}
	pp2 := newPP(prog, env2)
	pp2.Start("h")
	_, cyc2 := pp2.Start("h")
	if cyc2 >= 29 {
		t.Fatalf("second access should hit the MDC: %d cycles", cyc2)
	}
}

func TestStatsAccumulate(t *testing.T) {
	pp, _, _, _ := runRef(t, ppisa.DualIssue, false, 0x2A80, 0)
	s := pp.Stats
	if s.Invocations != 1 || s.Pairs == 0 || s.Instrs == 0 {
		t.Fatalf("stats = %+v", s)
	}
	if eff := s.DualIssueEfficiency(); eff <= 1.0 || eff > 2.0 {
		t.Fatalf("dual-issue efficiency = %v", eff)
	}
	if s.Special == 0 {
		t.Fatal("special instructions not counted")
	}
	if su := s.SpecialUse(); su <= 0 || su >= 1 {
		t.Fatalf("special use = %v", su)
	}
}

func TestMemRdWr(t *testing.T) {
	prog := build(t, `
h:	li    r1, 0x1400
	memrd r1
	memwr r1
	done
`, ppisa.DualIssue, false)
	env := &mockEnv{}
	pp := newPP(prog, env)
	if st, _ := pp.Start("h"); st != StatusDone {
		t.Fatalf("status = %v", st)
	}
	if len(env.memReads) != 1 || env.memReads[0] != 0x1400 {
		t.Fatalf("memReads = %v", env.memReads)
	}
	if len(env.memWrites) != 1 || env.memWrites[0] != 0x1400 {
		t.Fatalf("memWrites = %v", env.memWrites)
	}
}
