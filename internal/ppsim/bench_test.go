package ppsim

import (
	"testing"

	"flashsim/internal/arch"
	"flashsim/internal/ppisa"
	"flashsim/internal/protocol"
)

type nopEnv struct{}

func (nopEnv) TrySend(OutHeader, uint64) bool      { return true }
func (nopEnv) MemRead(uint64, uint64)              {}
func (nopEnv) MemWrite(uint64, uint64)             {}
func (nopEnv) MDCFill(uint64, bool, uint64) uint64 { return 29 }

// BenchmarkHandlerDispatch compares the two execution engines on the
// protocol's local-read handler, the most frequently dispatched handler in
// the Fig 4.1 macrobenchmarks. Dispatch resolution (EntryPC) is hoisted out
// of the loop, matching how MAGIC's interned jump table invokes the PP.
// The compiled sub-benchmark must run allocation-free (asserted by
// scripts/bench.sh).
func BenchmarkHandlerDispatch(b *testing.B) {
	cfg := arch.DefaultConfig()
	prog, err := protocol.Build(&cfg)
	if err != nil {
		b.Fatal(err)
	}
	for _, backend := range [2]Backend{BackendInterp, BackendCompiled} {
		b.Run(backend.String(), func(b *testing.B) {
			pp := NewBackend(prog.Code, int(prog.Layout.MemBytes), NewMDC(cfg.MDCSize, cfg.MDCWays), nopEnv{}, backend)
			prog.Layout.InitMemory(pp.Mem, 0, 0, 16)
			if st, _ := pp.Start("pp_init"); st != StatusDone {
				b.Fatal("pp_init blocked")
			}
			pp.InHeader(ppisa.HdrAddr, 0x8000)
			pp.InHeader(ppisa.HdrDirOff, prog.Layout.DirOffset(0x8000>>7))
			pc, err := pp.EntryPC("pi_get_local")
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if st, _ := pp.StartAt(pc); st != StatusDone {
					b.Fatal("handler blocked")
				}
			}
		})
	}
}
