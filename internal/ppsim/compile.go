package ppsim

import (
	"fmt"
	"math/bits"
	"os"
	"sync"
	"sync/atomic"

	"flashsim/internal/arch"
	"flashsim/internal/ppisa"
)

// This file implements the compiled dispatch backend: at program load every
// instruction pair is translated into a predecoded µop record — register
// indices resolved, immediates widened and pre-masked, branch targets and
// JAL link values pre-bound, per-pair statistics deltas folded to constants
// — executed by per-opcode closures in a threaded-code loop. The reference
// interpreter (pp.go) re-decodes each pair through its eval switch on every
// execution; the compiled loop pays decode cost exactly once per program.
//
// Equivalence argument: pair semantics evaluate both slots against pre-pair
// register state and commit writes afterwards. The scheduler guarantees no
// intra-pair register hazards at all (sched.go pairable), and sequential
// slot execution diverges from snapshot semantics only on a read-after-
// write from slot A to slot B — WAR reads happen before B writes, and a WAW
// conflict commits B's value under either order. compile therefore executes
// slots sequentially with direct register writes, and falls back to the
// reference eval for any (hand-built) pair where ppisa.RAWHazard holds, so
// the two backends are bit-identical on every input program, not just
// scheduler output.

// Backend selects the PP execution engine.
type Backend uint8

const (
	// BackendCompiled executes the predecoded closure image (the default).
	BackendCompiled Backend = iota
	// BackendInterp executes the reference switch interpreter.
	BackendInterp
)

func (b Backend) String() string {
	if b == BackendInterp {
		return "interp"
	}
	return "compiled"
}

// ParseBackend parses a -pp-dispatch flag value. The empty string selects
// the compiled default.
func ParseBackend(s string) (Backend, error) {
	switch s {
	case "", "compiled":
		return BackendCompiled, nil
	case "interp", "interpreter":
		return BackendInterp, nil
	}
	return BackendCompiled, fmt.Errorf("ppsim: unknown dispatch backend %q (want compiled or interp)", s)
}

// DefaultBackend returns the process-wide default backend: the
// FLASHSIM_PP_DISPATCH environment variable if it names a backend (the
// hook `make verify` uses to run the test suite over the interpreter), and
// the compiled backend otherwise.
func DefaultBackend() Backend {
	if b, err := ParseBackend(os.Getenv("FLASHSIM_PP_DISPATCH")); err == nil {
		return b
	}
	return BackendCompiled
}

// BackendFor maps an arch.Config dispatch selection to a backend:
// PPDispatchAuto defers to DefaultBackend.
func BackendFor(d arch.PPDispatch) Backend {
	switch d {
	case arch.PPDispatchInterp:
		return BackendInterp
	case arch.PPDispatchCompiled:
		return BackendCompiled
	}
	return DefaultBackend()
}

// slotFn executes one predecoded slot against live PP state and returns the
// pair's post-commit action (actNone for pure data instructions; branches
// redirect p.nextPC themselves and return actNone).
type slotFn func(p *PP) action

// cpair is one predecoded instruction pair.
type cpair struct {
	a, b slotFn // nil: NOP or no-effect slot (statistics still counted)

	// Static Table 5.2 statistics for the pair, folded at compile time.
	instrs, aluBr, special uint64

	// fallback routes a pair the threaded loop cannot express exactly —
	// an intra-pair RAW hazard, or two action-producing slots (the
	// interpreter lets slot A's handled action suppress slot B's) —
	// through the reference eval. Both are impossible in scheduler output
	// (pairable rejects them); the fallback exists so hand-built programs
	// stay bit-identical too. Such pairs carry zero static statistics:
	// eval counts them itself.
	fallback *ppisa.Pair
}

// compileCache shares closure images between PPs built from the same
// Program: a machine compiles the protocol once, not once per node. Keyed
// by Program identity — the map entry keeps its key alive, so a cached
// image can never alias a recycled pointer. Bounded: experiment sweeps
// build hundreds of configs, each with its own Program, and the images must
// not accumulate.
var compileCache = struct {
	sync.Mutex
	m map[*ppisa.Program][]cpair
}{m: map[*ppisa.Program][]cpair{}}

// Compile-cache traffic counters, process-wide like the cache itself;
// exported to the metrics registry via CompileCacheStats.
var cacheHits, cacheMisses, cacheEvictions atomic.Uint64

// CompileCacheStats reports cumulative compile-cache traffic: images
// reused, images compiled, and entries dropped by the size bound.
func CompileCacheStats() (hits, misses, evictions uint64) {
	return cacheHits.Load(), cacheMisses.Load(), cacheEvictions.Load()
}

// compiledImage returns the (shared, immutable at run time) closure image
// for prog, compiling on first sight.
func compiledImage(prog *ppisa.Program) []cpair {
	cc := &compileCache
	cc.Lock()
	code, ok := cc.m[prog]
	if !ok {
		cacheMisses.Add(1)
		code = compile(prog)
		if len(cc.m) >= 64 {
			cacheEvictions.Add(uint64(len(cc.m)))
			clear(cc.m)
		}
		cc.m[prog] = code
	} else {
		cacheHits.Add(1)
	}
	cc.Unlock()
	return code
}

// compile predecodes a scheduled program into its closure image.
func compile(prog *ppisa.Program) []cpair {
	code := make([]cpair, len(prog.Pairs))
	for i := range prog.Pairs {
		pr := &prog.Pairs[i]
		c := &code[i]
		if ppisa.RAWHazard(&pr.A, &pr.B) ||
			(ppisa.SideEffect(pr.A.Op) && ppisa.SideEffect(pr.B.Op)) {
			c.fallback = pr
			continue
		}
		c.a = compileSlot(&pr.A, i)
		c.b = compileSlot(&pr.B, i)
		for _, in := range [2]*ppisa.Instr{&pr.A, &pr.B} {
			di, da, ds := ppisa.StatDeltas(in.Op)
			c.instrs += di
			c.aluBr += da
			c.special += ds
		}
	}
	return code
}

// runCompiled is the threaded-code loop: no per-pair opcode switch, no
// entry-name lookups, no per-instruction classification.
func (p *PP) runCompiled() (Status, uint64) {
	p.segCycles = 0
	code := p.code
	for {
		if p.stepBudget <= 0 {
			panic("ppsim: handler exceeded pair budget (protocol livelock?)")
		}
		p.stepBudget--
		c := &code[p.pc]
		p.segCycles++
		p.Stats.Pairs++
		p.Stats.Instrs += c.instrs
		p.Stats.ALUOrBranch += c.aluBr
		p.Stats.Special += c.special

		if c.fallback != nil {
			st, done := p.runFallbackPair(c.fallback)
			if done {
				return st, p.segCycles
			}
			continue
		}

		p.nextPC = p.pc + 1
		var act action
		if c.a != nil {
			act = c.a(p)
		}
		if c.b != nil {
			if ab := c.b(p); act == actNone {
				act = ab
			}
		}
		switch act {
		case actSend:
			if !p.Env.TrySend(p.outHdr, p.segCycles) {
				p.pendingSend = p.outHdr
				p.hasPending = true
				// Re-execution resumes at the *next* pair: the send itself
				// completes when Resume retries it.
				p.pc = p.nextPC
				return StatusBlockedSend, p.segCycles
			}
		case actWaitPC:
			p.pc = p.nextPC
			return StatusWaitPC, p.segCycles
		case actDone:
			p.running = false
			return StatusDone, p.segCycles
		}
		p.pc = p.nextPC
	}
}

// runFallbackPair executes one hazard pair through the reference eval with
// deferred commits, mirroring the interpreter's inner loop body. It reports
// the segment status and whether the segment ended.
func (p *PP) runFallbackPair(pair *ppisa.Pair) (Status, bool) {
	var wrA, wrB regWrite
	actA := p.eval(&pair.A, &wrA)
	actB := p.eval(&pair.B, &wrB)
	wrA.commit(&p.regs)
	wrB.commit(&p.regs)

	next := p.pc + 1
	st, handled := p.apply(actA, &pair.A, &next)
	if !handled {
		st, handled = p.apply(actB, &pair.B, &next)
	}
	if handled {
		if st == StatusDone {
			p.running = false
		}
		if st != statusContinue {
			return st, true
		}
	}
	p.pc = next
	return statusContinue, false
}

// compileSlot predecodes one slot into its closure. It returns nil for NOP
// and for instructions with no architectural effect (writes to r0 with no
// side effects), which the loop skips outright.
func compileSlot(in *ppisa.Instr, idx int) slotFn {
	rd, rs, rt := int(in.Rd), int(in.Rs), int(in.Rt)
	imm := uint64(in.Imm) // sign-extends; addition wraps identically

	// aluFn wraps a pure rd <- f(regs) computation, honouring the r0 sink.
	aluFn := func(f func(p *PP) uint64) slotFn {
		if rd == 0 {
			return nil
		}
		return func(p *PP) action {
			p.regs[rd] = f(p)
			return actNone
		}
	}

	switch in.Op {
	case ppisa.NOP:
		return nil

	case ppisa.ADD:
		return aluFn(func(p *PP) uint64 { return p.regs[rs] + p.regs[rt] })
	case ppisa.SUB:
		return aluFn(func(p *PP) uint64 { return p.regs[rs] - p.regs[rt] })
	case ppisa.AND:
		return aluFn(func(p *PP) uint64 { return p.regs[rs] & p.regs[rt] })
	case ppisa.OR:
		return aluFn(func(p *PP) uint64 { return p.regs[rs] | p.regs[rt] })
	case ppisa.XOR:
		return aluFn(func(p *PP) uint64 { return p.regs[rs] ^ p.regs[rt] })
	case ppisa.SLL:
		return aluFn(func(p *PP) uint64 { return p.regs[rs] << (p.regs[rt] & 63) })
	case ppisa.SRL:
		return aluFn(func(p *PP) uint64 { return p.regs[rs] >> (p.regs[rt] & 63) })
	case ppisa.SRA:
		return aluFn(func(p *PP) uint64 { return uint64(int64(p.regs[rs]) >> (p.regs[rt] & 63)) })
	case ppisa.SLT:
		return aluFn(func(p *PP) uint64 { return b2u(int64(p.regs[rs]) < int64(p.regs[rt])) })
	case ppisa.SLTU:
		return aluFn(func(p *PP) uint64 { return b2u(p.regs[rs] < p.regs[rt]) })

	case ppisa.ADDI:
		return aluFn(func(p *PP) uint64 { return p.regs[rs] + imm })
	case ppisa.ANDI:
		return aluFn(func(p *PP) uint64 { return p.regs[rs] & imm })
	case ppisa.ORI:
		return aluFn(func(p *PP) uint64 { return p.regs[rs] | imm })
	case ppisa.XORI:
		return aluFn(func(p *PP) uint64 { return p.regs[rs] ^ imm })
	case ppisa.SLLI:
		sh := uint(in.Imm & 63)
		return aluFn(func(p *PP) uint64 { return p.regs[rs] << sh })
	case ppisa.SRLI:
		sh := uint(in.Imm & 63)
		return aluFn(func(p *PP) uint64 { return p.regs[rs] >> sh })
	case ppisa.SRAI:
		sh := uint(in.Imm & 63)
		return aluFn(func(p *PP) uint64 { return uint64(int64(p.regs[rs]) >> sh) })
	case ppisa.SLTI:
		cmp := in.Imm
		return aluFn(func(p *PP) uint64 { return b2u(int64(p.regs[rs]) < cmp) })
	case ppisa.LUI:
		v := uint64(in.Imm&0xFFFF) << 16
		return aluFn(func(p *PP) uint64 { return v })

	case ppisa.FFS:
		return aluFn(func(p *PP) uint64 {
			v := p.regs[rs]
			if v == 0 {
				return 64
			}
			return uint64(bits.TrailingZeros64(v))
		})
	case ppisa.EXT:
		sh, mk := uint(in.Imm), mask(in.Imm2)
		return aluFn(func(p *PP) uint64 { return (p.regs[rs] >> sh) & mk })
	case ppisa.INS:
		sh := uint(in.Imm)
		m := mask(in.Imm2) << sh
		return aluFn(func(p *PP) uint64 { return (p.regs[rd] &^ m) | ((p.regs[rs] << sh) & m) })
	case ppisa.ORFI:
		m := mask(in.Imm2) << uint(in.Imm)
		return aluFn(func(p *PP) uint64 { return p.regs[rs] | m })
	case ppisa.ANDFI:
		m := mask(in.Imm2) << uint(in.Imm)
		return aluFn(func(p *PP) uint64 { return p.regs[rs] &^ m })

	case ppisa.LD:
		// Even an r0-destined load accesses the MDC and bounds-checks,
		// matching the interpreter.
		return func(p *PP) action {
			addr := p.regs[rs] + imm
			p.mdcAccess(addr, false)
			v := p.load(addr)
			if rd != 0 {
				p.regs[rd] = v
			}
			return actNone
		}
	case ppisa.ST:
		return func(p *PP) action {
			addr := p.regs[rs] + imm
			p.mdcAccess(addr, true)
			p.store(addr, p.regs[rd])
			return actNone
		}

	case ppisa.BEQ:
		tgt := in.Target
		return func(p *PP) action {
			if p.regs[rs] == p.regs[rt] {
				p.nextPC = tgt
			}
			return actNone
		}
	case ppisa.BNE:
		tgt := in.Target
		return func(p *PP) action {
			if p.regs[rs] != p.regs[rt] {
				p.nextPC = tgt
			}
			return actNone
		}
	case ppisa.BLEZ:
		tgt := in.Target
		return func(p *PP) action {
			if int64(p.regs[rs]) <= 0 {
				p.nextPC = tgt
			}
			return actNone
		}
	case ppisa.BGTZ:
		tgt := in.Target
		return func(p *PP) action {
			if int64(p.regs[rs]) > 0 {
				p.nextPC = tgt
			}
			return actNone
		}
	case ppisa.BBS:
		tgt, bit := in.Target, uint(in.Imm)
		return func(p *PP) action {
			if p.regs[rs]>>bit&1 == 1 {
				p.nextPC = tgt
			}
			return actNone
		}
	case ppisa.BBC:
		tgt, bit := in.Target, uint(in.Imm)
		return func(p *PP) action {
			if p.regs[rs]>>bit&1 == 0 {
				p.nextPC = tgt
			}
			return actNone
		}
	case ppisa.J:
		tgt := in.Target
		return func(p *PP) action {
			p.nextPC = tgt
			return actNone
		}
	case ppisa.JAL:
		tgt := in.Target
		link := uint64(idx + 1) // the link value is the static pair index
		if rd == 0 {
			return func(p *PP) action {
				p.nextPC = tgt
				return actNone
			}
		}
		return func(p *PP) action {
			p.regs[rd] = link
			p.nextPC = tgt
			return actNone
		}
	case ppisa.JR:
		return func(p *PP) action {
			p.nextPC = int(p.regs[rs])
			return actNone
		}

	case ppisa.MFH:
		f := int(in.Imm)
		return aluFn(func(p *PP) uint64 { return p.inHdr[f] })
	case ppisa.MTH:
		switch in.Imm {
		case ppisa.HdrType:
			return func(p *PP) action { p.outHdr.Type = p.regs[rs]; return actNone }
		case ppisa.HdrAddr:
			return func(p *PP) action { p.outHdr.Addr = p.regs[rs]; return actNone }
		case ppisa.HdrSrc:
			// Symmetric: the "src" slot addresses the target.
			return func(p *PP) action { p.outHdr.Dst = p.regs[rs]; return actNone }
		case ppisa.HdrReq:
			return func(p *PP) action { p.outHdr.Req = p.regs[rs]; return actNone }
		case ppisa.HdrAux:
			return func(p *PP) action { p.outHdr.Aux = p.regs[rs]; return actNone }
		}
		return nil // MFH-only fields: writes are dropped, as in the interpreter
	case ppisa.SEND:
		iface := int(in.Imm) & ppisa.SendIface
		data := in.Imm&ppisa.SendData != 0
		return func(p *PP) action {
			p.outHdr.Iface = iface
			p.outHdr.Data = data
			return actSend
		}
	case ppisa.MEMRD:
		return func(p *PP) action {
			p.Env.MemRead(p.regs[rs], p.segCycles)
			return actNone
		}
	case ppisa.MEMWR:
		return func(p *PP) action {
			p.Env.MemWrite(p.regs[rs], p.segCycles)
			return actNone
		}
	case ppisa.WAITPC:
		return func(p *PP) action { return actWaitPC }
	case ppisa.DONE:
		return func(p *PP) action { return actDone }
	}
	// Unknown opcode: the interpreter counts it (Classify defaults to
	// ClassALU) and performs nothing; StatDeltas matches.
	return nil
}
