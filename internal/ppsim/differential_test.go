package ppsim

import (
	"math/rand"
	"reflect"
	"testing"

	"flashsim/internal/arch"
	"flashsim/internal/ppisa"
	"flashsim/internal/protocol"
)

// This file is the differential torture test for the compiled dispatch
// backend: seeded randomized handler invocation streams run through the
// reference interpreter and the compiled backend in lockstep, over real
// protocol programs in every PP mode (dual-issue, single-issue, and the
// DLX-substitution ablation). Every run segment must report the identical
// (status, cycles) pair, and at the end the two PPs must agree bit for bit
// on registers, protocol memory, statistics, MDC state, and the full
// environment interaction log (sends, memory operations, MDC fills, each
// with its intra-segment timestamp).

// envSend, envMem, and envFill are entries of the scripted environment's
// interaction log; the logs are compared wholesale with reflect.DeepEqual.
type envSend struct {
	H  OutHeader
	Dt uint64
}
type envMem struct {
	Addr uint64
	Dt   uint64
}
type envFill struct {
	Addr  uint64
	WB    bool
	Dt    uint64
	Stall uint64
}

// scriptEnv is a deterministic environment whose responses depend only on
// its own call history: every blockEvery-th TrySend is rejected once (the
// retry accepts), and MDC fill penalties cycle through five values. Because
// the history feeds back into behavior, any divergence between the two
// backends cascades instead of canceling out.
type scriptEnv struct {
	blockEvery int
	sendCalls  int
	rejected   bool

	sends  []envSend
	memRds []envMem
	memWrs []envMem
	fills  []envFill
}

func (e *scriptEnv) TrySend(h OutHeader, dt uint64) bool {
	e.sendCalls++
	if e.blockEvery > 0 && !e.rejected && e.sendCalls%e.blockEvery == 0 {
		e.rejected = true
		return false
	}
	e.rejected = false
	e.sends = append(e.sends, envSend{h, dt})
	return true
}

func (e *scriptEnv) MemRead(a, dt uint64)  { e.memRds = append(e.memRds, envMem{a, dt}) }
func (e *scriptEnv) MemWrite(a, dt uint64) { e.memWrs = append(e.memWrs, envMem{a, dt}) }

func (e *scriptEnv) MDCFill(a uint64, wb bool, dt uint64) uint64 {
	stall := 29 + uint64(len(e.fills)%5)
	e.fills = append(e.fills, envFill{a, wb, dt, stall})
	return stall
}

// tortNode simulates one node's PP under both backends in lockstep.
type tortNode struct {
	t    *testing.T
	cfg  *arch.Config
	prog *protocol.Program
	self arch.NodeID
	pps  [2]*PP // 0: interpreter, 1: compiled
	envs [2]*scriptEnv
}

func newTortNode(t *testing.T, cfg *arch.Config, prog *protocol.Program, self arch.NodeID) *tortNode {
	t.Helper()
	n := &tortNode{t: t, cfg: cfg, prog: prog, self: self}
	for i, b := range [2]Backend{BackendInterp, BackendCompiled} {
		env := &scriptEnv{blockEvery: 3}
		pp := NewBackend(prog.Code, int(prog.Layout.MemBytes), NewMDC(cfg.MDCSize, cfg.MDCWays), env, b)
		prog.Layout.InitMemory(pp.Mem, self, cfg.NodeBase(self), cfg.Nodes)
		if st, _ := pp.Start("pp_init"); st != StatusDone {
			t.Fatalf("%s: pp_init did not finish", b)
		}
		n.pps[i] = pp
		n.envs[i] = env
	}
	n.verify("after pp_init")
	return n
}

// deliver dispatches one message to both PPs and runs each handler to
// completion, asserting that every run segment reports the same status and
// cycle count. It returns the sends the handler produced (as observed on
// the interpreter side; verify() proves the compiled log identical).
func (n *tortNode) deliver(m arch.Msg, viaNet bool, pcKind uint64) []envSend {
	n.t.Helper()
	isHome := n.cfg.HomeOf(m.Addr) == n.self
	jt, err := protocol.Dispatch(m.Type, viaNet, isHome)
	if err != nil {
		n.t.Fatal(err)
	}
	mark := len(n.envs[0].sends)
	type seg struct {
		st  Status
		cyc uint64
	}
	var segs [2][]seg
	for i, pp := range n.pps {
		pp.InHeader(ppisa.HdrType, uint64(m.Type))
		pp.InHeader(ppisa.HdrAddr, uint64(m.Addr))
		pp.InHeader(ppisa.HdrSrc, uint64(m.Src))
		pp.InHeader(ppisa.HdrReq, uint64(m.Req))
		pp.InHeader(ppisa.HdrAux, uint64(m.Aux))
		pp.InHeader(ppisa.HdrSelf, uint64(n.self))
		if isHome {
			pp.InHeader(ppisa.HdrDirOff, n.prog.Layout.DirOffset(n.cfg.LocalLine(m.Addr)))
		} else {
			pp.InHeader(ppisa.HdrDirOff, uint64(n.cfg.HomeOf(m.Addr)))
		}
		// Exercise both entry APIs: the string wrapper on the interpreter,
		// the interned index on the compiled backend.
		var st Status
		var cyc uint64
		if i == 0 {
			st, cyc = pp.Start(jt.Entry)
		} else {
			pc, err := pp.EntryPC(jt.Entry)
			if err != nil {
				n.t.Fatal(err)
			}
			st, cyc = pp.StartAt(pc)
		}
		for {
			segs[i] = append(segs[i], seg{st, cyc})
			if st == StatusDone {
				break
			}
			if st == StatusWaitPC {
				pp.SetPCResponse(pcKind)
			}
			st, cyc = pp.Resume()
		}
	}
	if !reflect.DeepEqual(segs[0], segs[1]) {
		n.t.Fatalf("node %d, %v (viaNet=%v): segment mismatch\ninterp:   %+v\ncompiled: %+v",
			n.self, m.Type, viaNet, segs[0], segs[1])
	}
	n.verify("after " + m.Type.String())
	return n.envs[0].sends[mark:]
}

// verify asserts bit-identical architectural and environment state between
// the two backends.
func (n *tortNode) verify(when string) {
	n.t.Helper()
	a, b := n.pps[0], n.pps[1]
	for r := 0; r < 32; r++ {
		if a.Reg(r) != b.Reg(r) {
			n.t.Fatalf("node %d %s: r%d interp=%#x compiled=%#x", n.self, when, r, a.Reg(r), b.Reg(r))
		}
	}
	if a.Stats != b.Stats {
		n.t.Fatalf("node %d %s: stats\ninterp:   %+v\ncompiled: %+v", n.self, when, a.Stats, b.Stats)
	}
	if !reflect.DeepEqual(a.Mem, b.Mem) {
		n.t.Fatalf("node %d %s: protocol memory diverged", n.self, when)
	}
	if !reflect.DeepEqual(a.MDC, b.MDC) {
		n.t.Fatalf("node %d %s: MDC state diverged\ninterp:   %+v\ncompiled: %+v",
			n.self, when, a.MDC.Stats, b.MDC.Stats)
	}
	ea, eb := n.envs[0], n.envs[1]
	if !reflect.DeepEqual(ea.sends, eb.sends) {
		n.t.Fatalf("node %d %s: send logs diverged (%d vs %d sends)", n.self, when, len(ea.sends), len(eb.sends))
	}
	if !reflect.DeepEqual(ea.memRds, eb.memRds) || !reflect.DeepEqual(ea.memWrs, eb.memWrs) {
		n.t.Fatalf("node %d %s: memory-op logs diverged", n.self, when)
	}
	if !reflect.DeepEqual(ea.fills, eb.fills) {
		n.t.Fatalf("node %d %s: MDC fill logs diverged", n.self, when)
	}
}

// TestDifferentialBackends drives seeded random message streams through a
// home node (directory mutation, forwards, ack draining — the ni_* and
// pi_*_local handlers) and a remote node (forwarders, interventions with
// both WAITPC outcomes, requester-side replies) in every PP scheduling
// mode.
func TestDifferentialBackends(t *testing.T) {
	modes := []arch.PPMode{arch.PPDualIssue, arch.PPSingleIssue, arch.PPNoSpecial}
	for _, mode := range modes {
		cfg := arch.DefaultConfig()
		cfg.Nodes = 8
		cfg.MemBytesPerNode = 1 << 20
		cfg.PPMode = mode
		prog, err := protocol.Build(&cfg)
		if err != nil {
			t.Fatal(err)
		}
		for seed := int64(1); seed <= 3; seed++ {
			t.Run(mode.String()+"/seed"+string(rune('0'+seed)), func(t *testing.T) {
				rng := rand.New(rand.NewSource(seed))
				driveHome(t, &cfg, prog, rng)
				driveRemote(t, &cfg, prog, rng)
			})
		}
	}
}

// driveHome mirrors the protocol package's differential driver: random
// GET/GETX/WB/RPL traffic at the home, with outstanding forwards resolved
// by SWB/XFER and invalidation acks drained, across several cache lines so
// the MDC sees both hits and misses.
func driveHome(t *testing.T, cfg *arch.Config, prog *protocol.Program, rng *rand.Rand) {
	const self = arch.NodeID(0)
	n := newTortNode(t, cfg, prog, self)
	addrs := make([]arch.Addr, 24)
	for i := range addrs {
		addrs[i] = arch.Addr(0x4000 + i*0x1240)
	}
	var pendingFwd arch.NodeID
	var fwdAddr arch.Addr
	hasFwd, fwdExclusive := false, false
	for op := 0; op < 160; op++ {
		src := arch.NodeID(rng.Intn(8))
		addr := addrs[rng.Intn(len(addrs))]
		if hasFwd && rng.Intn(2) == 0 {
			mt := arch.MsgSWB
			if fwdExclusive {
				mt = arch.MsgXFER
			}
			n.deliver(arch.Msg{Type: mt, Addr: fwdAddr, Src: pendingFwd, Req: src}, true, 1)
			hasFwd = false
		}
		var mt arch.MsgType
		switch rng.Intn(5) {
		case 0, 1:
			mt = arch.MsgGET
		case 2:
			mt = arch.MsgGETX
		case 3:
			mt = arch.MsgWB
		default:
			mt = arch.MsgRPL
		}
		viaNet := src != self
		sends := n.deliver(arch.Msg{Type: mt, Addr: addr, Src: src, Req: src}, viaNet, 1)
		acks := 0
		for _, s := range sends {
			switch arch.MsgType(s.H.Type) {
			case arch.MsgFwdGET:
				if !hasFwd {
					pendingFwd, fwdAddr, hasFwd, fwdExclusive = arch.NodeID(s.H.Dst), addr, true, false
				}
			case arch.MsgFwdGETX:
				if !hasFwd {
					pendingFwd, fwdAddr, hasFwd, fwdExclusive = arch.NodeID(s.H.Dst), addr, true, true
				}
			case arch.MsgINVAL:
				acks++
			}
		}
		for i := 0; i < acks; i++ {
			n.deliver(arch.Msg{Type: arch.MsgIACK, Addr: addr, Src: arch.NodeID(1 + i%7)}, true, 1)
		}
	}
	n.verify("final (home)")
}

// driveRemote exercises the non-home handler set: PI-side forwarders,
// forwarded interventions with both processor-cache outcomes (pcKind 1 =
// dirty data, covering WAITPC; 0 = raced writeback), invalidations, and
// requester-side replies.
func driveRemote(t *testing.T, cfg *arch.Config, prog *protocol.Program, rng *rand.Rand) {
	const self = arch.NodeID(2)
	n := newTortNode(t, cfg, prog, self)
	addrs := [3]arch.Addr{0x4000, 0x8040, 0xC080} // home node 0
	for op := 0; op < 80; op++ {
		addr := addrs[rng.Intn(len(addrs))]
		src := arch.NodeID(rng.Intn(8))
		pcKind := uint64(rng.Intn(2))
		switch rng.Intn(8) {
		case 0:
			n.deliver(arch.Msg{Type: arch.MsgGET, Addr: addr, Src: self, Req: self}, false, pcKind)
		case 1:
			n.deliver(arch.Msg{Type: arch.MsgGETX, Addr: addr, Src: self, Req: self}, false, pcKind)
		case 2:
			n.deliver(arch.Msg{Type: arch.MsgWB, Addr: addr, Src: self, Req: self}, false, pcKind)
		case 3:
			n.deliver(arch.Msg{Type: arch.MsgRPL, Addr: addr, Src: self, Req: self}, false, pcKind)
		case 4:
			n.deliver(arch.Msg{Type: arch.MsgFwdGET, Addr: addr, Src: 0, Req: src}, true, pcKind)
		case 5:
			n.deliver(arch.Msg{Type: arch.MsgFwdGETX, Addr: addr, Src: 0, Req: src}, true, pcKind)
		case 6:
			n.deliver(arch.Msg{Type: arch.MsgINVAL, Addr: addr, Src: 0, Req: src}, true, pcKind)
		default:
			mt := [3]arch.MsgType{arch.MsgPUT, arch.MsgPUTX, arch.MsgNAK}[rng.Intn(3)]
			n.deliver(arch.Msg{Type: mt, Addr: addr, Src: 0, Req: self}, true, pcKind)
		}
	}
	n.verify("final (remote)")
}
