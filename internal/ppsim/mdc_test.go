package ppsim

import (
	"testing"
	"testing/quick"
)

func TestMDCHitMiss(t *testing.T) {
	m := NewMDC(4096, 2) // 16 sets of 128-byte lines
	hit, wb := m.Access(0x100, false)
	if hit || wb {
		t.Fatalf("cold access: hit=%v wb=%v", hit, wb)
	}
	hit, _ = m.Access(0x108, false) // same line
	if !hit {
		t.Fatal("same-line access missed")
	}
	if m.Stats.Reads != 2 || m.Stats.ReadMisses != 1 {
		t.Fatalf("stats = %+v", m.Stats)
	}
}

func TestMDCWritebackOnDirtyEviction(t *testing.T) {
	m := NewMDC(4096, 2) // 16 sets: lines 0x00, 0x10, 0x20 share set 0
	m.Access(0<<7, true) // dirty
	m.Access(16<<7, false)
	_, wb := m.Access(32<<7, false) // evicts the LRU (the dirty line 0)
	if !wb {
		t.Fatal("dirty eviction did not write back")
	}
	if m.Stats.Writebacks != 1 {
		t.Fatalf("writebacks = %d", m.Stats.Writebacks)
	}
	// Clean evictions do not.
	m2 := NewMDC(4096, 2)
	m2.Access(0<<7, false)
	m2.Access(16<<7, false)
	if _, wb := m2.Access(32<<7, false); wb {
		t.Fatal("clean eviction wrote back")
	}
}

func TestMDCLRU(t *testing.T) {
	m := NewMDC(4096, 2)
	m.Access(0<<7, false)
	m.Access(16<<7, false)
	m.Access(0<<7, false)  // touch line 0: line 16 is now LRU
	m.Access(32<<7, false) // evicts 16
	if hit, _ := m.Access(0<<7, false); !hit {
		t.Fatal("MRU line evicted")
	}
	if hit, _ := m.Access(16<<7, false); hit {
		t.Fatal("LRU line survived")
	}
}

func TestMDCFlush(t *testing.T) {
	m := NewMDC(4096, 2)
	m.Access(0x100, true)
	m.Flush()
	if hit, _ := m.Access(0x100, false); hit {
		t.Fatal("flush did not invalidate")
	}
}

func TestMDCRates(t *testing.T) {
	m := NewMDC(4096, 2)
	m.Access(0x0, false) // read miss
	m.Access(0x0, false) // read hit
	m.Access(0x80, true) // write miss
	m.Access(0x80, true) // write hit
	if r := m.Stats.MissRate(); r != 0.5 {
		t.Fatalf("miss rate = %v", r)
	}
	if r := m.Stats.ReadMissRate(); r != 0.5 {
		t.Fatalf("read miss rate = %v", r)
	}
}

// Property: an MDC access pattern never reports a hit for a line that was
// never filled, and always hits a line re-accessed immediately.
func TestMDCProperty(t *testing.T) {
	f := func(addrs []uint16) bool {
		m := NewMDC(2048, 2)
		seen := map[uint64]bool{}
		for _, a := range addrs {
			addr := uint64(a) << 3
			line := addr >> 7
			hit, _ := m.Access(addr, false)
			if hit && !seen[line] {
				return false // hit on never-filled line
			}
			seen[line] = true
			if h2, _ := m.Access(addr, false); !h2 {
				return false // immediate re-access missed
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
