package ppsim

import (
	"strings"
	"testing"

	"flashsim/internal/ppisa"
)

func TestMaskEdgeWidths(t *testing.T) {
	cases := []struct {
		width int64
		want  uint64
	}{
		{0, 0},
		{1, 1},
		{16, 0xFFFF},
		{63, 1<<63 - 1},
		{64, ^uint64(0)},
		{65, ^uint64(0)}, // widths past the register saturate
	}
	for _, c := range cases {
		if got := mask(c.width); got != c.want {
			t.Errorf("mask(%d) = %#x, want %#x", c.width, got, c.want)
		}
	}
}

// pairProg hand-builds a single-entry program from raw pairs, bypassing the
// assembler/scheduler so tests can exercise encodings the scheduler never
// emits (edge bitfield widths, intra-pair hazards, dual side effects).
func pairProg(pairs ...ppisa.Pair) *ppisa.Program {
	return &ppisa.Program{Pairs: pairs, Entries: map[string]int{"h": 0}}
}

func single(in ppisa.Instr) ppisa.Pair {
	return ppisa.Pair{A: in, B: ppisa.Instr{Op: ppisa.NOP}}
}

// runBoth executes prog once per backend and asserts identical status,
// cycles, and registers; it returns the compiled-backend PP.
func runBoth(t *testing.T, prog *ppisa.Program, setup func(p *PP)) *PP {
	t.Helper()
	var pps [2]*PP
	for i, b := range [2]Backend{BackendInterp, BackendCompiled} {
		env := &mockEnv{}
		pp := NewBackend(prog, 64<<10, NewMDC(4096, 2), env, b)
		if setup != nil {
			setup(pp)
		}
		st, cyc := pp.Start("h")
		if st != StatusDone {
			t.Fatalf("%v: status = %v", b, st)
		}
		pps[i] = pp
		_ = cyc
	}
	a, c := pps[0], pps[1]
	if a.Stats != c.Stats {
		t.Fatalf("stats diverged: interp %+v compiled %+v", a.Stats, c.Stats)
	}
	for r := 0; r < 32; r++ {
		if a.Reg(r) != c.Reg(r) {
			t.Fatalf("r%d: interp %#x compiled %#x", r, a.Reg(r), c.Reg(r))
		}
	}
	return c
}

// TestBitfieldEdgeWidths drives EXT/INS/ORFI/ANDFI at widths 0, 63, and 64
// — the boundaries of the mask computation — through both backends.
func TestBitfieldEdgeWidths(t *testing.T) {
	prog := pairProg(
		single(ppisa.Instr{Op: ppisa.ADDI, Rd: 1, Imm: -1}), // r1 = all ones
		single(ppisa.Instr{Op: ppisa.EXT, Rd: 2, Rs: 1, Imm: 0, Imm2: 64}),
		single(ppisa.Instr{Op: ppisa.EXT, Rd: 3, Rs: 1, Imm: 1, Imm2: 63}),
		single(ppisa.Instr{Op: ppisa.EXT, Rd: 4, Rs: 1, Imm: 5, Imm2: 0}),
		single(ppisa.Instr{Op: ppisa.ORFI, Rd: 5, Rs: 0, Imm: 0, Imm2: 64}),
		single(ppisa.Instr{Op: ppisa.ORFI, Rd: 6, Rs: 0, Imm: 0, Imm2: 0}),
		single(ppisa.Instr{Op: ppisa.ANDFI, Rd: 7, Rs: 1, Imm: 0, Imm2: 64}),
		single(ppisa.Instr{Op: ppisa.ANDFI, Rd: 8, Rs: 1, Imm: 0, Imm2: 0}),
		single(ppisa.Instr{Op: ppisa.ADDI, Rd: 9, Imm: 0x5A}),
		single(ppisa.Instr{Op: ppisa.INS, Rd: 9, Rs: 1, Imm: 0, Imm2: 0}),   // no-op insert
		single(ppisa.Instr{Op: ppisa.INS, Rd: 9, Rs: 1, Imm: 0, Imm2: 64}),  // full replace
		single(ppisa.Instr{Op: ppisa.ADDI, Rd: 10, Imm: 0x77}),
		single(ppisa.Instr{Op: ppisa.INS, Rd: 10, Rs: 1, Imm: 1, Imm2: 63}), // keep bit 0
		single(ppisa.Instr{Op: ppisa.DONE}),
	)
	pp := runBoth(t, prog, nil)
	all := ^uint64(0)
	want := map[int]uint64{
		2: all, 3: 1<<63 - 1, 4: 0,
		5: all, 6: 0,
		7: 0, 8: all,
		9: all, 10: all &^ 1 | 1,
	}
	for r, w := range want {
		if got := pp.Reg(r); got != w {
			t.Errorf("r%d = %#x, want %#x", r, got, w)
		}
	}
}

func TestEntryPCUnknown(t *testing.T) {
	prog := pairProg(single(ppisa.Instr{Op: ppisa.DONE}))
	pp := NewBackend(prog, 4096, NewMDC(4096, 2), &mockEnv{}, BackendCompiled)
	if _, err := pp.EntryPC("h"); err != nil {
		t.Fatalf("known entry: %v", err)
	}
	_, err := pp.EntryPC("no_such_handler")
	if err == nil {
		t.Fatal("unknown entry: no error")
	}
	if !strings.Contains(err.Error(), "no_such_handler") || !strings.Contains(err.Error(), "entry point") {
		t.Fatalf("error %q is not descriptive", err)
	}
	// Start keeps its panic contract, but with the descriptive error.
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("Start on unknown entry did not panic")
		}
		if e, ok := r.(error); !ok || !strings.Contains(e.Error(), "no_such_handler") {
			t.Fatalf("panic value %v does not carry the entry name", r)
		}
	}()
	pp.Start("no_such_handler")
}

func TestStartAtMatchesStart(t *testing.T) {
	prog := build(t, refHandler, ppisa.DualIssue, false)
	for _, b := range [2]Backend{BackendInterp, BackendCompiled} {
		env1, env2 := &mockEnv{}, &mockEnv{}
		p1 := NewBackend(prog, 64<<10, NewMDC(4096, 2), env1, b)
		p2 := NewBackend(prog, 64<<10, NewMDC(4096, 2), env2, b)
		p1.InHeader(ppisa.HdrAddr, 0x2A80)
		p2.InHeader(ppisa.HdrAddr, 0x2A80)
		st1, c1 := p1.Start("h")
		pc, err := p2.EntryPC("h")
		if err != nil {
			t.Fatal(err)
		}
		st2, c2 := p2.StartAt(pc)
		if st1 != st2 || c1 != c2 {
			t.Fatalf("%v: Start (%v,%d) != StartAt (%v,%d)", b, st1, c1, st2, c2)
		}
		if len(env1.sends) != len(env2.sends) {
			t.Fatalf("%v: send counts differ", b)
		}
	}
}

// TestHazardPairFallback hand-builds pairs the scheduler would never emit
// and checks the compiled backend routes them through the reference
// interpreter: an intra-pair RAW (slot B must read PRE-pair state) and a
// taken branch paired with a SEND (the branch's action suppresses the
// send, per the interpreter's apply order).
func TestHazardPairFallback(t *testing.T) {
	raw := pairProg(
		single(ppisa.Instr{Op: ppisa.ADDI, Rd: 1, Imm: 7}),
		ppisa.Pair{
			A: ppisa.Instr{Op: ppisa.ADDI, Rd: 1, Rs: 1, Imm: 100}, // r1 = 107
			B: ppisa.Instr{Op: ppisa.ADD, Rd: 2, Rs: 1},            // reads pre-pair r1 = 7
		},
		single(ppisa.Instr{Op: ppisa.DONE}),
	)
	pp := runBoth(t, raw, nil)
	if pp.Reg(1) != 107 || pp.Reg(2) != 7 {
		t.Fatalf("r1=%d r2=%d, want 107 and 7 (snapshot semantics)", pp.Reg(1), pp.Reg(2))
	}
	if pp.code[1].fallback == nil {
		t.Fatal("RAW pair was not routed to the interpreter fallback")
	}

	dualAct := pairProg(
		ppisa.Pair{
			A: ppisa.Instr{Op: ppisa.J, Target: 1},
			B: ppisa.Instr{Op: ppisa.SEND, Imm: ppisa.SendNet},
		},
		single(ppisa.Instr{Op: ppisa.DONE}),
	)
	var envs []*mockEnv
	for _, b := range [2]Backend{BackendInterp, BackendCompiled} {
		env := &mockEnv{}
		pp := NewBackend(dualAct, 4096, NewMDC(4096, 2), env, b)
		if st, _ := pp.Start("h"); st != StatusDone {
			t.Fatalf("%v: status %v", b, st)
		}
		envs = append(envs, env)
	}
	if len(envs[0].sends) != len(envs[1].sends) {
		t.Fatalf("backends disagree on suppressed send: interp %d, compiled %d",
			len(envs[0].sends), len(envs[1].sends))
	}
}

// TestCompiledIsDefault pins the backend selection rules.
func TestCompiledIsDefault(t *testing.T) {
	if b, err := ParseBackend(""); err != nil || b != BackendCompiled {
		t.Fatalf("ParseBackend(\"\") = %v, %v", b, err)
	}
	if b, err := ParseBackend("interp"); err != nil || b != BackendInterp {
		t.Fatalf("ParseBackend(interp) = %v, %v", b, err)
	}
	if _, err := ParseBackend("jit"); err == nil {
		t.Fatal("ParseBackend accepted an unknown backend")
	}
	t.Setenv("FLASHSIM_PP_DISPATCH", "interp")
	if DefaultBackend() != BackendInterp {
		t.Fatal("FLASHSIM_PP_DISPATCH=interp not honored")
	}
	t.Setenv("FLASHSIM_PP_DISPATCH", "nonsense")
	if DefaultBackend() != BackendCompiled {
		t.Fatal("unknown env value must fall back to compiled")
	}
}
