package ppsim

import (
	"fmt"

	"flashsim/internal/ppisa"
)

// Status reports why PP execution stopped.
type Status uint8

const (
	// StatusDone means the handler executed DONE.
	StatusDone Status = iota
	// StatusBlockedSend means a SEND found its outgoing queue full; MAGIC
	// must call Resume once space is available. The send is retried then.
	StatusBlockedSend
	// StatusWaitPC means the handler executed WAITPC and is stalled until
	// the processor-cache intervention response arrives; MAGIC must call
	// SetPCResponse then Resume.
	StatusWaitPC
)

// OutHeader is an outgoing message composed in the PP's header registers.
type OutHeader struct {
	Type uint64
	Addr uint64
	Dst  uint64
	Req  uint64
	Aux  uint64
	// Iface is ppisa.SendNet or ppisa.SendPI; Data reports whether the
	// message carries the handler's data buffer.
	Iface int
	Data  bool
}

// Env is the MAGIC environment a handler executes against. Methods are
// called synchronously during execution; dt is the number of PP cycles
// consumed so far in the current run segment, letting the environment
// timestamp the operation as segment-start + dt.
type Env interface {
	// TrySend attempts to enqueue an outgoing message. It returns false if
	// the destination queue is full, in which case the PP blocks.
	// Interventions (PIDowngr/PIFlush) also pass through here; the handler
	// follows them with WAITPC.
	TrySend(h OutHeader, dt uint64) bool
	// MemRead initiates a memory read of the line at addr into the
	// handler's data buffer (handler-initiated, i.e. non-speculative).
	MemRead(addr uint64, dt uint64)
	// MemWrite writes the handler's data buffer to the line at addr.
	MemWrite(addr uint64, dt uint64)
	// MDCFill services an MDC miss for protocol-memory address addr and
	// returns the stall penalty in cycles (≥ the 29-cycle base penalty;
	// more under memory-controller contention). writeback reports whether
	// a dirty MDC victim must also be written back.
	MDCFill(addr uint64, writeback bool, dt uint64) uint64
}

// Stats aggregates the dynamic execution statistics of Table 5.2.
type Stats struct {
	Pairs       uint64 // dual-issue pairs (or single instructions) executed
	Instrs      uint64 // non-NOP instructions executed
	ALUOrBranch uint64 // dynamic ALU + branch instruction count
	Special     uint64 // bitfield/branch-on-bit/ffs instructions
	Invocations uint64 // handler invocations
	StallCycles uint64 // MDC-miss and send-stall cycles inside handlers
}

// DualIssueEfficiency returns dynamic non-NOP instructions per pair.
func (s *Stats) DualIssueEfficiency() float64 {
	if s.Pairs == 0 {
		return 0
	}
	return float64(s.Instrs) / float64(s.Pairs)
}

// SpecialUse returns the dynamic fraction of ALU and branch instructions
// that are bitfield or branch-on-bit instructions.
func (s *Stats) SpecialUse() float64 {
	if s.ALUOrBranch == 0 {
		return 0
	}
	return float64(s.Special) / float64(s.ALUOrBranch)
}

// PairsPerInvocation returns mean instruction pairs per handler invocation.
func (s *Stats) PairsPerInvocation() float64 {
	if s.Invocations == 0 {
		return 0
	}
	return float64(s.Pairs) / float64(s.Invocations)
}

// PP is one protocol processor instance. It executes at most one handler at
// a time; MAGIC serializes invocations.
type PP struct {
	Prog *ppisa.Program
	Mem  []uint64 // node protocol memory, in 8-byte words
	MDC  *MDC
	Env  Env

	Stats Stats

	// backend selects the execution engine; code is the predecoded image
	// when backend is BackendCompiled (see compile.go).
	backend Backend
	code    []cpair

	// Execution state of the in-flight handler.
	regs    [32]uint64
	pc      int
	nextPC  int // successor pair chosen by the compiled loop's current pair
	running bool

	inHdr  [ppisa.NumHdrFields]uint64
	outHdr OutHeader

	// pendingSend holds the header of a SEND that blocked.
	pendingSend OutHeader
	hasPending  bool
	jrTarget    int

	// stepBudget guards against runaway handlers.
	stepBudget int

	// segCycles counts PP cycles consumed in the current run segment
	// (between Start/Resume and the next block or DONE), including MDC
	// stall penalties. Env implementations read it to timestamp sends and
	// memory operations.
	segCycles uint64
}

// maxHandlerPairs bounds a single handler invocation; real handlers run tens
// of pairs, so hitting this always indicates a protocol bug.
const maxHandlerPairs = 100000

// New creates a PP executing prog with the given protocol memory size in
// bytes, using the process-default backend (DefaultBackend).
func New(prog *ppisa.Program, memBytes int, mdc *MDC, env Env) *PP {
	return NewBackend(prog, memBytes, mdc, env, DefaultBackend())
}

// NewBackend is New with an explicit execution backend. For BackendCompiled
// the program is predecoded into the closure image executed by the
// threaded-code loop — once per Program, shared by every PP built from it.
func NewBackend(prog *ppisa.Program, memBytes int, mdc *MDC, env Env, b Backend) *PP {
	p := &PP{Prog: prog, Mem: make([]uint64, memBytes/8), MDC: mdc, Env: env, backend: b}
	if b == BackendCompiled {
		p.code = compiledImage(prog)
	}
	return p
}

// Backend reports which execution engine this PP uses.
func (p *PP) Backend() Backend { return p.backend }

// InHeader sets incoming-message header field f (visible to MFH).
func (p *PP) InHeader(f int, v uint64) { p.inHdr[f] = v }

// Reg returns the current value of register r (for tests and invariant
// checks against the protocol's persistent-register conventions).
func (p *PP) Reg(r int) uint64 { return p.regs[r] }

// SetPCResponse records the processor-cache intervention response kind,
// readable by the handler through MFH HdrPCKind after WAITPC.
func (p *PP) SetPCResponse(kind uint64) { p.inHdr[ppisa.HdrPCKind] = kind }

// EntryPC resolves a handler entry-point name to its pair index, for
// callers (MAGIC's jump table) that intern entries once at protocol load
// and dispatch by index afterwards. Unknown entries produce a descriptive
// error naming the program's size so a protocol/jump-table mismatch is
// diagnosable.
func (p *PP) EntryPC(entry string) (int, error) {
	pc, ok := p.Prog.Entries[entry]
	if !ok {
		return 0, fmt.Errorf("ppsim: no handler entry %q (program has %d entry points)", entry, len(p.Prog.Entries))
	}
	return pc, nil
}

// PPState is the deterministic between-handlers state of a protocol
// processor: the persistent register conventions, the node's protocol
// memory (which holds the directory), the incoming-header bank, and the
// dynamic statistics. Per-invocation transients (pc, outgoing header,
// pending send, step budget) are excluded — capture is only legal with no
// handler in flight.
type PPState struct {
	Regs  [32]uint64
	Mem   []uint64
	InHdr [ppisa.NumHdrFields]uint64
	Stats Stats
}

// CaptureState snapshots an idle PP. It panics if a handler is running or a
// send is pending: MAGIC only snapshots a quiesced machine.
func (p *PP) CaptureState() PPState {
	if p.running || p.hasPending {
		panic("ppsim: CaptureState with a handler in flight")
	}
	return PPState{
		Regs:  p.regs,
		Mem:   append([]uint64(nil), p.Mem...),
		InHdr: p.inHdr,
		Stats: p.Stats,
	}
}

// RestoreState installs a captured state into a PP built from the same
// program and memory size.
func (p *PP) RestoreState(st PPState) {
	if len(st.Mem) != len(p.Mem) {
		panic("ppsim: protocol memory size mismatch in RestoreState")
	}
	p.regs = st.Regs
	copy(p.Mem, st.Mem)
	p.inHdr = st.InHdr
	p.Stats = st.Stats
	p.running = false
	p.hasPending = false
}

// Reset zeroes the PP's persistent state (registers, protocol memory,
// headers, statistics). The caller re-runs protocol-memory initialization
// and the pp_init handler afterwards, exactly as at machine construction.
func (p *PP) Reset() {
	p.regs = [32]uint64{}
	for i := range p.Mem {
		p.Mem[i] = 0
	}
	p.inHdr = [ppisa.NumHdrFields]uint64{}
	p.outHdr = OutHeader{}
	p.pendingSend = OutHeader{}
	p.hasPending = false
	p.running = false
	p.Stats = Stats{}
	p.segCycles = 0
}

// Start begins executing the handler named entry and runs until it blocks
// or completes. It returns the status and the number of PP cycles consumed
// (excluding stall time spent blocked on external events, which MAGIC
// accounts separately). Start is a convenience wrapper over EntryPC and
// StartAt that panics on an unknown entry; dispatch hot paths resolve the
// entry once and call StartAt.
func (p *PP) Start(entry string) (Status, uint64) {
	pc, err := p.EntryPC(entry)
	if err != nil {
		panic(err)
	}
	return p.StartAt(pc)
}

// StartAt is Start for a pre-resolved entry pair index (see EntryPC).
func (p *PP) StartAt(pc int) (Status, uint64) {
	p.pc = pc
	p.running = true
	p.hasPending = false
	p.stepBudget = maxHandlerPairs
	p.Stats.Invocations++
	// The inbox initializes the outgoing header bank from the incoming
	// header: type and address carry over and the destination defaults to
	// the sender (reply semantics), so short forwarding handlers only touch
	// the fields they change.
	p.outHdr = OutHeader{
		Type: p.inHdr[ppisa.HdrType],
		Addr: p.inHdr[ppisa.HdrAddr],
		Dst:  p.inHdr[ppisa.HdrSrc],
		Req:  p.inHdr[ppisa.HdrReq],
		Aux:  p.inHdr[ppisa.HdrAux],
	}
	return p.run()
}

// Resume continues a blocked handler. For StatusBlockedSend the pending
// send is retried first.
func (p *PP) Resume() (Status, uint64) {
	if !p.running {
		panic("ppsim: Resume on idle PP")
	}
	if p.hasPending {
		if !p.Env.TrySend(p.pendingSend, 0) {
			return StatusBlockedSend, 0
		}
		p.hasPending = false
	}
	return p.run()
}

// Running reports whether a handler is in flight (blocked or mid-Resume).
func (p *PP) Running() bool { return p.running }

// run executes until the handler blocks or completes, via the selected
// backend. Both backends produce bit-identical registers, protocol memory,
// statistics, statuses, and cycle counts (enforced by the differential
// torture test and the exp golden-digest regression).
func (p *PP) run() (Status, uint64) {
	if p.backend == BackendCompiled {
		return p.runCompiled()
	}
	return p.runInterp()
}

// runInterp is the reference backend: it re-decodes each pair through the
// eval switch on every execution.
func (p *PP) runInterp() (Status, uint64) {
	p.segCycles = 0
	for {
		if p.stepBudget <= 0 {
			panic("ppsim: handler exceeded pair budget (protocol livelock?)")
		}
		p.stepBudget--
		pair := &p.Prog.Pairs[p.pc]
		p.segCycles++
		p.Stats.Pairs++

		// Both slots read pre-pair register state. Evaluate A then B against
		// the same snapshot, then commit. The scheduler guarantees no
		// intra-pair hazards, so evaluating against live registers with
		// deferred writes is equivalent.
		var wrA, wrB regWrite
		actA := p.eval(&pair.A, &wrA)
		actB := p.eval(&pair.B, &wrB)
		wrA.commit(&p.regs)
		wrB.commit(&p.regs)

		next := p.pc + 1
		st, handled := p.apply(actA, &pair.A, &next)
		if !handled {
			st, handled = p.apply(actB, &pair.B, &next)
		}
		if handled {
			if st == StatusDone {
				p.running = false
			}
			if st != statusContinue {
				return st, p.segCycles
			}
		}
		p.pc = next
	}
}

const statusContinue Status = 0xFF

// action describes a side effect computed by eval that must take place
// after the pair commits.
type action uint8

const (
	actNone action = iota
	actBranch
	actBranchDyn // JR: target held in PP.jrTarget
	actSend
	actWaitPC
	actDone
)

type regWrite struct {
	reg int
	val uint64
}

func (w *regWrite) commit(regs *[32]uint64) {
	if w.reg > 0 {
		regs[w.reg] = w.val
	}
}

// apply performs post-commit control actions. It reports (status, true) if
// the instruction produced one.
func (p *PP) apply(a action, in *ppisa.Instr, next *int) (Status, bool) {
	switch a {
	case actBranch:
		*next = in.Target
		return statusContinue, true
	case actBranchDyn:
		*next = p.jrTarget
		return statusContinue, true
	case actSend:
		if !p.Env.TrySend(p.outHdr, p.segCycles) {
			p.pendingSend = p.outHdr
			p.hasPending = true
			// Re-execution resumes at the *next* pair: the send itself
			// completes when Resume retries it.
			p.pc = *next
			return StatusBlockedSend, true
		}
		return statusContinue, true
	case actWaitPC:
		p.pc = *next
		return StatusWaitPC, true
	case actDone:
		return StatusDone, true
	}
	return statusContinue, false
}

// eval computes one slot. Register writes are returned via wr; control and
// interface effects via the action. Memory (MDC) stalls add to the segment
// cycle count.
func (p *PP) eval(in *ppisa.Instr, wr *regWrite) action {
	wr.reg = -1
	R := func(r uint8) uint64 { return p.regs[r] }
	W := func(v uint64) {
		if in.Rd != 0 {
			wr.reg = int(in.Rd)
			wr.val = v
		}
	}
	countStat := func() {
		p.Stats.Instrs++
		switch ppisa.Classify(in.Op) {
		case ppisa.ClassALU, ppisa.ClassBranch:
			p.Stats.ALUOrBranch++
		case ppisa.ClassSpecial:
			p.Stats.ALUOrBranch++
			p.Stats.Special++
		case ppisa.ClassBranchBit:
			p.Stats.ALUOrBranch++
			p.Stats.Special++
		}
	}

	switch in.Op {
	case ppisa.NOP:
		return actNone
	}
	countStat()

	switch in.Op {
	case ppisa.ADD:
		W(R(in.Rs) + R(in.Rt))
	case ppisa.SUB:
		W(R(in.Rs) - R(in.Rt))
	case ppisa.AND:
		W(R(in.Rs) & R(in.Rt))
	case ppisa.OR:
		W(R(in.Rs) | R(in.Rt))
	case ppisa.XOR:
		W(R(in.Rs) ^ R(in.Rt))
	case ppisa.SLL:
		W(R(in.Rs) << (R(in.Rt) & 63))
	case ppisa.SRL:
		W(R(in.Rs) >> (R(in.Rt) & 63))
	case ppisa.SRA:
		W(uint64(int64(R(in.Rs)) >> (R(in.Rt) & 63)))
	case ppisa.SLT:
		W(b2u(int64(R(in.Rs)) < int64(R(in.Rt))))
	case ppisa.SLTU:
		W(b2u(R(in.Rs) < R(in.Rt)))

	case ppisa.ADDI:
		W(R(in.Rs) + uint64(in.Imm))
	case ppisa.ANDI:
		W(R(in.Rs) & uint64(in.Imm))
	case ppisa.ORI:
		W(R(in.Rs) | uint64(in.Imm))
	case ppisa.XORI:
		W(R(in.Rs) ^ uint64(in.Imm))
	case ppisa.SLLI:
		W(R(in.Rs) << uint(in.Imm&63))
	case ppisa.SRLI:
		W(R(in.Rs) >> uint(in.Imm&63))
	case ppisa.SRAI:
		W(uint64(int64(R(in.Rs)) >> uint(in.Imm&63)))
	case ppisa.SLTI:
		W(b2u(int64(R(in.Rs)) < in.Imm))
	case ppisa.LUI:
		W(uint64(in.Imm&0xFFFF) << 16)

	case ppisa.FFS:
		v := R(in.Rs)
		if v == 0 {
			W(64)
		} else {
			n := uint64(0)
			for v&1 == 0 {
				v >>= 1
				n++
			}
			W(n)
		}
	case ppisa.EXT:
		W((R(in.Rs) >> uint(in.Imm)) & mask(in.Imm2))
	case ppisa.INS:
		m := mask(in.Imm2) << uint(in.Imm)
		W((R(in.Rd) &^ m) | ((R(in.Rs) << uint(in.Imm)) & m))
	case ppisa.ORFI:
		W(R(in.Rs) | mask(in.Imm2)<<uint(in.Imm))
	case ppisa.ANDFI:
		W(R(in.Rs) &^ (mask(in.Imm2) << uint(in.Imm)))

	case ppisa.LD:
		addr := R(in.Rs) + uint64(in.Imm)
		p.mdcAccess(addr, false)
		W(p.load(addr))
	case ppisa.ST:
		addr := R(in.Rs) + uint64(in.Imm)
		p.mdcAccess(addr, true)
		p.store(addr, R(in.Rd))

	case ppisa.BEQ:
		if R(in.Rs) == R(in.Rt) {
			return actBranch
		}
	case ppisa.BNE:
		if R(in.Rs) != R(in.Rt) {
			return actBranch
		}
	case ppisa.BLEZ:
		if int64(R(in.Rs)) <= 0 {
			return actBranch
		}
	case ppisa.BGTZ:
		if int64(R(in.Rs)) > 0 {
			return actBranch
		}
	case ppisa.BBS:
		if R(in.Rs)>>uint(in.Imm)&1 == 1 {
			return actBranch
		}
	case ppisa.BBC:
		if R(in.Rs)>>uint(in.Imm)&1 == 0 {
			return actBranch
		}
	case ppisa.J, ppisa.JAL:
		if in.Op == ppisa.JAL {
			wr.reg = int(in.Rd)
			wr.val = uint64(p.pc + 1)
		}
		return actBranch
	case ppisa.JR:
		p.jrTarget = int(R(in.Rs))
		return actBranchDyn

	case ppisa.MFH:
		W(p.inHdr[in.Imm])
	case ppisa.MTH:
		v := R(in.Rs)
		switch in.Imm {
		case ppisa.HdrType:
			p.outHdr.Type = v
		case ppisa.HdrAddr:
			p.outHdr.Addr = v
		case ppisa.HdrSrc:
			p.outHdr.Dst = v // symmetric: "src" slot addresses the target
		case ppisa.HdrReq:
			p.outHdr.Req = v
		case ppisa.HdrAux:
			p.outHdr.Aux = v
		}
	case ppisa.SEND:
		p.outHdr.Iface = int(in.Imm) & ppisa.SendIface
		p.outHdr.Data = in.Imm&ppisa.SendData != 0
		return actSend
	case ppisa.MEMRD:
		p.Env.MemRead(R(in.Rs), p.segCycles)
	case ppisa.MEMWR:
		p.Env.MemWrite(R(in.Rs), p.segCycles)
	case ppisa.WAITPC:
		return actWaitPC
	case ppisa.DONE:
		return actDone
	}
	return actNone
}

func (p *PP) mdcAccess(addr uint64, write bool) {
	hit, wb := p.MDC.Access(addr, write)
	if !hit {
		stall := p.Env.MDCFill(addr, wb, p.segCycles)
		p.segCycles += stall
		p.Stats.StallCycles += stall
	}
}

func (p *PP) load(addr uint64) uint64 {
	w := addr / 8
	if w >= uint64(len(p.Mem)) {
		panic(fmt.Sprintf("ppsim: protocol memory load out of range: %#x", addr))
	}
	return p.Mem[w]
}

func (p *PP) store(addr, v uint64) {
	w := addr / 8
	if w >= uint64(len(p.Mem)) {
		panic(fmt.Sprintf("ppsim: protocol memory store out of range: %#x", addr))
	}
	p.Mem[w] = v
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

func mask(width int64) uint64 {
	if width >= 64 {
		return ^uint64(0)
	}
	return 1<<uint(width) - 1
}
