package ppsim

import (
	"testing"

	"flashsim/internal/ppisa"
)

// TestCompileCacheStats checks the hit/miss accounting the metrics registry
// exposes: a program's first compiled execution is a miss, every later PP
// sharing the program is a hit. Counters are process-wide, so the test works
// in deltas.
func TestCompileCacheStats(t *testing.T) {
	prog := pairProg(
		single(ppisa.Instr{Op: ppisa.ADDI, Rd: 1, Imm: 7}),
		single(ppisa.Instr{Op: ppisa.DONE}),
	)
	run := func() {
		env := &mockEnv{}
		pp := NewBackend(prog, 64<<10, NewMDC(4096, 2), env, BackendCompiled)
		if st, _ := pp.Start("h"); st != StatusDone {
			t.Fatalf("status = %v", st)
		}
	}

	h0, m0, _ := CompileCacheStats()
	run()
	h1, m1, _ := CompileCacheStats()
	if m1-m0 != 1 {
		t.Errorf("first run: %d misses, want 1", m1-m0)
	}
	if h1 != h0 {
		t.Errorf("first run: %d hits, want 0", h1-h0)
	}
	for i := 0; i < 3; i++ {
		run()
	}
	h2, m2, _ := CompileCacheStats()
	if m2 != m1 {
		t.Errorf("reruns recompiled: %d extra misses", m2-m1)
	}
	if h2-h1 != 3 {
		t.Errorf("reruns: %d hits, want 3", h2-h1)
	}
}
