package protocol

import (
	"testing"
	"testing/quick"

	"flashsim/internal/arch"
)

// refDir is a Go reference model of one line's directory state, mirroring
// the handler semantics. The sharer list is a multiset: the handlers do not
// deduplicate (duplicates self-balance, k entries -> k INVALs -> k IACKs).
type refDir struct {
	dirty, pending, local bool
	owner                 arch.NodeID
	sharers               map[arch.NodeID]int
	acks                  int
}

func newRefDir() *refDir { return &refDir{sharers: map[arch.NodeID]int{}} }

// apply mirrors the home-node handlers for one message; it returns false if
// the operation would have been NAKed (so the driver skips dependent
// follow-ups).
func (d *refDir) apply(t arch.MsgType, src arch.NodeID, self arch.NodeID) bool {
	switch t {
	case arch.MsgGET:
		if d.pending || (d.dirty && d.owner == src) {
			return false
		}
		if d.dirty {
			if d.owner == self {
				// Synchronous downgrade at home.
				d.dirty = false
				d.local = true
				d.note(src, self)
				return true
			}
			d.pending = true // forwarded; caller must resolve
			return true
		}
		d.note(src, self)
	case arch.MsgGETX:
		if d.pending || (d.dirty && d.owner == src) {
			return false
		}
		if d.dirty {
			if d.owner == self {
				// Synchronous flush at home: ownership moves directly.
				d.local = false
				d.owner = src
				return true
			}
			d.pending = true
			return true
		}
		n := 0
		for s, k := range d.sharers {
			if s != src {
				n += k
			}
		}
		d.sharers = map[arch.NodeID]int{}
		if d.local && src != self {
			d.local = false
		}
		if src == self {
			d.local = true
		}
		d.dirty = true
		d.owner = src
		d.acks = n
		d.pending = n > 0
	case arch.MsgWB:
		if d.dirty && d.owner == src {
			d.dirty = false
			if src == self {
				d.local = false
			}
			if d.acks == 0 {
				d.pending = false
			}
		}
	case arch.MsgRPL:
		if src == self {
			if !d.dirty {
				d.local = false
			}
		} else if d.sharers[src] > 0 {
			d.sharers[src]--
			if d.sharers[src] == 0 {
				delete(d.sharers, src)
			}
		}
	case arch.MsgSWB:
		if !(d.dirty && d.owner == src) {
			return false
		}
		d.dirty = false
		d.pending = false
		d.note(src, self)
	case arch.MsgXFER:
		if !(d.dirty && d.owner == src) {
			return false
		}
		d.pending = false
	case arch.MsgIACK:
		d.acks--
		if d.acks <= 0 {
			d.acks = 0
			d.pending = false
		}
	}
	return true
}

func (d *refDir) note(n, self arch.NodeID) {
	if n == self {
		d.local = true
	} else {
		d.sharers[n]++
	}
}

// TestDifferentialRandomOps drives random home-side message sequences
// through the assembly handlers and the reference model and compares the
// resulting directory state after every step.
func TestDifferentialRandomOps(t *testing.T) {
	const self = arch.NodeID(0)
	f := func(ops []uint16) bool {
		r := newHandlerRig(t, self)
		r.env.pcKind = 1
		ref := newRefDir()
		pendingFwd := arch.NodeID(0)
		hasFwd := false
		fwdExclusive := false
		for _, op := range ops {
			src := arch.NodeID(op>>3) % 8
			kind := op & 7
			// Resolve an outstanding forward first half the time, so the
			// line doesn't stay pending forever.
			if hasFwd && op&1 == 0 {
				if fwdExclusive {
					r.deliver(arch.Msg{Type: arch.MsgXFER, Addr: testAddr, Src: pendingFwd, Req: src}, true)
					if ref.apply(arch.MsgXFER, pendingFwd, self) {
						ref.owner = src // XFER hands ownership to Req
					}
				} else {
					r.deliver(arch.Msg{Type: arch.MsgSWB, Addr: testAddr, Src: pendingFwd, Req: src}, true)
					if ref.apply(arch.MsgSWB, pendingFwd, self) {
						ref.note(src, self)
					}
				}
				hasFwd = false
			}
			var mt arch.MsgType
			switch kind {
			case 0, 1:
				mt = arch.MsgGET
			case 2:
				mt = arch.MsgGETX
			case 3:
				mt = arch.MsgWB
			case 4:
				mt = arch.MsgRPL
			default:
				continue
			}
			viaNet := src != self
			before := *ref
			okRef := ref.apply(mt, src, self)
			sends := r.deliver(arch.Msg{Type: mt, Addr: testAddr, Src: src, Req: src}, viaNet)
			// Track forwards so we can resolve them.
			for _, s := range sends {
				switch s.Type {
				case arch.MsgFwdGET:
					pendingFwd, hasFwd, fwdExclusive = s.Dst, true, false
				case arch.MsgFwdGETX:
					pendingFwd, hasFwd, fwdExclusive = s.Dst, true, true
				case arch.MsgNAK:
					if okRef && mt != arch.MsgGET {
						// The model accepted but the handlers NAKed:
						// divergence (GET of a dirty-local line downgrades
						// in both).
						t.Logf("divergence: %v from %d NAKed; ref before=%+v", mt, src, before)
						return false
					}
				}
			}
			// IACKs for a GETX with sharers: drain immediately (the real
			// machine's invalidated nodes each acknowledge).
			for ref.acks > 0 {
				r.deliver(arch.Msg{Type: arch.MsgIACK, Addr: testAddr, Src: 1}, true)
				ref.apply(arch.MsgIACK, 1, self)
			}
			if !r.compare(ref) {
				t.Logf("state divergence after %v from %d", mt, src)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// compare checks the decoded handler state against the model.
func (r *handlerRig) compare(ref *refDir) bool {
	d := r.dir(testAddr)
	if d.Dirty != ref.dirty || d.Pending != ref.pending || d.Local != ref.local || d.Acks != ref.acks {
		r.t.Logf("asm = %+v\nref = %+v", d, ref)
		return false
	}
	if d.Dirty && d.Owner != ref.owner {
		r.t.Logf("owner: asm %d ref %d", d.Owner, ref.owner)
		return false
	}
	got := map[arch.NodeID]int{}
	for _, s := range d.Sharers {
		got[s]++
	}
	if len(got) != len(ref.sharers) {
		r.t.Logf("sharers: asm %v ref %v", got, ref.sharers)
		return false
	}
	for s, k := range ref.sharers {
		if got[s] != k {
			r.t.Logf("sharers: asm %v ref %v", got, ref.sharers)
			return false
		}
	}
	return true
}
