package protocol

// handlerSource is the complete dynamic pointer allocation protocol in PP
// assembly, covering local and remote read/write misses, writebacks,
// replacement hints, invalidation fan-out and acknowledgment collection,
// 3-hop forwarding with sharing writebacks and ownership transfers, and the
// NAK/retry races between writebacks and forwarded requests.
//
// Conventions:
//   - The inbox preprocesses headers: H_DIROFF holds the protocol-memory
//     byte offset of the directory header at the home node, or the home
//     node id for the pi_*_remote forwarding handlers.
//   - The outgoing header bank is initialized from the incoming header
//     (type and address carry over; destination defaults to the sender).
//   - Persistent registers, set up once by pp_init: r24 = free-list head,
//     r25 = pointer-pool base, r26 = NULLPTR, r27 = this node's id.
//   - r28 is the subroutine link register; r1-r13 are handler scratch.
//   - Data-reply handlers always execute memrd: when the inbox already
//     issued the speculative read MAGIC coalesces the two, and with
//     speculation disabled this is where the access starts (Section 5.1).
const handlerSource = `
; ---------------------------------------------------------------------------
; boot
; ---------------------------------------------------------------------------
pp_init:
	ld    r24, G_FREEHEAD(r0)
	li    r25, PTRBASE
	li    r26, NULLPTR
	ld    r27, G_MYID(r0)
	done

; ---------------------------------------------------------------------------
; subroutine: insert node r4 into the sharer set of directory header r3
; (dirOff in r2 is NOT stored here; callers store). clobbers r5-r7.
; ---------------------------------------------------------------------------
alloc_insert:
	bne   r4, r27, .pool
	orfi  r3, r3, B_LOCAL, 1
	jr    r28
.pool:
	beq   r24, r26, .ovfl
	slli  r7, r24, 3
	add   r7, r7, r25
	ld    r6, 0(r7)            ; free entry (its NEXT links the free list)
	add   r5, r26, r0          ; new entry's next = NULL unless a list exists
	bbc   r3, B_LIST, .nolist
	ext   r5, r3, HEAD_POS, HEAD_W
.nolist:
	slli  r5, r5, NEXT_POS
	or    r5, r5, r4
	st    r5, 0(r7)
	ins   r3, r24, HEAD_POS, HEAD_W
	orfi  r3, r3, B_LIST, 1
	ext   r24, r6, NEXT_POS, NEXT_W
	jr    r28
.ovfl:
	orfi  r3, r3, B_OVFL, 1
	jr    r28

; ---------------------------------------------------------------------------
; subroutine: invalidate every sharer of header r3 except node r4.
; H_ADDR must already be set in the outgoing header. Frees the list entries,
; clears the list/overflow state in r3, returns the invalidation count in
; r9. Clobbers r5-r7, r10-r13.
; ---------------------------------------------------------------------------
inval_sharers:
	add   r9, r0, r0
	li    r7, M_INVAL
	mth   H_TYPE, r7
	bbs   r3, B_OVFL, .bcast
.walk:
	bbc   r3, B_LIST, .done
	ext   r5, r3, HEAD_POS, HEAD_W
.loop:
	slli  r7, r5, 3
	add   r7, r7, r25
	ld    r6, 0(r7)
	ext   r12, r6, NODE_POS, NODE_W
	ext   r13, r6, NEXT_POS, NEXT_W
	; free the entry: entry.next = free head; free head = entry
	slli  r10, r24, NEXT_POS
	st    r10, 0(r7)
	add   r24, r5, r0
	beq   r12, r4, .skip
	mth   H_DST, r12
	send  NET
	addi  r9, r9, 1
.skip:
	add   r5, r13, r0
	bne   r5, r26, .loop
	andfi r3, r3, B_LIST, 1
	andfi r3, r3, HEAD_POS, HEAD_W
.done:
	jr    r28
.bcast:
	; pool overflowed: invalidate all nodes except self and the requester,
	; then release whatever part of the list exists.
	ld    r11, G_NNODES(r0)
	add   r5, r0, r0
.bloop:
	beq   r5, r27, .bnext
	beq   r5, r4, .bnext
	mth   H_DST, r5
	send  NET
	addi  r9, r9, 1
.bnext:
	addi  r5, r5, 1
	bne   r5, r11, .bloop
	andfi r3, r3, B_OVFL, 1
	bbc   r3, B_LIST, .done
	ext   r5, r3, HEAD_POS, HEAD_W
.floop:
	slli  r7, r5, 3
	add   r7, r7, r25
	ld    r6, 0(r7)
	ext   r13, r6, NEXT_POS, NEXT_W
	slli  r10, r24, NEXT_POS
	st    r10, 0(r7)
	add   r24, r5, r0
	add   r5, r13, r0
	bne   r5, r26, .floop
	andfi r3, r3, B_LIST, 1
	andfi r3, r3, HEAD_POS, HEAD_W
	jr    r28

; ---------------------------------------------------------------------------
; shared tails: negative acknowledgments
; ---------------------------------------------------------------------------
nak_pi:
	li    r5, M_NAK
	mth   H_TYPE, r5
	send  PI
	done
nak_net:
	li    r5, M_NAK
	mth   H_TYPE, r5
	mfh   r4, H_SRC
	mth   H_DST, r4
	send  NET
	done

; ---------------------------------------------------------------------------
; local read miss (PI GET, this node is home)
; ---------------------------------------------------------------------------
pi_get_local:
	mfh   r2, H_DIROFF
	ld    r3, 0(r2)
	bbs   r3, B_PENDING, nak_pi
	bbs   r3, B_DIRTY, .dirty
	orfi  r3, r3, B_LOCAL, 1
	st    r3, 0(r2)
	mfh   r1, H_ADDR
	li    r5, M_PUT
	mth   H_TYPE, r5
	mth   H_AUX, r0
	memrd r1
	send  PI|DATA
	done
.dirty:
	ext   r4, r3, OWNER_POS, OWNER_W
	beq   r4, r27, nak_pi      ; our own writeback is in flight: retry
	orfi  r3, r3, B_PENDING, 1
	st    r3, 0(r2)
	mth   H_DST, r4
	mth   H_REQ, r27
	li    r5, M_FWDGET
	mth   H_TYPE, r5
	send  NET
	done

; ---------------------------------------------------------------------------
; local write miss (PI GETX, this node is home)
; ---------------------------------------------------------------------------
pi_getx_local:
	mfh   r2, H_DIROFF
	ld    r3, 0(r2)
	bbs   r3, B_PENDING, nak_pi
	bbs   r3, B_DIRTY, .dirty
	mfh   r1, H_ADDR
	add   r4, r27, r0
	jal   inval_sharers
	orfi  r3, r3, B_DIRTY, 1
	orfi  r3, r3, B_LOCAL, 1
	ins   r3, r27, OWNER_POS, OWNER_W
	ins   r3, r9, ACK_POS, ACK_W
	beq   r9, r0, .noack
	orfi  r3, r3, B_PENDING, 1
.noack:
	st    r3, 0(r2)
	li    r5, M_PUTX
	mth   H_TYPE, r5
	mth   H_AUX, r0
	memrd r1
	send  PI|DATA
	done
.dirty:
	ext   r4, r3, OWNER_POS, OWNER_W
	beq   r4, r27, nak_pi
	orfi  r3, r3, B_PENDING, 1
	st    r3, 0(r2)
	mth   H_DST, r4
	mth   H_REQ, r27
	li    r5, M_FWDGETX
	mth   H_TYPE, r5
	send  NET
	done

; ---------------------------------------------------------------------------
; local writeback and replacement hint (PI, this node is home)
; ---------------------------------------------------------------------------
pi_wb_local:
	mfh   r2, H_DIROFF
	ld    r3, 0(r2)
	mfh   r1, H_ADDR
	memwr r1
	bbc   r3, B_DIRTY, .out
	ext   r4, r3, OWNER_POS, OWNER_W
	bne   r4, r27, .out
	andfi r3, r3, B_DIRTY, 1
	andfi r3, r3, B_LOCAL, 1
	ext   r6, r3, ACK_POS, ACK_W
	bne   r6, r0, .st
	andfi r3, r3, B_PENDING, 1
.st:
	st    r3, 0(r2)
.out:
	done

pi_rpl_local:
	mfh   r2, H_DIROFF
	ld    r3, 0(r2)
	bbs   r3, B_DIRTY, .out
	andfi r3, r3, B_LOCAL, 1
	st    r3, 0(r2)
.out:
	done

; ---------------------------------------------------------------------------
; remote-address requests from the local processor: forward to home.
; H_DIROFF carries the home node id for these handlers.
; ---------------------------------------------------------------------------
pi_get_remote:
	mfh   r4, H_DIROFF
	mth   H_DST, r4
	send  NET
	done

pi_getx_remote:
	mfh   r4, H_DIROFF
	mth   H_DST, r4
	send  NET
	done

pi_wb_remote:
	mfh   r4, H_DIROFF
	mth   H_DST, r4
	send  NET|DATA
	done

pi_rpl_remote:
	mfh   r4, H_DIROFF
	mth   H_DST, r4
	send  NET
	done

; ---------------------------------------------------------------------------
; read request at home from a remote node (NI GET)
; ---------------------------------------------------------------------------
ni_get:
	mfh   r2, H_DIROFF
	ld    r3, 0(r2)
	bbs   r3, B_PENDING, nak_net
	bbs   r3, B_DIRTY, .dirty
	mfh   r4, H_SRC
	jal   alloc_insert
	st    r3, 0(r2)
	mfh   r1, H_ADDR
	li    r5, M_PUT
	mth   H_TYPE, r5
	mth   H_AUX, r0
	memrd r1
	send  NET|DATA
	done
.dirty:
	ext   r4, r3, OWNER_POS, OWNER_W
	beq   r4, r27, .local
	mfh   r6, H_SRC
	beq   r4, r6, nak_net      ; requester's own writeback is in flight
	orfi  r3, r3, B_PENDING, 1
	st    r3, 0(r2)
	mth   H_DST, r4
	mth   H_REQ, r6
	li    r5, M_FWDGET
	mth   H_TYPE, r5
	send  NET
	done
.local:
	; dirty in our own processor cache: retrieve, downgrade, write back
	li    r5, M_PIDOWNGR
	mth   H_TYPE, r5
	send  PI
	waitpc
	mfh   r6, H_PCKIND
	beq   r6, r0, nak_net      ; writeback raced the intervention
	mfh   r1, H_ADDR
	memwr r1
	andfi r3, r3, B_DIRTY, 1
	orfi  r3, r3, B_LOCAL, 1   ; our processor keeps the downgraded copy
	mfh   r4, H_SRC
	jal   alloc_insert
	st    r3, 0(r2)
	mfh   r4, H_SRC
	mth   H_DST, r4
	li    r5, M_PUT
	mth   H_TYPE, r5
	addi  r5, r0, 1
	mth   H_AUX, r5            ; classifies as dirty-at-home
	send  NET|DATA
	done

; ---------------------------------------------------------------------------
; write request at home from a remote node (NI GETX)
; ---------------------------------------------------------------------------
ni_getx:
	mfh   r2, H_DIROFF
	ld    r3, 0(r2)
	bbs   r3, B_PENDING, nak_net
	bbs   r3, B_DIRTY, .dirty
	mfh   r1, H_ADDR
	bbc   r3, B_LOCAL, .noloc
	li    r5, M_PIINVAL        ; invalidate our own processor's copy
	mth   H_TYPE, r5
	send  PI
	andfi r3, r3, B_LOCAL, 1
.noloc:
	mfh   r4, H_SRC
	jal   inval_sharers
	orfi  r3, r3, B_DIRTY, 1
	mfh   r4, H_SRC
	ins   r3, r4, OWNER_POS, OWNER_W
	ins   r3, r9, ACK_POS, ACK_W
	beq   r9, r0, .noack
	orfi  r3, r3, B_PENDING, 1
.noack:
	st    r3, 0(r2)
	mth   H_DST, r4
	li    r5, M_PUTX
	mth   H_TYPE, r5
	mth   H_AUX, r0
	memrd r1
	send  NET|DATA
	done
.dirty:
	ext   r4, r3, OWNER_POS, OWNER_W
	beq   r4, r27, .local
	mfh   r6, H_SRC
	beq   r4, r6, nak_net      ; requester's own writeback is in flight
	orfi  r3, r3, B_PENDING, 1
	st    r3, 0(r2)
	mth   H_DST, r4
	mth   H_REQ, r6
	li    r5, M_FWDGETX
	mth   H_TYPE, r5
	send  NET
	done
.local:
	; dirty in our own cache: flush it, hand ownership to the requester
	li    r5, M_PIFLUSH
	mth   H_TYPE, r5
	send  PI
	waitpc
	mfh   r6, H_PCKIND
	beq   r6, r0, nak_net
	mfh   r1, H_ADDR
	memwr r1
	andfi r3, r3, B_LOCAL, 1
	mfh   r4, H_SRC
	ins   r3, r4, OWNER_POS, OWNER_W
	st    r3, 0(r2)
	mth   H_DST, r4
	li    r5, M_PUTX
	mth   H_TYPE, r5
	addi  r5, r0, 1
	mth   H_AUX, r5
	send  NET|DATA
	done

; ---------------------------------------------------------------------------
; writeback and replacement hint at home from remote nodes
; ---------------------------------------------------------------------------
ni_wb:
	mfh   r2, H_DIROFF
	ld    r3, 0(r2)
	mfh   r1, H_ADDR
	memwr r1
	bbc   r3, B_DIRTY, .out
	ext   r4, r3, OWNER_POS, OWNER_W
	mfh   r5, H_SRC
	bne   r4, r5, .out
	andfi r3, r3, B_DIRTY, 1
	ext   r6, r3, ACK_POS, ACK_W
	bne   r6, r0, .st
	andfi r3, r3, B_PENDING, 1
.st:
	st    r3, 0(r2)
.out:
	done

ni_rpl:
	mfh   r2, H_DIROFF
	ld    r3, 0(r2)
	mfh   r4, H_SRC
	bbc   r3, B_LIST, .out
	ext   r5, r3, HEAD_POS, HEAD_W
	slli  r7, r5, 3
	add   r7, r7, r25
	ld    r6, 0(r7)
	ext   r12, r6, NODE_POS, NODE_W
	bne   r12, r4, .scan
	; unlink the head entry
	ext   r13, r6, NEXT_POS, NEXT_W
	beq   r13, r26, .last
	ins   r3, r13, HEAD_POS, HEAD_W
	j     .free
.last:
	andfi r3, r3, B_LIST, 1
	andfi r3, r3, HEAD_POS, HEAD_W
.free:
	slli  r10, r24, NEXT_POS
	st    r10, 0(r7)
	add   r24, r5, r0
	st    r3, 0(r2)
.out:
	done
.scan:
	ext   r13, r6, NEXT_POS, NEXT_W
	beq   r13, r26, .out
	slli  r10, r13, 3
	add   r10, r10, r25
	ld    r12, 0(r10)
	ext   r9, r12, NODE_POS, NODE_W
	beq   r9, r4, .unlink
	add   r7, r10, r0
	add   r6, r12, r0
	j     .scan
.unlink:
	ext   r9, r12, NEXT_POS, NEXT_W
	ins   r6, r9, NEXT_POS, NEXT_W
	st    r6, 0(r7)
	slli  r9, r24, NEXT_POS
	st    r9, 0(r10)
	add   r24, r13, r0
	done

; ---------------------------------------------------------------------------
; forwarded requests at the (believed) dirty node
; ---------------------------------------------------------------------------
ni_fwd_get:
	li    r5, M_PIDOWNGR
	mth   H_TYPE, r5
	send  PI
	waitpc
	mfh   r6, H_PCKIND
	beq   r6, r0, fwd_gone
	mfh   r4, H_REQ
	mth   H_DST, r4
	li    r5, M_PUT
	mth   H_TYPE, r5
	addi  r5, r0, 3
	mth   H_AUX, r5            ; dirty + third-party source
	send  NET|DATA
	mfh   r4, H_SRC
	mth   H_DST, r4
	li    r5, M_SWB
	mth   H_TYPE, r5
	send  NET|DATA
	done

ni_fwd_getx:
	li    r5, M_PIFLUSH
	mth   H_TYPE, r5
	send  PI
	waitpc
	mfh   r6, H_PCKIND
	beq   r6, r0, fwd_gone
	mfh   r4, H_REQ
	mth   H_DST, r4
	li    r5, M_PUTX
	mth   H_TYPE, r5
	addi  r5, r0, 3
	mth   H_AUX, r5
	send  NET|DATA
	mfh   r4, H_SRC
	mth   H_DST, r4
	li    r5, M_XFER
	mth   H_TYPE, r5
	send  NET
	done

fwd_gone:
	; the line was already written back: clear the home's pending bit and
	; bounce the requester.
	mfh   r4, H_SRC
	mth   H_DST, r4
	li    r5, M_PCLR
	mth   H_TYPE, r5
	send  NET
	mfh   r4, H_REQ
	mth   H_DST, r4
	li    r5, M_NAK
	mth   H_TYPE, r5
	send  NET
	done

; ---------------------------------------------------------------------------
; invalidation at a sharer
; ---------------------------------------------------------------------------
ni_inval:
	li    r5, M_PIINVAL
	mth   H_TYPE, r5
	send  PI
	li    r5, M_IACK
	mth   H_TYPE, r5
	send  NET                  ; destination defaults to the home (sender)
	done

; ---------------------------------------------------------------------------
; replies arriving at the requester: hand to the processor interface
; ---------------------------------------------------------------------------
ni_put:
	send  PI|DATA
	done

ni_putx:
	send  PI|DATA
	done

ni_nak:
	send  PI
	done

; ---------------------------------------------------------------------------
; replies arriving at the home node
; ---------------------------------------------------------------------------
ni_swb:
	mfh   r2, H_DIROFF
	ld    r3, 0(r2)
	mfh   r1, H_ADDR
	memwr r1
	bbc   r3, B_DIRTY, .out
	ext   r4, r3, OWNER_POS, OWNER_W
	mfh   r5, H_SRC
	bne   r4, r5, .out
	andfi r3, r3, B_DIRTY, 2   ; clears DIRTY and PENDING together
	mfh   r4, H_SRC
	jal   alloc_insert         ; the old owner keeps a shared copy
	mfh   r4, H_REQ
	jal   alloc_insert         ; the reader joins the sharer set
	st    r3, 0(r2)
.out:
	done

ni_xfer:
	mfh   r2, H_DIROFF
	ld    r3, 0(r2)
	bbc   r3, B_DIRTY, .out
	ext   r4, r3, OWNER_POS, OWNER_W
	mfh   r5, H_SRC
	bne   r4, r5, .out
	mfh   r6, H_REQ
	ins   r3, r6, OWNER_POS, OWNER_W
	andfi r3, r3, B_PENDING, 1
	st    r3, 0(r2)
.out:
	done

ni_pclr:
	mfh   r2, H_DIROFF
	ld    r3, 0(r2)
	bbc   r3, B_DIRTY, .out
	ext   r4, r3, OWNER_POS, OWNER_W
	mfh   r5, H_SRC
	bne   r4, r5, .out
	andfi r3, r3, B_PENDING, 1
	st    r3, 0(r2)
.out:
	done

ni_iack:
	mfh   r2, H_DIROFF
	ld    r3, 0(r2)
	ext   r6, r3, ACK_POS, ACK_W
	addi  r6, r6, -1
	ins   r3, r6, ACK_POS, ACK_W
	bne   r6, r0, .st
	andfi r3, r3, B_PENDING, 1
.st:
	st    r3, 0(r2)
	done
`
