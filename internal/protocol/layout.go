// Package protocol implements the dynamic pointer allocation cache-coherence
// protocol of the FLASH prototype (Simoni's scheme, Section 3.3 of the
// paper) as PP handler code. Every directory operation — header updates,
// sharer-list traversal, invalidation fan-out, writeback processing — is
// performed by assembly handlers executed on the PPsim emulator, exactly as
// the real machine ran compiled C handlers on MAGIC.
//
// Protocol data structures live in node-local protocol memory, accessed by
// the PP through the MAGIC data cache:
//
//	globals    (one line):  node id, home base address, free-list head, ...
//	directory  (8 B/line):  state bits, sharer-list head, ack count, owner
//	pointer pool (8 B/entry): {node, next} links for sharer lists
package protocol

import (
	"flashsim/internal/arch"
	"flashsim/internal/ppisa"
)

// Directory header bit layout (64-bit word per local memory line).
const (
	BDirty   = 0 // line is dirty in exactly one processor cache
	BPending = 1 // a 3-hop transaction or invalidation set is outstanding
	BLocal   = 2 // the home node's own processor has a copy
	BList    = 3 // the sharer list head is valid
	BOvfl    = 4 // pointer pool exhausted; invalidations broadcast

	HeadPos, HeadW   = 8, 20  // sharer list head (pool index)
	AckPos, AckW     = 28, 16 // outstanding invalidation acknowledgments
	OwnerPos, OwnerW = 44, 16 // owning node when BDirty
)

// Pointer-pool entry layout.
const (
	NodePos, NodeW = 0, 16
	NextPos, NextW = 16, 20
	NullPtr        = 1<<NextW - 1 // list terminator / empty free list
)

// Globals block (byte offsets in protocol memory).
const (
	GMyID       = 0
	GHomeBase   = 8
	GFreeHead   = 16
	GNNodes     = 24
	GlobalsSize = 128 // one MDC line
)

// Layout describes where protocol structures live in a node's protocol
// memory, derived from the machine configuration.
type Layout struct {
	Proto    arch.Protocol
	DirBase  int64 // directory headers
	PtrBase  int64 // pointer pool (dynamic pointer allocation only)
	PoolSize int64 // number of pool entries
	MemBytes int64 // bytes of protocol memory needed
}

// NewLayout computes the protocol memory layout for one node.
func NewLayout(cfg *arch.Config) Layout {
	lines := int64(cfg.MemBytesPerNode / arch.LineSize)
	l := Layout{Proto: cfg.Protocol, DirBase: GlobalsSize}
	if cfg.Protocol == arch.ProtoBitVector {
		// The bit-vector directory is self-contained in the headers.
		l.PtrBase = GlobalsSize + lines*8
		l.MemBytes = l.PtrBase
		return l
	}
	// Size the pool at 4 entries per line; replacement hints keep real
	// occupancy far lower. The pool index space is NextW bits with NullPtr
	// reserved as the sentinel, so the pool must stop short of it.
	pool := lines * 4
	if pool > NullPtr {
		pool = NullPtr
	}
	l.PtrBase = GlobalsSize + lines*8
	l.PoolSize = pool
	l.MemBytes = l.PtrBase + pool*8
	return l
}

// Symbols returns the assembler symbol table for the handler sources.
func (l Layout) Symbols() map[string]int64 {
	syms := map[string]int64{
		// Message types.
		"M_GET": int64(arch.MsgGET), "M_GETX": int64(arch.MsgGETX),
		"M_WB": int64(arch.MsgWB), "M_RPL": int64(arch.MsgRPL),
		"M_FWDGET": int64(arch.MsgFwdGET), "M_FWDGETX": int64(arch.MsgFwdGETX),
		"M_INVAL": int64(arch.MsgINVAL),
		"M_PUT":   int64(arch.MsgPUT), "M_PUTX": int64(arch.MsgPUTX),
		"M_NAK": int64(arch.MsgNAK), "M_IACK": int64(arch.MsgIACK),
		"M_SWB": int64(arch.MsgSWB), "M_XFER": int64(arch.MsgXFER),
		"M_PCLR":    int64(arch.MsgPCLR),
		"M_PIINVAL": int64(arch.MsgPIInval), "M_PIDOWNGR": int64(arch.MsgPIDowngr),
		"M_PIFLUSH": int64(arch.MsgPIFlush),

		// Header fields.
		"H_TYPE": ppisa.HdrType, "H_ADDR": ppisa.HdrAddr,
		"H_SRC": ppisa.HdrSrc, "H_DST": ppisa.HdrSrc, // outgoing alias
		"H_REQ": ppisa.HdrReq, "H_AUX": ppisa.HdrAux,
		"H_PCKIND": ppisa.HdrPCKind, "H_DIROFF": ppisa.HdrDirOff,
		"H_SELF": ppisa.HdrSelf,

		// Send flags.
		"NET": ppisa.SendNet, "PI": ppisa.SendPI, "DATA": ppisa.SendData,

		// Directory header fields.
		"B_DIRTY": BDirty, "B_PENDING": BPending, "B_LOCAL": BLocal,
		"B_LIST": BList, "B_OVFL": BOvfl,
		"HEAD_POS": HeadPos, "HEAD_W": HeadW,
		"ACK_POS": AckPos, "ACK_W": AckW,
		"OWNER_POS": OwnerPos, "OWNER_W": OwnerW,

		// Pool entries.
		"NODE_POS": NodePos, "NODE_W": NodeW,
		"NEXT_POS": NextPos, "NEXT_W": NextW,
		"NULLPTR": NullPtr,

		// Globals.
		"G_MYID": GMyID, "G_HOMEBASE": GHomeBase,
		"G_FREEHEAD": GFreeHead, "G_NNODES": GNNodes,

		// Layout.
		"DIRBASE": l.DirBase, "PTRBASE": l.PtrBase,

		// Bit-vector protocol fields.
		"PRES_POS": BVPresPos, "PRES_W": BVPresW,
	}
	if l.Proto == arch.ProtoBitVector {
		syms["ACK_POS"], syms["ACK_W"] = BVAckPos, BVAckW
		syms["OWNER_POS"], syms["OWNER_W"] = BVOwnerPos, BVOwnerW
	}
	return syms
}

// InitMemory initializes one node's protocol memory image: globals, an
// all-clean directory, and the free list threaded through the pointer pool.
func (l Layout) InitMemory(mem []uint64, id arch.NodeID, homeBase arch.Addr, nnodes int) {
	mem[GMyID/8] = uint64(id)
	mem[GHomeBase/8] = uint64(homeBase)
	mem[GNNodes/8] = uint64(nnodes)
	if l.Proto == arch.ProtoBitVector {
		return
	}
	// Free list: entry i links to i+1; last links to NullPtr.
	for i := int64(0); i < l.PoolSize; i++ {
		next := uint64(i + 1)
		if i == l.PoolSize-1 {
			next = NullPtr
		}
		mem[(l.PtrBase+i*8)/8] = next << NextPos
	}
	mem[GFreeHead/8] = 0
}

// DirOffset returns the protocol-memory byte offset of the directory header
// for local line index i.
func (l Layout) DirOffset(localLine uint64) uint64 {
	return uint64(l.DirBase) + localLine*8
}
