package protocol

import (
	"testing"

	"flashsim/internal/arch"
	"flashsim/internal/ppsim"
)

func newBitvecRig(t *testing.T, self arch.NodeID) *handlerRig {
	t.Helper()
	cfg := arch.DefaultConfig()
	cfg.MemBytesPerNode = 1 << 20
	cfg.Protocol = arch.ProtoBitVector
	prog, err := Build(&cfg)
	if err != nil {
		t.Fatal(err)
	}
	env := &recEnv{}
	pp := ppsim.New(prog.Code, int(prog.Layout.MemBytes), ppsim.NewMDC(cfg.MDCSize, cfg.MDCWays), env)
	env.pp = pp
	prog.Layout.InitMemory(pp.Mem, self, cfg.NodeBase(self), cfg.Nodes)
	if st, _ := pp.Start("pp_init"); st != ppsim.StatusDone {
		t.Fatal("pp_init did not finish")
	}
	return &handlerRig{t: t, pp: pp, lay: prog.Layout, cfg: cfg, env: env, self: self}
}

func TestBitvecBuildRejectsLargeMachines(t *testing.T) {
	cfg := arch.DefaultConfig()
	cfg.Protocol = arch.ProtoBitVector
	cfg.Nodes = 64
	if _, err := Build(&cfg); err == nil {
		t.Fatal("64-node bit-vector build must fail")
	}
}

func TestBitvecSharersAndInvalidation(t *testing.T) {
	r := newBitvecRig(t, 0)
	for _, n := range []arch.NodeID{2, 5, 9} {
		sends := r.deliver(arch.Msg{Type: arch.MsgGET, Addr: testAddr, Src: n, Req: n}, true)
		if len(sends) != 1 || sends[0].Type != arch.MsgPUT {
			t.Fatalf("GET reply = %+v", sends)
		}
	}
	d := r.dir(testAddr)
	if len(d.Sharers) != 3 {
		t.Fatalf("sharers = %v", d.Sharers)
	}
	sends := r.deliver(arch.Msg{Type: arch.MsgGETX, Addr: testAddr, Src: 5, Req: 5}, true)
	var invals []arch.NodeID
	for _, s := range sends {
		if s.Type == arch.MsgINVAL {
			invals = append(invals, s.Dst)
		}
	}
	// ffs walks lowest-first: nodes 2 then 9 (5 is the requester).
	if len(invals) != 2 || invals[0] != 2 || invals[1] != 9 {
		t.Fatalf("invals = %v, want [2 9]", invals)
	}
	d = r.dir(testAddr)
	if !d.Dirty || d.Owner != 5 || d.Acks != 2 || !d.Pending {
		t.Fatalf("dir = %+v", d)
	}
	for i := 0; i < 2; i++ {
		r.deliver(arch.Msg{Type: arch.MsgIACK, Addr: testAddr, Src: 2}, true)
	}
	if d := r.dir(testAddr); d.Pending {
		t.Fatal("pending stuck after acks")
	}
}

func TestBitvecLocalBitOnLocalMiss(t *testing.T) {
	r := newBitvecRig(t, 3)
	addr := r.cfg.NodeBase(3) + 0x4000 // homed at node 3
	r.deliver(arch.Msg{Type: arch.MsgGET, Addr: addr, Src: 3, Req: 3}, false)
	d := r.dir(addr)
	if len(d.Sharers) != 1 || d.Sharers[0] != 3 {
		t.Fatalf("own presence bit not set: %v", d.Sharers)
	}
	r.deliver(arch.Msg{Type: arch.MsgRPL, Addr: addr, Src: 3, Req: 3}, false)
	if d := r.dir(addr); len(d.Sharers) != 0 {
		t.Fatalf("hint did not clear presence: %v", d.Sharers)
	}
}

func TestBitvecOwnershipTransfer(t *testing.T) {
	r := newBitvecRig(t, 0)
	r.deliver(arch.Msg{Type: arch.MsgGETX, Addr: testAddr, Src: 2, Req: 2}, true)
	sends := r.deliver(arch.Msg{Type: arch.MsgGETX, Addr: testAddr, Src: 7, Req: 7}, true)
	if len(sends) != 1 || sends[0].Type != arch.MsgFwdGETX || sends[0].Dst != 2 {
		t.Fatalf("sends = %+v", sends)
	}
	r.deliver(arch.Msg{Type: arch.MsgXFER, Addr: testAddr, Src: 2, Req: 7}, true)
	d := r.dir(testAddr)
	if !d.Dirty || d.Owner != 7 || d.Pending {
		t.Fatalf("dir = %+v", d)
	}
	// The old owner's presence bit moved to the new owner.
	if len(d.Sharers) != 1 || d.Sharers[0] != 7 {
		t.Fatalf("presence after transfer = %v", d.Sharers)
	}
}

func TestBitvecWritebackClearsOwner(t *testing.T) {
	r := newBitvecRig(t, 0)
	r.deliver(arch.Msg{Type: arch.MsgGETX, Addr: testAddr, Src: 4, Req: 4}, true)
	r.deliver(arch.Msg{Type: arch.MsgWB, Addr: testAddr, Src: 4}, true)
	d := r.dir(testAddr)
	if d.Dirty || len(d.Sharers) != 0 {
		t.Fatalf("dir = %+v", d)
	}
}

// TestBitvecUsesFFS verifies the invalidation fan-out actually executes
// find-first-set (the showcase special instruction).
func TestBitvecUsesFFS(t *testing.T) {
	r := newBitvecRig(t, 0)
	for _, n := range []arch.NodeID{1, 2} {
		r.deliver(arch.Msg{Type: arch.MsgGET, Addr: testAddr, Src: n, Req: n}, true)
	}
	before := r.pp.Stats.Special
	r.deliver(arch.Msg{Type: arch.MsgGETX, Addr: testAddr, Src: 9, Req: 9}, true)
	if r.pp.Stats.Special == before {
		t.Fatal("no special instructions executed in the fan-out")
	}
}

// TestBitvecDifferential reuses the random-op differential driver against
// the bit-vector handlers; the reference model's multiset degenerates to a
// set because presence bits cannot duplicate.
func TestBitvecDifferential(t *testing.T) {
	const self = arch.NodeID(0)
	r := newBitvecRig(t, self)
	r.env.pcKind = 1
	ref := newRefDir()
	seq := []uint16{0x11, 0x2a, 0x102, 0x31, 0x83, 0x44, 0x61, 0x19, 0x22, 0x3b, 0x54}
	for _, op := range seq {
		src := arch.NodeID(op>>3) % 8
		var mt arch.MsgType
		switch op & 7 {
		case 0, 1:
			mt = arch.MsgGET
		case 2:
			mt = arch.MsgGETX
		case 3:
			mt = arch.MsgWB
		case 4:
			mt = arch.MsgRPL
		default:
			continue
		}
		refApplied := ref.apply(mt, src, self)
		_ = refApplied
		r.deliver(arch.Msg{Type: mt, Addr: testAddr, Src: src, Req: src}, src != self)
		for ref.acks > 0 {
			r.deliver(arch.Msg{Type: arch.MsgIACK, Addr: testAddr, Src: 1}, true)
			ref.apply(arch.MsgIACK, 1, self)
		}
		if !r.compareBitvec(ref) {
			t.Fatalf("divergence after %v from %d", mt, src)
		}
	}
}

// compareBitvec compares against the model with presence-bit semantics: the
// home's own bit doubles as LOCAL, and sharers are a set.
func (r *handlerRig) compareBitvec(ref *refDir) bool {
	d := r.dir(testAddr)
	if d.Dirty != ref.dirty || d.Pending != ref.pending || d.Acks != ref.acks {
		r.t.Logf("asm = %+v ref = %+v", d, ref)
		return false
	}
	if d.Dirty && d.Owner != ref.owner {
		r.t.Logf("owner: asm %d ref %d", d.Owner, ref.owner)
		return false
	}
	got := map[arch.NodeID]bool{}
	for _, s := range d.Sharers {
		got[s] = true
	}
	want := map[arch.NodeID]bool{}
	for s := range ref.sharers {
		want[s] = true
	}
	if ref.local {
		want[r.self] = true
	}
	if d.Dirty {
		// The owner's presence bit stays set while dirty; the model tracks
		// ownership separately.
		want[ref.owner] = true
	}
	if len(got) != len(want) {
		r.t.Logf("presence: asm %v want %v", got, want)
		return false
	}
	for s := range want {
		if !got[s] {
			r.t.Logf("presence: asm %v want %v", got, want)
			return false
		}
	}
	return true
}
