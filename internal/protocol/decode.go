package protocol

import (
	"fmt"

	"flashsim/internal/arch"
)

// DirInfo is a decoded directory header, for tests and invariant checks.
type DirInfo struct {
	Dirty    bool
	Pending  bool
	Local    bool
	Overflow bool
	Owner    arch.NodeID
	Sharers  []arch.NodeID
	Acks     int
}

// Decode reads the directory state of localLine from a node's protocol
// memory image, for either protocol program.
func (l Layout) Decode(mem []uint64, localLine uint64) (DirInfo, error) {
	if l.Proto == arch.ProtoBitVector {
		return l.decodeBitvec(mem, localLine), nil
	}
	w := mem[l.DirOffset(localLine)/8]
	d := DirInfo{
		Dirty:    w>>BDirty&1 == 1,
		Pending:  w>>BPending&1 == 1,
		Local:    w>>BLocal&1 == 1,
		Overflow: w>>BOvfl&1 == 1,
		Owner:    arch.NodeID(w >> OwnerPos & (1<<OwnerW - 1)),
		Acks:     int(w >> AckPos & (1<<AckW - 1)),
	}
	if w>>BList&1 == 1 {
		idx := w >> HeadPos & (1<<HeadW - 1)
		for steps := 0; ; steps++ {
			if steps > int(l.PoolSize) {
				return d, fmt.Errorf("protocol: sharer list cycle at line %d", localLine)
			}
			e := mem[(uint64(l.PtrBase)+idx*8)/8]
			d.Sharers = append(d.Sharers, arch.NodeID(e>>NodePos&(1<<NodeW-1)))
			next := e >> NextPos & (1<<NextW - 1)
			if next == NullPtr {
				break
			}
			idx = next
		}
	}
	return d, nil
}

// decodeBitvec reads a bit-vector directory header.
func (l Layout) decodeBitvec(mem []uint64, localLine uint64) DirInfo {
	w := mem[l.DirOffset(localLine)/8]
	d := DirInfo{
		Dirty:   w>>BDirty&1 == 1,
		Pending: w>>BPending&1 == 1,
		Owner:   arch.NodeID(w >> BVOwnerPos & (1<<BVOwnerW - 1)),
		Acks:    int(w >> BVAckPos & (1<<BVAckW - 1)),
	}
	vec := w >> BVPresPos & (1<<BVPresW - 1)
	for n := 0; n < BVPresW; n++ {
		if vec>>n&1 == 1 {
			d.Sharers = append(d.Sharers, arch.NodeID(n))
		}
	}
	return d
}

// FreeCount walks the free list given the current head index (held in the
// PP's r24 at run time) and returns its length; it errors on cycles.
func (l Layout) FreeCount(mem []uint64, head uint64) (int, error) {
	n := 0
	for head != NullPtr {
		if n > int(l.PoolSize) {
			return n, fmt.Errorf("protocol: free list cycle")
		}
		e := mem[(uint64(l.PtrBase)+head*8)/8]
		head = e >> NextPos & (1<<NextW - 1)
		n++
	}
	return n, nil
}
