package protocol

import (
	"testing"

	"flashsim/internal/arch"
	"flashsim/internal/ppisa"
	"flashsim/internal/ppsim"
)

// handlerRig executes protocol handlers directly against a PP with a
// recording environment, bypassing the full machine: a unit-test harness
// for the assembly.
type handlerRig struct {
	t    *testing.T
	pp   *ppsim.PP
	lay  Layout
	cfg  arch.Config
	env  *recEnv
	self arch.NodeID
}

type sentMsg struct {
	Type arch.MsgType
	Addr arch.Addr
	Dst  arch.NodeID
	Req  arch.NodeID
	Aux  uint64
	PI   bool
	Data bool
}

type recEnv struct {
	sends    []sentMsg
	memReads []uint64
	memWrts  []uint64
	pcKind   uint64 // response handed to WAITPC (1 = dirty data)
	pp       *ppsim.PP
}

func (e *recEnv) TrySend(h ppsim.OutHeader, dt uint64) bool {
	e.sends = append(e.sends, sentMsg{
		Type: arch.MsgType(h.Type),
		Addr: arch.Addr(h.Addr),
		Dst:  arch.NodeID(h.Dst),
		Req:  arch.NodeID(h.Req),
		Aux:  h.Aux,
		PI:   h.Iface == ppisa.SendPI,
		Data: h.Data,
	})
	return true
}
func (e *recEnv) MemRead(a, dt uint64)                        { e.memReads = append(e.memReads, a) }
func (e *recEnv) MemWrite(a, dt uint64)                       { e.memWrts = append(e.memWrts, a) }
func (e *recEnv) MDCFill(a uint64, wb bool, dt uint64) uint64 { return 29 }

func newHandlerRig(t *testing.T, self arch.NodeID) *handlerRig {
	t.Helper()
	cfg := arch.DefaultConfig()
	cfg.MemBytesPerNode = 1 << 20
	prog, err := Build(&cfg)
	if err != nil {
		t.Fatal(err)
	}
	env := &recEnv{}
	pp := ppsim.New(prog.Code, int(prog.Layout.MemBytes), ppsim.NewMDC(cfg.MDCSize, cfg.MDCWays), env)
	env.pp = pp
	prog.Layout.InitMemory(pp.Mem, self, cfg.NodeBase(self), cfg.Nodes)
	if st, _ := pp.Start("pp_init"); st != ppsim.StatusDone {
		t.Fatal("pp_init did not finish")
	}
	return &handlerRig{t: t, pp: pp, lay: prog.Layout, cfg: cfg, env: env, self: self}
}

// deliver runs the handler for message m as MAGIC would dispatch it.
func (r *handlerRig) deliver(m arch.Msg, viaNet bool) []sentMsg {
	r.t.Helper()
	isHome := r.cfg.HomeOf(m.Addr) == r.self
	jt, err := Dispatch(m.Type, viaNet, isHome)
	if err != nil {
		r.t.Fatal(err)
	}
	r.pp.InHeader(ppisa.HdrType, uint64(m.Type))
	r.pp.InHeader(ppisa.HdrAddr, uint64(m.Addr))
	r.pp.InHeader(ppisa.HdrSrc, uint64(m.Src))
	r.pp.InHeader(ppisa.HdrReq, uint64(m.Req))
	r.pp.InHeader(ppisa.HdrAux, uint64(m.Aux))
	r.pp.InHeader(ppisa.HdrSelf, uint64(r.self))
	if isHome {
		r.pp.InHeader(ppisa.HdrDirOff, r.lay.DirOffset(r.cfg.LocalLine(m.Addr)))
	} else {
		r.pp.InHeader(ppisa.HdrDirOff, uint64(r.cfg.HomeOf(m.Addr)))
	}
	r.env.sends = nil
	st, _ := r.pp.Start(jt.Entry)
	for st != ppsim.StatusDone {
		switch st {
		case ppsim.StatusWaitPC:
			r.pp.SetPCResponse(r.env.pcKind)
		case ppsim.StatusBlockedSend:
			// recEnv never blocks
			r.t.Fatal("unexpected send block")
		}
		st, _ = r.pp.Resume()
	}
	return r.env.sends
}

func (r *handlerRig) dir(a arch.Addr) DirInfo {
	r.t.Helper()
	d, err := r.lay.Decode(r.pp.Mem, r.cfg.LocalLine(a))
	if err != nil {
		r.t.Fatal(err)
	}
	return d
}

const testAddr = arch.Addr(0x4000)

func TestHandlerLocalGetClean(t *testing.T) {
	r := newHandlerRig(t, 0)
	sends := r.deliver(arch.Msg{Type: arch.MsgGET, Addr: testAddr, Src: 0, Req: 0}, false)
	if len(sends) != 1 || !sends[0].PI || !sends[0].Data || sends[0].Type != arch.MsgPUT {
		t.Fatalf("sends = %+v", sends)
	}
	if d := r.dir(testAddr); !d.Local || d.Dirty || d.Pending {
		t.Fatalf("dir = %+v", d)
	}
	if len(r.env.memReads) != 1 {
		t.Fatalf("memrd count = %d", len(r.env.memReads))
	}
}

func TestHandlerRemoteGetAddsSharer(t *testing.T) {
	r := newHandlerRig(t, 0)
	sends := r.deliver(arch.Msg{Type: arch.MsgGET, Addr: testAddr, Src: 3, Req: 3}, true)
	if len(sends) != 1 || sends[0].PI || sends[0].Type != arch.MsgPUT || sends[0].Dst != 3 {
		t.Fatalf("sends = %+v", sends)
	}
	d := r.dir(testAddr)
	if len(d.Sharers) != 1 || d.Sharers[0] != 3 {
		t.Fatalf("sharers = %v", d.Sharers)
	}
}

func TestHandlerGetXInvalidatesSharers(t *testing.T) {
	r := newHandlerRig(t, 0)
	for _, n := range []arch.NodeID{2, 3, 4} {
		r.deliver(arch.Msg{Type: arch.MsgGET, Addr: testAddr, Src: n, Req: n}, true)
	}
	r.deliver(arch.Msg{Type: arch.MsgGET, Addr: testAddr, Src: 0, Req: 0}, false) // local too
	sends := r.deliver(arch.Msg{Type: arch.MsgGETX, Addr: testAddr, Src: 5, Req: 5}, true)

	var invals []arch.NodeID
	var putx, piInval int
	for _, s := range sends {
		switch s.Type {
		case arch.MsgINVAL:
			invals = append(invals, s.Dst)
		case arch.MsgPUTX:
			putx++
			if s.Dst != 5 {
				t.Fatalf("PUTX to %d", s.Dst)
			}
		case arch.MsgPIInval:
			piInval++
		}
	}
	if len(invals) != 3 || putx != 1 || piInval != 1 {
		t.Fatalf("invals=%v putx=%d piInval=%d", invals, putx, piInval)
	}
	d := r.dir(testAddr)
	if !d.Dirty || d.Owner != 5 || !d.Pending || d.Acks != 3 || d.Local || len(d.Sharers) != 0 {
		t.Fatalf("dir = %+v", d)
	}
	// Acks drain the pending bit.
	for i := 0; i < 3; i++ {
		r.deliver(arch.Msg{Type: arch.MsgIACK, Addr: testAddr, Src: arch.NodeID(2 + i)}, true)
	}
	if d := r.dir(testAddr); d.Pending || d.Acks != 0 {
		t.Fatalf("after acks dir = %+v", d)
	}
}

func TestHandlerGetXSkipsRequesterSharer(t *testing.T) {
	r := newHandlerRig(t, 0)
	r.deliver(arch.Msg{Type: arch.MsgGET, Addr: testAddr, Src: 3, Req: 3}, true)
	r.deliver(arch.Msg{Type: arch.MsgGET, Addr: testAddr, Src: 4, Req: 4}, true)
	sends := r.deliver(arch.Msg{Type: arch.MsgGETX, Addr: testAddr, Src: 3, Req: 3}, true) // upgrade
	for _, s := range sends {
		if s.Type == arch.MsgINVAL && s.Dst == 3 {
			t.Fatal("invalidated the requester")
		}
	}
	d := r.dir(testAddr)
	if !d.Dirty || d.Owner != 3 || d.Acks != 1 {
		t.Fatalf("dir = %+v", d)
	}
}

func TestHandlerDirtyForwarding(t *testing.T) {
	r := newHandlerRig(t, 0)
	r.deliver(arch.Msg{Type: arch.MsgGETX, Addr: testAddr, Src: 2, Req: 2}, true)
	sends := r.deliver(arch.Msg{Type: arch.MsgGET, Addr: testAddr, Src: 3, Req: 3}, true)
	if len(sends) != 1 || sends[0].Type != arch.MsgFwdGET || sends[0].Dst != 2 || sends[0].Req != 3 {
		t.Fatalf("sends = %+v", sends)
	}
	if d := r.dir(testAddr); !d.Pending {
		t.Fatal("pending not set during forward")
	}
	// Requests NAK while pending.
	sends = r.deliver(arch.Msg{Type: arch.MsgGET, Addr: testAddr, Src: 4, Req: 4}, true)
	if len(sends) != 1 || sends[0].Type != arch.MsgNAK || sends[0].Dst != 4 {
		t.Fatalf("sends = %+v", sends)
	}
	// The sharing writeback resolves it: old owner and reader both share.
	sends = r.deliver(arch.Msg{Type: arch.MsgSWB, Addr: testAddr, Src: 2, Req: 3}, true)
	if len(sends) != 0 {
		t.Fatalf("SWB sent %+v", sends)
	}
	d := r.dir(testAddr)
	if d.Dirty || d.Pending || len(d.Sharers) != 2 {
		t.Fatalf("dir = %+v", d)
	}
	if len(r.env.memWrts) == 0 {
		t.Fatal("SWB did not write memory")
	}
}

func TestHandlerFwdGetAtDirtyNode(t *testing.T) {
	r := newHandlerRig(t, 2) // we are the dirty node, not the home
	r.env.pcKind = 1         // cache yields dirty data
	sends := r.deliver(arch.Msg{Type: arch.MsgFwdGET, Addr: testAddr, Src: 0, Req: 3}, true)
	var types []arch.MsgType
	for _, s := range sends {
		types = append(types, s.Type)
	}
	if len(sends) != 3 || sends[0].Type != arch.MsgPIDowngr ||
		sends[1].Type != arch.MsgPUT || sends[1].Dst != 3 || sends[1].Aux != 3 ||
		sends[2].Type != arch.MsgSWB || sends[2].Dst != 0 {
		t.Fatalf("sends = %v (%+v)", types, sends)
	}
}

func TestHandlerFwdGetRacedWriteback(t *testing.T) {
	r := newHandlerRig(t, 2)
	r.env.pcKind = 0 // cache no longer holds it
	sends := r.deliver(arch.Msg{Type: arch.MsgFwdGET, Addr: testAddr, Src: 0, Req: 3}, true)
	if len(sends) != 3 || sends[1].Type != arch.MsgPCLR || sends[1].Dst != 0 ||
		sends[2].Type != arch.MsgNAK || sends[2].Dst != 3 {
		t.Fatalf("sends = %+v", sends)
	}
}

func TestHandlerPclrGuards(t *testing.T) {
	r := newHandlerRig(t, 0)
	r.deliver(arch.Msg{Type: arch.MsgGETX, Addr: testAddr, Src: 2, Req: 2}, true)
	r.deliver(arch.Msg{Type: arch.MsgGET, Addr: testAddr, Src: 3, Req: 3}, true) // pending
	// A PCLR from a node that is NOT the recorded owner must be ignored.
	r.deliver(arch.Msg{Type: arch.MsgPCLR, Addr: testAddr, Src: 9}, true)
	if d := r.dir(testAddr); !d.Pending {
		t.Fatal("stale PCLR cleared pending")
	}
	// From the owner it clears.
	r.deliver(arch.Msg{Type: arch.MsgPCLR, Addr: testAddr, Src: 2}, true)
	if d := r.dir(testAddr); d.Pending {
		t.Fatal("owner PCLR did not clear pending")
	}
}

func TestHandlerWritebackGuards(t *testing.T) {
	r := newHandlerRig(t, 0)
	r.deliver(arch.Msg{Type: arch.MsgGETX, Addr: testAddr, Src: 2, Req: 2}, true)
	// Writeback from a non-owner: memory written (data is valid) but the
	// directory state must not change.
	r.deliver(arch.Msg{Type: arch.MsgWB, Addr: testAddr, Src: 7}, true)
	if d := r.dir(testAddr); !d.Dirty || d.Owner != 2 {
		t.Fatalf("stale WB corrupted dir: %+v", d)
	}
	r.deliver(arch.Msg{Type: arch.MsgWB, Addr: testAddr, Src: 2}, true)
	if d := r.dir(testAddr); d.Dirty {
		t.Fatal("owner WB did not clear dirty")
	}
}

func TestHandlerReplacementHints(t *testing.T) {
	r := newHandlerRig(t, 0)
	for _, n := range []arch.NodeID{2, 3, 4} {
		r.deliver(arch.Msg{Type: arch.MsgGET, Addr: testAddr, Src: n, Req: n}, true)
	}
	// Remove the middle, then head, then tail — every unlink path.
	r.deliver(arch.Msg{Type: arch.MsgRPL, Addr: testAddr, Src: 3}, true)
	if d := r.dir(testAddr); len(d.Sharers) != 2 {
		t.Fatalf("after mid removal: %v", d.Sharers)
	}
	r.deliver(arch.Msg{Type: arch.MsgRPL, Addr: testAddr, Src: 4}, true) // current head
	if d := r.dir(testAddr); len(d.Sharers) != 1 || d.Sharers[0] != 2 {
		t.Fatalf("after head removal: %v", d.Sharers)
	}
	r.deliver(arch.Msg{Type: arch.MsgRPL, Addr: testAddr, Src: 2}, true)
	if d := r.dir(testAddr); len(d.Sharers) != 0 {
		t.Fatalf("after last removal: %v", d.Sharers)
	}
	// Removing an absent sharer is a no-op.
	r.deliver(arch.Msg{Type: arch.MsgRPL, Addr: testAddr, Src: 9}, true)
	// Pool fully recovered.
	free, err := r.lay.FreeCount(r.pp.Mem, r.pp.Reg(24))
	if err != nil {
		t.Fatal(err)
	}
	if free != int(r.lay.PoolSize) {
		t.Fatalf("pool leak: free %d of %d", free, r.lay.PoolSize)
	}
}

func TestHandlerLocalHintAndWriteback(t *testing.T) {
	r := newHandlerRig(t, 0)
	r.deliver(arch.Msg{Type: arch.MsgGET, Addr: testAddr, Src: 0, Req: 0}, false)
	r.deliver(arch.Msg{Type: arch.MsgRPL, Addr: testAddr, Src: 0, Req: 0}, false)
	if d := r.dir(testAddr); d.Local {
		t.Fatal("local hint did not clear LOCAL")
	}
	r.deliver(arch.Msg{Type: arch.MsgGETX, Addr: testAddr, Src: 0, Req: 0}, false)
	if d := r.dir(testAddr); !d.Dirty || d.Owner != 0 || !d.Local {
		t.Fatalf("after local GETX: %+v", d)
	}
	r.deliver(arch.Msg{Type: arch.MsgWB, Addr: testAddr, Src: 0, Req: 0}, false)
	if d := r.dir(testAddr); d.Dirty || d.Local {
		t.Fatalf("after local WB: %+v", d)
	}
}

func TestHandlerRemoteForwarders(t *testing.T) {
	r := newHandlerRig(t, 2) // not the home of testAddr (home 0)
	for _, c := range []struct {
		in   arch.MsgType
		data bool
	}{{arch.MsgGET, false}, {arch.MsgGETX, false}, {arch.MsgWB, true}, {arch.MsgRPL, false}} {
		sends := r.deliver(arch.Msg{Type: c.in, Addr: testAddr, Src: 2, Req: 2}, false)
		if len(sends) != 1 || sends[0].PI || sends[0].Dst != 0 || sends[0].Type != c.in {
			t.Fatalf("%v forwarded as %+v", c.in, sends)
		}
		if sends[0].Data != c.data {
			t.Fatalf("%v data flag = %v", c.in, sends[0].Data)
		}
	}
}

func TestHandlerNakWhenOwnWritebackInFlight(t *testing.T) {
	r := newHandlerRig(t, 0)
	r.deliver(arch.Msg{Type: arch.MsgGETX, Addr: testAddr, Src: 0, Req: 0}, false)
	// Before the WB arrives, the local processor re-reads: NAK.
	sends := r.deliver(arch.Msg{Type: arch.MsgGET, Addr: testAddr, Src: 0, Req: 0}, false)
	if len(sends) != 1 || sends[0].Type != arch.MsgNAK || !sends[0].PI {
		t.Fatalf("sends = %+v", sends)
	}
}

// TestHandlerPoolOverflowBroadcast exhausts the pointer pool and verifies
// the protocol degrades to broadcast invalidation (the OVFL path).
func TestHandlerPoolOverflowBroadcast(t *testing.T) {
	r := newHandlerRig(t, 0)
	// Shrink the free list to two entries and re-run pp_init so the PP
	// reloads its cached free-list head.
	mem := r.pp.Mem
	base := uint64(r.lay.PtrBase)
	mem[(base+0)/8] = 1 << NextPos
	mem[(base+8)/8] = NullPtr << NextPos
	mem[GFreeHead/8] = 0
	if st, _ := r.pp.Start("pp_init"); st != ppsim.StatusDone {
		t.Fatal("pp_init")
	}
	// Three remote sharers: the third insert must overflow.
	for _, n := range []arch.NodeID{2, 3, 4} {
		r.deliver(arch.Msg{Type: arch.MsgGET, Addr: testAddr, Src: n, Req: n}, true)
	}
	d := r.dir(testAddr)
	if !d.Overflow {
		t.Fatalf("pool not overflowed: %+v", d)
	}
	if len(d.Sharers) != 2 {
		t.Fatalf("sharers = %v, want the two that fit", d.Sharers)
	}
	// A write must now broadcast to every node except self and requester.
	sends := r.deliver(arch.Msg{Type: arch.MsgGETX, Addr: testAddr, Src: 5, Req: 5}, true)
	invals := map[arch.NodeID]bool{}
	for _, s := range sends {
		if s.Type == arch.MsgINVAL {
			if invals[s.Dst] {
				t.Fatalf("duplicate INVAL to %d", s.Dst)
			}
			invals[s.Dst] = true
		}
	}
	if len(invals) != r.cfg.Nodes-2 {
		t.Fatalf("broadcast reached %d nodes, want %d", len(invals), r.cfg.Nodes-2)
	}
	if invals[0] || invals[5] {
		t.Fatal("broadcast must skip self and requester")
	}
	d = r.dir(testAddr)
	if d.Overflow || !d.Dirty || d.Owner != 5 || d.Acks != r.cfg.Nodes-2 {
		t.Fatalf("post-broadcast dir = %+v", d)
	}
	// The list entries were released back to the free list.
	free, err := r.lay.FreeCount(r.pp.Mem, r.pp.Reg(24))
	if err != nil {
		t.Fatal(err)
	}
	if free != 2 {
		t.Fatalf("free entries = %d, want 2", free)
	}
}

// TestPerInvalidationCost measures the marginal PP cycles per invalidation
// in the write-miss handler — the paper's "14 + 10 to 15 per invalidation"
// (Table 3.4).
func TestPerInvalidationCost(t *testing.T) {
	cost := func(nSharers int) uint64 {
		r := newHandlerRig(t, 0)
		for n := 0; n < nSharers; n++ {
			r.deliver(arch.Msg{Type: arch.MsgGET, Addr: testAddr, Src: arch.NodeID(n + 2), Req: arch.NodeID(n + 2)}, true)
		}
		before := r.pp.Stats.Pairs
		r.deliver(arch.Msg{Type: arch.MsgGETX, Addr: testAddr, Src: 1, Req: 1}, true)
		return r.pp.Stats.Pairs - before
	}
	base := cost(0)
	one := cost(1)
	four := cost(4)
	perInval := float64(four-one) / 3
	t.Logf("write miss: base %d cycles, +%d for first inval, %.1f per inval (paper: 14 + 10..15)", base, one-base, perInval)
	if perInval < 5 || perInval > 20 {
		t.Fatalf("per-invalidation cost %.1f outside plausible range", perInval)
	}
	if base < 8 || base > 25 {
		t.Fatalf("base write-miss cost %d outside plausible range", base)
	}
}
