package protocol

import (
	"flashsim/internal/arch"
	"testing"
)

func TestBuildAssembles(t *testing.T) {
	cfg := arch.DefaultConfig()
	p, err := Build(&cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("pairs=%d code=%dB entries=%d", len(p.Code.Pairs), p.Code.CodeBytes(), len(p.Code.Entries))
}
