package protocol

import (
	"fmt"

	"flashsim/internal/arch"
	"flashsim/internal/ppisa"
)

// Program bundles the scheduled handler image with its memory layout.
type Program struct {
	Code   *ppisa.Program
	Layout Layout
	Source *ppisa.Source // pre-scheduling form, for static analysis
}

// Build assembles and schedules the protocol for the given configuration.
// cfg.PPMode selects the Section 5.3 ablation variants.
func Build(cfg *arch.Config) (*Program, error) {
	l := NewLayout(cfg)
	text := handlerSource
	if cfg.Protocol == arch.ProtoBitVector {
		if cfg.Nodes > BVMaxNodes {
			return nil, fmt.Errorf("protocol: bit-vector directory supports at most %d nodes, got %d", BVMaxNodes, cfg.Nodes)
		}
		text = bitvecSource
	}
	src, err := ppisa.Assemble(text, l.Symbols())
	if err != nil {
		return nil, fmt.Errorf("protocol: %w", err)
	}
	scheduled := src
	mode := ppisa.DualIssue
	switch cfg.PPMode {
	case arch.PPSingleIssue:
		mode = ppisa.SingleIssue
	case arch.PPNoSpecial:
		scheduled = ppisa.SubstituteDLX(src)
		mode = ppisa.SingleIssue
	}
	return &Program{
		Code:   ppisa.Schedule(scheduled, mode),
		Layout: l,
		Source: src,
	}, nil
}

// JTEntry is one jump table entry: the handler to dispatch and whether the
// inbox should initiate a speculative memory read (Section 5.1).
type JTEntry struct {
	Entry string
	Spec  bool
}

// fromPI reports jump table entries for messages arriving from the
// processor interface; isHome selects the local/remote handler variant.
func fromPI(t arch.MsgType, isHome bool) (JTEntry, bool) {
	if isHome {
		switch t {
		case arch.MsgGET:
			return JTEntry{"pi_get_local", true}, true
		case arch.MsgGETX:
			return JTEntry{"pi_getx_local", true}, true
		case arch.MsgWB:
			return JTEntry{"pi_wb_local", false}, true
		case arch.MsgRPL:
			return JTEntry{"pi_rpl_local", false}, true
		}
		return JTEntry{}, false
	}
	switch t {
	case arch.MsgGET:
		return JTEntry{"pi_get_remote", false}, true
	case arch.MsgGETX:
		return JTEntry{"pi_getx_remote", false}, true
	case arch.MsgWB:
		return JTEntry{"pi_wb_remote", false}, true
	case arch.MsgRPL:
		return JTEntry{"pi_rpl_remote", false}, true
	}
	return JTEntry{}, false
}

// fromNet reports jump table entries for messages arriving from the network
// interface.
func fromNet(t arch.MsgType) (JTEntry, bool) {
	switch t {
	case arch.MsgGET:
		return JTEntry{"ni_get", true}, true
	case arch.MsgGETX:
		return JTEntry{"ni_getx", true}, true
	case arch.MsgWB:
		return JTEntry{"ni_wb", false}, true
	case arch.MsgRPL:
		return JTEntry{"ni_rpl", false}, true
	case arch.MsgFwdGET:
		return JTEntry{"ni_fwd_get", false}, true
	case arch.MsgFwdGETX:
		return JTEntry{"ni_fwd_getx", false}, true
	case arch.MsgINVAL:
		return JTEntry{"ni_inval", false}, true
	case arch.MsgPUT:
		return JTEntry{"ni_put", false}, true
	case arch.MsgPUTX:
		return JTEntry{"ni_putx", false}, true
	case arch.MsgNAK:
		return JTEntry{"ni_nak", false}, true
	case arch.MsgIACK:
		return JTEntry{"ni_iack", false}, true
	case arch.MsgSWB:
		return JTEntry{"ni_swb", false}, true
	case arch.MsgXFER:
		return JTEntry{"ni_xfer", false}, true
	case arch.MsgPCLR:
		return JTEntry{"ni_pclr", false}, true
	}
	return JTEntry{}, false
}

// Dispatch is the jump table lookup: it maps an incoming message to its
// handler. fromNet distinguishes the network interface from the processor
// interface; isHome reports whether this node is the home of the address.
func Dispatch(t arch.MsgType, viaNet, isHome bool) (JTEntry, error) {
	var e JTEntry
	var ok bool
	if viaNet {
		e, ok = fromNet(t)
	} else {
		e, ok = fromPI(t, isHome)
	}
	if !ok {
		return JTEntry{}, fmt.Errorf("protocol: no handler for %v (viaNet=%v, home=%v)", t, viaNet, isHome)
	}
	return e, nil
}
