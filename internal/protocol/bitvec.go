package protocol

// bitvecSource is an alternative cache-coherence protocol for MAGIC: a full
// bit-vector directory in the style of the original DASH machine. Each
// directory header carries a presence bit per node instead of a pointer to
// a sharer list, trading directory memory (unscalable beyond the vector
// width) for constant-time sharer bookkeeping and an invalidation fan-out
// driven by find-first-set over the vector.
//
// It exists because the paper's whole premise is that MAGIC can run
// *different* protocols: the same machine, jump table, and message set run
// either this program or the dynamic-pointer-allocation one, selected by
// arch.Config.Protocol. Handler entry names match the dynptr program, so
// Dispatch is shared.
//
// Header layout (64 bits):
//
//	bit 0        DIRTY
//	bit 1        PENDING
//	bits 8..39   presence vector (node i at bit 8+i; self bit = LOCAL)
//	bits 40..49  outstanding invalidation acks
//	bits 50..57  owner when DIRTY
const bitvecSource = `
pp_init:
	ld    r27, G_MYID(r0)
	done

; ---------------------------------------------------------------------------
; subroutine: send invalidations to every presence bit except node r4.
; H_ADDR must already be set. Clears the vector in r3; ack count in r9.
; Clobbers r5, r6, r10, r12. The fan-out is the protocol's showcase use of
; find-first-set.
; ---------------------------------------------------------------------------
inval_vector:
	add   r9, r0, r0
	li    r5, M_INVAL
	mth   H_TYPE, r5
	ext   r10, r3, PRES_POS, PRES_W
	andfi r3, r3, PRES_POS, PRES_W
	; drop the requester's own bit
	addi  r5, r0, 1
	sll   r5, r5, r4
	not   r5, r5
	and   r10, r10, r5
	; drop our own bit (the caller invalidates the local cache separately)
	addi  r5, r0, 1
	sll   r5, r5, r27
	not   r5, r5
	and   r10, r10, r5
.loop:
	beq   r10, r0, .done
	ffs   r12, r10
	mth   H_DST, r12
	send  NET
	addi  r9, r9, 1
	addi  r5, r0, 1
	sll   r5, r5, r12
	xor   r10, r10, r5
	j     .loop
.done:
	jr    r28

; shared tails -----------------------------------------------------------------
nak_pi:
	li    r5, M_NAK
	mth   H_TYPE, r5
	send  PI
	done
nak_net:
	li    r5, M_NAK
	mth   H_TYPE, r5
	mfh   r4, H_SRC
	mth   H_DST, r4
	send  NET
	done

; local read miss ---------------------------------------------------------------
pi_get_local:
	mfh   r2, H_DIROFF
	ld    r3, 0(r2)
	bbs   r3, B_PENDING, nak_pi
	bbs   r3, B_DIRTY, .dirty
	addi  r5, r27, PRES_POS
	addi  r6, r0, 1
	sll   r6, r6, r5
	or    r3, r3, r6
	st    r3, 0(r2)
	mfh   r1, H_ADDR
	li    r5, M_PUT
	mth   H_TYPE, r5
	mth   H_AUX, r0
	memrd r1
	send  PI|DATA
	done
.dirty:
	ext   r4, r3, OWNER_POS, OWNER_W
	beq   r4, r27, nak_pi
	orfi  r3, r3, B_PENDING, 1
	st    r3, 0(r2)
	mth   H_DST, r4
	mth   H_REQ, r27
	li    r5, M_FWDGET
	mth   H_TYPE, r5
	send  NET
	done

; local write miss --------------------------------------------------------------
pi_getx_local:
	mfh   r2, H_DIROFF
	ld    r3, 0(r2)
	bbs   r3, B_PENDING, nak_pi
	bbs   r3, B_DIRTY, .dirty
	mfh   r1, H_ADDR
	add   r4, r27, r0
	jal   inval_vector
	orfi  r3, r3, B_DIRTY, 1
	ins   r3, r27, OWNER_POS, OWNER_W
	ins   r3, r9, ACK_POS, ACK_W
	addi  r5, r27, PRES_POS
	addi  r6, r0, 1
	sll   r6, r6, r5
	or    r3, r3, r6
	beq   r9, r0, .noack
	orfi  r3, r3, B_PENDING, 1
.noack:
	st    r3, 0(r2)
	li    r5, M_PUTX
	mth   H_TYPE, r5
	mth   H_AUX, r0
	memrd r1
	send  PI|DATA
	done
.dirty:
	ext   r4, r3, OWNER_POS, OWNER_W
	beq   r4, r27, nak_pi
	orfi  r3, r3, B_PENDING, 1
	st    r3, 0(r2)
	mth   H_DST, r4
	mth   H_REQ, r27
	li    r5, M_FWDGETX
	mth   H_TYPE, r5
	send  NET
	done

; local writeback / hint --------------------------------------------------------
pi_wb_local:
	mfh   r2, H_DIROFF
	ld    r3, 0(r2)
	mfh   r1, H_ADDR
	memwr r1
	bbc   r3, B_DIRTY, .out
	ext   r4, r3, OWNER_POS, OWNER_W
	bne   r4, r27, .out
	andfi r3, r3, B_DIRTY, 1
	addi  r5, r27, PRES_POS
	addi  r6, r0, 1
	sll   r6, r6, r5
	not   r6, r6
	and   r3, r3, r6
	ext   r6, r3, ACK_POS, ACK_W
	bne   r6, r0, .st
	andfi r3, r3, B_PENDING, 1
.st:
	st    r3, 0(r2)
.out:
	done

pi_rpl_local:
	mfh   r2, H_DIROFF
	ld    r3, 0(r2)
	bbs   r3, B_DIRTY, .out
	addi  r5, r27, PRES_POS
	addi  r6, r0, 1
	sll   r6, r6, r5
	not   r6, r6
	and   r3, r3, r6
	st    r3, 0(r2)
.out:
	done

; remote-address forwards --------------------------------------------------------
pi_get_remote:
	mfh   r4, H_DIROFF
	mth   H_DST, r4
	send  NET
	done

pi_getx_remote:
	mfh   r4, H_DIROFF
	mth   H_DST, r4
	send  NET
	done

pi_wb_remote:
	mfh   r4, H_DIROFF
	mth   H_DST, r4
	send  NET|DATA
	done

pi_rpl_remote:
	mfh   r4, H_DIROFF
	mth   H_DST, r4
	send  NET
	done

; read at home from remote -------------------------------------------------------
ni_get:
	mfh   r2, H_DIROFF
	ld    r3, 0(r2)
	bbs   r3, B_PENDING, nak_net
	bbs   r3, B_DIRTY, .dirty
	mfh   r4, H_SRC
	addi  r5, r4, PRES_POS
	addi  r6, r0, 1
	sll   r6, r6, r5
	or    r3, r3, r6
	st    r3, 0(r2)
	mfh   r1, H_ADDR
	li    r5, M_PUT
	mth   H_TYPE, r5
	mth   H_AUX, r0
	memrd r1
	send  NET|DATA
	done
.dirty:
	ext   r4, r3, OWNER_POS, OWNER_W
	beq   r4, r27, .local
	mfh   r6, H_SRC
	beq   r4, r6, nak_net
	orfi  r3, r3, B_PENDING, 1
	st    r3, 0(r2)
	mth   H_DST, r4
	mth   H_REQ, r6
	li    r5, M_FWDGET
	mth   H_TYPE, r5
	send  NET
	done
.local:
	li    r5, M_PIDOWNGR
	mth   H_TYPE, r5
	send  PI
	waitpc
	mfh   r6, H_PCKIND
	beq   r6, r0, nak_net
	mfh   r1, H_ADDR
	memwr r1
	andfi r3, r3, B_DIRTY, 1
	mfh   r4, H_SRC
	addi  r5, r4, PRES_POS
	addi  r6, r0, 1
	sll   r6, r6, r5
	or    r3, r3, r6
	addi  r5, r27, PRES_POS
	addi  r6, r0, 1
	sll   r6, r6, r5
	or    r3, r3, r6
	st    r3, 0(r2)
	mfh   r4, H_SRC
	mth   H_DST, r4
	li    r5, M_PUT
	mth   H_TYPE, r5
	addi  r5, r0, 1
	mth   H_AUX, r5
	send  NET|DATA
	done

; write at home from remote ------------------------------------------------------
ni_getx:
	mfh   r2, H_DIROFF
	ld    r3, 0(r2)
	bbs   r3, B_PENDING, nak_net
	bbs   r3, B_DIRTY, .dirty
	mfh   r1, H_ADDR
	; invalidate our own copy if present
	srl   r6, r3, r27
	srli  r6, r6, PRES_POS
	andi  r6, r6, 1
	beq   r6, r0, .noloc
	li    r5, M_PIINVAL
	mth   H_TYPE, r5
	send  PI
.noloc:
	mfh   r4, H_SRC
	jal   inval_vector
	orfi  r3, r3, B_DIRTY, 1
	mfh   r4, H_SRC
	ins   r3, r4, OWNER_POS, OWNER_W
	ins   r3, r9, ACK_POS, ACK_W
	addi  r5, r4, PRES_POS
	addi  r6, r0, 1
	sll   r6, r6, r5
	or    r3, r3, r6
	beq   r9, r0, .noack
	orfi  r3, r3, B_PENDING, 1
.noack:
	st    r3, 0(r2)
	mth   H_DST, r4
	li    r5, M_PUTX
	mth   H_TYPE, r5
	mth   H_AUX, r0
	memrd r1
	send  NET|DATA
	done
.dirty:
	ext   r4, r3, OWNER_POS, OWNER_W
	beq   r4, r27, .local
	mfh   r6, H_SRC
	beq   r4, r6, nak_net
	orfi  r3, r3, B_PENDING, 1
	st    r3, 0(r2)
	mth   H_DST, r4
	mth   H_REQ, r6
	li    r5, M_FWDGETX
	mth   H_TYPE, r5
	send  NET
	done
.local:
	li    r5, M_PIFLUSH
	mth   H_TYPE, r5
	send  PI
	waitpc
	mfh   r6, H_PCKIND
	beq   r6, r0, nak_net
	mfh   r1, H_ADDR
	memwr r1
	addi  r5, r27, PRES_POS
	addi  r6, r0, 1
	sll   r6, r6, r5
	not   r6, r6
	and   r3, r3, r6
	mfh   r4, H_SRC
	ins   r3, r4, OWNER_POS, OWNER_W
	addi  r5, r4, PRES_POS
	addi  r6, r0, 1
	sll   r6, r6, r5
	or    r3, r3, r6
	st    r3, 0(r2)
	mth   H_DST, r4
	li    r5, M_PUTX
	mth   H_TYPE, r5
	addi  r5, r0, 1
	mth   H_AUX, r5
	send  NET|DATA
	done

; writeback / hint at home -------------------------------------------------------
ni_wb:
	mfh   r2, H_DIROFF
	ld    r3, 0(r2)
	mfh   r1, H_ADDR
	memwr r1
	bbc   r3, B_DIRTY, .out
	ext   r4, r3, OWNER_POS, OWNER_W
	mfh   r5, H_SRC
	bne   r4, r5, .out
	andfi r3, r3, B_DIRTY, 1
	addi  r5, r4, PRES_POS
	addi  r6, r0, 1
	sll   r6, r6, r5
	not   r6, r6
	and   r3, r3, r6
	ext   r6, r3, ACK_POS, ACK_W
	bne   r6, r0, .st
	andfi r3, r3, B_PENDING, 1
.st:
	st    r3, 0(r2)
.out:
	done

ni_rpl:
	mfh   r2, H_DIROFF
	ld    r3, 0(r2)
	bbs   r3, B_DIRTY, .out
	mfh   r4, H_SRC
	addi  r5, r4, PRES_POS
	addi  r6, r0, 1
	sll   r6, r6, r5
	not   r6, r6
	and   r3, r3, r6
	st    r3, 0(r2)
.out:
	done

; forwarded requests at the dirty node --------------------------------------------
ni_fwd_get:
	li    r5, M_PIDOWNGR
	mth   H_TYPE, r5
	send  PI
	waitpc
	mfh   r6, H_PCKIND
	beq   r6, r0, fwd_gone
	mfh   r4, H_REQ
	mth   H_DST, r4
	li    r5, M_PUT
	mth   H_TYPE, r5
	addi  r5, r0, 3
	mth   H_AUX, r5
	send  NET|DATA
	mfh   r4, H_SRC
	mth   H_DST, r4
	li    r5, M_SWB
	mth   H_TYPE, r5
	send  NET|DATA
	done

ni_fwd_getx:
	li    r5, M_PIFLUSH
	mth   H_TYPE, r5
	send  PI
	waitpc
	mfh   r6, H_PCKIND
	beq   r6, r0, fwd_gone
	mfh   r4, H_REQ
	mth   H_DST, r4
	li    r5, M_PUTX
	mth   H_TYPE, r5
	addi  r5, r0, 3
	mth   H_AUX, r5
	send  NET|DATA
	mfh   r4, H_SRC
	mth   H_DST, r4
	li    r5, M_XFER
	mth   H_TYPE, r5
	send  NET
	done

fwd_gone:
	mfh   r4, H_SRC
	mth   H_DST, r4
	li    r5, M_PCLR
	mth   H_TYPE, r5
	send  NET
	mfh   r4, H_REQ
	mth   H_DST, r4
	li    r5, M_NAK
	mth   H_TYPE, r5
	send  NET
	done

; invalidation at a sharer ---------------------------------------------------------
ni_inval:
	li    r5, M_PIINVAL
	mth   H_TYPE, r5
	send  PI
	li    r5, M_IACK
	mth   H_TYPE, r5
	send  NET
	done

; replies at the requester ----------------------------------------------------------
ni_put:
	send  PI|DATA
	done

ni_putx:
	send  PI|DATA
	done

ni_nak:
	send  PI
	done

; replies at the home ----------------------------------------------------------------
ni_swb:
	mfh   r2, H_DIROFF
	ld    r3, 0(r2)
	mfh   r1, H_ADDR
	memwr r1
	bbc   r3, B_DIRTY, .out
	ext   r4, r3, OWNER_POS, OWNER_W
	mfh   r5, H_SRC
	bne   r4, r5, .out
	andfi r3, r3, B_DIRTY, 2
	addi  r5, r4, PRES_POS
	addi  r6, r0, 1
	sll   r6, r6, r5
	or    r3, r3, r6
	mfh   r4, H_REQ
	addi  r5, r4, PRES_POS
	addi  r6, r0, 1
	sll   r6, r6, r5
	or    r3, r3, r6
	st    r3, 0(r2)
.out:
	done

ni_xfer:
	mfh   r2, H_DIROFF
	ld    r3, 0(r2)
	bbc   r3, B_DIRTY, .out
	ext   r4, r3, OWNER_POS, OWNER_W
	mfh   r5, H_SRC
	bne   r4, r5, .out
	; hand ownership over: clear the old owner's presence bit, set the new
	addi  r5, r4, PRES_POS
	addi  r6, r0, 1
	sll   r6, r6, r5
	not   r6, r6
	and   r3, r3, r6
	mfh   r6, H_REQ
	ins   r3, r6, OWNER_POS, OWNER_W
	addi  r5, r6, PRES_POS
	addi  r7, r0, 1
	sll   r7, r7, r5
	or    r3, r3, r7
	andfi r3, r3, B_PENDING, 1
	st    r3, 0(r2)
.out:
	done

ni_pclr:
	mfh   r2, H_DIROFF
	ld    r3, 0(r2)
	bbc   r3, B_DIRTY, .out
	ext   r4, r3, OWNER_POS, OWNER_W
	mfh   r5, H_SRC
	bne   r4, r5, .out
	andfi r3, r3, B_PENDING, 1
	st    r3, 0(r2)
.out:
	done

ni_iack:
	mfh   r2, H_DIROFF
	ld    r3, 0(r2)
	ext   r6, r3, ACK_POS, ACK_W
	addi  r6, r6, -1
	ins   r3, r6, ACK_POS, ACK_W
	bne   r6, r0, .st
	andfi r3, r3, B_PENDING, 1
.st:
	st    r3, 0(r2)
	done
`

// Bit-vector header fields.
const (
	BVPresPos, BVPresW   = 8, 32
	BVAckPos, BVAckW     = 40, 10
	BVOwnerPos, BVOwnerW = 50, 8
	// BVMaxNodes bounds the presence vector.
	BVMaxNodes = BVPresW
)
