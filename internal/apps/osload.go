package apps

import (
	"fmt"

	"flashsim/internal/arch"
	"flashsim/internal/workload"
)

// BuildOS constructs the multiprogramming workload: N concurrent "makes" of
// a small C program, standing in for the paper's SimOS/IRIX measurement.
// Each process reads shared source files through a locked file cache,
// runs compiler-like passes (streaming scans and pointer-chasing over its
// heap), writes object files, and links — interleaved with kernel activity
// (run-queue and VM-table updates under fine-grained locks) tuned so
// roughly half the references come from the kernel model. User and kernel
// pages follow the machine placement policy: the paper's round-robin
// default, or node-zero to reproduce the original non-NUMA IRIX port of
// Section 4.3.
func BuildOS(w *workload.World, p Params) (*App, error) {
	procs := p.Procs
	heapWords := p.scaled(32 << 10) // per-process heap
	const blockWords = 16           // 128-byte file blocks
	srcBlocks := p.scaled(128)      // per source file
	if srcBlocks < 4 {
		srcBlocks = 4
	}

	pol := w.Cfg.Placement
	lockHome := func(i int) arch.NodeID {
		if pol == arch.PlaceNodeZero {
			return 0
		}
		return arch.NodeID(i % w.Cfg.Nodes)
	}

	// Shared kernel structures.
	const nLocks = 16
	fsLocks := make([]*workload.Lock, nLocks)
	for i := range fsLocks {
		fsLocks[i] = w.NewLock(lockHome(i))
	}
	runqLock := w.NewLock(lockHome(0))
	runq := w.NewArray(64)
	vmLock := w.NewLock(lockHome(1))
	vmTable := w.NewArray(procs * 64)

	// File cache: two shared source files plus per-process object files and
	// executables, placed by policy.
	objBlocks := srcBlocks / 2
	totalBlocks := 2*srcBlocks + procs*(2*objBlocks+objBlocks)
	fcache := w.NewArray(totalBlocks * blockWords)
	blockAddr := func(b, word int) arch.Addr { return fcache.Addr(b*blockWords + word) }
	srcBase := func(f int) int { return f * srcBlocks }
	objBase := func(pid, f int) int { return 2*srcBlocks + pid*3*objBlocks + f*objBlocks }
	exeBase := func(pid int) int { return 2*srcBlocks + pid*3*objBlocks + 2*objBlocks }

	// Per-process heaps, placed by policy (round-robin pages: the paper's
	// NUMA-oblivious IRIX allocator).
	heaps := make([]*workload.Array, procs)
	for i := range heaps {
		heaps[i] = w.NewArray(heapWords)
	}
	results := w.NewArrayBlocked(procs, procs)
	bar := w.NewBarrier(procs, 0)

	// Deterministic source file contents.
	rng := uint64(0xBE5466CF34E90C6C)
	for b := 0; b < 2*srcBlocks; b++ {
		for j := 0; j < blockWords; j++ {
			rng ^= rng << 13
			rng ^= rng >> 7
			rng ^= rng << 17
			*w.M.Word(blockAddr(b, j)) = rng % 4096
		}
	}

	// kernelWork models a syscall/fault path: run-queue touch plus a VM
	// table update under their locks.
	kernelWork := func(c *workload.Ctx, pid int) {
		runqLock.Acquire(c)
		v := c.ReadU(runq.Addr(pid % 64))
		c.WriteU(runq.Addr(pid%64), v+1)
		c.Busy(60)
		runqLock.Release(c)
		vmLock.Acquire(c)
		slot := vmTable.Addr(pid*64 + int(v)%64)
		c.WriteU(slot, c.ReadU(slot)+1)
		c.Busy(40)
		vmLock.Release(c)
	}

	readBlock := func(c *workload.Ctx, b int) uint64 {
		l := fsLocks[b%nLocks]
		l.Acquire(c)
		sum := uint64(0)
		for j := 0; j < blockWords; j++ {
			sum += c.ReadU(blockAddr(b, j))
			c.Busy(4)
		}
		l.Release(c)
		return sum
	}
	writeBlock := func(c *workload.Ctx, b int, seed uint64) {
		l := fsLocks[b%nLocks]
		l.Acquire(c)
		for j := 0; j < blockWords; j++ {
			c.WriteU(blockAddr(b, j), seed+uint64(j))
			c.Busy(4)
		}
		l.Release(c)
	}

	run := func(c *workload.Ctx) {
		pid := c.ID
		heap := heaps[pid]
		var check uint64
		for f := 0; f < 2; f++ {
			// Read the (shared) source file through the file cache.
			var fsum uint64
			for b := 0; b < srcBlocks; b++ {
				fsum += readBlock(c, srcBase(f)+b)
				if b%8 == 0 {
					kernelWork(c, pid)
				}
			}
			// Compiler passes over the heap: a streaming scan (lexing), a
			// pointer-chase (AST walking), and a streaming write (codegen).
			for i := 0; i < heapWords; i++ {
				c.WriteU(heap.Addr(i), fsum+uint64(i)*2654435761)
				c.Busy(6)
				if i%4096 == 0 {
					kernelWork(c, pid)
				}
			}
			idx := int(fsum) % heapWords
			for step := 0; step < heapWords/4; step++ {
				v := c.ReadU(heap.Addr(idx))
				check += v
				idx = int(v % uint64(heapWords))
				c.Busy(10)
				if step%4096 == 0 {
					kernelWork(c, pid)
				}
			}
			// Object file output.
			for b := 0; b < objBlocks; b++ {
				writeBlock(c, objBase(pid, f)+b, check+uint64(b))
				if b%8 == 0 {
					kernelWork(c, pid)
				}
			}
		}
		// Link: read both objects, write the executable.
		for f := 0; f < 2; f++ {
			for b := 0; b < objBlocks; b++ {
				check += readBlock(c, objBase(pid, f)+b)
			}
		}
		for b := 0; b < objBlocks; b++ {
			writeBlock(c, exeBase(pid)+b, check)
			if b%8 == 0 {
				kernelWork(c, pid)
			}
		}
		c.WriteU(results.Addr(pid), check)
		bar.Wait(c)
	}

	verify := func() error {
		// Native mirror of one process's deterministic computation: source
		// files are read-only and private heaps are disjoint, so each
		// process's checksum is independent of interleaving.
		native := func(pid int) uint64 {
			var check uint64
			heap := make([]uint64, heapWords)
			for f := 0; f < 2; f++ {
				var fsum uint64
				for b := 0; b < srcBlocks; b++ {
					for j := 0; j < blockWords; j++ {
						fsum += *w.M.Word(blockAddr(srcBase(f)+b, j))
					}
				}
				for i := 0; i < heapWords; i++ {
					heap[i] = fsum + uint64(i)*2654435761
				}
				idx := int(fsum) % heapWords
				for step := 0; step < heapWords/4; step++ {
					v := heap[idx]
					check += v
					idx = int(v % uint64(heapWords))
				}
			}
			// Link phase: object block b of file f holds (check_f + b) + j;
			// readBlock sums the 16 words of each.
			perBlockBase := func(seed uint64) uint64 {
				s := uint64(0)
				for j := 0; j < blockWords; j++ {
					s += seed + uint64(j)
				}
				return s
			}
			// Both files' object blocks were written with the then-current
			// check value; file 0's blocks used the post-file-0 check and
			// file 1's the final compile check. Reproduce the sequence:
			// (the per-file checks accumulate, so rerun with tracking).
			checks := [2]uint64{}
			{
				var ck uint64
				h := make([]uint64, heapWords)
				for f := 0; f < 2; f++ {
					var fsum uint64
					for b := 0; b < srcBlocks; b++ {
						for j := 0; j < blockWords; j++ {
							fsum += *w.M.Word(blockAddr(srcBase(f)+b, j))
						}
					}
					for i := 0; i < heapWords; i++ {
						h[i] = fsum + uint64(i)*2654435761
					}
					idx := int(fsum) % heapWords
					for step := 0; step < heapWords/4; step++ {
						v := h[idx]
						ck += v
						idx = int(v % uint64(heapWords))
					}
					checks[f] = ck
				}
			}
			for f := 0; f < 2; f++ {
				for b := 0; b < objBlocks; b++ {
					check += perBlockBase(checks[f] + uint64(b))
				}
			}
			return check
		}
		for pid := 0; pid < procs; pid++ {
			want := native(pid)
			got := *w.M.Word(results.Addr(pid))
			if got != want {
				return fmt.Errorf("os: process %d checksum = %d, want %d", pid, got, want)
			}
			if gw := *w.M.Word(blockAddr(exeBase(pid), 3)); gw != got+3 {
				return fmt.Errorf("os: process %d executable word = %d, want %d", pid, gw, got+3)
			}
		}
		return nil
	}

	return &App{Name: "os", Run: run, Verify: verify}, nil
}
