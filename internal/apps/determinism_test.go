package apps

import (
	"testing"

	"flashsim/internal/arch"
)

// Every application must be cycle-deterministic: two runs of the same
// configuration produce identical execution times (the foundation for all
// A/B comparisons in the experiments).
func TestAppsDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	scales := map[string]int{
		"fft": 256, "lu": 8, "radix": 64, "ocean": 8,
		"barnes": 32, "mp3d": 50, "os": 16,
	}
	for _, name := range Names {
		name := name
		t.Run(name, func(t *testing.T) {
			cfg := smallConfig(arch.KindFLASH, 0)
			if name == "os" {
				cfg.Placement = arch.PlaceRoundRobin
			}
			m1, _ := runApp(t, name, cfg, Params{Scale: scales[name]})
			m2, _ := runApp(t, name, cfg, Params{Scale: scales[name]})
			if m1.Elapsed != m2.Elapsed {
				t.Fatalf("%s nondeterministic: %d vs %d cycles", name, m1.Elapsed, m2.Elapsed)
			}
		})
	}
}

// The bit-vector protocol must run every application correctly too.
func TestAppsOnBitVector(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	scales := map[string]int{"fft": 256, "radix": 64, "mp3d": 50}
	for name, sc := range scales {
		cfg := smallConfig(arch.KindFLASH, 0)
		cfg.Protocol = arch.ProtoBitVector
		runApp(t, name, cfg, Params{Scale: sc})
	}
}

// Small caches force the full writeback/replacement-hint machinery through
// every application.
func TestAppsSmallCache(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	scales := map[string]int{"lu": 8, "radix": 64, "mp3d": 50, "barnes": 32}
	for name, sc := range scales {
		runApp(t, name, smallConfig(arch.KindFLASH, 8<<10), Params{Scale: sc})
	}
}
