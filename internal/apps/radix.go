package apps

import (
	"fmt"
	"sort"

	"flashsim/internal/workload"
)

// BuildRadix constructs the SPLASH-2 parallel radix sort: per digit, each
// processor histograms its own block of keys, the processors cooperatively
// compute global bucket offsets, and every key is written to its rank in
// the destination array — a scattered all-to-all write pattern. The misses
// it induces (Table 4.1: 76% "local dirty remote") come from re-reading
// your own block after remote processors wrote it.
func BuildRadix(w *workload.World, p Params) (*App, error) {
	n := p.scaled(256 * 1024) // paper: 256K integer keys
	const radix = 256
	const digits = 4 // 32-bit keys
	procs := p.Procs
	per := (n + procs - 1) / procs
	n = per * procs

	src := w.NewArrayBlocked(n, procs)
	dst := w.NewArrayBlocked(n, procs)
	// hist[p*radix+b]: processor p's count for bucket b, row placed on p.
	hist := w.NewArrayBlocked(procs*radix, procs)
	// rank[p*radix+b]: global starting offset for p's keys in bucket b.
	rank := w.NewArrayBlocked(procs*radix, procs)
	// rtot[p]: total keys falling in processor p's bucket range.
	rtot := w.NewArrayBlocked(procs, procs)
	bar := w.NewBarrier(procs, 0)

	// Deterministic keys; native mirror for verification.
	ref := make([]uint64, n)
	rng := uint64(0x13198A2E03707344)
	for i := 0; i < n; i++ {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		k := rng & 0xFFFFFFFF
		ref[i] = k
		*w.M.Word(src.Addr(i)) = k
	}

	run := func(c *workload.Ctx) {
		me := c.ID
		lo, hi := me*per, (me+1)*per
		a, b := src, dst
		for d := 0; d < digits; d++ {
			shift := uint(8 * d)
			// 1. Local histogram.
			for bkt := 0; bkt < radix; bkt++ {
				c.WriteU(hist.Addr(me*radix+bkt), 0)
				c.Busy(2)
			}
			for i := lo; i < hi; i++ {
				k := c.ReadU(a.Addr(i))
				bkt := int(k >> shift & (radix - 1))
				h := hist.Addr(me*radix + bkt)
				c.WriteU(h, c.ReadU(h)+1)
				c.Busy(8)
			}
			bar.Wait(c)
			// 2. Global ranks: buckets are split across processors. First
			// each processor totals its bucket range...
			bper := radix / procs
			tot := uint64(0)
			for bkt := me * bper; bkt < (me+1)*bper; bkt++ {
				for q := 0; q < procs; q++ {
					tot += c.ReadU(hist.Addr(q*radix + bkt))
					c.Busy(3)
				}
			}
			c.WriteU(rtot.Addr(me), tot)
			bar.Wait(c)
			// ...then prefixes the ranges below it and assigns per-bucket,
			// per-processor starting offsets within its range.
			base := uint64(0)
			for q := 0; q < me; q++ {
				base += c.ReadU(rtot.Addr(q))
				c.Busy(3)
			}
			for bkt := me * bper; bkt < (me+1)*bper; bkt++ {
				for q := 0; q < procs; q++ {
					c.WriteU(rank.Addr(q*radix+bkt), base)
					base += c.ReadU(hist.Addr(q*radix + bkt))
					c.Busy(4)
				}
			}
			bar.Wait(c)
			// 3. Permute into the destination.
			for i := lo; i < hi; i++ {
				k := c.ReadU(a.Addr(i))
				bkt := int(k >> shift & (radix - 1))
				r := rank.Addr(me*radix + bkt)
				off := c.ReadU(r)
				c.WriteU(r, off+1)
				c.WriteU(b.Addr(int(off)), k)
				c.Busy(10)
			}
			bar.Wait(c)
			a, b = b, a
		}
	}

	// After an even number of digits the result is back in src.
	final := src
	if digits%2 == 1 {
		final = dst
	}

	verify := func() error {
		sort.Slice(ref, func(i, j int) bool { return ref[i] < ref[j] })
		for i := 0; i < n; i++ {
			if got := *w.M.Word(final.Addr(i)); got != ref[i] {
				return fmt.Errorf("radix: key[%d] = %d, want %d", i, got, ref[i])
			}
		}
		return nil
	}

	return &App{Name: "radix", Run: run, Verify: verify}, nil
}
