package apps

import (
	"fmt"
	"math"

	"flashsim/internal/workload"
)

// Barnes-Hut node pool layout, in 8-byte words per node.
const (
	bhMass    = 0 // total mass
	bhComX    = 1 // center of mass
	bhComY    = 2
	bhComZ    = 3
	bhLeaf    = 4  // 1 = leaf
	bhCount   = 5  // bodies in a leaf
	bhChild0  = 6  // 8 children indices (internal) or body indices (leaf)
	bhSize    = 14 // cell edge length
	bhCtrX    = 15 // cell center
	bhCtrY    = 16
	bhCtrZ    = 17
	bhWords   = 18
	bhLeafCap = 8
)

// bhAccess abstracts the storage so the identical Barnes-Hut code runs both
// inside the simulation (through a thread context) and natively (for
// verification).
type bhAccess struct {
	nodeU  func(i int) uint64
	setNU  func(i int, v uint64)
	posF   func(dim, body int) float64
	velF   func(dim, body int) float64
	setVel func(dim, body int, v float64)
	setPos func(dim, body int, v float64)
	busy   func(n int)
}

func (a *bhAccess) nodeF(i int) float64    { return math.Float64frombits(a.nodeU(i)) }
func (a *bhAccess) setNF(i int, v float64) { a.setNU(i, math.Float64bits(v)) }

// bhTree provides build and traversal over an access.
type bhTree struct {
	a     *bhAccess
	alloc func() int // returns a fresh node index (zeroed)
	theta float64
}

// newCell initializes node idx as an empty leaf cell.
func (t *bhTree) newCell(cx, cy, cz, size float64) int {
	idx := t.alloc()
	base := idx * bhWords
	t.a.setNU(base+bhLeaf, 1)
	t.a.setNU(base+bhCount, 0)
	t.a.setNF(base+bhSize, size)
	t.a.setNF(base+bhCtrX, cx)
	t.a.setNF(base+bhCtrY, cy)
	t.a.setNF(base+bhCtrZ, cz)
	t.a.busy(12)
	return idx
}

// octant returns the child octant of (x,y,z) in the cell at base.
func (t *bhTree) octant(base int, x, y, z float64) int {
	o := 0
	if x >= t.a.nodeF(base+bhCtrX) {
		o |= 1
	}
	if y >= t.a.nodeF(base+bhCtrY) {
		o |= 2
	}
	if z >= t.a.nodeF(base+bhCtrZ) {
		o |= 4
	}
	t.a.busy(9)
	return o
}

// insert adds body b at (x,y,z) into the subtree rooted at idx.
func (t *bhTree) insert(idx, b int, x, y, z float64) {
	for {
		base := idx * bhWords
		if t.a.nodeU(base+bhLeaf) == 1 {
			n := int(t.a.nodeU(base + bhCount))
			if n < bhLeafCap {
				t.a.setNU(base+bhChild0+n, uint64(b))
				t.a.setNU(base+bhCount, uint64(n+1))
				t.a.busy(6)
				return
			}
			// Split: turn the leaf into an internal node and reinsert.
			bodies := make([]int, bhLeafCap)
			for i := 0; i < bhLeafCap; i++ {
				bodies[i] = int(t.a.nodeU(base + bhChild0 + i))
			}
			t.a.setNU(base+bhLeaf, 0)
			for i := 0; i < bhLeafCap; i++ {
				t.a.setNU(base+bhChild0+i, 0)
			}
			t.a.busy(20)
			for _, ob := range bodies {
				ox := t.a.posF(0, ob)
				oy := t.a.posF(1, ob)
				oz := t.a.posF(2, ob)
				t.insertChild(idx, ob, ox, oy, oz)
			}
			// Fall through to insert b into the now-internal node.
		}
		idx = t.childFor(idx, x, y, z)
	}
}

// insertChild places body ob into the proper child of internal node idx,
// creating the child cell if needed.
func (t *bhTree) insertChild(idx, ob int, x, y, z float64) {
	t.insertAt(t.childFor(idx, x, y, z), ob, x, y, z)
}

func (t *bhTree) insertAt(idx, b int, x, y, z float64) { t.insert(idx, b, x, y, z) }

// childFor returns (creating if necessary) the child cell of idx containing
// (x,y,z).
func (t *bhTree) childFor(idx int, x, y, z float64) int {
	base := idx * bhWords
	o := t.octant(base, x, y, z)
	ch := int(t.a.nodeU(base + bhChild0 + o))
	if ch == 0 {
		sz := t.a.nodeF(base + bhSize)
		q := sz / 4
		cx := t.a.nodeF(base + bhCtrX)
		cy := t.a.nodeF(base + bhCtrY)
		cz := t.a.nodeF(base + bhCtrZ)
		if o&1 == 1 {
			cx += q
		} else {
			cx -= q
		}
		if o&2 == 2 {
			cy += q
		} else {
			cy -= q
		}
		if o&4 == 4 {
			cz += q
		} else {
			cz -= q
		}
		ch = t.newCell(cx, cy, cz, sz/2)
		t.a.setNU(base+bhChild0+o, uint64(ch))
		t.a.busy(14)
	}
	return ch
}

// summarize computes mass and center-of-mass bottom-up for the subtree.
func (t *bhTree) summarize(idx int) (mass, mx, my, mz float64) {
	base := idx * bhWords
	if t.a.nodeU(base+bhLeaf) == 1 {
		n := int(t.a.nodeU(base + bhCount))
		for i := 0; i < n; i++ {
			b := int(t.a.nodeU(base + bhChild0 + i))
			mass += 1
			mx += t.a.posF(0, b)
			my += t.a.posF(1, b)
			mz += t.a.posF(2, b)
			t.a.busy(10)
		}
	} else {
		for o := 0; o < 8; o++ {
			ch := int(t.a.nodeU(base + bhChild0 + o))
			if ch == 0 {
				continue
			}
			m, x, y, z := t.summarize(ch)
			mass += m
			mx += x
			my += y
			mz += z
			t.a.busy(8)
		}
	}
	t.a.setNF(base+bhMass, mass)
	if mass > 0 {
		t.a.setNF(base+bhComX, mx/mass)
		t.a.setNF(base+bhComY, my/mass)
		t.a.setNF(base+bhComZ, mz/mass)
	}
	t.a.busy(12)
	return mass, mx, my, mz
}

const bhSoft = 0.05 // softening

// force accumulates the acceleration on body b from the subtree at idx.
func (t *bhTree) force(idx, b int, x, y, z float64, ax, ay, az *float64) {
	base := idx * bhWords
	if t.a.nodeU(base+bhLeaf) == 1 {
		n := int(t.a.nodeU(base + bhCount))
		for i := 0; i < n; i++ {
			ob := int(t.a.nodeU(base + bhChild0 + i))
			if ob == b {
				continue
			}
			dx := t.a.posF(0, ob) - x
			dy := t.a.posF(1, ob) - y
			dz := t.a.posF(2, ob) - z
			r2 := dx*dx + dy*dy + dz*dz + bhSoft
			inv := 1 / (r2 * math.Sqrt(r2))
			*ax += dx * inv
			*ay += dy * inv
			*az += dz * inv
			t.a.busy(24)
		}
		return
	}
	mass := t.a.nodeF(base + bhMass)
	if mass == 0 {
		return
	}
	dx := t.a.nodeF(base+bhComX) - x
	dy := t.a.nodeF(base+bhComY) - y
	dz := t.a.nodeF(base+bhComZ) - z
	d2 := dx*dx + dy*dy + dz*dz + bhSoft
	size := t.a.nodeF(base + bhSize)
	if size*size < t.theta*t.theta*d2 {
		inv := mass / (d2 * math.Sqrt(d2))
		*ax += dx * inv
		*ay += dy * inv
		*az += dz * inv
		t.a.busy(28)
		return
	}
	t.a.busy(16)
	for o := 0; o < 8; o++ {
		ch := int(t.a.nodeU(base + bhChild0 + o))
		if ch != 0 {
			t.force(ch, b, x, y, z, ax, ay, az)
		}
	}
}

// BuildBarnes constructs the hierarchical N-body workload: an octree is
// rebuilt each timestep by processor 0 and traversed by all processors to
// compute forces on their own bodies (theta = 1.0) — the read-mostly tree
// sharing that gives Barnes its "remote dirty remote"-heavy but tiny miss
// rate in Table 4.1.
func BuildBarnes(w *workload.World, p Params) (*App, error) {
	n := p.scaled(8192) // paper: 8192 particles, theta = 1.0
	steps := 2
	const dt = 0.01
	procs := p.Procs
	per := (n + procs - 1) / procs
	n = per * procs

	maxNodes := 4*n + 64
	pos := [3]*workload.Array{w.NewArrayBlocked(n, procs), w.NewArrayBlocked(n, procs), w.NewArrayBlocked(n, procs)}
	vel := [3]*workload.Array{w.NewArrayBlocked(n, procs), w.NewArrayBlocked(n, procs), w.NewArrayBlocked(n, procs)}
	// Double buffers so force traversals read a consistent snapshot while
	// integrations write the next step.
	npos := [3]*workload.Array{w.NewArrayBlocked(n, procs), w.NewArrayBlocked(n, procs), w.NewArrayBlocked(n, procs)}
	nvel := [3]*workload.Array{w.NewArrayBlocked(n, procs), w.NewArrayBlocked(n, procs), w.NewArrayBlocked(n, procs)}
	nodes := w.NewArray(maxNodes * bhWords) // shared tree, interleaved
	bar := w.NewBarrier(procs, 0)

	// Deterministic initial cluster; native mirror.
	refPos := make([][3]float64, n)
	refVel := make([][3]float64, n)
	rng := uint64(0x452821E638D01377)
	rnd := func() float64 {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return float64(rng%100000)/50000 - 1 // [-1, 1)
	}
	for i := 0; i < n; i++ {
		refPos[i] = [3]float64{rnd(), rnd(), rnd()}
		refVel[i] = [3]float64{rnd() * 0.1, rnd() * 0.1, rnd() * 0.1}
		for d := 0; d < 3; d++ {
			*w.M.Word(pos[d].Addr(i)) = math.Float64bits(refPos[i][d])
			*w.M.Word(vel[d].Addr(i)) = math.Float64bits(refVel[i][d])
		}
	}

	simStep := func(c *workload.Ctx, next *uint64) {
		acc := &bhAccess{
			nodeU:  func(i int) uint64 { return c.ReadU(nodes.Addr(i)) },
			setNU:  func(i int, v uint64) { c.WriteU(nodes.Addr(i), v) },
			posF:   func(d, b int) float64 { return c.ReadF(pos[d].Addr(b)) },
			velF:   func(d, b int) float64 { return c.ReadF(vel[d].Addr(b)) },
			setVel: func(d, b int, v float64) { c.WriteF(vel[d].Addr(b), v) },
			setPos: func(d, b int, v float64) { c.WriteF(pos[d].Addr(b), v) },
			busy:   func(k int) { c.Busy(k) },
		}
		t := &bhTree{a: acc, theta: 1.0, alloc: func() int {
			idx := int(*next)
			*next++
			if idx >= maxNodes {
				panic("barnes: node pool exhausted")
			}
			base := idx * bhWords
			for k := 0; k < bhWords; k++ {
				acc.setNU(base+k, 0)
			}
			return idx
		}}
		// Build (processor 0) — root is node 1 (0 is the null index).
		if c.ID == 0 {
			*next = 1
			root := t.newCell(0, 0, 0, 4.0)
			for b := 0; b < n; b++ {
				t.insert(root, b, acc.posF(0, b), acc.posF(1, b), acc.posF(2, b))
			}
			t.summarize(root)
		}
		bar.Wait(c)
		// Forces and integration on owned bodies, written to the next-step
		// buffers so every traversal sees the same snapshot.
		lo, hi := c.ID*per, (c.ID+1)*per
		for b := lo; b < hi; b++ {
			x, y, z := acc.posF(0, b), acc.posF(1, b), acc.posF(2, b)
			var ax, ay, az float64
			t.force(1, b, x, y, z, &ax, &ay, &az)
			vx := acc.velF(0, b) + ax*dt
			vy := acc.velF(1, b) + ay*dt
			vz := acc.velF(2, b) + az*dt
			c.WriteF(nvel[0].Addr(b), vx)
			c.WriteF(nvel[1].Addr(b), vy)
			c.WriteF(nvel[2].Addr(b), vz)
			c.WriteF(npos[0].Addr(b), x+vx*dt)
			c.WriteF(npos[1].Addr(b), y+vy*dt)
			c.WriteF(npos[2].Addr(b), z+vz*dt)
			c.Busy(30)
		}
		bar.Wait(c)
		// Copy back the owned slice.
		for b := lo; b < hi; b++ {
			for d := 0; d < 3; d++ {
				acc.setPos(d, b, c.ReadF(npos[d].Addr(b)))
				acc.setVel(d, b, c.ReadF(nvel[d].Addr(b)))
			}
			c.Busy(12)
		}
		bar.Wait(c)
	}

	run := func(c *workload.Ctx) {
		nextNode := uint64(1)
		for s := 0; s < steps; s++ {
			simStep(c, &nextNode)
		}
	}

	verify := func() error {
		// Native mirror over plain slices using the same code.
		nodesN := make([]uint64, maxNodes*bhWords)
		next := 1
		acc := &bhAccess{
			nodeU:  func(i int) uint64 { return nodesN[i] },
			setNU:  func(i int, v uint64) { nodesN[i] = v },
			posF:   func(d, b int) float64 { return refPos[b][d] },
			velF:   func(d, b int) float64 { return refVel[b][d] },
			setVel: func(d, b int, v float64) { refVel[b][d] = v },
			setPos: func(d, b int, v float64) { refPos[b][d] = v },
			busy:   func(int) {},
		}
		t := &bhTree{a: acc, theta: 1.0, alloc: func() int {
			idx := next
			next++
			base := idx * bhWords
			for k := 0; k < bhWords; k++ {
				nodesN[base+k] = 0
			}
			return idx
		}}
		for s := 0; s < steps; s++ {
			next = 1
			root := t.newCell(0, 0, 0, 4.0)
			for b := 0; b < n; b++ {
				t.insert(root, b, refPos[b][0], refPos[b][1], refPos[b][2])
			}
			t.summarize(root)
			// Forces on a snapshot of positions (as the simulated phase
			// separates force computation from integration by a barrier).
			newPos := make([][3]float64, n)
			newVel := make([][3]float64, n)
			for b := 0; b < n; b++ {
				x, y, z := refPos[b][0], refPos[b][1], refPos[b][2]
				var ax, ay, az float64
				t.force(1, b, x, y, z, &ax, &ay, &az)
				vx := refVel[b][0] + ax*dt
				vy := refVel[b][1] + ay*dt
				vz := refVel[b][2] + az*dt
				newVel[b] = [3]float64{vx, vy, vz}
				newPos[b] = [3]float64{x + vx*dt, y + vy*dt, z + vz*dt}
			}
			copy(refPos, newPos)
			copy(refVel, newVel)
		}
		for b := 0; b < n; b += 1 + n/512 {
			for d := 0; d < 3; d++ {
				got := math.Float64frombits(*w.M.Word(pos[d].Addr(b)))
				want := refPos[b][d]
				if math.Abs(got-want) > 1e-9*(1+math.Abs(want)) {
					return fmt.Errorf("barnes: body %d dim %d pos = %g, want %g", b, d, got, want)
				}
			}
		}
		return nil
	}

	return &App{Name: "barnes", Run: run, Verify: verify}, nil
}
