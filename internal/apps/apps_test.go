package apps

import (
	"testing"

	"flashsim/internal/arch"
	"flashsim/internal/core"
	"flashsim/internal/workload"
)

// smallConfig is a 4-node machine sized for unit tests.
func smallConfig(kind arch.MachineKind, cache int) arch.Config {
	cfg := arch.DefaultConfig()
	cfg.Kind = kind
	cfg.Nodes = 4
	if cache > 0 {
		cfg.CacheSize = cache
	}
	cfg.MemBytesPerNode = 4 << 20
	return cfg
}

// runApp builds and runs the named app, verifying its computed result and
// machine coherence.
func runApp(t *testing.T, name string, cfg arch.Config, p Params) (*core.Machine, *App) {
	t.Helper()
	m, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	w := workload.NewWorld(m)
	app, err := Build(name, w, p)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Run(app.Run, 2_000_000_000); err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	if err := app.Verify(); err != nil {
		t.Fatal(err)
	}
	if err := m.CheckCoherence(); err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	if m.Elapsed == 0 {
		t.Fatalf("%s: no elapsed time", name)
	}
	return m, app
}

func TestFFTSmall(t *testing.T) {
	m, _ := runApp(t, "fft", smallConfig(arch.KindFLASH, 0), Params{Scale: 256}) // 256 points
	t.Logf("fft elapsed %d cycles", m.Elapsed)
}

func TestFFTIdeal(t *testing.T) {
	runApp(t, "fft", smallConfig(arch.KindIdeal, 0), Params{Scale: 256})
}

func TestFFTSmallCache(t *testing.T) {
	// 4 KB caches force capacity misses through the same math.
	runApp(t, "fft", smallConfig(arch.KindFLASH, 4<<10), Params{Scale: 256})
}

func TestLUSmall(t *testing.T) {
	m, _ := runApp(t, "lu", smallConfig(arch.KindFLASH, 0), Params{Scale: 8}) // 64x64
	t.Logf("lu elapsed %d cycles", m.Elapsed)
}

func TestLUIdeal(t *testing.T) {
	runApp(t, "lu", smallConfig(arch.KindIdeal, 0), Params{Scale: 8})
}

func TestRadixSmall(t *testing.T) {
	m, _ := runApp(t, "radix", smallConfig(arch.KindFLASH, 0), Params{Scale: 64}) // 4K keys
	t.Logf("radix elapsed %d cycles", m.Elapsed)
}

func TestRadixIdeal(t *testing.T) {
	runApp(t, "radix", smallConfig(arch.KindIdeal, 0), Params{Scale: 64})
}

func TestOceanSmall(t *testing.T) {
	m, _ := runApp(t, "ocean", smallConfig(arch.KindFLASH, 0), Params{Scale: 8}) // 32x32
	t.Logf("ocean elapsed %d cycles", m.Elapsed)
}

func TestOceanIdeal(t *testing.T) {
	runApp(t, "ocean", smallConfig(arch.KindIdeal, 0), Params{Scale: 8})
}

func TestMP3DSmall(t *testing.T) {
	m, _ := runApp(t, "mp3d", smallConfig(arch.KindFLASH, 0), Params{Scale: 25}) // 2K particles
	t.Logf("mp3d elapsed %d cycles", m.Elapsed)
}

func TestMP3DIdeal(t *testing.T) {
	runApp(t, "mp3d", smallConfig(arch.KindIdeal, 0), Params{Scale: 25})
}

func TestBarnesSmall(t *testing.T) {
	m, _ := runApp(t, "barnes", smallConfig(arch.KindFLASH, 0), Params{Scale: 16}) // 512 bodies
	t.Logf("barnes elapsed %d cycles", m.Elapsed)
}

func TestBarnesIdeal(t *testing.T) {
	runApp(t, "barnes", smallConfig(arch.KindIdeal, 0), Params{Scale: 16})
}

func TestOSSmall(t *testing.T) {
	cfg := smallConfig(arch.KindFLASH, 0)
	cfg.Placement = arch.PlaceRoundRobin
	m, _ := runApp(t, "os", cfg, Params{Scale: 8})
	t.Logf("os elapsed %d cycles", m.Elapsed)
}

func TestOSNodeZero(t *testing.T) {
	cfg := smallConfig(arch.KindFLASH, 0)
	cfg.Placement = arch.PlaceNodeZero
	runApp(t, "os", cfg, Params{Scale: 8})
}
