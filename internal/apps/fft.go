package apps

import (
	"fmt"
	"math"

	"flashsim/internal/workload"
)

// BuildFFT constructs the six-step radix-sqrt(N) FFT of SPLASH-2: the N
// complex points are viewed as an n1 x n1 matrix; three all-to-all
// transposes provide the communication phases and the row FFTs the compute
// phases. Each processor owns a contiguous band of rows placed in its local
// memory (the tuned layout the paper's results assume).
func BuildFFT(w *workload.World, p Params) (*App, error) {
	n := p.scaled(64 * 1024) // paper: 64K complex points
	n1 := 1
	for n1*n1 < n {
		n1 *= 2
	}
	n = n1 * n1
	procs := p.Procs
	if n1%procs != 0 {
		return nil, fmt.Errorf("fft: sqrt(N)=%d not divisible by %d processors", n1, procs)
	}

	// Two matrices of n complex points, each row contiguous, row bands
	// placed per owner. Element (r,c) real/imag at index 2*(r*n1+c)(+1).
	a := w.NewArrayBlocked(2*n, procs)
	b := w.NewArrayBlocked(2*n, procs)
	bar := w.NewBarrier(procs, 0)

	// Deterministic input, mirrored natively for verification.
	input := make([]complex128, n)
	rng := uint64(0x9E3779B97F4A7C15)
	for i := 0; i < n; i++ {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		re := float64(int64(rng%2048)-1024) / 1024
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		im := float64(int64(rng%2048)-1024) / 1024
		input[i] = complex(re, im)
		*w.M.Word(a.Addr(2 * i)) = math.Float64bits(re)
		*w.M.Word(a.Addr(2*i + 1)) = math.Float64bits(im)
	}

	rowsPer := n1 / procs

	readC := func(c *workload.Ctx, m *workload.Array, idx int) complex128 {
		re := c.ReadF(m.Addr(2 * idx))
		im := c.ReadF(m.Addr(2*idx + 1))
		return complex(re, im)
	}
	writeC := func(c *workload.Ctx, m *workload.Array, idx int, v complex128) {
		c.WriteF(m.Addr(2*idx), real(v))
		c.WriteF(m.Addr(2*idx+1), imag(v))
	}

	// transpose copies src^T into dst for this processor's destination rows:
	// dst[r][c] = src[c][r]. Reading down a source column touches every
	// other processor's band — the all-to-all phase. Blocked 8x8 for cache
	// line reuse, as tuned SPLASH code is.
	transpose := func(c *workload.Ctx, dst, src *workload.Array, r0, r1 int) {
		const blk = 8
		for rb := r0; rb < r1; rb += blk {
			for cb := 0; cb < n1; cb += blk {
				for r := rb; r < rb+blk && r < r1; r++ {
					for cc := cb; cc < cb+blk && cc < n1; cc++ {
						v := readC(c, src, cc*n1+r)
						writeC(c, dst, r*n1+cc, v)
						c.Busy(8)
					}
				}
			}
		}
	}

	// rowFFT performs an in-place iterative radix-2 FFT on row r of m.
	rowFFT := func(c *workload.Ctx, m *workload.Array, r int) {
		base := r * n1
		// Bit-reversal permutation.
		for i, j := 0, 0; i < n1; i++ {
			if i < j {
				vi := readC(c, m, base+i)
				vj := readC(c, m, base+j)
				writeC(c, m, base+i, vj)
				writeC(c, m, base+j, vi)
			}
			c.Busy(6)
			k := n1 >> 1
			for ; k&j != 0; k >>= 1 {
				j ^= k
			}
			j |= k
		}
		// Butterflies.
		for span := 1; span < n1; span <<= 1 {
			wstep := -math.Pi / float64(span)
			for i := 0; i < n1; i += span << 1 {
				for k := 0; k < span; k++ {
					ang := wstep * float64(k)
					tw := complex(math.Cos(ang), math.Sin(ang))
					u := readC(c, m, base+i+k)
					v := readC(c, m, base+i+k+span) * tw
					writeC(c, m, base+i+k, u+v)
					writeC(c, m, base+i+k+span, u-v)
					c.Busy(16)
				}
			}
		}
	}

	run := func(c *workload.Ctx) {
		r0 := c.ID * rowsPer
		r1 := r0 + rowsPer
		// Step 1: b = a^T.
		transpose(c, b, a, r0, r1)
		bar.Wait(c)
		// Step 2: row FFTs on b; step 3: twiddle.
		for r := r0; r < r1; r++ {
			rowFFT(c, b, r)
			for cc := 0; cc < n1; cc++ {
				ang := -2 * math.Pi * float64(r) * float64(cc) / float64(n)
				tw := complex(math.Cos(ang), math.Sin(ang))
				writeC(c, b, r*n1+cc, readC(c, b, r*n1+cc)*tw)
				c.Busy(24)
			}
		}
		bar.Wait(c)
		// Step 4: a = b^T.
		transpose(c, a, b, r0, r1)
		bar.Wait(c)
		// Step 5: row FFTs on a.
		for r := r0; r < r1; r++ {
			rowFFT(c, a, r)
		}
		bar.Wait(c)
		// Step 6: b = a^T (natural order result).
		transpose(c, b, a, r0, r1)
		bar.Wait(c)
	}

	verify := func() error {
		// Native reference via recursive FFT; the six-step algorithm with
		// its final transpose leaves X in natural order in b.
		ref := nativeFFT(append([]complex128(nil), input...))
		// Spot-check a deterministic sample (full compare for small n).
		step := 1
		if n > 4096 {
			step = n / 4096
		}
		for m := 0; m < n; m += step {
			want := ref[m]
			re := math.Float64frombits(*w.M.Word(b.Addr(2 * m)))
			im := math.Float64frombits(*w.M.Word(b.Addr(2*m + 1)))
			got := complex(re, im)
			if d := cmplxAbs(got - want); d > 1e-6*(1+cmplxAbs(want)) {
				return fmt.Errorf("fft: element %d = %v, want %v", m, got, want)
			}
		}
		return nil
	}

	return &App{Name: "fft", Run: run, Verify: verify}, nil
}

func cmplxAbs(v complex128) float64 {
	return math.Hypot(real(v), imag(v))
}

// nativeFFT is the reference in-place recursive FFT (natural order result).
func nativeFFT(x []complex128) []complex128 {
	n := len(x)
	if n == 1 {
		return x
	}
	even := make([]complex128, n/2)
	odd := make([]complex128, n/2)
	for i := 0; i < n/2; i++ {
		even[i] = x[2*i]
		odd[i] = x[2*i+1]
	}
	even = nativeFFT(even)
	odd = nativeFFT(odd)
	for k := 0; k < n/2; k++ {
		ang := -2 * math.Pi * float64(k) / float64(n)
		t := complex(math.Cos(ang), math.Sin(ang)) * odd[k]
		x[k] = even[k] + t
		x[k+n/2] = even[k] - t
	}
	return x
}
