package apps

import (
	"fmt"

	"flashsim/internal/workload"
)

// BuildMP3D constructs the paper's communication stress test: a rarefied-
// fluid particle-in-cell step in the spirit of SPLASH MP3D. Each processor
// owns a block of particles (local data); every moved particle reads and
// updates counters in its space cell, and the space array is distributed
// round-robin across nodes, so cell traffic is scattered writes to lines
// recently dirtied by other processors — the "remote dirty remote"-dominated
// miss pattern of Table 4.1 (84%) and a 6% overall miss rate.
func BuildMP3D(w *workload.World, p Params) (*App, error) {
	n := p.scaled(50000) // paper: 50,000 particles
	steps := 4
	procs := p.Procs
	per := (n + procs - 1) / procs
	n = per * procs

	// Space: a 3-D box with roughly n/4 cells, interleaved across nodes.
	side := 1
	for side*side*side < n/4 {
		side++
	}
	cells := side * side * side

	// Particle state: x,y,z,vx,vy,vz as fixed-point integers (determinism:
	// no float ordering concerns). Owned blocks, locally placed.
	px := w.NewArrayBlocked(n, procs)
	py := w.NewArrayBlocked(n, procs)
	pz := w.NewArrayBlocked(n, procs)
	vx := w.NewArrayBlocked(n, procs)
	vy := w.NewArrayBlocked(n, procs)
	vz := w.NewArrayBlocked(n, procs)
	// Space cells: count and energy, page-interleaved round-robin.
	cnt := w.NewArray(cells)
	eng := w.NewArray(cells)
	bar := w.NewBarrier(procs, 0)

	const scale = 1 << 16 // fixed-point unit per cell edge
	box := uint64(side * scale)

	// Deterministic initial conditions, mirrored natively.
	type part struct{ x, y, z, vx, vy, vz uint64 }
	ref := make([]part, n)
	rng := uint64(0x082EFA98EC4E6C89)
	rnd := func() uint64 {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return rng
	}
	for i := 0; i < n; i++ {
		pt := part{
			x: rnd() % box, y: rnd() % box, z: rnd() % box,
			vx: rnd()%scale - scale/2, vy: rnd()%scale - scale/2, vz: rnd()%scale - scale/2,
		}
		ref[i] = pt
		*w.M.Word(px.Addr(i)) = pt.x
		*w.M.Word(py.Addr(i)) = pt.y
		*w.M.Word(pz.Addr(i)) = pt.z
		*w.M.Word(vx.Addr(i)) = pt.vx
		*w.M.Word(vy.Addr(i)) = pt.vy
		*w.M.Word(vz.Addr(i)) = pt.vz
	}

	cellOf := func(x, y, z uint64) int {
		cx := int(x % box / scale)
		cy := int(y % box / scale)
		cz := int(z % box / scale)
		return (cx*side+cy)*side + cz
	}
	move := func(pt *part) int {
		pt.x = (pt.x + pt.vx) % box
		pt.y = (pt.y + pt.vy) % box
		pt.z = (pt.z + pt.vz) % box
		cell := cellOf(pt.x, pt.y, pt.z)
		// Deterministic "collision": rotate velocity by a cell-dependent
		// permutation, as a stand-in for the Monte Carlo collision step.
		if cell&1 == 1 {
			pt.vx, pt.vy, pt.vz = pt.vy, pt.vz, pt.vx
		}
		return cell
	}

	run := func(c *workload.Ctx) {
		lo, hi := c.ID*per, (c.ID+1)*per
		for s := 0; s < steps; s++ {
			for i := lo; i < hi; i++ {
				pt := part{
					x:  c.ReadU(px.Addr(i)),
					y:  c.ReadU(py.Addr(i)),
					z:  c.ReadU(pz.Addr(i)),
					vx: c.ReadU(vx.Addr(i)),
					vy: c.ReadU(vy.Addr(i)),
					vz: c.ReadU(vz.Addr(i)),
				}
				cell := move(&pt)
				c.WriteU(px.Addr(i), pt.x)
				c.WriteU(py.Addr(i), pt.y)
				c.WriteU(pz.Addr(i), pt.z)
				c.WriteU(vx.Addr(i), pt.vx)
				c.WriteU(vy.Addr(i), pt.vy)
				c.WriteU(vz.Addr(i), pt.vz)
				// Cell interaction: read the cell state (the stress-test
				// communication), then update its tallies atomically.
				c.ReadU(cnt.Addr(cell))
				c.ReadU(eng.Addr(cell))
				c.FetchAddData(cnt.Addr(cell), 1)
				c.FetchAddData(eng.Addr(cell), pt.vx&0xFFFF)
				c.Busy(40)
			}
			bar.Wait(c)
		}
	}

	verify := func() error {
		wantCnt := make([]uint64, cells)
		wantEng := make([]uint64, cells)
		for i := range ref {
			pt := ref[i]
			for s := 0; s < steps; s++ {
				cell := move(&pt)
				wantCnt[cell]++
				wantEng[cell] += pt.vx & 0xFFFF
			}
			if got := *w.M.Word(px.Addr(i)); got != pt.x {
				return fmt.Errorf("mp3d: particle %d x = %d, want %d", i, got, pt.x)
			}
			if got := *w.M.Word(vz.Addr(i)); got != pt.vz {
				return fmt.Errorf("mp3d: particle %d vz = %d, want %d", i, got, pt.vz)
			}
		}
		var total uint64
		for cl := 0; cl < cells; cl++ {
			if got := *w.M.Word(cnt.Addr(cl)); got != wantCnt[cl] {
				return fmt.Errorf("mp3d: cell %d count = %d, want %d", cl, got, wantCnt[cl])
			}
			if got := *w.M.Word(eng.Addr(cl)); got != wantEng[cl] {
				return fmt.Errorf("mp3d: cell %d energy = %d, want %d", cl, got, wantEng[cl])
			}
			total += wantCnt[cl]
		}
		if total != uint64(n*steps) {
			return fmt.Errorf("mp3d: conservation violated: %d tallies, want %d", total, n*steps)
		}
		return nil
	}

	return &App{Name: "mp3d", Run: run, Verify: verify}, nil
}
