// Package apps implements the paper's seven workloads (Table 3.5) as
// execution-driven programs over the simulated shared address space:
//
//	Barnes  — hierarchical N-body (8192 particles, theta = 1.0)
//	FFT     — radix-sqrt(N) six-step transform (64K complex points)
//	LU      — blocked dense factorization (512x512, 16x16 blocks)
//	MP3D    — high-communication particle-in-cell stress test (50K particles)
//	Ocean   — regular-grid iterative solver (258x258 grids)
//	OS      — multiprogramming "8 makes" model
//	Radix   — parallel radix sort (256K keys, radix 256)
//
// Every application computes a real result (each Verify checks it), so
// sharing patterns, data dependences, and synchronization are genuine, not
// replayed traces. Scale divides the paper's problem size for affordable
// simulation; Scale=1 is the paper's size.
package apps

import (
	"fmt"
	"strings"

	"flashsim/internal/workload"
)

// App is one runnable workload instance bound to a World.
type App struct {
	Name   string
	Run    func(c *workload.Ctx)
	Verify func() error
}

// Params selects the problem size and layout.
type Params struct {
	Procs int // worker threads == processors
	Scale int // paper size divisor (1 = paper size); larger is smaller/faster
}

func (p Params) scaled(n int) int {
	s := p.Scale
	if s <= 0 {
		s = 1
	}
	v := n / s
	if v < 1 {
		return 1
	}
	return v
}

// Builders maps application names to constructors.
var Builders = map[string]func(w *workload.World, p Params) (*App, error){
	"fft":    BuildFFT,
	"lu":     BuildLU,
	"radix":  BuildRadix,
	"ocean":  BuildOcean,
	"barnes": BuildBarnes,
	"mp3d":   BuildMP3D,
	"os":     BuildOS,
}

// Names lists the applications in the paper's order.
var Names = []string{"barnes", "fft", "lu", "mp3d", "ocean", "os", "radix"}

// ValidNames renders the known application names for error messages.
func ValidNames() string { return strings.Join(Names, ", ") }

// ValidateNames rejects any name that is not a known application, so CLI
// flag parsing can fail fast — before simulations start — with an error
// naming the valid set.
func ValidateNames(names []string) error {
	for _, n := range names {
		if _, ok := Builders[n]; !ok {
			return fmt.Errorf("apps: unknown application %q (valid: %s)", n, ValidNames())
		}
	}
	return nil
}

// Build constructs the named application.
func Build(name string, w *workload.World, p Params) (*App, error) {
	b, ok := Builders[name]
	if !ok {
		return nil, fmt.Errorf("apps: unknown application %q", name)
	}
	if p.Procs <= 0 {
		p.Procs = w.Cfg.Nodes
	}
	return b(w, p)
}
