package apps

import (
	"fmt"
	"math"

	"flashsim/internal/arch"
	"flashsim/internal/workload"
)

// BuildLU constructs the SPLASH-2 contiguous blocked dense LU factorization
// (no pivoting): the n x n matrix is split into B x B blocks assigned to
// processors in a 2-D scatter; each block is stored contiguously in its
// owner's local memory. Step k factors the diagonal block, updates the
// perimeter row and column, then the interior: A[i][j] -= A[i][k]*A[k][j].
// Communication is reads of the diagonal/perimeter blocks owned by other
// processors — the paper's "blocked dense linear algebra" class with a tiny
// miss rate (0.05% at 1 MB).
func BuildLU(w *workload.World, p Params) (*App, error) {
	n := p.scaled(512) // paper: 512x512, 16x16 blocks
	const bs = 16
	if n%bs != 0 {
		n = (n/bs + 1) * bs
	}
	nb := n / bs // blocks per dimension
	procs := p.Procs

	// 2-D processor grid for block scatter.
	pr := 1
	for pr*pr < procs {
		pr *= 2
	}
	if pr*pr > procs {
		pr /= 2
	}
	pc := procs / pr

	ownerOf := func(bi, bj int) int { return (bi%pr)*pc + (bj % pc) }

	// Each block contiguous (bs*bs doubles); block (bi,bj) placed on its
	// owner's node.
	blocks := make([]*workload.Array, nb*nb)
	for bi := 0; bi < nb; bi++ {
		for bj := 0; bj < nb; bj++ {
			node := arch.NodeID(ownerOf(bi, bj) % w.Cfg.Nodes)
			base := w.AllocPlaced(bs*bs*8, node)
			blocks[bi*nb+bj] = workload.SingleExtent(base, bs*bs)
		}
	}

	// Deterministic diagonally-dominant input (no pivoting needed), with a
	// native mirror for verification.
	ref := make([]float64, n*n)
	rng := uint64(0x243F6A8885A308D3)
	get := func(i, j int) *uint64 {
		blk := blocks[(i/bs)*nb+(j/bs)]
		return w.M.Word(blk.Addr((i%bs)*bs + (j % bs)))
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			rng ^= rng << 13
			rng ^= rng >> 7
			rng ^= rng << 17
			v := float64(int64(rng%1024)-512) / 512
			if i == j {
				v += float64(n) // diagonal dominance
			}
			ref[i*n+j] = v
			*get(i, j) = math.Float64bits(v)
		}
	}

	bar := w.NewBarrier(procs, 0)

	addr := func(bi, bj, r, c int) (a *workload.Array, idx int) {
		return blocks[bi*nb+bj], r*bs + c
	}

	run := func(c *workload.Ctx) {
		me := c.ID
		for k := 0; k < nb; k++ {
			// 1. Factor diagonal block (its owner only).
			if ownerOf(k, k) == me {
				dblk, _ := addr(k, k, 0, 0)
				for kk := 0; kk < bs; kk++ {
					piv := c.ReadF(dblk.Addr(kk*bs + kk))
					for i := kk + 1; i < bs; i++ {
						l := c.ReadF(dblk.Addr(i*bs+kk)) / piv
						c.WriteF(dblk.Addr(i*bs+kk), l)
						c.Busy(8)
						for j := kk + 1; j < bs; j++ {
							v := c.ReadF(dblk.Addr(i*bs+j)) - l*c.ReadF(dblk.Addr(kk*bs+j))
							c.WriteF(dblk.Addr(i*bs+j), v)
							c.Busy(6)
						}
					}
				}
			}
			bar.Wait(c)
			// 2. Perimeter: column blocks A[i][k] = A[i][k] * U(kk)^-1 and
			// row blocks A[k][j] = L(kk)^-1 * A[k][j], by their owners.
			dblk, _ := addr(k, k, 0, 0)
			for bi := k + 1; bi < nb; bi++ {
				if ownerOf(bi, k) != me {
					continue
				}
				blk, _ := addr(bi, k, 0, 0)
				for kk := 0; kk < bs; kk++ {
					piv := c.ReadF(dblk.Addr(kk*bs + kk))
					for i := 0; i < bs; i++ {
						l := c.ReadF(blk.Addr(i*bs+kk)) / piv
						c.WriteF(blk.Addr(i*bs+kk), l)
						c.Busy(8)
						for j := kk + 1; j < bs; j++ {
							v := c.ReadF(blk.Addr(i*bs+j)) - l*c.ReadF(dblk.Addr(kk*bs+j))
							c.WriteF(blk.Addr(i*bs+j), v)
							c.Busy(6)
						}
					}
				}
			}
			for bj := k + 1; bj < nb; bj++ {
				if ownerOf(k, bj) != me {
					continue
				}
				blk, _ := addr(k, bj, 0, 0)
				for kk := 0; kk < bs; kk++ {
					for i := kk + 1; i < bs; i++ {
						l := c.ReadF(dblk.Addr(i*bs + kk))
						c.Busy(4)
						for j := 0; j < bs; j++ {
							v := c.ReadF(blk.Addr(i*bs+j)) - l*c.ReadF(blk.Addr(kk*bs+j))
							c.WriteF(blk.Addr(i*bs+j), v)
							c.Busy(6)
						}
					}
				}
			}
			bar.Wait(c)
			// 3. Interior update: A[bi][bj] -= A[bi][k] * A[k][bj].
			for bi := k + 1; bi < nb; bi++ {
				for bj := k + 1; bj < nb; bj++ {
					if ownerOf(bi, bj) != me {
						continue
					}
					tgt, _ := addr(bi, bj, 0, 0)
					lblk, _ := addr(bi, k, 0, 0)
					ublk, _ := addr(k, bj, 0, 0)
					for i := 0; i < bs; i++ {
						for kk := 0; kk < bs; kk++ {
							l := c.ReadF(lblk.Addr(i*bs + kk))
							c.Busy(4)
							for j := 0; j < bs; j++ {
								v := c.ReadF(tgt.Addr(i*bs+j)) - l*c.ReadF(ublk.Addr(kk*bs+j))
								c.WriteF(tgt.Addr(i*bs+j), v)
								c.Busy(6)
							}
						}
					}
				}
			}
			bar.Wait(c)
		}
	}

	verify := func() error {
		// Native reference factorization of the mirrored input, same
		// blocked order (identical floating-point operation order).
		nativeBlockedLU(ref, n, bs)
		step := 1
		if n > 128 {
			step = n / 128
		}
		for i := 0; i < n; i += step {
			for j := 0; j < n; j += step {
				got := math.Float64frombits(*get(i, j))
				want := ref[i*n+j]
				if d := math.Abs(got - want); d > 1e-9*(1+math.Abs(want)) {
					return fmt.Errorf("lu: A[%d][%d] = %g, want %g", i, j, got, want)
				}
			}
		}
		return nil
	}

	return &App{Name: "lu", Run: run, Verify: verify}, nil
}

// nativeBlockedLU mirrors the simulated factorization natively.
func nativeBlockedLU(a []float64, n, bs int) {
	nb := n / bs
	at := func(i, j int) *float64 { return &a[i*n+j] }
	for k := 0; k < nb; k++ {
		k0 := k * bs
		// Diagonal.
		for kk := 0; kk < bs; kk++ {
			piv := *at(k0+kk, k0+kk)
			for i := kk + 1; i < bs; i++ {
				l := *at(k0+i, k0+kk) / piv
				*at(k0+i, k0+kk) = l
				for j := kk + 1; j < bs; j++ {
					*at(k0+i, k0+j) -= l * *at(k0+kk, k0+j)
				}
			}
		}
		// Column perimeter.
		for bi := k + 1; bi < nb; bi++ {
			i0 := bi * bs
			for kk := 0; kk < bs; kk++ {
				piv := *at(k0+kk, k0+kk)
				for i := 0; i < bs; i++ {
					l := *at(i0+i, k0+kk) / piv
					*at(i0+i, k0+kk) = l
					for j := kk + 1; j < bs; j++ {
						*at(i0+i, k0+j) -= l * *at(k0+kk, k0+j)
					}
				}
			}
		}
		// Row perimeter.
		for bj := k + 1; bj < nb; bj++ {
			j0 := bj * bs
			for kk := 0; kk < bs; kk++ {
				for i := kk + 1; i < bs; i++ {
					l := *at(k0+i, k0+kk)
					for j := 0; j < bs; j++ {
						*at(k0+i, j0+j) -= l * *at(k0+kk, j0+j)
					}
				}
			}
		}
		// Interior.
		for bi := k + 1; bi < nb; bi++ {
			for bj := k + 1; bj < nb; bj++ {
				i0, j0 := bi*bs, bj*bs
				for i := 0; i < bs; i++ {
					for kk := 0; kk < bs; kk++ {
						l := *at(i0+i, k0+kk)
						for j := 0; j < bs; j++ {
							*at(i0+i, j0+j) -= l * *at(k0+kk, j0+j)
						}
					}
				}
			}
		}
	}
}
