package apps

import (
	"fmt"
	"math"

	"flashsim/internal/workload"
)

// BuildOcean constructs the paper's regular-grid iterative class: a
// five-point Jacobi relaxation over (g+2)^2 grids partitioned into row
// bands, with a global residual reduction each sweep — the communication
// skeleton of SPLASH Ocean (nearest-neighbour edge exchanges plus a
// reduction). Three full-size fields give it Ocean's multi-grid footprint.
func BuildOcean(w *workload.World, p Params) (*App, error) {
	g := p.scaled(256) // paper: 258x258 including borders
	iters := 6
	procs := p.Procs
	rows := g + 2
	cols := g + 2
	if g%procs != 0 {
		return nil, fmt.Errorf("ocean: grid %d not divisible by %d processors", g, procs)
	}

	// Row-band placement: processor i owns rows [1 + i*g/procs, ...).
	alloc := func() *workload.Array { return w.NewArrayBlocked(rows*cols, procs) }
	cur, nxt, frc := alloc(), alloc(), alloc()
	bar := w.NewBarrier(procs, 0)
	red := w.NewReduction(0)

	// Deterministic initialization, mirrored natively.
	refCur := make([]float64, rows*cols)
	refFrc := make([]float64, rows*cols)
	rng := uint64(0xA4093822299F31D0)
	for i := 0; i < rows*cols; i++ {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		v := float64(int64(rng%1000)) / 1000
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		f := float64(int64(rng%100)) / 1000
		refCur[i] = v
		refFrc[i] = f
		*w.M.Word(cur.Addr(i)) = math.Float64bits(v)
		*w.M.Word(nxt.Addr(i)) = math.Float64bits(v)
		*w.M.Word(frc.Addr(i)) = math.Float64bits(f)
	}

	rowsPer := g / procs

	run := func(c *workload.Ctx) {
		r0 := 1 + c.ID*rowsPer
		r1 := r0 + rowsPer
		a, b := cur, nxt
		for it := 0; it < iters; it++ {
			local := 0.0
			for i := r0; i < r1; i++ {
				for j := 1; j <= g; j++ {
					idx := i*cols + j
					up := c.ReadF(a.Addr(idx - cols))
					dn := c.ReadF(a.Addr(idx + cols))
					lf := c.ReadF(a.Addr(idx - 1))
					rt := c.ReadF(a.Addr(idx + 1))
					f := c.ReadF(frc.Addr(idx))
					old := c.ReadF(a.Addr(idx))
					v := 0.25*(up+dn+lf+rt) + f
					c.WriteF(b.Addr(idx), v)
					d := v - old
					local += d * d
					c.Busy(14)
				}
			}
			red.AddF(c, local)
			bar.Wait(c)
			a, b = b, a
		}
	}

	verify := func() error {
		// Native mirror of the same sweeps.
		a := refCur
		b := append([]float64(nil), refCur...)
		for it := 0; it < iters; it++ {
			for i := 1; i <= g; i++ {
				for j := 1; j <= g; j++ {
					idx := i*cols + j
					b[idx] = 0.25*(a[idx-cols]+a[idx+cols]+a[idx-1]+a[idx+1]) + refFrc[idx]
				}
			}
			a, b = b, a
		}
		// After `iters` swaps the latest data is in `a` natively and in cur
		// (even iters) or nxt (odd) in the simulation.
		final := cur
		if iters%2 == 1 {
			final = nxt
		}
		step := 1
		if g > 64 {
			step = g / 64
		}
		for i := 1; i <= g; i += step {
			for j := 1; j <= g; j += step {
				idx := i*cols + j
				got := math.Float64frombits(*w.M.Word(final.Addr(idx)))
				if d := math.Abs(got - a[idx]); d > 1e-9*(1+math.Abs(a[idx])) {
					return fmt.Errorf("ocean: grid[%d][%d] = %g, want %g", i, j, got, a[idx])
				}
			}
		}
		return nil
	}

	return &App{Name: "ocean", Run: run, Verify: verify}, nil
}
