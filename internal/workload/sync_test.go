package workload

import (
	"testing"

	"flashsim/internal/arch"
	"flashsim/internal/core"
)

// syncCost runs `iters` barrier episodes on `procs` processors and returns
// cycles per barrier and total NAKs.
func syncCost(t *testing.T, kind arch.MachineKind, procs, iters int) (perBarrier float64, naks uint64) {
	t.Helper()
	cfg := arch.DefaultConfig()
	cfg.Kind = kind
	cfg.Nodes = procs
	cfg.MemBytesPerNode = 1 << 20
	m, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	w := NewWorld(m)
	bar := w.NewBarrier(procs, 0)
	err = w.Run(func(c *Ctx) {
		for i := 0; i < iters; i++ {
			c.Busy(200)
			bar.Wait(c)
		}
	}, 500_000_000)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range m.Nodes {
		naks += n.CPU.Stats.Naks
	}
	return float64(m.Elapsed) / float64(iters), naks
}

func TestBarrierCost(t *testing.T) {
	for _, procs := range []int{4, 16} {
		fb, fn := syncCost(t, arch.KindFLASH, procs, 10)
		ib, in := syncCost(t, arch.KindIdeal, procs, 10)
		t.Logf("procs=%2d  FLASH %.0f cyc/barrier (naks %d)   ideal %.0f cyc/barrier (naks %d)  ratio %.1fx",
			procs, fb, fn, ib, in, fb/ib)
		if fb/ib > 25 {
			t.Errorf("FLASH barrier pathologically slow: %.1fx ideal", fb/ib)
		}
	}
}

func TestLockHandoffCost(t *testing.T) {
	for _, kind := range []arch.MachineKind{arch.KindFLASH, arch.KindIdeal} {
		cfg := arch.DefaultConfig()
		cfg.Kind = kind
		cfg.Nodes = 8
		cfg.MemBytesPerNode = 1 << 20
		m, err := core.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		w := NewWorld(m)
		lock := w.NewLock(0)
		cell := w.AllocOnNode(arch.LineSize, 1)
		const iters = 20
		err = w.Run(func(c *Ctx) {
			for i := 0; i < iters; i++ {
				lock.Acquire(c)
				c.WriteU(cell, c.ReadU(cell)+1)
				lock.Release(c)
				c.Busy(100)
			}
		}, 500_000_000)
		if err != nil {
			t.Fatal(err)
		}
		if got := *m.Word(cell); got != uint64(8*iters) {
			t.Fatalf("%v: counter %d, want %d", kind, got, 8*iters)
		}
		var naks uint64
		for _, n := range m.Nodes {
			naks += n.CPU.Stats.Naks
		}
		t.Logf("%v: %d cycles for %d critical sections (%.0f/section), naks %d",
			kind, m.Elapsed, 8*iters, float64(m.Elapsed)/float64(8*iters), naks)
	}
}
