package workload

import (
	"testing"

	"flashsim/internal/arch"
	"flashsim/internal/core"
)

func newTestWorld(t *testing.T, nodes int, pl arch.Placement) *World {
	t.Helper()
	cfg := arch.DefaultConfig()
	cfg.Nodes = nodes
	cfg.MemBytesPerNode = 1 << 20
	cfg.Placement = pl
	m, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return NewWorld(m)
}

func TestAllocOnNodePlacement(t *testing.T) {
	w := newTestWorld(t, 4, arch.PlaceFirstTouch)
	for n := arch.NodeID(0); n < 4; n++ {
		a := w.AllocOnNode(100, n)
		if w.Cfg.HomeOf(a) != n {
			t.Fatalf("allocation for node %d homed at %d", n, w.Cfg.HomeOf(a))
		}
		if a%arch.PageSize != 0 {
			t.Fatalf("allocation not page aligned: %#x", a)
		}
	}
}

func TestAllocRoundRobinRotates(t *testing.T) {
	w := newTestWorld(t, 4, arch.PlaceRoundRobin)
	seen := map[arch.NodeID]int{}
	for i := 0; i < 8; i++ {
		seen[w.Cfg.HomeOf(w.Alloc(64))]++
	}
	for n := arch.NodeID(0); n < 4; n++ {
		if seen[n] != 2 {
			t.Fatalf("round-robin distribution: %v", seen)
		}
	}
}

func TestAllocNodeZeroConcentrates(t *testing.T) {
	w := newTestWorld(t, 4, arch.PlaceNodeZero)
	for i := 0; i < 5; i++ {
		if h := w.Cfg.HomeOf(w.Alloc(64)); h != 0 {
			t.Fatalf("node-zero policy allocated on node %d", h)
		}
	}
	if h := w.Cfg.HomeOf(w.AllocPlaced(64, 3)); h != 0 {
		t.Fatalf("AllocPlaced under node-zero went to %d", h)
	}
}

func TestAllocPlacedHonorsPolicy(t *testing.T) {
	ft := newTestWorld(t, 4, arch.PlaceFirstTouch)
	if h := ft.Cfg.HomeOf(ft.AllocPlaced(64, 3)); h != 3 {
		t.Fatalf("first-touch AllocPlaced went to %d, want 3", h)
	}
	rr := newTestWorld(t, 4, arch.PlaceRoundRobin)
	if h := rr.Cfg.HomeOf(rr.AllocPlaced(64, 3)); h != 0 {
		t.Fatalf("round-robin AllocPlaced should rotate from 0, got %d", h)
	}
}

func TestArrayIndexing(t *testing.T) {
	w := newTestWorld(t, 4, arch.PlaceRoundRobin)
	n := 3*ElemsPerPage + 17 // spans four pages
	a := w.NewArray(n)
	if a.Len() != n {
		t.Fatalf("Len = %d, want %d", a.Len(), n)
	}
	// Distinct elements get distinct addresses; pages rotate across homes.
	seen := map[arch.Addr]bool{}
	homes := map[arch.NodeID]bool{}
	for i := 0; i < n; i++ {
		ad := a.Addr(i)
		if seen[ad] {
			t.Fatalf("duplicate address for element %d", i)
		}
		seen[ad] = true
		homes[w.Cfg.HomeOf(ad)] = true
	}
	if len(homes) != 4 {
		t.Fatalf("array pages touched %d homes, want 4", len(homes))
	}
	// Adjacent elements within one page are 8 bytes apart.
	if a.Addr(1)-a.Addr(0) != 8 {
		t.Fatalf("stride = %d", a.Addr(1)-a.Addr(0))
	}
}

func TestArrayBlockedOwnership(t *testing.T) {
	w := newTestWorld(t, 4, arch.PlaceFirstTouch)
	n := 4 * ElemsPerPage
	a := w.NewArrayBlocked(n, 4)
	per := n / 4
	for p := 0; p < 4; p++ {
		for _, i := range []int{p * per, p*per + per - 1} {
			if h := w.Cfg.HomeOf(a.Addr(i)); h != arch.NodeID(p) {
				t.Fatalf("block %d element %d homed at %d", p, i, h)
			}
		}
	}
}

func TestSingleExtent(t *testing.T) {
	a := SingleExtent(0x1000, 64)
	if a.Len() != 64 || a.Addr(0) != 0x1000 || a.Addr(63) != 0x1000+63*8 {
		t.Fatal("single extent addressing wrong")
	}
}

func TestPageColoring(t *testing.T) {
	// Same-index pages on different nodes must land in different cache
	// sets (the skew that prevents interleaved arrays from thrashing).
	w := newTestWorld(t, 4, arch.PlaceRoundRobin)
	waySpan := uint64(w.Cfg.CacheSize / w.Cfg.CacheWays)
	s0 := uint64(w.AllocOnNode(64, 0)) % waySpan
	s1 := uint64(w.AllocOnNode(64, 1)) % waySpan
	if s0 == s1 {
		t.Fatal("node allocators not color-skewed")
	}
}

func TestCtxRandDeterministic(t *testing.T) {
	c1 := &Ctx{prng: 42}
	c2 := &Ctx{prng: 42}
	for i := 0; i < 10; i++ {
		if c1.Rand() != c2.Rand() {
			t.Fatal("Rand not deterministic")
		}
	}
}
