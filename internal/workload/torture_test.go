package workload

import (
	"testing"

	"flashsim/internal/arch"
	"flashsim/internal/core"
)

func tortureConfig(kind arch.MachineKind) arch.Config {
	cfg := arch.DefaultConfig()
	cfg.Kind = kind
	cfg.Nodes = 4
	cfg.CacheSize = 8 << 10 // small cache: forces writebacks and hints
	cfg.MemBytesPerNode = 256 << 10
	cfg.MDCSize = 8 << 10
	return cfg
}

// runTorture drives a mixed random+synchronized workload and returns the
// machine for inspection.
func runTorture(t *testing.T, cfg arch.Config, iters int) (*core.Machine, *World) {
	t.Helper()
	m, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	w := NewWorld(m)
	shared := w.NewArray(4096)
	counters := w.NewArray(64)
	lock := w.NewLock(1)
	barrier := w.NewBarrier(cfg.Nodes, 2)
	total := w.AllocOnNode(arch.LineSize, 3)

	err = w.Run(func(c *Ctx) {
		for i := 0; i < iters; i++ {
			r := c.Rand()
			idx := int(r % 4096)
			switch (r >> 33) % 8 {
			case 0, 1, 2, 3:
				c.ReadU(shared.Addr(idx))
			case 4, 5:
				c.WriteU(shared.Addr(idx), r)
			case 6:
				c.FetchAdd(counters.Addr(int(r%64)), 1)
			case 7:
				c.ReadU(counters.Addr(int(r % 64)))
			}
			c.Busy(int(r % 32))
		}
		barrier.Wait(c)
		for i := 0; i < 25; i++ {
			lock.Acquire(c)
			c.WriteU(total, c.ReadU(total)+1)
			lock.Release(c)
			c.Busy(int(c.Rand() % 64))
		}
		barrier.Wait(c)
	}, 200_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if got := *m.Word(total); got != uint64(cfg.Nodes*25) {
		t.Fatalf("lock-protected counter = %d, want %d", got, cfg.Nodes*25)
	}
	if err := m.CheckCoherence(); err != nil {
		t.Fatal(err)
	}
	return m, w
}

func TestTortureFLASH(t *testing.T) {
	m, _ := runTorture(t, tortureConfig(arch.KindFLASH), 1500)
	if m.Elapsed == 0 {
		t.Fatal("no elapsed time")
	}
	// Re-run for determinism.
	m2, _ := runTorture(t, tortureConfig(arch.KindFLASH), 1500)
	if m.Elapsed != m2.Elapsed {
		t.Fatalf("nondeterministic: %d vs %d cycles", m.Elapsed, m2.Elapsed)
	}
}

func TestTortureIdeal(t *testing.T) {
	m, _ := runTorture(t, tortureConfig(arch.KindIdeal), 1500)
	m2, _ := runTorture(t, tortureConfig(arch.KindIdeal), 1500)
	if m.Elapsed != m2.Elapsed {
		t.Fatalf("nondeterministic: %d vs %d cycles", m.Elapsed, m2.Elapsed)
	}
}

// The FLASH machine must be slower than (or equal to) the ideal machine on
// the same workload — the paper's core premise.
func TestFlashSlowerThanIdeal(t *testing.T) {
	mf, _ := runTorture(t, tortureConfig(arch.KindFLASH), 1000)
	mi, _ := runTorture(t, tortureConfig(arch.KindIdeal), 1000)
	if mf.Elapsed < mi.Elapsed {
		t.Fatalf("FLASH (%d cycles) faster than ideal (%d cycles)", mf.Elapsed, mi.Elapsed)
	}
	t.Logf("FLASH %d cycles, ideal %d cycles (+%.1f%%)", mf.Elapsed, mi.Elapsed,
		100*float64(mf.Elapsed-mi.Elapsed)/float64(mi.Elapsed))
}

// TestTortureBitVector runs the torture workload on the alternative
// bit-vector directory protocol — the same machine running a different
// handler program.
func TestTortureBitVector(t *testing.T) {
	cfg := tortureConfig(arch.KindFLASH)
	cfg.Protocol = arch.ProtoBitVector
	m, _ := runTorture(t, cfg, 1500)
	m2, _ := runTorture(t, cfg, 1500)
	if m.Elapsed != m2.Elapsed {
		t.Fatalf("nondeterministic: %d vs %d", m.Elapsed, m2.Elapsed)
	}
}
