package workload

import (
	"testing"

	"flashsim/internal/arch"
)

// Ctx.Rand must be a pure function of the thread ID and call count —
// independent of Go goroutine scheduling — or runs stop being reproducible.
// Each thread hashes a long Rand stream while contending on a shared lock
// (real coherence traffic perturbs goroutine interleavings), and both the
// per-thread hashes and the simulated clock must be identical across runs.
func TestCtxRandDeterminism(t *testing.T) {
	const nodes = 4
	run := func() ([nodes]uint64, uint64) {
		w := newTestWorld(t, nodes, arch.PlaceRoundRobin)
		lock := w.NewLock(0)
		out := w.AllocOnNode(nodes*8, 0)
		err := w.Run(func(c *Ctx) {
			var h uint64
			for i := 0; i < 2000; i++ {
				h = h*1099511628211 + c.Rand()
				if i%64 == 0 {
					lock.Acquire(c)
					c.WriteU(out+arch.Addr(c.ID)*8, h)
					lock.Release(c)
				}
			}
			lock.Acquire(c)
			c.WriteU(out+arch.Addr(c.ID)*8, h)
			lock.Release(c)
		}, 100_000_000)
		if err != nil {
			t.Fatal(err)
		}
		var hs [nodes]uint64
		for i := range hs {
			hs[i] = *w.M.Word(out + arch.Addr(i)*8)
		}
		return hs, uint64(w.M.Elapsed)
	}

	h1, e1 := run()
	h2, e2 := run()
	if h1 != h2 {
		t.Fatalf("Rand streams differ across runs: %v vs %v", h1, h2)
	}
	if e1 != e2 {
		t.Fatalf("elapsed differs across runs: %d vs %d", e1, e2)
	}
	for i := 0; i < nodes; i++ {
		for j := i + 1; j < nodes; j++ {
			if h1[i] == h1[j] {
				t.Fatalf("threads %d and %d produced identical Rand streams", i, j)
			}
		}
	}
}

// The raw generator must also be stateless with respect to the World: a
// fresh Ctx with the same ID yields the same sequence.
func TestCtxRandPerThreadSeed(t *testing.T) {
	seq := func(id int, n int) []uint64 {
		c := &Ctx{ID: id, prng: uint64(id)*0x9E3779B97F4A7C15 + 0x1234567}
		out := make([]uint64, n)
		for i := range out {
			out[i] = c.Rand()
		}
		return out
	}
	a, b := seq(3, 16), seq(3, 16)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("sequence for one ID not reproducible at %d", i)
		}
	}
	c := seq(4, 16)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different IDs produced identical sequences")
	}
}
