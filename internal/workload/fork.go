package workload

// Snapshot-fork warm starts. A design-space sweep re-simulates the same
// application prefix under every configuration whose differences only
// matter later; RunPrefix simulates that prefix once, Checkpoint captures
// the machine copy-on-write, and Fork replants the checkpoint into another
// machine of identical simulated configuration and resumes it. The forked
// continuation is bit-identical to resuming the donor in place (pinned by
// TestForkDeterminism in internal/exp).
//
// The machine side of a checkpoint is core.Snapshot. The workload side —
// each thread's position inside its coroutine — cannot be captured
// directly (a Go coroutine's stack is opaque), so it is reconstructed by
// replay: the prefix run records the data result of every blocking
// reference, and Fork re-executes the thread body against the log, pumping
// the rebuilt coroutine exactly as many times as the donor did. Everything
// a thread computes between blocking references is a deterministic
// function of those results (the per-thread PRNG is seeded by thread id;
// Go-level inter-thread communication is banned by the package contract),
// so the replayed coroutine parks at the same program point with the same
// locals, ready to produce the exact reference stream the donor would.

import (
	"fmt"

	"flashsim/internal/arch"
	"flashsim/internal/core"
	"flashsim/internal/cpu"
	"flashsim/internal/sim"
)

// ThreadState is one thread's replayable position at a checkpoint.
type ThreadState struct {
	// Log holds the results of the blocking references the thread completed
	// during the prefix, in completion order.
	Log []uint64
	// Pulls is how many times the donor resumed the thread's coroutine.
	Pulls int
	// HasPending/PendingOK mirror the donor source's prepulled-batch state:
	// a blocking reference's completion resumes the thread immediately and
	// holds the batch it produces for the next NextBatch.
	HasPending bool
	PendingOK  bool
}

// Checkpoint pairs a quiescent machine snapshot with the thread replay
// records needed to rebuild the reference sources. Like the snapshot, it
// is immutable and may seed any number of forks.
type Checkpoint struct {
	Snap    *core.Snapshot
	Threads []ThreadState
}

// Prefix is a paused run: the world's machine stopped with every processor
// parked at a batch-refill boundary (or finished) after roughly pauseRefs
// references. Checkpoint captures it; Resume continues it in place (the
// cold leg forks compare against).
type Prefix struct {
	w     *World
	srcs  []*threadSource
	limit uint64
}

// RunPrefix runs fn on every processor until each has retired pauseRefs
// references and paused at its next batch-refill boundary, with all
// outstanding traffic drained. Blocking-reference results are recorded for
// later replay. limit bounds simulated cycles for the whole run including
// any later Resume (0 = none).
func (w *World) RunPrefix(fn func(*Ctx), pauseRefs, limit uint64) (*Prefix, error) {
	if pauseRefs == 0 {
		return nil, fmt.Errorf("workload: RunPrefix needs a positive pause point")
	}
	srcs := make([]cpu.RefSource, w.Cfg.Nodes)
	p := &Prefix{w: w, limit: limit}
	for i := range srcs {
		s := w.newThread(i, fn)
		s.ctx.recOn = true
		p.srcs = append(p.srcs, s)
		srcs[i] = s
	}
	w.M.PauseAfterRefs(pauseRefs)
	if err := w.M.Run(srcs, sim.Cycle(limit)); err != nil {
		return nil, err
	}
	return p, nil
}

// Checkpoint captures the paused machine and the thread replay records.
// Call between RunPrefix and Resume.
func (p *Prefix) Checkpoint() (*Checkpoint, error) {
	snap, err := p.w.M.Snapshot()
	if err != nil {
		return nil, err
	}
	ck := &Checkpoint{Snap: snap}
	for _, s := range p.srcs {
		ck.Threads = append(ck.Threads, ThreadState{
			Log:        append([]uint64(nil), s.ctx.rec...),
			Pulls:      s.pulls,
			HasPending: s.hasPending,
			PendingOK:  s.pendingOK,
		})
	}
	return ck, nil
}

// Resume disarms the pause points and runs the donor machine to
// completion in place. The continuation is the cold leg: every resumed
// processor restarts at max(its pause cycle, the snapshot cycle), exactly
// where a fork restarts, so cold and warm continuations see identical
// event schedules.
func (p *Prefix) Resume() error {
	m := p.w.M
	m.PauseAfterRefs(0)
	return m.ResumeRun(m.Eng.Now(), sim.Cycle(p.limit))
}

// Retarget returns a copy of the world bound to m2, a machine built from
// an identical configuration. Allocation state is copied, so addresses the
// application computed at build time against the donor resolve to the same
// physical locations in m2's store — which is what lets an application's
// Verify (reading through World.M.Word) check a forked machine's memory.
func (w *World) Retarget(m2 *core.Machine) *World {
	return &World{
		M:      m2,
		Cfg:    &m2.Cfg,
		bump:   append([]arch.Addr(nil), w.bump...),
		rrNext: w.rrNext,
	}
}

// Fork installs ck into m2 (which must simulate identical hardware — fresh
// from core.New, recycled via Reset, or donor-restored), rebuilds the
// thread sources by replaying fn against the checkpoint's logs, and runs
// the machine to completion from the snapshot cycle. It returns a world
// retargeted at m2 for verification. limit bounds the resumed run in
// simulated cycles (0 = none), measured on the shared clock the snapshot
// continues.
func (w *World) Fork(ck *Checkpoint, m2 *core.Machine, fn func(*Ctx), limit uint64) (*World, error) {
	if len(ck.Threads) != m2.Cfg.Nodes {
		return nil, fmt.Errorf("workload: Fork: %d thread records for %d nodes", len(ck.Threads), m2.Cfg.Nodes)
	}
	if err := m2.Restore(ck.Snap); err != nil {
		return nil, err
	}
	w2 := w.Retarget(m2)
	srcs := make([]cpu.RefSource, m2.Cfg.Nodes)
	for i := range srcs {
		ts := &ck.Threads[i]
		s := w2.newThread(i, fn)
		s.ctx.replay = append([]uint64(nil), ts.Log...)
		var last []cpu.Ref
		var lastOK bool
		for k := 0; k < ts.Pulls; k++ {
			last, lastOK = s.pull()
		}
		if n := len(s.ctx.replay); n != 0 {
			return nil, fmt.Errorf("workload: Fork: thread %d replay diverged: %d of %d recorded results unconsumed", i, n, len(ts.Log))
		}
		if ts.HasPending {
			s.pending, s.pendingOK, s.hasPending = last, lastOK, true
			if lastOK != ts.PendingOK {
				return nil, fmt.Errorf("workload: Fork: thread %d replay diverged: pending ok=%v, recorded %v", i, lastOK, ts.PendingOK)
			}
		}
		srcs[i] = s
	}
	m2.AttachSources(srcs)
	if err := m2.ResumeRun(ck.Snap.Now, sim.Cycle(limit)); err != nil {
		return nil, err
	}
	return w2, nil
}
