package workload

import (
	"testing"

	"flashsim/internal/arch"
	"flashsim/internal/core"
)

func benchWorld(b *testing.B, nodes int) *World {
	b.Helper()
	cfg := arch.DefaultConfig()
	cfg.Nodes = nodes
	cfg.MemBytesPerNode = 4 << 20
	m, err := core.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	return NewWorld(m)
}

// BenchmarkWriteBurst measures the batched-handshake fast path: a
// write-heavy inner loop pays one workload⇄cpu channel crossing per
// blocking read instead of one per reference.
func BenchmarkWriteBurst(b *testing.B) {
	w := benchWorld(b, 1)
	base := w.AllocOnNode(64*8, 0)
	b.ResetTimer()
	err := w.Run(func(c *Ctx) {
		for i := 0; i < b.N; i++ {
			c.WriteU(base+arch.Addr(i%64)*8, uint64(i))
		}
		c.ReadU(base) // drain the final batch
	}, 0)
	if err != nil {
		b.Fatal(err)
	}
}

// BenchmarkReadRoundTrip measures the blocking path: every reference is a
// read, so every reference flushes a one-element batch and waits for the
// simulated machine — the handshake-dominated worst case.
func BenchmarkReadRoundTrip(b *testing.B) {
	w := benchWorld(b, 1)
	base := w.AllocOnNode(8, 0)
	b.ResetTimer()
	err := w.Run(func(c *Ctx) {
		for i := 0; i < b.N; i++ {
			c.ReadU(base)
		}
	}, 0)
	if err != nil {
		b.Fatal(err)
	}
}

// BenchmarkMixedRefs interleaves writes and reads 7:1, the shape of a
// store-dominated application inner loop.
func BenchmarkMixedRefs(b *testing.B) {
	w := benchWorld(b, 1)
	base := w.AllocOnNode(64*8, 0)
	b.ResetTimer()
	err := w.Run(func(c *Ctx) {
		for i := 0; i < b.N; i++ {
			a := base + arch.Addr(i%64)*8
			if i%8 == 7 {
				c.ReadU(a)
			} else {
				c.WriteU(a, uint64(i))
			}
		}
	}, 0)
	if err != nil {
		b.Fatal(err)
	}
}
