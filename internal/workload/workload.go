// Package workload is the execution-driven front end of the simulator — the
// role Tango Lite played for FlashLite in the paper. Application threads
// run as coroutines, issue memory references through a per-processor
// context, and are resumed in simulated-time order, so data values flow
// through the machine in the order the simulated memory system completes
// them. Synchronization primitives are built on simulated memory (test-and-
// test&set locks, sense-reversing barriers), so lock and barrier traffic
// generates real coherence messages and real hot-spotting.
//
// Contract: application threads must never block on Go-level constructs
// that depend on another simulated thread's progress; all inter-thread
// communication goes through simulated memory.
package workload

import (
	"fmt"
	"iter"
	"math"

	"flashsim/internal/arch"
	"flashsim/internal/core"
	"flashsim/internal/cpu"
	"flashsim/internal/sim"
)

// World wraps a machine with an address-space allocator and thread support.
type World struct {
	M   *core.Machine
	Cfg *arch.Config

	bump   []arch.Addr // per-node page-aligned bump pointer
	rrNext int
}

// NewWorld creates the workload environment for a machine.
func NewWorld(m *core.Machine) *World {
	w := &World{M: m, Cfg: &m.Cfg}
	w.bump = make([]arch.Addr, m.Cfg.Nodes)
	for i := range w.bump {
		// Skew each node's allocation origin by its id (page coloring):
		// the node-memory stride is a multiple of the cache way size, so
		// without the skew, page k of a round-robin array lands in the same
		// cache sets on every node and interleaved arrays thrash a handful
		// of sets.
		w.bump[i] = m.Cfg.NodeBase(arch.NodeID(i)) + arch.Addr(i)*arch.PageSize
	}
	return w
}

// AllocOnNode reserves bytes of memory homed at node n, page-aligned.
func (w *World) AllocOnNode(bytes int, n arch.NodeID) arch.Addr {
	a := w.bump[n]
	pages := (bytes + arch.PageSize - 1) / arch.PageSize
	w.bump[n] += arch.Addr(pages * arch.PageSize)
	if w.bump[n] > w.Cfg.NodeBase(n)+arch.Addr(w.Cfg.MemBytesPerNode) {
		panic(fmt.Sprintf("workload: node %d out of memory", n))
	}
	return a
}

// Alloc reserves bytes under the machine's placement policy. Under
// round-robin (and, for lack of touch information, first-touch) pages
// rotate across nodes; under node-zero everything lands on node 0.
// Contiguity is per page: the returned region is virtually contiguous only
// when it fits in one page or the policy keeps it on one node, so callers
// that index across page boundaries should use AllocStriped or per-node
// allocation. For simplicity Alloc allocates whole pages per node in
// rotation and returns the address of a contiguous region on ONE node when
// bytes <= PageSize.
func (w *World) Alloc(bytes int) arch.Addr {
	switch w.Cfg.Placement {
	case arch.PlaceNodeZero:
		return w.AllocOnNode(bytes, 0)
	default:
		n := arch.NodeID(w.rrNext % w.Cfg.Nodes)
		w.rrNext++
		return w.AllocOnNode(bytes, n)
	}
}

// AllocPlaced reserves bytes with a preferred home, honoring the machine's
// placement policy: under first-touch (partitioned codes touch their own
// data first) the preferred node wins; round-robin ignores the preference;
// node-zero concentrates everything.
func (w *World) AllocPlaced(bytes int, preferred arch.NodeID) arch.Addr {
	switch w.Cfg.Placement {
	case arch.PlaceFirstTouch:
		return w.AllocOnNode(bytes, preferred%arch.NodeID(w.Cfg.Nodes))
	case arch.PlaceNodeZero:
		return w.AllocOnNode(bytes, 0)
	default:
		return w.Alloc(bytes)
	}
}

// Array is a distributed array of 8-byte elements: a sequence of extents,
// each homed on one node, indexed globally. It gives workloads contiguous
// logical indexing over physically distributed pages.
type Array struct {
	extents []extent
	perExt  int // elements per extent
}

type extent struct {
	base arch.Addr
	n    int
}

// ElemsPerPage is the number of 8-byte elements in one placement page.
const ElemsPerPage = arch.PageSize / 8

// NewArray builds a distributed array of n 8-byte elements, placed
// page-by-page per the machine's policy: round-robin rotates pages across
// nodes, node-zero concentrates them, and "first-touch" without touch
// information behaves like round-robin (partitioned workloads use
// NewArrayBlocked for explicit good placement instead).
func (w *World) NewArray(n int) *Array {
	a := &Array{perExt: ElemsPerPage}
	for off := 0; off < n; off += ElemsPerPage {
		sz := ElemsPerPage
		if n-off < sz {
			sz = n - off
		}
		a.extents = append(a.extents, extent{w.Alloc(arch.PageSize), sz})
	}
	return a
}

// NewArrayBlocked builds a distributed array of n elements split into
// `parts` contiguous blocks, block i homed on node i%Nodes — the layout a
// NUMA-aware application (or a first-touch policy under a partitioned
// access pattern) produces.
func (w *World) NewArrayBlocked(n, parts int) *Array {
	if parts <= 0 {
		parts = w.Cfg.Nodes
	}
	a := &Array{perExt: ElemsPerPage}
	per := (n + parts - 1) / parts
	for p := 0; p < parts; p++ {
		lo := p * per
		hi := lo + per
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		node := arch.NodeID(p % w.Cfg.Nodes)
		if w.Cfg.Placement == arch.PlaceNodeZero {
			node = 0
		}
		bytes := (hi - lo) * 8
		base := w.AllocOnNode(bytes, node)
		for off := lo; off < hi; off += ElemsPerPage {
			sz := ElemsPerPage
			if hi-off < sz {
				sz = hi - off
			}
			a.extents = append(a.extents, extent{base, sz})
			base += arch.Addr(sz * 8)
		}
	}
	return a
}

// SingleExtent wraps one contiguous region of n 8-byte elements as an
// Array (for explicitly placed structures like LU blocks).
func SingleExtent(base arch.Addr, n int) *Array {
	return &Array{perExt: n, extents: []extent{{base, n}}}
}

// Addr returns the physical address of element i.
func (a *Array) Addr(i int) arch.Addr {
	e := a.extents[i/a.perExt]
	return e.base + arch.Addr(i%a.perExt)*8
}

// Len returns the element count.
func (a *Array) Len() int {
	n := 0
	for _, e := range a.extents {
		n += e.n
	}
	return n
}

// --- thread contexts ---

// Ctx is a simulated thread's interface to its processor. All methods must
// be called from the thread's own coroutine (the fn passed to Run).
type Ctx struct {
	W  *World
	ID int

	yield  func([]cpu.Ref) bool // hands a batch to the CPU, parks until resumed
	batch  []cpu.Ref            // references issued but not yet handed to the CPU
	out    uint64
	busy   uint32
	senses map[*Barrier]uint64
	prng   uint64

	// proc, set only on sampled machines, lets ReadU try the processor's
	// functional fast path (cpu.FFLocalRead) before paying a coroutine
	// crossing; ffStreak bounds how many reads in a row it may satisfy so
	// the machine keeps advancing underneath a long hit-read run.
	proc     *cpu.CPU
	ffStreak int

	// Snapshot support (see Checkpoint). rec, when recording, accumulates
	// the data result of every blocking reference in completion order.
	// replay, when non-empty, holds recorded results still to be consumed:
	// blocking references yield their batches normally (rebuilding the
	// coroutine's parked position) but take their result from the log
	// instead of from a simulated completion.
	recOn  bool
	rec    []uint64
	replay []uint64
}

// ffLocalMax caps consecutive FFLocalRead hits between coroutine crossings:
// a crossing lets the rest of the machine run, which is what ultimately
// changes the values a data-dependent read loop is watching.
const ffLocalMax = 4096

// maxBatch bounds how many non-blocking references a thread buffers before
// flushing to its processor, so a long write-only loop neither grows memory
// without bound nor starves the simulation goroutine's batch refill.
const maxBatch = 256

// Busy charges n processor instructions of compute time before the next
// reference (4 instructions per system cycle).
func (c *Ctx) Busy(n int) { c.busy += uint32(n) }

// issue appends a non-blocking reference to the thread's pending batch.
// The batch crosses the workload⇄cpu boundary once, at the next blocking
// reference (or at capacity/exit), instead of once per reference.
func (c *Ctx) issue(r cpu.Ref) {
	r.Busy = c.busy + 1 // every reference is at least one instruction
	c.busy = 0
	c.batch = append(c.batch, r)
	if len(c.batch) >= maxBatch {
		c.flush()
	}
}

// flush hands the pending batch to the CPU and parks the thread until the
// simulation wants more references. The CPU has consumed every element by
// the time yield returns (batches are only refilled once exhausted, and a
// blocking reference is always batch-final), so the slice is reused in
// place.
func (c *Ctx) flush() {
	c.ffStreak = 0
	c.yield(c.batch)
	c.batch = c.batch[:0]
}

// issueWait issues r and parks the thread until the simulated machine
// completes it (reads and RMWs): r rides at the end of the pending batch,
// and the CPU resumes the coroutine only after r's done handshake fires.
func (c *Ctx) issueWait(r cpu.Ref) {
	c.issue(r)
	if len(c.batch) > 0 {
		c.flush()
	}
}

// wait issues a blocking reference and returns its data result — the value
// the simulated machine completed it with, recorded if the thread is being
// checkpointed. While replaying a recorded prefix the yields still run
// (walking the coroutine back to its parked position and regenerating the
// reference stream the donor already executed) but the result comes from
// the log: no machine is consuming the batches, so c.out was never written.
func (c *Ctx) wait(r cpu.Ref) uint64 {
	c.issueWait(r)
	if len(c.replay) > 0 {
		c.out = c.replay[0]
		c.replay = c.replay[1:]
	} else if c.recOn {
		c.rec = append(c.rec, c.out)
	}
	return c.out
}

// ReadU loads the 8-byte word at a. On sampled machines a fast-forward
// cache-hit read completes functionally without waking the processor; the
// read's instruction is deferred into the busy count the next crossing
// reference carries, which charge() converts to the same cycle total.
func (c *Ctx) ReadU(a arch.Addr) uint64 {
	if c.proc != nil && c.ffStreak < ffLocalMax {
		if v, ok := c.proc.FFLocalRead(a, c.busy+1); ok {
			// Read-own-writes: stores buffered in the unflushed batch precede
			// this read in program order but haven't reached the processor
			// yet; the latest one to this word wins over the backing store.
			for j := len(c.batch) - 1; j >= 0; j-- {
				if c.batch[j].Addr == a && c.batch[j].Kind == arch.RefWrite {
					v = c.batch[j].WVal
					break
				}
			}
			c.busy++
			c.ffStreak++
			return v
		}
	}
	return c.wait(cpu.Ref{Kind: arch.RefRead, Addr: a, Out: &c.out})
}

// WriteU stores v at a (non-blocking in the simulated machine).
func (c *Ctx) WriteU(a arch.Addr, v uint64) {
	c.issue(cpu.Ref{Kind: arch.RefWrite, Addr: a, WVal: v})
}

// ReadF and WriteF move float64 values.
func (c *Ctx) ReadF(a arch.Addr) float64     { return math.Float64frombits(c.ReadU(a)) }
func (c *Ctx) WriteF(a arch.Addr, v float64) { c.WriteU(a, math.Float64bits(v)) }

// readSync is a spin-loop read, attributed to synchronization time.
func (c *Ctx) readSync(a arch.Addr) uint64 {
	return c.wait(cpu.Ref{Kind: arch.RefRead, Addr: a, Out: &c.out, Sync: true})
}

func (c *Ctx) writeSync(a arch.Addr, v uint64) {
	c.issue(cpu.Ref{Kind: arch.RefWrite, Addr: a, WVal: v, Sync: true})
}

// Swap atomically exchanges v into a, returning the old value.
func (c *Ctx) Swap(a arch.Addr, v uint64) uint64 {
	return c.wait(cpu.Ref{Kind: arch.RefRMW, RMW: cpu.RMWSwap, Addr: a, WVal: v, Out: &c.out, Sync: true})
}

// FetchAdd atomically adds v to a, returning the old value. It is part of
// the synchronization library (stall time charged to Sync).
func (c *Ctx) FetchAdd(a arch.Addr, v uint64) uint64 {
	return c.wait(cpu.Ref{Kind: arch.RefRMW, RMW: cpu.RMWAdd, Addr: a, WVal: v, Out: &c.out, Sync: true})
}

// FetchAddData is an atomic add on application data (stall time charged as
// an ordinary write): the shared-counter updates of codes like MP3D.
func (c *Ctx) FetchAddData(a arch.Addr, v uint64) uint64 {
	return c.wait(cpu.Ref{Kind: arch.RefRMW, RMW: cpu.RMWAdd, Addr: a, WVal: v, Out: &c.out})
}

// Rand returns a deterministic per-thread pseudo-random uint64 (xorshift);
// workloads must not use math/rand global state so runs stay reproducible.
func (c *Ctx) Rand() uint64 {
	c.prng ^= c.prng << 13
	c.prng ^= c.prng >> 7
	c.prng ^= c.prng << 17
	return c.prng
}

// threadSource adapts a Ctx coroutine to cpu.RefSource. Each next() resumes
// the thread until its next batch flush, by direct coroutine switch — no
// scheduler round trip, no cross-processor wakeup. ReadDone (the completion
// of a batch-final blocking reference) resumes the thread immediately; the
// batch it produces is held pending for the NextBatch call that follows.
type threadSource struct {
	next       func() ([]cpu.Ref, bool)
	ctx        *Ctx
	pulls      int
	pending    []cpu.Ref
	pendingOK  bool
	hasPending bool
}

// pull resumes the coroutine once, counting the resume so a checkpoint can
// record how many times the donor advanced this thread — the fork replay
// pumps its reconstructed coroutine exactly that many times to park it at
// the same program point.
func (s *threadSource) pull() ([]cpu.Ref, bool) {
	s.pulls++
	return s.next()
}

func (s *threadSource) NextBatch() ([]cpu.Ref, bool) {
	if s.hasPending {
		b, ok := s.pending, s.pendingOK
		s.pending, s.hasPending = nil, false
		return b, ok
	}
	return s.pull()
}

func (s *threadSource) ReadDone() {
	s.pending, s.pendingOK = s.pull()
	s.hasPending = true
}

// threadSeed is the per-thread xorshift PRNG seed; identical for a thread
// and its replayed fork so Rand streams reproduce.
func threadSeed(i int) uint64 { return uint64(i)*0x9E3779B97F4A7C15 + 0x1234567 }

// newThread builds a Ctx and its coroutine source for processor i running
// fn. The coroutine body is shared by first runs, recorded prefixes, and
// fork replays — only the Ctx mode fields differ.
func (w *World) newThread(i int, fn func(*Ctx)) *threadSource {
	c := &Ctx{
		W: w, ID: i,
		senses: make(map[*Barrier]uint64),
		prng:   threadSeed(i),
	}
	if w.Cfg.Sample.Enabled() {
		c.proc = w.M.Nodes[i].CPU
	}
	next, _ := iter.Pull(func(yield func([]cpu.Ref) bool) {
		c.yield = yield
		defer func() {
			// Trailing non-blocking references still ride to the CPU
			// before the stream ends.
			if len(c.batch) > 0 {
				yield(c.batch)
			}
		}()
		fn(c)
	})
	return &threadSource{next: next, ctx: c}
}

// Run runs one coroutine per processor executing fn(ctx) and runs the
// machine to completion. limit bounds simulated cycles (0 = none).
//
// Threads used to be goroutines parked on a pair of unbuffered channels;
// at simulation scale the park/unpark scheduler traffic cost more host time
// than the simulation itself. iter.Pull's coroutine switch transfers
// control directly, and the simulated behavior is identical either way:
// resume order is decided by simulated time, never by the host scheduler.
func (w *World) Run(fn func(*Ctx), limit uint64) error {
	srcs := make([]cpu.RefSource, w.Cfg.Nodes)
	for i := range srcs {
		srcs[i] = w.newThread(i, fn)
	}
	// A deadlocked or over-limit machine leaves thread coroutines parked in
	// their yield; they are abandoned (the error is fatal to the simulation
	// anyway). On success every source was drained, so every fn returned.
	return w.M.Run(srcs, sim.Cycle(limit))
}
