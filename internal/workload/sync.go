package workload

import "flashsim/internal/arch"

// Lock is a test-and-test&set spin lock living in simulated shared memory.
// Contended acquires spin on a cached copy (coherence misses only on
// release), with bounded exponential backoff — the PARMACS-style locks the
// SPLASH applications used.
type Lock struct {
	addr arch.Addr
}

// NewLock allocates a lock on the given home node (lock placement drives
// hot-spotting, so it is explicit).
func (w *World) NewLock(home arch.NodeID) *Lock {
	return &Lock{addr: w.AllocOnNode(arch.LineSize, home)}
}

// Acquire spins until the lock is held.
func (l *Lock) Acquire(c *Ctx) {
	backoff := 8
	for {
		// Test: spin on the (cached) value.
		for c.readSync(l.addr) != 0 {
			c.Busy(backoff)
			if backoff < 256 {
				backoff *= 2
			}
		}
		// Test-and-set.
		if c.Swap(l.addr, 1) == 0 {
			return
		}
		c.Busy(backoff)
	}
}

// Release frees the lock.
func (l *Lock) Release(c *Ctx) {
	c.writeSync(l.addr, 0)
}

// Barrier is a centralized sense-reversing barrier in simulated memory.
type Barrier struct {
	count arch.Addr
	sense arch.Addr
	n     int
}

// NewBarrier allocates a barrier for n threads on the given home node.
func (w *World) NewBarrier(n int, home arch.NodeID) *Barrier {
	b := &Barrier{n: n}
	b.count = w.AllocOnNode(arch.LineSize, home)
	b.sense = w.AllocOnNode(arch.LineSize, home)
	return b
}

// Wait blocks the thread until all n threads arrive.
func (b *Barrier) Wait(c *Ctx) {
	mySense := c.senses[b] ^ 1
	c.senses[b] = mySense
	if c.FetchAdd(b.count, 1) == uint64(b.n-1) {
		// Last arrival: reset and release.
		c.writeSync(b.count, 0)
		c.writeSync(b.sense, mySense)
		return
	}
	backoff := 8
	for c.readSync(b.sense) != mySense {
		c.Busy(backoff)
		if backoff < 2048 {
			backoff *= 2
		}
	}
}

// Reduce adds v into a shared accumulator under a lock — the common
// end-of-phase reduction pattern.
type Reduction struct {
	lock *Lock
	cell arch.Addr
}

// NewReduction allocates a locked accumulator cell on the given node.
func (w *World) NewReduction(home arch.NodeID) *Reduction {
	return &Reduction{lock: w.NewLock(home), cell: w.AllocOnNode(arch.LineSize, home)}
}

// AddF accumulates a float64 under the lock.
func (r *Reduction) AddF(c *Ctx, v float64) {
	r.lock.Acquire(c)
	c.WriteF(r.cell, c.ReadF(r.cell)+v)
	r.lock.Release(c)
}

// ValueF reads the accumulator.
func (r *Reduction) ValueF(c *Ctx) float64 { return c.ReadF(r.cell) }
