package magic

import (
	"testing"

	"flashsim/internal/arch"
	"flashsim/internal/cpu"
	"flashsim/internal/memsys"
	"flashsim/internal/network"
	"flashsim/internal/protocol"
	"flashsim/internal/sim"
)

type script struct {
	refs []cpu.Ref
	i    int
}

func (s *script) NextBatch() ([]cpu.Ref, bool) {
	if s.i >= len(s.refs) {
		return nil, false
	}
	b := s.refs[s.i : s.i+1]
	s.i++
	return b, true
}
func (s *script) ReadDone() {}

// rig hand-builds a two-node FLASH machine (core would be circular).
type rig struct {
	eng    *sim.Engine
	magics [2]*Magic
	cpus   [2]*cpu.CPU
	prog   *protocol.Program
}

func newRig(t *testing.T, cfg arch.Config, refs [2][]cpu.Ref) *rig {
	t.Helper()
	cfg.Kind = arch.KindFLASH
	cfg.Nodes = 2
	cfg.MemBytesPerNode = 1 << 20
	prog, err := protocol.Build(&cfg)
	if err != nil {
		t.Fatal(err)
	}
	r := &rig{eng: sim.NewEngine(), prog: prog}
	net := network.New(2, 22)
	mem := memsys.NewStore(1 << 18)
	for i := 0; i < 2; i++ {
		ms := memsys.New(cfg.Timing)
		cfgCopy := cfg
		mg, err := New(arch.NodeID(i), r.eng, &cfgCopy, prog, ms, net.Port(arch.NodeID(i), r.eng))
		if err != nil {
			t.Fatal(err)
		}
		p := cpu.New(arch.NodeID(i), r.eng, &cfgCopy, mg, memsys.NewView(mem))
		mg.Attach(p)
		net.Attach(arch.NodeID(i), mg)
		r.magics[i] = mg
		r.cpus[i] = p
		p.SetSource(&script{refs: refs[i]}, nil)
		p.Start()
	}
	if err := r.eng.Run(); err != nil {
		t.Fatal(err)
	}
	return r
}

func TestHandlerDispatchLocalRead(t *testing.T) {
	r := newRig(t, arch.DefaultConfig(), [2][]cpu.Ref{
		{{Kind: arch.RefRead, Addr: 0x1000}},
		nil,
	})
	mg := r.magics[0]
	if mg.HandlerCounts()["pi_get_local"] != 1 {
		t.Fatalf("handler counts: %v", mg.HandlerCounts())
	}
	if mg.Stats.PISends != 1 {
		t.Fatalf("PI sends = %d, want 1 (data reply)", mg.Stats.PISends)
	}
	// The directory must now record the local copy.
	d, err := r.prog.Layout.Decode(mg.PP.Mem, r.magics[0].Cfg.LocalLine(0x1000))
	if err != nil {
		t.Fatal(err)
	}
	if !d.Local || d.Dirty {
		t.Fatalf("dir = %+v, want local clean", d)
	}
}

func TestSpeculativeReadAccounting(t *testing.T) {
	// A clean local read uses its speculative read; a read of a line dirty
	// in a remote cache wastes it.
	r := newRig(t, arch.DefaultConfig(), [2][]cpu.Ref{
		{{Kind: arch.RefRead, Addr: 0x1000},
			{Kind: arch.RefRead, Addr: 0x2000, Busy: 8000}}, // dirty at node 1 by then
		{{Kind: arch.RefWrite, Addr: 0x2000}},
	})
	m := r.magics[0].Mem
	if m.SpecReads < 2 {
		t.Fatalf("spec reads = %d, want >= 2", m.SpecReads)
	}
	if m.SpecUseless == 0 {
		t.Fatal("dirty-remote read should waste its speculative read")
	}
}

func TestSpeculationDisabled(t *testing.T) {
	cfg := arch.DefaultConfig()
	cfg.Speculation = false
	r := newRig(t, cfg, [2][]cpu.Ref{
		{{Kind: arch.RefRead, Addr: 0x1000}},
		nil,
	})
	if r.magics[0].Mem.SpecReads != 0 {
		t.Fatal("speculative reads issued with speculation disabled")
	}
	if r.magics[0].Mem.Reads == 0 {
		t.Fatal("handler-initiated memrd did not reach memory")
	}
	// The read still completes, just slower than the 27-cycle speculative
	// path.
	if r.cpus[0].Stats.ReadStall <= 27 {
		t.Fatalf("read stall %d; expected slower than speculative path", r.cpus[0].Stats.ReadStall)
	}
}

func TestRemoteReadHandlers(t *testing.T) {
	r := newRig(t, arch.DefaultConfig(), [2][]cpu.Ref{
		nil,
		{{Kind: arch.RefRead, Addr: 0x1000}}, // remote read of node 0's line
	})
	if r.magics[1].HandlerCounts()["pi_get_remote"] != 1 {
		t.Fatalf("requester handlers: %v", r.magics[1].HandlerCounts())
	}
	if r.magics[0].HandlerCounts()["ni_get"] != 1 {
		t.Fatalf("home handlers: %v", r.magics[0].HandlerCounts())
	}
	if r.magics[1].HandlerCounts()["ni_put"] != 1 {
		t.Fatalf("reply handlers: %v", r.magics[1].HandlerCounts())
	}
	// Sharer recorded in the home's pointer pool.
	d, err := r.prog.Layout.Decode(r.magics[0].PP.Mem, r.magics[0].Cfg.LocalLine(0x1000))
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Sharers) != 1 || d.Sharers[0] != 1 {
		t.Fatalf("sharers = %v, want [1]", d.Sharers)
	}
}

func TestPPOccupancyAccumulates(t *testing.T) {
	r := newRig(t, arch.DefaultConfig(), [2][]cpu.Ref{
		{{Kind: arch.RefRead, Addr: 0x1000}},
		nil,
	})
	if r.magics[0].PPOcc.Busy == 0 {
		t.Fatal("no PP occupancy recorded")
	}
	if r.magics[0].Stats.Dispatches != 1 {
		t.Fatalf("dispatches = %d, want 1", r.magics[0].Stats.Dispatches)
	}
}
