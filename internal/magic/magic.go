// Package magic models the MAGIC node controller: the programmable heart of
// a FLASH node. It implements the control macropipeline of Section 2 of the
// paper — inbox (queue selection, jump table lookup, speculative memory
// initiation), protocol processor execution via ppsim, and outbox — along
// with the hardwired data-transfer logic timing, the bounded queues of
// Table 3.1, and the PI/NI interface latencies of Table 3.2.
package magic

import (
	"fmt"

	"flashsim/internal/arch"
	"flashsim/internal/cpu"
	"flashsim/internal/memsys"
	"flashsim/internal/network"
	"flashsim/internal/ppisa"
	"flashsim/internal/ppsim"
	"flashsim/internal/protocol"
	"flashsim/internal/sim"
	"flashsim/internal/trace"
)

// Stats aggregates MAGIC-level statistics.
type Stats struct {
	Dispatches    uint64 // handler invocations (excluding pp_init)
	FFDispatches  uint64 // of which ran functionally (fast-forward phases)
	FFNetSends    uint64 // functional node-to-node sends (bypass the modeled network)
	NetSends      uint64
	PISends       uint64
	Interventions uint64
	NetBlocks     uint64 // PP stalls on a full outgoing network queue
	PIBlocks      uint64 // PP stalls on a busy outgoing PI slot
	QueueHighPI   int
	QueueHighNet  int
	BufHigh       int // data buffer high-water mark
	BufOverflow   uint64
}

// handlerAgg accumulates per-handler occupancy (Table 3.4) and the service
// time histogram for one entry point. Completion accounting bumps these
// through a pointer interned in the jump table, keeping handler names (and
// map lookups) entirely off the dispatch hot path.
type handlerAgg struct {
	cycles sim.Cycle
	count  uint64
	// lat histograms PP service time (dispatch through completion,
	// including send/intervention stalls).
	lat trace.Histogram
}

// jtSlot is one predecoded jump-table slot: the handler's pair index and
// speculation flag from the protocol's dispatch rules, resolved once at
// construction.
type jtSlot struct {
	pc    int
	spec  bool
	ok    bool // false: no handler for this (type, path, home) combination
	entry string
	agg   *handlerAgg
}

type queued struct {
	msg   arch.Msg
	ready sim.Cycle
}

// handlerCtx tracks one in-flight handler invocation.
type handlerCtx struct {
	msg        arch.Msg
	entry      string // handler name, for traces and diagnostics only
	pc         int    // interned entry pair index (jump table)
	agg        *handlerAgg
	viaNet     bool
	ff         bool      // functional (fast-forward) invocation: ppEnv skips timing
	dispatched sim.Cycle // handler start time
	segStart   sim.Cycle // start of the current PP run segment

	tid         uint64    // trace id of this invocation (0 = untraced)
	dataReady   sim.Cycle // first word of the data buffer is available
	hasData     bool
	specIssued  bool
	specUsed    bool
	intervened  bool // data buffer was overwritten by a cache retrieval
	blockedNet  bool
	blockedPI   bool
	waitingPC   bool
	pcDone      bool // intervention response arrived before WAITPC executed
	blockedAt   sim.Cycle
	pendingWake bool
}

// Magic is one node's controller.
type Magic struct {
	ID  arch.NodeID
	Eng sim.Scheduler
	Cfg *arch.Config
	T   arch.Timing

	Prog *protocol.Program
	PP   *ppsim.PP
	Mem  *memsys.Memory
	CPU  *cpu.CPU
	Net  *network.Port

	PPOcc sim.OccupancyMeter
	Stats Stats

	// Tr, when non-nil, receives handler spans and message events. Injected
	// per machine (core.Machine.SetTracer).
	Tr *trace.Tracer
	// PPSeries, when non-nil, samples PP busy cycles over fixed windows
	// (core.Machine.EnableOccSampling).
	PPSeries *trace.TimeSeries

	qPI     []queued
	qNetReq []queued
	qNetRpl []queued
	rrPI    bool // round-robin fairness between PI and NI request queues

	outNet int // accepted but not yet injected
	outPI  int // accepted but not yet delivered (capacity 1)
	bufs   int // data buffers in use

	ctx *handlerCtx // nil when the PP is idle

	// jt is the inbox jump table, indexed [viaNet][isHome][msg type]: the
	// protocol's dispatch rules and the handler entry-point map, both
	// string-keyed, resolved once at construction (Section 2's hardware
	// jump table did the same lookup in a dedicated RAM).
	jt [2][2][arch.NumMsgTypes]jtSlot

	// handlers interns one accumulator per handler entry name; jump-table
	// slots sharing an entry share the accumulator.
	handlers map[string]*handlerAgg

	dispatchScheduled bool

	// lastEnd tracks the previous handler's completion for the
	// non-overlap invariant (occupancies must never double-count).
	lastEnd sim.Cycle

	// Sampled execution (arch.Config.Sample): in fast-forward phases
	// messages are processed functionally through runHandlerFF — the same
	// jump table and the same PP program, with fixed charge latencies and
	// synchronous node-to-node chains instead of modeled occupancy, queue
	// contention, and network transit.
	sampling bool
	sample   arch.SampleSpec

	// Peers maps node id to controller for the synchronous fast-forward
	// chains (wired by core on FLASH machines when sampling is enabled).
	// Safe only because sampling serializes the sharded engine.
	Peers []*Magic

	// ffCtx is the reusable functional-invocation context: FF handlers
	// never outlive runHandlerFF, so one scratch struct per controller
	// avoids an allocation per dispatch.
	ffCtx handlerCtx

	// Resolved design knobs: queue/buffer capacities (Table 3.1 defaults,
	// overridable through arch.Config for the design-space sweep) and the
	// PP clock divisor — every PP cycle costs ppDiv system cycles.
	netQCap    int
	dataBufCap int
	ppDiv      sim.Cycle
}

// queue capacities from Table 3.1 (the defaults when arch.Config leaves
// NetQueueCap/DataBufs zero).
const (
	netQueueCap = 16
	piOutCap    = 1
	dataBufs    = 16
)

// New builds a MAGIC controller. Call Attach afterwards to wire the CPU
// (construction order is circular). The protocol's dispatch rules and the
// program's entry-point map are interned into a dense jump table here, so
// an inconsistent protocol/program pairing fails at construction instead
// of mid-simulation.
func New(id arch.NodeID, eng sim.Scheduler, cfg *arch.Config, prog *protocol.Program, mem *memsys.Memory, net *network.Port) (*Magic, error) {
	m := &Magic{
		ID:       id,
		Eng:      eng,
		Cfg:      cfg,
		T:        cfg.Timing,
		Prog:     prog,
		Mem:      mem,
		Net:      net,
		handlers: make(map[string]*handlerAgg),
		sampling: cfg.Sample.Enabled(),
		sample:   cfg.Sample,
	}
	m.netQCap = cfg.NetQueueCap
	if m.netQCap == 0 {
		m.netQCap = netQueueCap
	}
	m.dataBufCap = cfg.DataBufs
	if m.dataBufCap == 0 {
		m.dataBufCap = dataBufs
	}
	m.ppDiv = sim.Cycle(cfg.PPClockDiv)
	if m.ppDiv < 1 {
		m.ppDiv = 1
	}
	mdc := ppsim.NewMDC(cfg.MDCSize, cfg.MDCWays)
	m.PP = ppsim.NewBackend(prog.Code, int(prog.Layout.MemBytes), mdc, (*ppEnv)(m), ppsim.BackendFor(cfg.PPDispatch))
	prog.Layout.InitMemory(m.PP.Mem, id, cfg.NodeBase(id), cfg.Nodes)
	for viaNet := 0; viaNet < 2; viaNet++ {
		for isHome := 0; isHome < 2; isHome++ {
			for t := arch.MsgType(0); t < arch.NumMsgTypes; t++ {
				jt, err := protocol.Dispatch(t, viaNet == 1, isHome == 1)
				if err != nil {
					continue // no handler on this path; stays !ok
				}
				pc, err := m.PP.EntryPC(jt.Entry)
				if err != nil {
					return nil, fmt.Errorf("magic%d: jump table slot %s (viaNet=%v isHome=%v): %w",
						id, t, viaNet == 1, isHome == 1, err)
				}
				agg := m.handlers[jt.Entry]
				if agg == nil {
					agg = &handlerAgg{}
					m.handlers[jt.Entry] = agg
				}
				m.jt[viaNet][isHome][t] = jtSlot{pc: pc, spec: jt.Spec, ok: true, entry: jt.Entry, agg: agg}
			}
		}
	}
	return m, nil
}

// HandlerCycles returns per-handler PP occupancy (Table 3.4), keyed by
// entry-point name. The map is materialized on demand; mutating it does not
// affect the controller.
func (m *Magic) HandlerCycles() map[string]sim.Cycle {
	out := make(map[string]sim.Cycle, len(m.handlers))
	for name, agg := range m.handlers {
		if agg.count > 0 {
			out[name] = agg.cycles
		}
	}
	return out
}

// HandlerCounts returns per-handler invocation counts, keyed by entry name.
func (m *Magic) HandlerCounts() map[string]uint64 {
	out := make(map[string]uint64, len(m.handlers))
	for name, agg := range m.handlers {
		if agg.count > 0 {
			out[name] = agg.count
		}
	}
	return out
}

// HandlerLatencies returns per-handler PP service-time histograms (dispatch
// through completion, including send/intervention stalls). The histograms
// are the live accumulators; callers must not mutate them.
func (m *Magic) HandlerLatencies() map[string]*trace.Histogram {
	out := make(map[string]*trace.Histogram, len(m.handlers))
	for name, agg := range m.handlers {
		if agg.count > 0 {
			out[name] = &agg.lat
		}
	}
	return out
}

// Attach wires the processor and boots the PP (runs pp_init to establish
// the protocol's persistent registers).
func (m *Magic) Attach(c *cpu.CPU) {
	m.CPU = c
	if st, _ := m.PP.Start("pp_init"); st != ppsim.StatusDone {
		panic("magic: pp_init did not complete")
	}
}

// MDC exposes the MAGIC data cache for statistics.
func (m *Magic) MDC() *ppsim.MDC { return m.PP.MDC }

// FromProc receives a message from the processor side; at is when it
// crossed the processor bus.
func (m *Magic) FromProc(msg arch.Msg, at sim.Cycle) {
	m.Eng.At(at+sim.Cycle(m.T.PIInbound), func() {
		m.qPI = append(m.qPI, queued{msg, m.Eng.Now()})
		if len(m.qPI) > m.Stats.QueueHighPI {
			m.Stats.QueueHighPI = len(m.qPI)
		}
		m.tryDispatch()
	})
}

// FromNet receives a message from the interconnect (network.Sink).
func (m *Magic) FromNet(msg arch.Msg) {
	m.Eng.After(sim.Cycle(m.T.NIInbound), func() {
		q := &m.qNetReq
		if msg.Type.IsReply() {
			q = &m.qNetRpl
		}
		*q = append(*q, queued{msg, m.Eng.Now()})
		if n := len(m.qNetReq) + len(m.qNetRpl); n > m.Stats.QueueHighNet {
			m.Stats.QueueHighNet = n
		}
		m.tryDispatch()
	})
}

// tryDispatch starts the next handler if the PP is idle and a message is
// waiting. Replies have priority (deadlock avoidance); the PI and NI
// request queues alternate. In fast-forward phases the queues drain
// functionally instead.
func (m *Magic) tryDispatch() {
	if m.ctx != nil || m.dispatchScheduled {
		return
	}
	if m.sampling && !m.sample.Detailed(uint64(m.Eng.Now())) {
		m.drainFF()
		return
	}
	msg, viaNet, _, ok := m.popQueue()
	if !ok {
		return
	}

	now := m.Eng.Now()
	dispatch := now + sim.Cycle(m.T.InboxSelect) + sim.Cycle(m.T.JumpTable)
	isHome := m.Cfg.HomeOf(msg.Addr) == m.ID
	slot := &m.jt[b2i(viaNet)][b2i(isHome)][msg.Type]
	if !slot.ok {
		panic(fmt.Sprintf("magic%d: no handler for %s (viaNet=%v isHome=%v)", m.ID, msg.Type, viaNet, isHome))
	}

	ctx := &handlerCtx{msg: msg, entry: slot.entry, pc: slot.pc, agg: slot.agg, viaNet: viaNet, dispatched: dispatch}
	if msg.Type.CarriesData() {
		// The data streamed into a buffer alongside the header.
		ctx.hasData = true
		ctx.dataReady = now
		m.allocBuf()
	}
	if slot.spec && m.Cfg.Speculation {
		fw, _ := m.Mem.SpeculativeRead(dispatch)
		ctx.specIssued = true
		if !ctx.hasData {
			ctx.dataReady = fw + 1
			m.allocBuf()
		}
	}
	m.ctx = ctx
	m.dispatchScheduled = true
	m.Eng.At(dispatch, func() {
		m.dispatchScheduled = false
		m.startHandler()
	})
}

// popQueue removes the next message under the inbox arbitration rules:
// replies first, then PI/NI request round-robin. ready is the message's
// arrival time (used by the functional drain; detailed dispatch runs off
// the engine clock).
func (m *Magic) popQueue() (msg arch.Msg, viaNet bool, ready sim.Cycle, ok bool) {
	switch {
	case len(m.qNetRpl) > 0:
		msg, viaNet, ready = m.qNetRpl[0].msg, true, m.qNetRpl[0].ready
		m.qNetRpl = m.qNetRpl[1:]
	case len(m.qPI) > 0 && (m.rrPI || len(m.qNetReq) == 0):
		msg, viaNet, ready = m.qPI[0].msg, false, m.qPI[0].ready
		m.qPI = m.qPI[1:]
		m.rrPI = false
	case len(m.qNetReq) > 0:
		msg, viaNet, ready = m.qNetReq[0].msg, true, m.qNetReq[0].ready
		m.qNetReq = m.qNetReq[1:]
		m.rrPI = true
	default:
		return arch.Msg{}, false, 0, false
	}
	return msg, viaNet, ready, true
}

// injectFF hands a message to this controller functionally, with at as its
// nominal arrival time. If the PP is busy — a detailed handler is still in
// flight across the phase boundary, or an outer functional handler on this
// node's chain is mid-run — the message queues and drains when the PP
// frees. Otherwise the handler (and everything it causes, recursively
// across nodes) runs to completion right now. Safe only single-threaded:
// the sequential engine always is, and core serializes the sharded engine
// whenever sampling is enabled.
func (m *Magic) injectFF(msg arch.Msg, viaNet bool, at sim.Cycle) {
	if m.ctx != nil || !m.queuesEmpty() {
		q := &m.qPI
		if viaNet {
			q = &m.qNetReq
			if msg.Type.IsReply() {
				q = &m.qNetRpl
			}
		}
		*q = append(*q, queued{msg, at})
		if m.ctx == nil {
			m.drainFF()
		}
		return
	}
	m.runHandlerFF(msg, viaNet, at)
	m.drainFF()
}

// FromProcFF is the functional counterpart of FromProc: the miss request
// enters the controller synchronously (cpu.Ctl).
func (m *Magic) FromProcFF(msg arch.Msg, at sim.Cycle) {
	m.injectFF(msg, false, at+sim.Cycle(m.T.PIInbound))
}

func (m *Magic) queuesEmpty() bool {
	return len(m.qPI) == 0 && len(m.qNetReq) == 0 && len(m.qNetRpl) == 0
}

// drainFF empties the inbox queues functionally: each handler runs to
// completion through the regular jump table and PP program, so directory
// state, the MDC, processor caches, and memory values evolve exactly as the
// protocol dictates — only the timing (PP occupancy, queue contention,
// memory/bus reservations, network transit) is replaced by fixed charges.
func (m *Magic) drainFF() {
	for m.ctx == nil {
		msg, viaNet, ready, ok := m.popQueue()
		if !ok {
			return
		}
		m.runHandlerFF(msg, viaNet, ready)
	}
}

// runHandlerFF executes one handler invocation functionally. Sends always
// succeed (functional queues are unbounded), processor-cache interventions
// resolve synchronously, so the PP can only return WaitPC transiently —
// never BlockedSend — and the resume loop below is bounded.
func (m *Magic) runHandlerFF(msg arch.Msg, viaNet bool, at sim.Cycle) {
	isHome := m.Cfg.HomeOf(msg.Addr) == m.ID
	slot := &m.jt[b2i(viaNet)][b2i(isHome)][msg.Type]
	if !slot.ok {
		panic(fmt.Sprintf("magic%d: no handler for %s (viaNet=%v isHome=%v)", m.ID, msg.Type, viaNet, isHome))
	}
	dispatch := at + sim.Cycle(m.T.InboxSelect) + sim.Cycle(m.T.JumpTable)
	ctx := &m.ffCtx
	*ctx = handlerCtx{msg: msg, entry: slot.entry, pc: slot.pc, agg: slot.agg, viaNet: viaNet, ff: true, dispatched: dispatch, segStart: dispatch}
	if msg.Type.CarriesData() {
		ctx.hasData = true
		ctx.dataReady = dispatch
	}
	m.ctx = ctx
	m.Stats.Dispatches++
	m.Stats.FFDispatches++

	pp := m.PP
	pp.InHeader(ppisa.HdrType, uint64(msg.Type))
	pp.InHeader(ppisa.HdrAddr, uint64(msg.Addr))
	pp.InHeader(ppisa.HdrSrc, uint64(msg.Src))
	pp.InHeader(ppisa.HdrReq, uint64(msg.Req))
	pp.InHeader(ppisa.HdrAux, uint64(msg.Aux))
	pp.InHeader(ppisa.HdrSelf, uint64(m.ID))
	if isHome {
		pp.InHeader(ppisa.HdrDirOff, m.Prog.Layout.DirOffset(m.Cfg.LocalLine(msg.Addr)))
	} else {
		pp.InHeader(ppisa.HdrDirOff, uint64(m.Cfg.HomeOf(msg.Addr)))
	}

	st, _ := pp.StartAt(ctx.pc)
	for i := 0; st != ppsim.StatusDone; i++ {
		if i > 1<<16 {
			panic(fmt.Sprintf("magic%d: functional handler %s did not converge (status %v)", m.ID, ctx.entry, st))
		}
		st, _ = pp.Resume()
	}
	// Census only: invocation counts stay exact, timing aggregates
	// (occupancy, service-time histograms) see no functional handlers.
	ctx.agg.count++
	m.ctx = nil
}

func (m *Magic) startHandler() {
	ctx := m.ctx
	m.Stats.Dispatches++
	if m.Tr.Active() {
		// The invocation's id is minted at dispatch; the span itself is
		// emitted at completion, when the duration is known.
		ctx.tid = m.Tr.NewID()
	}

	// Inbox header preprocessing.
	pp := m.PP
	pp.InHeader(ppisa.HdrType, uint64(ctx.msg.Type))
	pp.InHeader(ppisa.HdrAddr, uint64(ctx.msg.Addr))
	pp.InHeader(ppisa.HdrSrc, uint64(ctx.msg.Src))
	pp.InHeader(ppisa.HdrReq, uint64(ctx.msg.Req))
	pp.InHeader(ppisa.HdrAux, uint64(ctx.msg.Aux))
	pp.InHeader(ppisa.HdrSelf, uint64(m.ID))
	if m.Cfg.HomeOf(ctx.msg.Addr) == m.ID {
		pp.InHeader(ppisa.HdrDirOff, m.Prog.Layout.DirOffset(m.Cfg.LocalLine(ctx.msg.Addr)))
	} else {
		pp.InHeader(ppisa.HdrDirOff, uint64(m.Cfg.HomeOf(ctx.msg.Addr)))
	}

	ctx.segStart = ctx.dispatched
	st, cyc := pp.StartAt(ctx.pc)
	m.handleStatus(st, cyc)
}

// handleStatus advances MAGIC state after a PP run segment.
func (m *Magic) handleStatus(st ppsim.Status, cyc uint64) {
	ctx := m.ctx
	end := ctx.segStart + sim.Cycle(cyc)*m.ppDiv
	switch st {
	case ppsim.StatusDone:
		if ctx.dispatched < m.lastEnd {
			panic(fmt.Sprintf("magic%d: handler %s dispatched at %d overlaps previous end %d",
				m.ID, ctx.entry, ctx.dispatched, m.lastEnd))
		}
		m.lastEnd = end
		occ := end - ctx.dispatched
		m.PPOcc.AddBusy(occ)
		m.PPSeries.Add(uint64(ctx.dispatched), uint64(occ))
		ctx.agg.cycles += occ
		ctx.agg.count++
		ctx.agg.lat.Observe(uint64(occ))
		if m.Tr.Active() {
			m.Tr.Emit(trace.Event{
				Cycle: uint64(ctx.dispatched), Dur: uint64(occ), Node: int32(m.ID),
				Kind: trace.KindHandler, Addr: uint64(ctx.msg.Addr),
				ID: ctx.tid, Parent: ctx.msg.TID, Name: ctx.entry,
			})
		}
		if ctx.specIssued && (!ctx.specUsed || ctx.intervened) {
			m.Mem.MarkUseless()
		}
		if ctx.hasData || ctx.specIssued {
			m.freeBuf()
		}
		// The PP stays claimed until the handler's last cycle retires; the
		// run segment executed synchronously ahead of the clock.
		m.Eng.At(end, func() {
			m.ctx = nil
			m.tryDispatch()
		})

	case ppsim.StatusBlockedSend:
		ctx.blockedAt = end
		// The waker (an injection/delivery completion event) resumes us.
		// If capacity already freed between the failed TrySend and now,
		// wake immediately.
		if ctx.blockedNet && m.outNet < m.netQCap {
			m.wake(end)
		} else if ctx.blockedPI && m.outPI < piOutCap {
			m.wake(end)
		}

	case ppsim.StatusWaitPC:
		ctx.blockedAt = end
		if ctx.pcDone {
			ctx.pcDone = false
			m.wake(end)
		} else {
			ctx.waitingPC = true
			// The intervention completion callback resumes us.
		}
	}
}

// wake resumes a blocked PP at time t (>= the block time).
func (m *Magic) wake(t sim.Cycle) {
	ctx := m.ctx
	if ctx == nil || ctx.pendingWake {
		return
	}
	ctx.pendingWake = true
	if t < ctx.blockedAt {
		t = ctx.blockedAt
	}
	m.Eng.At(t, func() {
		ctx.pendingWake = false
		ctx.blockedNet, ctx.blockedPI, ctx.waitingPC = false, false, false
		ctx.segStart = m.Eng.Now()
		st, cyc := m.PP.Resume()
		m.handleStatus(st, cyc)
	})
}

func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}

func (m *Magic) allocBuf() {
	m.bufs++
	if m.bufs > m.Stats.BufHigh {
		m.Stats.BufHigh = m.bufs
	}
	if m.bufs > m.dataBufCap {
		m.Stats.BufOverflow++
	}
}

func (m *Magic) freeBuf() {
	if m.bufs > 0 {
		m.bufs--
	}
}

// ppEnv adapts Magic to the ppsim.Env interface.
type ppEnv Magic

func (e *ppEnv) magic() *Magic { return (*Magic)(e) }

// TrySend launches an outgoing message composed by the handler.
func (e *ppEnv) TrySend(h ppsim.OutHeader, dt uint64) bool {
	m := e.magic()
	ctx := m.ctx
	if ctx.ff {
		return m.sendFF(h)
	}
	tSend := ctx.segStart + sim.Cycle(dt)*m.ppDiv
	mt := arch.MsgType(h.Type)

	if h.Iface == ppisa.SendPI {
		switch mt {
		case arch.MsgPIInval, arch.MsgPIDowngr, arch.MsgPIFlush:
			return m.sendIntervention(mt, arch.Addr(h.Addr), tSend)
		}
		return m.sendToPI(h, tSend)
	}
	return m.sendToNet(h, tSend)
}

// sendFF is the functional outbox: sends never block (queues are unbounded
// functionally), interventions resolve synchronously, local replies deliver
// synchronously to the processor, and node-to-node messages hop straight
// into the destination controller with a fixed transit charge — no engine
// events, no modeled network. Anything a synchronous hop cannot run
// immediately (the destination PP is busy) queues there and drains when it
// frees, so chains always terminate.
func (m *Magic) sendFF(h ppsim.OutHeader) bool {
	ctx := m.ctx
	mt := arch.MsgType(h.Type)
	if h.Iface == ppisa.SendPI {
		switch mt {
		case arch.MsgPIInval, arch.MsgPIDowngr, arch.MsgPIFlush:
			m.Stats.Interventions++
			resp := m.CPU.InterveneFF(mt, arch.Addr(h.Addr))
			if mt != arch.MsgPIInval {
				// The handler's upcoming WAITPC finds the response already
				// recorded; runHandlerFF's resume loop carries it through.
				if resp == arch.MsgPCData {
					m.PP.SetPCResponse(1)
					ctx.hasData = true
					ctx.dataReady = ctx.dispatched
				} else {
					m.PP.SetPCResponse(0)
				}
			}
			return true
		}
		m.Stats.PISends++
		at := ctx.dispatched + sim.Cycle(m.T.OutboxOut) + sim.Cycle(m.T.PIOutbound) + sim.Cycle(m.T.PIBusWord)
		// Synchronous delivery: if this resumes the processor and it issues
		// a new miss, the re-entrant request queues (the PP is busy with
		// this handler) and drains when we finish.
		m.CPU.DeliverFF(m.msgFrom(h), at)
		return true
	}
	m.Stats.NetSends++
	m.Stats.FFNetSends++
	at := ctx.dispatched + sim.Cycle(m.T.OutboxOut) + sim.Cycle(m.T.NIOutbound) +
		sim.Cycle(m.T.NetTransit) + sim.Cycle(m.T.NIInbound)
	m.Peers[h.Dst].injectFF(m.msgFrom(h), true, at)
	return true
}

// sendIntervention issues a processor-cache transaction. For
// PIDowngr/PIFlush the handler stalls with WAITPC afterwards; PIInval is
// fire-and-forget.
func (m *Magic) sendIntervention(mt arch.MsgType, addr arch.Addr, tSend sim.Cycle) bool {
	m.Stats.Interventions++
	ctx := m.ctx
	at := tSend + sim.Cycle(m.T.OutboxOut) + sim.Cycle(m.T.PIOutbound)
	wait := mt != arch.MsgPIInval
	m.CPU.Intervene(mt, addr, at, func(resp arch.MsgType, firstData sim.Cycle) {
		if !wait {
			return
		}
		if resp == arch.MsgPCData {
			m.PP.SetPCResponse(1)
			if !ctx.hasData && !ctx.specIssued {
				m.allocBuf()
			}
			ctx.hasData = true
			ctx.intervened = true
			ctx.dataReady = firstData + 1
		} else {
			m.PP.SetPCResponse(0)
		}
		if ctx.waitingPC {
			m.wake(m.Eng.Now())
		} else {
			// The PP has not reached its WAITPC yet (response raced the
			// handler); mark completion so handleStatus wakes us directly.
			ctx.pcDone = true
		}
	})
	return true
}

// sendToPI delivers a reply (PUT/PUTX/NAK) to the local processor.
func (m *Magic) sendToPI(h ppsim.OutHeader, tSend sim.Cycle) bool {
	if m.outPI >= piOutCap {
		m.ctx.blockedPI = true
		m.Stats.PIBlocks++
		return false
	}
	m.outPI++
	m.Stats.PISends++
	ctx := m.ctx
	hdrReady := tSend + sim.Cycle(m.T.OutboxOut)
	var deliver sim.Cycle
	if h.Data {
		if ctx.specIssued && !ctx.intervened {
			ctx.specUsed = true
		}
		deliver = hdrReady + sim.Cycle(m.T.PIOutbound)
		if ctx.dataReady > deliver {
			deliver = ctx.dataReady
		}
		deliver += sim.Cycle(m.T.PIBusWord)
	} else {
		deliver = hdrReady + sim.Cycle(m.T.PIOutbound) + sim.Cycle(m.T.PIBusWord)
	}
	msg := m.msgFrom(h)
	m.Eng.At(deliver, func() {
		m.outPI--
		if m.ctx != nil && m.ctx.blockedPI {
			m.wake(m.Eng.Now())
		}
		m.CPU.Deliver(msg, m.Eng.Now())
	})
	return true
}

// sendToNet injects a message into the interconnect through the outgoing
// network queue (capacity 16) and the NI outbound stage.
func (m *Magic) sendToNet(h ppsim.OutHeader, tSend sim.Cycle) bool {
	if m.outNet >= m.netQCap {
		m.ctx.blockedNet = true
		m.Stats.NetBlocks++
		return false
	}
	m.outNet++
	m.Stats.NetSends++
	ctx := m.ctx
	hdrReady := tSend + sim.Cycle(m.T.OutboxOut)
	inject := hdrReady
	if h.Data {
		if ctx.specIssued && !ctx.intervened {
			ctx.specUsed = true
		}
		if ctx.dataReady > inject {
			inject = ctx.dataReady
		}
	}
	inject += sim.Cycle(m.T.NIOutbound)
	msg := m.msgFrom(h)
	m.Eng.At(inject, func() {
		m.outNet--
		if m.ctx != nil && m.ctx.blockedNet {
			m.wake(m.Eng.Now())
		}
		m.Net.Send(m.Eng.Now(), msg)
	})
	return true
}

func (m *Magic) msgFrom(h ppsim.OutHeader) arch.Msg {
	db := int16(-1)
	if h.Data {
		db = 0
	}
	var tid uint64
	if m.ctx != nil {
		tid = m.ctx.tid // causal parent: the composing handler invocation
	}
	return arch.Msg{
		Type: arch.MsgType(h.Type),
		Addr: arch.Addr(h.Addr),
		Src:  m.ID,
		Dst:  arch.NodeID(h.Dst),
		Req:  arch.NodeID(h.Req),
		Aux:  uint32(h.Aux),
		DB:   db,
		TID:  tid,
	}
}

// MemRead handles a handler-initiated memory read. When the inbox already
// issued the speculative read for this message the two coalesce.
func (e *ppEnv) MemRead(addr uint64, dt uint64) {
	m := e.magic()
	ctx := m.ctx
	if ctx.ff {
		// Functional: data values live in the backing store, so there is
		// nothing to move — just mark the buffer present, with no memory
		// controller reservation or occupancy.
		ctx.hasData = true
		ctx.dataReady = m.Eng.Now()
		return
	}
	if ctx.specIssued {
		return // data already on the way
	}
	fw, _ := m.Mem.Read(ctx.segStart + sim.Cycle(dt)*m.ppDiv)
	if !ctx.hasData {
		m.allocBuf()
		ctx.hasData = true
	}
	ctx.dataReady = fw + 1
}

// MemWrite writes the handler's data buffer back to memory (posted).
func (e *ppEnv) MemWrite(addr uint64, dt uint64) {
	m := e.magic()
	if m.ctx.ff {
		return
	}
	m.Mem.Write(m.ctx.segStart + sim.Cycle(dt)*m.ppDiv)
}

// MDCFill services a MAGIC data cache miss: a full-line read from local
// memory (plus a posted writeback of the victim when dirty). The returned
// stall covers queueing plus the 29-cycle line access.
func (e *ppEnv) MDCFill(addr uint64, writeback bool, dt uint64) uint64 {
	m := e.magic()
	if m.ctx == nil || m.ctx.ff {
		// Boot-time fill (pp_init) or a functional handler: the MDC tag
		// state already updated inside ppsim; charge the flat miss penalty
		// with no memory reservation. The penalty is system cycles; the PP
		// counts its own (possibly slower) cycles, so divide rounding up.
		return uint64((m.T.MDCMiss + uint32(m.ppDiv) - 1) / uint32(m.ppDiv))
	}
	t := m.ctx.segStart + sim.Cycle(dt)*m.ppDiv
	_, done := m.Mem.Read(t)
	if writeback {
		m.Mem.Write(done)
	}
	// The memory stall elapsed in system cycles; the PP charges it in PP
	// cycles, rounding up so the handler never resumes before the data.
	return uint64((done - t + m.ppDiv - 1) / m.ppDiv)
}

// HandlerStat is one handler entry's accumulated occupancy in a snapshot.
type HandlerStat struct {
	Cycles sim.Cycle
	Count  uint64
	Lat    trace.Histogram
}

// MagicState is the deterministic simulation state of one quiesced
// controller: protocol processor (registers + protocol memory, which holds
// the directory), MDC contents, occupancy and statistics. Queues must be
// empty and the PP idle — Machine.Snapshot drains the engine first.
type MagicState struct {
	PP       ppsim.PPState
	MDC      ppsim.MDCState
	PPOcc    sim.OccupancyMeter
	Stats    Stats
	LastEnd  sim.Cycle
	RRPI     bool
	Handlers map[string]HandlerStat
}

// CaptureState snapshots a quiesced controller. It panics if a handler is
// in flight, any inbox queue is nonempty, or outbound slots / data buffers
// are in use: such a machine has pending events and is not at a snapshot
// point.
func (m *Magic) CaptureState() MagicState {
	if m.ctx != nil || m.dispatchScheduled || !m.queuesEmpty() ||
		m.outNet != 0 || m.outPI != 0 || m.bufs != 0 {
		panic(fmt.Sprintf("magic%d: CaptureState before quiescence: %s", m.ID, m.DebugState()))
	}
	st := MagicState{
		PP:       m.PP.CaptureState(),
		MDC:      m.PP.MDC.CaptureState(),
		PPOcc:    m.PPOcc,
		Stats:    m.Stats,
		LastEnd:  m.lastEnd,
		RRPI:     m.rrPI,
		Handlers: make(map[string]HandlerStat, len(m.handlers)),
	}
	for name, agg := range m.handlers {
		st.Handlers[name] = HandlerStat{Cycles: agg.cycles, Count: agg.count, Lat: agg.lat}
	}
	return st
}

// RestoreState installs a captured state into a controller built for the
// same protocol program and configuration.
func (m *Magic) RestoreState(st MagicState) {
	m.PP.RestoreState(st.PP)
	m.PP.MDC.RestoreState(st.MDC)
	m.PPOcc = st.PPOcc
	m.Stats = st.Stats
	m.lastEnd = st.LastEnd
	m.rrPI = st.RRPI
	for name, agg := range m.handlers {
		h := st.Handlers[name] // zero value for never-invoked handlers
		agg.cycles, agg.count, agg.lat = h.Cycles, h.Count, h.Lat
	}
	m.qPI, m.qNetReq, m.qNetRpl = nil, nil, nil
	m.outNet, m.outPI, m.bufs = 0, 0, 0
	m.ctx = nil
	m.dispatchScheduled = false
}

// Reset returns the controller to its freshly constructed-and-attached
// state: protocol memory reinitialized and pp_init re-run, MDC and all
// statistics cleared. The interned jump table and handler map survive.
func (m *Magic) Reset() {
	m.PP.Reset()
	m.PP.MDC.Reset()
	m.Prog.Layout.InitMemory(m.PP.Mem, m.ID, m.Cfg.NodeBase(m.ID), m.Cfg.Nodes)
	if st, _ := m.PP.Start("pp_init"); st != ppsim.StatusDone {
		panic("magic: pp_init did not complete")
	}
	m.PPOcc = sim.OccupancyMeter{}
	m.Stats = Stats{}
	for _, agg := range m.handlers {
		*agg = handlerAgg{}
	}
	m.qPI, m.qNetReq, m.qNetRpl = nil, nil, nil
	m.rrPI = false
	m.outNet, m.outPI, m.bufs = 0, 0, 0
	m.ctx = nil
	m.dispatchScheduled = false
	m.lastEnd = 0
}

// DebugState renders the controller's queue/handler state for hang diagnosis.
func (m *Magic) DebugState() string {
	s := fmt.Sprintf("ctx=%v qPI=%d qNetReq=%d qNetRpl=%d outPI=%d outNet=%d", m.ctx != nil, len(m.qPI), len(m.qNetReq), len(m.qNetRpl), m.outPI, m.outNet)
	for _, q := range m.qPI {
		s += fmt.Sprintf(" PI{%v %#x src=%d}", q.msg.Type, q.msg.Addr, q.msg.Src)
	}
	for _, q := range m.qNetReq {
		s += fmt.Sprintf(" NReq{%v %#x src=%d}", q.msg.Type, q.msg.Addr, q.msg.Src)
	}
	for _, q := range m.qNetRpl {
		s += fmt.Sprintf(" NRpl{%v %#x src=%d}", q.msg.Type, q.msg.Addr, q.msg.Src)
	}
	return s
}
