package core

import (
	"strconv"

	"flashsim/internal/metrics"
	"flashsim/internal/ppsim"
)

// EnableMetrics attaches a metrics registry to the machine and turns on the
// engine's host-side self-profiling. Call before Run; after Run (success or
// deadlock) the registry holds the machine-level series described in
// DESIGN.md §12. Purely observational: simulated cycles are bit-identical
// with metrics on or off, which TestMetricsDoNotPerturbSimulation pins.
func (m *Machine) EnableMetrics(reg *metrics.Registry) {
	m.Metrics = reg
	if reg != nil {
		m.Eng.EnableProfiling()
	}
}

// publishMetrics writes the machine's post-run counters and the engine's
// host-cost profile into the registry. Called once at the end of Run, on
// both the success and the error paths, so even a deadlocked or
// cycle-limited run leaves an inspectable snapshot behind.
func (m *Machine) publishMetrics() {
	reg := m.Metrics
	if reg == nil {
		return
	}
	reg.Gauge("flash_cycles").Set(int64(m.Elapsed))
	reg.Counter("flashsim_sim_events_total").Add(m.Eng.ExecutedEvents())
	reg.Counter("flashsim_net_msgs_total").Add(m.Net.TotalMsgs())
	reg.Counter("flashsim_net_data_msgs_total").Add(m.Net.TotalDataMsgs())
	reg.Counter("flashsim_net_reply_msgs_total").Add(m.Net.TotalReplyMsgs())
	var dispatches uint64
	for _, n := range m.Nodes {
		if n.Magic != nil {
			dispatches += n.Magic.Stats.Dispatches
		}
	}
	if dispatches != 0 {
		reg.Counter("flashsim_pp_dispatches_total").Add(dispatches)
	}
	hits, misses, evictions := ppsim.CompileCacheStats()
	reg.Gauge("flashsim_pp_compile_cache_hits").Set(int64(hits))
	reg.Gauge("flashsim_pp_compile_cache_misses").Set(int64(misses))
	reg.Gauge("flashsim_pp_compile_cache_evictions").Set(int64(evictions))

	p := m.Eng.Profile()
	if p == nil {
		return
	}
	reg.Counter("flashsim_engine_run_ns_total", "engine", p.Engine).Add(uint64(p.RunNS))
	if p.MergeNS != 0 {
		reg.Counter("flashsim_engine_merge_ns_total").Add(uint64(p.MergeNS))
	}
	if p.DrainNS != 0 {
		reg.Counter("flashsim_engine_outbox_drain_ns_total").Add(uint64(p.DrainNS))
	}
	for w, ns := range p.BarrierNS {
		if ns != 0 {
			reg.Counter("flashsim_engine_barrier_wait_ns_total", "worker", itoa(w)).Add(uint64(ns))
		}
	}
	for w, ns := range p.HorizonNS {
		if ns != 0 {
			reg.Counter("flashsim_engine_horizon_wait_ns_total", "worker", itoa(w)).Add(uint64(ns))
		}
	}
	if p.SolveNS != 0 {
		reg.Counter("flashsim_engine_solve_ns_total").Add(uint64(p.SolveNS))
	}
	if ops := p.SyncOps(); ops != 0 {
		reg.Counter("flashsim_engine_sync_ops_total", "sync", p.Sync).Add(ops)
	}
	if p.Solves != 0 {
		reg.Counter("flashsim_engine_solves_total").Add(p.Solves)
		reg.Counter("flashsim_engine_solve_ops_total").Add(p.SolveOps)
		reg.Counter("flashsim_engine_wait_ops_total").Add(p.WaitOps)
		reg.Counter("flashsim_engine_gate_advances_total").Add(p.GateAdvances)
	}
	for i := range p.Shards {
		s := &p.Shards[i]
		shard := itoa(i)
		reg.Counter("flashsim_engine_window_exec_ns_total", "shard", shard).Add(uint64(s.ExecNS))
		reg.Counter("flashsim_engine_events_total", "shard", shard).Add(s.Executed)
		if s.Windows != 0 {
			reg.Counter("flashsim_engine_windows_total", "shard", shard).Add(s.Windows)
			reg.Counter("flashsim_engine_empty_windows_total", "shard", shard).Add(s.EmptyWindows)
		}
		reg.Gauge("flashsim_engine_heap_hiwater", "shard", shard).SetMax(int64(s.HeapHiWater))
		if s.Publishes != 0 {
			reg.Counter("flashsim_engine_watermark_publishes_total", "shard", shard).Add(s.Publishes)
		}
		if s.InboxDrains != 0 {
			reg.Counter("flashsim_engine_inbox_drains_total", "shard", shard).Add(s.InboxDrains)
		}
		if s.InboxFlushes != 0 {
			reg.Counter("flashsim_engine_inbox_flushes_total", "shard", shard).Add(s.InboxFlushes)
		}
		for dst, n := range s.OutboxSent {
			if n != 0 {
				reg.Counter("flashsim_engine_outbox_msgs_total", "src", shard, "dst", itoa(dst)).Add(n)
			}
		}
	}
}

func itoa(i int) string { return strconv.Itoa(i) }
