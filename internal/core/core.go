// Package core assembles whole machines — FLASH nodes built around the
// programmable MAGIC controller, or the idealized hardwired machine — and
// provides the run driver the examples, experiments, and benchmarks use.
// This is the public face of the library: construct a Machine from an
// arch.Config, attach one reference source per processor, and Run.
package core

import (
	"fmt"
	"os"

	"flashsim/internal/arch"
	"flashsim/internal/cpu"
	"flashsim/internal/ideal"
	"flashsim/internal/magic"
	"flashsim/internal/memsys"
	"flashsim/internal/metrics"
	"flashsim/internal/network"
	"flashsim/internal/protocol"
	"flashsim/internal/sim"
	"flashsim/internal/trace"
)

// Controller is the node-controller abstraction shared by MAGIC and the
// idealized machine.
type Controller interface {
	cpu.Ctl
	network.Sink
	Attach(*cpu.CPU)
}

// Node is one FLASH node: processor + cache, controller, and local memory.
type Node struct {
	CPU *cpu.CPU
	Mem *memsys.Memory
	Ctl Controller

	// Magic is non-nil on FLASH machines.
	Magic *magic.Magic
	// Ideal is non-nil on idealized machines.
	Ideal *ideal.Controller
}

// Machine is a complete simulated multiprocessor.
type Machine struct {
	Cfg     arch.Config
	Eng     sim.Backend
	Net     *network.Network
	Nodes   []*Node
	Backing *memsys.Store // machine-wide data store, 8-byte words
	Views   []*memsys.View
	Prog    *protocol.Program

	// Elapsed is the parallel execution time: the cycle at which the last
	// processor retired its final reference.
	Elapsed sim.Cycle

	// Tracer is the machine's event tracer (nil = off); set via SetTracer.
	Tracer *trace.Tracer
	// Metrics is the machine's metrics registry (nil = off); set via
	// EnableMetrics. Run publishes machine counters and the engine's
	// host-cost profile into it on completion.
	Metrics *metrics.Registry
	// OccWindow is the occupancy sampling window in cycles (0 = off); set
	// via EnableOccSampling.
	OccWindow sim.Cycle

	sharded   bool
	shardBufs []*trace.Buffer

	// Per-node finish records: each processor's completion is written into
	// its own slot (disjoint across shards) and aggregated after Run.
	finAt   []sim.Cycle
	finDone []bool
}

// resolveEngine maps EngineAuto to the process default: the FLASHSIM_ENGINE
// environment variable if set, the sequential engine otherwise.
func resolveEngine(k arch.EngineKind) arch.EngineKind {
	if k != arch.EngineAuto {
		return k
	}
	switch os.Getenv("FLASHSIM_ENGINE") {
	case "sharded":
		return arch.EngineSharded
	case "seq":
		return arch.EngineSeq
	}
	return arch.EngineSeq
}

// resolveSync maps EngineSyncAuto to the process default: the
// FLASHSIM_ENGINE_SYNC environment variable if set, the barrier scheme
// otherwise.
func resolveSync(s arch.EngineSync) arch.EngineSync {
	if s != arch.EngineSyncAuto {
		return s
	}
	switch os.Getenv("FLASHSIM_ENGINE_SYNC") {
	case "watermark":
		return arch.EngineSyncWatermark
	case "barrier":
		return arch.EngineSyncBarrier
	}
	return arch.EngineSyncBarrier
}

// resolveSample maps a zero SampleSpec to the process default: the
// FLASHSIM_SAMPLE environment variable if set (detail/stride[/warmup],
// "default", or "off"), otherwise sampling stays off. An explicit non-zero
// spec — including a Stride-0 "force off" spec like {Detail: 1} — wins over
// the environment, mirroring FLASHSIM_ENGINE / FLASHSIM_ENGINE_SYNC.
func resolveSample(s arch.SampleSpec) arch.SampleSpec {
	if s != (arch.SampleSpec{}) {
		return s
	}
	v := os.Getenv("FLASHSIM_SAMPLE")
	if v == "" {
		return s
	}
	parsed, err := arch.ParseSampleSpec(v)
	if err != nil {
		return s // a malformed env var must not change simulated behavior
	}
	return parsed
}

// SetTracer attaches tr to every component of the machine — processors,
// controllers, memories, and the interconnect — replacing any previous
// tracer (nil detaches). Call before Run.
//
// On the sequential engine every component shares tr directly. On the
// sharded engine each node gets its own strided tracer writing to a
// per-node buffer; Run merges the buffers into tr deterministically, so
// concurrent shards never touch tr or its sink.
func (m *Machine) SetTracer(tr *trace.Tracer) {
	m.Tracer = tr
	m.shardBufs = nil
	nodeTr := func(i int) *trace.Tracer { return tr }
	if m.sharded && tr.Active() {
		n := len(m.Nodes)
		m.shardBufs = make([]*trace.Buffer, n)
		perNode := make([]*trace.Tracer, n)
		for i := range m.shardBufs {
			m.shardBufs[i] = &trace.Buffer{}
			perNode[i] = trace.NewStrided(m.shardBufs[i], uint64(i), uint64(n))
		}
		nodeTr = func(i int) *trace.Tracer { return perNode[i] }
	}
	for i, n := range m.Nodes {
		t := nodeTr(i)
		n.CPU.Tr = t
		n.Mem.SetTracer(t, n.CPU.ID)
		m.Net.Port(n.CPU.ID, nil).Tr = t
		if n.Magic != nil {
			n.Magic.Tr = t
		}
		if n.Ideal != nil {
			n.Ideal.Tr = t
		}
	}
}

// EnableOccSampling turns on windowed occupancy sampling: every memory
// controller (and, on FLASH, every protocol processor) accumulates busy
// cycles per window of w cycles, surfaced by stats.Collect as
// occupancy-over-time curves. Call before Run.
func (m *Machine) EnableOccSampling(w sim.Cycle) {
	if w == 0 {
		return
	}
	m.OccWindow = w
	for _, n := range m.Nodes {
		n.Mem.EnableSampling(uint64(w))
		if n.Magic != nil {
			n.Magic.PPSeries = trace.NewTimeSeries(uint64(w))
		}
	}
}

// New builds a machine. The configuration's network transit latency is
// derived from the node count unless explicitly overridden beforehand.
func New(cfg arch.Config) (*Machine, error) {
	if cfg.Kind == arch.KindIdeal {
		ideal := arch.IdealTiming()
		// Preserve any caller overrides of the shared parameters.
		ideal.MemAccess = cfg.Timing.MemAccess
		ideal.MemLineBusy = cfg.Timing.MemLineBusy
		cfg.Timing = ideal
	}
	if cfg.Timing.NetTransit == 0 {
		cfg.Timing.NetTransit = uint32(network.AvgTransitFor(cfg.Nodes))
	}
	// Sampled execution applies to FLASH machines only: the ideal
	// controller's protocol already runs in zero time, so a functional
	// phase would change nothing it measures.
	cfg.Sample = resolveSample(cfg.Sample)
	if cfg.Kind == arch.KindIdeal {
		cfg.Sample = arch.SampleSpec{}
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}

	m := &Machine{
		Cfg:     cfg,
		Backing: memsys.NewStore(cfg.Nodes * cfg.MemBytesPerNode / 8),
	}
	// The lookahead window and the store-visibility quantum are both the
	// minimum cross-node interaction delay: the uniform transit latency, or
	// the closest-pair transit under the mesh model. The per-pair horizons
	// of the watermark scheduler never undercut this quantum — a shard's
	// horizon is bounded by the flush gate — so store visibility follows the
	// same window quantization on every engine.
	w := sim.Cycle(cfg.Timing.NetTransit)
	var mesh *network.Mesh
	if cfg.NetModel == arch.NetMesh {
		mesh = network.NewMesh(cfg.Nodes)
		w = mesh.MinPairTransit()
	}
	switch resolveEngine(cfg.Engine) {
	case arch.EngineSharded:
		se := sim.NewShardedEngine(cfg.Nodes, w)
		if cfg.Sample.Enabled() {
			// Sampled execution runs fast-forward chains synchronously
			// across node boundaries, so shards must execute on one
			// goroutine in index order: force the single-worker barrier
			// scheme (watermark scheduling buys nothing at one worker).
			se.Workers = 1
		} else if resolveSync(cfg.EngineSync) == arch.EngineSyncWatermark {
			se.SetSync(sim.SyncWatermark)
		}
		if mesh != nil {
			// Distance-aware lookahead: far-apart shards owe each other
			// synchronization only at mesh-transit granularity.
			se.SetLookahead(mesh)
		}
		m.Eng = se
		m.sharded = true
	default:
		m.Eng = sim.NewEngine()
	}
	m.Views = make([]*memsys.View, cfg.Nodes)
	for i := range m.Views {
		m.Views[i] = memsys.NewView(m.Backing)
	}
	m.Eng.SetQuantum(w, func() {
		for _, v := range m.Views {
			v.Flush()
		}
	})
	m.Net = network.New(cfg.Nodes, sim.Cycle(cfg.Timing.NetTransit))
	if mesh != nil {
		m.Net.SetDistance(mesh)
	}

	if cfg.Kind == arch.KindFLASH {
		prog, err := protocol.Build(&m.Cfg)
		if err != nil {
			return nil, err
		}
		m.Prog = prog
	}

	for i := 0; i < cfg.Nodes; i++ {
		id := arch.NodeID(i)
		sched := m.Eng.Node(i)
		port := m.Net.Port(id, sched)
		mem := memsys.New(m.Cfg.Timing)
		n := &Node{Mem: mem}
		switch cfg.Kind {
		case arch.KindFLASH:
			mg, err := magic.New(id, sched, &m.Cfg, m.Prog, mem, port)
			if err != nil {
				return nil, err
			}
			n.Magic = mg
			n.Ctl = mg
		case arch.KindIdeal:
			ic := ideal.New(id, sched, &m.Cfg, mem, port)
			n.Ideal = ic
			n.Ctl = ic
		}
		n.CPU = cpu.New(id, sched, &m.Cfg, n.Ctl, m.Views[i])
		n.Ctl.Attach(n.CPU)
		m.Net.Attach(id, n.Ctl)
		m.Nodes = append(m.Nodes, n)
	}
	if cfg.Kind == arch.KindFLASH && cfg.Sample.Enabled() {
		// Fast-forward chains hop node-to-node directly, bypassing the
		// modeled network; give every controller the full peer table.
		peers := make([]*magic.Magic, cfg.Nodes)
		for i, n := range m.Nodes {
			peers[i] = n.Magic
		}
		for _, n := range m.Nodes {
			n.Magic.Peers = peers
		}
	}
	return m, nil
}

// Word returns a pointer to the backing-store word at addr, for untimed
// initialization by workloads before the simulation starts (and for
// verification afterwards — Run flushes every node's view on completion).
func (m *Machine) Word(a arch.Addr) *uint64 { return m.Backing.Word(uint64(a) / 8) }

// Run attaches one reference source per processor, runs the machine until
// every source is exhausted and all outstanding traffic drains, and records
// the parallel execution time. limit (0 = none) bounds the simulation in
// cycles as a hang guard.
func (m *Machine) Run(sources []cpu.RefSource, limit sim.Cycle) error {
	if len(sources) != len(m.Nodes) {
		return fmt.Errorf("core: %d sources for %d processors", len(sources), len(m.Nodes))
	}
	m.finAt = make([]sim.Cycle, len(m.Nodes))
	m.finDone = make([]bool, len(m.Nodes))
	m.AttachSources(sources)
	for _, n := range m.Nodes {
		n.CPU.Start()
	}
	m.Eng.SetLimit(limit)
	return m.finishRun()
}

// AttachSources wires one reference source per processor without resetting
// the per-node finish records. Run does this itself; the only direct caller
// is the workload fork path, which installs replayed sources into a machine
// whose finish records were just restored from a snapshot.
func (m *Machine) AttachSources(sources []cpu.RefSource) {
	for i, n := range m.Nodes {
		i := i
		n.CPU.SetSource(sources[i], func(at sim.Cycle) {
			m.finDone[i] = true
			m.finAt[i] = at
		})
	}
}

// finishRun drives the engine until its event population drains, publishes
// buffered store views, and aggregates completion. Processors parked at a
// snapshot pause point are accounted for — only a genuinely stuck processor
// is a deadlock.
func (m *Machine) finishRun() error {
	err := m.Eng.Run()
	// Publish any writes still buffered in node views so post-run
	// verification and coherence checks see the final memory image.
	for _, v := range m.Views {
		v.Flush()
	}
	if m.shardBufs != nil {
		trace.MergeBuffers(m.Tracer, m.shardBufs)
	}
	if err != nil {
		m.publishMetrics()
		return err
	}
	running := 0
	for i, done := range m.finDone {
		if !done {
			if !m.Nodes[i].CPU.Paused() {
				running++
			}
			continue
		}
		if m.finAt[i] > m.Elapsed {
			m.Elapsed = m.finAt[i]
		}
	}
	m.publishMetrics()
	if running != 0 {
		return fmt.Errorf("core: deadlock: %d processors never finished (cycle %d)", running, m.Eng.Now())
	}
	return nil
}
