// Package core assembles whole machines — FLASH nodes built around the
// programmable MAGIC controller, or the idealized hardwired machine — and
// provides the run driver the examples, experiments, and benchmarks use.
// This is the public face of the library: construct a Machine from an
// arch.Config, attach one reference source per processor, and Run.
package core

import (
	"fmt"

	"flashsim/internal/arch"
	"flashsim/internal/cpu"
	"flashsim/internal/ideal"
	"flashsim/internal/magic"
	"flashsim/internal/memsys"
	"flashsim/internal/network"
	"flashsim/internal/protocol"
	"flashsim/internal/sim"
	"flashsim/internal/trace"
)

// Controller is the node-controller abstraction shared by MAGIC and the
// idealized machine.
type Controller interface {
	cpu.Ctl
	network.Sink
	Attach(*cpu.CPU)
}

// Node is one FLASH node: processor + cache, controller, and local memory.
type Node struct {
	CPU *cpu.CPU
	Mem *memsys.Memory
	Ctl Controller

	// Magic is non-nil on FLASH machines.
	Magic *magic.Magic
	// Ideal is non-nil on idealized machines.
	Ideal *ideal.Controller
}

// Machine is a complete simulated multiprocessor.
type Machine struct {
	Cfg     arch.Config
	Eng     *sim.Engine
	Net     *network.Network
	Nodes   []*Node
	Backing *memsys.Store // machine-wide data store, 8-byte words
	Prog    *protocol.Program

	// Elapsed is the parallel execution time: the cycle at which the last
	// processor retired its final reference.
	Elapsed sim.Cycle

	// Tracer is the machine's event tracer (nil = off); set via SetTracer.
	Tracer *trace.Tracer
	// OccWindow is the occupancy sampling window in cycles (0 = off); set
	// via EnableOccSampling.
	OccWindow sim.Cycle

	running int
}

// SetTracer attaches tr to every component of the machine — processors,
// controllers, memories, and the interconnect — replacing any previous
// tracer (nil detaches). Call before Run. The tracer is per machine and is
// used only from the machine's simulation goroutine, so concurrent machines
// (exp.parallelMap) each carry their own without synchronization.
func (m *Machine) SetTracer(tr *trace.Tracer) {
	m.Tracer = tr
	m.Net.Tr = tr
	for _, n := range m.Nodes {
		n.CPU.Tr = tr
		n.Mem.SetTracer(tr, n.CPU.ID)
		if n.Magic != nil {
			n.Magic.Tr = tr
		}
		if n.Ideal != nil {
			n.Ideal.Tr = tr
		}
	}
}

// EnableOccSampling turns on windowed occupancy sampling: every memory
// controller (and, on FLASH, every protocol processor) accumulates busy
// cycles per window of w cycles, surfaced by stats.Collect as
// occupancy-over-time curves. Call before Run.
func (m *Machine) EnableOccSampling(w sim.Cycle) {
	if w == 0 {
		return
	}
	m.OccWindow = w
	for _, n := range m.Nodes {
		n.Mem.EnableSampling(uint64(w))
		if n.Magic != nil {
			n.Magic.PPSeries = trace.NewTimeSeries(uint64(w))
		}
	}
}

// New builds a machine. The configuration's network transit latency is
// derived from the node count unless explicitly overridden beforehand.
func New(cfg arch.Config) (*Machine, error) {
	if cfg.Kind == arch.KindIdeal {
		ideal := arch.IdealTiming()
		// Preserve any caller overrides of the shared parameters.
		ideal.MemAccess = cfg.Timing.MemAccess
		ideal.MemLineBusy = cfg.Timing.MemLineBusy
		cfg.Timing = ideal
	}
	if cfg.Timing.NetTransit == 0 {
		cfg.Timing.NetTransit = uint32(network.AvgTransitFor(cfg.Nodes))
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}

	m := &Machine{
		Cfg:     cfg,
		Eng:     sim.NewEngine(),
		Backing: memsys.NewStore(cfg.Nodes * cfg.MemBytesPerNode / 8),
	}
	m.Net = network.New(m.Eng, cfg.Nodes, sim.Cycle(cfg.Timing.NetTransit))

	if cfg.Kind == arch.KindFLASH {
		prog, err := protocol.Build(&m.Cfg)
		if err != nil {
			return nil, err
		}
		m.Prog = prog
	}

	for i := 0; i < cfg.Nodes; i++ {
		id := arch.NodeID(i)
		mem := memsys.New(m.Cfg.Timing)
		n := &Node{Mem: mem}
		switch cfg.Kind {
		case arch.KindFLASH:
			mg, err := magic.New(id, m.Eng, &m.Cfg, m.Prog, mem, m.Net)
			if err != nil {
				return nil, err
			}
			n.Magic = mg
			n.Ctl = mg
		case arch.KindIdeal:
			ic := ideal.New(id, m.Eng, &m.Cfg, mem, m.Net)
			n.Ideal = ic
			n.Ctl = ic
		}
		n.CPU = cpu.New(id, m.Eng, &m.Cfg, n.Ctl, m.Backing)
		n.Ctl.Attach(n.CPU)
		m.Net.Attach(id, n.Ctl)
		m.Nodes = append(m.Nodes, n)
	}
	return m, nil
}

// Word returns a pointer to the backing-store word at addr, for untimed
// initialization by workloads before the simulation starts.
func (m *Machine) Word(a arch.Addr) *uint64 { return m.Backing.Word(uint64(a) / 8) }

// Run attaches one reference source per processor, runs the machine until
// every source is exhausted and all outstanding traffic drains, and records
// the parallel execution time. limit (0 = none) bounds the simulation in
// cycles as a hang guard.
func (m *Machine) Run(sources []cpu.RefSource, limit sim.Cycle) error {
	if len(sources) != len(m.Nodes) {
		return fmt.Errorf("core: %d sources for %d processors", len(sources), len(m.Nodes))
	}
	m.running = len(sources)
	for i, n := range m.Nodes {
		n.CPU.SetSource(sources[i], func(at sim.Cycle) {
			m.running--
			if at > m.Elapsed {
				m.Elapsed = at
			}
		})
		n.CPU.Start()
	}
	m.Eng.Limit = limit
	if err := m.Eng.Run(); err != nil {
		return err
	}
	if m.running != 0 {
		return fmt.Errorf("core: deadlock: %d processors never finished (cycle %d)", m.running, m.Eng.Now())
	}
	return nil
}
