package core

import (
	"fmt"

	"flashsim/internal/arch"
	"flashsim/internal/cpu"
	"flashsim/internal/magic"
	"flashsim/internal/memsys"
	"flashsim/internal/network"
	"flashsim/internal/ppsim"
	"flashsim/internal/sim"
)

// Snapshot is a deterministic machine checkpoint taken at a quiescent pause
// point (every processor parked at a batch-refill boundary or finished, all
// controller queues and network traffic drained). The store is captured
// copy-on-write: Chunks aliases the donor's chunk table, frozen at capture
// time, and both the donor and any machine restored from the snapshot clone
// a chunk on its first subsequent write. Everything else — caches, MAGIC
// state, memory controllers, port sequence counters — is deep-copied, so a
// snapshot is immutable and may seed any number of forks.
//
// A Snapshot deliberately does not capture workload coroutine state; the
// workload package reconstructs its reference sources by replay (see
// workload.Checkpoint) and reattaches them with AttachSources.
type Snapshot struct {
	// SimKey is the donor's arch.Config.SimKey; Restore demands equality so
	// a snapshot can only land on a machine simulating identical hardware.
	SimKey string

	// Now is the engine clock at capture: the earliest cycle at which a
	// restored machine may resume.
	Now sim.Cycle
	// Executed is the donor's event count at capture, for accounting
	// identities (cold total == prefix + fork executed).
	Executed uint64

	// Chunks is the frozen copy-on-write store image.
	Chunks [][]uint64

	// Per-node deep-copied component states, indexed by node.
	CPUs   []cpu.CPUState
	Magics []magic.MagicState
	Mems   []memsys.MemoryState
	Ports  []network.PortState

	// Per-node finish records at capture (processors that already retired
	// their final reference during the prefix).
	FinAt   []sim.Cycle
	FinDone []bool
}

// snapshotable reports whether the machine is in a configuration the
// snapshot layer supports: a plain FLASH machine with no sampled execution,
// no tracer, and no occupancy sampling. Each excluded feature holds run
// state outside the captured components (fast-forward chains publish
// through write-through views, tracers and occupancy series accumulate
// history) that a fork could not reproduce.
func (m *Machine) snapshotable() error {
	if m.Cfg.Kind != arch.KindFLASH {
		return fmt.Errorf("core: snapshots support FLASH machines only (kind %v)", m.Cfg.Kind)
	}
	if m.Cfg.Sample.Enabled() {
		return fmt.Errorf("core: snapshots do not support sampled execution")
	}
	if m.Tracer.Active() {
		return fmt.Errorf("core: snapshots do not support an active tracer")
	}
	if m.OccWindow != 0 {
		return fmt.Errorf("core: snapshots do not support occupancy sampling")
	}
	return nil
}

// Snapshot captures the machine at a quiescent pause point. The caller
// must have run the machine with PauseAfterRefs so that every processor is
// either paused at a batch boundary or finished, and the run must have
// drained (Run returned nil): outstanding misses completed, controller
// queues empty, buffered store views flushed. Component CaptureState
// methods assert the fine-grained invariants and panic with diagnostics if
// the machine is not actually quiescent.
func (m *Machine) Snapshot() (*Snapshot, error) {
	if err := m.snapshotable(); err != nil {
		return nil, err
	}
	if m.finAt == nil {
		return nil, fmt.Errorf("core: Snapshot before any Run")
	}
	for i, n := range m.Nodes {
		if !n.CPU.Paused() && !n.CPU.Finished() {
			return nil, fmt.Errorf("core: Snapshot: processor %d neither paused nor finished: %s", i, n.CPU.DebugState())
		}
	}
	for i, v := range m.Views {
		if p := v.Pending(); p != 0 {
			return nil, fmt.Errorf("core: Snapshot: node %d view holds %d unflushed writes", i, p)
		}
	}
	s := &Snapshot{
		SimKey:   m.Cfg.SimKey(),
		Now:      m.Eng.Now(),
		Executed: m.Eng.ExecutedEvents(),
		Chunks:   m.Backing.SnapshotChunks(),
		FinAt:    append([]sim.Cycle(nil), m.finAt...),
		FinDone:  append([]bool(nil), m.finDone...),
	}
	for _, n := range m.Nodes {
		s.CPUs = append(s.CPUs, n.CPU.CaptureState())
		s.Magics = append(s.Magics, n.Magic.CaptureState())
		s.Mems = append(s.Mems, n.Mem.CaptureState())
		s.Ports = append(s.Ports, m.Net.Port(n.CPU.ID, nil).CaptureState())
	}
	return s, nil
}

// Restore installs a snapshot into this machine, which must simulate
// identical hardware (SimKey equality). The engine clock rewinds to zero
// and local event sequence numbers renumber from scratch; this is
// invisible to simulated behavior because the queues are empty at capture,
// renumbering preserves the relative order of same-cycle local events, and
// dispatch order depends only on (cycle, key) ordering. After Restore the
// caller reattaches replayed reference sources (AttachSources) and resumes
// with ResumeRun at or after snapshot.Now.
func (m *Machine) Restore(s *Snapshot) error {
	if err := m.snapshotable(); err != nil {
		return err
	}
	if got := m.Cfg.SimKey(); got != s.SimKey {
		return fmt.Errorf("core: Restore: config mismatch:\n  machine:  %s\n  snapshot: %s", got, s.SimKey)
	}
	if len(s.CPUs) != len(m.Nodes) {
		return fmt.Errorf("core: Restore: %d node states for %d nodes", len(s.CPUs), len(m.Nodes))
	}
	m.Eng.Reset()
	m.Backing.RestoreShared(s.Chunks)
	for i, n := range m.Nodes {
		m.Views[i].Reset()
		n.CPU.RestoreState(s.CPUs[i])
		n.Magic.RestoreState(s.Magics[i])
		n.Mem.RestoreState(s.Mems[i])
		m.Net.Port(n.CPU.ID, nil).RestoreState(s.Ports[i])
	}
	m.finAt = append([]sim.Cycle(nil), s.FinAt...)
	m.finDone = append([]bool(nil), s.FinDone...)
	m.Elapsed = 0
	return nil
}

// Reset returns the machine to its freshly constructed state — engine
// clock at zero, store all-zero, caches cold, controllers idle, statistics
// cleared — so experiment drivers can recycle a machine across runs
// instead of paying core.New (protocol build, store and component
// allocation) per run. Host-side attachments survive where they are
// construction choices (engine kind, sync scheme, PP dispatch backend);
// tracers and metrics registries attached by the previous user stay
// attached and should be re-set by the next user if unwanted.
func (m *Machine) Reset() {
	m.Eng.Reset()
	m.Backing.Reset()
	for i, n := range m.Nodes {
		m.Views[i].Reset()
		if m.Cfg.Sample.Enabled() {
			// cpu.New put sampled machines' views in write-through mode;
			// View.Reset cleared it.
			m.Views[i].SetWriteThrough(true)
		}
		n.CPU.Reset()
		n.Mem.Reset()
		m.Net.Port(n.CPU.ID, nil).Reset()
		if n.Magic != nil {
			n.Magic.Reset()
		}
		if n.Ideal != nil {
			n.Ideal.Reset()
		}
	}
	m.Elapsed = 0
	m.finAt = nil
	m.finDone = nil
}

// PauseAfterRefs arms every processor to pause at the first batch-refill
// boundary at or after its k-th reference retires (0 disarms). Pausing
// happens only between reference batches, so outstanding misses drain
// naturally and the machine reaches a capturable quiescent state when Run
// returns. Call before Run.
func (m *Machine) PauseAfterRefs(k uint64) {
	for _, n := range m.Nodes {
		n.CPU.PauseAfter(k)
	}
}

// ResumeRun restarts a machine whose processors are parked at a pause
// point — either the same machine that just ran a paused prefix, or a
// machine freshly restored from a snapshot of one. Each paused processor
// resumes at max(its pause cycle, at), in node order; passing the
// snapshot's Now as `at` makes a restored fork schedule its resume events
// at exactly the cycles the donor would, which is what makes forked and
// cold continuations bit-identical. limit (0 = none) bounds the resumed
// run as in Run.
func (m *Machine) ResumeRun(at, limit sim.Cycle) error {
	if m.finAt == nil {
		return fmt.Errorf("core: ResumeRun without a paused run")
	}
	for _, n := range m.Nodes {
		if !n.CPU.Paused() {
			continue
		}
		rt := n.CPU.PausedAt()
		if rt < at {
			rt = at
		}
		n.CPU.ResumeAt(rt)
	}
	m.Eng.SetLimit(limit)
	return m.finishRun()
}

// PoolKeyFor returns the recycling identity for machines built from cfg:
// the simulated-behavior key plus the resolved host-side execution choices
// (engine kind, sync scheme, PP dispatch backend). Two configs with equal
// pool keys build machines that are interchangeable after Reset, both in
// simulated behavior and in host-side execution strategy. The config is
// normalized exactly as New normalizes it (ideal timing override, derived
// network transit, environment-resolved sampling), so keys computed before
// construction match keys computed from a built machine's Cfg.
func PoolKeyFor(cfg arch.Config) string {
	return fmt.Sprintf("%s engine=%d sync=%d dispatch=%v",
		SimKeyFor(cfg), resolveEngine(cfg.Engine), resolveSync(cfg.EngineSync),
		ppsim.BackendFor(cfg.PPDispatch))
}

// SimKeyFor returns cfg's simulated-behavior key after applying the same
// normalization New applies (ideal timing override, derived network
// transit, environment-resolved sampling): the key of the machine New
// would actually build. Two configs with equal keys produce bit-identical
// simulations regardless of host-side choices; the experiment result cache
// keys on this.
func SimKeyFor(cfg arch.Config) string {
	if cfg.Kind == arch.KindIdeal {
		ideal := arch.IdealTiming()
		ideal.MemAccess = cfg.Timing.MemAccess
		ideal.MemLineBusy = cfg.Timing.MemLineBusy
		cfg.Timing = ideal
	}
	if cfg.Timing.NetTransit == 0 {
		cfg.Timing.NetTransit = uint32(network.AvgTransitFor(cfg.Nodes))
	}
	cfg.Sample = resolveSample(cfg.Sample)
	if cfg.Kind == arch.KindIdeal {
		cfg.Sample = arch.SampleSpec{}
	}
	return cfg.SimKey()
}

// PoolKey returns the machine's recycling identity; see PoolKeyFor.
func (m *Machine) PoolKey() string { return PoolKeyFor(m.Cfg) }
