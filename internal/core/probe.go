package core

import (
	"fmt"

	"flashsim/internal/arch"
	"flashsim/internal/cpu"
	"flashsim/internal/sim"
)

// ScriptSource replays a fixed reference list; it is the trace-driven
// counterpart of the execution-driven workload front end, used by latency
// probes and tests.
type ScriptSource struct {
	Refs []cpu.Ref
	i    int
}

// NextBatch implements cpu.RefSource: the whole remaining script is one
// batch (scripted sources have no thread to hand control back to).
func (s *ScriptSource) NextBatch() ([]cpu.Ref, bool) {
	if s.i >= len(s.Refs) {
		return nil, false
	}
	b := s.Refs[s.i:]
	s.i = len(s.Refs)
	return b, true
}

// ReadDone implements cpu.RefSource (scripted sources carry no thread).
func (s *ScriptSource) ReadDone() {}

// MissScenario describes one row of Table 3.3: scripted setup references
// that put a line into the desired directory/cache state, then a probe read
// whose no-contention latency and protocol-processor occupancy are
// measured.
type MissScenario struct {
	Name  string
	Setup map[arch.NodeID][]cpu.Ref
	Probe arch.NodeID
	Addr  arch.Addr
	Class arch.MissClass
}

// MissScenarios returns the five read miss scenarios of Table 3.3 for a
// machine whose node 0 owns the probed address.
func MissScenarios(cfg *arch.Config) []MissScenario {
	a := cfg.NodeBase(0) + 4*arch.PageSize // a quiet line homed at node 0
	w := func(n arch.NodeID) map[arch.NodeID][]cpu.Ref {
		return map[arch.NodeID][]cpu.Ref{
			n: {{Kind: arch.RefWrite, Addr: a, Busy: 4}},
		}
	}
	return []MissScenario{
		{Name: "Local read miss, clean in local memory", Probe: 0, Addr: a, Class: arch.MissLocalClean},
		{Name: "Local read miss, dirty in remote cache", Setup: w(1), Probe: 0, Addr: a, Class: arch.MissLocalDirty},
		{Name: "Remote read miss, clean in home memory", Probe: 1, Addr: a, Class: arch.MissRemoteClean},
		{Name: "Remote read miss, dirty in home cache", Setup: w(0), Probe: 1, Addr: a, Class: arch.MissRemoteDirtyHome},
		{Name: "Remote read miss, dirty in 3rd node", Setup: w(2), Probe: 1, Addr: a, Class: arch.MissRemoteDirty3rd},
	}
}

// ProbeMiss measures the no-contention latency of sc's probe read (cycles
// from miss detection to the first 8 bytes on the processor bus) and, for
// FLASH machines, the total PP occupancy of all handlers run to satisfy the
// miss. A warm-up read of the adjacent line runs first in both runs so the
// MAGIC data cache holds the directory lines, matching the paper's
// no-contention assumptions; setup and warm-up costs are excluded by
// differencing a warm-up-only run against a warm-up-plus-probe run.
func ProbeMiss(cfg arch.Config, sc MissScenario) (latency, ppOcc sim.Cycle, err error) {
	warm := sc.Addr + arch.LineSize // same home, same MDC directory line
	run := func(probe bool) (*Machine, error) {
		m, err := New(cfg)
		if err != nil {
			return nil, err
		}
		srcs := make([]cpu.RefSource, cfg.Nodes)
		for i := range srcs {
			refs := append([]cpu.Ref(nil), sc.Setup[arch.NodeID(i)]...)
			if arch.NodeID(i) == sc.Probe {
				// Long busy periods let all prior traffic quiesce.
				refs = append(refs, cpu.Ref{Kind: arch.RefRead, Addr: warm, Busy: 8000})
				if probe {
					refs = append(refs, cpu.Ref{Kind: arch.RefRead, Addr: sc.Addr, Busy: 8000})
				}
			}
			srcs[i] = &ScriptSource{Refs: refs}
		}
		if err := m.Run(srcs, 1_000_000); err != nil {
			return nil, err
		}
		return m, nil
	}

	base, err := run(false)
	if err != nil {
		return 0, 0, fmt.Errorf("setup run: %w", err)
	}
	full, err := run(true)
	if err != nil {
		return 0, 0, fmt.Errorf("probe run: %w", err)
	}

	pcpu := full.Nodes[sc.Probe].CPU
	bcpu := base.Nodes[sc.Probe].CPU
	latency = pcpu.Stats.ReadStall - bcpu.Stats.ReadStall
	if pcpu.Stats.ReadMisses != 2 {
		return 0, 0, fmt.Errorf("probe saw %d read misses, want 2", pcpu.Stats.ReadMisses)
	}
	if got := pcpu.Stats.MissClass[sc.Class] - bcpu.Stats.MissClass[sc.Class]; got != 1 {
		return 0, 0, fmt.Errorf("miss not classified as %v (census %v)", sc.Class, pcpu.Stats.MissClass)
	}
	if full.Prog != nil {
		var occ0, occ1 sim.Cycle
		for _, n := range base.Nodes {
			occ0 += n.Magic.PPOcc.Busy
		}
		for _, n := range full.Nodes {
			occ1 += n.Magic.PPOcc.Busy
		}
		ppOcc = occ1 - occ0
	}
	return latency, ppOcc, nil
}
