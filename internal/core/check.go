package core

import (
	"fmt"

	"flashsim/internal/arch"
	"flashsim/internal/cpu"
	"flashsim/internal/ideal"
	"flashsim/internal/protocol"
)

// CheckCoherence verifies directory/cache consistency on a quiesced
// machine:
//
//   - no line is pending and no invalidation acks are outstanding;
//   - a dirty line is Modified in exactly its owner's cache and nowhere
//     else;
//   - every cached copy of a clean line is recorded in the sharer set (the
//     LOCAL bit for the home's own processor, pool entries otherwise);
//   - on FLASH nodes, the pointer pool's free list plus all sharer-list
//     entries account for every pool entry (no leaks, no cycles).
//
// Replacement hints make the recorded sharer set exact on a quiesced
// machine, but the check only requires it to be a superset of the true
// copy set, which is the safety-critical direction.
func (m *Machine) CheckCoherence() error {
	// Collect cache contents per line.
	type copyInfo struct {
		mods    []arch.NodeID
		shareds []arch.NodeID
	}
	lines := make(map[uint64]*copyInfo)
	for i, n := range m.Nodes {
		for l, st := range n.CPU.Cache.Lines() {
			ci := lines[l]
			if ci == nil {
				ci = &copyInfo{}
				lines[l] = ci
			}
			if st == cpu.Modified {
				ci.mods = append(ci.mods, arch.NodeID(i))
			} else {
				ci.shareds = append(ci.shareds, arch.NodeID(i))
			}
		}
	}

	dirOf := func(line uint64) (interface {
		state() (dirty, pending, local bool, owner arch.NodeID, sharers []arch.NodeID, acks int)
	}, error) {
		addr := arch.Addr(line << arch.LineShift)
		home := m.Cfg.HomeOf(addr)
		n := m.Nodes[home]
		if n.Magic != nil {
			d, err := m.Prog.Layout.Decode(n.Magic.PP.Mem, m.Cfg.LocalLine(addr))
			if err != nil {
				return nil, err
			}
			return flashDir{d}, nil
		}
		snap := n.Ideal.Snapshot()
		return idealDir{snap[line]}, nil
	}

	check := func(line uint64, ci *copyInfo) error {
		d, err := dirOf(line)
		if err != nil {
			return err
		}
		dirty, pending, local, owner, sharers, acks := d.state()
		home := m.Cfg.HomeOf(arch.Addr(line << arch.LineShift))
		if pending {
			return fmt.Errorf("line %#x: pending after quiesce", line)
		}
		if acks != 0 {
			return fmt.Errorf("line %#x: %d acks outstanding after quiesce", line, acks)
		}
		if ci == nil {
			ci = &copyInfo{}
		}
		if dirty {
			if len(ci.mods) != 1 || ci.mods[0] != owner {
				return fmt.Errorf("line %#x: dirty at owner %d but Modified copies are %v", line, owner, ci.mods)
			}
			if len(ci.shareds) != 0 {
				return fmt.Errorf("line %#x: dirty but shared copies exist at %v", line, ci.shareds)
			}
			return nil
		}
		if len(ci.mods) != 0 {
			return fmt.Errorf("line %#x: clean in directory but Modified at %v", line, ci.mods)
		}
		recorded := make(map[arch.NodeID]bool)
		for _, s := range sharers {
			recorded[s] = true
		}
		if local {
			recorded[home] = true
		}
		for _, s := range ci.shareds {
			if !recorded[s] {
				return fmt.Errorf("line %#x: node %d holds a copy but is not recorded (recorded %v)", line, s, recorded)
			}
		}
		return nil
	}

	for line, ci := range lines {
		if err := check(line, ci); err != nil {
			return err
		}
	}

	// Pool accounting on FLASH machines running the dynamic pointer
	// allocation protocol: free entries plus all recorded sharer entries
	// must cover the pool exactly.
	if m.Prog != nil && m.Prog.Layout.Proto == arch.ProtoDynPtr {
		lay := m.Prog.Layout
		for i, n := range m.Nodes {
			free, err := lay.FreeCount(n.Magic.PP.Mem, n.Magic.PP.Reg(24))
			if err != nil {
				return fmt.Errorf("node %d: %w", i, err)
			}
			inUse := 0
			nlines := uint64(m.Cfg.MemBytesPerNode / arch.LineSize)
			for l := uint64(0); l < nlines; l++ {
				d, err := lay.Decode(n.Magic.PP.Mem, l)
				if err != nil {
					return fmt.Errorf("node %d line %d: %w", i, l, err)
				}
				inUse += len(d.Sharers)
			}
			if free+inUse != int(lay.PoolSize) {
				return fmt.Errorf("node %d: pool leak: free %d + in-use %d != %d", i, free, inUse, lay.PoolSize)
			}
		}
	}
	return nil
}

type flashDir struct{ d protocol.DirInfo }

func (f flashDir) state() (bool, bool, bool, arch.NodeID, []arch.NodeID, int) {
	return f.d.Dirty, f.d.Pending, f.d.Local, f.d.Owner, f.d.Sharers, f.d.Acks
}

type idealDir struct{ d ideal.DirState }

func (f idealDir) state() (bool, bool, bool, arch.NodeID, []arch.NodeID, int) {
	return f.d.Dirty, f.d.Pending, f.d.Local, f.d.Owner, f.d.Sharers, f.d.Acks
}
