package core

import (
	"testing"

	"flashsim/internal/arch"
)

func testConfig(kind arch.MachineKind) arch.Config {
	cfg := arch.DefaultConfig()
	cfg.Kind = kind
	cfg.MemBytesPerNode = 1 << 20
	return cfg
}

// TestTable33 reproduces the no-contention read miss latencies of Table 3.3
// for both machines. The FLASH figures depend on our handler code, so the
// tolerances are loose; the ideal figures follow directly from Table 3.2
// and must be tight.
func TestTable33(t *testing.T) {
	paper := map[string]struct {
		ideal, flash, occ int
	}{
		"Local read miss, clean in local memory": {24, 27, 11},
		"Local read miss, dirty in remote cache": {100, 143, 53},
		"Remote read miss, clean in home memory": {92, 111, 16},
		"Remote read miss, dirty in home cache":  {100, 145, 53},
		"Remote read miss, dirty in 3rd node":    {136, 191, 61},
	}
	for _, kind := range []arch.MachineKind{arch.KindIdeal, arch.KindFLASH} {
		cfg := testConfig(kind)
		for _, sc := range MissScenarios(&cfg) {
			lat, occ, err := ProbeMiss(cfg, sc)
			if err != nil {
				t.Fatalf("%v %s: %v", kind, sc.Name, err)
			}
			want := paper[sc.Name].ideal
			tol := 4
			if kind == arch.KindFLASH {
				want = paper[sc.Name].flash
				tol = 25
			}
			t.Logf("%-5v %-45s latency=%3d (paper %3d)  ppocc=%d (paper %d)",
				kind, sc.Name, lat, want, occ, paper[sc.Name].occ)
			if int(lat) < want-tol || int(lat) > want+tol {
				t.Errorf("%v %s: latency %d, paper %d (tolerance %d)", kind, sc.Name, lat, want, tol)
			}
		}
	}
}
