package core

import (
	"sort"
	"testing"

	"flashsim/internal/arch"
	"flashsim/internal/cpu"
	"flashsim/internal/sim"
)

// TestHandlerOccupancies prints mean per-handler PP occupancies (Table 3.4
// diagnostics) for a mixed scripted workload.
func TestHandlerOccupancies(t *testing.T) {
	cfg := testConfig(arch.KindFLASH)
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	a := cfg.NodeBase(0) + 4*arch.PageSize
	srcs := make([]cpu.RefSource, cfg.Nodes)
	for i := range srcs {
		srcs[i] = &ScriptSource{}
	}
	srcs[2] = &ScriptSource{Refs: []cpu.Ref{
		{Kind: arch.RefWrite, Addr: a, Busy: 4},
	}}
	srcs[1] = &ScriptSource{Refs: []cpu.Ref{
		{Kind: arch.RefRead, Addr: a, Busy: 8000},  // 3-hop read
		{Kind: arch.RefWrite, Addr: a, Busy: 8000}, // upgrade w/ invals
	}}
	srcs[0] = &ScriptSource{Refs: []cpu.Ref{
		{Kind: arch.RefRead, Addr: a, Busy: 40000}, // local read, dirty remote
	}}
	if err := m.Run(srcs, 1_000_000); err != nil {
		t.Fatal(err)
	}
	agg := map[string][2]uint64{}
	for _, n := range m.Nodes {
		counts := n.Magic.HandlerCounts()
		for h, c := range n.Magic.HandlerCycles() {
			v := agg[h]
			v[0] += uint64(c)
			v[1] += counts[h]
			agg[h] = v
		}
	}
	names := make([]string, 0, len(agg))
	for h := range agg {
		names = append(names, h)
	}
	sort.Strings(names)
	for _, h := range names {
		v := agg[h]
		t.Logf("%-16s count=%2d mean=%5.1f cycles", h, v[1], float64(v[0])/float64(v[1]))
	}
	_ = sim.Cycle(0)
}
