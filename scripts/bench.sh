#!/usr/bin/env bash
# Runs the simulator/workload/ppsim microbenchmarks COUNT times (default 5)
# and the Fig 4.1 macrobenchmarks MACRO_COUNT times (default 3) under both
# PP dispatch backends and both event engines (seq/sharded), and emits
# BENCH_sim.json with per-run ns/op, B/op, and allocs/op for each benchmark,
# alongside the recorded seed-tree baseline so before/after is visible in
# one file. flash_cycles are asserted bit-identical across backends and
# across engines. A sampled section compares fast-forward execution against
# full simulation (error + confidence intervals + speedup; gate: >= 3x at
# <= 5% error on >= 2 apps, carried by per-app tuned schedules), a
# multicore section records barrier-vs-
# watermark walls and a timed paper-size run (skipped, loudly, on 1 core),
# and an explore section times the design-space sweep cold vs warm-started
# (snapshot-fork + pool + result cache; gate: >= 2x, bit-identical output).
#
# Usage:  scripts/bench.sh            # -> BENCH_sim.json
#         COUNT=3 MACRO_COUNT=1 OUT=/tmp/b.json scripts/bench.sh
set -euo pipefail
cd "$(dirname "$0")/.."

COUNT="${COUNT:-5}"
MACRO_COUNT="${MACRO_COUNT:-3}"
OUT="${OUT:-BENCH_sim.json}"
RAW="$(mktemp)"
RAWC="$(mktemp)"
RAWI="$(mktemp)"
RAWS="$(mktemp)"
RAWW="$(mktemp)"
trap 'rm -f "$RAW" "$RAWC" "$RAWI" "$RAWS" "$RAWW"' EXIT

# Host context recorded into every generated section: benchmark numbers are
# meaningless without the parallelism they ran at.
HOST_CPUS="$(nproc 2>/dev/null || echo 1)"
GOMAXPROCS_VAL="${GOMAXPROCS:-$HOST_CPUS}"

# now_s / since: per-section wall-clock, fractional seconds.
now_s() { date +%s.%N 2>/dev/null || date +%s; }
since() { awk -v a="$1" -v b="$(now_s)" 'BEGIN { printf "%.2f", b - a }'; }

T_MICRO="$(now_s)"
go test -run '^$' -bench . -benchmem -count "$COUNT" \
	./internal/sim ./internal/workload ./internal/ppsim | tee "$RAW"
MICRO_WALL="$(since "$T_MICRO")"

# The engine's hot loop must stay allocation-free: every BenchmarkEngine*
# line must report 0 allocs/op, or the observability layer (or anything
# else) has leaked allocations into the core event queue.
awk '/^BenchmarkEngine/ && $7 != 0 {
	printf "FAIL: %s reports %s allocs/op (want 0)\n", $1, $7; bad = 1
}
END { exit bad }' "$RAW" || { echo "bench.sh: engine allocation regression" >&2; exit 1; }

# The compiled PP dispatch loop must be allocation-free in steady state: the
# closure image is built once at program load, and executing handlers must
# not allocate.
awk '$1 ~ /^BenchmarkHandlerDispatch\/compiled/ && $7 != 0 {
	printf "FAIL: %s reports %s allocs/op (want 0)\n", $1, $7; bad = 1
}
END { exit bad }' "$RAW" || { echo "bench.sh: compiled dispatch allocation regression" >&2; exit 1; }

# The metrics layer must agree with the statistics report: run one app with
# a metrics snapshot and the JSON report, and require the flash_cycles gauge
# to equal the report's Elapsed bit-for-bit (the registry is fed from the
# same machine the report is collected from — a skew means double
# accounting somewhere).
MJSON="$(mktemp)"
SJSON="$(mktemp)"
trap 'rm -f "$RAW" "$RAWC" "$RAWI" "$RAWS" "$RAWW" "$MJSON" "$SJSON"' EXIT
go run ./cmd/flashsim -app fft -procs 4 -scale 256 -metrics-out "$MJSON" -json >"$SJSON" 2>/dev/null
METRIC_CYCLES="$(sed -n 's/.*"flash_cycles": *\([0-9]*\).*/\1/p' "$MJSON" | head -1)"
STATS_CYCLES="$(sed -n 's/.*"Elapsed": *\([0-9]*\).*/\1/p' "$SJSON" | head -1)"
if [ -z "$METRIC_CYCLES" ] || [ "$METRIC_CYCLES" != "$STATS_CYCLES" ]; then
	echo "bench.sh: metrics flash_cycles ($METRIC_CYCLES) != stats Elapsed ($STATS_CYCLES)" >&2
	exit 1
fi
echo "bench.sh: metrics snapshot agrees with stats (flash_cycles = $METRIC_CYCLES)"

# Fig 4.1 macrobenchmarks under both PP dispatch backends. Simulated
# flash_cycles must be bit-identical across backends (the golden-digest test
# enforces the same property over whole applications).
T_DISPATCH="$(now_s)"
FLASHSIM_PP_DISPATCH=compiled go test -run '^$' -bench 'Fig41(FFT|LU|MP3D|Ocean)$' \
	-count "$MACRO_COUNT" . | tee "$RAWC"
FLASHSIM_PP_DISPATCH=interp go test -run '^$' -bench 'Fig41(FFT|LU|MP3D|Ocean)$' \
	-count "$MACRO_COUNT" . | tee "$RAWI"
DISPATCH_WALL="$(since "$T_DISPATCH")"

cycles_of() {
	awk '/^BenchmarkFig41/ { name = $1; sub(/-[0-9]+$/, "", name); print name, $5 }' "$1" | sort -u
}
if ! diff <(cycles_of "$RAWC") <(cycles_of "$RAWI") >/dev/null; then
	echo "bench.sh: flash_cycles diverge between PP dispatch backends" >&2
	diff <(cycles_of "$RAWC") <(cycles_of "$RAWI") >&2 || true
	exit 1
fi

awk -v count="$COUNT" -v gmp="$GOMAXPROCS_VAL" -v cpus="$HOST_CPUS" -v wall="$MICRO_WALL" '
/^pkg:/ { pkg = $2; sub(/^flashsim\/internal\//, "", pkg) }
/^Benchmark/ {
	name = $1
	sub(/-[0-9]+$/, "", name)
	key = pkg "." name
	if (!(key in seen)) { seen[key] = 1; order[++n] = key }
	ns[key] = ns[key] sep[key] $3
	by[key] = by[key] sep[key] $5
	al[key] = al[key] sep[key] $7
	sep[key] = ","
}
END {
	printf "{\n"
	printf "  \"suite\": \"flashsim sim/workload/ppsim microbenchmarks + Fig 4.1 macros\",\n"
	printf "  \"runs\": %d,\n", count
	printf "  \"gomaxprocs\": %d,\n", gmp
	printf "  \"host_cpus\": %d,\n", cpus
	printf "  \"wall_seconds\": %s,\n", wall
	printf "  \"benchmarks\": {\n"
	for (i = 1; i <= n; i++) {
		k = order[i]
		printf "    \"%s\": {\"ns_per_op\": [%s], \"bytes_per_op\": [%s], \"allocs_per_op\": [%s]}%s\n", \
			k, ns[k], by[k], al[k], (i < n ? "," : "")
	}
	printf "  },\n"
}' "$RAW" >"$OUT"

macro_json() {
	awk '
	/^BenchmarkFig41/ {
		name = $1
		sub(/-[0-9]+$/, "", name)
		if (!(name in seen)) { seen[name] = 1; order[++n] = name }
		ns[name] = ns[name] sep[name] $3
		cyc[name] = $5
		sep[name] = ","
	}
	END {
		for (i = 1; i <= n; i++) {
			k = order[i]
			printf "      \"%s\": {\"ns_per_op\": [%s], \"flash_cycles\": %s}%s\n", \
				k, ns[k], cyc[k], (i < n ? "," : "")
		}
	}' "$1"
}

{
	printf '  "pp_dispatch": {\n'
	printf '    "note": "Fig 4.1 macros under both PP emulator backends (FLASHSIM_PP_DISPATCH), %s runs each; flash_cycles are asserted bit-identical across backends",\n' "$MACRO_COUNT"
	printf '    "gomaxprocs": %s,\n' "$GOMAXPROCS_VAL"
	printf '    "host_cpus": %s,\n' "$HOST_CPUS"
	printf '    "wall_seconds": %s,\n' "$DISPATCH_WALL"
	printf '    "compiled": {\n'
	macro_json "$RAWC"
	printf '    },\n'
	printf '    "interp": {\n'
	macro_json "$RAWI"
	printf '    }\n'
	printf '  },\n'
} >>"$OUT"

# Fig 4.1 macros under the sharded (conservative parallel) event engine. The
# compiled-dispatch pass above already ran under the default sequential
# engine, so it doubles as the seq side of this comparison. flash_cycles must
# be bit-identical across engines: the sharded backend is a pure host-side
# optimization (differential torture + golden-engine tests enforce the same
# property). Wall-clock speedup from sharding requires a multicore host; on a
# single-core host the sharded engine degenerates to an in-order window loop.
T_ENGINE="$(now_s)"
FLASHSIM_ENGINE=sharded go test -run '^$' -bench 'Fig41(FFT|LU|MP3D|Ocean)$' \
	-count "$MACRO_COUNT" . | tee "$RAWS"
ENGINE_WALL="$(since "$T_ENGINE")"
if ! diff <(cycles_of "$RAWC") <(cycles_of "$RAWS") >/dev/null; then
	echo "bench.sh: flash_cycles diverge between event engines" >&2
	diff <(cycles_of "$RAWC") <(cycles_of "$RAWS") >&2 || true
	exit 1
fi

# Fig 4.1 macros under watermark synchronization (sharded engine, per-pair
# frontier scheduling instead of the full window barrier). flash_cycles must
# stay bit-identical to the sequential baseline.
T_WM="$(now_s)"
FLASHSIM_ENGINE=sharded FLASHSIM_ENGINE_SYNC=watermark go test -run '^$' \
	-bench 'Fig41(FFT|LU|MP3D|Ocean)$' -count "$MACRO_COUNT" . | tee "$RAWW"
WM_WALL="$(since "$T_WM")"
if ! diff <(cycles_of "$RAWC") <(cycles_of "$RAWW") >/dev/null; then
	echo "bench.sh: flash_cycles diverge between barrier and watermark sync" >&2
	diff <(cycles_of "$RAWC") <(cycles_of "$RAWW") >&2 || true
	exit 1
fi

# engine_profile app sync: run one app on the sharded engine with the given
# sync scheme and summarize its self-profile from the metrics snapshot:
# synchronization operations (absolute and per 1k events), window/burst
# counts with the empty fraction, and the wait/solve phase times.
engine_profile() {
	local app="$1" sync="$2" pj
	pj="$(mktemp)"
	go run ./cmd/flashsim -app "$app" -procs 16 -scale 8 \
		-engine sharded -engine-sync "$sync" -metrics-out "$pj" >/dev/null 2>&1
	awk '
	{ v = $NF; gsub(/,/, "", v) }
	/flashsim_engine_windows_total\{/       { windows += v }
	/flashsim_engine_empty_windows_total\{/ { empty += v }
	/flashsim_engine_barrier_wait_ns_total\{/ { bwait += v }
	/flashsim_engine_horizon_wait_ns_total\{/ { hwait += v }
	/"flashsim_engine_solve_ns_total"/      { solve += v }
	/flashsim_engine_sync_ops_total\{/      { ops += v }
	/"flashsim_sim_events_total"/           { ev += v }
	END {
		ef = windows > 0 ? empty / windows : 0
		opk = ev > 0 ? ops * 1000 / ev : 0
		printf "{\"sync_ops\": %d, \"events\": %d, \"sync_ops_per_kevent\": %.1f, \"windows\": %d, \"empty_window_frac\": %.3f, \"barrier_wait_ns\": %d, \"horizon_wait_ns\": %d, \"solve_ns\": %d}", \
			ops, ev, opk, windows, ef, bwait, hwait, solve
	}' "$pj"
	rm -f "$pj"
}

PROFILE_JSON=""
GE5=0
for app in fft lu mp3d ocean; do
	pb="$(engine_profile "$app" barrier)"
	pw="$(engine_profile "$app" watermark)"
	ob="$(printf '%s' "$pb" | sed -n 's/.*"sync_ops": \([0-9]*\).*/\1/p')"
	ow="$(printf '%s' "$pw" | sed -n 's/.*"sync_ops": \([0-9]*\).*/\1/p')"
	ratio="$(awk -v a="$ob" -v b="$ow" 'BEGIN { printf "%.2f", (b > 0 ? a / b : 0) }')"
	if awk -v r="$ratio" 'BEGIN { exit !(r >= 5) }'; then GE5=$((GE5 + 1)); fi
	echo "bench.sh: $app sync ops barrier=$ob watermark=$ow (${ratio}x fewer)"
	PROFILE_JSON="$PROFILE_JSON      \"$app\": {
        \"barrier\": $pb,
        \"watermark\": $pw,
        \"sync_op_ratio\": $ratio
      },
"
done
# The watermark scheme's reason to exist: at least two Fig 4.1 apps must see
# a >= 5x synchronization-operation reduction over the window barrier.
if [ "$GE5" -lt 2 ]; then
	echo "bench.sh: watermark sync-op reduction below 5x on $GE5 app(s), need >= 2" >&2
	exit 1
fi
PROFILE_JSON="${PROFILE_JSON%,
}"

{
	printf '  "engine": {\n'
	printf '    "note": "Fig 4.1 macros under both event engines (FLASHSIM_ENGINE) and both sharded sync schemes (FLASHSIM_ENGINE_SYNC), %s runs each; flash_cycles are asserted bit-identical across engines and schemes; sharded speedup needs host_cpus > 1",\n' "$MACRO_COUNT"
	printf '    "gomaxprocs": %s,\n' "$GOMAXPROCS_VAL"
	printf '    "host_cpus": %s,\n' "$HOST_CPUS"
	printf '    "wall_seconds": %s,\n' "$ENGINE_WALL"
	printf '    "watermark_wall_seconds": %s,\n' "$WM_WALL"
	printf '    "seq": {\n'
	macro_json "$RAWC"
	printf '    },\n'
	printf '    "sharded": {\n'
	macro_json "$RAWS"
	printf '    },\n'
	printf '    "sharded_watermark": {\n'
	macro_json "$RAWW"
	printf '    },\n'
	printf '    "profile": {\n'
	printf '      "note": "engine self-profile per app at procs 16 scale 8 (flashsim -metrics-out): sync ops are lock acquisitions, condition sleeps, and shared-state scan steps; watermark must cut them >= 5x vs the window barrier on >= 2 apps",\n'
	printf '%s\n' "$PROFILE_JSON"
	printf '    }\n'
	printf '  },\n'
} >>"$OUT"

# Sampled fast-forward vs full simulation: the sampled experiment runs apps
# fully detailed and under a SMARTS-style schedule (each leg three times,
# minimum event-loop wall, simulated outputs asserted bit-identical across
# repeats) and reports extrapolated Elapsed with 95% confidence intervals
# alongside the wall-clock speedup. The default schedule covers the whole
# Fig 4.1 suite for context; the gate rides on per-application tuned
# schedules (SMARTS practice — the sampling regimen is picked per benchmark):
# at least two distinct apps must deliver >= 3x wall-clock speedup at <= 5%
# Elapsed error across the default and tuned tables. Barrier-heavy codes
# trade larger error for the same speedup at any schedule (DESIGN.md §14).
T_SAMPLED="$(now_s)"
SAMPLED_TXT="$(mktemp)"
GATE_TXT="$(mktemp)"
trap 'rm -f "$RAW" "$RAWC" "$RAWI" "$RAWS" "$RAWW" "$MJSON" "$SJSON" "$SAMPLED_TXT" "$GATE_TXT"' EXIT
go run ./cmd/flashexp sampled | tee "$SAMPLED_TXT"
SAMPLED_SPEC="$(sed -n 's/.*full simulation (\([0-9/]*\),.*/\1/p' "$SAMPLED_TXT")"

RADIX_SPEC="2000/24000/8000"
MP3D_SPEC="2000/100000/8000"
go run ./cmd/flashexp -sample-apps radix -sample "$RADIX_SPEC" sampled | tee -a "$GATE_TXT"
go run ./cmd/flashexp -sample-apps mp3d -sample "$MP3D_SPEC" sampled | tee -a "$GATE_TXT"
SAMPLED_WALL="$(since "$T_SAMPLED")"

# sampled_rows: comparison-table rows -> JSON object members (comma-joined).
sampled_rows() {
	awk '
	$2 ~ /^[0-9]+$/ && NF == 9 {
		err = $5; sub(/%$/, "", err); sub(/^\+/, "", err)
		sp = $9; sub(/x$/, "", sp)
		rows[++n] = sprintf("      \"%s\": {\"full_cycles\": %s, \"est_cycles\": %s, \"ci95_cycles\": %s, \"err_pct\": %s, \"covered\": %s, \"full_seconds\": %s, \"sampled_seconds\": %s, \"speedup\": %s}", \
			$1, $2, $3, $4, err, $6, $7, $8, sp)
	}
	END { for (i = 1; i <= n; i++) printf "%s%s\n", rows[i], (i < n ? "," : "") }' "$1"
}
# sampled_pass: names of apps meeting the gate (speedup >= 3x, |err| <= 5%).
sampled_pass() {
	awk '
	$2 ~ /^[0-9]+$/ && NF == 9 {
		err = $5; sub(/%$/, "", err)
		sp = $9; sub(/x$/, "", sp)
		if (sp + 0 >= 3 && (err + 0 <= 5 && -(err + 0) <= 5)) print $1
	}' "$1"
}

GATE_PASSING="$( { sampled_pass "$SAMPLED_TXT"; sampled_pass "$GATE_TXT"; } | sort -u)"
GATE_COUNT="$(printf '%s\n' "$GATE_PASSING" | awk 'NF' | wc -l)"
if [ "$GATE_COUNT" -lt 2 ]; then
	echo "bench.sh: sampled mode meets >=3x at <=5% error on only $GATE_COUNT app(s), need >= 2" >&2
	exit 1
fi
echo "bench.sh: sampled gate met on $GATE_COUNT apps (>=3x speedup at <=5% error):" $GATE_PASSING
GATE_PASSING_JSON="$(printf '%s\n' "$GATE_PASSING" | awk 'NF { s = s (s ? ", " : "") "\"" $1 "\"" } END { print s }')"

{
	printf '  "sampled": {\n'
	printf '    "note": "full vs sampled fast-forward execution (flashexp sampled, legs 3x min-wall); est_cycles extrapolates Elapsed from detailed windows, ci95_cycles is the 95%% confidence half-width, wall seconds cover the event loop only",\n'
	printf '    "gomaxprocs": %s,\n' "$GOMAXPROCS_VAL"
	printf '    "host_cpus": %s,\n' "$HOST_CPUS"
	printf '    "wall_seconds": %s,\n' "$SAMPLED_WALL"
	printf '    "default": {\n'
	printf '      "spec": "%s",\n' "$SAMPLED_SPEC"
	printf '      "apps": {\n'
	sampled_rows "$SAMPLED_TXT" | sed 's/^      /        /'
	printf '      }\n'
	printf '    },\n'
	printf '    "tuned": {\n'
	printf '      "note": "per-app schedules carry the gate (SMARTS-style per-benchmark tuning)",\n'
	printf '      "specs": {"radix": "%s", "mp3d": "%s"},\n' "$RADIX_SPEC" "$MP3D_SPEC"
	printf '      "apps": {\n'
	sampled_rows "$GATE_TXT" | sed 's/^      /        /'
	printf '      }\n'
	printf '    },\n'
	printf '    "gate": {"require": "speedup >= 3x and |err| <= 5%% on >= 2 distinct apps across the default and tuned tables", "passing": [%s]}\n' "$GATE_PASSING_JSON"
	printf '  },\n'
} >>"$OUT"

# Multicore measurement debt (ROADMAP): a wall-clock barrier-vs-watermark
# comparison and a timed paper-size `flashexp all -scale 1` only mean
# something when the sharded engine has real cores to spread over. On a
# 1-core host both are recorded as explicitly skipped, not silently dropped.
if [ "$HOST_CPUS" -gt 1 ]; then
	T_PB="$(now_s)"
	go run ./cmd/flashexp profile -engine-sync=barrier >/dev/null
	PROFILE_BARRIER_WALL="$(since "$T_PB")"
	T_PW="$(now_s)"
	go run ./cmd/flashexp profile -engine-sync=watermark >/dev/null
	PROFILE_WATERMARK_WALL="$(since "$T_PW")"
	T_ALL1="$(now_s)"
	go run ./cmd/flashexp all -scale 1 >/dev/null
	ALL_SCALE1_WALL="$(since "$T_ALL1")"
	{
		printf '  "multicore": {\n'
		printf '    "note": "wall-clock barrier-vs-watermark (flashexp profile, Fig 4.1 suite) and end-to-end paper-size run (flashexp all -scale 1)",\n'
		printf '    "gomaxprocs": %s,\n' "$GOMAXPROCS_VAL"
		printf '    "host_cpus": %s,\n' "$HOST_CPUS"
		printf '    "profile_barrier_wall_seconds": %s,\n' "$PROFILE_BARRIER_WALL"
		printf '    "profile_watermark_wall_seconds": %s,\n' "$PROFILE_WATERMARK_WALL"
		printf '    "all_scale1_wall_seconds": %s\n' "$ALL_SCALE1_WALL"
		printf '  },\n'
	} >>"$OUT"
	echo "bench.sh: multicore walls: profile barrier=${PROFILE_BARRIER_WALL}s watermark=${PROFILE_WATERMARK_WALL}s, all -scale 1=${ALL_SCALE1_WALL}s"
else
	{
		printf '  "multicore": {\n'
		printf '    "skipped": true,\n'
		printf '    "host_cpus": %s,\n' "$HOST_CPUS"
		printf '    "note": "barrier-vs-watermark wall comparison and timed flashexp all -scale 1 need host_cpus > 1 (the sharded engine degenerates to an in-order window loop on one core); rerun scripts/bench.sh on a multicore host to fill this section"\n'
		printf '  },\n'
	} >>"$OUT"
	echo "bench.sh: multicore wall comparison SKIPPED (host_cpus=$HOST_CPUS; needs > 1)"
fi

# Explore design-space sweep: cold (every point simulated from scratch)
# vs warm-started (common prefix simulated once per simulated config,
# snapshotted, forked copy-on-write into pooled machines; host-axis
# duplicates served from the content-addressed result cache) vs a fully
# cached rerun. The three result files must be bit-identical — warm
# starting is a pure host-side optimization — and the warm sweep must be
# >= 2x faster than the cold sweep (gate).
T_EXPLORE="$(now_s)"
EXPLORE_DIR="$(mktemp -d)"
trap 'rm -f "$RAW" "$RAWC" "$RAWI" "$RAWS" "$RAWW" "$MJSON" "$SJSON" "$SAMPLED_TXT" "$GATE_TXT"; rm -rf "$EXPLORE_DIR"' EXIT
go build -o "$EXPLORE_DIR/flashexp" ./cmd/flashexp
EXPLORE_ARGS="-app fft -scale 16 -procs 4"
T_COLD="$(now_s)"
"$EXPLORE_DIR/flashexp" explore $EXPLORE_ARGS -cold -out "$EXPLORE_DIR/cold.json" >/dev/null
EXPLORE_COLD_WALL="$(since "$T_COLD")"
T_WARM="$(now_s)"
"$EXPLORE_DIR/flashexp" explore $EXPLORE_ARGS -cache-dir "$EXPLORE_DIR/cache" -out "$EXPLORE_DIR/warm.json" >/dev/null
EXPLORE_WARM_WALL="$(since "$T_WARM")"
T_CACHED="$(now_s)"
"$EXPLORE_DIR/flashexp" explore $EXPLORE_ARGS -cache-dir "$EXPLORE_DIR/cache" -out "$EXPLORE_DIR/cached.json" >/dev/null
EXPLORE_CACHED_WALL="$(since "$T_CACHED")"
if ! cmp -s "$EXPLORE_DIR/cold.json" "$EXPLORE_DIR/warm.json"; then
	echo "bench.sh: warm explore sweep is not bit-identical to the cold sweep" >&2
	exit 1
fi
if ! cmp -s "$EXPLORE_DIR/warm.json" "$EXPLORE_DIR/cached.json"; then
	echo "bench.sh: cached explore rerun is not bit-identical to the populating sweep" >&2
	exit 1
fi
EXPLORE_POINTS="$(grep -c '"report_digest"' "$EXPLORE_DIR/cold.json")"
EXPLORE_PARETO="$(grep -c '"pareto": true' "$EXPLORE_DIR/cold.json")"
EXPLORE_SPEEDUP="$(awk -v c="$EXPLORE_COLD_WALL" -v w="$EXPLORE_WARM_WALL" 'BEGIN { printf "%.2f", (w > 0 ? c / w : 0) }')"
if [ "$EXPLORE_POINTS" -lt 50 ]; then
	echo "bench.sh: explore sweep covered only $EXPLORE_POINTS points, need >= 50" >&2
	exit 1
fi
if ! awk -v r="$EXPLORE_SPEEDUP" 'BEGIN { exit !(r >= 2) }'; then
	echo "bench.sh: warm explore speedup ${EXPLORE_SPEEDUP}x below the 2x gate (cold ${EXPLORE_COLD_WALL}s, warm ${EXPLORE_WARM_WALL}s)" >&2
	exit 1
fi
EXPLORE_WALL="$(since "$T_EXPLORE")"
echo "bench.sh: explore $EXPLORE_POINTS points ($EXPLORE_PARETO Pareto): cold ${EXPLORE_COLD_WALL}s, warm ${EXPLORE_WARM_WALL}s (${EXPLORE_SPEEDUP}x), cached ${EXPLORE_CACHED_WALL}s, results bit-identical"
{
	printf '  "explore": {\n'
	printf '    "note": "flashexp explore %s: cold vs warm-started (snapshot-fork + machine pool + content-addressed cache) vs fully cached rerun; result JSON asserted bit-identical across all three; gate: warm >= 2x faster than cold",\n' "$EXPLORE_ARGS"
	printf '    "gomaxprocs": %s,\n' "$GOMAXPROCS_VAL"
	printf '    "host_cpus": %s,\n' "$HOST_CPUS"
	printf '    "wall_seconds": %s,\n' "$EXPLORE_WALL"
	printf '    "points": %s,\n' "$EXPLORE_POINTS"
	printf '    "pareto_points": %s,\n' "$EXPLORE_PARETO"
	printf '    "cold_wall_seconds": %s,\n' "$EXPLORE_COLD_WALL"
	printf '    "warm_wall_seconds": %s,\n' "$EXPLORE_WARM_WALL"
	printf '    "cached_wall_seconds": %s,\n' "$EXPLORE_CACHED_WALL"
	printf '    "warm_speedup": %s,\n' "$EXPLORE_SPEEDUP"
	printf '    "bit_identical": true\n'
	printf '  },\n'
} >>"$OUT"

# Seed-tree baseline (commit 1dc46be, before the event-queue rewrite and
# handshake batching) and the PR 1 optimized tree, both recorded once from
# the same host so the before/after comparison survives in the artifact.
# These flash_cycles reflect the pre-PR-5 event model; PR 5's deterministic
# delivery ordering and window-quantized store visibility shifted simulated
# cycle counts slightly (goldens regenerated once), so current runs are
# compared against the regenerated goldens, not these historical numbers.
cat >>"$OUT" <<'EOF'
  "seed_baseline": {
    "note": "pre-optimization tree; exp macrobenchmarks at Scale 8, 5 runs; simulated cycle counts are bit-identical before and after by construction (golden-digest test)",
    "BenchmarkFig41FFT":   {"ns_per_op_range": [1318516459, 1480254385], "allocs_per_op": 3897043, "flash_cycles": 208107},
    "BenchmarkFig41LU":    {"ns_per_op_range": [315704263, 392691339],   "allocs_per_op": 804001,  "flash_cycles": 106681},
    "BenchmarkFig41MP3D":  {"ns_per_op_range": [1656902306, 2089944733], "allocs_per_op": 13044585, "flash_cycles": 1368847},
    "BenchmarkFig41Ocean": {"ns_per_op_range": [127016353, 216264582],   "allocs_per_op": 404905,  "flash_cycles": 91150},
    "BenchmarkLockHandoff":   {"ns_per_op_range": [8874097, 17338164],   "allocs_per_op": 32519},
    "BenchmarkSimThroughput": {"ns_per_op_range": [142056390, 259865968], "allocs_per_op": 347552}
  },
  "optimized_reference": {
    "note": "same macrobenchmarks on the PR 1 tree (allocation-free event queue + batched handshakes); identical flash_cycles, >=25% faster than seed",
    "BenchmarkFig41FFT":   {"ns_per_op_range": [821614478, 1319732764],  "allocs_per_op": 578901,  "flash_cycles": 208107},
    "BenchmarkFig41LU":    {"ns_per_op_range": [227919085, 248977685],   "allocs_per_op": 122776,  "flash_cycles": 106681},
    "BenchmarkFig41MP3D":  {"ns_per_op_range": [971415258, 1299683114],  "allocs_per_op": 4939595, "flash_cycles": 1368847},
    "BenchmarkFig41Ocean": {"ns_per_op_range": [90113142, 103282320],    "allocs_per_op": 130132,  "flash_cycles": 91150},
    "BenchmarkLockHandoff":   {"ns_per_op_range": [4272572, 5307763],    "allocs_per_op": 15812},
    "BenchmarkSimThroughput": {"ns_per_op_range": [87436388, 104982431], "allocs_per_op": 78221}
  }
}
EOF

echo "wrote $OUT"
